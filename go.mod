module uafcheck

go 1.22
