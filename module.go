package uafcheck

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"

	"uafcheck/internal/analysis"
	"uafcheck/internal/obs"
)

// ------------------------------------------------------- module mode
//
// Module mode analyzes every file of a program together: the files are
// linked against a shared module scope, cross-file calls resolve to
// their defining file, per-procedure boundary summaries are computed
// bottom-up over the call graph (with a fixpoint over cycles), and
// each file's report reflects what its procedures' callees — in any
// file — do to by-ref arguments, including fire-and-forget tasks that
// escape the call. docs/INTERPROCEDURAL.md describes the machinery.

// ModuleFile is one source file of a whole-module analysis.
type ModuleFile struct {
	// Name labels the file in warnings and reports (usually its path).
	Name string
	// Src is the source text.
	Src string
}

// ModuleReport is the outcome of analyzing one module.
type ModuleReport struct {
	// Files holds one per-file outcome, index-aligned with the input.
	// Each entry's Report is structurally identical to a single-file
	// Analyze report (wire-encodable, byte-stable), so module results
	// flow through the same NDJSON surfaces as batch results.
	Files []FileReport
	// Metrics is the module-wide telemetry snapshot (one frontend pass
	// plus every analyzed procedure across all files).
	Metrics Metrics
}

// ExitCode maps the module outcome onto the documented uafcheck shell
// contract: 0 = clean, 1 = exact warnings, 2 = degraded/incomplete
// somewhere. Frontend and unresolved-call failures surface as errors
// from the entry points (exit 3 territory) before a ModuleReport
// exists.
func (m *ModuleReport) ExitCode() int {
	code := 0
	for _, f := range m.Files {
		if f.Report == nil {
			continue
		}
		if f.Report.Degraded != nil {
			return 2
		}
		if len(f.Report.Warnings) > 0 {
			code = 1
		}
	}
	return code
}

// AnalyzeModuleContext analyzes all files of one module together under
// ctx — the module-level mirror of AnalyzeContext:
//
//	rep, err := uafcheck.AnalyzeModuleContext(ctx, []uafcheck.ModuleFile{
//	    {Name: "main.chpl", Src: mainSrc},
//	    {Name: "lib.chpl", Src: libSrc},
//	}, uafcheck.WithMaxStates(1 << 16))
//
// Typed failures: errors.Is(err, ErrParse) when any file fails the
// frontend; when the failure is a call that names no procedure in any
// file, the error additionally matches ErrUnresolvedCall. Resource
// degradation never errors — it surfaces per file through
// Report.Degraded, exactly as in single-file mode.
//
// Options.Cache is ignored in module mode: the report cache's content
// addresses cover one file's text, and a module report also depends on
// every other file of the module. (The Analyzer's per-unit memo store
// handles module mode precisely instead — see AnalyzeModuleDelta.)
func AnalyzeModuleContext(ctx context.Context, files []ModuleFile, options ...Option) (*ModuleReport, error) {
	cfg := apiConfig{opts: DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	rep, _, err := analyzeModule(ctx, files, cfg.opts, nil)
	return rep, err
}

// AnalyzeModuleDelta analyzes a module reusing every memoized unit
// whose fingerprint still matches, and memoizing the units it had to
// compute. Each call takes the full file set (the module snapshot,
// not a diff). Unit fingerprints include the identities and boundary
// summaries of each procedure's direct module-level callees, so
// editing one file invalidates exactly the units whose composed view
// changed: the edited file's own units, plus transitive callers of
// any procedure whose summary changed. An effect-preserving callee
// edit leaves every other file's units hot.
//
// The returned report is byte-identical (canonical wire encoding) to
// AnalyzeModuleContext with this handle's options; single-file and
// module units share the store without key collisions.
func (a *Analyzer) AnalyzeModuleDelta(ctx context.Context, files []ModuleFile) (*ModuleReport, error) {
	a.files.Add(int64(len(files)))
	rep, stats, err := analyzeModule(ctx, files, a.opts, a.units)
	a.unitHits.Add(int64(stats.UnitHits))
	a.unitMisses.Add(int64(stats.UnitMisses))
	return rep, err
}

// analyzeModule is the shared whole-module driver behind
// AnalyzeModuleContext (nil units) and Analyzer.AnalyzeModuleDelta.
func analyzeModule(ctx context.Context, files []ModuleFile, opts Options, units *analysis.Units) (mr *ModuleReport, stats analysis.IncrStats, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	defer func() {
		// Same last-resort fault isolation as the single-file entry
		// points: a crash outside the per-proc pipeline degrades every
		// file's report instead of unwinding into the caller.
		if r := recover(); r != nil {
			crash := Crash{
				Phase: "frontend",
				Err:   fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
			mr = &ModuleReport{}
			for _, f := range files {
				mr.Files = append(mr.Files, FileReport{
					Name:   f.Name,
					Status: "crashed",
					Report: &Report{Degraded: &Degradation{
						Reason:  DegradePanic,
						Crashes: []Crash{crash},
					}},
				})
			}
			err = nil
		}
	}()
	rec := obs.New(opts.MetricsSinks...)
	in := opts.internal()
	in.KeepGraphs = opts.Trace
	in.Obs = rec
	in.Ctx = ctx

	afiles := make([]analysis.ModuleFile, len(files))
	for i, f := range files {
		afiles[i] = analysis.ModuleFile{Name: f.Name, Src: f.Src}
	}
	res, stats := analysis.AnalyzeModule(afiles, in, units)
	if res.FrontendFailed {
		var b strings.Builder
		for _, fr := range res.Files {
			b.WriteString(frontendErrors(fr.Diags))
		}
		if len(res.Unresolved) > 0 {
			return nil, stats, fmt.Errorf("%w (%w):\n%s",
				ErrUnresolvedCall, ErrParse, b.String())
		}
		return nil, stats, fmt.Errorf("%w:\n%s", ErrParse, b.String())
	}

	mr = &ModuleReport{}
	for i, fr := range res.Files {
		rep := buildReport(fr, opts)
		mr.Files = append(mr.Files, FileReport{
			Name:   files[i].Name,
			Status: reportStatus(rep),
			Report: rep,
		})
	}
	mr.Metrics = rec.Snapshot()
	if ferr := rec.Flush(); ferr != nil && len(mr.Files) > 0 {
		mr.Files[0].Report.Notes = append(mr.Files[0].Report.Notes,
			fmt.Sprintf("metrics sink error: %v", ferr))
	}
	return mr, stats, nil
}

// reportStatus derives the batch-driver status vocabulary from one
// report (the module counterpart of internal/wire's StatusOf).
func reportStatus(rep *Report) string {
	if rep.Degraded == nil {
		return "ok"
	}
	switch rep.Degraded.Reason {
	case DegradePanic:
		return "crashed"
	case DegradeDeadline:
		return "timed-out"
	default:
		return "degraded"
	}
}
