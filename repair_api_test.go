package uafcheck_test

import (
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"uafcheck"
	"uafcheck/internal/udiff"
)

// TestRepairPatches: the public Repair entry point returns verified
// unified-diff patches whose application reproduces Fixed, and whose
// verdicts carry a strictly decreasing warning delta.
func TestRepairPatches(t *testing.T) {
	src, err := os.ReadFile("testdata/figure1.chpl")
	if err != nil {
		t.Fatal(err)
	}
	rr, err := uafcheck.Repair(context.Background(), "figure1.chpl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Clean() {
		t.Fatalf("figure1 should repair clean, %d warnings remain", rr.RemainingWarnings)
	}
	if len(rr.Patches) == 0 || rr.Diff == "" {
		t.Fatalf("expected patches and a cumulative diff, got %d patches", len(rr.Patches))
	}
	// Patches apply in sequence and reproduce Fixed.
	cur := string(src)
	for i, p := range rr.Patches {
		if !p.Verdict.Verified {
			t.Fatalf("patch %d not verified", i)
		}
		if got := strings.Join(p.Verdict.Checks, ","); got != "static-reanalysis,schedule-oracle" {
			t.Fatalf("patch %d checks = %q", i, got)
		}
		if p.Verdict.WarningsAfter >= p.Verdict.WarningsBefore {
			t.Fatalf("patch %d delta not decreasing: %d -> %d",
				i, p.Verdict.WarningsBefore, p.Verdict.WarningsAfter)
		}
		next, err := udiff.Apply(cur, p.Diff)
		if err != nil {
			t.Fatalf("patch %d does not apply: %v", i, err)
		}
		cur = next
	}
	if cur != rr.Fixed {
		t.Fatalf("sequential patch application does not reproduce Fixed")
	}
	// The cumulative diff is equivalent.
	viaCum, err := udiff.Apply(string(src), rr.Diff)
	if err != nil {
		t.Fatalf("cumulative diff does not apply: %v", err)
	}
	if viaCum != rr.Fixed {
		t.Fatalf("cumulative diff does not reproduce Fixed")
	}
	// The verdicts match a local re-analysis of Fixed.
	rep, err := uafcheck.AnalyzeContext(context.Background(), "figure1.chpl", rr.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != rr.RemainingWarnings {
		t.Fatalf("re-analysis found %d warnings, report says %d",
			len(rep.Warnings), rr.RemainingWarnings)
	}
	if last := rr.Patches[len(rr.Patches)-1]; last.Verdict.WarningsAfter != len(rep.Warnings) {
		t.Fatalf("last verdict says %d warnings, re-analysis found %d",
			last.Verdict.WarningsAfter, len(rep.Warnings))
	}
}

// TestRepairParseError: frontend failures surface as ErrParse.
func TestRepairParseError(t *testing.T) {
	_, err := uafcheck.Repair(context.Background(), "bad.chpl", "proc { nope")
	if !errors.Is(err, uafcheck.ErrParse) {
		t.Fatalf("want ErrParse, got %v", err)
	}
}

// TestRepairDegradedRefusal: a starved state budget degrades the
// baseline analysis, and Repair refuses with the typed sentinel
// instead of patching on conservative evidence.
func TestRepairDegradedRefusal(t *testing.T) {
	src, err := os.ReadFile("testdata/figure1.chpl")
	if err != nil {
		t.Fatal(err)
	}
	_, err = uafcheck.Repair(context.Background(), "figure1.chpl", string(src),
		uafcheck.WithMaxStates(2))
	if !errors.Is(err, uafcheck.ErrRepairDegraded) {
		t.Fatalf("want ErrRepairDegraded, got %v", err)
	}
}

// TestRepairReportClone: the deep clone shares no mutable state with
// the original.
func TestRepairReportClone(t *testing.T) {
	src, err := os.ReadFile("testdata/figure6.chpl")
	if err != nil {
		t.Fatal(err)
	}
	rr, err := uafcheck.Repair(context.Background(), "figure6.chpl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	cp := rr.Clone()
	if !reflect.DeepEqual(rr, cp) {
		t.Fatalf("clone not equal to original")
	}
	if len(cp.Patches) > 0 {
		cp.Patches[0].Diff = "mutated"
		cp.Patches[0].Verdict.Checks[0] = "mutated"
	}
	cp.Rejected = append(cp.Rejected, "mutated")
	for i := range cp.Remaining {
		if cp.Remaining[i].Prov != nil {
			cp.Remaining[i].Prov.Chain = append(cp.Remaining[i].Prov.Chain, "mutated")
		}
	}
	rr2, err := uafcheck.Repair(context.Background(), "figure6.chpl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, rr2) {
		t.Fatalf("mutating the clone changed the original")
	}
	if (*uafcheck.RepairReport)(nil).Clone() != nil {
		t.Fatalf("nil clone should be nil")
	}
}
