package uafcheck

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// pathologicalProgram builds a worst-case §III-C input: tasks begin
// blocks each performing ops sync-variable writes, all joined by the
// parent. The PPS exploration forks on every interleaving of the sync
// events, so states grow exponentially in tasks — (8, 4) is minutes of
// work unbounded, which the resource governor must cut short.
func pathologicalProgram(tasks, ops int) string {
	var b strings.Builder
	b.WriteString("proc main() {\n  var x: int = 0;\n")
	for i := 0; i < tasks; i++ {
		for j := 0; j < ops; j++ {
			fmt.Fprintf(&b, "  var s%d_%d$: sync bool;\n", i, j)
		}
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&b, "  begin with (ref x) { x = %d;", i)
		for j := 0; j < ops; j++ {
			fmt.Fprintf(&b, " s%d_%d$ = true;", i, j)
		}
		b.WriteString(" }\n")
	}
	for i := 0; i < tasks; i++ {
		for j := 0; j < ops; j++ {
			fmt.Fprintf(&b, "  s%d_%d$;\n", i, j)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// warnKey identifies a warning independent of its Conservative flag and
// reason text, for superset comparisons across degraded and full runs.
func warnKey(w Warning) string {
	return fmt.Sprintf("%s|%s|%s|%d|%v", w.Proc, w.Task, w.Var, w.AccessLine, w.Write)
}

func TestDeadlineDegradesPromptly(t *testing.T) {
	src := pathologicalProgram(8, 4)
	const deadline = 50 * time.Millisecond
	o := DefaultOptions()
	o.Deadline = deadline

	start := time.Now()
	rep, err := AnalyzeWithOptions("patho.chpl", src, o)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance bound is ~2x the deadline; the extra 100ms absorbs
	// scheduler noise on loaded CI machines, not analysis overrun (the
	// PPS loop polls the context every 64 states).
	if limit := 2*deadline + 100*time.Millisecond; elapsed > limit {
		t.Errorf("deadline %v: analysis returned after %v (limit %v)", deadline, elapsed, limit)
	}
	if rep.Degraded == nil {
		t.Fatal("deadline expired but Report.Degraded is nil")
	}
	if rep.Degraded.Reason != DegradeDeadline {
		t.Errorf("Degraded.Reason = %q, want %q", rep.Degraded.Reason, DegradeDeadline)
	}
	if len(rep.Degraded.Procs) == 0 {
		t.Error("Degraded.Procs empty")
	}
	if len(rep.Warnings) == 0 {
		t.Fatal("degraded run reported no conservative warnings")
	}
	for _, w := range rep.Warnings {
		if !w.Conservative {
			t.Errorf("degraded-run warning not marked conservative: %v", w)
		}
		if !strings.Contains(w.String(), "conservative") {
			t.Errorf("warning text does not mention degradation: %s", w)
		}
	}
}

func TestConservativeWarningsAreSuperset(t *testing.T) {
	// Small enough to explore fully (≈3k states), large enough that a
	// 50-state budget stops far short of completion.
	src := pathologicalProgram(5, 3)

	full, err := AnalyzeWithOptions("patho.chpl", src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if full.Degraded != nil {
		t.Fatalf("full run unexpectedly degraded: %v", full.Degraded.Reason)
	}

	o := DefaultOptions()
	o.MaxStates = 50
	deg, err := AnalyzeWithOptions("patho.chpl", src, o)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Degraded == nil || deg.Degraded.Reason != DegradeBudget {
		t.Fatalf("budget run Degraded = %+v, want reason %q", deg.Degraded, DegradeBudget)
	}

	got := make(map[string]bool, len(deg.Warnings))
	for _, w := range deg.Warnings {
		got[warnKey(w)] = true
	}
	for _, w := range full.Warnings {
		if !got[warnKey(w)] {
			t.Errorf("full-run warning missing from degraded run (soundness hole): %v", w)
		}
	}
	if len(deg.Warnings) < len(full.Warnings) {
		t.Errorf("degraded run reported %d warnings, full run %d", len(deg.Warnings), len(full.Warnings))
	}
}

func TestCancelledContextDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	rep, err := AnalyzeContext(ctx, "patho.chpl", pathologicalProgram(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-cancelled context still took %v", elapsed)
	}
	if rep.Degraded == nil || rep.Degraded.Reason != DegradeCancelled {
		t.Fatalf("Degraded = %+v, want reason %q", rep.Degraded, DegradeCancelled)
	}
}

const warnSrc = `proc main() {
  var x: int = 0;
  begin with (ref x) { x = 1; }
}
`

const cleanSrc = `proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) { x = 1; done$ = true; }
  done$;
}
`

func TestAnalyzeFilesExitCodes(t *testing.T) {
	cases := []struct {
		name  string
		files []FileInput
		bopts BatchOptions
		want  int
	}{
		{"clean", []FileInput{{"c.chpl", cleanSrc}}, BatchOptions{}, 0},
		{"warnings", []FileInput{{"w.chpl", warnSrc}, {"c.chpl", cleanSrc}}, BatchOptions{}, 1},
		{"degraded", []FileInput{{"p.chpl", pathologicalProgram(8, 4)}},
			BatchOptions{FileTimeout: 30 * time.Millisecond}, 2},
		{"errors", []FileInput{{"bad.chpl", "proc ( nope"}, {"w.chpl", warnSrc}}, BatchOptions{}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := AnalyzeFiles(tc.files, DefaultOptions(), tc.bopts)
			if got := rep.ExitCode(); got != tc.want {
				t.Errorf("ExitCode() = %d, want %d (summary %+v)", got, tc.want, rep.Summary)
			}
		})
	}
}

// TestAnalyzeFilesConcurrent drives a mixed batch through several
// workers with shared metrics sinks — the scenario the -race run
// certifies (see Makefile test-race).
func TestAnalyzeFilesConcurrent(t *testing.T) {
	var files []FileInput
	for i := 0; i < 6; i++ {
		files = append(files,
			FileInput{fmt.Sprintf("clean%d.chpl", i), cleanSrc},
			FileInput{fmt.Sprintf("warn%d.chpl", i), warnSrc})
	}
	files = append(files,
		FileInput{"patho.chpl", pathologicalProgram(8, 4)},
		FileInput{"broken.chpl", "proc ( nope"})

	opts := DefaultOptions()
	opts.MetricsSinks = []MetricsSink{TextMetricsSink(io.Discard), JSONLinesMetricsSink(io.Discard)}
	rep := AnalyzeFiles(files, opts, BatchOptions{
		Workers:     4,
		FileTimeout: 40 * time.Millisecond,
	})

	if len(rep.Files) != len(files) {
		t.Fatalf("got %d file reports for %d inputs", len(rep.Files), len(files))
	}
	for i, fr := range rep.Files {
		if fr.Name != files[i].Name {
			t.Errorf("report %d is for %q, want %q (index alignment broken)", i, fr.Name, files[i].Name)
		}
	}
	s := rep.Summary
	// OK counts complete analyses — the clean files and the warning
	// files both finish; warnings don't degrade a result.
	if s.OK != 12 {
		t.Errorf("OK = %d, want 12", s.OK)
	}
	if s.Warnings < 6 {
		t.Errorf("Warnings = %d, want >= 6", s.Warnings)
	}
	if s.Errors != 1 {
		t.Errorf("Errors = %d, want 1", s.Errors)
	}
	if s.Degradations() != 1 {
		t.Errorf("Degradations() = %d, want 1 (summary %+v)", s.Degradations(), s)
	}
	if got := rep.ExitCode(); got != 3 {
		t.Errorf("ExitCode() = %d, want 3", got)
	}
	for _, fr := range rep.Files {
		if fr.Name == "broken.chpl" {
			if !errors.Is(fr.Err, ErrFrontend) {
				t.Errorf("broken.chpl Err = %v, want ErrFrontend", fr.Err)
			}
		} else if fr.Report == nil {
			t.Errorf("%s: nil report", fr.Name)
		}
	}
	if rep.Metrics.Counter("batch.files") != int64(len(files)) {
		t.Errorf("batch.files counter = %d, want %d", rep.Metrics.Counter("batch.files"), len(files))
	}
}
