package uafcheck

import (
	"encoding/json"

	"uafcheck/internal/analysis"
	"uafcheck/internal/cache"
)

// Cache memoizes complete analysis reports by content address: the
// SHA-256 of (tool Version, file name, source text, effective analysis
// options). A hit is correct by construction — changing any input
// changes the key — so there is no invalidation protocol and no
// staleness. Degraded reports are never stored; see Options.Cache.
//
// A Cache is safe for concurrent use and may be shared across Analyze
// calls, batches and goroutines. Every value crosses the cache boundary
// through Report.Clone, so callers can mutate what they get back.
type Cache struct {
	c *cache.Cache[*Report]
}

// CacheConfig sizes a Cache.
type CacheConfig struct {
	// MaxEntries bounds the in-memory LRU layer (<= 0 means the library
	// default of 1024 entries).
	MaxEntries int
	// Dir, when non-empty, enables a persistent on-disk layer (one JSON
	// file per key) shared by concurrent processes and surviving
	// restarts. Writes are temp-file + rename, reads of corrupt entries
	// degrade to misses.
	Dir string
	// AsyncDiskWrites, when > 0, queues disk-tier writes on a bounded
	// background queue of this depth instead of writing synchronously on
	// the analysis path — the configuration the uafserve daemon uses so
	// request latency never includes cache serialization or I/O. Writes
	// that find the queue full are dropped (CacheStats.DroppedWrites);
	// call Flush to checkpoint and Close at shutdown. Ignored when Dir
	// is empty.
	AsyncDiskWrites int
	// Backend, when non-nil, replaces the persistence tier entirely —
	// how cluster replicas plug a tiered local+remote store under the
	// same LRU, envelope checksums, and quarantine machinery as the
	// plain disk tier. Takes precedence over Dir.
	Backend CacheBackend
}

// CacheBackend is the pluggable persistence tier behind a Cache: a
// blob store for checksummed entry envelopes. The built-in local
// directory tier is one implementation; the cluster's HTTP remote
// tier is another. See internal/cache.Backend for the contract.
type CacheBackend = cache.Backend

// NewDirCacheBackend creates the local-directory backend the plain
// disk tier uses — exposed so callers can compose it (e.g. into a
// tiered local+remote chain via NewTieredCacheBackend).
func NewDirCacheBackend(dir string) CacheBackend { return cache.NewDirBackend(dir) }

// NewTieredCacheBackend chains a fast local backend with a remote one:
// reads fall through to remote on a local miss and warm the local copy
// (after validating it); writes land locally only.
func NewTieredCacheBackend(local, remote CacheBackend) CacheBackend {
	return cache.NewTiered(local, remote)
}

// CacheStats counts cache traffic (hits, disk hits, misses, stores,
// evictions, disk errors, quarantined entries).
type CacheStats = cache.Stats

// CacheRecoverStats summarizes one Cache.Recover pass over the disk
// tier: entries scanned, entries that validated, corrupt entries
// quarantined, and leftover temp files swept.
type CacheRecoverStats = cache.RecoverStats

// NewCache creates an analysis report cache.
func NewCache(cfg CacheConfig) *Cache {
	codec := cache.Codec[*Report]{
		Encode: func(r *Report) ([]byte, error) { return json.Marshal(r) },
		Decode: func(b []byte) (*Report, error) {
			r := &Report{}
			if err := json.Unmarshal(b, r); err != nil {
				return nil, err
			}
			return r, nil
		},
		Clone: (*Report).Clone,
	}
	var cc *Cache
	if cfg.Backend != nil {
		cc = &Cache{c: cache.NewWithBackend(codec, cfg.MaxEntries, cfg.Backend)}
	} else {
		cc = &Cache{c: cache.New(codec, cfg.MaxEntries, cfg.Dir)}
	}
	if cfg.AsyncDiskWrites > 0 {
		cc.c.StartAsyncDisk(cfg.AsyncDiskWrites)
	}
	return cc
}

// Backend returns the persistence backend (nil for memory-only
// caches). uafserve mounts this behind its /v1/cache peer endpoints so
// other replicas can warm from it.
func (c *Cache) Backend() CacheBackend { return c.c.Backend() }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() CacheStats { return c.c.Stats() }

// Recover validates every entry in the disk tier — the startup
// crash-recovery scan. Corrupt entries (torn writes, bit rot,
// truncation, pre-checksum legacy files) are moved into a quarantine/
// subdirectory instead of being served later, and temp files orphaned
// by a crashed writer are removed. Long-running processes (uafserve)
// call this once before taking traffic. A no-op without a disk tier.
func (c *Cache) Recover() CacheRecoverStats { return c.c.RecoverDisk() }

// DiskState classifies the disk tier for health surfaces: "off" (no
// directory configured), "ok", or "disabled" (the tier turned itself
// off after too many consecutive write failures).
func (c *Cache) DiskState() string { return c.c.DiskState() }

// Len returns the number of in-memory entries.
func (c *Cache) Len() int { return c.c.Len() }

// Flush blocks until every queued asynchronous disk write has reached
// the filesystem. A no-op for synchronous caches.
func (c *Cache) Flush() { c.c.Flush() }

// Close drains the asynchronous write queue and stops its background
// writer; the cache stays usable (later stores write synchronously).
// uafserve calls this as the last step of graceful shutdown, after the
// admission gate has drained.
func (c *Cache) Close() { c.c.Close() }

func (c *Cache) get(k cache.Key) (*Report, bool) { return c.c.Get(k) }

func (c *Cache) put(k cache.Key, r *Report) { c.c.Put(k, r) }

// reportKey is the content address of one file's analysis: everything
// that determines the report participates, and nothing else —
// Parallelism in particular is excluded because results are identical
// across worker counts, so sequential and parallel runs share entries.
func reportKey(filename, src string, in analysis.Options) cache.Key {
	return cache.KeyOf("uafcheck/report", Version, filename, src, in.Fingerprint())
}
