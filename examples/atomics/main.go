// False-positive anatomy (paper §IV-A / §V): programs synchronized with
// atomic variables are dynamically safe, but the analysis deliberately
// does not model atomics — producing the false positives that dominate
// the paper's 14.4% true-positive rate.
//
//	go run ./examples/atomics
package main

import (
	"fmt"
	"log"

	"uafcheck"
)

const atomicProtected = `
proc atomicHandshake() {
  var buffer: int = 0;
  var flag: atomic int;
  begin with (ref buffer) {
    buffer = 99;        // flagged by the static analysis...
    writeln(buffer);    // ...and this one too
    flag.write(1);
  }
  flag.waitFor(1);      // ...but the parent spins here before exiting,
}                       // so the accesses are actually safe
`

const syncProtected = `
proc syncHandshake() {
  var buffer: int = 0;
  var done$: sync bool;
  begin with (ref buffer) {
    buffer = 99;
    writeln(buffer);
    done$ = true;
  }
  done$;
}
`

func main() {
	fmt.Println("== atomic-protected program ==")
	report, err := uafcheck.Analyze("atomic.chpl", atomicProtected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis: %d warning(s)\n", len(report.Warnings))
	for _, w := range report.Warnings {
		fmt.Println("  " + w.String())
	}

	dyn, err := uafcheck.ExploreSchedules("atomic.chpl", atomicProtected, "atomicHandshake", 20000, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic oracle: %d schedules, UAF sites %v\n", dyn.Runs, dyn.UAFSites)
	if len(dyn.UAFSites) == 0 && len(report.Warnings) > 0 {
		fmt.Println("=> every warning on this program is a FALSE POSITIVE:")
		fmt.Println("   the paper's analysis does not model atomic synchronization (its §IV-A")
		fmt.Println("   scope limit), which is why Table I reports only 14.4% true positives.")
	}

	fmt.Println("\n== the same handshake via a sync variable ==")
	report, err = uafcheck.Analyze("sync.chpl", syncProtected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis: %d warning(s) — sync variables ARE modelled,\n", len(report.Warnings))
	fmt.Println("so the wait chain is recognized and the accesses are proven safe.")
}
