// Corpus demo: a miniature version of the paper's evaluation (§V).
//
//	go run ./examples/corpusdemo
//
// Generates a 300-program synthetic suite with the Table I population
// structure, runs the analysis over all of it, prints the resulting
// table, and cross-validates a sample of the flagged programs with the
// dynamic schedule oracle.
package main

import (
	"fmt"

	"uafcheck"
)

func main() {
	params := uafcheck.CorpusParams{
		Seed:          42,
		Tests:         300,
		BeginTests:    40,
		UnsafeTests:   8,
		TrueSites:     20,
		AtomicFPTests: 8,
		FalseSites:    60,
	}
	cases := uafcheck.GenerateCorpus(params)
	fmt.Printf("generated %d programs (%d with begin tasks)\n\n", len(cases), params.BeginTests)

	table, breakdown := uafcheck.RunTableI(cases, uafcheck.DefaultOptions())
	fmt.Println("miniature Table I:")
	fmt.Print(table.Format())
	fmt.Println("\nper-pattern breakdown:")
	fmt.Print(breakdown)

	fmt.Println("\nbaseline comparison (§VI):")
	fmt.Print(uafcheck.BaselineComparison(cases, uafcheck.DefaultOptions()))

	// Show one flagged program of each kind.
	var shownTrue, shownFP bool
	for i := range cases {
		c := &cases[i]
		if !c.WantWarn {
			continue
		}
		isTrue := len(c.TrueSites) > 0
		if isTrue && shownTrue || !isTrue && shownFP {
			continue
		}
		kind := "true positive"
		if !isTrue {
			kind = "false positive (atomic-synchronized)"
		}
		fmt.Printf("\nsample %s program %s (pattern %s):\n%s", kind, c.Name, c.Pattern, c.Source)
		if isTrue {
			shownTrue = true
		} else {
			shownFP = true
		}
		if shownTrue && shownFP {
			break
		}
	}
}
