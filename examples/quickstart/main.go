// Quickstart: analyze a MiniChapel program for use-after-free accesses in
// fire-and-forget tasks.
//
//	go run ./examples/quickstart
//
// The program below forgets to synchronize its task with the parent
// scope; the analysis reports the dangerous accesses and the fixed
// variant comes back clean.
package main

import (
	"fmt"
	"log"

	"uafcheck"
)

const buggy = `
proc accumulate() {
  var total: int = 0;
  begin with (ref total) {
    total += 10;      // dangerous: nothing orders this before the
    writeln(total);   // parent's exit -- 'total' may already be freed
  }
  writeln("spawned worker");
}
`

const fixed = `
proc accumulate() {
  var total: int = 0;
  var done$: sync bool;
  begin with (ref total) {
    total += 10;
    writeln(total);
    done$ = true;     // signal the parent...
  }
  done$;              // ...which waits here before freeing 'total'
  writeln("spawned worker");
}
`

func main() {
	fmt.Println("== analyzing the buggy version ==")
	report, err := uafcheck.Analyze("buggy.chpl", buggy)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range report.Warnings {
		fmt.Println(w)
	}
	fmt.Printf("-> %d warning(s)\n\n", len(report.Warnings))

	fmt.Println("== analyzing the fixed version ==")
	report, err = uafcheck.Analyze("fixed.chpl", fixed)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range report.Warnings {
		fmt.Println(w)
	}
	fmt.Printf("-> %d warning(s)\n\n", len(report.Warnings))

	// The dynamic oracle agrees: the buggy version triggers a real
	// use-after-free under schedule exploration, the fixed one never
	// does.
	dyn, err := uafcheck.ExploreSchedules("buggy.chpl", buggy, "accumulate", 5000, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic oracle, buggy: %d schedules, UAF sites %v\n", dyn.Runs, dyn.UAFSites)

	dyn, err = uafcheck.ExploreSchedules("fixed.chpl", fixed, "accumulate", 5000, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic oracle, fixed: %d schedules, UAF sites %v\n", dyn.Runs, dyn.UAFSites)
}
