// Automatic repair (paper §VII: "optimize the amount and position of
// synchronization points required"): the engine synthesizes sync-variable
// wait chains or fences for every warning and verifies each patch both
// statically (re-analysis) and dynamically (schedule exploration).
//
//	go run ./examples/repair
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"uafcheck"
)

func main() {
	for _, file := range []string{"figure1.chpl", "figure6.chpl"} {
		path := filepath.Join("testdata", file)
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("%v (run from the repository root)", err)
		}
		src := string(data)

		rep, err := uafcheck.Analyze(path, src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d warning(s) ==\n", file, len(rep.Warnings))
		for _, w := range rep.Warnings {
			fmt.Println("  " + w.String())
		}

		fix, err := uafcheck.Repair(context.Background(), path, src)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range fix.Patches {
			extra := ""
			if p.Token != "" {
				extra = " introducing sync variable " + p.Token
			}
			fmt.Printf("  applied %s to %s in proc %s%s\n", p.Strategy, p.Task, p.Proc, extra)
		}
		for _, r := range fix.Rejected {
			fmt.Printf("  rejected candidate: %s\n", r)
		}
		fmt.Printf("  warnings: %d -> %d\n", fix.InitialWarnings, fix.RemainingWarnings)

		// Confirm the repair dynamically: no schedule may race or
		// deadlock.
		entry := "outerVarUse"
		if file == "figure6.chpl" {
			entry = "multipleUse"
		}
		dyn, err := uafcheck.ExploreSchedules("fixed.chpl", fix.Fixed, entry, 50000, 1, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  dynamic check: %d schedules, UAF %v, deadlocks %d\n\n",
			dyn.Runs, dyn.UAFSites, dyn.Deadlocks)

		fmt.Println("repaired source:")
		fmt.Println(fix.Fixed)
	}
}
