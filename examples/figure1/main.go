// Figure-1 walkthrough: the paper's running example, end to end.
//
//	go run ./examples/figure1
//
// Prints the program, its Concurrent Control Flow Graph (the paper's
// Figure 2), the Parallel Program State exploration table (Figure 3), the
// resulting warning, and the dynamic oracle's confirmation that TASK B's
// access is a real use-after-free while TASK A's accesses are safe.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"uafcheck"
)

func main() {
	path := filepath.Join("testdata", "figure1.chpl")
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("%v (run from the repository root)", err)
	}
	src := string(data)

	fmt.Println("== the program (paper Figure 1) ==")
	fmt.Println(src)

	fmt.Println("== CCFG (paper Figure 2) ==")
	ccfg, err := uafcheck.CCFGText(path, src, "outerVarUse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ccfg)

	fmt.Println("== PPS exploration (paper Figure 3) ==")
	trace, err := uafcheck.PPSTrace(path, src, "outerVarUse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(trace)

	fmt.Println("== warnings ==")
	report, err := uafcheck.Analyze(path, src)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range report.Warnings {
		fmt.Println(w)
	}
	for _, s := range report.Stats {
		fmt.Printf("stats: proc %s: %d nodes, %d tasks (%d pruned), %d tracked accesses, %d PPS states\n",
			s.Proc, s.Nodes, s.Tasks, s.PrunedTasks, s.TrackedAccesses, s.StatesProcessed)
	}

	fmt.Println("\n== dynamic confirmation (exhaustive schedule exploration) ==")
	dyn, err := uafcheck.ExploreSchedules(path, src, "outerVarUse", 100000, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedules: %d (exhausted=%t), deadlocks: %d\n", dyn.Runs, dyn.Exhausted, dyn.Deadlocks)
	for _, w := range report.Warnings {
		if dyn.ObservedUAF(w.Var, w.AccessLine) {
			fmt.Printf("  %s at line %d: CONFIRMED — some schedule frees %q before the access\n",
				w.Task, w.AccessLine, w.Var)
		} else {
			fmt.Printf("  %s at line %d: not observed dynamically\n", w.Task, w.AccessLine)
		}
	}
}
