// Branching example (paper §III-D, Figures 6 and 7): conditional task
// creation means the analysis must consider every run-time path.
//
//	go run ./examples/branching
//
// The first program is the paper's Figure 6: when the branch is taken,
// TASK B consumes the sync token itself and the parent may exit before
// TASK B's access. The second program shows the repaired version with a
// dedicated token per waiter.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"uafcheck"
)

const repaired = `
config const flag = true;
proc multipleUse() {
  var x: int = 10;
  var doneA$: sync bool;
  var doneB$: sync bool;
  begin with (ref x) {
    if (flag) {
      begin with (ref x) {
        writeln(x);
        doneB$ = true;   // dedicated token for TASK B
      }
    } else {
      doneB$ = true;     // keep the protocol total on the else path
    }
    doneA$ = true;
  }
  doneA$;
  doneB$;                // the parent now waits for BOTH tasks
}
`

func main() {
	path := filepath.Join("testdata", "figure6.chpl")
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("%v (run from the repository root)", err)
	}
	src := string(data)

	fmt.Println("== Figure 6: branch-dependent synchronization ==")
	report, err := uafcheck.Analyze(path, src)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range report.Warnings {
		fmt.Println(w)
	}

	fmt.Println("\n== PPS table (paper Figure 7): both branch paths explored ==")
	trace, err := uafcheck.PPSTrace(path, src, "multipleUse")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(trace)

	fmt.Println("== repaired version: a token per waiter ==")
	report, err = uafcheck.Analyze("repaired.chpl", repaired)
	if err != nil {
		log.Fatal(err)
	}
	if len(report.Warnings) == 0 {
		fmt.Println("no warnings — the wait chain now covers every path")
	}
	for _, w := range report.Warnings {
		fmt.Println(w)
	}

	// Dynamic cross-check on both versions.
	for _, v := range []struct{ name, src, entry string }{
		{"figure6", src, "multipleUse"},
		{"repaired", repaired, "multipleUse"},
	} {
		dyn, err := uafcheck.ExploreSchedules(v.name+".chpl", v.src, v.entry, 50000, 1, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dynamic oracle, %s: %d schedules, UAF sites %v, deadlocks %d\n",
			v.name, dyn.Runs, dyn.UAFSites, dyn.Deadlocks)
	}
}
