// Data races vs use-after-free: the dynamic oracle's vector-clock
// detector (the §VI related-work connection to static race detection,
// done dynamically) finds ordering races that are not lifetime bugs.
//
//	go run ./examples/races
package main

import (
	"fmt"
	"log"

	"uafcheck"
)

// The parent reads x concurrently with the task's write — an ordering
// race. It is NOT a lifetime bug: the done$ chain still keeps x alive
// until the task finishes, so the paper's analysis is rightly silent
// while the race detector speaks up.
const racy = `
proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) {
    x = 1;
    done$ = true;
  }
  writeln(x);
  done$;
}
`

const clean = `
proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) {
    x = 1;
    done$ = true;
  }
  done$;
  writeln(x);
}
`

func main() {
	for _, v := range []struct{ name, src string }{
		{"racy (read before the wait)", racy},
		{"clean (read after the wait)", clean},
	} {
		fmt.Printf("== %s ==\n", v.name)

		rep, err := uafcheck.Analyze(v.name, v.src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("static analysis: %d warning(s)\n", len(rep.Warnings))
		for _, w := range rep.Warnings {
			fmt.Println("  " + w.String())
		}

		dyn, err := uafcheck.ExploreSchedules(v.name, v.src, "main", 20000, 1, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dynamic oracle (%d schedules):\n", dyn.Runs)
		fmt.Printf("  use-after-free sites: %v\n", dyn.UAFSites)
		fmt.Printf("  data-race site pairs: %v\n", dyn.RaceSites)
		fmt.Println()
	}
	fmt.Println("The static pass targets LIFETIME violations (the paper's problem);")
	fmt.Println("the vector-clock detector catches ordering races as well. A program")
	fmt.Println("can have either, both, or neither — compare the two runs above.")
}
