package uafcheck_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"uafcheck"
)

// TestWarningJSONGolden pins the wire format of the Warning DTO. This
// is a compatibility contract: uafserve clients and cached disk entries
// both parse these bytes, so a field rename or reorder here is a
// breaking API change and must fail loudly.
func TestWarningJSONGolden(t *testing.T) {
	w := uafcheck.Warning{
		Var: "x", Task: "TASK A", Proc: "main", Write: true,
		Reason: "never-synchronized", Pos: "a.chpl:3:5",
		AccessLine: 3, AccessCol: 5, DeclLine: 2,
	}
	const want = `{"var":"x","task":"TASK A","proc":"main","write":true,` +
		`"reason":"never-synchronized","pos":"a.chpl:3:5",` +
		`"access_line":3,"access_col":5,"decl_line":2}`
	got, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("warning wire format drifted:\n got %s\nwant %s", got, want)
	}

	// The optional fields appear only when set.
	w.Conservative = true
	w.Prov = &uafcheck.WarningProvenance{NodeID: 1, Node: "n1[x]", SinkPPS: -1}
	got, err = json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	const wantFull = `{"var":"x","task":"TASK A","proc":"main","write":true,` +
		`"reason":"never-synchronized","pos":"a.chpl:3:5",` +
		`"access_line":3,"access_col":5,"decl_line":2,"conservative":true,` +
		`"prov":{"node_id":1,"node":"n1[x]","sink_pps":-1}}`
	if string(got) != wantFull {
		t.Errorf("warning wire format (full) drifted:\n got %s\nwant %s", got, wantFull)
	}
}

// TestReportJSONGoldenMinimal pins the empty-report encoding: every
// optional field omitted, the metrics object always present.
func TestReportJSONGoldenMinimal(t *testing.T) {
	got, err := json.Marshal(&uafcheck.Report{})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"metrics":{}}`; string(got) != want {
		t.Errorf("minimal report = %s, want %s", got, want)
	}
}

// TestReportJSONRoundTrip checks Marshal -> Unmarshal -> Marshal is
// byte-identical for real reports, including a degraded one carrying
// conservative warnings, stop reasons and incomplete proc stats.
func TestReportJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts []uafcheck.Option
	}{
		{"warning", "proc main() {\n  var x: int = 0;\n  begin with (ref x) { x = 1; }\n}\n", nil},
		{"clean", "proc main() {\n  var d$: sync bool;\n  var x: int = 0;\n  begin with (ref x) { x = 1; d$ = true; }\n  d$;\n}\n", nil},
		{"degraded", syntheticFanout(8, 2),
			[]uafcheck.Option{uafcheck.WithMaxStates(10)}},
		{"traced", "proc main() {\n  var x: int = 0;\n  begin with (ref x) { x = 1; }\n}\n",
			[]uafcheck.Option{uafcheck.WithTrace(true)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := uafcheck.AnalyzeContext(context.Background(), tc.name+".chpl", tc.src, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if tc.name == "degraded" {
				if rep.Degraded == nil {
					t.Fatal("expected a degraded report")
				}
				conservative := false
				for _, w := range rep.Warnings {
					conservative = conservative || w.Conservative
				}
				if !conservative {
					t.Error("degraded report has no conservative warnings")
				}
			}

			a, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			var decoded uafcheck.Report
			if err := json.Unmarshal(a, &decoded); err != nil {
				t.Fatalf("decode: %v", err)
			}
			b, err := json.Marshal(&decoded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("round trip not byte-identical:\n first %s\nsecond %s", a, b)
			}
		})
	}
}

// TestSortWarningsOrder pins the canonical presentation order shared by
// the CLI and the wire encoding.
func TestSortWarningsOrder(t *testing.T) {
	ws := []uafcheck.Warning{
		{Var: "b", Pos: "b.chpl:1:1", AccessLine: 1, AccessCol: 1},
		{Var: "a", Pos: "a.chpl:2:9", AccessLine: 2, AccessCol: 9},
		{Var: "z", Pos: "a.chpl:2:3", AccessLine: 2, AccessCol: 3},
		{Var: "a", Pos: "a.chpl:2:3", AccessLine: 2, AccessCol: 3},
	}
	uafcheck.SortWarnings(ws)
	got := make([]string, len(ws))
	for i, w := range ws {
		got[i] = w.Pos + "/" + w.Var
	}
	want := []string{"a.chpl:2:3/a", "a.chpl:2:3/z", "a.chpl:2:9/a", "b.chpl:1:1/b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}
