package uafcheck

import (
	"errors"
	"fmt"
	"strings"

	"uafcheck/internal/repair"
)

// Typed failure sentinels. Every entry point reports failures through
// these, wrapping-compatible with errors.Is, so callers branch on
// identity instead of matching message strings:
//
//	rep, err := uafcheck.AnalyzeContext(ctx, name, src)
//	if errors.Is(err, uafcheck.ErrParse) { ... reject the input ... }
//	if err := rep.Err(); errors.Is(err, uafcheck.ErrDeadline) { ... }
//
// The analysis itself never fails on resource pressure — it degrades
// soundly (Report.Degraded) — so budget/deadline/cancellation surface
// through Report.Err rather than the second return value.
var (
	// ErrParse: the source failed to lex, parse or resolve; the error
	// text lists the frontend diagnostics.
	ErrParse = errors.New("uafcheck: frontend errors")
	// ErrBudgetExhausted: the PPS exploration exhausted MaxStates and the
	// report degraded to conservative warnings.
	ErrBudgetExhausted = errors.New("uafcheck: analysis state budget exhausted")
	// ErrDeadline: the deadline (WithDeadline, the context's, or a batch
	// per-file timeout) expired mid-analysis.
	ErrDeadline = errors.New("uafcheck: analysis deadline exceeded")
	// ErrCancelled: the context was cancelled mid-analysis.
	ErrCancelled = errors.New("uafcheck: analysis cancelled")
	// ErrUnresolvedCall: module-mode analysis (AnalyzeModuleContext /
	// Analyzer.AnalyzeModuleDelta) found a call that names no procedure
	// in any file of the module. Errors carrying it also match ErrParse
	// — an unresolved call is a frontend rejection of the module — so
	// existing ErrParse handling (e.g. the uafserve 422 mapping) keeps
	// working, while module-aware callers can branch on the finer
	// sentinel to suggest the missing file.
	ErrUnresolvedCall = errors.New("uafcheck: unresolved cross-file call")
)

// ErrFrontend is the v1 name of ErrParse; both match the same errors.
//
// Deprecated: use ErrParse.
var ErrFrontend = ErrParse

// ErrRepairDegraded: Repair refused to run
// because the baseline analysis or a candidate's verification
// re-analysis degraded (budget, deadline, cancellation or a recovered
// panic). A degraded report's warnings are a conservative superset of
// the true set, so "the warning count decreased" cannot honestly accept
// a fix against it. Re-run with a larger budget or without the deadline.
var ErrRepairDegraded = repair.ErrDegraded

// Err maps the report's degradation (if any) onto the typed sentinels:
// nil for a complete run, ErrBudgetExhausted / ErrDeadline /
// ErrCancelled (wrapped with the affected procedures) for the resource
// rungs, and a non-sentinel error describing the recovered panic for
// DegradePanic. The report remains sound either way; Err exists so
// callers that need completeness can branch with errors.Is.
func (r *Report) Err() error {
	if r == nil {
		return nil
	}
	return r.Degraded.Err()
}

// Err maps a degradation onto the typed sentinels; see Report.Err.
func (d *Degradation) Err() error {
	if d == nil {
		return nil
	}
	var base error
	switch d.Reason {
	case DegradeBudget:
		base = ErrBudgetExhausted
	case DegradeDeadline:
		base = ErrDeadline
	case DegradeCancelled:
		base = ErrCancelled
	case DegradePanic:
		if len(d.Crashes) > 0 {
			c := d.Crashes[0]
			return fmt.Errorf("uafcheck: analysis panicked in phase %s: %s", c.Phase, c.Err)
		}
		return errors.New("uafcheck: analysis panicked")
	default:
		return fmt.Errorf("uafcheck: analysis degraded (%s)", d.Reason)
	}
	if len(d.Procs) > 0 {
		return fmt.Errorf("%w (procs: %s)", base, strings.Join(d.Procs, ", "))
	}
	return base
}

// Failure folds a batch file's outcome into one error: the frontend
// error (matching ErrParse) when the file was rejected, the report's
// degradation error otherwise, nil for a complete run — the same
// vocabulary single-file callers get from AnalyzeContext + Report.Err.
func (fr *FileReport) Failure() error {
	if fr.Err != nil {
		return fr.Err
	}
	if fr.Report == nil {
		return nil
	}
	return fr.Report.Err()
}
