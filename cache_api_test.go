// Public-API tests of the content-addressed report cache: hits for
// unchanged inputs, misses for any change of source or effective
// options, degraded results never cached, clone isolation, the disk
// layer, and the batch pre-pass.
package uafcheck_test

import (
	"context"
	"os"
	"testing"

	"uafcheck"
)

const cachedProg = `
proc main() {
  var x: int = 10;
  begin with (ref x) {
    writeln(x);
  }
}`

func TestCacheHitForUnchangedInput(t *testing.T) {
	cc := uafcheck.NewCache(uafcheck.CacheConfig{})
	ctx := context.Background()
	first, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(cc))
	if err != nil {
		t.Fatal(err)
	}
	second, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(cc))
	if err != nil {
		t.Fatal(err)
	}
	st := cc.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit / 1 store", st)
	}
	if len(second.Warnings) != len(first.Warnings) || second.Warnings[0].String() != first.Warnings[0].String() {
		t.Errorf("cached report drifted: %+v vs %+v", second.Warnings, first.Warnings)
	}
	if second.Metrics.Counter("cache.hits") != 1 {
		t.Errorf("cached report should carry the cache.hits counter, got %v", second.Metrics.Counters)
	}
	if first.Metrics.Counter("cache.misses") != 1 || first.Metrics.Counter("cache.stores") != 1 {
		t.Errorf("miss report should carry cache.misses/cache.stores, got %v", first.Metrics.Counters)
	}
}

func TestCacheMissOnSourceChange(t *testing.T) {
	cc := uafcheck.NewCache(uafcheck.CacheConfig{})
	ctx := context.Background()
	if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(cc)); err != nil {
		t.Fatal(err)
	}
	if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg+"\n// changed",
		uafcheck.WithCache(cc)); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses / 0 hits after a source change", st)
	}
}

func TestCacheMissOnOptionChange(t *testing.T) {
	cc := uafcheck.NewCache(uafcheck.CacheConfig{})
	ctx := context.Background()
	if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(cc)); err != nil {
		t.Fatal(err)
	}
	// Pruning participates in the content address, so flipping it must
	// miss; parallelism does not (results are identical), so it must hit.
	if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg,
		uafcheck.WithCache(cc), uafcheck.WithPrune(false)); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses after an option change", st)
	}
	if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg,
		uafcheck.WithCache(cc), uafcheck.WithParallelism(4)); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Hits != 1 {
		t.Errorf("stats = %+v, want a hit across parallelism levels", st)
	}
}

func TestCacheDegradedNeverStored(t *testing.T) {
	cc := uafcheck.NewCache(uafcheck.CacheConfig{})
	ctx := context.Background()
	// The fanout program explores far more than 2 states, so the budget
	// rung of the degradation ladder fires.
	src := syntheticFanout(4, 2)
	opts := []uafcheck.Option{uafcheck.WithCache(cc), uafcheck.WithMaxStates(2)}
	rep, err := uafcheck.AnalyzeContext(ctx, "fan.chpl", src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded == nil {
		t.Fatal("test premise broken: MaxStates=2 should degrade the fanout analysis")
	}
	if _, err := uafcheck.AnalyzeContext(ctx, "fan.chpl", src, opts...); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Stores != 0 || st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want degraded runs to always miss and never store", st)
	}
}

func TestCacheMutationIsolation(t *testing.T) {
	cc := uafcheck.NewCache(uafcheck.CacheConfig{})
	ctx := context.Background()
	if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(cc)); err != nil {
		t.Fatal(err)
	}
	hit1, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(cc))
	if err != nil {
		t.Fatal(err)
	}
	hit1.Warnings[0].Var = "tampered"
	hit1.Notes = append(hit1.Notes, "tampered")
	hit2, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(cc))
	if err != nil {
		t.Fatal(err)
	}
	if hit2.Warnings[0].Var != "x" {
		t.Errorf("cache entry was mutated through a returned report: %+v", hit2.Warnings[0])
	}
}

func TestCacheDiskLayerAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	first := uafcheck.NewCache(uafcheck.CacheConfig{Dir: dir})
	if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(first)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("disk layer entries = %d err = %v, want 1", len(entries), err)
	}

	second := uafcheck.NewCache(uafcheck.CacheConfig{Dir: dir})
	rep, err := uafcheck.AnalyzeContext(ctx, "main.chpl", cachedProg, uafcheck.WithCache(second))
	if err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.Hits != 1 || st.DiskHits != 1 {
		t.Errorf("stats = %+v, want the hit served from disk", st)
	}
	if len(rep.Warnings) != 1 || rep.Warnings[0].Var != "x" {
		t.Errorf("disk round trip lost the warning: %+v", rep.Warnings)
	}
}

func TestAnalyzeFilesCacheFlags(t *testing.T) {
	cc := uafcheck.NewCache(uafcheck.CacheConfig{})
	ctx := context.Background()
	files := []uafcheck.FileInput{
		{Name: "a.chpl", Src: cachedProg},
		{Name: "b.chpl", Src: "proc main() {\n  var y: int = 1;\n  begin with (ref y) {\n    y = 2;\n  }\n}"},
	}
	cold := uafcheck.AnalyzeFilesContext(ctx, files, uafcheck.WithCache(cc))
	for i, fr := range cold.Files {
		if fr.Cached {
			t.Errorf("cold run file %d marked cached", i)
		}
	}
	warm := uafcheck.AnalyzeFilesContext(ctx, files, uafcheck.WithCache(cc))
	if warm.Summary.Files != 2 || warm.Summary.OK != 2 {
		t.Errorf("warm summary = %+v, want 2 files / 2 ok", warm.Summary)
	}
	for i, fr := range warm.Files {
		if !fr.Cached {
			t.Errorf("warm run file %d not served from cache", i)
		}
		if fr.Report == nil {
			t.Fatalf("warm run file %d has nil report", i)
		}
		if len(fr.Report.Warnings) != len(cold.Files[i].Report.Warnings) {
			t.Errorf("warm file %d warning count drifted", i)
		}
	}
	if st := cc.Stats(); st.Misses != 2 || st.Hits != 2 || st.Stores != 2 {
		t.Errorf("stats = %+v, want 2 misses / 2 hits / 2 stores", st)
	}
}
