package uafcheck_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	"uafcheck"
)

const apiBuggy = `
proc leak() {
  var data: int = 0;
  begin with (ref data) {
    data = 1;
  }
}
`

const apiFixed = `
proc leak() {
  var data: int = 0;
  var done$: sync bool;
  begin with (ref data) {
    data = 1;
    done$ = true;
  }
  done$;
}
`

func TestAnalyzeBasic(t *testing.T) {
	rep, err := uafcheck.Analyze("a.chpl", apiBuggy)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1", len(rep.Warnings))
	}
	w := rep.Warnings[0]
	if w.Var != "data" || !w.Write || w.Task != "TASK A" || w.Proc != "leak" {
		t.Errorf("warning = %+v", w)
	}
	if w.Reason != "never-synchronized" {
		t.Errorf("reason = %s", w.Reason)
	}
	if !strings.Contains(w.String(), "potentially dangerous write") {
		t.Errorf("String() = %s", w.String())
	}
	if len(rep.Stats) != 1 || rep.Stats[0].Tasks != 2 {
		t.Errorf("stats = %+v", rep.Stats)
	}

	rep, err = uafcheck.Analyze("b.chpl", apiFixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 0 {
		t.Fatalf("fixed version warned: %v", rep.Warnings)
	}
}

func TestAnalyzeFrontendError(t *testing.T) {
	_, err := uafcheck.Analyze("bad.chpl", "proc f( {")
	if err == nil {
		t.Fatal("expected frontend error")
	}
	if !errors.Is(err, uafcheck.ErrFrontend) {
		t.Errorf("error not wrapped as ErrFrontend: %v", err)
	}
}

func TestCCFGRendering(t *testing.T) {
	text, err := uafcheck.CCFGText("a.chpl", apiBuggy, "leak")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "TASK A") || !strings.Contains(text, "OV(data,W)") {
		t.Errorf("CCFGText = %s", text)
	}
	dot, err := uafcheck.CCFGDot("a.chpl", apiBuggy, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph ccfg") {
		t.Errorf("CCFGDot = %s", dot)
	}
	if _, err := uafcheck.CCFGText("a.chpl", apiBuggy, "nonexistent"); err == nil {
		t.Error("unknown proc should error")
	}
}

func TestPPSTraceRendering(t *testing.T) {
	trace, err := uafcheck.PPSTrace("b.chpl", apiFixed, "leak")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ASN", "done$", "sink"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
}

func TestExploreSchedulesAPI(t *testing.T) {
	dyn, err := uafcheck.ExploreSchedules("a.chpl", apiBuggy, "leak", 5000, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !dyn.Exhausted {
		t.Error("tiny program should be exhaustible")
	}
	if len(dyn.UAFSites) != 1 || !dyn.ObservedUAF("data", 5) {
		t.Errorf("UAF sites = %v", dyn.UAFSites)
	}
	dyn, err = uafcheck.ExploreSchedules("b.chpl", apiFixed, "leak", 5000, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.UAFSites) != 0 {
		t.Errorf("fixed version UAF = %v", dyn.UAFSites)
	}
}

func TestRunProgramOutput(t *testing.T) {
	out, err := uafcheck.RunProgram("p.chpl", `
proc main() {
  var x: int = 6;
  writeln("x=", x * 7);
}`, "main", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "x=42" {
		t.Errorf("output = %v", out)
	}
}

func TestModelAtomicsOption(t *testing.T) {
	src := `
proc f() {
  var x: int = 0;
  var g: atomic int;
  begin with (ref x) {
    x = 1;
    g.write(1);
  }
  g.waitFor(1);
}`
	opts := uafcheck.DefaultOptions()
	rep, err := uafcheck.AnalyzeWithOptions("a.chpl", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 1 {
		t.Fatalf("default warnings = %d, want 1", len(rep.Warnings))
	}
	opts.ModelAtomics = true
	rep, err = uafcheck.AnalyzeWithOptions("a.chpl", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 0 {
		t.Fatalf("extension warnings = %d, want 0", len(rep.Warnings))
	}
}

func TestCorpusAndTableIAPI(t *testing.T) {
	params := uafcheck.CorpusParams{Seed: 3, Tests: 100, BeginTests: 20,
		UnsafeTests: 4, TrueSites: 8, AtomicFPTests: 4, FalseSites: 12}
	cases := uafcheck.GenerateCorpus(params)
	if len(cases) != 100 {
		t.Fatalf("corpus size = %d", len(cases))
	}
	table, breakdown := uafcheck.RunTableI(cases, uafcheck.DefaultOptions())
	if table.TruePositives != 8 || table.WarningsReported != 20 {
		t.Errorf("table = %+v", table)
	}
	if !strings.Contains(breakdown, "pattern") {
		t.Errorf("breakdown = %s", breakdown)
	}
	cmp := uafcheck.BaselineComparison(cases, uafcheck.DefaultOptions())
	if !strings.Contains(cmp, "Naive MHP") {
		t.Errorf("baseline comparison = %s", cmp)
	}
}

func TestTestdataProgramsStable(t *testing.T) {
	// The checked-in figure programs keep their documented verdicts.
	for _, tc := range []struct {
		file  string
		warns int
	}{
		{"testdata/figure1.chpl", 1},
		{"testdata/figure1_safe.chpl", 0},
		{"testdata/figure6.chpl", 1},
	} {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := uafcheck.Analyze(tc.file, string(data))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Warnings) != tc.warns {
			t.Errorf("%s: warnings = %d, want %d", tc.file, len(rep.Warnings), tc.warns)
		}
	}
}
