package uafcheck_test

// Golden-annotation suite: every .chpl file under testdata/suite carries
// expectation comments that the analysis output is checked against —
// the same style a compiler test suite (like the Chapel suite the paper
// evaluates on) uses.
//
// Annotation grammar (leading comment lines):
//
//	// expect: clean
//	// expect: warning <var> <task...> <reason>
//	// expect: note <substring>
//	// options: model-atomics | count-atomics | no-prune
//	// entry: <proc>   (dynamic-check entry point)
//
// Unlisted warnings, missing warnings and missing notes all fail.
// Additionally, every clean-expected program is run through the dynamic
// oracle to confirm it is genuinely schedule-safe.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck"
)

type expectation struct {
	clean    bool
	warnings []warnExpect
	notes    []string
	entry    string
	opts     uafcheck.Options
}

type warnExpect struct {
	variable string
	task     string
	reason   string
}

func parseExpectations(t *testing.T, src, name string) expectation {
	t.Helper()
	exp := expectation{opts: uafcheck.DefaultOptions()}
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "// entry:") {
			exp.entry = strings.TrimSpace(strings.TrimPrefix(line, "// entry:"))
			continue
		}
		if strings.HasPrefix(line, "// options:") {
			for _, opt := range strings.Fields(strings.TrimPrefix(line, "// options:")) {
				switch opt {
				case "model-atomics":
					exp.opts.ModelAtomics = true
				case "count-atomics":
					exp.opts.CountAtomics = true
				case "no-prune":
					exp.opts.Prune = false
				default:
					t.Fatalf("%s: unknown option %q", name, opt)
				}
			}
			continue
		}
		if !strings.HasPrefix(line, "// expect:") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "// expect:"))
		switch {
		case rest == "clean":
			exp.clean = true
		case strings.HasPrefix(rest, "warning "):
			fields := strings.Fields(strings.TrimPrefix(rest, "warning "))
			if len(fields) < 3 {
				t.Fatalf("%s: malformed warning expectation %q", name, line)
			}
			reason := fields[len(fields)-1]
			exp.warnings = append(exp.warnings, warnExpect{
				variable: fields[0],
				task:     strings.Join(fields[1:len(fields)-1], " "),
				reason:   reason,
			})
		case strings.HasPrefix(rest, "note "):
			exp.notes = append(exp.notes, strings.TrimPrefix(rest, "note "))
		default:
			t.Fatalf("%s: unknown expectation %q", name, line)
		}
	}
	if !exp.clean && len(exp.warnings) == 0 && len(exp.notes) == 0 {
		t.Fatalf("%s: no expectations declared", name)
	}
	return exp
}

func TestGoldenSuite(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "suite", "*.chpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no suite files: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			exp := parseExpectations(t, src, path)

			rep, err := uafcheck.AnalyzeWithOptions(path, src, exp.opts)
			if err != nil {
				t.Fatalf("analysis failed: %v", err)
			}

			// Match warnings exactly (set equality on var+task+reason).
			got := make(map[string]int)
			for _, w := range rep.Warnings {
				got[fmt.Sprintf("%s|%s|%s", w.Var, w.Task, w.Reason)]++
			}
			want := make(map[string]int)
			for _, w := range exp.warnings {
				want[fmt.Sprintf("%s|%s|%s", w.variable, w.task, w.reason)]++
			}
			if exp.clean && len(rep.Warnings) != 0 {
				t.Errorf("expected clean, got %d warnings:\n%v", len(rep.Warnings), rep.Warnings)
			}
			for k, n := range want {
				if got[k] < n {
					t.Errorf("missing expected warning %s (want %d, got %d)\nall: %v",
						k, n, got[k], rep.Warnings)
				}
			}
			for k := range got {
				if _, ok := want[k]; !ok && !exp.clean {
					t.Errorf("unexpected warning %s\nall: %v", k, rep.Warnings)
				}
			}
			// Notes: substring match.
			for _, n := range exp.notes {
				found := false
				for _, note := range rep.Notes {
					if strings.Contains(note, n) {
						found = true
					}
				}
				if !found {
					t.Errorf("missing expected note containing %q\nnotes: %v", n, rep.Notes)
				}
			}

			// Dynamic cross-check for clean programs: no schedule may
			// race or deadlock.
			if exp.clean {
				entry := exp.entry
				if entry == "" {
					entry = entryProc(src)
				}
				dyn, err := uafcheck.ExploreSchedules(path, src, entry, 30000, 1, true)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				if len(dyn.UAFSites) != 0 {
					t.Errorf("clean-expected program races dynamically: %v", dyn.UAFSites)
				}
				if dyn.Deadlocks != 0 {
					t.Errorf("clean-expected program deadlocks dynamically")
				}
			}
		})
	}
}

// entryProc extracts the first procedure name from the source (suite
// programs put the analyzed entry first or make it self-contained).
func entryProc(src string) string {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "proc ") {
			rest := strings.TrimPrefix(line, "proc ")
			if i := strings.IndexAny(rest, "( "); i > 0 {
				return rest[:i]
			}
		}
	}
	return ""
}
