#!/usr/bin/env sh
# Cluster smoke against real processes, run in CI's chaos-short job:
#
#   1. boot a coordinator in front of 2 workers and a single-process
#      reference server
#   2. drive the same batch through the cluster edge and assert the
#      NDJSON line set is byte-identical to the single process
#      (order-insensitive: lines stream in completion order)
#   3. boot a second fleet with injected per-analysis latency, kill
#      both workers mid-batch, and assert the edge stream still
#      carries one well-formed line per file, with the unfinished
#      files flagged as status "error" naming the lost worker —
#      degraded visibly, never silently short or corrupt
#
# Run via `make cluster-smoke`. Requires curl and jq. See
# docs/CLUSTER.md.
set -eu

for tool in curl jq; do
	command -v "$tool" >/dev/null 2>&1 || {
		echo "cluster-smoke: $tool not installed" >&2
		exit 1
	}
done

FILES=${FILES:-16}
KILL_DELAY=${KILL_DELAY:-300ms}
WORK=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "cluster-smoke: building uafserve"
go build -o "$WORK/uafserve" ./cmd/uafserve

# boot LOG [flags...]: start uafserve on an ephemeral port and wait for
# its address announcement. Sets BOOT_PID and BOOT_ADDR.
boot() {
	log=$1
	shift
	GOMAXPROCS=1 "$WORK/uafserve" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
	BOOT_PID=$!
	PIDS="$PIDS $BOOT_PID"
	BOOT_ADDR=""
	for _ in $(seq 1 100); do
		BOOT_ADDR=$(sed -n 's/^uafserve: listening on //p' "$log" | head -n1)
		[ -n "$BOOT_ADDR" ] && break
		sleep 0.1
	done
	[ -n "$BOOT_ADDR" ] || {
		echo "cluster-smoke: server did not start" >&2
		cat "$log" >&2
		exit 1
	}
}

# The batch: FILES distinct single-proc sources, each with a genuine
# fire-and-forget use-after-free so every line carries a real warning.
jq -n --argjson n "$FILES" '{files: [range(0; $n) | {
	name: "smoke-\(.).chpl",
	src: "proc smokeCase\(.)() {\n  var x: int = \(.);\n  begin with (ref x) {\n    x += 1;\n  }\n}\n"
}]}' >"$WORK/req.json"

# ---- phase 1: byte-identity through the edge -------------------------

boot "$WORK/single.log" -inflight 1
SINGLE=$BOOT_ADDR
boot "$WORK/w0.log" -mode worker -inflight 1
W0=$BOOT_ADDR
boot "$WORK/w1.log" -mode worker -inflight 1
W1=$BOOT_ADDR
boot "$WORK/coord.log" -mode coordinator -probe-interval 500ms \
	-workers "worker-0=http://$W0,worker-1=http://$W1"
COORD=$BOOT_ADDR
echo "cluster-smoke: single on $SINGLE, coordinator on $COORD (workers $W0, $W1)"

curl -sf "http://$SINGLE/v1/analyze-batch" -d @"$WORK/req.json" | sort >"$WORK/single.sorted"
curl -sf "http://$COORD/v1/analyze-batch" -d @"$WORK/req.json" | sort >"$WORK/cluster.sorted"
if ! cmp -s "$WORK/single.sorted" "$WORK/cluster.sorted"; then
	echo "cluster-smoke: FAIL — cluster batch differs from single process:" >&2
	diff "$WORK/single.sorted" "$WORK/cluster.sorted" >&2 || true
	exit 1
fi
LINES=$(wc -l <"$WORK/cluster.sorted")
[ "$LINES" -eq "$FILES" ] || {
	echo "cluster-smoke: FAIL — $LINES lines for $FILES files" >&2
	exit 1
}
echo "cluster-smoke: edge batch byte-identical to single process ($LINES lines)"

# ---- phase 2: kill the workers mid-batch -----------------------------

boot "$WORK/kw0.log" -mode worker -inflight 1 -faults "analysis.delay=delay:1:0:$KILL_DELAY"
KW0=$BOOT_ADDR
KW0_PID=$BOOT_PID
boot "$WORK/kw1.log" -mode worker -inflight 1 -faults "analysis.delay=delay:1:0:$KILL_DELAY"
KW1=$BOOT_ADDR
KW1_PID=$BOOT_PID
boot "$WORK/kcoord.log" -mode coordinator -probe-interval 500ms \
	-workers "worker-0=http://$KW0,worker-1=http://$KW1"
KCOORD=$BOOT_ADDR

# With FILES x KILL_DELAY spread over two one-slot workers the batch
# needs several seconds; killing at ~1s lands mid-stream.
curl -s "http://$KCOORD/v1/analyze-batch" -d @"$WORK/req.json" >"$WORK/killed.ndjson" &
CURL_PID=$!
sleep 1
kill -9 "$KW0_PID" "$KW1_PID"
echo "cluster-smoke: killed both workers mid-batch"
wait "$CURL_PID"

KLINES=$(jq -rs 'length' "$WORK/killed.ndjson") || {
	echo "cluster-smoke: FAIL — edge relayed malformed NDJSON after worker kill" >&2
	cat "$WORK/killed.ndjson" >&2
	exit 1
}
KNAMES=$(jq -rs '[.[].name] | unique | length' "$WORK/killed.ndjson")
ERRORS=$(jq -rs '[.[] | select(.status == "error")] | length' "$WORK/killed.ndjson")
FLAGGED=$(jq -rs '[.[] | select(.status == "error")
	| select(.error | test("worker lost|no worker reachable|unreachable"))] | length' \
	"$WORK/killed.ndjson")
echo "cluster-smoke: after kill: $KLINES lines, $KNAMES distinct files, $ERRORS error-flagged ($FLAGGED naming the lost worker)"
[ "$KLINES" -eq "$FILES" ] || {
	echo "cluster-smoke: FAIL — stream silently short: $KLINES lines for $FILES files" >&2
	exit 1
}
[ "$KNAMES" -eq "$FILES" ] || {
	echo "cluster-smoke: FAIL — some files got no line at all" >&2
	exit 1
}
[ "$ERRORS" -ge 1 ] || {
	echo "cluster-smoke: FAIL — workers died mid-batch but no line was degraded-flagged" >&2
	exit 1
}
[ "$FLAGGED" -eq "$ERRORS" ] || {
	echo "cluster-smoke: FAIL — error lines do not name the lost worker" >&2
	exit 1
}
echo "cluster-smoke: OK — identity holds and a mid-batch worker kill degrades visibly"
