#!/usr/bin/env sh
# Module smoke: whole-module interprocedural analysis through a real
# 2-worker cluster, run in CI's chaos-short job:
#
#   1. boot a coordinator in front of 2 workers
#   2. analyze a 3-file module (main -> mid -> leaf, where leaf's begin
#      escapes the whole call chain) with one batch mode=module request
#      and assert the warning is attributed to the cross-file caller
#   3. stream three /v1/delta module snapshots — the original, an
#      edited callee (the caller's warning must be re-reported), and a
#      synchronized callee (the caller's warning must disappear) —
#      proving a callee edit re-analyzes the transitive caller
#   4. assert the module cell landed on exactly one worker and that the
#      worker served unit-memo hits across snapshots (routing by module
#      label keeps the memo affinity through the edge)
#
# Run via `make module-smoke`. Requires curl and jq. See
# docs/INTERPROCEDURAL.md and docs/CLUSTER.md.
set -eu

for tool in curl jq; do
	command -v "$tool" >/dev/null 2>&1 || {
		echo "module-smoke: $tool not installed" >&2
		exit 1
	}
done

WORK=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "module-smoke: building uafserve"
go build -o "$WORK/uafserve" ./cmd/uafserve

# boot LOG [flags...]: start uafserve on an ephemeral port and wait for
# its address announcement. Sets BOOT_PID and BOOT_ADDR.
boot() {
	log=$1
	shift
	GOMAXPROCS=1 "$WORK/uafserve" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
	BOOT_PID=$!
	PIDS="$PIDS $BOOT_PID"
	BOOT_ADDR=""
	for _ in $(seq 1 100); do
		BOOT_ADDR=$(sed -n 's/^uafserve: listening on //p' "$log" | head -n1)
		[ -n "$BOOT_ADDR" ] && break
		sleep 0.1
	done
	[ -n "$BOOT_ADDR" ] || {
		echo "module-smoke: server did not start" >&2
		cat "$log" >&2
		exit 1
	}
}

boot "$WORK/w0.log" -mode worker
W0=$BOOT_ADDR
boot "$WORK/w1.log" -mode worker
W1=$BOOT_ADDR
boot "$WORK/coord.log" -mode coordinator -probe-interval 500ms \
	-workers "worker-0=http://$W0,worker-1=http://$W1"
COORD=$BOOT_ADDR
echo "module-smoke: coordinator on $COORD (workers $W0, $W1)"

# The module: leaf's fire-and-forget write of its by-ref formal escapes
# through mid into main; only whole-module analysis can see it there.
LEAF_V1='proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + 1;\n  }\n}\n'
LEAF_V2='proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + 9;\n  }\n}\n'
LEAF_V3='proc leaf(ref v: int) {\n  sync {\n    begin with (ref v) {\n      v = v + 1;\n    }\n  }\n}\n'
MID='proc mid(ref w: int) {\n  leaf(w);\n}\n'
MAIN='proc main() {\n  var x: int = 0;\n  mid(x);\n}\n'

module_req() {
	jq -n --arg leaf "$(printf '%b' "$1")" \
		--arg mid "$(printf '%b' "$MID")" \
		--arg main "$(printf '%b' "$MAIN")" \
		'{module: "app", files: [
			{name: "leaf.chpl", src: $leaf},
			{name: "mid.chpl", src: $mid},
			{name: "main.chpl", src: $main}]}'
}

# ---- phase 1: batch mode=module through the edge ---------------------

module_req "$LEAF_V1" | jq '. + {mode: "module"}' >"$WORK/batch.json"
curl -sf "http://$COORD/v1/analyze-batch" -d @"$WORK/batch.json" >"$WORK/batch.ndjson"
LINES=$(jq -rs 'length' "$WORK/batch.ndjson")
[ "$LINES" -eq 3 ] || {
	echo "module-smoke: FAIL — $LINES batch lines for 3 module files" >&2
	cat "$WORK/batch.ndjson" >&2
	exit 1
}
CALLER_WARN=$(jq -rs '[.[] | select(.name == "main.chpl") | .report.warnings[]?
	| select(.task | test("escaping"))] | length' "$WORK/batch.ndjson")
[ "$CALLER_WARN" -ge 1 ] || {
	echo "module-smoke: FAIL — main.chpl carries no escaping-task warning:" >&2
	cat "$WORK/batch.ndjson" >&2
	exit 1
}
echo "module-smoke: batch module analysis attributes leaf's task to main.chpl"

# ---- phase 2: callee edits over /v1/delta ----------------------------

{
	module_req "$LEAF_V1" | jq -c .
	module_req "$LEAF_V2" | jq -c .
	module_req "$LEAF_V3" | jq -c .
} >"$WORK/delta.ndjson"
curl -sf "http://$COORD/v1/delta" --data-binary @"$WORK/delta.ndjson" \
	-H 'Content-Type: application/x-ndjson' >"$WORK/delta.out"
DLINES=$(jq -rs 'length' "$WORK/delta.out")
[ "$DLINES" -eq 9 ] || {
	echo "module-smoke: FAIL — $DLINES delta lines for 3 snapshots x 3 files" >&2
	cat "$WORK/delta.out" >&2
	exit 1
}
# Snapshot 2 (lines 4-6): edited callee still escapes — the caller's
# warning must be re-reported. Snapshot 3 (lines 7-9): the callee
# synchronized its task — the caller's warning must be gone.
WARM_WARN=$(jq -rs '[.[3:6][] | select(.name == "main.chpl") | .report.warnings[]?
	| select(.task | test("escaping"))] | length' "$WORK/delta.out")
FIXED_WARN=$(jq -rs '[.[6:9][] | select(.name == "main.chpl") | .report.warnings[]?] | length' \
	"$WORK/delta.out")
[ "$WARM_WARN" -ge 1 ] || {
	echo "module-smoke: FAIL — callee edit did not re-report the caller's warning" >&2
	cat "$WORK/delta.out" >&2
	exit 1
}
[ "$FIXED_WARN" -eq 0 ] || {
	echo "module-smoke: FAIL — synchronized callee but caller still warns" >&2
	cat "$WORK/delta.out" >&2
	exit 1
}
echo "module-smoke: callee edit re-reports the caller ($WARM_WARN warning), synchronized callee clears it"

# ---- phase 3: routing affinity and memo reuse ------------------------

count() { # count HOST METRIC
	curl -sf "http://$1/metrics" | sed -n "s/^$2 //p" | head -n1
}
load() { # total module files a worker analyzed
	b=$(count "$1" uafcheck_server_batch_files)
	d=$(count "$1" uafcheck_server_delta_files)
	echo $((${b:-0} + ${d:-0}))
}
L0=$(load "$W0")
L1=$(load "$W1")
if [ "$L0" -gt 0 ] && [ "$L1" -gt 0 ]; then
	echo "module-smoke: FAIL — module cell split across workers (w0=$L0 w1=$L1 files)" >&2
	exit 1
fi
if [ "$L0" -gt 0 ]; then HOT=$W0; else HOT=$W1; fi
HITS=$(count "$HOT" uafcheck_incr_unit_hits)
[ "${HITS:-0}" -ge 1 ] || {
	echo "module-smoke: FAIL — warm worker served no unit-memo hits across snapshots" >&2
	exit 1
}
echo "module-smoke: OK — one worker owned the module cell ($((L0 + L1)) files, $HITS unit hits)"
