#!/usr/bin/env sh
# Cluster scaling load test against real processes:
#
#   1. build uafserve and the clusterbench driver
#   2. boot a single-process baseline plus a coordinator in front of
#      1, 2 and 4 workers (each worker GOMAXPROCS=1, -inflight 1 — a
#      simulated one-core machine; per-analysis latency injected with
#      the deterministic analysis.delay fault point)
#   3. drive the same batch through every topology
#   4. hard-fail if any topology's warning line set differs from the
#      single-process baseline, or if 2 workers do not beat 1 worker
#      by at least MIN_SPEEDUP (default 1.6x)
#   5. write BENCH_cluster.json
#
# Run via `make cluster-loadtest`. See docs/CLUSTER.md.
set -eu

OUT=${OUT:-BENCH_cluster.json}
DELAY=${DELAY:-40ms}
PER_CELL=${PER_CELL:-8}
MIN_SPEEDUP=${MIN_SPEEDUP:-1.6}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT INT TERM

echo "cluster-loadtest: building uafserve and clusterbench"
go build -o "$WORK/uafserve" ./cmd/uafserve
go build -o "$WORK/clusterbench" ./cmd/clusterbench

"$WORK/clusterbench" \
	-bin "$WORK/uafserve" \
	-out "$OUT" \
	-delay "$DELAY" \
	-per-cell "$PER_CELL" \
	-min-speedup "$MIN_SPEEDUP"

echo "cluster-loadtest: OK — artifact in $OUT"
