#!/usr/bin/env sh
# Round-trip smoke of the repair API against the real daemon:
#
#   1. boot uafserve on an ephemeral port
#   2. POST a corpus file with warnings to /v1/repair
#   3. assert every served patch line carries a verified verdict and
#      the stream terminates in a clean summary
#   4. apply the summary's unified diff with the real patch(1)
#   5. re-analyze the patched file with the CLI and assert exit 0
#      (zero warnings)
#
# Run via `make repair-smoke`. Requires curl, jq and patch.
set -eu

for tool in curl jq patch; do
	command -v "$tool" >/dev/null 2>&1 || {
		echo "repair-smoke: $tool not installed" >&2
		exit 1
	}
done

FILE=${1:-testdata/figure1.chpl}
NAME=$(basename "$FILE")
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "repair-smoke: building uafserve and uafcheck"
go build -o "$WORK/uafserve" ./cmd/uafserve
go build -o "$WORK/uafcheck" ./cmd/uafcheck

"$WORK/uafserve" -addr 127.0.0.1:0 >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# The bound address is printed on startup ("uafserve: listening on ...").
ADDR=""
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's/^uafserve: listening on //p' "$WORK/serve.log" | head -n1)
	[ -n "$ADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "repair-smoke: server did not start"; cat "$WORK/serve.log"; exit 1; }
echo "repair-smoke: server on $ADDR"

jq -n --arg name "$NAME" --rawfile src "$FILE" '{name: $name, src: $src}' >"$WORK/req.json"
curl -sf "http://$ADDR/v1/repair" -d @"$WORK/req.json" >"$WORK/repair.ndjson"

PATCHES=$(jq -rs '[.[] | select(.kind=="patch")] | length' "$WORK/repair.ndjson")
UNVERIFIED=$(jq -rs '[.[] | select(.kind=="patch") | select(.patch.verdict.verified != true)] | length' "$WORK/repair.ndjson")
STATUS=$(jq -r 'select(.kind=="summary") | .summary.status' "$WORK/repair.ndjson")
REMAINING=$(jq -r 'select(.kind=="summary") | .summary.remaining_warnings' "$WORK/repair.ndjson")
echo "repair-smoke: $PATCHES patch(es), summary status=$STATUS remaining=$REMAINING"
[ "$PATCHES" -ge 1 ] || { echo "repair-smoke: no patches served"; cat "$WORK/repair.ndjson"; exit 1; }
[ "$UNVERIFIED" -eq 0 ] || { echo "repair-smoke: unverified patch served"; exit 1; }
[ "$STATUS" = clean ] || { echo "repair-smoke: repair did not come back clean"; exit 1; }

# Apply the cumulative diff exactly as a client would: patch -p1 strips
# the a/-b/ prefixes, so the target sits at the workdir root.
jq -r 'select(.kind=="summary") | .summary.diff' "$WORK/repair.ndjson" >"$WORK/fix.diff"
cp "$FILE" "$WORK/$NAME"
(cd "$WORK" && patch -p1 --no-backup-if-mismatch <fix.diff)

echo "repair-smoke: re-analyzing patched $NAME"
"$WORK/uafcheck" "$WORK/$NAME" || {
	echo "repair-smoke: patched source still warns (exit $?)"
	exit 1
}
echo "repair-smoke: OK — patch applied cleanly, re-analysis reports zero warnings"
