package uafcheck

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"uafcheck/internal/analysis"
	"uafcheck/internal/cache"
	"uafcheck/internal/obs"
)

// Analyzer is a long-lived analysis handle: it owns a per-procedure
// memo store (and, when configured, a report cache) that persist across
// calls, so re-analyzing a file after an edit only pays for the
// procedures the edit touched. It is the v2 home for editor/daemon
// workloads — uafcheck -watch and the uafserve /v1/delta endpoint are
// both built on it.
//
// The handle is safe for concurrent use. Options are fixed at
// construction; per-call variation belongs in the context (deadline,
// cancellation). Reports are byte-identical — through the
// internal/wire canonical encoding — to what a from-scratch
// AnalyzeContext run with the same options produces; see
// docs/INCREMENTAL.md for the fingerprinting and invalidation rules.
type Analyzer struct {
	opts  Options
	units *analysis.Units

	files      atomic.Int64
	unitHits   atomic.Int64
	unitMisses atomic.Int64
}

// AnalyzerStats is a snapshot of an Analyzer's incremental traffic.
type AnalyzerStats struct {
	// Files counts AnalyzeDelta calls (batch files included).
	Files int64
	// UnitHits / UnitMisses count analysis units (top-level procedures
	// containing begin tasks) served from the memo store vs recomputed.
	UnitHits   int64
	UnitMisses int64
	// Units is the number of memoized units currently held.
	Units int
}

// NewAnalyzer creates an analysis handle. It accepts the same
// functional options as AnalyzeContext (WithPrune, WithMaxStates,
// WithAtomicsModel, WithCache, ...) plus WithUnitCacheEntries to bound
// the per-procedure memo store. Batch-only options are honored when the
// handle drives a batch via WithAnalyzer.
func NewAnalyzer(options ...Option) *Analyzer {
	cfg := apiConfig{opts: DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	return &Analyzer{
		opts:  cfg.opts,
		units: analysis.NewUnits(Version, cfg.unitCacheEntries),
	}
}

// Stats returns the handle's incremental traffic counters.
func (a *Analyzer) Stats() AnalyzerStats {
	return AnalyzerStats{
		Files:      a.files.Load(),
		UnitHits:   a.unitHits.Load(),
		UnitMisses: a.unitMisses.Load(),
		Units:      a.units.Len(),
	}
}

// AnalyzeDelta analyzes one file reusing every memoized unit whose
// fingerprint still matches, and memoizing the units it had to compute.
// The first call over a file is a warm-up (every unit misses); after a
// single-procedure edit, subsequent calls recompute only that
// procedure. The returned report is byte-identical (canonical wire
// encoding) to AnalyzeContext with this handle's options.
//
// Frontend failures return an error matching ErrParse; resource
// degradation surfaces through Report.Err as usual. Trace mode bypasses
// the memo store (retained graphs are not serializable) and runs the
// full pipeline.
func (a *Analyzer) AnalyzeDelta(ctx context.Context, filename, src string) (rep *Report, err error) {
	opts := a.opts
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	defer func() {
		// Same last-resort fault isolation as AnalyzeWithOptions: a crash
		// outside the per-proc pipeline degrades the report, never the
		// caller.
		if r := recover(); r != nil {
			rep = &Report{Degraded: &Degradation{
				Reason: DegradePanic,
				Crashes: []Crash{{
					Phase: "frontend",
					Err:   fmt.Sprint(r),
					Stack: string(debug.Stack()),
				}},
			}}
			err = nil
		}
	}()
	a.files.Add(1)
	rec := obs.New(opts.MetricsSinks...)
	in := opts.internal()
	in.KeepGraphs = opts.Trace
	in.Obs = rec
	in.Ctx = ctx

	var key cache.Key
	if opts.Cache != nil {
		key = reportKey(filename, src, in)
		hit, ok, lookupNS := cacheLookup(ctx, opts.Cache, key, rec)
		if ok {
			return cacheHit(hit, opts.MetricsSinks, lookupNS), nil
		}
		rec.Add(obs.CtrCacheMisses, 1)
	}

	res, istats := analysis.AnalyzeSourceIncremental(filename, src, in, a.units)
	a.unitHits.Add(int64(istats.UnitHits))
	a.unitMisses.Add(int64(istats.UnitMisses))
	if res.Diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(res.Diags))
	}
	rep = buildReport(res, opts)
	if opts.Cache != nil && rep.Degraded == nil {
		rec.Add(obs.CtrCacheStores, 1)
	}
	rep.Metrics = rec.Snapshot()
	if err := rec.Flush(); err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("metrics sink error: %v", err))
	}
	if opts.Cache != nil && rep.Degraded == nil {
		cachePut(opts.Cache, key, rep)
	}
	return rep, nil
}

// analyzeForBatch is the per-attempt analysis hook WithAnalyzer plugs
// into the batch driver: the incremental engine with this handle's memo
// store, under the batch's per-attempt options (so retry budget shrinks
// fingerprint separately and never serve a stale full-budget result).
func (a *Analyzer) analyzeForBatch(name, src string, in analysis.Options) *analysis.Result {
	a.files.Add(1)
	res, istats := analysis.AnalyzeSourceIncremental(name, src, in, a.units)
	a.unitHits.Add(int64(istats.UnitHits))
	a.unitMisses.Add(int64(istats.UnitMisses))
	return res
}
