package uafcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"uafcheck/internal/ccfg"
	"uafcheck/internal/ir"
	"uafcheck/internal/obs"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func loadTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// checkCounters asserts exact golden values; every named counter must
// match and no unnamed counter may be nonzero.
func checkCounters(t *testing.T, m Metrics, want map[string]int64) {
	t.Helper()
	for name, v := range want {
		if got := m.Counter(name); got != v {
			t.Errorf("counter %s = %d, want %d", name, got, v)
		}
	}
	for _, name := range m.CounterNames() {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected nonzero counter %s = %d", name, m.Counter(name))
		}
	}
}

// TestMetricsGoldenFigure1 pins the exact pipeline counters for the
// paper's Figure 1 program: the CCFG shape, the pruning outcome (rule A
// removes the printf-only task) and the PPS exploration counts. Any
// change to the exploration order or the merge optimization shows up
// here as an exact-number diff.
func TestMetricsGoldenFigure1(t *testing.T) {
	src := loadTestdata(t, "figure1.chpl")
	rep, err := Analyze("figure1.chpl", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1", len(rep.Warnings))
	}
	checkCounters(t, rep.Metrics, map[string]int64{
		obs.CtrProcsAnalyzed:   1,
		obs.CtrWarnings:        1,
		obs.CtrCCFGNodes:       11,
		obs.CtrCCFGTasks:       4,
		obs.CtrCCFGSyncVars:    2,
		obs.CtrTrackedAccesses: 4,
		obs.CtrPrunedTasks:     1,
		obs.CtrPruneRuleA:      1,
		obs.CtrStatesCreated:   8,
		obs.CtrStatesProcessed: 8,
		obs.CtrStatesMerged:    3,
		obs.CtrStatesForked:    11,
		obs.CtrSinkStates:      1,
		obs.CtrPPSWaves:        5,
		obs.CtrTransRead:       5,
		obs.CtrTransWrite:      5,
	})
	if got := rep.Metrics.Gauge(obs.GaugePeakFrontier); got != 2 {
		t.Errorf("peak frontier = %d, want 2", got)
	}
	// -stats consistency by construction: ProcStats must agree with the
	// metrics snapshot, since both now flow from the same Stats structs.
	if len(rep.Stats) != 1 {
		t.Fatalf("Stats = %d entries, want 1", len(rep.Stats))
	}
	ps := rep.Stats[0]
	if int64(ps.StatesCreated) != rep.Metrics.Counter(obs.CtrStatesCreated) {
		t.Errorf("ProcStats.StatesCreated = %d, metrics say %d",
			ps.StatesCreated, rep.Metrics.Counter(obs.CtrStatesCreated))
	}
}

// TestMetricsGoldenFigure6 pins the counters for the branching example
// (Figure 6): no task is prunable, three sink states, and the merge
// optimization collapses six states.
func TestMetricsGoldenFigure6(t *testing.T) {
	src := loadTestdata(t, "figure6.chpl")
	rep, err := Analyze("figure6.chpl", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1", len(rep.Warnings))
	}
	checkCounters(t, rep.Metrics, map[string]int64{
		obs.CtrProcsAnalyzed:   1,
		obs.CtrWarnings:        1,
		obs.CtrCCFGNodes:       11,
		obs.CtrCCFGTasks:       3,
		obs.CtrCCFGSyncVars:    1,
		obs.CtrTrackedAccesses: 1,
		obs.CtrStatesCreated:   9,
		obs.CtrStatesProcessed: 12,
		obs.CtrStatesMerged:    5,
		obs.CtrStatesForked:    14,
		obs.CtrSinkStates:      2,
		obs.CtrPPSWaves:        5,
		obs.CtrTransRead:       6,
		obs.CtrTransWrite:      6,
	})
}

// TestMetricsGoldenFigure1Safe: the repaired program produces no
// warnings and a single linear exploration (no merges, frontier 1).
func TestMetricsGoldenFigure1Safe(t *testing.T) {
	src := loadTestdata(t, "figure1_safe.chpl")
	rep, err := Analyze("figure1_safe.chpl", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 0 {
		t.Fatalf("warnings = %d, want 0", len(rep.Warnings))
	}
	m := rep.Metrics
	for name, want := range map[string]int64{
		obs.CtrStatesCreated: 5,
		obs.CtrStatesMerged:  0,
		obs.CtrSinkStates:    1,
	} {
		if got := m.Counter(name); got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := m.Gauge(obs.GaugePeakFrontier); got != 1 {
		t.Errorf("peak frontier = %d, want 1", got)
	}
}

// TestDisableMergeCreatesMoreStates: switching off the §III-C merge
// optimization must create strictly more states on a program whose
// exploration has converging interleavings.
func TestDisableMergeCreatesMoreStates(t *testing.T) {
	src := loadTestdata(t, "figure6.chpl")
	merged, err := Analyze("figure6.chpl", src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.DisableMerge = true
	unmerged, err := AnalyzeWithOptions("figure6.chpl", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc := merged.Metrics.Counter(obs.CtrStatesCreated)
	uc := unmerged.Metrics.Counter(obs.CtrStatesCreated)
	if uc <= mc {
		t.Errorf("DisableMerge states created = %d, want strictly more than %d", uc, mc)
	}
	if unmerged.Metrics.Counter(obs.CtrStatesMerged) != 0 {
		t.Errorf("DisableMerge still merged %d states",
			unmerged.Metrics.Counter(obs.CtrStatesMerged))
	}
	// Both configurations must report the same warnings — merging is an
	// optimization, not an abstraction change.
	if lw, lu := len(merged.Warnings), len(unmerged.Warnings); lw != lu {
		t.Errorf("warning count changed with DisableMerge: %d vs %d", lw, lu)
	}
}

// TestWarningProvenance: explain mode must attach a provenance chain to
// the Figure 1 warning — the access node, a concrete sink PPS, and a
// nonempty transition chain ending at that sink.
func TestWarningProvenance(t *testing.T) {
	src := loadTestdata(t, "figure1.chpl")
	rep, err := Analyze("figure1.chpl", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1", len(rep.Warnings))
	}
	p := rep.Warnings[0].Prov
	if p == nil {
		t.Fatal("warning has no provenance")
	}
	if p.Node == "" {
		t.Error("provenance has empty CCFG node description")
	}
	if p.SinkPPS < 0 {
		t.Errorf("provenance sink PPS = %d, want a concrete state id", p.SinkPPS)
	}
	if p.Stuck {
		t.Error("figure1 sink should not be a deadlock state")
	}
	if len(p.Chain) == 0 {
		t.Error("provenance transition chain is empty")
	}
	if !strings.Contains(p.Node, rep.Warnings[0].Var) {
		t.Errorf("provenance node %q does not mention variable %q",
			p.Node, rep.Warnings[0].Var)
	}
}

// TestMetricsSinksReceiveSnapshot: every attached sink gets the same
// snapshot that lands on Report.Metrics.
func TestMetricsSinksReceiveSnapshot(t *testing.T) {
	src := loadTestdata(t, "figure1.chpl")
	var text, jsonl, prom bytes.Buffer
	opts := DefaultOptions()
	opts.MetricsSinks = []MetricsSink{
		TextMetricsSink(&text),
		JSONLinesMetricsSink(&jsonl),
		PrometheusMetricsSink(&prom),
	}
	rep, err := AnalyzeWithOptions("figure1.chpl", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "pps.states_created") {
		t.Errorf("text sink missing counter section:\n%s", text.String())
	}
	// Each JSONL line must be a standalone JSON object.
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	var sawCreated bool
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
		if rec["name"] == "pps.states_created" {
			sawCreated = true
			if int64(rec["value"].(float64)) != rep.Metrics.Counter(obs.CtrStatesCreated) {
				t.Errorf("JSONL states_created = %v, metrics say %d",
					rec["value"], rep.Metrics.Counter(obs.CtrStatesCreated))
			}
		}
	}
	if !sawCreated {
		t.Error("JSONL sink never emitted pps.states_created")
	}
	if !strings.Contains(prom.String(), "uafcheck_pps_states_created 8") {
		t.Errorf("prom sink missing exact counter:\n%s", prom.String())
	}
}

// buildGraph runs the frontend once so the alloc test can call
// pps.Explore directly, isolating the hot loop from parser allocations.
func buildGraph(t testing.TB, name string) *ccfg.Graph {
	t.Helper()
	data, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	file := source.NewFile(name, string(data))
	diags := &source.Diagnostics{}
	mod := parser.Parse(file, diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve: %v", diags)
	}
	for _, proc := range mod.Procs {
		prog := ir.Lower(info, proc, diags)
		return ccfg.Build(prog, diags, ccfg.BuildOptions{Prune: true})
	}
	t.Fatal("no proc found")
	return nil
}

// TestExploreNilObsNoExtraAllocs: the nil-recorder path must not add
// allocations to the PPS hot loop, and attaching a recorder may only
// add a small constant (the end-of-run flush), independent of how many
// states the exploration visits.
func TestExploreNilObsNoExtraAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short mode")
	}
	deltas := make(map[string]float64)
	for _, name := range []string{"figure1.chpl", "figure6.chpl"} {
		g := buildGraph(t, name)
		base := testing.AllocsPerRun(50, func() {
			pps.Explore(g, pps.Options{})
		})
		rec := obs.New()
		withObs := testing.AllocsPerRun(50, func() {
			pps.Explore(g, pps.Options{Obs: rec})
		})
		delta := withObs - base
		deltas[name] = delta
		// The recorder's cost is one span closure plus one batch of
		// counter-map updates at flush time: bounded, not per-state.
		if delta > 64 {
			t.Errorf("%s: recorder added %.0f allocs/run (base %.0f), want <= 64",
				name, delta, base)
		}
	}
	// The overhead must not scale with exploration size: figure6 visits
	// nearly twice the states of figure1 yet pays the same flush cost.
	if d1, d6 := deltas["figure1.chpl"], deltas["figure6.chpl"]; d6 > d1+32 {
		t.Errorf("recorder overhead scales with states: figure1 %+.0f, figure6 %+.0f", d1, d6)
	}
}

// fanoutGraph builds a CCFG with n sync-chained tasks — enough frontier
// width (> minParallelFrontier) that Parallelism > 1 actually spins up
// wave workers.
func fanoutGraph(t testing.TB, tasks int) *ccfg.Graph {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("proc fan() {\n  var x: int = 1;\n")
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  var d%d$: sync bool;\n", i)
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  begin with (ref x) {\n    x += %d;\n    d%d$ = true;\n  }\n", i+1, i)
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  d%d$;\n", i)
	}
	sb.WriteString("}\n")
	src := sb.String()

	file := source.NewFile("fan.chpl", src)
	diags := &source.Diagnostics{}
	mod := parser.Parse(file, diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve: %v", diags)
	}
	for _, proc := range mod.Procs {
		prog := ir.Lower(info, proc, diags)
		return ccfg.Build(prog, diags, ccfg.BuildOptions{Prune: true})
	}
	t.Fatal("no proc found")
	return nil
}

// TestExploreParallelObsNoExtraAllocs extends the recorder-overhead
// guard to the parallel explorer: with 4 wave workers actually running
// (the fanout frontier exceeds minParallelFrontier), attaching a
// recorder must still only cost the bounded end-of-run flush — the wave
// workers themselves never touch the recorder.
func TestExploreParallelObsNoExtraAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short mode")
	}
	g := fanoutGraph(t, 6)
	probe := pps.Explore(g, pps.Options{Parallelism: 4})
	if probe.Stats.MaxWorklist < 8 {
		t.Fatalf("fanout frontier = %d, too narrow to exercise the parallel path", probe.Stats.MaxWorklist)
	}
	base := testing.AllocsPerRun(20, func() {
		pps.Explore(g, pps.Options{Parallelism: 4})
	})
	rec := obs.New()
	withObs := testing.AllocsPerRun(20, func() {
		pps.Explore(g, pps.Options{Parallelism: 4, Obs: rec})
	})
	// Slightly more slack than the sequential guard: goroutine scheduling
	// adds run-to-run alloc noise, but the recorder cost itself must stay
	// a flush-sized constant.
	if delta := withObs - base; delta > 96 {
		t.Errorf("parallel recorder added %.0f allocs/run (base %.0f), want <= 96", delta, base)
	}
}
