package uafcheck_test

// Property test of the tentpole guarantee: AnalyzeDelta's recombined
// cached-plus-fresh reports are byte-identical — through the canonical
// internal/wire encoding — to a from-scratch AnalyzeContext run, under
// random multi-procedure programs and random single-procedure edits.
// `make test-race` runs this under the race detector, which also
// exercises the concurrent-Analyzer path below.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"uafcheck"
	"uafcheck/internal/progen"
	"uafcheck/internal/wire"
)

// genProc generates one uniquely named top-level procedure.
func genProc(i int, seed int64, atomics bool) string {
	src := progen.Generate(seed, progen.Options{Budget: 14, MaxDepth: 2, Atomics: atomics})
	return strings.Replace(src, "proc fuzz(", fmt.Sprintf("proc p%d(", i), 1)
}

// wireBytes canonically encodes a report outcome the way every server
// and CLI surface does.
func wireBytes(t *testing.T, name string, rep *uafcheck.Report, err error) string {
	t.Helper()
	b, encErr := wire.NewResult(name, rep, err, false).Encode()
	if encErr != nil {
		t.Fatalf("wire encode: %v", encErr)
	}
	return string(b)
}

func requireIdentical(t *testing.T, ctx context.Context, an *uafcheck.Analyzer, name, src, label string) {
	t.Helper()
	drep, derr := an.AnalyzeDelta(ctx, name, src)
	frep, ferr := uafcheck.AnalyzeContext(ctx, name, src)
	if (derr == nil) != (ferr == nil) {
		t.Fatalf("%s: error mismatch: delta=%v fresh=%v\nsource:\n%s", label, derr, ferr, src)
	}
	got := wireBytes(t, name, drep, derr)
	want := wireBytes(t, name, frep, ferr)
	if got != want {
		t.Fatalf("%s: wire bytes differ\ndelta: %s\nfresh: %s\nsource:\n%s", label, got, want, src)
	}
}

func TestAnalyzeDeltaByteIdentity(t *testing.T) {
	ctx := context.Background()
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			atomics := trial%3 == 0
			n := 2 + rng.Intn(4)
			procs := make([]string, n)
			for i := range procs {
				procs[i] = genProc(i, rng.Int63(), atomics)
			}
			an := uafcheck.NewAnalyzer()
			name := fmt.Sprintf("prop%d.chpl", trial)
			join := func() string { return strings.Join(procs, "\n") }
			requireIdentical(t, ctx, an, name, join(), "initial")
			for edit := 0; edit < 5; edit++ {
				i := rng.Intn(n)
				procs[i] = genProc(i, rng.Int63(), atomics)
				requireIdentical(t, ctx, an, name, join(), fmt.Sprintf("edit%d(proc p%d)", edit, i))
			}
			st := an.Stats()
			if st.UnitHits == 0 {
				t.Errorf("expected some unit cache hits across 5 single-procedure edits, got stats %+v", st)
			}
		})
	}
}

// TestAnalyzeDeltaWarmHits pins the invalidation granularity: editing
// one procedure of a k-procedure file recomputes only that unit (plus
// any unit whose cross-procedure facts it changed), so a file of
// independent procedures yields k-1 hits per edit.
func TestAnalyzeDeltaWarmHits(t *testing.T) {
	ctx := context.Background()
	const n = 6
	procs := make([]string, n)
	for i := range procs {
		procs[i] = fmt.Sprintf("proc p%d() {\n  var x%d: int = 0;\n  begin with (ref x%d) {\n    x%d = 1;\n  }\n}\n", i, i, i, i)
	}
	an := uafcheck.NewAnalyzer()
	src := strings.Join(procs, "\n")
	if _, err := an.AnalyzeDelta(ctx, "warm.chpl", src); err != nil {
		t.Fatal(err)
	}
	if st := an.Stats(); st.UnitMisses != n || st.UnitHits != 0 {
		t.Fatalf("cold run: want %d misses, 0 hits; got %+v", n, st)
	}
	// Edit p2: new variable name changes its text but no cross-proc fact.
	procs[2] = "proc p2() {\n  var y: int = 3;\n  begin with (ref y) {\n    y = 4;\n  }\n}\n"
	if _, err := an.AnalyzeDelta(ctx, "warm.chpl", strings.Join(procs, "\n")); err != nil {
		t.Fatal(err)
	}
	if st := an.Stats(); st.UnitMisses != n+1 || st.UnitHits != n-1 {
		t.Fatalf("warm run after single edit: want %d misses, %d hits; got %+v", n+1, n-1, st)
	}
	// Re-analyzing unchanged content hits every unit.
	if _, err := an.AnalyzeDelta(ctx, "warm.chpl", strings.Join(procs, "\n")); err != nil {
		t.Fatal(err)
	}
	if st := an.Stats(); st.UnitHits != n-1+n {
		t.Fatalf("identical re-run: want %d total hits; got %+v", n-1+n, st)
	}
}

// TestAnalyzeDeltaPositionRebase pins the line-rebasing path: inserting
// lines above a memoized procedure must serve the unit from cache with
// every position rebased, matching the fresh run byte for byte.
func TestAnalyzeDeltaPositionRebase(t *testing.T) {
	ctx := context.Background()
	body := "proc q() {\n  var v: int = 0;\n  begin with (ref v) {\n    v = 1;\n  }\n}\n"
	an := uafcheck.NewAnalyzer()
	requireIdentical(t, ctx, an, "shift.chpl", body, "original")
	shifted := "proc filler() {\n  var a: int = 9;\n  begin with (ref a) {\n    a = 8;\n  }\n}\n\n\n" + body
	requireIdentical(t, ctx, an, "shift.chpl", shifted, "shifted")
	if st := an.Stats(); st.UnitHits == 0 {
		t.Fatalf("expected the shifted q unit to be served from cache; got %+v", st)
	}
}

// TestAnalyzeDeltaConcurrent drives one Analyzer from many goroutines —
// the uafserve /v1/delta usage — and checks every interleaving still
// matches the from-scratch bytes. Run under -race by `make test-race`.
func TestAnalyzeDeltaConcurrent(t *testing.T) {
	ctx := context.Background()
	an := uafcheck.NewAnalyzer()
	srcs := make([]string, 8)
	want := make([]string, len(srcs))
	for i := range srcs {
		srcs[i] = genProc(0, int64(42+i), false)
		rep, err := uafcheck.AnalyzeContext(ctx, "conc.chpl", srcs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = wireBytes(t, "conc.chpl", rep, nil)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 6; k++ {
				i := (g + k) % len(srcs)
				rep, err := an.AnalyzeDelta(ctx, "conc.chpl", srcs[i])
				if err != nil {
					errs <- err
					return
				}
				b, err := wire.NewResult("conc.chpl", rep, nil, false).Encode()
				if err != nil {
					errs <- err
					return
				}
				if string(b) != want[i] {
					errs <- fmt.Errorf("goroutine %d input %d: wire bytes differ", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
