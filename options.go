package uafcheck

import (
	"context"
	"time"
)

// Option configures the context-first entry points AnalyzeContext and
// AnalyzeFilesContext. Options compose left to right; unset knobs keep
// the DefaultOptions behavior. Batch-only options (WithWorkers,
// WithFileTimeout, WithRetries) are ignored by AnalyzeContext.
type Option func(*apiConfig)

// apiConfig is the merged configuration the functional options write
// into; it wraps the v1 structs so both API generations share one
// implementation.
type apiConfig struct {
	opts  Options
	bopts BatchOptions
	// unitCacheEntries bounds NewAnalyzer's per-procedure memo store;
	// ignored by the one-shot entry points.
	unitCacheEntries int
}

// WithPrune toggles the paper's CCFG pruning rules A-D (default on).
func WithPrune(on bool) Option {
	return func(c *apiConfig) { c.opts.Prune = on }
}

// WithMaxStates bounds the PPS exploration (0 = library default). When
// the budget is exhausted the analysis degrades conservatively instead
// of truncating.
func WithMaxStates(n int) Option {
	return func(c *apiConfig) { c.opts.MaxStates = n }
}

// WithTrace records the PPS tables on Report.PPSTraces.
func WithTrace(on bool) Option {
	return func(c *apiConfig) { c.opts.Trace = on }
}

// WithMergeDisabled turns off the identical-(ASN, state-table) merge
// optimization of §III-C — exposed for ablation benchmarks.
func WithMergeDisabled(on bool) Option {
	return func(c *apiConfig) { c.opts.DisableMerge = on }
}

// WithAtomicsModel enables the atomics extension (non-blocking fills,
// SINGLE-READ-like waitFor).
func WithAtomicsModel(on bool) Option {
	return func(c *apiConfig) { c.opts.ModelAtomics = on }
}

// WithAtomicsCounting enables the saturating-counter refinement of the
// atomics extension (implies the atomics model).
func WithAtomicsCounting(on bool) Option {
	return func(c *apiConfig) { c.opts.CountAtomics = on }
}

// WithMetricsSinks attaches telemetry sinks; each receives one Metrics
// snapshot per analyzed file.
func WithMetricsSinks(sinks ...MetricsSink) Option {
	return func(c *apiConfig) { c.opts.MetricsSinks = append(c.opts.MetricsSinks, sinks...) }
}

// WithDeadline bounds one analysis's wall clock (0 = none); on expiry
// the analysis degrades conservatively.
func WithDeadline(d time.Duration) Option {
	return func(c *apiConfig) { c.opts.Deadline = d }
}

// WithParallelism sets the number of concurrent PPS exploration workers
// per analyzed procedure; see Options.Parallelism for the defaults and
// the determinism guarantee.
func WithParallelism(n int) Option {
	return func(c *apiConfig) { c.opts.Parallelism = n }
}

// WithCache attaches a content-addressed report cache; see NewCache.
func WithCache(cc *Cache) Option {
	return func(c *apiConfig) { c.opts.Cache = cc }
}

// WithInlineLowering switches nested-procedure call lowering back to
// the legacy per-call-site inliner (default off = template-based
// summary instantiation). Both modes are byte-identical by
// construction; the knob exists for A/B verification and as an escape
// hatch, and does not participate in cache or memo fingerprints.
func WithInlineLowering(on bool) Option {
	return func(c *apiConfig) { c.opts.InlineLowering = on }
}

// WithTracing records a hierarchical span tree for each analysis run
// (frontend, per-procedure lowering, PPS waves, cache consults) on
// Report.Metrics.Trace. When the caller's context already carries an
// obs trace — e.g. inside a traced server request — spans attach to
// that ambient trace instead and the report carries none. Tracing
// never changes analysis results or cache keys.
func WithTracing(on bool) Option {
	return func(c *apiConfig) { c.opts.Tracing = on }
}

// WithWorkers sets the batch worker-pool size (0 = GOMAXPROCS). Batch
// runs only.
func WithWorkers(n int) Option {
	return func(c *apiConfig) { c.bopts.Workers = n }
}

// WithFileTimeout bounds each per-file attempt's wall clock. Batch runs
// only.
func WithFileTimeout(d time.Duration) Option {
	return func(c *apiConfig) { c.bopts.FileTimeout = d }
}

// WithRetries grants extra attempts after a per-file deadline hit, each
// with a smaller state budget. Batch runs only.
func WithRetries(n int) Option {
	return func(c *apiConfig) { c.bopts.Retries = n }
}

// WithUnitCacheEntries bounds the per-procedure memo store of a
// NewAnalyzer handle (<= 0 means the library default of 1024 units).
// One-shot entry points ignore it — incrementality needs a handle that
// outlives the call.
func WithUnitCacheEntries(n int) Option {
	return func(c *apiConfig) { c.unitCacheEntries = n }
}

// WithAnalyzer routes a batch's per-file analysis through the handle's
// incremental engine: units memoized by earlier AnalyzeDelta calls (or
// earlier batches) are reused, and fresh units are memoized for later
// calls. The analysis options still come from the batch call, not from
// the handle — the handle contributes only its memo store, which is
// safe to share across differing options because every option that can
// change a result participates in the unit fingerprint. Batch runs
// only.
func WithAnalyzer(a *Analyzer) Option {
	return func(c *apiConfig) {
		if a != nil {
			c.bopts.analyze = a.analyzeForBatch
		}
	}
}

// WithOnFile streams per-file results: fn receives each FileReport as
// soon as it completes (cache hits first, then worker-pool completions
// in finish order). fn runs on worker goroutines and may be called
// concurrently; it must synchronize internally. Batch runs only.
func WithOnFile(fn func(i int, fr FileReport)) Option {
	return func(c *apiConfig) { c.bopts.OnFile = fn }
}

// AnalyzeContext runs the static analysis under ctx. It is the primary
// single-shot entry point of the v2 API (the struct-options
// AnalyzeWithOptions form is a deprecated compatibility shim):
//
//	cache := uafcheck.NewCache(uafcheck.CacheConfig{})
//	report, err := uafcheck.AnalyzeContext(ctx, "prog.chpl", src,
//	    uafcheck.WithParallelism(4),
//	    uafcheck.WithCache(cache))
//
// Cancellation and deadlines on ctx degrade the analysis conservatively
// (Report.Degraded) rather than aborting it.
func AnalyzeContext(ctx context.Context, filename, src string, options ...Option) (*Report, error) {
	cfg := apiConfig{opts: DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	return analyzeWith(ctx, filename, src, cfg.opts)
}

// AnalyzeFilesContext analyzes many files under ctx — the context-first
// form of AnalyzeFiles. Cancelling ctx degrades unfinished files to
// conservative results instead of dropping them.
func AnalyzeFilesContext(ctx context.Context, files []FileInput, options ...Option) *BatchReport {
	cfg := apiConfig{opts: DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	cfg.bopts.Context = ctx
	return AnalyzeFiles(files, cfg.opts, cfg.bopts)
}
