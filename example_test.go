package uafcheck_test

import (
	"context"
	"fmt"

	"uafcheck"
)

// The headline use: analyze a program and print the warnings.
func ExampleAnalyzeContext() {
	src := `
proc main() {
  var x: int = 10;
  begin with (ref x) {
    writeln(x);
  }
}`
	report, err := uafcheck.AnalyzeContext(context.Background(), "main.chpl", src)
	if err != nil {
		panic(err)
	}
	for _, w := range report.Warnings {
		fmt.Printf("%s in %s: variable %q (%s)\n", w.Pos, w.Task, w.Var, w.Reason)
	}
	// Output:
	// main.chpl:5:13 in TASK A: variable "x" (never-synchronized)
}

// A sync-variable wait chain makes the same program clean.
func ExampleAnalyzeContext_waitChain() {
	src := `
proc main() {
  var x: int = 10;
  var done$: sync bool;
  begin with (ref x) {
    writeln(x);
    done$ = true;
  }
  done$;
}`
	report, err := uafcheck.AnalyzeContext(context.Background(), "main.chpl", src)
	if err != nil {
		panic(err)
	}
	fmt.Println("warnings:", len(report.Warnings))
	// Output:
	// warnings: 0
}

// A shared content-addressed cache serves repeat analyses of unchanged
// sources without re-running the pipeline.
func ExampleAnalyzeContext_cache() {
	src := `
proc main() {
  var x: int = 10;
  begin with (ref x) {
    writeln(x);
  }
}`
	cc := uafcheck.NewCache(uafcheck.CacheConfig{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := uafcheck.AnalyzeContext(ctx, "main.chpl", src,
			uafcheck.WithCache(cc), uafcheck.WithParallelism(4)); err != nil {
			panic(err)
		}
	}
	st := cc.Stats()
	fmt.Printf("misses: %d, hits: %d\n", st.Misses, st.Hits)
	// Output:
	// misses: 1, hits: 2
}

// Dynamic validation: exhaustively explore schedules and check whether
// the flagged site is a real use-after-free.
func ExampleExploreSchedules() {
	src := `
proc main() {
  var x: int = 1;
  begin with (ref x) {
    x = 2;
  }
}`
	dyn, err := uafcheck.ExploreSchedules("main.chpl", src, "main", 1000, 1, true)
	if err != nil {
		panic(err)
	}
	fmt.Println("exhausted:", dyn.Exhausted)
	fmt.Println("confirmed:", dyn.ObservedUAF("x", 5))
	// Output:
	// exhausted: true
	// confirmed: true
}

// Automatic repair synthesizes and verifies a synchronization fix.
func ExampleRepair() {
	src := `proc main() {
  var x: int = 1;
  begin with (ref x) {
    x = 2;
  }
}`
	fix, err := uafcheck.Repair(context.Background(), "main.chpl", src)
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", fix.Patches[0].Strategy)
	fmt.Printf("warnings: %d -> %d\n", fix.InitialWarnings, fix.RemainingWarnings)
	// Output:
	// strategy: token-chain
	// warnings: 1 -> 0
}

// The atomics extension models handshake synchronization the default
// analysis cannot see.
func ExampleOptions_modelAtomics() {
	src := `
proc main() {
  var x: int = 1;
  var f: atomic int;
  begin with (ref x) {
    x = 2;
    f.write(1);
  }
  f.waitFor(1);
}`
	ctx := context.Background()
	plain, _ := uafcheck.AnalyzeContext(ctx, "main.chpl", src)
	modeled, _ := uafcheck.AnalyzeContext(ctx, "main.chpl", src,
		uafcheck.WithAtomicsModel(true))
	fmt.Printf("default: %d warning(s), extension: %d\n",
		len(plain.Warnings), len(modeled.Warnings))
	// Output:
	// default: 1 warning(s), extension: 0
}
