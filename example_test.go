package uafcheck_test

import (
	"fmt"

	"uafcheck"
)

// The headline use: analyze a program and print the warnings.
func ExampleAnalyze() {
	src := `
proc main() {
  var x: int = 10;
  begin with (ref x) {
    writeln(x);
  }
}`
	report, err := uafcheck.Analyze("main.chpl", src)
	if err != nil {
		panic(err)
	}
	for _, w := range report.Warnings {
		fmt.Printf("%s in %s: variable %q (%s)\n", w.Pos, w.Task, w.Var, w.Reason)
	}
	// Output:
	// main.chpl:5:13 in TASK A: variable "x" (never-synchronized)
}

// A sync-variable wait chain makes the same program clean.
func ExampleAnalyze_waitChain() {
	src := `
proc main() {
  var x: int = 10;
  var done$: sync bool;
  begin with (ref x) {
    writeln(x);
    done$ = true;
  }
  done$;
}`
	report, err := uafcheck.Analyze("main.chpl", src)
	if err != nil {
		panic(err)
	}
	fmt.Println("warnings:", len(report.Warnings))
	// Output:
	// warnings: 0
}

// Dynamic validation: exhaustively explore schedules and check whether
// the flagged site is a real use-after-free.
func ExampleExploreSchedules() {
	src := `
proc main() {
  var x: int = 1;
  begin with (ref x) {
    x = 2;
  }
}`
	dyn, err := uafcheck.ExploreSchedules("main.chpl", src, "main", 1000, 1, true)
	if err != nil {
		panic(err)
	}
	fmt.Println("exhausted:", dyn.Exhausted)
	fmt.Println("confirmed:", dyn.ObservedUAF("x", 5))
	// Output:
	// exhausted: true
	// confirmed: true
}

// Automatic repair synthesizes and verifies a synchronization fix.
func ExampleRepairSource() {
	src := `proc main() {
  var x: int = 1;
  begin with (ref x) {
    x = 2;
  }
}`
	fix, err := uafcheck.RepairSource("main.chpl", src, uafcheck.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", fix.Steps[0].Strategy)
	fmt.Printf("warnings: %d -> %d\n", fix.InitialWarnings, fix.RemainingWarnings)
	// Output:
	// strategy: token-chain
	// warnings: 1 -> 0
}

// The atomics extension models handshake synchronization the default
// analysis cannot see.
func ExampleOptions_modelAtomics() {
	src := `
proc main() {
  var x: int = 1;
  var f: atomic int;
  begin with (ref x) {
    x = 2;
    f.write(1);
  }
  f.waitFor(1);
}`
	opts := uafcheck.DefaultOptions()
	plain, _ := uafcheck.AnalyzeWithOptions("main.chpl", src, opts)
	opts.ModelAtomics = true
	modeled, _ := uafcheck.AnalyzeWithOptions("main.chpl", src, opts)
	fmt.Printf("default: %d warning(s), extension: %d\n",
		len(plain.Warnings), len(modeled.Warnings))
	// Output:
	// default: 1 warning(s), extension: 0
}
