package uafcheck

import (
	"context"
	"errors"
	"fmt"

	"uafcheck/internal/repair"
	"uafcheck/internal/udiff"
)

// ------------------------------------------------------- repair v2 API
//
// Repair is the public face of the internal/repair engine: the same
// verified synchronization synthesis (§VII "optimize the amount and
// position of synchronization points"), but returning *patches* —
// unified diffs with their verification verdicts attached — instead of
// a rewritten source blob. These are the shapes the uafserve
// /v1/repair endpoint and `uafcheck -fix` serialize, so server, CLI
// and library callers share one vocabulary.

// RepairChecks names the two verification passes every accepted patch
// went through, in the order they run. A patch is only emitted when
// BOTH accept it; there are no partially-verified patches.
const (
	// CheckStaticReanalysis: the full static analysis re-ran on the
	// patched source, completed without degradation, and the warning
	// count strictly decreased with no new potential-deadlock note.
	CheckStaticReanalysis = "static-reanalysis"
	// CheckScheduleOracle: bounded exhaustive schedule exploration of
	// the patched procedure observed no remaining race at the warned
	// site, no new use-after-free, and no new deadlock versus the
	// unpatched baseline.
	CheckScheduleOracle = "schedule-oracle"
)

// Verdict is the verification evidence attached to one patch. Patches
// are only ever emitted verified (the engine discards anything that
// fails a check), so Verified is always true on a Patch obtained from
// Repair; the field exists so serialized patches stay meaningful on
// their own.
type Verdict struct {
	// Verified reports that every check in Checks accepted the patch.
	Verified bool `json:"verified"`
	// Checks lists the verification passes run, in order
	// (CheckStaticReanalysis, CheckScheduleOracle).
	Checks []string `json:"checks"`
	// WarningsBefore / WarningsAfter are the verified warning counts
	// around this patch — the remaining-warning delta. Every accepted
	// patch has WarningsAfter < WarningsBefore.
	WarningsBefore int `json:"warnings_before"`
	WarningsAfter  int `json:"warnings_after"`
}

// Patch is one accepted repair step as a unified diff against the
// source it was applied to: the original input for the first patch,
// the previous patch's output for each subsequent one. Applying the
// patches in order with patch(1) reproduces RepairReport.Fixed;
// RepairReport.Diff is the equivalent single cumulative diff.
type Patch struct {
	// Strategy is the candidate kind: "token-chain", "sync-wrap" or
	// "sync-wrap-chain" (the chain-root fence).
	Strategy string `json:"strategy"`
	// Proc / Task locate the warned (procedure, task) group the patch
	// synchronizes.
	Proc string `json:"proc"`
	Task string `json:"task"`
	// Token names the introduced sync variable for token-chain
	// patches ("" for fence strategies).
	Token string `json:"token,omitempty"`
	// Diff is the unified diff (--- a/<name> / +++ b/<name> headers,
	// 3 context lines) in the exact shape `patch -p1` consumes.
	Diff string `json:"diff"`
	// Verdict is the verification evidence.
	Verdict Verdict `json:"verdict"`
}

// RepairReport is the outcome of Repair.
type RepairReport struct {
	// Name echoes the input file name (used in diff headers).
	Name string `json:"name"`
	// Fixed is the fully repaired source (equal to the input when no
	// patch verified).
	Fixed string `json:"fixed"`
	// Diff is the cumulative unified diff original -> Fixed ("" when
	// nothing changed). Equivalent to applying Patches in order.
	Diff string `json:"diff,omitempty"`
	// Patches lists the accepted patches in application order.
	Patches []Patch `json:"patches,omitempty"`
	// InitialWarnings / RemainingWarnings count warnings before the
	// first patch and after the last.
	InitialWarnings   int `json:"initial_warnings"`
	RemainingWarnings int `json:"remaining_warnings"`
	// Remaining holds the warnings still present in Fixed, in
	// SortWarnings order (positions refer to the patched source).
	// Empty when Clean().
	Remaining []Warning `json:"remaining,omitempty"`
	// Rejected explains candidates the verifier refused.
	Rejected []string `json:"rejected,omitempty"`
}

// Clean reports whether the repaired source analyzes without warnings.
func (r *RepairReport) Clean() bool { return r.RemainingWarnings == 0 }

// Clone returns a deep copy of the repair report: mutating the copy
// (or the original) never affects the other — the same contract as
// Report.Clone.
func (r *RepairReport) Clone() *RepairReport {
	if r == nil {
		return nil
	}
	// Positional composite literal on purpose: adding a field to
	// RepairReport without extending this clone becomes a compile
	// error instead of a silently-shared (or silently-dropped) field.
	cp := RepairReport{r.Name, r.Fixed, r.Diff, r.Patches,
		r.InitialWarnings, r.RemainingWarnings, r.Remaining, r.Rejected}

	cp.Patches = append([]Patch(nil), r.Patches...)
	for i := range cp.Patches {
		cp.Patches[i].Verdict = *cp.Patches[i].Verdict.clone()
	}
	cp.Remaining = append([]Warning(nil), r.Remaining...)
	for i := range cp.Remaining {
		if p := cp.Remaining[i].Prov; p != nil {
			pc := *p
			pc.Chain = append([]string(nil), p.Chain...)
			cp.Remaining[i].Prov = &pc
		}
	}
	cp.Rejected = append([]string(nil), r.Rejected...)
	return &cp
}

// clone deep-copies a verdict (same positional-literal compile check).
func (v *Verdict) clone() *Verdict {
	cp := Verdict{v.Verified, v.Checks, v.WarningsBefore, v.WarningsAfter}
	cp.Checks = append([]string(nil), v.Checks...)
	return &cp
}

// Repair synthesizes verified synchronization fixes for every warning
// in src under ctx — the context-first repair entry point, taking the
// same functional options as AnalyzeContext. Each returned patch was
// accepted by full static re-analysis AND the bounded schedule oracle
// (see Verdict); candidates either verify or are refused, never
// emitted unverified.
//
// Typed failures: errors.Is(err, ErrParse) when the source fails the
// frontend, and errors.Is(err, ErrRepairDegraded) when any analysis in
// the repair loop degrades (budget, deadline, cancellation, panic) —
// degraded evidence cannot honestly accept a fix, so Repair refuses
// rather than guessing. Re-run with a larger WithMaxStates budget or
// without a deadline.
func Repair(ctx context.Context, name, src string, options ...Option) (*RepairReport, error) {
	cfg := apiConfig{opts: DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	if cfg.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.opts.Deadline)
		defer cancel()
	}
	in := cfg.opts.internal()
	in.Ctx = ctx
	res, err := repair.Repair(name, src, in)
	if err != nil {
		if errors.Is(err, repair.ErrParse) {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return nil, err
	}
	return buildRepairReport(name, src, res), nil
}

// buildRepairReport converts the internal repair result into the
// public patch-oriented shape, deriving per-step and cumulative
// unified diffs from the engine's source snapshots.
func buildRepairReport(name, src string, res *repair.Result) *RepairReport {
	out := &RepairReport{
		Name:              name,
		Fixed:             res.Fixed,
		Diff:              udiff.Unified(name, src, res.Fixed),
		InitialWarnings:   res.InitialWarnings,
		RemainingWarnings: res.RemainingWarnings,
		Rejected:          append([]string(nil), res.Rejected...),
	}
	prev := src
	for _, s := range res.Steps {
		out.Patches = append(out.Patches, Patch{
			Strategy: string(s.Strategy),
			Proc:     s.Proc,
			Task:     s.Task,
			Token:    s.Token,
			Diff:     udiff.Unified(name, prev, s.Patched),
			Verdict: Verdict{
				Verified:       true,
				Checks:         []string{CheckStaticReanalysis, CheckScheduleOracle},
				WarningsBefore: s.Before,
				WarningsAfter:  s.After,
			},
		})
		prev = s.Patched
	}
	for _, w := range res.Remaining {
		out.Remaining = append(out.Remaining, Warning{
			Var: w.Var, Task: w.Task, Proc: w.Proc, Write: w.Write,
			Reason: w.Reason.String(), Pos: w.Pos,
			AccessLine: w.AccessLine, AccessCol: w.AccessCol,
			DeclLine: w.DeclLine, Conservative: w.Conservative, Prov: w.Prov,
		})
	}
	SortWarnings(out.Remaining)
	return out
}
