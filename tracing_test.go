package uafcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"uafcheck/internal/obs"
)

// stripNondeterministic removes the wall-clock histogram families and
// the span tree from a metrics value, leaving only data that must be
// byte-identical across runs and parallelism levels.
func stripNondeterministic(m *Metrics) {
	for name := range m.Hists {
		if obs.HistNondeterministic(name) {
			delete(m.Hists, name)
		}
	}
	if len(m.Hists) == 0 {
		m.Hists = nil
	}
	m.Trace = nil
}

// TestTracingSpanTree is the end-to-end span contract: one traced
// analysis yields a single tree rooted at the file span, with the
// frontend phases, per-procedure spans, and PPS wave spans correctly
// parented.
func TestTracingSpanTree(t *testing.T) {
	src := loadTestdata(t, "figure1.chpl")
	rep, err := AnalyzeContext(context.Background(), "figure1.chpl", src, WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	spans := rep.Metrics.Trace
	if len(spans) == 0 {
		t.Fatal("WithTracing(true) produced no spans")
	}

	wantID := obs.DeriveTraceID("uafcheck/file", "figure1.chpl", src).String()
	byID := make(map[string]obs.TraceSpan, len(spans))
	names := make(map[string][]obs.TraceSpan)
	for _, sp := range spans {
		if sp.TraceID != wantID {
			t.Fatalf("span %s has trace id %s, want derived %s", sp.Name, sp.TraceID, wantID)
		}
		byID[sp.SpanID] = sp
		names[sp.Name] = append(names[sp.Name], sp)
	}

	for _, want := range []string{"file", obs.PhaseParse, obs.PhaseResolve, "proc",
		obs.PhaseLower, obs.PhaseCCFG, obs.PhaseExplore, "pps-wave"} {
		if len(names[want]) == 0 {
			t.Errorf("no %q span recorded; got %d spans", want, len(spans))
		}
	}
	if len(names["file"]) != 1 {
		t.Fatalf("want exactly one file root span, got %d", len(names["file"]))
	}
	root := names["file"][0]
	if root.Parent != "" {
		t.Errorf("file span has parent %q", root.Parent)
	}
	if root.Attrs["name"] != "figure1.chpl" {
		t.Errorf("file span attrs = %v", root.Attrs)
	}

	// Every non-root span's parent must exist, and walking parents must
	// reach the root (a tree, not a forest).
	for _, sp := range spans {
		if sp.SpanID == root.SpanID {
			continue
		}
		cur, hops := sp, 0
		for cur.Parent != "" && hops < len(spans)+1 {
			next, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s has dangling parent %s", cur.Name, cur.Parent)
			}
			cur, hops = next, hops+1
		}
		if cur.SpanID != root.SpanID {
			t.Errorf("span %s does not chain to the file root", sp.Name)
		}
	}
	// Wave spans parent into the exploration phase.
	explore := names[obs.PhaseExplore][0]
	for _, w := range names["pps-wave"] {
		if w.Parent != explore.SpanID {
			t.Errorf("pps-wave parented to %s, want pps-explore %s", w.Parent, explore.SpanID)
		}
		if w.Attrs["size"] == "" {
			t.Errorf("pps-wave span missing size attr: %v", w.Attrs)
		}
	}
}

// TestTracingDoesNotChangeResults: the analysis outcome (warnings,
// notes, stats, counters, deterministic histograms) is byte-identical
// with tracing on and off — tracing only adds the span tree and
// wall-clock histograms.
func TestTracingDoesNotChangeResults(t *testing.T) {
	src := loadTestdata(t, "figure1.chpl")
	plain, err := AnalyzeContext(context.Background(), "figure1.chpl", src)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := AnalyzeContext(context.Background(), "figure1.chpl", src, WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	canon := func(rep *Report) []byte {
		cp := rep.Clone()
		for i := range cp.Metrics.Spans {
			cp.Metrics.Spans[i].Start = 0
			cp.Metrics.Spans[i].Dur = 0
		}
		stripNondeterministic(&cp.Metrics)
		b, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := canon(plain), canon(traced); !bytes.Equal(a, b) {
		t.Errorf("tracing changed the canonical report:\nplain:  %s\ntraced: %s", a, b)
	}
}

// TestTracingAmbientTraceWins: when the caller's context already
// carries a trace (the server case), analysis spans attach to it and
// the report does not grow its own tree.
func TestTracingAmbientTraceWins(t *testing.T) {
	src := loadTestdata(t, "figure1.chpl")
	tr := obs.NewTrace(obs.DeriveTraceID("ambient"))
	ctx := obs.ContextWithTrace(context.Background(), tr)
	ctx, req := obs.StartSpan(ctx, "request")

	rep, err := AnalyzeContext(ctx, "figure1.chpl", src, WithTracing(true))
	req.End()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics.Trace) != 0 {
		t.Errorf("report owns %d spans despite ambient trace", len(rep.Metrics.Trace))
	}
	spans := tr.Spans()
	var haveFile, haveWave bool
	for _, sp := range spans {
		switch sp.Name {
		case "file":
			haveFile = true
			if sp.Parent != req.SpanID().String() {
				t.Errorf("file span parent = %q, want request %q", sp.Parent, req.SpanID())
			}
		case "pps-wave":
			haveWave = true
		}
	}
	if !haveFile || !haveWave {
		t.Errorf("ambient trace missing analysis spans (file=%v wave=%v, %d total)",
			haveFile, haveWave, len(spans))
	}
}

// TestHistogramDeterminism pins satellite guarantee: aggregated
// deterministic histogram families (PPS wave sizes) render to
// byte-identical Prometheus text at every parallelism level, and
// metrics merge order does not matter.
func TestHistogramDeterminism(t *testing.T) {
	cases := GenerateCorpus(CorpusParams{
		Seed: 7, Tests: 40, BeginTests: 16,
		UnsafeTests: 4, TrueSites: 8, AtomicFPTests: 4, FalseSites: 10,
	})
	render := func(par int, reverse bool) []byte {
		t.Helper()
		var reps []*Report
		for _, c := range cases {
			rep, err := AnalyzeContext(context.Background(), c.Name, c.Source,
				WithParallelism(par))
			if err != nil {
				continue
			}
			reps = append(reps, rep)
		}
		if len(reps) < 20 {
			t.Fatalf("only %d analyzable corpus cases", len(reps))
		}
		if reverse {
			for i, j := 0, len(reps)-1; i < j; i, j = i+1, j-1 {
				reps[i], reps[j] = reps[j], reps[i]
			}
		}
		var agg Metrics
		for _, rep := range reps {
			agg.Merge(rep.Metrics)
		}
		stripNondeterministic(&agg)
		agg.Spans = nil // wall-clock phase timings; not under test here
		if agg.Hist(obs.HistWaveSize).Empty() {
			t.Fatal("corpus produced no wave-size observations")
		}
		var buf bytes.Buffer
		if err := (obs.PromSink{W: &buf}).Emit(agg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := render(1, false)
	for _, par := range []int{4, 0} {
		if got := render(par, false); !bytes.Equal(want, got) {
			t.Errorf("parallelism %d changed deterministic histogram output:\nwant:\n%s\ngot:\n%s",
				par, want, got)
		}
	}
	if got := render(1, true); !bytes.Equal(want, got) {
		t.Errorf("merge order changed histogram output:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestCacheHitRecordsLookupHistogram: cache hits surface their lookup
// latency as a cache.lookup_ns observation and never resurrect a span
// tree from the stored report.
func TestCacheHitRecordsLookupHistogram(t *testing.T) {
	src := loadTestdata(t, "figure1.chpl")
	c := NewCache(CacheConfig{})
	opts := []Option{WithCache(c), WithTracing(true)}
	first, err := AnalyzeContext(context.Background(), "figure1.chpl", src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Metrics.Trace) == 0 {
		t.Fatal("miss run recorded no spans")
	}
	second, err := AnalyzeContext(context.Background(), "figure1.chpl", src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if second.Metrics.Counter(obs.CtrCacheHits) != 1 {
		t.Fatalf("second run not a cache hit: %v", second.Metrics.Counters)
	}
	if len(second.Metrics.Trace) != 0 {
		t.Errorf("cache hit resurrected %d spans", len(second.Metrics.Trace))
	}
	if h := second.Metrics.Hist(obs.HistCacheLookupNS); h.Count != 1 {
		t.Errorf("cache hit lookup histogram = %+v, want one observation", h)
	}
}
