// Determinism contract of the parallel wave explorer: for every
// parallelism level the analysis must produce byte-identical reports —
// same warnings, same order, same stats, same counters, same traces.
// This file is also the -race coverage for the parallel path (run via
// `make test-race` / `make check`).
package uafcheck_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"uafcheck"
	"uafcheck/internal/obs"
)

// canonicalReport serializes a report with the only legitimately
// nondeterministic data zeroed out: span wall-clock timings,
// wall-clock histogram families (`*_ns`, see obs.HistNondeterministic),
// and the trace span tree.
func canonicalReport(t *testing.T, rep *uafcheck.Report) []byte {
	t.Helper()
	cp := rep.Clone()
	for i := range cp.Metrics.Spans {
		cp.Metrics.Spans[i].Start = 0
		cp.Metrics.Spans[i].Dur = 0
	}
	for name := range cp.Metrics.Hists {
		if obs.HistNondeterministic(name) {
			delete(cp.Metrics.Hists, name)
		}
	}
	if len(cp.Metrics.Hists) == 0 {
		cp.Metrics.Hists = nil
	}
	cp.Metrics.Trace = nil
	buf, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// determinismInputs is the test program set: a scaled-down corpus (all
// generator patterns), the paper's figure programs, and a wide fanout
// whose frontiers are broad enough to actually spin up wave workers.
func determinismInputs(t *testing.T) []uafcheck.FileInput {
	t.Helper()
	var files []uafcheck.FileInput
	cases := uafcheck.GenerateCorpus(uafcheck.CorpusParams{
		Seed: 7, Tests: 120, BeginTests: 48,
		UnsafeTests: 6, TrueSites: 14, AtomicFPTests: 6, FalseSites: 20,
	})
	for _, c := range cases {
		files = append(files, uafcheck.FileInput{Name: c.Name + ".chpl", Src: c.Source})
	}
	for _, path := range []string{"testdata/figure1.chpl", "testdata/figure6.chpl"} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, uafcheck.FileInput{Name: path, Src: string(data)})
	}
	files = append(files, uafcheck.FileInput{Name: "fan.chpl", Src: syntheticFanout(7, 2)})
	return files
}

// TestParallelDeterminism analyzes every input at Parallelism 1, 4 and
// GOMAXPROCS (plus the 0 default) and requires the canonical reports to
// be byte-identical to the sequential baseline.
func TestParallelDeterminism(t *testing.T) {
	files := determinismInputs(t)
	ctx := context.Background()
	levels := []int{1, 4, runtime.GOMAXPROCS(0), 0}

	baseline := make(map[string][]byte, len(files))
	for _, f := range files {
		rep, err := uafcheck.AnalyzeContext(ctx, f.Name, f.Src,
			uafcheck.WithTrace(true), uafcheck.WithParallelism(1))
		if err != nil {
			continue // frontend-rejected corpus cases are out of scope
		}
		baseline[f.Name] = canonicalReport(t, rep)
	}
	if len(baseline) < 100 {
		t.Fatalf("only %d analyzable inputs; corpus generation drifted", len(baseline))
	}

	for _, par := range levels[1:] {
		for _, f := range files {
			want, ok := baseline[f.Name]
			if !ok {
				continue
			}
			rep, err := uafcheck.AnalyzeContext(ctx, f.Name, f.Src,
				uafcheck.WithTrace(true), uafcheck.WithParallelism(par))
			if err != nil {
				t.Fatalf("Parallelism=%d: %s: %v", par, f.Name, err)
			}
			if got := canonicalReport(t, rep); string(got) != string(want) {
				t.Errorf("Parallelism=%d: %s: report differs from sequential baseline\nseq: %s\npar: %s",
					par, f.Name, want, got)
			}
		}
	}
}

// TestBatchReportUnification: a file analyzed through AnalyzeFiles must
// produce a report structurally identical to the single-file entry
// point — same type, same warnings, same stats; only span timings and
// the batch-level telemetry wrapper may differ.
func TestBatchReportUnification(t *testing.T) {
	data, err := os.ReadFile("testdata/figure1.chpl")
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	ctx := context.Background()

	single, err := uafcheck.AnalyzeContext(ctx, "figure1.chpl", src, uafcheck.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	batch := uafcheck.AnalyzeFilesContext(ctx,
		[]uafcheck.FileInput{{Name: "figure1.chpl", Src: src}},
		uafcheck.WithTrace(true))
	if len(batch.Files) != 1 {
		t.Fatalf("batch files = %d", len(batch.Files))
	}
	fr := batch.Files[0]
	if fr.Report == nil {
		t.Fatal("batch per-file report is nil")
	}
	if got, want := canonicalReport(t, fr.Report), canonicalReport(t, single); string(got) != string(want) {
		t.Errorf("batch report differs from single-file report\nsingle: %s\nbatch:  %s", want, got)
	}
}

// TestReportCloneIsDeep: mutating a clone must never reach the original.
func TestReportCloneIsDeep(t *testing.T) {
	data, err := os.ReadFile("testdata/figure1.chpl")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := uafcheck.AnalyzeContext(context.Background(), "figure1.chpl", string(data),
		uafcheck.WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) == 0 || rep.Warnings[0].Prov == nil || len(rep.PPSTraces) == 0 {
		t.Fatalf("test premise broken: need warnings with provenance and traces, got %+v", rep)
	}
	want := canonicalReport(t, rep)

	cp := rep.Clone()
	cp.Warnings[0].Var = "tampered"
	cp.Warnings[0].Prov.Chain = append(cp.Warnings[0].Prov.Chain, "tampered")
	cp.Notes = append(cp.Notes, "tampered")
	cp.Stats[0].Proc = "tampered"
	for k := range cp.PPSTraces {
		cp.PPSTraces[k] = "tampered"
	}
	if cp.Metrics.Counters != nil {
		cp.Metrics.Counters["tampered"] = 1
	}

	if got := canonicalReport(t, rep); string(got) != string(want) {
		t.Error("mutating the clone changed the original report")
	}
}
