package uafcheck_test

// Golden-artifact regression tests: the committed figure renderings under
// docs/figures must match what the current code produces. Any behavioral
// drift in CCFG construction, pruning, frontier computation or PPS
// exploration shows up as a diff here; regenerate deliberately with
//
//	go run ./cmd/uaffigures -fig 2 > docs/figures/figure2_ccfg.txt   (etc.)

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck"
)

func readGolden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("docs", "figures", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func readProgram(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestGoldenFigure2(t *testing.T) {
	src := readProgram(t, "figure1.chpl")
	ccfg, err := uafcheck.CCFGText("testdata/figure1.chpl", src, "outerVarUse")
	if err != nil {
		t.Fatal(err)
	}
	golden := readGolden(t, "figure2_ccfg.txt")
	if !strings.Contains(golden, strings.TrimSpace(ccfg)) {
		t.Errorf("CCFG drifted from docs/figures/figure2_ccfg.txt:\n%s", ccfg)
	}
	dot, err := uafcheck.CCFGDot("testdata/figure1.chpl", src, "outerVarUse")
	if err != nil {
		t.Fatal(err)
	}
	goldenDot := readGolden(t, "figure2.dot")
	if !strings.Contains(goldenDot, strings.TrimSpace(dot)) {
		t.Errorf("DOT drifted from docs/figures/figure2.dot")
	}
}

func TestGoldenFigure3(t *testing.T) {
	src := readProgram(t, "figure1.chpl")
	trace, err := uafcheck.PPSTrace("testdata/figure1.chpl", src, "outerVarUse")
	if err != nil {
		t.Fatal(err)
	}
	golden := readGolden(t, "figure3_pps.txt")
	if !strings.Contains(golden, strings.TrimSpace(trace)) {
		t.Errorf("PPS trace drifted from docs/figures/figure3_pps.txt:\n%s", trace)
	}
}

func TestGoldenFigure7(t *testing.T) {
	src := readProgram(t, "figure6.chpl")
	ccfg, err := uafcheck.CCFGText("testdata/figure6.chpl", src, "multipleUse")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := uafcheck.PPSTrace("testdata/figure6.chpl", src, "multipleUse")
	if err != nil {
		t.Fatal(err)
	}
	golden := readGolden(t, "figure7_ccfg_pps.txt")
	if !strings.Contains(golden, strings.TrimSpace(ccfg)) {
		t.Errorf("figure 7 CCFG drifted:\n%s", ccfg)
	}
	if !strings.Contains(golden, strings.TrimSpace(trace)) {
		t.Errorf("figure 7 PPS trace drifted:\n%s", trace)
	}
}
