package uafcheck_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"uafcheck"
)

// TestErrParseIdentity: frontend rejections match ErrParse (and its
// deprecated alias ErrFrontend) via errors.Is, from both the
// single-shot and the incremental entry points.
func TestErrParseIdentity(t *testing.T) {
	ctx := context.Background()
	_, err := uafcheck.AnalyzeContext(ctx, "bad.chpl", "proc ( {")
	if err == nil {
		t.Fatal("expected a frontend error")
	}
	if !errors.Is(err, uafcheck.ErrParse) {
		t.Errorf("errors.Is(err, ErrParse) = false for %v", err)
	}
	if !errors.Is(err, uafcheck.ErrFrontend) {
		t.Errorf("errors.Is(err, ErrFrontend) = false for %v", err)
	}
	if !strings.Contains(err.Error(), "frontend errors") {
		t.Errorf("v1 message lost: %v", err)
	}

	_, derr := uafcheck.NewAnalyzer().AnalyzeDelta(ctx, "bad.chpl", "proc ( {")
	if !errors.Is(derr, uafcheck.ErrParse) {
		t.Errorf("AnalyzeDelta frontend error %v does not match ErrParse", derr)
	}
}

// degradingSrc explores far more states than the budgets used below.
func degradingSrc() string {
	return `proc big() {
  var x: int = 0;
  var a$: sync bool;
  var b$: sync bool;
  var c$: sync bool;
  begin with (ref x) { x = 2; a$ = true; }
  begin with (ref x) { x = 3; b$ = true; }
  begin with (ref x) { x = 4; c$ = true; }
  a$;
  b$;
  c$;
}
`
}

// TestReportErrBudget: a budget-degraded report maps onto
// ErrBudgetExhausted through Report.Err, with the affected procedures
// in the message.
func TestReportErrBudget(t *testing.T) {
	rep, err := uafcheck.AnalyzeContext(context.Background(), "b.chpl", degradingSrc(),
		uafcheck.WithMaxStates(2))
	if err != nil {
		t.Fatal(err)
	}
	rerr := rep.Err()
	if !errors.Is(rerr, uafcheck.ErrBudgetExhausted) {
		t.Fatalf("Report.Err() = %v, want ErrBudgetExhausted", rerr)
	}
	if !strings.Contains(rerr.Error(), "big") {
		t.Errorf("degradation error should name the proc: %v", rerr)
	}
	if errors.Is(rerr, uafcheck.ErrDeadline) || errors.Is(rerr, uafcheck.ErrCancelled) {
		t.Errorf("budget error must not match the other sentinels: %v", rerr)
	}
}

// TestReportErrDeadlineAndCancelled cover the other two resource rungs.
func TestReportErrDeadlineAndCancelled(t *testing.T) {
	rep, err := uafcheck.AnalyzeContext(context.Background(), "d.chpl", degradingSrc(),
		uafcheck.WithDeadline(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if rerr := rep.Err(); !errors.Is(rerr, uafcheck.ErrDeadline) {
		t.Errorf("deadline run: Report.Err() = %v, want ErrDeadline", rerr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err = uafcheck.AnalyzeContext(ctx, "c.chpl", degradingSrc())
	if err != nil {
		t.Fatal(err)
	}
	if rerr := rep.Err(); !errors.Is(rerr, uafcheck.ErrCancelled) {
		t.Errorf("cancelled run: Report.Err() = %v, want ErrCancelled", rerr)
	}
}

// TestReportErrNilOnComplete: complete runs report no failure.
func TestReportErrNilOnComplete(t *testing.T) {
	rep, err := uafcheck.AnalyzeContext(context.Background(), "ok.chpl",
		"proc p() {\n  var x: int = 0;\n  begin with (ref x) {\n    x = 1;\n  }\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if rerr := rep.Err(); rerr != nil {
		t.Errorf("complete run: Report.Err() = %v, want nil", rerr)
	}
	var nilRep *uafcheck.Report
	if nilRep.Err() != nil {
		t.Error("nil report should have nil Err")
	}
}

// TestFileReportFailure: the batch driver speaks the same error
// vocabulary — frontend rejections match ErrParse, degradations match
// their sentinel, complete runs are nil.
func TestFileReportFailure(t *testing.T) {
	files := []uafcheck.FileInput{
		{Name: "bad.chpl", Src: "proc ( {"},
		{Name: "slow.chpl", Src: degradingSrc()},
		{Name: "ok.chpl", Src: "proc p() {\n  writeln(1);\n}\n"},
	}
	batch := uafcheck.AnalyzeFilesContext(context.Background(), files,
		uafcheck.WithMaxStates(2))
	if n := len(batch.Files); n != 3 {
		t.Fatalf("got %d file reports, want 3", n)
	}
	if err := batch.Files[0].Failure(); !errors.Is(err, uafcheck.ErrParse) {
		t.Errorf("bad.chpl Failure() = %v, want ErrParse", err)
	}
	if err := batch.Files[1].Failure(); !errors.Is(err, uafcheck.ErrBudgetExhausted) {
		t.Errorf("slow.chpl Failure() = %v, want ErrBudgetExhausted", err)
	}
	if err := batch.Files[2].Failure(); err != nil {
		t.Errorf("ok.chpl Failure() = %v, want nil", err)
	}
}
