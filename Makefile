GO ?= go

.PHONY: build test vet fmt-check bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...

check: build vet fmt-check test
