GO ?= go
FUZZTIME ?= 15s

.PHONY: build test test-race vet fmt-check bench bench-all bench-incremental fuzz-short loadtest chaos repair-smoke cluster-smoke module-smoke cluster-loadtest check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass: certifies the batch driver, the synchronized
# metrics sinks, and every other concurrent path.
test-race:
	$(GO) test -race ./...

# Short native-fuzzing pass over the frontend (lexer + parser). The
# targets also run their seed corpora as plain tests under `make test`.
fuzz-short:
	$(GO) test -fuzz=FuzzLex -fuzztime=$(FUZZTIME) ./internal/lexer/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/parser/

# End-to-end load test of the uafserve daemon: builds the real
# binaries, boots the server, and drives it with concurrent clients
# (byte-identity vs the CLI, 429 under overload, dedup, graceful
# SIGTERM drain). Tagged so `make test` stays fast.
loadtest:
	$(GO) test -race -tags loadtest -run TestLoadEndToEnd -v ./internal/server/

# Chaos drill: the fixed-seed fault-injection matrix (disk corruption,
# torn writes, worker panics, admission storms, kill-and-restart cache
# recovery, watch-mode wedge/recovery) under the race detector. See
# docs/RECOVERY.md for the failure catalog these tests enforce.
chaos:
	$(GO) test -race ./internal/fault/ ./internal/client/
	$(GO) test -race -run 'Chaos|Recover|Quarantine|Torn|Wedge|Degraded|HealthzComponents|WriteFailure' \
		./internal/cache/ ./internal/watch/ ./internal/server/ ./internal/repair/ ./internal/cluster/

# Round-trip smoke of the repair API: boots the real uafserve, repairs
# a corpus file over POST /v1/repair, applies the served unified diff
# with patch(1), re-analyzes the result with the CLI, and asserts zero
# warnings. See docs/REPAIR.md.
repair-smoke:
	sh scripts/repair-smoke.sh

# Cluster smoke: boots a coordinator + 2 workers from the real binary,
# asserts batch byte-identity with a single process through the edge,
# then kills both workers mid-batch and asserts the stream degrades
# visibly (one flagged line per unfinished file) instead of going
# silently short. See docs/CLUSTER.md.
cluster-smoke:
	sh scripts/cluster-smoke.sh

# Module smoke: boots a coordinator + 2 workers, analyzes a 3-file
# module in one mode=module batch, edits one callee over /v1/delta and
# asserts the cross-file caller's warnings are re-reported (and cleared
# once the callee synchronizes), then checks the whole module cell was
# routed to a single worker with unit-memo reuse. See
# docs/INTERPROCEDURAL.md.
module-smoke:
	sh scripts/module-smoke.sh

# Cluster scaling load test: single process vs coordinator + {1,2,4}
# one-core workers over the same batch, with injected per-analysis
# latency. Hard-fails on any warning-set divergence or if 2 workers
# don't beat 1 by >= 1.6x; writes BENCH_cluster.json.
cluster-loadtest:
	sh scripts/cluster-loadtest.sh

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench='BenchmarkExplore(Seq|Par)|BenchmarkAnalyzeCached' -benchmem .
	$(GO) run ./cmd/uafcorpus -tests 400 -bench-out "" -pps-bench-out BENCH_pps.json

# The full benchmark sweep (every table, figure and ablation).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Cold vs warm single-edit latency of the incremental engine. Exits
# nonzero if any warm report is not byte-identical to its cold
# counterpart, so this doubles as the CI smoke of AnalyzeDelta.
bench-incremental:
	$(GO) run ./cmd/uafcorpus -incr-bench-out BENCH_incremental.json

check: build vet fmt-check test test-race
