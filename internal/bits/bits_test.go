package bits

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(10)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(64) // beyond initial capacity: must grow
	s.Add(129)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int{3, 64, 129} {
		if !s.Has(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Has(4) || s.Has(1000) || s.Has(-1) {
		t.Error("phantom members")
	}
	s.Remove(64)
	if s.Has(64) || s.Len() != 2 {
		t.Error("Remove failed")
	}
	s.Remove(10000) // out of range: no-op
}

func TestCloneIndependence(t *testing.T) {
	a := New(8)
	a.Add(1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("Clone aliases original")
	}
	if !b.Has(1) {
		t.Error("Clone lost members")
	}
}

func TestElemsOrdered(t *testing.T) {
	s := New(0)
	for _, i := range []int{200, 5, 63, 64, 0} {
		s.Add(i)
	}
	want := []int{0, 5, 63, 64, 200}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(4)
	s.Add(1)
	s.Add(9)
	if s.String() != "{1,9}" {
		t.Errorf("String = %q", s.String())
	}
	if New(0).String() != "{}" {
		t.Error("empty String wrong")
	}
}

// model is a reference implementation over map[int]bool.
type model map[int]bool

func fromInts(xs []uint8) (Set, model) {
	s := New(0)
	m := model{}
	for _, x := range xs {
		s.Add(int(x))
		m[int(x)] = true
	}
	return s, m
}

// Property: UnionWith agrees with the map model.
func TestUnionProperty(t *testing.T) {
	check := func(a, b []uint8) bool {
		sa, ma := fromInts(a)
		sb, mb := fromInts(b)
		sa.UnionWith(sb)
		for k := range mb {
			ma[k] = true
		}
		if sa.Len() != len(ma) {
			return false
		}
		for k := range ma {
			if !sa.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: IntersectWith agrees with the map model.
func TestIntersectProperty(t *testing.T) {
	check := func(a, b []uint8) bool {
		sa, ma := fromInts(a)
		sb, mb := fromInts(b)
		sa.IntersectWith(sb)
		want := model{}
		for k := range ma {
			if mb[k] {
				want[k] = true
			}
		}
		if sa.Len() != len(want) {
			return false
		}
		for k := range want {
			if !sa.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: DiffWith agrees with the map model.
func TestDiffProperty(t *testing.T) {
	check := func(a, b []uint8) bool {
		sa, ma := fromInts(a)
		sb, mb := fromInts(b)
		sa.DiffWith(sb)
		for k := range ma {
			if mb[k] {
				delete(ma, k)
			}
		}
		if sa.Len() != len(ma) {
			return false
		}
		for k := range ma {
			if !sa.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is capacity-insensitive and AppendKey canonical — two
// sets with the same members but different internal capacities compare
// equal and encode identically.
func TestEqualAndKeyCanonicalProperty(t *testing.T) {
	check := func(xs []uint8) bool {
		small, _ := fromInts(xs)
		big := New(4096)
		for _, x := range xs {
			big.Add(int(x))
		}
		if !small.Equal(big) || !big.Equal(small) {
			return false
		}
		ka := string(small.AppendKey(nil))
		kb := string(big.AppendKey(nil))
		return ka == kb
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: union reports change iff the set actually grew.
func TestUnionChangeReporting(t *testing.T) {
	check := func(a, b []uint8) bool {
		sa, _ := fromInts(a)
		sb, _ := fromInts(b)
		before := sa.Len()
		changed := sa.UnionWith(sb)
		return changed == (sa.Len() > before)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestForEachMatchesElems(t *testing.T) {
	s, _ := fromInts([]uint8{3, 3, 7, 200, 0})
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("ForEach %v vs Elems %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach %v vs Elems %v", got, want)
		}
	}
}
