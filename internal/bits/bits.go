// Package bits provides a small dense bitset used by the PPS explorer for
// visited-node, outer-variable and safe-access sets. The explorer copies
// sets on every state transition, so the representation favors cheap
// cloning and word-wise union/intersection.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a dense bitset. The zero value is an empty set of capacity 0;
// use New to pre-size.
type Set struct {
	words []uint64
}

// New returns an empty set able to hold values in [0, n) without growing.
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64)}
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

func (s *Set) grow(i int) {
	need := i/64 + 1
	for len(s.words) < need {
		s.words = append(s.words, 0)
	}
}

// Add inserts i.
func (s *Set) Add(i int) {
	s.grow(i)
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove deletes i.
func (s *Set) Remove(i int) {
	if i/64 < len(s.words) {
		s.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Has reports membership of i.
func (s Set) Has(i int) bool {
	if i < 0 || i/64 >= len(s.words) {
		return false
	}
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Len returns the number of elements.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every element of t to s, returning true if s changed.
func (s *Set) UnionWith(t Set) bool {
	for len(s.words) < len(t.words) {
		s.words = append(s.words, 0)
	}
	changed := false
	for i, w := range t.words {
		if s.words[i]|w != s.words[i] {
			changed = true
			s.words[i] |= w
		}
	}
	return changed
}

// IntersectWith keeps only elements also in t, returning true on change.
func (s *Set) IntersectWith(t Set) bool {
	changed := false
	for i := range s.words {
		var w uint64
		if i < len(t.words) {
			w = t.words[i]
		}
		if s.words[i]&w != s.words[i] {
			changed = true
			s.words[i] &= w
		}
	}
	return changed
}

// DiffWith removes every element of t from s.
func (s *Set) DiffWith(t Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Elems returns the members in ascending order.
func (s Set) Elems() []int {
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls f on each member in ascending order.
func (s Set) ForEach(f func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// AppendKey appends a canonical binary encoding of the set to dst — used
// to build merge keys. Trailing zero words are skipped so equal sets with
// different capacities encode identically.
func (s Set) AppendKey(dst []byte) []byte {
	last := len(s.words) - 1
	for last >= 0 && s.words[last] == 0 {
		last--
	}
	for i := 0; i <= last; i++ {
		w := s.words[i]
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// String renders "{1,5,9}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
