package mhp

import (
	"os"
	"path/filepath"
	"testing"

	"uafcheck/internal/ccfg"
	"uafcheck/internal/ir"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func graphFor(t *testing.T, src string) *ccfg.Graph {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	prog := ir.Lower(info, mod.Procs[0], diags)
	return ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
}

// TestBaselinesFlagWaitChainedCode: the sync-variable wait chain makes
// the access safe under the paper's analysis, but both baselines still
// flag it — the precision gap §VI argues about.
func TestBaselinesFlagWaitChainedCode(t *testing.T) {
	g := graphFor(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    done$ = true;
	  }
	  done$;
	}`)
	paper := pps.Explore(g, pps.Options{})
	if len(paper.Unsafe) != 0 {
		t.Fatalf("paper analysis flagged the wait chain: %v", paper.Unsafe)
	}
	if n := len(NaiveMHP(g)); n != 1 {
		t.Errorf("naive MHP flags = %d, want 1", n)
	}
	if n := len(FinishEnforcement(g)); n != 1 {
		t.Errorf("finish enforcement flags = %d, want 1", n)
	}
	cmp := Compare(g, len(paper.Unsafe))
	if cmp.ClearedByPPS != 1 {
		t.Errorf("ClearedByPPS = %d, want 1", cmp.ClearedByPPS)
	}
}

// TestBaselinesAcceptSyncBlock: a finish-style block satisfies all three
// analyses — no flags anywhere.
func TestBaselinesAcceptSyncBlock(t *testing.T) {
	g := graphFor(t, `proc f() {
	  var x: int = 1;
	  sync {
	    begin with (ref x) { x = 2; }
	  }
	}`)
	if len(NaiveMHP(g)) != 0 || len(FinishEnforcement(g)) != 0 {
		t.Error("baselines flagged sync-block-protected code")
	}
}

// TestFigure1Baselines: on the paper's Figure 1 the paper analysis warns
// once while the baselines flag every tracked access.
func TestFigure1Baselines(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "figure1.chpl"))
	if err != nil {
		t.Fatal(err)
	}
	g := graphFor(t, string(data))
	paper := pps.Explore(g, pps.Options{})
	naive := NaiveMHP(g)
	if len(paper.Unsafe) != 1 {
		t.Fatalf("paper warnings = %d", len(paper.Unsafe))
	}
	if len(naive) != len(g.Accesses) {
		t.Errorf("naive MHP = %d, want all %d tracked", len(naive), len(g.Accesses))
	}
	if len(naive) <= len(paper.Unsafe) {
		t.Errorf("baseline (%d) should flag strictly more than the paper (%d)",
			len(naive), len(paper.Unsafe))
	}
	for _, v := range naive {
		if v.Baseline != "naive-mhp" {
			t.Errorf("baseline label = %s", v.Baseline)
		}
	}
}
