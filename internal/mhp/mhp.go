// Package mhp implements the two baseline analyses the paper positions
// itself against (§VI):
//
//   - FinishEnforcement: the X10/Habanero-Java discipline, where every
//     async (begin) referencing outer memory must be enclosed in a finish
//     (sync) block. Applied as a checker it flags every outer-variable
//     access of every begin task not protected by a sync block,
//     regardless of point-to-point synchronization — sound but highly
//     restrictive.
//
//   - NaiveMHP: a may-happen-in-parallel oracle that does not model
//     point-to-point synchronization ("None of the above mentioned
//     algorithms handle point-to-point synchronization"). An outer
//     variable access is flagged when the end of the variable's scope may
//     happen in parallel with it, which — without sync-variable ordering —
//     is every structurally unprotected access.
//
// Both run on the same CCFG as the paper's analysis, so precision
// comparisons are apples-to-apples: the paper's PPS exploration clears
// the accesses that a sync-variable wait chain provably orders before the
// parallel frontier; the baselines cannot.
package mhp

import (
	"uafcheck/internal/ccfg"
)

// Violation is one baseline finding.
type Violation struct {
	Access *ccfg.Access
	// Baseline names the analysis that produced the finding.
	Baseline string
}

// FinishEnforcement flags every tracked outer-variable access (the CCFG
// builder already removed accesses protected by sync blocks or the
// synced-scope list — precisely the ones a finish discipline allows).
// It also flags protected-by-wait-chain accesses, because the X10 model
// has no point-to-point escape hatch.
func FinishEnforcement(g *ccfg.Graph) []Violation {
	var out []Violation
	for _, a := range g.Accesses {
		out = append(out, Violation{Access: a, Baseline: "finish-enforcement"})
	}
	return out
}

// NaiveMHP flags every tracked access whose variable's scope end may
// happen in parallel with it. Without modelling sync variables, the scope
// end of an outer variable always may-happen-in-parallel with accesses in
// an unsynchronized task, so the result equals the tracked-access set —
// but the function is kept separate from FinishEnforcement because the
// two baselines differ on graphs with structurally dead code (pruned
// tasks) and report under different names.
func NaiveMHP(g *ccfg.Graph) []Violation {
	var out []Violation
	for _, a := range g.Accesses {
		out = append(out, Violation{Access: a, Baseline: "naive-mhp"})
	}
	return out
}

// Comparison summarizes paper-vs-baseline precision on one graph.
type Comparison struct {
	TrackedAccesses int
	PaperWarnings   int
	BaselineFlags   int
	// ClearedByPPS counts accesses the PPS exploration proved safe that
	// the baseline still flags — the precision gain of modelling
	// point-to-point synchronization.
	ClearedByPPS int
}

// Compare computes the precision comparison given the paper analysis'
// warning count for the same graph.
func Compare(g *ccfg.Graph, paperWarnings int) Comparison {
	base := len(NaiveMHP(g))
	return Comparison{
		TrackedAccesses: len(g.Accesses),
		PaperWarnings:   paperWarnings,
		BaselineFlags:   base,
		ClearedByPPS:    base - paperWarnings,
	}
}
