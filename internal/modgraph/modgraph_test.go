package modgraph_test

import (
	"testing"

	"uafcheck/internal/ast"
	"uafcheck/internal/ir"
	"uafcheck/internal/modgraph"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
)

// link parses and links named sources in order, failing the test on any
// parse error (resolution errors are the caller's business).
func link(t *testing.T, files ...[2]string) *modgraph.Graph {
	t.Helper()
	var mfs []*modgraph.File
	for _, f := range files {
		sf := source.NewFile(f[0], f[1])
		diags := &source.Diagnostics{}
		mod := parser.Parse(sf, diags)
		if diags.HasErrors() {
			t.Fatalf("%s: parse errors:\n%s", f[0], diags.All())
		}
		mfs = append(mfs, &modgraph.File{Name: f[0], Src: sf, Mod: mod, Diags: diags})
	}
	return modgraph.Link(mfs)
}

// proc finds a declaration by file and name.
func proc(t *testing.T, g *modgraph.Graph, file, name string) *ast.ProcDecl {
	t.Helper()
	for _, f := range g.Files {
		if f.Name != file {
			continue
		}
		for _, p := range f.Mod.Procs {
			if p.Name.Name == name {
				return p
			}
		}
	}
	t.Fatalf("no proc %s in %s", name, file)
	return nil
}

func TestSummaryDirectAndEscapingEffects(t *testing.T) {
	g := link(t,
		[2]string{"a.chpl", `proc reader(ref v: int) {
  writeln(v);
}
proc escwriter(ref v: int) {
  begin with (ref v) {
    v = v + 1;
  }
}
proc contained(ref v: int) {
  sync {
    begin with (ref v) {
      v = 1;
    }
  }
}
`})
	cases := []struct {
		name string
		want ir.ParamEffects
	}{
		{"reader", ir.ParamEffects{DirectRead: true}},
		// v = v + 1 both reads and writes v from the escaping task.
		{"escwriter", ir.ParamEffects{EscRead: true, EscWrite: true}},
		// A begin inside a sync region is contained: the region waits
		// for it, so the write cannot outlive the call.
		{"contained", ir.ParamEffects{DirectWrite: true}},
	}
	for _, tc := range cases {
		p := proc(t, g, "a.chpl", tc.name)
		if got := g.Summaries[p][0]; got != tc.want {
			t.Errorf("%s summary = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestFixpointMutualRecursion: a <-> b converge instead of hitting a
// recursion cutoff; both expose the union of effects along the cycle.
func TestFixpointMutualRecursion(t *testing.T) {
	g := link(t,
		[2]string{"a.chpl", "proc a(ref x: int) {\n  b(x);\n}\n"},
		[2]string{"b.chpl", "proc b(ref y: int) {\n  if (y > 0) {\n    a(y);\n  }\n  y = 1;\n}\n"},
	)
	pa := proc(t, g, "a.chpl", "a")
	pb := proc(t, g, "b.chpl", "b")
	// A ref argument is read at the call site itself, and b reads y in
	// its branch condition; both procedures converge on read+write.
	want := ir.ParamEffects{DirectRead: true, DirectWrite: true}
	if got := g.Summaries[pa][0]; got != want {
		t.Errorf("a summary = %+v, want %+v", got, want)
	}
	wantB := ir.ParamEffects{DirectRead: true, DirectWrite: true}
	if got := g.Summaries[pb][0]; got != wantB {
		t.Errorf("b summary = %+v, want %+v", got, wantB)
	}
}

// TestEffectPropagationAcrossFiles: an escaping effect two hops away
// surfaces in the transitive caller's summary, and the intermediate
// caller is marked as a module-mode analysis root even though its own
// body has no begin.
func TestEffectPropagationAcrossFiles(t *testing.T) {
	g := link(t,
		[2]string{"leaf.chpl", "proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + 1;\n  }\n}\n"},
		[2]string{"mid.chpl", "proc mid(ref w: int) {\n  leaf(w);\n}\n"},
		[2]string{"seq.chpl", "proc seq(ref u: int) {\n  u = 2;\n}\n"},
	)
	mid := proc(t, g, "mid.chpl", "mid")
	if got, want := g.Summaries[mid][0], (ir.ParamEffects{DirectRead: true, EscRead: true, EscWrite: true}); got != want {
		t.Errorf("mid summary = %+v, want %+v", got, want)
	}
	if !g.NeedsAnalysis(mid) {
		t.Error("mid inherits an escaping task from leaf; NeedsAnalysis should be true")
	}
	if seq := proc(t, g, "seq.chpl", "seq"); g.NeedsAnalysis(seq) {
		t.Error("seq is purely sequential; NeedsAnalysis should be false")
	}
}

// TestLinkerFirstWinsAndShadowing: with duplicate top-level names, a
// caller in a third file binds the first declaration in file order,
// while the duplicating file's own callers bind their local one.
func TestLinkerFirstWinsAndShadowing(t *testing.T) {
	g := link(t,
		[2]string{"one.chpl", "proc dup(ref v: int) {\n  v = 1;\n}\n"},
		[2]string{"two.chpl", "proc dup(ref v: int) {\n  begin with (ref v) {\n    v = 2;\n  }\n}\nproc local(ref u: int) {\n  dup(u);\n}\n"},
		[2]string{"three.chpl", "proc caller(ref u: int) {\n  dup(u);\n}\n"},
	)
	caller := proc(t, g, "three.chpl", "caller")
	if got, want := g.Summaries[caller][0], (ir.ParamEffects{DirectRead: true, DirectWrite: true}); got != want {
		t.Errorf("caller summary = %+v, want %+v (first declaration should win)", got, want)
	}
	loc := proc(t, g, "two.chpl", "local")
	if got, want := g.Summaries[loc][0], (ir.ParamEffects{DirectRead: true, EscWrite: true}); got != want {
		t.Errorf("local summary = %+v, want %+v (own file should shadow)", got, want)
	}
	// Both declarations keep distinct graph entries.
	d1 := proc(t, g, "one.chpl", "dup")
	d2 := proc(t, g, "two.chpl", "dup")
	if g.DeclFile[d1] != 0 || g.DeclFile[d2] != 1 {
		t.Errorf("DeclFile = %d, %d; want 0, 1", g.DeclFile[d1], g.DeclFile[d2])
	}
	if f1, f2 := g.SummaryFingerprint(d1), g.SummaryFingerprint(d2); f1 == f2 {
		t.Errorf("duplicate declarations share a fingerprint: %q", f1)
	}
}

func TestSummaryFingerprintShape(t *testing.T) {
	g := link(t,
		[2]string{"a.chpl", "proc f(ref x: int, y: int) {\n  begin with (ref x) {\n    x = 1;\n  }\n}\n"})
	p := proc(t, g, "a.chpl", "f")
	// One effect block per formal, by-value formals all-false.
	want := "a.chpl:f|false false false true|false false false false"
	if got := g.SummaryFingerprint(p); got != want {
		t.Errorf("fingerprint = %q, want %q", got, want)
	}
}

func TestDirectCalleesDeterministicOrder(t *testing.T) {
	g := link(t,
		[2]string{"z.chpl", "proc zeta(ref v: int) {\n  v = 1;\n}\nproc alpha(ref v: int) {\n  v = 2;\n}\n"},
		[2]string{"a.chpl", "proc omega(ref v: int) {\n  v = 3;\n}\n"},
		[2]string{"m.chpl", "proc main() {\n  var x: int = 0;\n  omega(x);\n  zeta(x);\n  alpha(x);\n  zeta(x);\n}\n"},
	)
	var f *modgraph.File
	for _, mf := range g.Files {
		if mf.Name == "m.chpl" {
			f = mf
		}
	}
	callees := g.DirectCallees(f, proc(t, g, "m.chpl", "main"))
	var got []string
	for _, d := range callees {
		got = append(got, d.Name.Name)
	}
	// Defining file index first (z.chpl=0, a.chpl=1), name within a
	// file; duplicates collapse.
	want := []string{"alpha", "zeta", "omega"}
	if len(got) != len(want) {
		t.Fatalf("callees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callees = %v, want %v", got, want)
		}
	}
}

func TestUnresolvedCallsListed(t *testing.T) {
	g := link(t,
		[2]string{"a.chpl", "proc main() {\n  var x: int = 0;\n  nowhere(x);\n}\n"})
	if len(g.Unresolved) != 1 {
		t.Fatalf("Unresolved = %+v, want exactly one entry", g.Unresolved)
	}
	u := g.Unresolved[0]
	if u.File != "a.chpl" || u.Name != "nowhere" {
		t.Errorf("Unresolved[0] = %+v, want file a.chpl, name nowhere", u)
	}
}
