// Package modgraph links the parsed files of one module into a
// cross-file call graph and computes per-procedure summaries: the
// concurrency events and outer-variable effects a call exposes at its
// boundary, projected onto the callee's by-ref formals.
//
// A summary records, per by-ref formal, whether the callee
// (transitively, through further module-level calls) reads or writes
// it from the calling task (Direct*) or from a fire-and-forget task
// that may outlive the call (Esc*). Summaries are computed bottom-up
// by a chaotic-iteration fixpoint over the whole module, so mutual
// recursion between top-level procedures converges instead of hitting
// a recursion cutoff. The ir lowering splices each callee's summary in
// right after the opaque Call instruction, which makes the composition
// rules fall out of the existing CCFG semantics: effects spliced
// inside a sync region are contained, effects spliced inside a begin
// escape with it, and loop subsumption (§IV-A) applies unchanged.
package modgraph

import (
	"fmt"
	"sort"
	"strings"

	"uafcheck/internal/ast"
	"uafcheck/internal/ir"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// File is one member of the module under analysis. Mod and Src come
// from the parser; Info is filled in by Link.
type File struct {
	Name  string
	Src   *source.File
	Mod   *ast.Module
	Diags *source.Diagnostics
	Info  *sym.Info
}

// Unresolved is a call that named no procedure in any file of the
// module.
type Unresolved struct {
	File string
	Name string
	Sp   source.Span
}

// Graph is the linked module: every file resolved against a shared
// linker scope, plus the converged summary table.
type Graph struct {
	Files  []*File
	Linker *sym.Scope
	// DeclFile maps every top-level procedure declaration to the index
	// of its defining file. Duplicate names across files keep distinct
	// entries — identity is the declaration, not the name.
	DeclFile map[*ast.ProcDecl]int
	// Summaries holds the fixpoint boundary effects per top-level
	// procedure, indexed by parameter position.
	Summaries map[*ast.ProcDecl][]ir.ParamEffects
	// HasTask marks procedures whose lowered body — under the converged
	// summary table — contains a task: their own begins, or a spliced
	// escape task inherited from a callee.
	HasTask map[*ast.ProcDecl]bool
	// Unresolved lists calls that resolve to no procedure module-wide,
	// in file order.
	Unresolved []Unresolved
}

// Link resolves every file against a shared linker scope holding all
// files' top-level procedures (the first declaration of a name wins,
// in file order; a file's own declarations shadow imports), then runs
// the summary fixpoint. Per-file resolution diagnostics go to each
// File's Diags.
func Link(files []*File) *Graph {
	g := &Graph{
		Files:     files,
		Linker:    sym.NewLinkerScope(),
		DeclFile:  make(map[*ast.ProcDecl]int),
		Summaries: make(map[*ast.ProcDecl][]ir.ParamEffects),
		HasTask:   make(map[*ast.ProcDecl]bool),
	}
	for i, f := range files {
		for _, p := range f.Mod.Procs {
			sym.DeclareExtern(g.Linker, p)
			g.DeclFile[p] = i
		}
	}
	for _, f := range files {
		if f.Diags == nil {
			f.Diags = &source.Diagnostics{}
		}
		f.Info = sym.ResolveWith(f.Mod, f.Diags, g.Linker)
		for _, id := range f.Info.UnresolvedCalls {
			g.Unresolved = append(g.Unresolved,
				Unresolved{File: f.Name, Name: id.Name, Sp: id.Sp})
		}
	}
	g.computeSummaries()
	return g
}

// Effects is the lowering hook: it returns the current summary of a
// callee, or nil (fully opaque call) for procedures outside the graph.
func (g *Graph) Effects(callee *ast.ProcDecl) []ir.ParamEffects {
	return g.Summaries[callee]
}

// NeedsAnalysis reports whether a procedure is a module-mode analysis
// root: it contains begin statements itself, or its lowered body under
// the converged summaries contains a task (e.g. an escaping task
// spliced from a callee that outlives the call).
func (g *Graph) NeedsAnalysis(p *ast.ProcDecl) bool {
	return ast.HasBegin(p) || g.HasTask[p]
}

// SummaryFingerprint renders a procedure's identity and converged
// summary compactly: "file:name|dr dw er ew|..." — the component the
// incremental layer folds into each caller unit's memo key, so an edit
// to a callee invalidates exactly the units whose view of it changed.
func (g *Graph) SummaryFingerprint(p *ast.ProcDecl) string {
	var b strings.Builder
	fi, ok := g.DeclFile[p]
	if !ok {
		return ""
	}
	fmt.Fprintf(&b, "%s:%s", g.Files[fi].Name, p.Name.Name)
	for _, e := range g.Summaries[p] {
		fmt.Fprintf(&b, "|%t %t %t %t", e.DirectRead, e.DirectWrite, e.EscRead, e.EscWrite)
	}
	return b.String()
}

// DirectCallees returns the distinct top-level procedures called
// (possibly through nested procedures) from within p, resolved against
// p's file. Sorted by defining file then name, so the slice is a
// stable memo-key component.
func (g *Graph) DirectCallees(f *File, p *ast.ProcDecl) []*ast.ProcDecl {
	seen := make(map[*ast.ProcDecl]bool)
	var out []*ast.ProcDecl
	ast.Walk(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		s := f.Info.Uses[call.Fun]
		if s == nil || s.Kind != sym.KindProc || s.Proc == nil ||
			s.Scope.Kind != sym.ScopeModule {
			return true
		}
		if _, top := g.DeclFile[s.Proc]; top && !seen[s.Proc] {
			seen[s.Proc] = true
			out = append(out, s.Proc)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		fi, fj := g.DeclFile[out[i]], g.DeclFile[out[j]]
		if fi != fj {
			return fi < fj
		}
		return out[i].Name.Name < out[j].Name.Name
	})
	return out
}

// computeSummaries runs the bottom-up fixpoint. Effects live in a
// finite monotone boolean lattice (4 bits per by-ref formal), so
// chaotic iteration converges; the bound is a safety net that also
// keeps a hypothetical oscillation deterministic.
func (g *Graph) computeSummaries() {
	for _, f := range g.Files {
		for _, p := range f.Mod.Procs {
			g.Summaries[p] = make([]ir.ParamEffects, len(p.Params))
		}
	}
	maxIter := 2
	for _, effs := range g.Summaries {
		maxIter += 4 * len(effs)
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, f := range g.Files {
			for _, p := range f.Mod.Procs {
				scratch := &source.Diagnostics{}
				prog := ir.LowerWith(f.Info, p, scratch, ir.LowerOptions{Effects: g.Effects})
				g.HasTask[p] = blockHasBegin(prog.Root)
				ns := extractEffects(prog)
				if !effectsEqual(ns, g.Summaries[p]) {
					g.Summaries[p] = ns
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// extractEffects walks a lowered procedure and projects its accesses
// onto the by-ref formals. esc is sticky: once inside a begin that no
// enclosing sync region of this procedure contains, everything below
// may run after the procedure returns. A begin inside a sync region is
// contained (the region waits transitively, so nested begins inherit
// containment through the unchanged syncDepth).
func extractEffects(prog *ir.Program) []ir.ParamEffects {
	idx := make(map[*sym.Symbol]int)
	for i, prm := range prog.Proc.Params {
		if s := prog.Info.Uses[prm.Name]; s != nil && s.ByRef {
			idx[s] = i
		}
	}
	out := make([]ir.ParamEffects, len(prog.Proc.Params))
	if len(idx) == 0 {
		return out
	}
	var walk func(b *ir.Block, esc bool, syncDepth int)
	walk = func(b *ir.Block, esc bool, syncDepth int) {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Access:
				i, ok := idx[x.Sym]
				if !ok {
					continue
				}
				e := &out[i]
				switch {
				case esc && x.Write:
					e.EscWrite = true
				case esc:
					e.EscRead = true
				case x.Write:
					e.DirectWrite = true
				default:
					e.DirectRead = true
				}
			case *ir.Begin:
				walk(x.Body, esc || syncDepth == 0, syncDepth)
			case *ir.SyncRegion:
				walk(x.Body, esc, syncDepth+1)
			case *ir.Region:
				walk(x.Body, esc, syncDepth)
			case *ir.Loop:
				walk(x.Body, esc, syncDepth)
			case *ir.If:
				walk(x.Then, esc, syncDepth)
				if x.Else != nil {
					walk(x.Else, esc, syncDepth)
				}
			}
		}
	}
	walk(prog.Root, false, 0)
	return out
}

func effectsEqual(a, b []ir.ParamEffects) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func blockHasBegin(b *ir.Block) bool {
	for _, in := range b.Instrs {
		switch x := in.(type) {
		case *ir.Begin:
			return true
		case *ir.SyncRegion:
			if blockHasBegin(x.Body) {
				return true
			}
		case *ir.Region:
			if blockHasBegin(x.Body) {
				return true
			}
		case *ir.Loop:
			if blockHasBegin(x.Body) {
				return true
			}
		case *ir.If:
			if blockHasBegin(x.Then) {
				return true
			}
			if x.Else != nil && blockHasBegin(x.Else) {
				return true
			}
		}
	}
	return false
}
