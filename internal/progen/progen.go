// Package progen generates random MiniChapel task programs for
// differential and property-based testing. Unlike internal/corpus (which
// emits calibrated idiom templates with ground-truth labels), progen
// explores program SHAPES: random nesting of begins, sync blocks,
// branches, sync-variable operations and accesses.
//
// Loops are excluded: the paper's analysis declares loops containing
// sync nodes or begins out of scope (§IV-A), and their subsumption is not
// a sound abstraction to test against.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options shape the generated programs.
type Options struct {
	// Budget is the statement budget (default 24).
	Budget int
	// MaxDepth bounds task/branch nesting (default 3).
	MaxDepth int
	// Atomics enables atomic-variable handshake statements.
	Atomics bool
}

// Generate returns one random program whose entry procedure is "fuzz".
func Generate(seed int64, opts Options) string {
	if opts.Budget <= 0 {
		opts.Budget = 24
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 3
	}
	g := &gen{r: rand.New(rand.NewSource(seed)), opts: opts, budget: opts.Budget}
	g.ln("proc fuzz() {")
	g.indent++
	g.ln("var v0: int = 1;")
	g.vars = append(g.vars, "v0")
	g.nVars = 1
	g.stmts(6+g.r.Intn(6), 0)
	g.indent--
	g.ln("}")
	return g.b.String()
}

// ModuleOptions shape generated multi-file modules.
type ModuleOptions struct {
	// Files is the number of source files (default 3).
	Files int
	// Procs is the number of procedures per file (default 2).
	Procs int
	// Atomics enables atomic-variable handshake statements.
	Atomics bool
}

// File is one generated source file of a module.
type File struct {
	Name string
	Src  string
}

// GenerateModule returns a linked multi-file program with cross-file
// calls. Procedures are emitted in a global order and only call earlier
// procedures, so the call graph is acyclic; the last procedure of the
// last file is the entry procedure "main". Non-entry procedures take a
// by-ref int formal, and many capture it in a begin — the escaping-task
// pattern whose effects must compose across file boundaries.
func GenerateModule(seed int64, opts ModuleOptions) []File {
	if opts.Files <= 0 {
		opts.Files = 3
	}
	if opts.Procs <= 0 {
		opts.Procs = 2
	}
	r := rand.New(rand.NewSource(seed))
	var earlier []string
	files := make([]File, opts.Files)
	for fi := range files {
		g := &gen{r: r, opts: Options{Budget: 12, MaxDepth: 2, Atomics: opts.Atomics}}
		for pi := 0; pi < opts.Procs; pi++ {
			if pi > 0 {
				g.ln("")
			}
			entry := fi == opts.Files-1 && pi == opts.Procs-1
			name := fmt.Sprintf("f%d_p%d", fi, pi)
			if entry {
				name = "main"
			}
			g.modProc(name, earlier, entry)
			earlier = append(earlier, name)
		}
		files[fi] = File{Name: fmt.Sprintf("m%d.chpl", fi), Src: g.b.String()}
	}
	return files
}

// modProc emits one module procedure. Calls to earlier procedures land
// in plain statement position, inside a sync block, or inside a begin —
// covering the summary-eligible cases and the ones that force the
// whole-root inliner fallback.
func (g *gen) modProc(name string, callees []string, entry bool) {
	g.vars, g.syncs, g.atoms = nil, nil, nil
	g.nVars, g.nSyncs, g.nAtoms = 0, 0, 0
	if entry {
		g.ln("proc %s() {", name)
	} else {
		g.ln("proc %s(ref v: int) {", name)
	}
	g.indent++
	if !entry {
		g.vars = append(g.vars, "v")
	}
	local := fmt.Sprintf("w%d", g.r.Intn(90))
	g.ln("var %s: int = %d;", local, g.r.Intn(50))
	g.vars = append(g.vars, local)
	g.nVars = len(g.vars)

	// Entry calls several earlier procedures; helpers call at most one.
	ncalls := 0
	if len(callees) > 0 {
		if entry {
			ncalls = 2 + g.r.Intn(2)
		} else {
			ncalls = g.r.Intn(2)
		}
	}
	for i := 0; i < ncalls; i++ {
		g.budget = 1 + g.r.Intn(3)
		g.stmts(g.budget, 0)
		callee := g.pick(callees)
		arg := g.pick(g.vars)
		switch g.r.Intn(5) {
		case 0:
			g.ln("sync {")
			g.nested(func() { g.ln("%s(%s);", callee, arg) })
			g.ln("}")
		case 1:
			g.ln("begin with (ref %s) {", arg)
			g.nested(func() { g.ln("%s(%s);", callee, arg) })
			g.ln("}")
		default:
			g.ln("%s(%s);", callee, arg)
		}
	}
	if !entry && g.r.Intn(2) == 0 {
		// Guarantee escaping-task coverage: the by-ref formal captured
		// in an unsynchronized begin escapes to every caller.
		g.ln("begin with (ref v) {")
		g.nested(func() { g.ln("v = v + %d;", 1+g.r.Intn(9)) })
		g.ln("}")
	}
	g.budget = 2 + g.r.Intn(4)
	g.stmts(g.budget, 0)
	g.indent--
	g.ln("}")
}

type gen struct {
	r      *rand.Rand
	opts   Options
	b      strings.Builder
	line   int
	indent int
	nVars  int
	nSyncs int
	nAtoms int
	budget int
	vars   []string
	syncs  []string
	atoms  []string
}

func (g *gen) ln(format string, args ...any) int {
	g.line++
	g.b.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
	return g.line
}

func (g *gen) pick(list []string) string { return list[g.r.Intn(len(list))] }

func (g *gen) stmts(n, depth int) {
	for i := 0; i < n && g.budget > 0; i++ {
		g.budget--
		g.stmt(depth)
	}
}

// nested runs body in a child scope, restoring the name lists after.
func (g *gen) nested(body func()) {
	savedV, savedS, savedA := len(g.vars), len(g.syncs), len(g.atoms)
	g.indent++
	body()
	g.indent--
	g.vars, g.syncs, g.atoms = g.vars[:savedV], g.syncs[:savedS], g.atoms[:savedA]
}

func (g *gen) stmt(depth int) {
	roll := g.r.Intn(100)
	switch {
	case roll < 15:
		name := fmt.Sprintf("v%d", g.nVars)
		g.nVars++
		g.ln("var %s: int = %d;", name, g.r.Intn(50))
		g.vars = append(g.vars, name)
	case roll < 30 && len(g.vars) > 0:
		g.ln("%s = %s + %d;", g.pick(g.vars), g.pick(g.vars), g.r.Intn(9))
	case roll < 38 && len(g.vars) > 0:
		g.ln("writeln(%s);", g.pick(g.vars))
	case roll < 46:
		name := fmt.Sprintf("s%d$", g.nSyncs)
		g.nSyncs++
		g.ln("var %s: sync bool;", name)
		g.syncs = append(g.syncs, name)
	case roll < 54 && len(g.syncs) > 0:
		g.ln("%s = true;", g.pick(g.syncs))
	case roll < 62 && len(g.syncs) > 0:
		g.ln("%s;", g.pick(g.syncs))
	case roll < 66 && g.opts.Atomics:
		name := fmt.Sprintf("a%d", g.nAtoms)
		g.nAtoms++
		g.ln("var %s: atomic int;", name)
		g.atoms = append(g.atoms, name)
	case roll < 70 && g.opts.Atomics && len(g.atoms) > 0:
		if g.r.Intn(2) == 0 {
			g.ln("%s.fetchAdd(1);", g.pick(g.atoms))
		} else {
			g.ln("%s.write(1);", g.pick(g.atoms))
		}
	case roll < 80 && depth < g.opts.MaxDepth && len(g.vars) > 0:
		v := g.pick(g.vars)
		intent := "ref"
		if g.r.Intn(4) == 0 {
			intent = "in"
		}
		g.ln("begin with (%s %s) {", intent, v)
		g.nested(func() { g.stmts(1+g.r.Intn(3), depth+1) })
		g.ln("}")
	case roll < 88 && depth < g.opts.MaxDepth:
		g.ln("sync {")
		g.nested(func() { g.stmts(1+g.r.Intn(2), depth+1) })
		g.ln("}")
	case roll < 96 && depth < g.opts.MaxDepth && len(g.vars) > 0:
		g.ln("if (%s > %d) {", g.pick(g.vars), g.r.Intn(40))
		g.nested(func() { g.stmts(1+g.r.Intn(2), depth+1) })
		if g.r.Intn(2) == 0 {
			g.ln("} else {")
			g.nested(func() { g.stmts(1+g.r.Intn(2), depth+1) })
		}
		g.ln("}")
	default:
		g.ln("writeln(%d);", g.r.Intn(100))
	}
}
