package ccfg

import (
	"strings"
	"testing"

	"uafcheck/internal/ir"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func build(t *testing.T, src string, opts BuildOptions) *Graph {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	prog := ir.Lower(info, mod.Procs[len(mod.Procs)-1], diags)
	return Build(prog, diags, opts)
}

func buildDefault(t *testing.T, src string) *Graph {
	return build(t, src, DefaultBuildOptions())
}

func taskByLabel(g *Graph, label string) *Task {
	for _, t := range g.Tasks {
		if t.Label == label {
			return t
		}
	}
	return nil
}

func TestSimpleTaskGraph(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    done$ = true;
	  }
	  done$;
	}`)
	if len(g.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(g.Tasks))
	}
	if g.SyncNodeCount() != 2 {
		t.Errorf("sync nodes = %d, want 2", g.SyncNodeCount())
	}
	if len(g.Accesses) != 1 {
		t.Fatalf("tracked accesses = %d, want 1", len(g.Accesses))
	}
	a := g.Accesses[0]
	if a.Sym.Name != "x" || !a.Write || a.Task.Label != "TASK A" {
		t.Errorf("access = %+v", a)
	}
	if len(g.SyncVars) != 1 || g.SyncVarIndex(g.SyncVars[0]) != 0 {
		t.Errorf("sync vars = %v", g.SyncVars)
	}
}

func TestLocalAccessesNotTracked(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  x = 5;        // parent-local: not an OV access
	  begin {
	    var y: int = 2;
	    y = 3;      // task-local: not an OV access
	    done$ = true;
	  }
	  done$;
	}`)
	if len(g.Accesses) != 0 {
		t.Errorf("tracked = %d, want 0: %v", len(g.Accesses), g.Accesses[0])
	}
}

// ---------------------------------------------------------------- rules

func TestPruneRuleA(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  begin with (in x) { writeln(x); }
	  begin { writeln(1); }
	}`)
	for _, label := range []string{"TASK A", "TASK B"} {
		task := taskByLabel(g, label)
		if task == nil || !task.Pruned || task.PruneBy != PruneA {
			t.Errorf("%s: pruned=%v rule=%v, want rule A", label, task.Pruned, task.PruneBy)
		}
	}
}

func TestPruneRuleB(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  sync {
	    begin with (ref x) { x = 2; }
	  }
	}`)
	task := taskByLabel(g, "TASK A")
	if !task.Pruned || task.PruneBy != PruneB {
		t.Errorf("sync-block task: pruned=%v rule=%v, want rule B", task.Pruned, task.PruneBy)
	}
	if len(g.Accesses) != 0 {
		t.Errorf("protected access still tracked")
	}
	if len(g.ProtectedAccesses) != 1 {
		t.Errorf("protected accesses = %d", len(g.ProtectedAccesses))
	}
}

func TestPruneRuleC(t *testing.T) {
	// The begin is nested one level deeper than the sync block's direct
	// body, so Rule B's "immediately encapsulated" does not apply, but
	// the variable's scope is still protected: Rule C.
	g := buildDefault(t, `config const c = true;
	proc f() {
	  var x: int = 1;
	  sync {
	    if (c) {
	      begin with (ref x) { x = 2; }
	    }
	  }
	}`)
	task := taskByLabel(g, "TASK A")
	if !task.Pruned || task.PruneBy != PruneC {
		t.Errorf("task: pruned=%v rule=%v, want rule C", task.Pruned, task.PruneBy)
	}
}

func TestPruneRuleD(t *testing.T) {
	// Outer task touches no outer variable itself; its nested task is
	// safe (rule A) — rule D prunes the parent.
	g := buildDefault(t, `proc f() {
	  begin {
	    var y: int = 1;
	    begin with (in y) { writeln(y); }
	  }
	}`)
	inner := taskByLabel(g, "TASK B")
	outer := taskByLabel(g, "TASK A")
	if !inner.Pruned || inner.PruneBy != PruneA {
		t.Errorf("inner: rule %v, want A", inner.PruneBy)
	}
	if !outer.Pruned || outer.PruneBy != PruneD {
		t.Errorf("outer: pruned=%v rule %v, want D", outer.Pruned, outer.PruneBy)
	}
}

func TestNoPruneWhenSyncVarShared(t *testing.T) {
	// The task has no OV accesses but writes a sync variable the parent
	// reads: pruning it would change the rest of the exploration.
	g := buildDefault(t, `proc f() {
	  var done$: sync bool;
	  begin {
	    done$ = true;
	  }
	  done$;
	}`)
	task := taskByLabel(g, "TASK A")
	if task.Pruned {
		t.Error("task with externally-consumed sync op must not be pruned")
	}
}

func TestNoPruneUnprotectedAccess(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) { writeln(x); }
	}`)
	task := taskByLabel(g, "TASK A")
	if task.Pruned {
		t.Error("task with unprotected OV access pruned")
	}
	if len(g.Accesses) != 1 {
		t.Errorf("tracked = %d", len(g.Accesses))
	}
}

func TestPruneDisabled(t *testing.T) {
	g := build(t, `proc f() {
	  var x: int = 1;
	  begin with (in x) { writeln(x); }
	}`, BuildOptions{Prune: false})
	task := taskByLabel(g, "TASK A")
	if task.Pruned {
		t.Error("pruning ran despite Prune=false")
	}
}

// ------------------------------------------------------------ frontiers

func TestParallelFrontierSingle(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    done$ = true;
	  }
	  done$;
	  writeln("after");
	}`)
	if len(g.Accesses) != 1 {
		t.Fatalf("tracked = %d", len(g.Accesses))
	}
	x := g.Accesses[0].Sym
	pf := g.PF[x]
	if len(pf) != 1 {
		t.Fatalf("PF(x) = %v, want 1 node", pf)
	}
	n := pf[0]
	if n.Task.Label != "root" || n.Sync == nil || n.Sync.Op != sym.OpReadFE {
		t.Errorf("PF node = %v", n)
	}
	if g.UnsyncedPath[x] {
		t.Error("unsynced path wrongly reported")
	}
	if vars := g.PFVarsOf(n); len(vars) != 1 || vars[0] != x {
		t.Errorf("PFVarsOf = %v", vars)
	}
}

func TestParallelFrontierPerBranchPath(t *testing.T) {
	// Two different last-sync-nodes depending on the branch: PF(x) must
	// contain both (paper: "there can be multiple PF nodes one for each
	// path").
	g := buildDefault(t, `config const c = true;
	proc f() {
	  var x: int = 1;
	  var a$: sync bool;
	  var b$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    a$ = true;
	    b$ = true;
	  }
	  if (c) {
	    a$;
	  } else {
	    b$;
	  }
	}`)
	x := g.Accesses[0].Sym
	pf := g.PF[x]
	if len(pf) != 2 {
		t.Fatalf("PF(x) = %d nodes, want 2 (one per branch path)", len(pf))
	}
	names := map[string]bool{}
	for _, n := range pf {
		names[n.Sync.Sym.Name] = true
	}
	if !names["a$"] || !names["b$"] {
		t.Errorf("PF sync vars = %v", names)
	}
}

func TestUnsyncedPathDetected(t *testing.T) {
	// The else path reaches the scope end without any sync node.
	g := buildDefault(t, `config const c = true;
	proc f() {
	  var x: int = 1;
	  var a$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    a$ = true;
	  }
	  if (c) {
	    a$;
	  }
	}`)
	x := g.Accesses[0].Sym
	if !g.UnsyncedPath[x] {
		t.Error("unsynced else-path not detected")
	}
	if len(g.PF[x]) != 1 {
		t.Errorf("PF = %v", g.PF[x])
	}
}

func TestNoSyncAtAllMeansNoFrontier(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) { writeln(x); }
	}`)
	x := g.Accesses[0].Sym
	if len(g.PF[x]) != 0 || !g.UnsyncedPath[x] {
		t.Errorf("PF=%v unsynced=%v", g.PF[x], g.UnsyncedPath[x])
	}
}

func TestFrontierInsideBeginOwnerTask(t *testing.T) {
	// Variable declared inside TASK A, accessed by nested TASK B: the
	// frontier lives in TASK A's strand.
	g := buildDefault(t, `proc f() {
	  var done$: sync bool;
	  begin {
	    var y: int = 1;
	    var inner$: sync bool;
	    begin with (ref y) {
	      writeln(y);
	      inner$ = true;
	    }
	    inner$;
	    done$ = true;
	  }
	  done$;
	}`)
	if len(g.Accesses) != 1 {
		t.Fatalf("tracked = %d", len(g.Accesses))
	}
	y := g.Accesses[0].Sym
	pf := g.PF[y]
	if len(pf) != 1 {
		t.Fatalf("PF(y) = %v", pf)
	}
	// The frontier is the LAST sync node in TASK A's strand before y's
	// scope end — the writeEF(done$), which follows the readFE(inner$)
	// (the paper's definition admits readFE/writeEF/readFF alike).
	if pf[0].Task.Label != "TASK A" || pf[0].Sync.Sym.Name != "done$" ||
		pf[0].Sync.Op != sym.OpWriteEF {
		t.Errorf("PF node = %v in %s", pf[0], pf[0].Task.Label)
	}
}

// ----------------------------------------------------------- protection

func TestSyncBlockProtectsTransitively(t *testing.T) {
	// The nested task's access is protected because the CHAIN's first
	// begin sits inside a sync block within x's scope — the fence waits
	// transitively.
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  sync {
	    begin {
	      begin with (ref x) { x = 2; }
	    }
	  }
	}`)
	if len(g.Accesses) != 0 {
		t.Errorf("transitive protection failed: %d tracked", len(g.Accesses))
	}
	if len(g.ProtectedAccesses) != 1 {
		t.Errorf("protected = %d", len(g.ProtectedAccesses))
	}
}

func TestSyncBlockDoesNotProtectInnerScope(t *testing.T) {
	// The variable is declared INSIDE the begin task; the outer sync
	// block does not order TASK A's exit against TASK B.
	g := buildDefault(t, `proc f() {
	  sync {
	    begin {
	      var y: int = 1;
	      begin with (ref y) { writeln(y); }
	    }
	  }
	}`)
	if len(g.Accesses) != 1 {
		t.Errorf("inner-scope access must stay tracked, got %d", len(g.Accesses))
	}
}

func TestSyncedRefParams(t *testing.T) {
	src := `proc f(ref x: int) {
	  begin { writeln(x); }
	}`
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	info := sym.Resolve(mod, diags)
	prog := ir.Lower(info, mod.Procs[0], diags)
	synced := map[*sym.Symbol]bool{}
	for _, p := range prog.RefParams {
		synced[p] = true
	}
	g := Build(prog, diags, BuildOptions{Prune: true, SyncedRefParams: synced})
	if len(g.Accesses) != 0 {
		t.Errorf("synced ref param still tracked")
	}
	if len(g.ProtectedAccesses) != 1 {
		t.Errorf("protected = %d", len(g.ProtectedAccesses))
	}
}

// ------------------------------------------------------------- structure

func TestBranchForkAndJoin(t *testing.T) {
	g := buildDefault(t, `config const c = true;
	proc f() {
	  var done$: sync bool;
	  begin { done$ = true; }
	  if (c) { writeln(1); } else { writeln(2); }
	  done$;
	}`)
	root := g.Root()
	forks := 0
	for _, n := range root.Nodes {
		if len(n.Succs) == 2 {
			forks++
		}
	}
	if forks != 1 {
		t.Errorf("fork nodes = %d, want 1", forks)
	}
	// All control edges stay within the strand.
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if s.Task != n.Task {
				t.Errorf("control edge crosses tasks: n%d -> n%d", n.ID, s.ID)
			}
		}
		for _, s := range n.Spawns {
			if s.Task == n.Task {
				t.Errorf("spawn edge within task: n%d -> n%d", n.ID, s.ID)
			}
		}
	}
}

func TestSyncNodeHasSingleOp(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var a$: sync bool;
	  var b$: sync bool;
	  begin { a$ = true; b$ = true; }
	  a$;
	  b$;
	}`)
	for _, n := range g.Nodes {
		if n.Sync != nil && len(n.Spawns) > 0 {
			t.Errorf("node n%d has both sync op and spawn", n.ID)
		}
	}
	if g.SyncNodeCount() != 4 {
		t.Errorf("sync nodes = %d, want 4", g.SyncNodeCount())
	}
}

func TestInitiallyFullSyncVar(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  var gate$: sync bool = true;
	  begin with (ref x) {
	    gate$;
	    x = 2;
	    gate$ = true;
	  }
	  gate$;
	}`)
	if len(g.SyncVars) != 1 {
		t.Fatalf("sync vars = %d", len(g.SyncVars))
	}
	if !g.InitiallyFull[g.SyncVars[0]] {
		t.Error("explicit initialization to full not recorded")
	}
}

func TestAccessDedupPerLine(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) {
	    x = x + x + x;
	  }
	}`)
	if len(g.Accesses) != 1 {
		t.Errorf("same-line accesses not deduped: %d", len(g.Accesses))
	}
	if !g.Accesses[0].Write {
		t.Error("write flag not upgraded")
	}
}

func TestStatsAndRender(t *testing.T) {
	g := buildDefault(t, `proc f() {
	  var x: int = 1;
	  var a: atomic int;
	  begin with (ref x) {
	    x = 2;
	    a.write(1);
	  }
	  a.waitFor(1);
	}`)
	st := g.Stats()
	if st.Tasks != 2 || st.AtomicOps != 2 || st.TrackedAccesses != 1 {
		t.Errorf("stats = %+v", st)
	}
	text := g.Text()
	if !strings.Contains(text, "atomic(a.write)") {
		t.Errorf("Text missing atomic op:\n%s", text)
	}
	dot := g.DOT()
	if !strings.Contains(dot, "style=dashed, label=\"begin\"") {
		t.Errorf("DOT missing task edge:\n%s", dot)
	}
}

func TestScopeEndForBlockLocal(t *testing.T) {
	// y's scope ends at the inner block's exit, before the proc end.
	g := buildDefault(t, `proc f() {
	  var done$: sync bool;
	  {
	    var y: int = 1;
	    begin with (ref y) {
	      writeln(y);
	      done$ = true;
	    }
	    done$;
	  }
	  writeln("after");
	}`)
	if len(g.Accesses) != 1 {
		t.Fatalf("tracked = %d", len(g.Accesses))
	}
	y := g.Accesses[0].Sym
	pf := g.PF[y]
	if len(pf) != 1 || pf[0].Sync.Sym.Name != "done$" {
		t.Errorf("PF(y) = %v; the block-local readFE should be the frontier", pf)
	}
	if g.UnsyncedPath[y] {
		t.Error("unsynced path wrongly reported for block-local scope")
	}
}
