// Package ccfg builds the Concurrent Control Flow Graph (paper §III-A).
//
// A CCFG node is a maximal straight-line region of one task strand,
// bounded by a concurrent-control-flow event: creation of a begin task, a
// blocking synchronization operation (readFE, readFF, writeEF), a branch,
// or the end of the strand. Each node records the outer-variable accesses
// that occur inside the region; a node carries at most one synchronization
// operation, which terminates it.
//
// Edges are either control edges (within a strand, including branch fork
// and join) or task edges (from the region that ends at a begin statement
// to the entry node of the new task's strand).
//
// The package also implements:
//
//   - per-variable scope-end tracking ("end of parent scope", the node the
//     paper draws as Node 10 in Figure 2);
//   - Parallel Frontier computation: PF(x) is the set of last sync nodes
//     before x's scope end on each control path of the owner strand;
//   - sync-block protection: an outer-variable access is marked safe when
//     the task chain's first begin is enclosed by a sync block contained
//     in the variable's scope (generalizes pruning rules B and C);
//   - task pruning by the paper's rules A-D.
package ccfg

import (
	"fmt"
	"sort"
	"strings"

	"uafcheck/internal/ir"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// Access is one tracked outer-variable access.
type Access struct {
	// ID is dense over the graph's tracked accesses (bitset index).
	ID    int
	Sym   *sym.Symbol
	Write bool
	Sp    source.Span
	// Line is the 1-based source line of the access.
	Line int
	Node *Node
	Task *Task
	// Protected marks accesses proven safe by sync-block enclosure or the
	// synced-scope list; they are excluded from PPS tracking.
	Protected bool
	// ProtectReason documents why a protected access is safe.
	ProtectReason string
}

// Label renders the access like the paper's subscripted OV entries; the
// paper writes x₄ for "the access of x in node 4", we write x@n4:L13
// (node and source line).
func (a *Access) Label() string {
	return fmt.Sprintf("%s@n%d:L%d", a.Sym.Name, a.Node.ID, a.Line)
}

// SyncEvent is the synchronization operation terminating a sync node.
// Under the atomics extension, atomic fills and waits are sync events
// too; Arg then carries the constant operand (waitFor threshold, added
// increment, written value) and Method the source-level method name.
type SyncEvent struct {
	Sym    *sym.Symbol
	Op     sym.SyncOpKind // OpReadFE/OpReadFF/OpWriteEF/OpAtomicWrite/OpAtomicWait
	Arg    int64
	HasArg bool
	Method string
	Sp     source.Span
}

// String renders e.g. "writeEF(doneA$)".
func (e *SyncEvent) String() string {
	return fmt.Sprintf("%s(%s)", e.Op, e.Sym.Name)
}

// AtomicEvent records an atomic operation inside a region. The static
// analysis does not model atomics (§IV-A); the record feeds diagnostics
// and the false-positive accounting of the evaluation.
type AtomicEvent struct {
	Sym *sym.Symbol
	Op  sym.SyncOpKind
	Sp  source.Span
}

// Node is one CCFG region.
type Node struct {
	ID   int
	Task *Task
	// Accesses are the tracked OV accesses inside the region, in order.
	Accesses []*Access
	// Sync is the blocking operation bounding the node, or nil.
	Sync *SyncEvent
	// Atomics are the atomic operations recorded inside the region.
	Atomics []AtomicEvent
	// Succs/Preds are control edges within the strand.
	Succs, Preds []*Node
	// Spawns are task edges to child-task entry nodes; spawning happens
	// at the end of the region (the begin statement bounded it).
	Spawns []*Node
}

// IsSync reports whether the node ends with a synchronization operation.
func (n *Node) IsSync() bool { return n.Sync != nil }

// String renders a compact node description for traces.
func (n *Node) String() string {
	var parts []string
	for _, a := range n.Accesses {
		parts = append(parts, a.Sym.Name)
	}
	s := fmt.Sprintf("n%d[%s]", n.ID, strings.Join(parts, ","))
	if n.Sync != nil {
		s += ":" + n.Sync.String()
	}
	return s
}

// PruneRule identifies which of the paper's rules pruned a task.
type PruneRule int

const (
	// PruneNone means the task was not pruned.
	PruneNone PruneRule = iota
	// PruneA is Rule A: no nested tasks, no outer-variable references.
	PruneA
	// PruneB is Rule B: immediately encapsulated by a sync statement and
	// all nested tasks safe.
	PruneB
	// PruneC is Rule C: the scopes of all accessed external variables are
	// protected by a sync block.
	PruneC
	// PruneD is Rule D: no own outer-variable references and all nested
	// tasks safe.
	PruneD
)

// String implements fmt.Stringer.
func (r PruneRule) String() string {
	switch r {
	case PruneNone:
		return "-"
	case PruneA:
		return "A"
	case PruneB:
		return "B"
	case PruneC:
		return "C"
	case PruneD:
		return "D"
	}
	return "?"
}

// Task is one strand: the root task or one begin task.
type Task struct {
	ID     int
	Label  string // "root", "TASK A", ...
	Parent *Task
	Entry  *Node
	Exit   *Node // last node of the strand
	Begin  *ir.Begin
	// SpawnSyncScopes are the sync-block scopes lexically enclosing the
	// begin statement within the parent task's code, innermost first.
	SpawnSyncScopes []*sym.Scope
	Children        []*Task
	Nodes           []*Node
	// Pruned marks tasks removed from exploration by rules A-D.
	Pruned  bool
	PruneBy PruneRule
	// immediateSync marks tasks whose begin statement sits directly in a
	// sync block body (Rule B).
	immediateSync bool
	// rawOVCount counts OV accesses in the task proper, including
	// protected ones (used by the pruning rules).
	rawOVCount int
	// syncVarsUsed is the set of sync variables operated in the task
	// proper (not descendants).
	syncVarsUsed map[*sym.Symbol]bool
}

// Graph is the CCFG of one root procedure.
type Graph struct {
	Prog  *ir.Program
	Tasks []*Task // Tasks[0] is the root strand
	Nodes []*Node
	// Accesses are the tracked (unprotected) OV accesses, dense by ID.
	Accesses []*Access
	// ProtectedAccesses were proven safe structurally.
	ProtectedAccesses []*Access
	// ScopeEnd maps each symbol with tracked accesses to the node in its
	// owner strand where the declaring scope exits.
	ScopeEnd map[*sym.Symbol]*Node
	// PF maps each such symbol to its Parallel Frontier node set.
	PF map[*sym.Symbol][]*Node
	// pfNodeVars is the reverse map: sync node -> variables it fronts.
	pfNodeVars map[*Node][]*sym.Symbol
	// UnsyncedPath marks variables with a control path through the owner
	// strand from declaration to scope end containing no sync node: the
	// owner may exit without any synchronization opportunity.
	UnsyncedPath map[*sym.Symbol]bool
	// SyncVars are the sync/single variables operated anywhere in the
	// graph, dense by index for the explorer's state table. Under the
	// plain atomics extension, full/empty-modelled atomics join this
	// table.
	SyncVars   []*sym.Symbol
	syncVarIdx map[*sym.Symbol]int
	// CounterVars are atomic variables modelled as saturating counters
	// by the counting refinement, dense by index for the explorer's
	// counter vector.
	CounterVars   []*sym.Symbol
	counterVarIdx map[*sym.Symbol]int
	// CounterInit holds the initial counter value per CounterVars index.
	CounterInit []uint8
	// Owner maps symbols to the task that owns their storage.
	Owner map[*sym.Symbol]*Task
	// InitiallyFull marks sync variables explicitly initialized to the
	// full state at their declaration.
	InitiallyFull map[*sym.Symbol]bool
}

// SyncVarIndex returns the dense index of a sync variable, or -1.
func (g *Graph) SyncVarIndex(s *sym.Symbol) int {
	if i, ok := g.syncVarIdx[s]; ok {
		return i
	}
	return -1
}

// CounterVarIndex returns the dense index of a counted atomic variable,
// or -1.
func (g *Graph) CounterVarIndex(s *sym.Symbol) int {
	if i, ok := g.counterVarIdx[s]; ok {
		return i
	}
	return -1
}

// PFVarsOf returns the variables for which node n is a Parallel Frontier.
func (g *Graph) PFVarsOf(n *Node) []*sym.Symbol { return g.pfNodeVars[n] }

// Root returns the root strand.
func (g *Graph) Root() *Task { return g.Tasks[0] }

// SyncNodeCount returns the number of sync-bounded nodes in unpruned
// tasks.
func (g *Graph) SyncNodeCount() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.IsSync() && !nd.Task.Pruned {
			n++
		}
	}
	return n
}

// Stats summarizes the graph for reports and benchmarks.
type Stats struct {
	Nodes             int
	Tasks             int
	PrunedTasks       int
	PrunedByRule      map[PruneRule]int
	TrackedAccesses   int
	ProtectedAccesses int
	SyncVars          int
	AtomicOps         int
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{
		Nodes:             len(g.Nodes),
		Tasks:             len(g.Tasks),
		TrackedAccesses:   len(g.Accesses),
		ProtectedAccesses: len(g.ProtectedAccesses),
		SyncVars:          len(g.SyncVars),
		PrunedByRule:      make(map[PruneRule]int),
	}
	for _, t := range g.Tasks {
		if t.Pruned {
			st.PrunedTasks++
			st.PrunedByRule[t.PruneBy]++
		}
	}
	for _, n := range g.Nodes {
		st.AtomicOps += len(n.Atomics)
	}
	return st
}

// sortedTaskNodeIDs is a debugging helper: node IDs of a task in order.
func sortedTaskNodeIDs(t *Task) []int {
	ids := make([]int, 0, len(t.Nodes))
	for _, n := range t.Nodes {
		ids = append(ids, n.ID)
	}
	sort.Ints(ids)
	return ids
}
