package ccfg

import (
	"context"

	"uafcheck/internal/ast"
	"uafcheck/internal/ir"
	"uafcheck/internal/obs"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// BuildOptions configure graph construction.
type BuildOptions struct {
	// Prune applies the paper's rules A-D after construction. The
	// ablation benchmarks disable it.
	Prune bool
	// SyncedRefParams marks by-ref formals of the root procedure whose
	// call sites are all enclosed in sync blocks (synced-scope list,
	// §III-A): accesses to them are structurally safe.
	SyncedRefParams map[*sym.Symbol]bool
	// ModelAtomics enables the paper's §IV-A/§VII extension: atomic
	// writes become non-blocking fill events (empty→full) and waitFor
	// becomes a SINGLE-READ-like wait-until-full event. Plain reads stay
	// unmodelled. Off by default, matching the paper's implementation.
	ModelAtomics bool
	// CountAtomics (implies ModelAtomics) refines the extension: atomic
	// variables used only monotonically (write/add/fetchAdd with constant
	// non-negative operands, waitFor with a constant threshold) are
	// modelled as saturating counters, so counting protocols like
	// "waitFor(n) after n fetchAdds" verify. Other atomics fall back to
	// the full/empty model.
	CountAtomics bool
	// Obs receives construction/prune spans and graph counters; nil
	// disables telemetry at zero cost.
	Obs *obs.Recorder
	// Ctx carries the analysis deadline. Construction itself is linear
	// and fast; the only elective work is pruning, which is skipped when
	// the context has already fired (sound: pruning only removes tasks
	// proven irrelevant, so skipping it over-approximates).
	Ctx context.Context
}

// DefaultBuildOptions enables pruning.
func DefaultBuildOptions() BuildOptions { return BuildOptions{Prune: true} }

// Build constructs the CCFG for a lowered program.
func Build(prog *ir.Program, diags *source.Diagnostics, opts BuildOptions) *Graph {
	ctx, endBuild := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseCCFG)
	opts.Ctx = ctx
	defer endBuild()
	if opts.CountAtomics {
		opts.ModelAtomics = true
	}
	g := &Graph{
		Prog:          prog,
		ScopeEnd:      make(map[*sym.Symbol]*Node),
		PF:            make(map[*sym.Symbol][]*Node),
		pfNodeVars:    make(map[*Node][]*sym.Symbol),
		UnsyncedPath:  make(map[*sym.Symbol]bool),
		syncVarIdx:    make(map[*sym.Symbol]int),
		counterVarIdx: make(map[*sym.Symbol]int),
		Owner:         make(map[*sym.Symbol]*Task),
		InitiallyFull: make(map[*sym.Symbol]bool),
	}
	b := &builder{g: g, diags: diags, opts: opts, declNode: make(map[*sym.Symbol]*Node)}
	if opts.CountAtomics {
		b.countable = classifyCountable(prog.Root)
	}
	root := b.newTask(nil, "root", nil)
	b.task = root
	b.cur = b.newNode()
	root.Entry = b.cur
	b.walkBlock(prog.Root, false)
	root.Exit = b.cur

	if opts.Prune && (opts.Ctx == nil || opts.Ctx.Err() == nil) {
		_, endPrune := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhasePrune)
		prune(g)
		endPrune()
	}
	collectTracked(g)
	computeFrontiers(g, b.declNode)
	recordGraphStats(opts.Obs, g)
	return g
}

// recordGraphStats flushes the built graph's summary counters.
func recordGraphStats(r *obs.Recorder, g *Graph) {
	if r == nil {
		return
	}
	st := g.Stats()
	r.Add(obs.CtrCCFGNodes, int64(st.Nodes))
	r.Add(obs.CtrCCFGTasks, int64(st.Tasks))
	r.Add(obs.CtrCCFGSyncVars, int64(st.SyncVars))
	r.Add(obs.CtrCCFGAtomicOps, int64(st.AtomicOps))
	r.Add(obs.CtrTrackedAccesses, int64(st.TrackedAccesses))
	r.Add(obs.CtrProtectedAccesses, int64(st.ProtectedAccesses))
	r.Add(obs.CtrPrunedTasks, int64(st.PrunedTasks))
	r.Add(obs.CtrPruneRuleA, int64(st.PrunedByRule[PruneA]))
	r.Add(obs.CtrPruneRuleB, int64(st.PrunedByRule[PruneB]))
	r.Add(obs.CtrPruneRuleC, int64(st.PrunedByRule[PruneC]))
	r.Add(obs.CtrPruneRuleD, int64(st.PrunedByRule[PruneD]))
}

type builder struct {
	g     *Graph
	diags *source.Diagnostics
	opts  BuildOptions

	task       *Task
	cur        *Node
	syncScopes []*sym.Scope
	declNode   map[*sym.Symbol]*Node
	// pending holds every tracked access in construction order; dense IDs
	// are assigned after pruning.
	pending []*Access
	// countable marks atomic variables eligible for the counting model.
	countable map[*sym.Symbol]bool
}

// classifyCountable scans the IR for atomic variables whose operations
// are exclusively monotonic with constant operands: write(c)/add(c)/
// fetchAdd(c) with c >= 0, waitFor(c), and plain reads. Only those can be
// modelled as saturating counters; everything else (sub, compareExchange,
// non-constant operands) falls back to the full/empty abstraction.
func classifyCountable(root *ir.Block) map[*sym.Symbol]bool {
	out := make(map[*sym.Symbol]bool)
	var walk func(b *ir.Block)
	mark := func(a *ir.AtomicOp) {
		ok, seen := out[a.Sym]
		if seen && !ok {
			return
		}
		good := false
		switch a.Method {
		case "write", "add", "fetchAdd":
			good = a.HasArg && a.Arg >= 0
		case "waitFor":
			good = a.HasArg && a.Arg >= 0
		case "read", "":
			good = a.Op == sym.OpAtomicRead
		}
		out[a.Sym] = good && (!seen || ok)
	}
	walk = func(b *ir.Block) {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.AtomicOp:
				mark(x)
			case *ir.Begin:
				walk(x.Body)
			case *ir.SyncRegion:
				walk(x.Body)
			case *ir.Region:
				walk(x.Body)
			case *ir.If:
				walk(x.Then)
				if x.Else != nil {
					walk(x.Else)
				}
			case *ir.Loop:
				walk(x.Body)
			}
		}
	}
	walk(root)
	return out
}

func (b *builder) file() *source.File { return b.g.Prog.Info.Module.File }

func (b *builder) newTask(parent *Task, label string, begin *ir.Begin) *Task {
	t := &Task{
		ID:              len(b.g.Tasks),
		Label:           label,
		Parent:          parent,
		Begin:           begin,
		syncVarsUsed:    make(map[*sym.Symbol]bool),
		SpawnSyncScopes: append([]*sym.Scope(nil), b.syncScopes...),
	}
	b.g.Tasks = append(b.g.Tasks, t)
	if parent != nil {
		parent.Children = append(parent.Children, t)
	}
	return t
}

func (b *builder) newNode() *Node {
	n := &Node{ID: len(b.g.Nodes), Task: b.task}
	b.g.Nodes = append(b.g.Nodes, n)
	b.task.Nodes = append(b.task.Nodes, n)
	return n
}

// closeToNew ends the current region and opens its control successor.
func (b *builder) closeToNew() {
	next := b.newNode()
	link(b.cur, next)
	b.cur = next
}

func link(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// walkBlock lowers one IR block into the graph. directSync is true when
// the block is the immediate body of a sync region (for Rule B labeling).
func (b *builder) walkBlock(blk *ir.Block, directSync bool) {
	var declared []*sym.Symbol
	for _, in := range blk.Instrs {
		switch x := in.(type) {
		case *ir.Decl:
			b.g.Owner[x.Sym] = b.task
			b.declNode[x.Sym] = b.cur
			declared = append(declared, x.Sym)
			if x.Sym.IsSyncVar() || (b.opts.ModelAtomics && x.Sym.IsAtomic()) {
				if vd, ok := x.Sym.Decl.(*ast.VarDecl); ok && vd.Init != nil {
					// Explicit initialization puts the variable in the
					// full state (paper §II).
					b.g.InitiallyFull[x.Sym] = true
				}
			}
		case *ir.Access:
			b.access(x)
		case *ir.SyncOp:
			b.syncOp(x)
		case *ir.AtomicOp:
			if b.opts.ModelAtomics &&
				(x.Op == sym.OpAtomicWrite || x.Op == sym.OpAtomicWait) {
				// Extension: the write is a fill event, waitFor a
				// wait-until-full event — both participate in the PPS
				// exploration like sync-variable operations. Counting
				// refinement: monotonic variables get a counter slot.
				b.atomicEvent(x)
				break
			}
			b.cur.Atomics = append(b.cur.Atomics,
				AtomicEvent{Sym: x.Sym, Op: x.Op, Sp: x.Sp})
		case *ir.Begin:
			b.begin(x, directSync)
		case *ir.SyncRegion:
			b.syncScopes = append(b.syncScopes, x.Body.Scope)
			b.walkBlock(x.Body, true)
			b.syncScopes = b.syncScopes[:len(b.syncScopes)-1]
		case *ir.If:
			b.branch(x)
		case *ir.Region:
			b.walkBlock(x.Body, false)
		case *ir.Loop:
			// Loops collapse into the current region (§IV-A): the body
			// contains no concurrency events after lowering, so walking
			// it inline records its accesses (and any branch structure)
			// as a single-iteration approximation.
			b.walkBlock(x.Body, false)
		case *ir.Call, *ir.Return:
			// Opaque for the partial inter-procedural analysis.
		}
	}
	// The block's scope exits here: record the scope-end node of every
	// variable declared directly in it ("end of parent scope").
	for _, s := range declared {
		b.g.ScopeEnd[s] = b.cur
	}
}

func (b *builder) access(x *ir.Access) {
	owner := b.g.Owner[x.Sym]
	if owner == nil {
		// Defensive: symbols without a Decl (should not happen) are
		// treated as owned by the root strand.
		owner = b.g.Tasks[0]
		b.g.Owner[x.Sym] = owner
	}
	if owner == b.task {
		// Local access: not an outer-variable access, never tracked.
		return
	}
	// Duplicate suppression (§III-B: "the variable access is searched ...
	// to avoid duplicate additions"): one site per (variable, line) within
	// a region; a later write upgrades an earlier read.
	line := b.file().Line(x.Sp.Start)
	for _, prev := range b.cur.Accesses {
		if prev.Sym == x.Sym && b.file().Line(prev.Sp.Start) == line {
			if x.Write {
				prev.Write = true
			}
			return
		}
	}
	a := &Access{Sym: x.Sym, Write: x.Write, Sp: x.Sp, Line: line, Node: b.cur, Task: b.task}
	b.task.rawOVCount++
	if reason, ok := b.protection(x.Sym, owner); ok {
		a.Protected = true
		a.ProtectReason = reason
		b.g.ProtectedAccesses = append(b.g.ProtectedAccesses, a)
		return
	}
	b.cur.Accesses = append(b.cur.Accesses, a)
	b.pending = append(b.pending, a)
}

// protection decides whether an OV access in the current task to a
// variable owned by owner is structurally safe.
func (b *builder) protection(s *sym.Symbol, owner *Task) (string, bool) {
	if b.opts.SyncedRefParams[s] {
		return "all call sites of the root procedure are enclosed in sync blocks", true
	}
	// Find the first begin on the chain from the owner task down to the
	// current task: the begin executed by the owner's own code. If that
	// begin is inside a sync block contained in the variable's scope, the
	// sync fence waits (transitively) for the whole task chain before the
	// scope can exit (generalizes rules B/C).
	t := b.task
	for t != nil && t.Parent != owner {
		t = t.Parent
	}
	if t == nil {
		return "", false
	}
	for _, ss := range t.SpawnSyncScopes {
		if scopeWithin(ss, s.Scope) {
			return "enclosing sync block protects the variable's scope", true
		}
	}
	return "", false
}

// scopeWithin reports whether inner is the same as or lexically nested
// inside outer.
func scopeWithin(inner, outer *sym.Scope) bool {
	for s := inner; s != nil; s = s.Parent {
		if s == outer {
			return true
		}
	}
	return false
}

func (b *builder) syncOp(x *ir.SyncOp) {
	if _, ok := b.g.syncVarIdx[x.Sym]; !ok {
		b.g.syncVarIdx[x.Sym] = len(b.g.SyncVars)
		b.g.SyncVars = append(b.g.SyncVars, x.Sym)
	}
	b.task.syncVarsUsed[x.Sym] = true
	b.cur.Sync = &SyncEvent{Sym: x.Sym, Op: x.Op, Sp: x.Sp}
	b.closeToNew()
}

// atomicEvent ends the current region with an atomic fill/wait event.
func (b *builder) atomicEvent(x *ir.AtomicOp) {
	if b.countable[x.Sym] {
		if _, ok := b.g.counterVarIdx[x.Sym]; !ok {
			b.g.counterVarIdx[x.Sym] = len(b.g.CounterVars)
			b.g.CounterVars = append(b.g.CounterVars, x.Sym)
			init := uint8(0)
			if vd, ok := x.Sym.Decl.(*ast.VarDecl); ok && vd.Init != nil {
				if lit, ok := vd.Init.(*ast.IntLit); ok && lit.Value >= 0 {
					init = saturate(lit.Value)
				}
			}
			b.g.CounterInit = append(b.g.CounterInit, init)
		}
	} else {
		if _, ok := b.g.syncVarIdx[x.Sym]; !ok {
			b.g.syncVarIdx[x.Sym] = len(b.g.SyncVars)
			b.g.SyncVars = append(b.g.SyncVars, x.Sym)
		}
	}
	b.task.syncVarsUsed[x.Sym] = true
	b.cur.Sync = &SyncEvent{Sym: x.Sym, Op: x.Op, Arg: x.Arg, HasArg: x.HasArg,
		Method: x.Method, Sp: x.Sp}
	b.closeToNew()
}

// saturate clamps a non-negative constant into the counter's byte range.
func saturate(v int64) uint8 {
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func (b *builder) begin(x *ir.Begin, directSync bool) {
	child := b.newTask(b.task, x.Label, x)
	child.immediateSync = directSync

	// The begin statement bounds the current region; the spawn edge
	// leaves from its end.
	spawnFrom := b.cur

	// Build the child strand.
	savedTask, savedCur, savedScopes := b.task, b.cur, b.syncScopes
	b.task = child
	b.syncScopes = nil
	b.cur = b.newNode()
	child.Entry = b.cur
	spawnFrom.Spawns = append(spawnFrom.Spawns, child.Entry)
	b.walkBlock(x.Body, false)
	child.Exit = b.cur
	b.task, b.cur, b.syncScopes = savedTask, savedCur, savedScopes

	// Continue the parent strand in a fresh region.
	b.closeToNew()
}

func (b *builder) branch(x *ir.If) {
	branchNode := b.cur
	join := b.newNode()

	thenEntry := b.newNode()
	link(branchNode, thenEntry)
	b.cur = thenEntry
	b.walkBlock(x.Then, false)
	link(b.cur, join)

	if x.Else != nil {
		elseEntry := b.newNode()
		link(branchNode, elseEntry)
		b.cur = elseEntry
		b.walkBlock(x.Else, false)
		link(b.cur, join)
	} else {
		// The else path is an empty skip.
		link(branchNode, join)
	}
	b.cur = join
}

// ---------------------------------------------------------------- prune

// prune applies the paper's rules A-D: a task is removed when it has no
// tracked outer-variable accesses in its subtree and its subtree's sync
// operations touch no sync variable that is also operated outside the
// subtree ("synchronization events which will affect the relative
// execution of rest of the tasks", §III-A).
func prune(g *Graph) {
	// Total operation presence per sync variable per task.
	type agg struct {
		tracked  int
		syncVars map[*sym.Symbol]bool
	}
	aggs := make([]agg, len(g.Tasks))
	// Post-order accumulation: Tasks are created parent-first, so a
	// reverse sweep sees children before parents.
	for i := len(g.Tasks) - 1; i >= 0; i-- {
		t := g.Tasks[i]
		a := agg{syncVars: make(map[*sym.Symbol]bool)}
		for _, n := range t.Nodes {
			a.tracked += len(n.Accesses)
		}
		for v := range t.syncVarsUsed {
			a.syncVars[v] = true
		}
		for _, c := range t.Children {
			ca := aggs[c.ID]
			a.tracked += ca.tracked
			for v := range ca.syncVars {
				a.syncVars[v] = true
			}
		}
		aggs[t.ID] = a
	}
	// Per-variable global usage: how many tasks use it.
	globalUse := make(map[*sym.Symbol]int)
	for _, t := range g.Tasks {
		for v := range t.syncVarsUsed {
			globalUse[v]++
		}
	}
	usedOutside := func(t *Task) bool {
		// A sync variable of t's subtree is used outside iff some task
		// not in the subtree uses it. Count subtree users and compare.
		sub := make(map[*sym.Symbol]int)
		var walk func(*Task)
		walk = func(u *Task) {
			for v := range u.syncVarsUsed {
				sub[v]++
			}
			for _, c := range u.Children {
				walk(c)
			}
		}
		walk(t)
		for v, n := range sub {
			if globalUse[v] > n {
				return true
			}
		}
		return false
	}
	var markPruned func(t *Task)
	markPruned = func(t *Task) {
		t.Pruned = true
		for _, c := range t.Children {
			if !c.Pruned {
				c.Pruned = true
				c.PruneBy = t.PruneBy
			}
			markPruned(c)
		}
	}
	// The prunability decision is SUBTREE-level: a task tree can be
	// removed as a unit when it contains no tracked accesses and its
	// sync operations pair only within the subtree (an internal
	// handshake under a sync-block fence is the typical case, Rule B/C).
	// Children-first order lets leaf prunes (Rule A) label precisely,
	// while a parent prune covers children whose own subtrees leak sync
	// variables INTO the parent's.
	for i := len(g.Tasks) - 1; i >= 1; i-- {
		t := g.Tasks[i]
		if t.Pruned {
			continue
		}
		if aggs[t.ID].tracked > 0 || usedOutside(t) {
			continue
		}
		switch {
		case t.rawOVCount == 0 && len(t.Children) == 0:
			t.PruneBy = PruneA
		case t.immediateSync:
			t.PruneBy = PruneB
		case t.rawOVCount > 0:
			// All raw OV accesses were structurally protected.
			t.PruneBy = PruneC
		default:
			t.PruneBy = PruneD
		}
		markPruned(t)
	}
}

// collectTracked assigns dense IDs to accesses in unpruned tasks.
func collectTracked(g *Graph) {
	for _, n := range g.Nodes {
		if n.Task.Pruned {
			continue
		}
		for _, a := range n.Accesses {
			a.ID = len(g.Accesses)
			g.Accesses = append(g.Accesses, a)
		}
	}
}

// computeFrontiers derives PF(x) for every variable with tracked accesses
// by walking control-flow predecessors backwards from the scope-end node
// within the owner strand (paper §III-B).
func computeFrontiers(g *Graph, declNode map[*sym.Symbol]*Node) {
	seen := make(map[*sym.Symbol]bool)
	for _, a := range g.Accesses {
		s := a.Sym
		if seen[s] {
			continue
		}
		seen[s] = true
		end := g.ScopeEnd[s]
		decl := declNode[s]
		if end == nil || decl == nil {
			g.UnsyncedPath[s] = true
			continue
		}
		if end == decl {
			// Declaration and scope end share a region: no sync node can
			// separate them.
			g.UnsyncedPath[s] = true
			continue
		}
		var pf []*Node
		visited := make(map[*Node]bool)
		stack := append([]*Node(nil), end.Preds...)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[p] {
				continue
			}
			visited[p] = true
			if p.IsSync() {
				pf = append(pf, p)
				continue
			}
			if p == decl || len(p.Preds) == 0 {
				// A control path from the declaration to the scope end
				// with no intervening sync node: the owner can exit the
				// scope without any synchronization opportunity.
				g.UnsyncedPath[s] = true
				continue
			}
			stack = append(stack, p.Preds...)
		}
		g.PF[s] = pf
		for _, n := range pf {
			g.pfNodeVars[n] = append(g.pfNodeVars[n], s)
		}
	}
}
