package ccfg

import (
	"fmt"
	"sort"
	"strings"
)

// Text renders the graph as an indented textual listing, one line per
// node, grouped by task — the form used to regenerate the paper's
// Figure 2 and Figure 7 CCFG drawings.
func (g *Graph) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CCFG for proc %s\n", g.Prog.Proc.Name.Name)
	for _, t := range g.Tasks {
		status := ""
		if t.Pruned {
			status = fmt.Sprintf("  [pruned: rule %s]", t.PruneBy)
		}
		fmt.Fprintf(&b, "task %d (%s)%s\n", t.ID, t.Label, status)
		for _, n := range t.Nodes {
			var tags []string
			for _, a := range n.Accesses {
				rw := "R"
				if a.Write {
					rw = "W"
				}
				tags = append(tags, fmt.Sprintf("OV(%s,%s)", a.Sym.Name, rw))
			}
			for _, at := range n.Atomics {
				tags = append(tags, fmt.Sprintf("atomic(%s.%s)", at.Sym.Name, at.Op))
			}
			if n.Sync != nil {
				tags = append(tags, n.Sync.String())
			}
			if vars := g.PFVarsOf(n); len(vars) > 0 {
				var names []string
				for _, v := range vars {
					names = append(names, v.Name)
				}
				sort.Strings(names)
				tags = append(tags, "PF{"+strings.Join(names, ",")+"}")
			}
			var edges []string
			for _, s := range n.Succs {
				edges = append(edges, fmt.Sprintf("->n%d", s.ID))
			}
			for _, s := range n.Spawns {
				edges = append(edges, fmt.Sprintf("=>n%d", s.ID))
			}
			fmt.Fprintf(&b, "  n%-3d %-40s %s\n", n.ID, strings.Join(tags, " "), strings.Join(edges, " "))
		}
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax. Control edges are solid,
// task (begin) edges dashed; sync nodes are doubly circled and parallel
// frontier nodes are shaded, mirroring the paper's Figure 2 legend.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph ccfg {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	for _, t := range g.Tasks {
		fmt.Fprintf(&b, "  subgraph cluster_task%d {\n    label=%q;\n", t.ID, t.Label)
		if t.Pruned {
			fmt.Fprintf(&b, "    style=dashed; color=gray;\n")
		}
		for _, n := range t.Nodes {
			var lines []string
			lines = append(lines, fmt.Sprintf("n%d", n.ID))
			var ovs []string
			for _, a := range n.Accesses {
				ovs = append(ovs, a.Sym.Name)
			}
			if len(ovs) > 0 {
				lines = append(lines, "OV={"+strings.Join(ovs, ",")+"}")
			}
			if n.Sync != nil {
				lines = append(lines, n.Sync.String())
			}
			shape := "ellipse"
			style := ""
			if n.IsSync() {
				shape = "doublecircle"
			}
			if vars := g.PFVarsOf(n); len(vars) > 0 {
				var names []string
				for _, v := range vars {
					names = append(names, v.Name)
				}
				lines = append(lines, "PF{"+strings.Join(names, ",")+"}")
				style = ", style=filled, fillcolor=lightgray"
			}
			fmt.Fprintf(&b, "    n%d [label=\"%s\", shape=%s%s];\n",
				n.ID, strings.Join(lines, "\\n"), shape, style)
		}
		b.WriteString("  }\n")
	}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, s.ID)
		}
		for _, s := range n.Spawns {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, label=\"begin\"];\n", n.ID, s.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
