package lexer

import (
	"testing"
	"testing/quick"

	"uafcheck/internal/source"
	"uafcheck/internal/token"
)

func lex(t *testing.T, src string) ([]token.Token, *source.Diagnostics) {
	t.Helper()
	diags := &source.Diagnostics{}
	toks := Tokenize(source.NewFile("t.chpl", src), diags)
	return toks, diags
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	toks, diags := lex(t, src)
	if diags.HasErrors() {
		t.Fatalf("lex(%q) errors:\n%s", src, diags)
	}
	want = append(want, token.EOF)
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("lex(%q) = %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("lex(%q)[%d] = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestBasicTokens(t *testing.T) {
	expectKinds(t, "var x: int = 10;",
		token.KwVar, token.Ident, token.Colon, token.KwInt,
		token.Assign, token.IntLit, token.Semicolon)
	expectKinds(t, "begin with (ref x) { }",
		token.KwBegin, token.KwWith, token.LParen, token.KwRef,
		token.Ident, token.RParen, token.LBrace, token.RBrace)
	expectKinds(t, "a + b * c - d / e % f",
		token.Ident, token.Plus, token.Ident, token.Star, token.Ident,
		token.Minus, token.Ident, token.Slash, token.Ident, token.Percent, token.Ident)
}

func TestSyncVarDollarSuffix(t *testing.T) {
	toks, diags := lex(t, "doneA$ = true;")
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	if toks[0].Kind != token.Ident || toks[0].Lit != "doneA$" {
		t.Fatalf("sync-var name lexed as %v", toks[0])
	}
	if toks[1].Kind != token.Assign {
		t.Fatalf("after $ expected =, got %v", toks[1])
	}
}

func TestTwoCharOperators(t *testing.T) {
	expectKinds(t, "x += 1; y -= 2; z *= 3;",
		token.Ident, token.PlusEq, token.IntLit, token.Semicolon,
		token.Ident, token.MinusEq, token.IntLit, token.Semicolon,
		token.Ident, token.TimesEq, token.IntLit, token.Semicolon)
	expectKinds(t, "a == b != c <= d >= e && f || g",
		token.Ident, token.Eq, token.Ident, token.NotEq, token.Ident,
		token.LtEq, token.Ident, token.GtEq, token.Ident,
		token.AndAnd, token.Ident, token.OrOr, token.Ident)
	expectKinds(t, "x++; x--;",
		token.Ident, token.PlusPlus, token.Semicolon,
		token.Ident, token.MinusMinus, token.Semicolon)
}

func TestRangeVsDots(t *testing.T) {
	expectKinds(t, "1..10", token.IntLit, token.DotDot, token.IntLit)
	expectKinds(t, "for i in 1..n { }",
		token.KwFor, token.Ident, token.KwIn, token.IntLit,
		token.DotDot, token.Ident, token.LBrace, token.RBrace)
	expectKinds(t, "f.read()", token.Ident, token.Dot, token.Ident,
		token.LParen, token.RParen)
}

func TestComments(t *testing.T) {
	expectKinds(t, "x // trailing comment\n y",
		token.Ident, token.Ident)
	expectKinds(t, "a /* block */ b", token.Ident, token.Ident)
	expectKinds(t, "a /* nested /* deeper */ still */ b", token.Ident, token.Ident)
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, diags := lex(t, "a /* never closed")
	if !diags.HasErrors() {
		t.Error("unterminated block comment not reported")
	}
}

func TestStrings(t *testing.T) {
	toks, diags := lex(t, `writeln("hello world", "a\"b");`)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	if toks[2].Kind != token.StringLit || toks[2].Lit != `"hello world"` {
		t.Fatalf("string lexed as %v", toks[2])
	}
	if toks[4].Kind != token.StringLit {
		t.Fatalf("escaped string lexed as %v", toks[4])
	}
}

func TestUnterminatedString(t *testing.T) {
	_, diags := lex(t, `"open`)
	if !diags.HasErrors() {
		t.Error("unterminated string not reported")
	}
	_, diags = lex(t, "\"across\nlines\"")
	if !diags.HasErrors() {
		t.Error("newline in string not reported")
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, diags := lex(t, "a # b")
	if !diags.HasErrors() {
		t.Error("illegal character not reported")
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == token.Illegal {
			found = true
		}
	}
	if !found {
		t.Error("no Illegal token produced")
	}
}

func TestFloatLiteralRejected(t *testing.T) {
	_, diags := lex(t, "var x = 1.5;")
	if !diags.HasErrors() {
		t.Error("float literal should be rejected in MiniChapel")
	}
}

func TestSpansCoverSource(t *testing.T) {
	src := "var abc = 42;"
	toks, _ := lex(t, src)
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			continue
		}
		if tk.Span.Start < 0 || tk.Span.End > len(src) || tk.Span.Start >= tk.Span.End {
			t.Errorf("token %v has bad span %+v", tk, tk.Span)
		}
		if tk.Lit != "" && src[tk.Span.Start:tk.Span.End] != tk.Lit {
			t.Errorf("token %v span text %q != lit %q", tk,
				src[tk.Span.Start:tk.Span.End], tk.Lit)
		}
	}
}

// Property: the lexer terminates on arbitrary byte soup, always ends with
// EOF, and token spans are monotonically non-decreasing.
func TestLexerTotalProperty(t *testing.T) {
	check := func(data []byte) bool {
		diags := &source.Diagnostics{}
		toks := Tokenize(source.NewFile("fuzz", string(data)), diags)
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			return false
		}
		prev := 0
		for _, tk := range toks {
			if tk.Span.Start < prev {
				return false
			}
			prev = tk.Span.Start
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: lexing is insensitive to the amount of interleaved
// whitespace between tokens.
func TestWhitespaceInsensitive(t *testing.T) {
	a, _ := lex(t, "proc f(){var x:int=1;writeln(x);}")
	b, _ := lex(t, "proc  f ( ) {\n\tvar x : int = 1 ;\n\twriteln ( x ) ;\n}")
	ka, kb := kinds(a), kinds(b)
	if len(ka) != len(kb) {
		t.Fatalf("token counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("kind %d differs: %v vs %v", i, ka[i], kb[i])
		}
	}
}
