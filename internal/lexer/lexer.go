// Package lexer tokenizes MiniChapel source. It follows Chapel's lexical
// conventions for the subset the analysis needs, most importantly the `$`
// suffix on synchronization-variable names (doneA$), which is part of the
// identifier per the paper's naming convention (§II).
package lexer

import (
	"uafcheck/internal/source"
	"uafcheck/internal/token"
)

// Lexer scans one file into tokens.
type Lexer struct {
	file  *source.File
	src   string
	pos   int
	diags *source.Diagnostics
}

// New returns a Lexer over file, reporting problems into diags.
func New(file *source.File, diags *source.Diagnostics) *Lexer {
	return &Lexer{file: file, src: file.Content, diags: diags}
}

// Tokenize scans the whole file, dropping comments, and returns the token
// stream terminated by an EOF token.
func Tokenize(file *source.File, diags *source.Diagnostics) []token.Token {
	lx := New(file, diags)
	var toks []token.Token
	for {
		t := lx.Next()
		if t.Kind == token.Comment {
			continue
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (lx *Lexer) errorf(start, end int, format string, args ...any) {
	lx.diags.Addf(lx.file, source.Span{Start: source.Pos(start), End: source.Pos(end)},
		source.Error, format, args...)
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func (lx *Lexer) peek() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		switch lx.src[lx.pos] {
		case ' ', '\t', '\r', '\n':
			lx.pos++
		default:
			return
		}
	}
}

// Next returns the next token, including Comment tokens.
func (lx *Lexer) Next() token.Token {
	lx.skipSpace()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token.Token{Kind: token.EOF, Span: token.Span{Start: start, End: start}}
	}
	c := lx.src[lx.pos]

	switch {
	case isLetter(c):
		return lx.scanIdent()
	case isDigit(c):
		return lx.scanNumber()
	case c == '"':
		return lx.scanString()
	}

	// Comments.
	if c == '/' && lx.peekAt(1) == '/' {
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
			lx.pos++
		}
		return lx.tok(token.Comment, start)
	}
	if c == '/' && lx.peekAt(1) == '*' {
		lx.pos += 2
		depth := 1
		for lx.pos < len(lx.src) && depth > 0 {
			if lx.peek() == '/' && lx.peekAt(1) == '*' {
				depth++
				lx.pos += 2
			} else if lx.peek() == '*' && lx.peekAt(1) == '/' {
				depth--
				lx.pos += 2
			} else {
				lx.pos++
			}
		}
		if depth > 0 {
			lx.errorf(start, lx.pos, "unterminated block comment")
		}
		return lx.tok(token.Comment, start)
	}

	// Operators, longest first.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	if k, ok := twoCharOps[two]; ok {
		lx.pos += 2
		return lx.tok(k, start)
	}
	if k, ok := oneCharOps[c]; ok {
		lx.pos++
		return lx.tok(k, start)
	}

	lx.pos++
	lx.errorf(start, lx.pos, "illegal character %q", string(c))
	return token.Token{Kind: token.Illegal, Lit: string(c), Span: token.Span{Start: start, End: lx.pos}}
}

var twoCharOps = map[string]token.Kind{
	"+=": token.PlusEq,
	"-=": token.MinusEq,
	"*=": token.TimesEq,
	"++": token.PlusPlus,
	"--": token.MinusMinus,
	"==": token.Eq,
	"!=": token.NotEq,
	"<=": token.LtEq,
	">=": token.GtEq,
	"&&": token.AndAnd,
	"||": token.OrOr,
	"..": token.DotDot,
}

var oneCharOps = map[byte]token.Kind{
	'=': token.Assign,
	'+': token.Plus,
	'-': token.Minus,
	'*': token.Star,
	'/': token.Slash,
	'%': token.Percent,
	'<': token.Lt,
	'>': token.Gt,
	'!': token.Not,
	'(': token.LParen,
	')': token.RParen,
	'{': token.LBrace,
	'}': token.RBrace,
	'[': token.LBracket,
	']': token.RBracket,
	',': token.Comma,
	';': token.Semicolon,
	':': token.Colon,
	'.': token.Dot,
}

func (lx *Lexer) tok(k token.Kind, start int) token.Token {
	return token.Token{Kind: k, Lit: lx.src[start:lx.pos], Span: token.Span{Start: start, End: lx.pos}}
}

func (lx *Lexer) scanIdent() token.Token {
	start := lx.pos
	for lx.pos < len(lx.src) && (isLetter(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
		lx.pos++
	}
	// Chapel sync-variable naming convention: trailing $ is part of the
	// identifier (doneA$). Only a single trailing $ is accepted.
	if lx.peek() == '$' {
		lx.pos++
	}
	lit := lx.src[start:lx.pos]
	kind := token.Lookup(lit)
	t := lx.tok(kind, start)
	t.Lit = lit
	return t
}

func (lx *Lexer) scanNumber() token.Token {
	start := lx.pos
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	// Guard against "1..10": the .. belongs to the range operator.
	if lx.peek() == '.' && lx.peekAt(1) != '.' && isDigit(lx.peekAt(1)) {
		lx.errorf(start, lx.pos, "floating-point literals are not part of MiniChapel")
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	}
	return lx.tok(token.IntLit, start)
}

func (lx *Lexer) scanString() token.Token {
	start := lx.pos
	lx.pos++ // opening quote
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' && lx.src[lx.pos] != '\n' {
		if lx.src[lx.pos] == '\\' && lx.pos+1 < len(lx.src) {
			lx.pos++
		}
		lx.pos++
	}
	if lx.pos >= len(lx.src) || lx.src[lx.pos] != '"' {
		lx.errorf(start, lx.pos, "unterminated string literal")
	} else {
		lx.pos++
	}
	t := lx.tok(token.StringLit, start)
	return t
}
