package lexer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck/internal/source"
	"uafcheck/internal/token"
)

// seedCorpus feeds every checked-in .chpl program plus a few adversarial
// snippets to the fuzzer (shared with FuzzParse).
func seedCorpus(f *testing.F) {
	f.Helper()
	for _, dir := range []string{"../../testdata", "../../testdata/suite"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".chpl") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err == nil {
				f.Add(string(data))
			}
		}
	}
	for _, s := range []string{
		"",
		"proc main() { var done$: sync bool; begin { done$ = true; } done$; }",
		"\"unterminated",
		"// comment only",
		"/* block", // unterminated block comment
		"var x = 0x;;;$$$",
		"\x00\xff\xfe",
		"proc p(){begin with (ref x, in y){x=y..y;}}",
	} {
		f.Add(s)
	}
}

// FuzzLex asserts the lexer's total-function contract on arbitrary
// bytes: never panic, always terminate with exactly one trailing EOF,
// and make progress on every token (non-progress would hang real
// callers, so it fails the fuzz run instead).
func FuzzLex(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		diags := &source.Diagnostics{}
		file := source.NewFile("fuzz.chpl", src)
		lx := New(file, diags)
		// Bound iterations: every token spans at least one byte except the
		// final EOF, so len(src)+1 tokens is the theoretical maximum.
		limit := len(src) + 2
		prevEnd := -1
		for i := 0; ; i++ {
			if i > limit {
				t.Fatalf("lexer emitted more than %d tokens for %d input bytes", limit, len(src))
			}
			tok := lx.Next()
			if tok.Kind == token.EOF {
				break
			}
			if tok.Span.End <= prevEnd {
				t.Fatalf("lexer did not advance: token %v ends at %d after previous end %d",
					tok, tok.Span.End, prevEnd)
			}
			prevEnd = tok.Span.End
		}
	})
}
