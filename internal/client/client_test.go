package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastCfg keeps retry schedules test-sized.
func fastCfg() Config {
	return Config{
		MaxAttempts: 4,
		Budget:      5 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		BreakAfter:  3,
		Cooldown:    20 * time.Millisecond,
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	c := New(fastCfg())
	resp, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Errorf("body = %q", b)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries", st)
	}
}

// TestNoRetryOnClientError: 4xx (except 429) is definitive — the
// request is wrong, not the server's health.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c := New(fastCfg())
	resp, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || calls.Load() != 1 {
		t.Errorf("status %d after %d calls, want one 400", resp.StatusCode, calls.Load())
	}
}

// TestHonorsRetryAfter: a 429's Retry-After sets the backoff floor.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	cfg := fastCfg()
	cfg.MaxBackoff = 10 * time.Second // don't cap the server's guidance
	c := New(cfg)
	resp, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := time.Duration(gap.Load()); got < time.Second {
		t.Errorf("retry arrived after %v, want >= the 1s Retry-After", got)
	}
}

// TestBudgetBoundsRetries: the per-call budget cuts the retry loop off
// even when attempts remain.
func TestBudgetBoundsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cfg := fastCfg()
	cfg.Budget = 50 * time.Millisecond
	cfg.MaxBackoff = time.Minute
	c := New(cfg)
	t0 := time.Now()
	_, err := c.Get(context.Background(), srv.URL)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Errorf("budgeted call took %v", el)
	}
}

// TestCircuitBreaker: consecutive failures open the breaker (calls
// fail fast without touching the server), the cooldown admits one
// half-open probe, and a successful probe closes it.
func TestCircuitBreaker(t *testing.T) {
	var healthy atomic.Bool
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			io.WriteString(w, "ok")
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	cfg := fastCfg()
	cfg.MaxAttempts = 1 // isolate breaker accounting from retry loops
	c := New(cfg)
	ctx := context.Background()

	// BreakAfter=3 failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, srv.URL); err == nil {
			t.Fatal("sick server returned success")
		}
	}
	if st := c.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}

	// While open: fail fast, server untouched.
	before := calls.Load()
	if _, err := c.Get(ctx, srv.URL); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Error("open breaker still sent a request")
	}

	// After the cooldown, the probe goes through; it fails (server
	// still sick) and re-opens the breaker.
	time.Sleep(cfg.Cooldown + 5*time.Millisecond)
	if _, err := c.Get(ctx, srv.URL); err == nil {
		t.Fatal("probe against sick server succeeded")
	}
	if _, err := c.Get(ctx, srv.URL); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe must re-open the breaker, got %v", err)
	}

	// Server recovers; the next probe closes the breaker for good.
	healthy.Store(true)
	time.Sleep(cfg.Cooldown + 5*time.Millisecond)
	if _, err := c.Get(ctx, srv.URL); err != nil {
		t.Fatalf("recovered probe failed: %v", err)
	}
	if _, err := c.Get(ctx, srv.URL); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
	if st := c.Stats(); st.FastFails < 2 {
		t.Errorf("FastFails = %d, want >= 2", st.FastFails)
	}
}

// TestBreakerIsPerHost: opening the breaker against one sick host must
// not fail fast calls to a different, healthy host — one bad worker in
// a fleet cannot take out routing to its peers.
func TestBreakerIsPerHost(t *testing.T) {
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer sick.Close()
	var healthyCalls atomic.Int64
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		healthyCalls.Add(1)
		io.WriteString(w, "ok")
	}))
	defer healthy.Close()

	cfg := fastCfg()
	cfg.MaxAttempts = 1
	c := New(cfg)
	ctx := context.Background()

	for i := 0; i < cfg.BreakAfter; i++ {
		if _, err := c.Get(ctx, sick.URL); err == nil {
			t.Fatal("sick server returned success")
		}
	}
	if _, err := c.Get(ctx, sick.URL); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("sick host breaker should be open, got %v", err)
	}

	// The healthy host's breaker is independent: calls go through.
	for i := 0; i < 3; i++ {
		resp, err := c.Get(ctx, healthy.URL)
		if err != nil {
			t.Fatalf("healthy host rejected while sick host's breaker open: %v", err)
		}
		resp.Body.Close()
	}
	if healthyCalls.Load() != 3 {
		t.Errorf("healthy host saw %d calls, want 3", healthyCalls.Load())
	}

	states := c.HostStates()
	if states[hostKey(sick.URL)] != "open" {
		t.Errorf("sick host state = %q, want open", states[hostKey(sick.URL)])
	}
	if states[hostKey(healthy.URL)] != "closed" {
		t.Errorf("healthy host state = %q, want closed", states[hostKey(healthy.URL)])
	}
}

// TestNoStatusRetryPassesBackpressureThrough: with NoStatusRetry a 429
// (and its Retry-After header) is handed back on the first attempt —
// no retries, no breaker failure — so a coordinator can forward worker
// backpressure verbatim.
func TestNoStatusRetryPassesBackpressureThrough(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	cfg := fastCfg()
	cfg.NoStatusRetry = true
	c := New(cfg)
	ctx := context.Background()

	for i := 0; i < cfg.BreakAfter+2; i++ {
		resp, err := c.Get(ctx, srv.URL)
		if err != nil {
			t.Fatalf("call %d: %v (429s must be definitive, never breaker food)", i, err)
		}
		if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "7" {
			t.Fatalf("call %d: status %d Retry-After %q, want 429/7",
				i, resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		resp.Body.Close()
	}
	if got, want := calls.Load(), int64(cfg.BreakAfter+2); got != want {
		t.Errorf("server saw %d calls, want %d (exactly one attempt per call)", got, want)
	}
	if st := c.Stats(); st.Retries != 0 || st.BreakerOpens != 0 {
		t.Errorf("stats = %+v, want zero retries and breaker opens", st)
	}
}

// TestPostBodyReplayedOnRetry: each attempt re-sends the full byte
// body (a one-shot reader would arrive empty on retries).
func TestPostBodyReplayedOnRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		if string(b) != "payload" {
			t.Errorf("attempt %d body = %q", calls.Load()+1, b)
		}
		if calls.Add(1) < 2 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := New(fastCfg())
	resp, err := c.Post(context.Background(), srv.URL, "text/plain", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2", calls.Load())
	}
}

// TestDeterministicBackoffSchedule: same seed, same jitter.
func TestDeterministicBackoffSchedule(t *testing.T) {
	sched := func(seed int64) []time.Duration {
		c := New(Config{Seed: seed, BaseBackoff: time.Millisecond, MaxBackoff: time.Second})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.backoff(i+1, 0)
		}
		return out
	}
	a, b := sched(9), sched(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
}
