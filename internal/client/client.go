// Package client is the resilient HTTP client for uafserve consumers
// (the loadtest, the chaos suite, future fleet controllers). It wraps a
// standard *http.Client with the retry discipline the server's
// admission control expects:
//
//   - 5xx, 429 and transport errors retry with exponential backoff and
//     deterministic jitter, honoring the server's Retry-After header
//     when present (uafserve sends one on every 429 and overload 503);
//   - a circuit breaker opens after Config.BreakAfter consecutive such
//     failures, failing calls fast (ErrCircuitOpen) for a cooldown
//     instead of piling more load on a struggling server, then lets a
//     single half-open probe through to close it again. Breaker state
//     is per host (per scheme://authority), so one sick worker in a
//     fleet never opens the breaker for its healthy peers;
//   - every call runs under a total deadline budget (Config.Budget)
//     spanning all attempts, so retries never stretch a request past
//     what the caller provisioned.
//
// The cluster coordinator sets Config.NoStatusRetry: any HTTP response
// — including 429 and 503 — is definitive and returned to the caller
// untouched, so worker backpressure bubbles to the edge instead of
// being absorbed by retries. Only transport errors retry (and trip the
// breaker) in that mode.
//
// Requests must be replayable for retries: use Do with a byte-slice
// body (it is re-materialized per attempt), never a one-shot Reader.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) while the breaker is open and
// the cooldown has not elapsed — the request was not sent.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// ErrBudgetExceeded is returned (wrapped) when the per-call deadline
// budget ran out before an attempt could succeed. The last attempt's
// failure is attached.
var ErrBudgetExceeded = errors.New("client: retry budget exhausted")

// Config tunes a Client. The zero value gets sensible defaults.
type Config struct {
	// HTTP is the transport-level client (default: a fresh
	// http.Client). Its Timeout is left alone; per-attempt pacing comes
	// from Budget and the retry schedule.
	HTTP *http.Client
	// MaxAttempts bounds attempts per call, first try included
	// (default 4).
	MaxAttempts int
	// Budget is the total wall-clock allowance for one call across all
	// attempts and backoff sleeps (default 30s). The context passed to
	// Do may shorten it further, never extend it.
	Budget time.Duration
	// BaseBackoff seeds the exponential backoff schedule: attempt n
	// sleeps BaseBackoff << (n-1), plus jitter (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (default 5s).
	MaxBackoff time.Duration
	// BreakAfter consecutive retryable failures open the circuit
	// breaker (default 5).
	BreakAfter int
	// Cooldown is how long an open breaker fails fast before allowing a
	// half-open probe (default 2s).
	Cooldown time.Duration
	// Seed makes the backoff jitter deterministic (0 means 1) — the
	// chaos suite replays identical schedules.
	Seed int64
	// NoStatusRetry makes every HTTP response definitive: 5xx and 429
	// are returned to the caller instead of retried, and do not count
	// as breaker failures. Only transport errors retry and trip the
	// breaker. This is how the cluster coordinator forwards worker
	// backpressure (429/Retry-After, 503 health verdicts) to the edge
	// unchanged.
	NoStatusRetry bool
}

// Stats is a snapshot of a Client's traffic counters.
type Stats struct {
	// Attempts counts individual HTTP attempts (retries included).
	Attempts int64
	// Retries counts attempts beyond each call's first.
	Retries int64
	// BreakerOpens counts closed->open transitions.
	BreakerOpens int64
	// FastFails counts calls rejected while the breaker was open.
	FastFails int64
}

// breakerState is the circuit breaker's phase.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one host's circuit-breaker state. Guarded by Client.mu.
type breaker struct {
	state    breakerState
	fails    int       // consecutive retryable failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// Client is a retrying, circuit-breaking HTTP client. Safe for
// concurrent use. Breaker state is kept per host (scheme://authority
// of the request URL), so failures against one base URL never fail
// fast calls to another.
type Client struct {
	cfg Config

	mu    sync.Mutex
	hosts map[string]*breaker
	rng   uint64
	stats Stats
}

// New creates a Client, applying defaults for zero Config fields.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 30 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BreakAfter <= 0 {
		cfg.BreakAfter = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Client{
		cfg:   cfg,
		hosts: make(map[string]*breaker),
		rng:   uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 1,
	}
}

// hostKey reduces a request URL to its breaker key: scheme://authority.
// An unparseable URL falls back to the raw string, so it still gets a
// (degenerate) breaker of its own.
func hostKey(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return rawURL
	}
	return u.Scheme + "://" + u.Host
}

// breakerFor returns (creating on first use) the breaker for one host
// key. Caller holds c.mu.
func (c *Client) breakerFor(host string) *breaker {
	b, ok := c.hosts[host]
	if !ok {
		b = &breaker{}
		c.hosts[host] = b
	}
	return b
}

// HostStates snapshots each known host's breaker phase ("closed",
// "open", "half-open") — surfaced on the coordinator's /statusz so a
// fleet operator can see which workers the edge has given up on.
func (c *Client) HostStates() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.hosts))
	for h, b := range c.hosts {
		switch b.state {
		case breakerOpen:
			out[h] = "open"
		case breakerHalfOpen:
			out[h] = "half-open"
		default:
			out[h] = "closed"
		}
	}
	return out
}

// HostStatesString renders HostStates as a stable "host=state"
// comma-joined summary for health-row details.
func (c *Client) HostStatesString() string {
	m := c.HostStates()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, ", ")
}

// Stats returns a snapshot of the traffic counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Do issues method url with body (nil for none), retrying per the
// config, and returns the first definitive response: any 2xx-4xx
// except 429, or the last failure once attempts or budget run out.
// The caller owns the response body.
func (c *Client) Do(ctx context.Context, method, url string, contentType string, body []byte) (*http.Response, error) {
	var h http.Header
	if contentType != "" {
		h = http.Header{"Content-Type": []string{contentType}}
	}
	return c.DoWithHeaders(ctx, method, url, h, body)
}

// DoWithHeaders is Do with arbitrary request headers, copied onto
// every attempt — how the cluster coordinator forwards Accept (SARIF
// negotiation) and traceparent to workers verbatim.
func (c *Client) DoWithHeaders(ctx context.Context, method, url string, header http.Header, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Budget)
	// On success the caller may stream the response body (NDJSON batch
	// shards), so the budget context must outlive this frame: it is
	// released by Body.Close instead. Error paths cancel here.
	done := false
	defer func() {
		if !done {
			cancel()
		}
	}()

	host := hostKey(url)
	probe, err := c.admit(host)
	if err != nil {
		return nil, err
	}

	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.count(func(s *Stats) { s.Retries++ })
		}
		c.count(func(s *Stats) { s.Attempts++ })

		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return nil, err // malformed request: retrying cannot help
		}
		for k, vs := range header {
			req.Header[k] = vs
		}

		resp, err := c.cfg.HTTP.Do(req)
		retryAfter := time.Duration(0)
		switch {
		case err != nil:
			lastErr = err
		case !c.cfg.NoStatusRetry && (resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests):
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = fmt.Errorf("client: %s %s: %s", method, url, resp.Status)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		default:
			c.success(host, probe)
			resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
			done = true
			return resp, nil
		}

		c.failure(host, probe)
		if probe {
			// A failed half-open probe re-opens the breaker; don't burn
			// the remaining attempts against a server that just proved
			// it is still down.
			return nil, fmt.Errorf("%w: %v", ErrBudgetExceeded, lastErr)
		}
		if attempt == c.cfg.MaxAttempts {
			break
		}
		if err := c.sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return nil, fmt.Errorf("%w: %v (last attempt: %v)", ErrBudgetExceeded, err, lastErr)
		}
	}
	return nil, fmt.Errorf("%w after %d attempts: %v", ErrBudgetExceeded, c.cfg.MaxAttempts, lastErr)
}

// cancelOnClose releases a call's budget context when the caller
// finishes the response body — the body read is bounded by the budget,
// but not killed by the call frame returning mid-stream.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// Get is Do without a body.
func (c *Client) Get(ctx context.Context, url string) (*http.Response, error) {
	return c.Do(ctx, http.MethodGet, url, "", nil)
}

// Post is Do with a replayable byte body.
func (c *Client) Post(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	return c.Do(ctx, http.MethodPost, url, contentType, body)
}

// admit consults host's breaker: closed admits normally, open fails
// fast until the cooldown elapses, then exactly one caller is admitted
// as the half-open probe (probe=true). Other hosts' breakers are never
// consulted.
func (c *Client) admit(host string) (probe bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakerFor(host)
	switch b.state {
	case breakerClosed:
		return false, nil
	case breakerOpen:
		if time.Since(b.openedAt) < c.cfg.Cooldown {
			c.stats.FastFails++
			return false, fmt.Errorf("%w for %s (cooldown %v remaining)",
				ErrCircuitOpen, host, (c.cfg.Cooldown - time.Since(b.openedAt)).Round(time.Millisecond))
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, nil
	default: // half-open
		if b.probing {
			c.stats.FastFails++
			return false, fmt.Errorf("%w for %s (probe in flight)", ErrCircuitOpen, host)
		}
		b.probing = true
		return true, nil
	}
}

// success records a definitive response for host: it resets the
// failure streak and, for a half-open probe, closes the breaker.
func (c *Client) success(host string, probe bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakerFor(host)
	b.fails = 0
	if probe {
		b.state = breakerClosed
		b.probing = false
	}
}

// failure records a retryable failure for host: a failed probe
// re-opens the breaker, and BreakAfter consecutive failures open it
// from closed.
func (c *Client) failure(host string, probe bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakerFor(host)
	if probe {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
		c.stats.BreakerOpens++
		return
	}
	if b.state != breakerClosed {
		return
	}
	b.fails++
	if b.fails >= c.cfg.BreakAfter {
		b.state = breakerOpen
		b.openedAt = time.Now()
		c.stats.BreakerOpens++
	}
}

// backoff computes the sleep before the next attempt: the server's
// Retry-After when given (capped at MaxBackoff), else exponential
// backoff with deterministic jitter in [0, backoff/4).
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.cfg.MaxBackoff {
			retryAfter = c.cfg.MaxBackoff
		}
		return retryAfter
	}
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	c.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d + time.Duration(z%uint64(d/4+1))
}

// sleep waits d or until ctx ends, whichever first.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// count mutates the stats under the lock.
func (c *Client) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header
// ("" or unparseable yields 0; HTTP-date form is not used by uafserve).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
