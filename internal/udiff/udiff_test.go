package udiff

import (
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnifiedBasic(t *testing.T) {
	a := "one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\n"
	b := "one\ntwo\nTHREE\nfour\nfive\nsix\nseven\neight\n"
	got := Unified("f.chpl", a, b)
	want := strings.Join([]string{
		"--- a/f.chpl",
		"+++ b/f.chpl",
		"@@ -1,6 +1,6 @@",
		" one",
		" two",
		"-three",
		"+THREE",
		" four",
		" five",
		" six",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("diff mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestUnifiedIdentical(t *testing.T) {
	if d := Unified("f", "same\n", "same\n"); d != "" {
		t.Fatalf("identical inputs produced a diff: %q", d)
	}
}

func TestUnifiedInsertionDeletion(t *testing.T) {
	a := "a\nb\nc\n"
	b := "a\nb\nx\ny\nc\n"
	if got, err := Apply(a, Unified("f", a, b)); err != nil || got != b {
		t.Fatalf("insert round-trip: got %q err %v", got, err)
	}
	if got, err := Apply(b, Unified("f", b, a)); err != nil || got != a {
		t.Fatalf("delete round-trip: got %q err %v", got, err)
	}
}

func TestUnifiedNoFinalNewline(t *testing.T) {
	cases := []struct{ a, b string }{
		{"a\nb", "a\nb\n"}, // gains a newline
		{"a\nb\n", "a\nb"}, // loses a newline
		{"a\nb", "a\nc"},   // both unterminated
		{"x", "y\n"},       // single line each way
		{"", "a\nb"},       // from empty
		{"a\nb", ""},       // to empty
	}
	for _, c := range cases {
		d := Unified("f", c.a, c.b)
		got, err := Apply(c.a, d)
		if err != nil {
			t.Fatalf("Apply(%q, %q): %v", c.a, d, err)
		}
		if got != c.b {
			t.Fatalf("round-trip %q -> %q: got %q via\n%s", c.a, c.b, got, d)
		}
		if !strings.Contains(c.a+c.b, "\n") || !strings.HasSuffix(c.a, "\n") || !strings.HasSuffix(c.b, "\n") {
			if c.a != "" && c.b != "" && !strings.Contains(d, `\ No newline at end of file`) &&
				(!strings.HasSuffix(c.a, "\n") || !strings.HasSuffix(c.b, "\n")) {
				t.Fatalf("diff %q -> %q lacks no-newline marker:\n%s", c.a, c.b, d)
			}
		}
	}
}

func TestEdits(t *testing.T) {
	a := "a\nb\nc\nd\n"
	b := "a\nX\nY\nc\nd\nZ\n"
	edits := Edits(a, b)
	if len(edits) != 2 {
		t.Fatalf("want 2 edits, got %+v", edits)
	}
	if e := edits[0]; e.StartA != 2 || e.EndA != 2 || strings.Join(e.Inserted, ",") != "X,Y" {
		t.Fatalf("edit 0 mismatch: %+v", e)
	}
	// Pure insertion after line 4: empty a-range before line 5.
	if e := edits[1]; e.StartA != 5 || e.EndA != 4 || strings.Join(e.Inserted, ",") != "Z" {
		t.Fatalf("edit 1 mismatch: %+v", e)
	}
}

// TestApplyRandomized is the property check: for random line
// mutations, Apply(a, Unified(a, b)) must reconstruct b exactly.
func TestApplyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"var x = 1;", "begin { f(); }", "sync {", "}", "writeln(x);", "x$ = 1;", ""}
	randDoc := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte('\n')
		}
		s := sb.String()
		if rng.Intn(4) == 0 {
			s = strings.TrimSuffix(s, "\n")
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		a := randDoc(rng.Intn(30))
		b := randDoc(rng.Intn(30))
		d := Unified("f", a, b)
		got, err := Apply(a, d)
		if err != nil {
			t.Fatalf("trial %d: apply error %v on diff:\n%s", trial, err, d)
		}
		if got != b {
			t.Fatalf("trial %d: round-trip mismatch\na=%q\nb=%q\ngot=%q\ndiff:\n%s", trial, a, b, got, d)
		}
		// EditsFromDiff must recover exactly what Edits computes.
		want := Edits(a, b)
		recovered, err := EditsFromDiff(d)
		if err != nil {
			t.Fatalf("trial %d: EditsFromDiff: %v", trial, err)
		}
		if len(want) != len(recovered) {
			t.Fatalf("trial %d: edit count %d != %d", trial, len(recovered), len(want))
		}
		for i := range want {
			if want[i].StartA != recovered[i].StartA || want[i].EndA != recovered[i].EndA ||
				strings.Join(want[i].Inserted, "\n") != strings.Join(recovered[i].Inserted, "\n") {
				t.Fatalf("trial %d: edit %d mismatch: %+v != %+v", trial, i, recovered[i], want[i])
			}
		}
	}
}

// TestPatchCompat shells out to patch(1) — the acceptance criterion is
// that emitted diffs apply cleanly with the real tool, not just our
// own Apply. Skipped when patch is not installed.
func TestPatchCompat(t *testing.T) {
	patchBin, err := exec.LookPath("patch")
	if err != nil {
		t.Skip("patch(1) not installed")
	}
	cases := []struct{ a, b string }{
		{
			"proc f() {\n  var x = 1;\n  begin { writeln(x); }\n}\nf();\n",
			"proc f() {\n  var x = 1;\n  var x_done$: sync bool;\n  begin { writeln(x); x_done$ = true; }\n  x_done$;\n}\nf();\n",
		},
		{"a\nb\nc\n", "a\nc\n"},
		{"a\nb", "a\nb\nc\n"},
		{"x\n", "y"},
	}
	for i, c := range cases {
		// patch -p1 strips the leading a/ and b/ from the diff
		// headers, so the target lives at the root of the work dir.
		dir := t.TempDir()
		file := filepath.Join(dir, "f.chpl")
		if err := os.WriteFile(file, []byte(c.a), 0o644); err != nil {
			t.Fatal(err)
		}
		d := Unified("f.chpl", c.a, c.b)
		cmd := exec.Command(patchBin, "-p1", "--no-backup-if-mismatch")
		cmd.Dir = dir
		cmd.Stdin = strings.NewReader(d)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("case %d: patch failed: %v\n%s\ndiff:\n%s", i, err, out, d)
		}
		got, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != c.b {
			t.Fatalf("case %d: patch produced %q, want %q", i, got, c.b)
		}
	}
}
