// Package udiff produces unified diffs between two versions of a
// source file. It exists so the repair surface can hand out patches in
// the one format every toolchain already consumes — `patch -p1`, git
// apply, GitHub suggested changes — instead of whole rewritten files.
//
// The package is deliberately small: a line-based longest-common-
// subsequence diff (the inputs are MiniChapel sources, a few hundred
// lines at most, so the quadratic DP table is irrelevant), standard
// `--- a/<name>` / `+++ b/<name>` headers, three lines of context per
// hunk, and the classic `\ No newline at end of file` marker so diffs
// survive sources that do not end in a newline. Edits exposes the raw
// replacement runs for consumers that need structured regions instead
// of text — the SARIF `fixes` projection in internal/wire is built on
// it. Apply replays a diff in-process, which is both the test oracle
// against patch(1) and the way server tests reconstruct patched
// sources without shelling out.
package udiff

import (
	"fmt"
	"strings"
)

// context is the number of unchanged lines shown around each change,
// matching the diff(1) default.
const context = 3

// noEOL is an internal sentinel appended to the final line of a file
// that does not end in a newline. GNU diff treats "foo" and "foo\n"
// as *different* lines (the former prints with a "\ No newline at end
// of file" marker); carrying the terminator state in the line content
// makes the LCS agree with that for free. The byte cannot appear in
// text input because splitLines only attaches it past the last
// newline.
const noEOL = "\x00"

// Edit is one maximal replacement run against the original ("a")
// side: lines StartA..EndA (1-based, inclusive) are deleted and
// Inserted takes their place. A pure insertion has EndA = StartA-1
// (an empty deleted range positioned *before* line StartA); a pure
// deletion has len(Inserted) == 0.
type Edit struct {
	StartA   int
	EndA     int
	Inserted []string
}

// splitLines cuts s into lines without their trailing newline,
// tagging an unterminated final line with the noEOL sentinel. An
// empty string is zero lines.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	finalNL := strings.HasSuffix(s, "\n")
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	if !finalNL {
		lines[len(lines)-1] += noEOL
	}
	return lines
}

// joinLines is the inverse of splitLines.
func joinLines(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	last := lines[len(lines)-1]
	if strings.HasSuffix(last, noEOL) {
		head := strings.Join(lines[:len(lines)-1], "\n")
		if head != "" {
			head += "\n"
		}
		return head + strings.TrimSuffix(last, noEOL)
	}
	return strings.Join(lines, "\n") + "\n"
}

// lcs returns the longest-common-subsequence table for a and b:
// tab[i][j] is the LCS length of a[i:] and b[j:].
func lcs(a, b []string) [][]int {
	tab := make([][]int, len(a)+1)
	for i := range tab {
		tab[i] = make([]int, len(b)+1)
	}
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				tab[i][j] = tab[i+1][j+1] + 1
			} else if tab[i+1][j] >= tab[i][j+1] {
				tab[i][j] = tab[i+1][j]
			} else {
				tab[i][j] = tab[i][j+1]
			}
		}
	}
	return tab
}

// op is one element of the line-level edit script.
type op struct {
	kind byte // ' ' keep, '-' delete (from a), '+' insert (from b)
	line string
}

// script computes the edit script turning a into b.
func script(a, b []string) []op {
	tab := lcs(a, b)
	var ops []op
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			ops = append(ops, op{' ', a[i]})
			i++
			j++
		case tab[i+1][j] >= tab[i][j+1]:
			ops = append(ops, op{'-', a[i]})
			i++
		default:
			ops = append(ops, op{'+', b[j]})
			j++
		}
	}
	for ; i < len(a); i++ {
		ops = append(ops, op{'-', a[i]})
	}
	for ; j < len(b); j++ {
		ops = append(ops, op{'+', b[j]})
	}
	return ops
}

// Edits returns the replacement runs that turn a into b, in ascending
// original-line order. Adjacent delete/insert ops are coalesced into
// one Edit, so each returned edit is a maximal changed region.
// Inserted lines are plain text (no newline, no terminator sentinel).
func Edits(a, b string) []Edit {
	ops := script(splitLines(a), splitLines(b))
	var edits []Edit
	aline := 0 // lines of a consumed so far
	k := 0
	for k < len(ops) {
		if ops[k].kind == ' ' {
			aline++
			k++
			continue
		}
		// Start of a changed run: collect all '-' and '+' until the
		// next keep.
		e := Edit{StartA: aline + 1}
		dels := 0
		for k < len(ops) && ops[k].kind != ' ' {
			if ops[k].kind == '-' {
				dels++
			} else {
				e.Inserted = append(e.Inserted, strings.TrimSuffix(ops[k].line, noEOL))
			}
			k++
		}
		e.EndA = aline + dels
		aline += dels
		edits = append(edits, e)
	}
	return edits
}

// Unified renders the unified diff turning a into b, with `--- a/name`
// and `+++ b/name` headers and three lines of context per hunk, in the
// exact shape `patch -p1` consumes. It returns "" when a == b.
func Unified(name, a, b string) string {
	if a == b {
		return ""
	}
	ops := script(splitLines(a), splitLines(b))

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n", name)
	fmt.Fprintf(&sb, "+++ b/%s\n", name)

	// positions[k] = (a,b) line counts consumed before ops[k].
	type pos struct{ a, b int }
	positions := make([]pos, len(ops)+1)
	pa, pb := 0, 0
	for k, o := range ops {
		positions[k] = pos{pa, pb}
		switch o.kind {
		case ' ':
			pa++
			pb++
		case '-':
			pa++
		case '+':
			pb++
		}
	}
	positions[len(ops)] = pos{pa, pb}

	k := 0
	for k < len(ops) {
		if ops[k].kind == ' ' {
			k++
			continue
		}
		// ops[k] is the first change of a new hunk. Back up over at
		// most `context` keeps for leading context.
		start := k
		for keeps := 0; start > 0 && ops[start-1].kind == ' ' && keeps < context; keeps++ {
			start--
		}
		// Extend the hunk end: merge subsequent change runs
		// separated by at most 2*context keeps, then add trailing
		// context.
		end := k
		for {
			for end < len(ops) && ops[end].kind != ' ' {
				end++
			}
			gap := 0
			next := end
			for next < len(ops) && ops[next].kind == ' ' {
				next++
				gap++
			}
			if next < len(ops) && gap <= 2*context {
				end = next
				continue
			}
			if gap > context {
				gap = context
			}
			end += gap
			break
		}

		hs, he := positions[start], positions[end]
		aCount := he.a - hs.a
		bCount := he.b - hs.b
		aStart := hs.a + 1
		bStart := hs.b + 1
		// diff(1) convention: an empty range is reported at the line
		// *before* the hunk.
		if aCount == 0 {
			aStart = hs.a
		}
		if bCount == 0 {
			bStart = hs.b
		}
		fmt.Fprintf(&sb, "@@ -%s +%s @@\n", hunkRange(aStart, aCount), hunkRange(bStart, bCount))
		for t := start; t < end; t++ {
			sb.WriteByte(ops[t].kind)
			sb.WriteString(strings.TrimSuffix(ops[t].line, noEOL))
			sb.WriteByte('\n')
			if strings.HasSuffix(ops[t].line, noEOL) {
				sb.WriteString("\\ No newline at end of file\n")
			}
		}
		k = end
	}
	return sb.String()
}

// hunkRange formats one side of a @@ header, eliding ",1" exactly as
// diff(1) does.
func hunkRange(start, count int) string {
	if count == 1 {
		return fmt.Sprintf("%d", start)
	}
	return fmt.Sprintf("%d,%d", start, count)
}

// Apply replays the diff produced by Unified(name, a, b) against a and
// returns b. It is the in-process consistency oracle used by tests and
// by callers that reconstruct patched text without shelling out to
// patch(1). Only diffs in the shape this package emits are supported
// (single file, exact context, no fuzz).
func Apply(a, diff string) (string, error) {
	if diff == "" {
		return a, nil
	}
	al := splitLines(a)
	lines := strings.Split(strings.TrimSuffix(diff, "\n"), "\n")
	var out []string
	apos := 0 // 0-based index into al of the next unconsumed line
	i := 0
	for i < len(lines) && (strings.HasPrefix(lines[i], "--- ") || strings.HasPrefix(lines[i], "+++ ")) {
		i++
	}
	// noeolTag re-attaches the sentinel when the following diff line
	// is the no-newline marker.
	noeolTag := func(text string) string {
		if i+1 < len(lines) && lines[i+1] == `\ No newline at end of file` {
			return text + noEOL
		}
		return text
	}
	for i < len(lines) {
		ln := lines[i]
		if !strings.HasPrefix(ln, "@@ ") {
			return "", fmt.Errorf("udiff: unexpected line %q", ln)
		}
		var aStart, aCount, bStart, bCount int
		if err := parseHunkHeader(ln, &aStart, &aCount, &bStart, &bCount); err != nil {
			return "", err
		}
		_ = bStart
		_ = bCount
		from := aStart - 1
		if aCount == 0 {
			from = aStart // empty a-range is anchored before the next line
		}
		if from < apos || from > len(al) {
			return "", fmt.Errorf("udiff: hunk out of order at %q", ln)
		}
		out = append(out, al[apos:from]...)
		apos = from
		i++
		for i < len(lines) && !strings.HasPrefix(lines[i], "@@ ") {
			body := lines[i]
			if body == `\ No newline at end of file` {
				i++
				continue
			}
			if body == "" {
				// Tolerate a trimmed empty context line.
				body = " "
			}
			tag, text := body[0], body[1:]
			switch tag {
			case ' ':
				text = noeolTag(text)
				if apos >= len(al) || al[apos] != text {
					return "", fmt.Errorf("udiff: context mismatch at a line %d", apos+1)
				}
				out = append(out, text)
				apos++
			case '-':
				text = noeolTag(text)
				if apos >= len(al) || al[apos] != text {
					return "", fmt.Errorf("udiff: delete mismatch at a line %d", apos+1)
				}
				apos++
			case '+':
				out = append(out, noeolTag(text))
			default:
				return "", fmt.Errorf("udiff: unexpected hunk line %q", body)
			}
			i++
		}
	}
	out = append(out, al[apos:]...)
	return joinLines(out), nil
}

// EditsFromDiff recovers the replacement runs encoded in a diff
// produced by Unified, without needing either source text: each
// returned Edit describes a maximal changed region against the
// original ("a") side, exactly as Edits would have reported it. The
// SARIF `fixes` projection uses this to turn wire diffs into
// line-region replacements.
func EditsFromDiff(diff string) ([]Edit, error) {
	if diff == "" {
		return nil, nil
	}
	lines := strings.Split(strings.TrimSuffix(diff, "\n"), "\n")
	var edits []Edit
	i := 0
	for i < len(lines) && (strings.HasPrefix(lines[i], "--- ") || strings.HasPrefix(lines[i], "+++ ")) {
		i++
	}
	for i < len(lines) {
		ln := lines[i]
		if !strings.HasPrefix(ln, "@@ ") {
			return nil, fmt.Errorf("udiff: unexpected line %q", ln)
		}
		var aStart, aCount, bStart, bCount int
		if err := parseHunkHeader(ln, &aStart, &aCount, &bStart, &bCount); err != nil {
			return nil, err
		}
		_ = bStart
		_ = bCount
		apos := aStart - 1 // 0-based a-lines consumed before the cursor
		if aCount == 0 {
			apos = aStart
		}
		i++
		var cur *Edit
		flush := func() { cur = nil }
		for i < len(lines) && !strings.HasPrefix(lines[i], "@@ ") {
			body := lines[i]
			if body == `\ No newline at end of file` {
				i++
				continue
			}
			if body == "" {
				body = " "
			}
			tag, text := body[0], body[1:]
			switch tag {
			case ' ':
				apos++
				flush()
			case '-':
				if cur == nil {
					edits = append(edits, Edit{StartA: apos + 1, EndA: apos})
					cur = &edits[len(edits)-1]
				}
				apos++
				cur.EndA = apos
			case '+':
				if cur == nil {
					edits = append(edits, Edit{StartA: apos + 1, EndA: apos})
					cur = &edits[len(edits)-1]
				}
				cur.Inserted = append(cur.Inserted, text)
			default:
				return nil, fmt.Errorf("udiff: unexpected hunk line %q", body)
			}
			i++
		}
	}
	return edits, nil
}

// parseHunkHeader parses "@@ -a[,c] +b[,c] @@".
func parseHunkHeader(ln string, aStart, aCount, bStart, bCount *int) error {
	body := strings.TrimPrefix(ln, "@@ ")
	if idx := strings.Index(body, " @@"); idx >= 0 {
		body = body[:idx]
	}
	fields := strings.Fields(body)
	if len(fields) != 2 || !strings.HasPrefix(fields[0], "-") || !strings.HasPrefix(fields[1], "+") {
		return fmt.Errorf("udiff: bad hunk header %q", ln)
	}
	parse := func(p string, start, count *int) error {
		*count = 1
		if i := strings.IndexByte(p, ','); i >= 0 {
			if _, err := fmt.Sscanf(p[i+1:], "%d", count); err != nil {
				return fmt.Errorf("udiff: bad hunk header %q", ln)
			}
			p = p[:i]
		}
		if _, err := fmt.Sscanf(p, "%d", start); err != nil {
			return fmt.Errorf("udiff: bad hunk header %q", ln)
		}
		return nil
	}
	if err := parse(fields[0][1:], aStart, aCount); err != nil {
		return err
	}
	return parse(fields[1][1:], bStart, bCount)
}
