package sym

import (
	"testing"

	"uafcheck/internal/ast"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
)

func resolve(t *testing.T, src string) (*Info, *source.Diagnostics) {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags)
	}
	info := Resolve(mod, diags)
	return info, diags
}

func resolveOK(t *testing.T, src string) *Info {
	t.Helper()
	info, diags := resolve(t, src)
	if diags.HasErrors() {
		t.Fatalf("resolve errors:\n%s", diags)
	}
	return info
}

func TestBasicResolution(t *testing.T) {
	info := resolveOK(t, `proc f() {
	  var x: int = 1;
	  writeln(x);
	}`)
	proc := info.Module.Procs[0]
	decl := proc.Body.Stmts[0].(*ast.VarDecl)
	use := proc.Body.Stmts[1].(*ast.CallStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)
	declSym := info.Uses[decl.Name]
	useSym := info.Uses[use]
	if declSym == nil || useSym == nil || declSym != useSym {
		t.Fatalf("use not bound to decl: %v vs %v", declSym, useSym)
	}
	if declSym.Kind != KindVar {
		t.Errorf("kind = %v", declSym.Kind)
	}
}

func TestShadowing(t *testing.T) {
	info := resolveOK(t, `proc f() {
	  var x: int = 1;
	  {
	    var x: int = 2;
	    writeln(x);
	  }
	  writeln(x);
	}`)
	proc := info.Module.Procs[0]
	outer := info.Uses[proc.Body.Stmts[0].(*ast.VarDecl).Name]
	blk := proc.Body.Stmts[1].(*ast.BlockStmt)
	inner := info.Uses[blk.Stmts[0].(*ast.VarDecl).Name]
	innerUse := info.Uses[blk.Stmts[1].(*ast.CallStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)]
	outerUse := info.Uses[proc.Body.Stmts[2].(*ast.CallStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)]
	if inner == outer {
		t.Fatal("shadow not separated")
	}
	if innerUse != inner {
		t.Error("inner use bound to outer")
	}
	if outerUse != outer {
		t.Error("outer use bound to inner")
	}
}

func TestRedeclarationError(t *testing.T) {
	_, diags := resolve(t, `proc f() { var x: int = 1; var x: int = 2; }`)
	if !diags.HasErrors() {
		t.Error("redeclaration not reported")
	}
}

func TestUndefinedError(t *testing.T) {
	_, diags := resolve(t, `proc f() { writeln(mystery); }`)
	if !diags.HasErrors() {
		t.Error("undefined variable not reported")
	}
	_, diags = resolve(t, `proc f() { unknownProc(1); }`)
	if !diags.HasErrors() {
		t.Error("undefined proc not reported")
	}
}

func TestBeginScopesAndTaskDistance(t *testing.T) {
	info := resolveOK(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) {
	    writeln(x);
	    begin with (ref x) {
	      writeln(x);
	    }
	  }
	}`)
	proc := info.Module.Procs[0]
	procScope := info.ScopeFor(proc)
	if procScope == nil || procScope.Kind != ScopeProc {
		t.Fatalf("proc scope = %v", procScope)
	}
	outerBegin := proc.Body.Stmts[1].(*ast.BeginStmt)
	outerScope := info.ScopeFor(outerBegin)
	if outerScope.Kind != ScopeBegin {
		t.Fatalf("begin scope kind = %v", outerScope.Kind)
	}
	innerBegin := outerBegin.Body.Stmts[1].(*ast.BeginStmt)
	innerScope := info.ScopeFor(innerBegin)

	if d := outerScope.TaskDistance(procScope); d != 1 {
		t.Errorf("outer task distance = %d, want 1", d)
	}
	if d := innerScope.TaskDistance(procScope); d != 2 {
		t.Errorf("inner task distance = %d, want 2", d)
	}
	if d := innerScope.TaskDistance(outerScope); d != 1 {
		t.Errorf("inner-to-outer distance = %d, want 1", d)
	}
	if d := procScope.TaskDistance(innerScope); d != -1 {
		t.Errorf("non-ancestor distance = %d, want -1", d)
	}
	if innerScope.EnclosingBegin() != innerScope {
		t.Error("EnclosingBegin of begin scope should be itself")
	}
	if procScope.EnclosingBegin() != nil {
		t.Error("proc scope has no enclosing begin")
	}
	if innerScope.EnclosingProc() != procScope {
		t.Error("EnclosingProc wrong")
	}
}

func TestInIntentCreatesCopy(t *testing.T) {
	info := resolveOK(t, `proc f() {
	  var x: int = 1;
	  begin with (in x) {
	    writeln(x);
	  }
	}`)
	proc := info.Module.Procs[0]
	outer := info.Uses[proc.Body.Stmts[0].(*ast.VarDecl).Name]
	bg := proc.Body.Stmts[1].(*ast.BeginStmt)
	use := bg.Body.Stmts[0].(*ast.CallStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)
	useSym := info.Uses[use]
	if useSym == outer {
		t.Fatal("in-intent use bound to outer variable, not the copy")
	}
	if useSym.Kind != KindCopy || useSym.Origin != outer {
		t.Errorf("copy symbol = %+v", useSym)
	}
	if cp := info.CopyFor[bg][outer]; cp != useSym {
		t.Errorf("CopyFor mismatch: %v vs %v", cp, useSym)
	}
}

func TestRefIntentKeepsOuterBinding(t *testing.T) {
	info := resolveOK(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) { x = 2; }
	}`)
	proc := info.Module.Procs[0]
	outer := info.Uses[proc.Body.Stmts[0].(*ast.VarDecl).Name]
	bg := proc.Body.Stmts[1].(*ast.BeginStmt)
	lhs := bg.Body.Stmts[0].(*ast.AssignStmt).Lhs
	if info.Uses[lhs] != outer {
		t.Error("ref-intent use not bound to outer variable")
	}
}

func TestSyncVarUniversallyVisibleNote(t *testing.T) {
	_, diags := resolve(t, `proc f() {
	  var done$: sync bool;
	  begin with (ref done$) { done$ = true; }
	}`)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", diags)
	}
	found := false
	for _, d := range diags.All() {
		if d.Severity == source.Note && contains(d.Message, "universally visible") {
			found = true
		}
	}
	if !found {
		t.Error("redundant with-clause on sync var not noted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestNestedProcSeesParentVariables(t *testing.T) {
	info := resolveOK(t, `proc outer() {
	  var x: int = 1;
	  proc inner() { writeln(x); }
	  inner();
	}`)
	proc := info.Module.Procs[0]
	outerX := info.Uses[proc.Body.Stmts[0].(*ast.VarDecl).Name]
	nested := proc.Body.Stmts[1].(*ast.ProcStmt).Proc
	use := nested.Body.Stmts[0].(*ast.CallStmt).X.(*ast.CallExpr).Args[0].(*ast.Ident)
	if info.Uses[use] != outerX {
		t.Error("nested proc's x not bound to parent's x")
	}
}

func TestForwardNestedProcCall(t *testing.T) {
	info := resolveOK(t, `proc outer() {
	  helper();
	  proc helper() { writeln(1); }
	}`)
	proc := info.Module.Procs[0]
	call := proc.Body.Stmts[0].(*ast.CallStmt).X.(*ast.CallExpr)
	sym := info.Uses[call.Fun]
	if sym == nil || sym.Kind != KindProc {
		t.Error("forward call to nested proc unresolved")
	}
}

func TestMutualTopLevelProcs(t *testing.T) {
	info := resolveOK(t, `
	proc a() { b(); }
	proc b() { a(); }`)
	_ = info
}

func TestMethodClassification(t *testing.T) {
	info := resolveOK(t, `proc f() {
	  var s$: sync bool;
	  var g$: single int;
	  var a: atomic int;
	  s$.writeEF(true);
	  var v1: bool = s$.readFE();
	  var v2: int = g$.readFF();
	  g$.writeEF(3);
	  a.write(1);
	  var v3: int = a.read();
	  a.fetchAdd(2);
	  a.waitFor(3);
	}`)
	want := map[string]SyncOpKind{
		"writeEF":  OpWriteEF,
		"readFE":   OpReadFE,
		"readFF":   OpReadFF,
		"write":    OpAtomicWrite,
		"read":     OpAtomicRead,
		"fetchAdd": OpAtomicWrite,
		"waitFor":  OpAtomicWait,
	}
	seen := map[string]bool{}
	for call, op := range info.MethodOps {
		if w, ok := want[call.Method]; ok {
			if call.Method == "writeEF" {
				// appears on both sync and single; both map to OpWriteEF
			}
			if op != w {
				t.Errorf("%s classified %v, want %v", call.Method, op, w)
			}
			seen[call.Method] = true
		}
	}
	for m := range want {
		if !seen[m] {
			t.Errorf("method %s never classified", m)
		}
	}
}

func TestInvalidMethodReported(t *testing.T) {
	_, diags := resolve(t, `proc f() {
	  var s$: sync bool;
	  s$.frobnicate();
	}`)
	if !diags.HasErrors() {
		t.Error("invalid sync method not reported")
	}
	_, diags = resolve(t, `proc f() {
	  var x: int = 1;
	  x.readFE();
	}`)
	if !diags.HasErrors() {
		t.Error("method call on plain variable not reported")
	}
}

func TestBlockingClassification(t *testing.T) {
	if !OpReadFE.Blocking() || !OpReadFF.Blocking() || !OpWriteEF.Blocking() {
		t.Error("blocking ops misclassified")
	}
	if OpAtomicRead.Blocking() || OpAtomicWrite.Blocking() || OpNone.Blocking() {
		t.Error("non-blocking ops misclassified")
	}
}

func TestScopePath(t *testing.T) {
	info := resolveOK(t, `proc f() { begin { writeln(1); } }`)
	bg := info.Module.Procs[0].Body.Stmts[0].(*ast.BeginStmt)
	path := info.ScopeFor(bg).Path()
	if path != "module/proc/begin" {
		t.Errorf("Path = %q", path)
	}
}

func TestConfigKind(t *testing.T) {
	info := resolveOK(t, "config const flag = true;\nproc f() { writeln(flag); }")
	cfg := info.Uses[info.Module.Configs[0].Name]
	if cfg.Kind != KindConfig {
		t.Errorf("config kind = %v", cfg.Kind)
	}
}

func TestSymbolStringAndKinds(t *testing.T) {
	info := resolveOK(t, `proc f(ref r: int, v: bool) {
	  for i in 1..2 { writeln(i); }
	}`)
	scope := info.ScopeFor(info.Module.Procs[0])
	syms := scope.Symbols()
	if len(syms) != 2 {
		t.Fatalf("params = %d", len(syms))
	}
	if !syms[0].ByRef || syms[0].Kind != KindParam {
		t.Errorf("ref param = %+v", syms[0])
	}
	if syms[0].String() == "" {
		t.Error("Symbol.String empty")
	}
}
