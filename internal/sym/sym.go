// Package sym performs name resolution and scope construction for
// MiniChapel modules.
//
// The resolver produces the facts the paper's analysis consumes:
//
//   - a lexical scope tree in which procedure bodies, blocks, begin task
//     bodies, sync blocks and loop bodies each open a scope;
//   - a resolution map from every identifier use to its declaration;
//   - classification of variables: plain, sync, single, atomic, config;
//   - capture handling for begin-with clauses: `ref x` keeps uses bound to
//     the outer variable, while `in x` introduces a task-local copy so all
//     uses inside the task are provably safe (paper §I, Task C);
//   - the set of nested procedures, which the lowering stage inlines at
//     call sites to expose hidden outer-variable accesses (paper §III-A).
package sym

import (
	"fmt"
	"strings"

	"uafcheck/internal/ast"
	"uafcheck/internal/source"
)

// Kind classifies a symbol.
type Kind int

const (
	// KindVar is an ordinary variable declaration.
	KindVar Kind = iota
	// KindConst is a const declaration.
	KindConst
	// KindConfig is a top-level config const: program lifetime, never an
	// outer-variable hazard.
	KindConfig
	// KindParam is a procedure formal.
	KindParam
	// KindLoopVar is a for-loop induction variable.
	KindLoopVar
	// KindCopy is a task-local copy introduced by an `in` intent.
	KindCopy
	// KindProc is a procedure name.
	KindProc
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindVar:
		return "var"
	case KindConst:
		return "const"
	case KindConfig:
		return "config"
	case KindParam:
		return "param"
	case KindLoopVar:
		return "loopvar"
	case KindCopy:
		return "copy"
	case KindProc:
		return "proc"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Symbol is one declared name.
type Symbol struct {
	ID    int
	Name  string
	Kind  Kind
	Type  ast.Type
	Decl  ast.Node // *ast.VarDecl, *ast.ProcDecl, begin stmt (for copies), ...
	Scope *Scope   // declaring scope
	// ByRef marks a formal declared `ref name: T`.
	ByRef bool
	// Origin links an `in`-intent copy to the outer variable it copies.
	Origin *Symbol
	// Proc is set for KindProc symbols.
	Proc *ast.ProcDecl
}

// IsSyncVar reports whether the symbol is a sync or single variable —
// the point-to-point synchronization primitives the analysis models.
func (s *Symbol) IsSyncVar() bool {
	return s.Type.Qual == ast.QualSync || s.Type.Qual == ast.QualSingle
}

// IsAtomic reports whether the symbol is an atomic variable.
func (s *Symbol) IsAtomic() bool { return s.Type.Qual == ast.QualAtomic }

// String renders the symbol for diagnostics.
func (s *Symbol) String() string {
	return fmt.Sprintf("%s %s#%d", s.Kind, s.Name, s.ID)
}

// ScopeKind classifies what opened a scope.
type ScopeKind int

const (
	// ScopeModule is the file-level scope holding configs and procs.
	ScopeModule ScopeKind = iota
	// ScopeProc is a procedure body.
	ScopeProc
	// ScopeBlock is a plain block or branch arm.
	ScopeBlock
	// ScopeBegin is a begin task body — the task boundary for
	// outer-variable classification.
	ScopeBegin
	// ScopeSync is a sync { } block.
	ScopeSync
	// ScopeLoop is a while/for body.
	ScopeLoop
)

// String implements fmt.Stringer.
func (k ScopeKind) String() string {
	switch k {
	case ScopeModule:
		return "module"
	case ScopeProc:
		return "proc"
	case ScopeBlock:
		return "block"
	case ScopeBegin:
		return "begin"
	case ScopeSync:
		return "sync"
	case ScopeLoop:
		return "loop"
	}
	return fmt.Sprintf("scope(%d)", int(k))
}

// Scope is one lexical scope.
type Scope struct {
	ID       int
	Kind     ScopeKind
	Parent   *Scope
	Children []*Scope
	Node     ast.Node // the AST node that opened the scope
	names    map[string]*Symbol
	ordered  []*Symbol
}

// Lookup resolves name in this scope or any ancestor; nil if unknown.
func (sc *Scope) Lookup(name string) *Symbol {
	for s := sc; s != nil; s = s.Parent {
		if sym, ok := s.names[name]; ok {
			return sym
		}
	}
	return nil
}

// LookupLocal resolves name in this scope only.
func (sc *Scope) LookupLocal(name string) *Symbol {
	return sc.names[name]
}

// Symbols returns the scope's symbols in declaration order.
func (sc *Scope) Symbols() []*Symbol { return sc.ordered }

// EnclosingBegin returns the nearest enclosing begin scope (possibly sc
// itself), or nil when sc is outside any task.
func (sc *Scope) EnclosingBegin() *Scope {
	for s := sc; s != nil; s = s.Parent {
		if s.Kind == ScopeBegin {
			return s
		}
	}
	return nil
}

// EnclosingProc returns the nearest enclosing proc scope.
func (sc *Scope) EnclosingProc() *Scope {
	for s := sc; s != nil; s = s.Parent {
		if s.Kind == ScopeProc {
			return s
		}
	}
	return nil
}

// TaskDistance counts the begin boundaries crossed walking from sc up to
// target (the declaring scope). A positive distance means an access in sc
// to a variable of target is an outer-variable access (paper §I).
// target must be an ancestor of sc (or sc itself); otherwise -1.
func (sc *Scope) TaskDistance(target *Scope) int {
	n := 0
	for s := sc; s != nil; s = s.Parent {
		if s == target {
			return n
		}
		if s.Kind == ScopeBegin {
			n++
		}
	}
	return -1
}

// Path renders the scope chain for debugging, e.g. "module/proc/begin".
func (sc *Scope) Path() string {
	var parts []string
	for s := sc; s != nil; s = s.Parent {
		parts = append(parts, s.Kind.String())
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// SyncOpKind classifies a resolved synchronization operation.
type SyncOpKind int

const (
	// OpNone marks a non-synchronizing method (or plain access).
	OpNone SyncOpKind = iota
	// OpReadFE is the blocking full→empty read on a sync variable.
	OpReadFE
	// OpReadFF is the blocking full-retaining read on a single variable.
	OpReadFF
	// OpWriteEF is the blocking empty→full write on sync/single.
	OpWriteEF
	// OpAtomicRead is a non-blocking atomic read.
	OpAtomicRead
	// OpAtomicWrite is a non-blocking atomic write (incl. fetchAdd etc.).
	OpAtomicWrite
	// OpAtomicWait is waitFor: a spin until the atomic holds the target
	// value. The optional atomics extension (§IV-A sketch, §VII future
	// work) models it as a SINGLE-READ-like wait-until-full event.
	OpAtomicWait
)

// String returns the Chapel method name of the operation.
func (k SyncOpKind) String() string {
	switch k {
	case OpNone:
		return "none"
	case OpReadFE:
		return "readFE"
	case OpReadFF:
		return "readFF"
	case OpWriteEF:
		return "writeEF"
	case OpAtomicRead:
		return "read"
	case OpAtomicWrite:
		return "write"
	case OpAtomicWait:
		return "waitFor"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Blocking reports whether the operation can block the executing task.
func (k SyncOpKind) Blocking() bool {
	switch k {
	case OpReadFE, OpReadFF, OpWriteEF:
		return true
	}
	return false
}

// Info is the resolver output for one module.
type Info struct {
	Module *ast.Module
	// Uses maps every resolved identifier use to its symbol.
	Uses map[*ast.Ident]*Symbol
	// Decls maps declaration nodes to the symbol they introduce.
	Decls map[ast.Node]*Symbol
	// ScopeOf maps scope-opening nodes (module handled separately) to
	// their scope: *ast.ProcDecl, *ast.BlockStmt of begin/sync/branch...
	ScopeOf map[ast.Node]*Scope
	// MethodOps classifies every method call that is a sync/atomic op.
	MethodOps map[*ast.MethodCallExpr]SyncOpKind
	// ModuleScope is the root scope.
	ModuleScope *Scope
	// ProcSyms maps proc name symbols (both top-level and nested).
	ProcSyms map[*ast.ProcDecl]*Symbol
	// CopyFor maps (begin, outer symbol) pairs to the in-intent copy.
	CopyFor map[*ast.BeginStmt]map[*Symbol]*Symbol
	// UnresolvedCalls lists call identifiers that named no known
	// procedure (after consulting the linker scope, if any). Module
	// analysis promotes these to a typed error; single-file analysis
	// keeps the diagnostic-only behavior.
	UnresolvedCalls []*ast.Ident

	nextSymID   int
	nextScopeID int
	diags       *source.Diagnostics
	file        *source.File
}

// Resolve runs name resolution over the module. Errors are appended to
// diags; resolution is best-effort so later stages can still run on
// partially-broken corpus inputs.
func Resolve(m *ast.Module, diags *source.Diagnostics) *Info {
	return ResolveWith(m, diags, nil)
}

// NewLinkerScope returns an empty module-kind scope used to link
// several files into one module: callers pre-fill it with the
// top-level procedure symbols of the *other* files (DeclareExtern) and
// pass it to ResolveWith. The file's own module scope is parented to
// it, so local declarations shadow imports naturally and only calls
// that would otherwise be undefined resolve across files.
func NewLinkerScope() *Scope {
	return &Scope{ID: -1, Kind: ScopeModule, names: make(map[string]*Symbol)}
}

// DeclareExtern registers a foreign top-level procedure in a linker
// scope. The first declaration of a name wins (deterministic given a
// deterministic file order); the returned symbol carries the foreign
// declaration so callers can walk into its body.
func DeclareExtern(sc *Scope, proc *ast.ProcDecl) *Symbol {
	name := proc.Name.Name
	if prev := sc.LookupLocal(name); prev != nil {
		return prev
	}
	s := &Symbol{ID: -(len(sc.ordered) + 1), Name: name, Kind: KindProc,
		Type: proc.Ret, Decl: proc, Scope: sc, Proc: proc}
	sc.names[name] = s
	sc.ordered = append(sc.ordered, s)
	return s
}

// ResolveWith is Resolve with an optional linker scope supplying
// module-level procedures defined in other files of the same module.
// Passing nil is exactly Resolve.
func ResolveWith(m *ast.Module, diags *source.Diagnostics, linker *Scope) *Info {
	info := &Info{
		Module:    m,
		Uses:      make(map[*ast.Ident]*Symbol),
		Decls:     make(map[ast.Node]*Symbol),
		ScopeOf:   make(map[ast.Node]*Scope),
		MethodOps: make(map[*ast.MethodCallExpr]SyncOpKind),
		ProcSyms:  make(map[*ast.ProcDecl]*Symbol),
		CopyFor:   make(map[*ast.BeginStmt]map[*Symbol]*Symbol),
		diags:     diags,
		file:      m.File,
	}
	root := info.newScope(ScopeModule, linker, m)
	info.ModuleScope = root

	for _, cfg := range m.Configs {
		sym := info.declare(root, cfg.Name, KindConfig, cfg.Type, cfg)
		if cfg.Init != nil {
			info.expr(root, cfg.Init)
		}
		_ = sym
	}
	// Two passes over procs so mutually-referencing top-level procs
	// resolve regardless of order.
	for _, p := range m.Procs {
		ps := info.declare(root, p.Name, KindProc, p.Ret, p)
		ps.Proc = p
		info.ProcSyms[p] = ps
	}
	for _, p := range m.Procs {
		info.proc(root, p)
	}
	return info
}

func (in *Info) newScope(kind ScopeKind, parent *Scope, node ast.Node) *Scope {
	sc := &Scope{ID: in.nextScopeID, Kind: kind, Parent: parent, Node: node,
		names: make(map[string]*Symbol)}
	in.nextScopeID++
	if parent != nil {
		parent.Children = append(parent.Children, sc)
	}
	if node != nil {
		in.ScopeOf[node] = sc
	}
	return sc
}

func (in *Info) declare(sc *Scope, name *ast.Ident, kind Kind, typ ast.Type, decl ast.Node) *Symbol {
	if prev := sc.LookupLocal(name.Name); prev != nil {
		in.diags.Addf(in.file, name.Sp, source.Error,
			"%s redeclared in this scope (previous declaration as %s)", name.Name, prev.Kind)
	}
	sym := &Symbol{ID: in.nextSymID, Name: name.Name, Kind: kind, Type: typ,
		Decl: decl, Scope: sc}
	in.nextSymID++
	sc.names[name.Name] = sym
	sc.ordered = append(sc.ordered, sym)
	in.Decls[decl] = sym
	in.Uses[name] = sym
	return sym
}

func (in *Info) proc(parent *Scope, p *ast.ProcDecl) {
	sc := in.newScope(ScopeProc, parent, p)
	for _, prm := range p.Params {
		s := in.declare(sc, prm.Name, KindParam, prm.Type, prm.Name)
		s.ByRef = prm.ByRef
	}
	in.stmts(sc, p.Body.Stmts)
	// Register the body block's scope as the proc scope so span lookups
	// through either node agree.
	in.ScopeOf[p.Body] = sc
}

func (in *Info) block(parent *Scope, kind ScopeKind, node ast.Node, b *ast.BlockStmt) *Scope {
	sc := in.newScope(kind, parent, node)
	if node != b {
		in.ScopeOf[b] = sc
	}
	in.stmts(sc, b.Stmts)
	return sc
}

func (in *Info) stmts(sc *Scope, list []ast.Stmt) {
	// Pre-declare nested procs in the scope so calls before the lexical
	// definition resolve (Chapel allows forward use within a scope).
	for _, s := range list {
		if ps, ok := s.(*ast.ProcStmt); ok {
			sym := in.declare(sc, ps.Proc.Name, KindProc, ps.Proc.Ret, ps.Proc)
			sym.Proc = ps.Proc
			in.ProcSyms[ps.Proc] = sym
		}
	}
	for _, s := range list {
		in.stmt(sc, s)
	}
}

func (in *Info) stmt(sc *Scope, s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		if x.Init != nil {
			in.expr(sc, x.Init)
		}
		kind := KindVar
		if x.Const {
			kind = KindConst
		}
		if x.Config {
			kind = KindConfig
		}
		in.declare(sc, x.Name, kind, x.Type, x)
	case *ast.AssignStmt:
		in.expr(sc, x.Rhs)
		in.useIdent(sc, x.Lhs)
	case *ast.IncDecStmt:
		in.useIdent(sc, x.X)
	case *ast.ExprStmt:
		in.expr(sc, x.X)
	case *ast.CallStmt:
		in.expr(sc, x.X)
	case *ast.BeginStmt:
		in.begin(sc, x)
	case *ast.SyncStmt:
		in.block(sc, ScopeSync, x, x.Body)
	case *ast.IfStmt:
		in.expr(sc, x.Cond)
		in.block(sc, ScopeBlock, x.Then, x.Then)
		if x.Else != nil {
			in.block(sc, ScopeBlock, x.Else, x.Else)
		}
	case *ast.WhileStmt:
		in.expr(sc, x.Cond)
		in.block(sc, ScopeLoop, x, x.Body)
	case *ast.ForStmt:
		in.expr(sc, x.Range.Lo)
		in.expr(sc, x.Range.Hi)
		loop := in.newScope(ScopeLoop, sc, x)
		in.ScopeOf[x.Body] = loop
		in.declare(loop, x.Var, KindLoopVar, ast.Type{Kind: ast.TypeInt}, x.Var)
		in.stmts(loop, x.Body.Stmts)
	case *ast.ReturnStmt:
		if x.Value != nil {
			in.expr(sc, x.Value)
		}
	case *ast.BlockStmt:
		in.block(sc, ScopeBlock, x, x)
	case *ast.ProcStmt:
		// Symbol already declared by stmts pre-pass; resolve the body in
		// a child scope of the *defining* scope — Chapel nested functions
		// see the live variables of the parent procedure (paper §I).
		in.proc(sc, x.Proc)
	}
}

func (in *Info) begin(sc *Scope, b *ast.BeginStmt) {
	task := in.newScope(ScopeBegin, sc, b)
	in.ScopeOf[b.Body] = task
	copies := make(map[*Symbol]*Symbol)
	for _, w := range b.With {
		outer := sc.Lookup(w.Name.Name)
		if outer == nil {
			in.diags.Addf(in.file, w.Name.Sp, source.Error,
				"with-clause names unknown variable %q", w.Name.Name)
			continue
		}
		in.Uses[w.Name] = outer
		if outer.IsSyncVar() {
			in.diags.Addf(in.file, w.Name.Sp, source.Note,
				"sync/single variable %q is universally visible; the with-clause is redundant", w.Name.Name)
			continue
		}
		if w.Intent == ast.IntentIn {
			// Introduce a task-local copy shadowing the outer variable:
			// every use inside the task binds to the copy, making the
			// accesses safe by construction (paper §I, Task C).
			cp := &Symbol{ID: in.nextSymID, Name: outer.Name, Kind: KindCopy,
				Type: outer.Type, Decl: b, Scope: task, Origin: outer}
			in.nextSymID++
			task.names[outer.Name] = cp
			task.ordered = append(task.ordered, cp)
			copies[outer] = cp
		}
		// ref intent: uses keep resolving to the outer symbol through
		// ordinary lexical lookup; nothing to declare.
	}
	if len(copies) > 0 {
		in.CopyFor[b] = copies
	}
	in.stmts(task, b.Body.Stmts)
}

func (in *Info) useIdent(sc *Scope, id *ast.Ident) *Symbol {
	sym := sc.Lookup(id.Name)
	if sym == nil {
		in.diags.Addf(in.file, id.Sp, source.Error, "undefined: %s", id.Name)
		return nil
	}
	in.Uses[id] = sym
	return sym
}

// Builtins accepted in call position.
var builtins = map[string]bool{
	"writeln": true,
	"write":   true,
	"assert":  true,
	"sleep":   true, // models a compute delay; no concurrency semantics
}

// IsBuiltin reports whether name is a MiniChapel builtin procedure.
func IsBuiltin(name string) bool { return builtins[name] }

func (in *Info) expr(sc *Scope, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		in.useIdent(sc, x)
	case *ast.BinaryExpr:
		in.expr(sc, x.X)
		in.expr(sc, x.Y)
	case *ast.UnaryExpr:
		in.expr(sc, x.X)
	case *ast.RangeExpr:
		in.expr(sc, x.Lo)
		in.expr(sc, x.Hi)
	case *ast.CallExpr:
		if !IsBuiltin(x.Fun.Name) {
			sym := sc.Lookup(x.Fun.Name)
			if sym == nil || sym.Kind != KindProc {
				in.UnresolvedCalls = append(in.UnresolvedCalls, x.Fun)
				in.diags.Addf(in.file, x.Fun.Sp, source.Error,
					"call to undefined procedure %q", x.Fun.Name)
			} else {
				in.Uses[x.Fun] = sym
			}
		}
		for _, a := range x.Args {
			in.expr(sc, a)
		}
	case *ast.MethodCallExpr:
		recv := in.useIdent(sc, x.Recv)
		for _, a := range x.Args {
			in.expr(sc, a)
		}
		in.classifyMethod(sc, x, recv)
	case *ast.IntLit, *ast.BoolLit, *ast.StringLit:
		// Leaves.
	}
}

func (in *Info) classifyMethod(sc *Scope, call *ast.MethodCallExpr, recv *Symbol) {
	if recv == nil {
		return
	}
	op := OpNone
	switch {
	case recv.Type.Qual == ast.QualSync:
		switch call.Method {
		case "readFE":
			op = OpReadFE
		case "writeEF", "writeXF":
			op = OpWriteEF
		case "reset", "isFull":
			op = OpNone
		default:
			in.diags.Addf(in.file, call.Sp, source.Error,
				"sync variable %s has no method %q", recv.Name, call.Method)
		}
	case recv.Type.Qual == ast.QualSingle:
		switch call.Method {
		case "readFF":
			op = OpReadFF
		case "writeEF":
			op = OpWriteEF
		case "isFull":
			op = OpNone
		default:
			in.diags.Addf(in.file, call.Sp, source.Error,
				"single variable %s has no method %q", recv.Name, call.Method)
		}
	case recv.Type.Qual == ast.QualAtomic:
		switch call.Method {
		case "read":
			op = OpAtomicRead
		case "write", "add", "sub", "fetchAdd", "fetchSub", "compareExchange":
			op = OpAtomicWrite
		case "waitFor":
			// waitFor spins until the atomic holds a value. The default
			// analysis ignores it (§IV-A); the atomics extension models
			// it as a wait-until-full event.
			op = OpAtomicWait
		default:
			in.diags.Addf(in.file, call.Sp, source.Error,
				"atomic variable %s has no method %q", recv.Name, call.Method)
		}
	default:
		in.diags.Addf(in.file, call.Sp, source.Error,
			"%s is not a sync, single or atomic variable; method call %q is invalid",
			recv.Name, call.Method)
	}
	in.MethodOps[call] = op
}

// SymbolOf returns the resolved symbol of an identifier use, or nil.
func (in *Info) SymbolOf(id *ast.Ident) *Symbol { return in.Uses[id] }

// ScopeFor returns the scope opened by node, or nil.
func (in *Info) ScopeFor(node ast.Node) *Scope { return in.ScopeOf[node] }
