package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"uafcheck"
	"uafcheck/internal/obs"
	"uafcheck/internal/wire"
)

// Module fixtures: main -> mid -> leaf across three files; only the
// whole-module view can attribute leaf's escaping task to the callers.
const (
	modLeaf = "proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + 1;\n  }\n}\n"
	modMid  = "proc mid(ref w: int) {\n  leaf(w);\n}\n"
	modMain = "proc main() {\n  var x: int = 0;\n  mid(x);\n}\n"
)

func moduleBatchFiles() []BatchFile {
	return []BatchFile{
		{Name: "leaf.chpl", Src: modLeaf},
		{Name: "mid.chpl", Src: modMid},
		{Name: "main.chpl", Src: modMain},
	}
}

// canonicalModuleLines runs the library entry point with the server's
// default options and encodes each file the way the stream does.
func canonicalModuleLines(t *testing.T, files []BatchFile) [][]byte {
	t.Helper()
	mfiles := make([]uafcheck.ModuleFile, len(files))
	for i, f := range files {
		mfiles[i] = uafcheck.ModuleFile{Name: f.Name, Src: f.Src}
	}
	mrep, err := uafcheck.AnalyzeModuleContext(context.Background(), mfiles,
		uafcheck.WithPrune(true), uafcheck.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	lines := make([][]byte, len(mrep.Files))
	for i, fr := range mrep.Files {
		b, encErr := wire.NewResult(fr.Name, fr.Report, fr.Err, false).Encode()
		if encErr != nil {
			t.Fatal(encErr)
		}
		lines[i] = b
	}
	return lines
}

// TestBatchModuleMode: mode "module" analyzes the files as one linked
// module — the NDJSON lines come back in input order, byte-identical to
// the library's module encoding, and the cross-file warnings are there.
func TestBatchModuleMode(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	files := moduleBatchFiles()

	resp, body := post(t, ts, "/v1/analyze-batch", BatchRequest{Mode: "module", Files: files})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := splitLines(body)
	want := canonicalModuleLines(t, files)
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d: %s", len(lines), len(want), body)
	}
	for i := range want {
		if string(lines[i]) != string(want[i]) {
			t.Errorf("line %d differs\nserver: %s\nlibrary: %s", i, lines[i], want[i])
		}
	}
	// The caller-side warning exists only under whole-module analysis.
	var res wire.Result
	if err := json.Unmarshal(lines[2], &res); err != nil {
		t.Fatal(err)
	}
	if res.Name != "main.chpl" || res.Report == nil || len(res.Report.Warnings) == 0 {
		t.Errorf("main.chpl should carry a cross-file warning, got %s", lines[2])
	}
	if got := srv.MetricsSnapshot().Counter(obs.CtrServerBatchFiles); got != int64(len(files)) {
		t.Errorf("batch_files counter = %d, want %d", got, len(files))
	}
}

func splitLines(body []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range body {
		if c == '\n' {
			if i > start {
				out = append(out, body[start:i])
			}
			start = i + 1
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// TestBatchModuleUnresolved: a call that names no procedure in any file
// is a 422 with the typed unresolved_call code.
func TestBatchModuleUnresolved(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/analyze-batch", BatchRequest{
		Mode:  "module",
		Files: []BatchFile{{Name: "main.chpl", Src: modMain}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q: %v", body, err)
	}
	if e.Code != CodeUnresolvedCall {
		t.Errorf("code = %q, want %q (error: %s)", e.Code, CodeUnresolvedCall, e.Error)
	}
}

// TestBatchUnknownMode is rejected up front, before any analysis.
func TestBatchUnknownMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/analyze-batch", BatchRequest{
		Mode:  "bogus",
		Files: []BatchFile{{Name: "a.chpl", Src: "proc p() { }"}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestDeltaModuleStream: module lines on /v1/delta fan out to one wire
// line per file and are served from the per-unit memo across snapshots —
// an effect-preserving callee edit recomputes only the edited file.
func TestDeltaModuleStream(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	v1 := moduleBatchFiles()
	v2 := moduleBatchFiles()
	v2[0].Src = "proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + 9;\n  }\n}\n"

	body := deltaBody(t,
		DeltaRequest{Module: "app", Files: v1},
		DeltaRequest{Module: "app", Files: v2},
		DeltaRequest{Module: "app", Files: v2},
	)
	resp, lines := postNDJSON(t, ts, "/v1/delta", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 9 {
		t.Fatalf("got %d response lines, want 9 (3 snapshots x 3 files): %q", len(lines), lines)
	}
	for si, snap := range [][]BatchFile{v1, v2, v2} {
		want := canonicalModuleLines(t, snap)
		for fi := range want {
			if got := lines[si*3+fi]; string(got) != string(want[fi]) {
				t.Errorf("snapshot %d file %d differs\nserver: %s\nlibrary: %s", si, fi, got, want[fi])
			}
		}
	}
	m := srv.MetricsSnapshot()
	if got := m.Counter(obs.CtrServerDeltaFiles); got != 9 {
		t.Errorf("delta_files = %d, want 9", got)
	}
	// Three units cold; the edit recomputes leaf only (2 hits); the
	// identical snapshot hits all three.
	if got := m.Counter(obs.CtrUnitMisses); got != 4 {
		t.Errorf("unit misses = %d, want 4", got)
	}
	if got := m.Counter(obs.CtrUnitHits); got != 5 {
		t.Errorf("unit hits = %d, want 5", got)
	}
}

// TestDeltaModuleBadLines: a module line with no files answers with one
// error line and the stream continues.
func TestDeltaModuleBadLines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := deltaBody(t,
		DeltaRequest{Module: "app"},
		DeltaRequest{Name: "ok.chpl", Src: "proc p() { }"},
	)
	resp, lines := postNDJSON(t, ts, "/v1/delta", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), lines)
	}
	var e errorBody
	if err := json.Unmarshal(lines[0], &e); err != nil || e.Error == "" {
		t.Errorf("line 0 should be an error envelope, got %s", lines[0])
	}
	var res wire.Result
	if err := json.Unmarshal(lines[1], &res); err != nil || res.Status != "ok" {
		t.Errorf("line 1 should be an ok result, got %s", lines[1])
	}
}

// TestDeltaModuleUnresolved: an unresolved cross-file call inside a
// module line yields a single typed error line, mid-stream.
func TestDeltaModuleUnresolved(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := deltaBody(t, DeltaRequest{
		Module: "app",
		Files:  []BatchFile{{Name: "main.chpl", Src: modMain}},
	})
	resp, lines := postNDJSON(t, ts, "/v1/delta", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1: %q", len(lines), lines)
	}
	var e errorBody
	if err := json.Unmarshal(lines[0], &e); err != nil {
		t.Fatalf("error body %q: %v", lines[0], err)
	}
	if e.Code != CodeUnresolvedCall {
		t.Errorf("code = %q, want %q (error: %s)", e.Code, CodeUnresolvedCall, e.Error)
	}
}
