package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"uafcheck"
	"uafcheck/internal/obs"
	"uafcheck/internal/wire"
)

// postNDJSON sends a prebuilt NDJSON body and returns the response
// lines.
func postNDJSON(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, [][]byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return resp, lines
}

// deltaBody renders DeltaRequest lines as one NDJSON request body.
func deltaBody(t *testing.T, reqs ...DeltaRequest) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, r := range reqs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestDeltaStreamByteIdentity is the /v1/delta acceptance bar: every
// line of the stream — cold, warm after an edit, and fully warm — must
// be byte-identical to the canonical encoding of a from-scratch run,
// and the warm lines must actually have been served incrementally.
func TestDeltaStreamByteIdentity(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	proc := func(i, v int) string {
		return fmt.Sprintf("proc p%d() {\n  var x: int = 0;\n  begin with (ref x) {\n    x = %d;\n  }\n}\n", i, v)
	}
	v1 := proc(0, 1) + proc(1, 1) + proc(2, 1)
	v2 := proc(0, 1) + proc(1, 7) + proc(2, 1) // edit p1 only

	body := deltaBody(t,
		DeltaRequest{Name: "w.chpl", Src: v1},
		DeltaRequest{Name: "w.chpl", Src: v2},
		DeltaRequest{Name: "w.chpl", Src: v2},
	)
	resp, lines := postNDJSON(t, ts, "/v1/delta", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d response lines, want 3", len(lines))
	}
	for i, src := range []string{v1, v2, v2} {
		rep, err := uafcheck.AnalyzeContext(context.Background(), "w.chpl", src,
			uafcheck.WithPrune(true), uafcheck.WithParallelism(1))
		want, encErr := wire.NewResult("w.chpl", rep, err, false).Encode()
		if encErr != nil {
			t.Fatal(encErr)
		}
		if !bytes.Equal(lines[i], want) {
			t.Errorf("line %d differs from canonical encoding\n server: %s\nlibrary: %s", i, lines[i], want)
		}
	}

	m := srv.MetricsSnapshot()
	if got := m.Counter(obs.CtrServerDeltaFiles); got != 3 {
		t.Errorf("%s = %d, want 3", obs.CtrServerDeltaFiles, got)
	}
	// Line 2 recomputes only p1 (2 hits); line 3 hits all three units.
	if got := m.Counter(obs.CtrUnitHits); got != 5 {
		t.Errorf("%s = %d, want 5", obs.CtrUnitHits, got)
	}
	if got := m.Counter(obs.CtrUnitMisses); got != 4 {
		t.Errorf("%s = %d, want 4", obs.CtrUnitMisses, got)
	}
}

// TestDeltaStreamBadLines: malformed or empty lines answer with an
// error line and the stream keeps going.
func TestDeltaStreamBadLines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := []byte("{not json\n\n{\"name\":\"ok.chpl\",\"src\":\"proc p() { }\"}\n")
	resp, lines := postNDJSON(t, ts, "/v1/delta", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (error + result): %q", len(lines), lines)
	}
	var e errorBody
	if err := json.Unmarshal(lines[0], &e); err != nil || e.Error == "" {
		t.Errorf("line 0 should be an error envelope, got %s", lines[0])
	}
	var res wire.Result
	if err := json.Unmarshal(lines[1], &res); err != nil || res.Status != "ok" {
		t.Errorf("line 1 should be an ok result, got %s", lines[1])
	}
}

// TestDeltaFrontendError: a parse failure surfaces as a status "error"
// line mid-stream, consistent with the 422 classification of the
// single-shot endpoint.
func TestDeltaFrontendError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := deltaBody(t, DeltaRequest{Name: "bad.chpl", Src: "proc ( {"})
	resp, lines := postNDJSON(t, ts, "/v1/delta", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var res wire.Result
	if err := json.Unmarshal(lines[0], &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "error" || res.Error == "" {
		t.Errorf("want status error with message, got %s", lines[0])
	}
	if res.APIVersion != wire.APIVersion {
		t.Errorf("api_version = %q, want %q", res.APIVersion, wire.APIVersion)
	}
}

// TestDeprecatedAliases: the unversioned pre-v1 routes keep serving the
// exact versioned bytes while flagging themselves deprecated — header
// plus server.deprecated_requests — and the versioned routes stay
// unflagged.
func TestDeprecatedAliases(t *testing.T) {
	// Discard the one-time deprecation warning; TestDeprecatedAliasLogsOnce
	// covers it.
	srv, ts := newTestServer(t, Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	req := AnalyzeRequest{Name: "a.chpl", Src: "proc p() {\n  var x: int = 0;\n  begin with (ref x) {\n    x = 1;\n  }\n}\n"}

	respV, bodyV := post(t, ts, "/v1/analyze", req)
	if respV.StatusCode != http.StatusOK {
		t.Fatalf("/v1/analyze status %d", respV.StatusCode)
	}
	if respV.Header.Get("Deprecation") != "" {
		t.Error("/v1/analyze must not be marked deprecated")
	}
	if got := srv.MetricsSnapshot().Counter(obs.CtrServerDeprecated); got != 0 {
		t.Fatalf("%s = %d after versioned request, want 0", obs.CtrServerDeprecated, got)
	}

	respA, bodyA := post(t, ts, "/analyze", req)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("/analyze status %d", respA.StatusCode)
	}
	if respA.Header.Get("Deprecation") != "true" {
		t.Error("/analyze should set the Deprecation header")
	}
	if link := respA.Header.Get("Link"); link != `</v1/analyze>; rel="successor-version"` {
		t.Errorf("Link = %q", link)
	}
	if !bytes.Equal(bodyA, bodyV) {
		t.Errorf("alias bytes differ from versioned bytes\n  alias: %s\nversion: %s", bodyA, bodyV)
	}

	respB, _ := post(t, ts, "/analyze-batch", BatchRequest{Files: []BatchFile{{Name: "a.chpl", Src: req.Src}}})
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("/analyze-batch status %d", respB.StatusCode)
	}
	if respB.Header.Get("Deprecation") != "true" {
		t.Error("/analyze-batch should set the Deprecation header")
	}
	if got := srv.MetricsSnapshot().Counter(obs.CtrServerDeprecated); got != 2 {
		t.Errorf("%s = %d, want 2", obs.CtrServerDeprecated, got)
	}
	// /v1/delta is versioned-only: the unversioned spelling must 404.
	respD, _ := post(t, ts, "/delta", struct{}{})
	if respD.StatusCode != http.StatusNotFound {
		t.Errorf("/delta status %d, want 404", respD.StatusCode)
	}
}
