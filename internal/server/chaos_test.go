package server

// The chaos suite drives uafserve through the resilient internal/client
// under deterministic fault injection (internal/fault) and checks the
// robustness contract from docs/RECOVERY.md:
//
//  1. the server never returns a 5xx (or 429) without Retry-After
//     guidance — verified at the transport layer, so retried attempts
//     count too;
//  2. a corrupt cache entry is never served: every 200 body is either
//     byte-identical to the fault-free canonical encoding or a flagged
//     degraded result (Report.Degraded set);
//  3. flagged results obey the degradation ladder — budget/deadline
//     degradations carry a conservative superset of the fault-free
//     warnings, panic crashes are flagged "crashed" (a crashed proc's
//     warnings are lost, so supersets cannot be promised there).
//
// Every scenario runs on a fixed seed matrix: same seeds, same fault
// schedule, same outcome. The global injector means these tests must
// not use t.Parallel.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"uafcheck"
	"uafcheck/internal/client"
	"uafcheck/internal/fault"
	"uafcheck/internal/wire"
)

// recordingTransport observes every individual HTTP attempt — including
// the ones the retrying client absorbs — so invariants about response
// headers can be asserted over the full wire history.
type recordingTransport struct {
	next http.RoundTripper

	mu       sync.Mutex
	attempts []attemptRecord
}

type attemptRecord struct {
	path       string
	status     int
	retryAfter string
}

func (rt *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := rt.next.RoundTrip(req)
	if err == nil {
		rt.mu.Lock()
		rt.attempts = append(rt.attempts, attemptRecord{
			path:       req.URL.Path,
			status:     resp.StatusCode,
			retryAfter: resp.Header.Get("Retry-After"),
		})
		rt.mu.Unlock()
	}
	return resp, err
}

// checkRetryAfterInvariant fails the test for every observed 5xx or 429
// that arrived without Retry-After guidance.
func (rt *recordingTransport) checkRetryAfterInvariant(t *testing.T) {
	t.Helper()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, a := range rt.attempts {
		if (a.status >= 500 || a.status == http.StatusTooManyRequests) && a.retryAfter == "" {
			t.Errorf("%s answered %d without Retry-After", a.path, a.status)
		}
	}
}

func (rt *recordingTransport) count(status int) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for _, a := range rt.attempts {
		if a.status == status {
			n++
		}
	}
	return n
}

// chaosClient builds an internal/client with a test-sized retry
// schedule over the recording transport. Retry-After floors are capped
// by MaxBackoff so honoring the server's 1s guidance does not slow the
// suite down.
func chaosClient(rt *recordingTransport, seed int64) *client.Client {
	return client.New(client.Config{
		HTTP:        &http.Client{Transport: rt},
		Seed:        seed,
		MaxAttempts: 8,
		Budget:      time.Minute,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  25 * time.Millisecond,
		BreakAfter:  1 << 20, // the matrix asserts on responses, not breaker behavior
	})
}

// chaosCorpus is a deterministic slice of the acceptance corpus — big
// enough to give the probability streams room, small enough to keep the
// seed matrix fast under -race.
func chaosCorpus(t *testing.T) []uafcheck.FileInput {
	files := loadCorpus(t)
	if len(files) > 6 {
		files = files[:6]
	}
	return files
}

// chaosBaseline computes the fault-free canonical encoding per file —
// the byte-identity reference. Must be called before any injector is
// armed.
func chaosBaseline(t *testing.T, files []uafcheck.FileInput) map[string][]byte {
	t.Helper()
	if fault.Active() != nil {
		t.Fatal("baseline must be computed fault-free")
	}
	base := make(map[string][]byte, len(files))
	for _, f := range files {
		rep, err := uafcheck.AnalyzeContext(context.Background(), f.Name, f.Src,
			uafcheck.WithPrune(true),
			uafcheck.WithParallelism(1),
			uafcheck.WithDeadline(30*time.Second))
		want, encErr := wire.NewResult(f.Name, rep, err, false).Encode()
		if encErr != nil {
			t.Fatalf("%s: encode baseline: %v", f.Name, encErr)
		}
		base[f.Name] = want
	}
	return base
}

// warningSet renders a report's warnings as a sorted multiset key list.
func warningSet(rep *uafcheck.Report) []string {
	if rep == nil {
		return nil
	}
	out := make([]string, len(rep.Warnings))
	for i, w := range rep.Warnings {
		w.Conservative = false // superset compare ignores the flag
		w.Prov = nil
		out[i] = w.String()
	}
	sort.Strings(out)
	return out
}

// isSuperset reports whether sup contains every element of sub
// (multiset semantics).
func isSuperset(sup, sub []string) bool {
	have := make(map[string]int, len(sup))
	for _, s := range sup {
		have[s]++
	}
	for _, s := range sub {
		have[s]--
		if have[s] < 0 {
			return false
		}
	}
	return true
}

// verifyChaosBody enforces invariant 2 and 3 on one 200 response body.
func verifyChaosBody(t *testing.T, name string, body, want []byte) {
	t.Helper()
	got := bytes.TrimSuffix(body, []byte("\n"))
	if bytes.Equal(got, want) {
		return // byte-identical to the fault-free run
	}
	var res, base wire.Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Errorf("%s: served undecodable body (corrupt entry?): %v\n%s", name, err, got)
		return
	}
	if err := json.Unmarshal(want, &base); err != nil {
		t.Fatalf("%s: baseline undecodable: %v", name, err)
	}
	if res.Name != name {
		t.Errorf("%s: served result for %q (corrupt or cross-wired entry)", name, res.Name)
		return
	}
	switch res.Status {
	case "crashed":
		// A panic-crashed proc's warnings are lost, not inflated — the
		// contract is an honest flag, not a superset.
		if res.Report == nil || res.Report.Degraded == nil {
			t.Errorf("%s: status crashed without Report.Degraded", name)
		}
	case "degraded", "timed-out":
		if res.Report == nil || res.Report.Degraded == nil {
			t.Errorf("%s: status %s without Report.Degraded", name, res.Status)
			return
		}
		if !isSuperset(warningSet(res.Report), warningSet(base.Report)) {
			t.Errorf("%s: degraded result is not a conservative superset of the fault-free warnings", name)
		}
	default:
		t.Errorf("%s: unflagged divergence from the fault-free bytes (status %q)\n served: %s\nfault-free: %s",
			name, res.Status, got, want)
	}
}

// TestChaosMatrix runs the fixed (scenario x seed) grid: each cell arms
// one injector, drives two servers sharing a disk cache directory
// through the retrying client (the second server starts cold in memory,
// so pass 2 reads — and checksum-verifies — what pass 1 persisted), and
// checks the full contract.
func TestChaosMatrix(t *testing.T) {
	files := chaosCorpus(t)
	base := chaosBaseline(t, files)

	scenarios := []struct {
		name  string
		rules []fault.Rule
	}{
		{"disk-write-err", []fault.Rule{
			{Point: fault.CacheWrite, Mode: fault.ModeError, Prob: 0.5},
		}},
		{"torn-writes", []fault.Rule{
			{Point: fault.CacheTorn, Mode: fault.ModeTorn, Prob: 0.7},
		}},
		{"disk-read-err", []fault.Rule{
			{Point: fault.CacheRead, Mode: fault.ModeError, Prob: 0.5},
		}},
		{"analysis-panics", []fault.Rule{
			{Point: fault.AnalysisPanic, Mode: fault.ModePanic, Prob: 0.4},
		}},
		{"mixed", []fault.Rule{
			{Point: fault.CacheWrite, Mode: fault.ModeError, Prob: 0.3},
			{Point: fault.CacheTorn, Mode: fault.ModeTorn, Prob: 0.3},
			{Point: fault.CacheRead, Mode: fault.ModeError, Prob: 0.3},
			{Point: fault.AnalysisPanic, Mode: fault.ModePanic, Prob: 0.15},
		}},
	}
	seeds := []int64{1, 7}

	for _, sc := range scenarios {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", sc.name, seed), func(t *testing.T) {
				dir := t.TempDir()
				in := fault.New(seed, sc.rules...)
				restore := fault.Set(in)
				defer restore()

				rt := &recordingTransport{next: http.DefaultTransport}
				cl := chaosClient(rt, seed)
				ctx := context.Background()

				// Two passes, two server generations over one cache dir.
				for pass := 0; pass < 2; pass++ {
					cache := uafcheck.NewCache(uafcheck.CacheConfig{Dir: dir})
					_, ts := newTestServer(t, Config{Cache: cache})
					for _, f := range files {
						body, err := json.Marshal(AnalyzeRequest{Name: f.Name, Src: f.Src})
						if err != nil {
							t.Fatal(err)
						}
						resp, err := cl.Post(ctx, ts.URL+"/v1/analyze", "application/json", body)
						if err != nil {
							t.Fatalf("pass %d: %s: %v", pass, f.Name, err)
						}
						out := readAll(t, resp)
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("pass %d: %s: status %d, body %s", pass, f.Name, resp.StatusCode, out)
						}
						verifyChaosBody(t, f.Name, out, base[f.Name])
					}
				}

				rt.checkRetryAfterInvariant(t)

				// A scenario whose faults never fired proves nothing —
				// deterministic streams make this a stable assertion.
				fired := int64(0)
				for _, r := range sc.rules {
					fired += in.Fired(r.Point)
				}
				if fired == 0 {
					t.Errorf("scenario vacuous: no fault fired (hits per point: %v)",
						func() map[string]int64 {
							m := make(map[string]int64)
							for _, r := range sc.rules {
								m[r.Point] = in.Hits(r.Point)
							}
							return m
						}())
				}
			})
		}
	}
}

// TestChaosAdmissionStorm floods a 1-slot, 0-queue server with slow
// analyses from concurrent retrying clients: every rejection must carry
// Retry-After, and every request must eventually land through retries.
func TestChaosAdmissionStorm(t *testing.T) {
	restore := fault.Set(fault.New(1, fault.Rule{
		Point: fault.AnalysisDelay, Mode: fault.ModeDelay, Prob: 1, Delay: 25 * time.Millisecond,
	}))
	defer restore()

	_, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: -1})
	rt := &recordingTransport{next: http.DefaultTransport}

	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := chaosClient(rt, int64(i+1))
			// Distinct proc names defeat the dedup layer and the report
			// cache, so every caller really competes for the one slot.
			src := fanoutSrc(fmt.Sprintf("storm%d", i), 2)
			body, err := json.Marshal(AnalyzeRequest{Name: fmt.Sprintf("storm%d.chpl", i), Src: src})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := cl.Post(context.Background(), ts.URL+"/v1/analyze", "application/json", body)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	rt.checkRetryAfterInvariant(t)
	if rt.count(http.StatusTooManyRequests) == 0 {
		t.Error("storm never produced a 429 — admission control untested")
	}
}

// TestChaosKillAndRestart simulates a crash between server generations:
// generation 1 populates the disk tier, the "crash" corrupts two
// entries and leaves a stale temp file behind, and generation 2 must
// quarantine the damage on startup and answer every request
// byte-identically via cold recompute.
func TestChaosKillAndRestart(t *testing.T) {
	files := chaosCorpus(t)
	base := chaosBaseline(t, files)
	dir := t.TempDir()

	// Generation 1: populate the disk tier (synchronous writes land
	// before the handler returns).
	cache1 := uafcheck.NewCache(uafcheck.CacheConfig{Dir: dir})
	_, ts1 := newTestServer(t, Config{Cache: cache1})
	for _, f := range files {
		resp, body := post(t, ts1, "/v1/analyze", AnalyzeRequest{Name: f.Name, Src: f.Src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", f.Name, resp.StatusCode, body)
		}
	}

	// The crash: flip a byte in two persisted entries, strand a temp
	// file from an interrupted write.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) < 2 {
		t.Fatalf("disk tier not populated: %d entries (%v)", len(entries), err)
	}
	sort.Strings(entries)
	for _, p := range entries[:2] {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x20
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "put-1234567"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Generation 2: the startup recovery scan (what uafserve runs for
	// -cache-dir) quarantines the corruption and sweeps the temp file.
	cache2 := uafcheck.NewCache(uafcheck.CacheConfig{Dir: dir})
	rs := cache2.Recover()
	if rs.Quarantined != 2 || rs.TempFiles != 1 {
		t.Fatalf("recovery = %+v, want 2 quarantined / 1 temp file", rs)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(quarantined) != 2 {
		t.Fatalf("quarantine dir holds %d files, want 2", len(quarantined))
	}

	_, ts2 := newTestServer(t, Config{Cache: cache2})
	for _, f := range files {
		resp, body := post(t, ts2, "/v1/analyze", AnalyzeRequest{Name: f.Name, Src: f.Src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restart: %s: status %d", f.Name, resp.StatusCode)
		}
		if got := bytes.TrimSuffix(body, []byte("\n")); !bytes.Equal(got, base[f.Name]) {
			t.Errorf("restart: %s: bytes differ from fault-free baseline (corrupt entry served?)", f.Name)
		}
	}
	if st := cache2.Stats(); st.Quarantined < 2 {
		t.Errorf("cache stats quarantined = %d, want >= 2", st.Quarantined)
	}
}

// TestHealthzComponents checks the component-health fold: a wedged
// registered probe makes /healthz unready (503 with Retry-After), a
// merely degraded disk tier keeps serving at 200 "degraded".
func TestHealthzComponents(t *testing.T) {
	var mu sync.Mutex
	state := "ok"
	probe := func() ComponentStatus {
		mu.Lock()
		defer mu.Unlock()
		return ComponentStatus{State: state, Detail: map[string]int64{"restarts": 1}}
	}
	_, ts := newTestServer(t, Config{Components: map[string]func() ComponentStatus{"watchdog": probe}})

	decode := func(body []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return m
	}

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || decode(body)["status"] != "ok" {
		t.Fatalf("healthy server: status %d, body %s", resp.StatusCode, body)
	}
	comps, _ := decode(body)["components"].(map[string]any)
	for _, want := range []string{"admission", "disk_cache", "analyzer_pool", "watchdog"} {
		if _, ok := comps[want]; !ok {
			t.Errorf("healthz components missing %q: %s", want, body)
		}
	}

	mu.Lock()
	state = "degraded"
	mu.Unlock()
	resp, body = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || decode(body)["status"] != "degraded" {
		t.Errorf("degraded probe: status %d, body %s — want 200 'degraded' (still serving)", resp.StatusCode, body)
	}

	mu.Lock()
	state = "wedged"
	mu.Unlock()
	resp, body = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || decode(body)["status"] != "wedged" {
		t.Errorf("wedged probe: status %d, body %s — want 503 'wedged'", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("unready healthz answered without Retry-After")
	}

	// /statusz carries the same component rows for operators.
	resp, body = get(t, ts, "/statusz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"watchdog\"") {
		t.Errorf("statusz missing component rows: status %d, body %s", resp.StatusCode, body)
	}
}

// TestChaosRepairRefusal drives /v1/repair under analysis panics: the
// repair-verify loop sees crashed (degraded) evidence on every
// attempt, so the endpoint must answer the typed refusal — 503 with
// code "repair_degraded" and Retry-After — and must never serve a
// patch line derived from degraded analysis. Dropping the injector
// afterwards is the control: the same request then repairs clean, so
// the refusal above was the faults' doing, not a broken endpoint.
func TestChaosRepairRefusal(t *testing.T) {
	src, err := os.ReadFile("../../testdata/figure1.chpl")
	if err != nil {
		t.Fatal(err)
	}
	req := AnalyzeRequest{Name: "figure1.chpl", Src: string(src)}

	in := fault.New(3, fault.Rule{
		Point: fault.AnalysisPanic, Mode: fault.ModePanic, Prob: 1,
	})
	restore := fault.Set(in)
	_, ts := newTestServer(t, Config{})

	for i := 0; i < 3; i++ {
		resp, body := post(t, ts, "/v1/repair", req)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d: status %d, want 503; body %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("attempt %d: refusal without Retry-After", i)
		}
		var eb errorBody
		if err := json.Unmarshal(bytes.TrimSpace(body), &eb); err != nil {
			t.Fatalf("attempt %d: refusal body not a single JSON error: %v\n%s", i, err, body)
		}
		if eb.Code != CodeRepairDegraded {
			t.Errorf("attempt %d: code = %q, want %q", i, eb.Code, CodeRepairDegraded)
		}
		if strings.Contains(string(body), "\"kind\":\"patch\"") || strings.Contains(string(body), "+++ b/") {
			t.Fatalf("attempt %d: degraded repair served patch material: %s", i, body)
		}
	}
	if in.Fired(fault.AnalysisPanic) == 0 {
		t.Fatal("scenario vacuous: no analysis panic fired")
	}
	restore()

	// Control: fault-free, the same request must repair clean with
	// verified patches — the server survived the chaos undamaged.
	resp, body := post(t, ts, "/v1/repair", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control: status %d, body %s", resp.StatusCode, body)
	}
	recs := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	var sawPatch bool
	var sum *wire.RepairSummary
	for _, rec := range recs {
		var l wire.RepairLine
		if err := json.Unmarshal([]byte(rec), &l); err != nil {
			t.Fatalf("control: bad NDJSON record: %v\n%s", err, rec)
		}
		switch l.Kind {
		case wire.RepairKindPatch:
			sawPatch = true
			if !l.Patch.Verdict.Verified {
				t.Fatalf("control: unverified patch served: %+v", l.Patch)
			}
		case wire.RepairKindSummary:
			sum = l.Summary
		}
	}
	if !sawPatch || sum == nil || sum.Status != wire.RepairStatusClean {
		t.Fatalf("control: expected a clean repair with patches, got %s", body)
	}
}

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
