package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uafcheck"
	"uafcheck/internal/wire"
)

// repairCorpus loads the canonical repairable source (figure 1 of the
// paper: a fire-and-forget begin leaking an outer variable).
func repairCorpus(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/figure1.chpl")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// decodeRepairStream parses an NDJSON repair response into its lines.
func decodeRepairStream(t *testing.T, body []byte) []wire.RepairLine {
	t.Helper()
	var lines []wire.RepairLine
	for _, rec := range strings.Split(strings.TrimSuffix(string(body), "\n"), "\n") {
		var l wire.RepairLine
		if err := json.Unmarshal([]byte(rec), &l); err != nil {
			t.Fatalf("bad NDJSON record %q: %v", rec, err)
		}
		lines = append(lines, l)
	}
	return lines
}

// TestRepairEndpoint is the acceptance path of POST /v1/repair: the
// NDJSON stream carries one verified patch per line plus a terminal
// summary, the summary diff applies cleanly with patch(1), and
// re-analyzing the patched source locally reproduces the served
// verdict.
func TestRepairEndpoint(t *testing.T) {
	src := repairCorpus(t)
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts, "/v1/repair", AnalyzeRequest{Name: "figure1.chpl", Src: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	lines := decodeRepairStream(t, body)
	if len(lines) < 2 {
		t.Fatalf("want at least one patch line plus a summary, got %d lines", len(lines))
	}
	for i, l := range lines[:len(lines)-1] {
		if l.Kind != wire.RepairKindPatch || l.Patch == nil {
			t.Fatalf("line %d is not a patch line: %+v", i, l)
		}
		if !l.Patch.Verdict.Verified {
			t.Fatalf("line %d carries an unverified patch", i)
		}
		if l.APIVersion != wire.APIVersion {
			t.Fatalf("line %d lacks api_version", i)
		}
	}
	sum := lines[len(lines)-1]
	if sum.Kind != wire.RepairKindSummary || sum.Summary == nil {
		t.Fatalf("stream does not end in a summary: %+v", sum)
	}
	if sum.Summary.Status != wire.RepairStatusClean || sum.Summary.RemainingWarnings != 0 {
		t.Fatalf("figure1 should repair clean: %+v", sum.Summary)
	}

	// Apply the cumulative diff with the real patch(1) and re-analyze:
	// the endpoint's verdict must match a local analysis of the result.
	patchBin, err := exec.LookPath("patch")
	if err != nil {
		t.Skip("patch(1) not installed")
	}
	dir := t.TempDir()
	// patch -p1 strips the a/-prefix, so the target lives at the dir root.
	target := filepath.Join(dir, "figure1.chpl")
	if err := os.WriteFile(target, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(patchBin, "-p1", "--no-backup-if-mismatch")
	cmd.Dir = dir
	cmd.Stdin = strings.NewReader(sum.Summary.Diff)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("patch(1) failed: %v\n%s", err, out)
	}
	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := uafcheck.AnalyzeContext(context.Background(), "figure1.chpl", string(fixed),
		uafcheck.WithDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) != sum.Summary.RemainingWarnings {
		t.Fatalf("re-analysis of patched source found %d warnings, summary says %d",
			len(rep.Warnings), sum.Summary.RemainingWarnings)
	}
}

// TestRepairDegradedRefusalHTTP: a starved state budget degrades the
// evidence, and the endpoint answers the typed refusal — 503, a
// machine-readable code, Retry-After — with no patch line anywhere in
// the body.
func TestRepairDegradedRefusalHTTP(t *testing.T) {
	src := repairCorpus(t)
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts, "/v1/repair", AnalyzeRequest{
		Name: "figure1.chpl", Src: src,
		Options: RequestOptions{MaxStates: 2},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("refusal without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(bytes.TrimSpace(body), &eb); err != nil {
		t.Fatalf("refusal body is not a single JSON error: %v\n%s", err, body)
	}
	if eb.Code != CodeRepairDegraded {
		t.Fatalf("code = %q, want %q", eb.Code, CodeRepairDegraded)
	}
	if strings.Contains(string(body), "\"kind\":\"patch\"") {
		t.Fatalf("refused repair must not serve a patch: %s", body)
	}
}

// TestRepairParseErrorHTTP: frontend failures are the client's fault —
// 422 with the parse_error code.
func TestRepairParseErrorHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/repair", AnalyzeRequest{Name: "bad.chpl", Src: "proc { nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422; body %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(bytes.TrimSpace(body), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != CodeParseError {
		t.Fatalf("code = %q, want %q", eb.Code, CodeParseError)
	}
}

// postWith sends body as JSON with extra request headers.
func postWith(t *testing.T, ts *httptest.Server, path string, headers map[string]string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// checkSARIFFixes decodes a SARIF response and asserts the repairable
// file's warnings carry embedded fixes.
func checkSARIFFixes(t *testing.T, body []byte) {
	t.Helper()
	var log wire.SARIFLog
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatalf("response is not SARIF: %v\n%s", err, body)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("malformed SARIF document: %s", body)
	}
	run := log.Runs[0]
	if len(run.Tool.Driver.Rules) == 0 {
		t.Fatal("SARIF run has no rule metadata")
	}
	sawFix := false
	for _, res := range run.Results {
		if len(res.Fixes) > 0 {
			sawFix = true
			if len(res.Fixes[0].ArtifactChanges) == 0 ||
				len(res.Fixes[0].ArtifactChanges[0].Replacements) == 0 {
				t.Fatalf("fix without replacements: %+v", res.Fixes[0])
			}
		}
	}
	if !sawFix {
		t.Fatalf("no result carries a fix: %s", body)
	}
}

// TestAnalyzeSARIFNegotiation: both negotiation spellings — the Accept
// header and ?format=sarif — switch /v1/analyze to the SARIF
// projection with verified repair patches embedded as fixes.
func TestAnalyzeSARIFNegotiation(t *testing.T) {
	src := repairCorpus(t)
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Name: "figure1.chpl", Src: src}

	resp, body := postWith(t, ts, "/v1/analyze",
		map[string]string{"Accept": "application/sarif+json"}, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sarif+json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	checkSARIFFixes(t, body)

	resp2, body2 := post(t, ts, "/v1/analyze?format=sarif", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/sarif+json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	checkSARIFFixes(t, body2)

	// Without negotiation the canonical JSON result is untouched.
	resp3, body3 := post(t, ts, "/v1/analyze", req)
	if ct := resp3.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("unnegotiated Content-Type = %q", ct)
	}
	var res wire.Result
	if err := json.Unmarshal(bytes.TrimSpace(body3), &res); err != nil {
		t.Fatalf("canonical result: %v", err)
	}
}

// TestBatchSARIFNegotiation: a negotiated batch answers one aggregate
// SARIF document covering every file, fixes embedded for repairable
// ones.
func TestBatchSARIFNegotiation(t *testing.T) {
	src := repairCorpus(t)
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts, "/v1/analyze-batch?format=sarif", BatchRequest{
		Files: []BatchFile{
			{Name: "figure1.chpl", Src: src},
			{Name: "clean.chpl", Src: "proc ok() {\n  var x: int = 1;\n  x = 2;\n}\n"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sarif+json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	checkSARIFFixes(t, body)
}

// TestUnversionedSunsetHeaders: the deprecated aliases answer with the
// full RFC deprecation header set — Deprecation, Link to the
// successor, and the Sunset date — while the versioned routes carry
// none of them.
func TestUnversionedSunsetHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{Name: "a.chpl", Src: "proc ok() {\n  var x: int = 1;\n}\n"}

	for path, successor := range map[string]string{
		"/analyze":       "/v1/analyze",
		"/analyze-batch": "/v1/analyze-batch",
	} {
		var resp *http.Response
		if path == "/analyze-batch" {
			resp, _ = post(t, ts, path, BatchRequest{Files: []BatchFile{{Name: req.Name, Src: req.Src}}})
		} else {
			resp, _ = post(t, ts, path, req)
		}
		if got := resp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("%s: Deprecation = %q, want true", path, got)
		}
		if got := resp.Header.Get("Sunset"); got != UnversionedSunset {
			t.Errorf("%s: Sunset = %q, want %q", path, got, UnversionedSunset)
		}
		if got := resp.Header.Get("Link"); !strings.Contains(got, successor) {
			t.Errorf("%s: Link = %q, want successor %s", path, got, successor)
		}
	}

	resp, _ := post(t, ts, "/v1/analyze", req)
	for _, h := range []string{"Deprecation", "Sunset", "Link"} {
		if got := resp.Header.Get(h); got != "" {
			t.Errorf("/v1/analyze: unexpected %s header %q", h, got)
		}
	}
}
