//go:build loadtest

// End-to-end load test of the real uafserve binary (not the in-process
// handler): builds cmd/uafserve and cmd/uafcheck, boots the daemon on
// an ephemeral port, drives it with concurrent clients over the shared
// corpus, and checks the acceptance bar of the service:
//
//   - every server response is byte-identical to `uafcheck -par 1
//     -format=json` for the same file;
//   - an overloaded server answers 429 (never a dropped connection);
//   - identical concurrent requests are deduplicated (dedup counter);
//   - SIGTERM delivers every in-flight response before the process
//     exits cleanly.
//
// Run via `make loadtest` (go test -race -tags loadtest ./internal/server/).
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"uafcheck/internal/obs"
)

// buildBinary compiles a command into dir and returns the binary path.
func buildBinary(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startServer boots uafserve on an ephemeral port and returns its base
// URL plus the running process.
func startServer(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "uafserve: listening on "); ok {
			go io.Copy(io.Discard, stdout) // keep draining so the child never blocks
			return "http://" + addr, cmd
		}
	}
	t.Fatalf("uafserve never announced its address (scanner err: %v)", sc.Err())
	return "", nil
}

func postSrc(t *testing.T, base, name, src string, deadlineMS int) (*http.Response, []byte) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"src":%q,"options":{"deadline_ms":%d}}`, name, src, deadlineMS)
	resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return resp, out
}

func TestLoadEndToEnd(t *testing.T) {
	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "uafcheck/cmd/uafserve")
	checkBin := buildBinary(t, dir, "uafcheck/cmd/uafcheck")

	base, cmd := startServer(t, serveBin,
		"-inflight", "2", "-queue", "2", "-cache-dir", filepath.Join(dir, "cache"))
	defer cmd.Process.Kill()

	files := loadCorpus(t)

	// 1. Byte-identity: server response == CLI -par 1 -format=json, for
	// every corpus file. The CLI reads from disk, so hand it the real
	// paths; the server gets (basename, contents).
	for _, f := range files {
		cli := exec.Command(checkBin, "-par", "1", "-format=json", filepath.Join(corpusDir, f.Name))
		cli.Dir = "."
		cliOut, _ := cli.Output() // exit 1 just means warnings
		// The CLI names results by path; rewrite to the basename the
		// server was given so the comparison targets the analysis bytes.
		cliLine := bytes.TrimSuffix(cliOut, []byte("\n"))
		cliLine = bytes.Replace(cliLine,
			[]byte(fmt.Sprintf(`"name":%q`, filepath.Join(corpusDir, f.Name))),
			[]byte(fmt.Sprintf(`"name":%q`, f.Name)), 1)
		cliLine = bytes.ReplaceAll(cliLine,
			[]byte(filepath.Join(corpusDir, f.Name)), []byte(f.Name))

		resp, body := postSrc(t, base, f.Name, f.Src, 0)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", f.Name, resp.StatusCode, body)
		}
		if got := bytes.TrimSuffix(body, []byte("\n")); !bytes.Equal(got, cliLine) {
			t.Errorf("%s: server and CLI bytes differ\nserver: %s\n   cli: %s", f.Name, got, cliLine)
		}
	}

	// 2. Dedup: a concurrent burst of identical slow requests. At least
	// one follower must ride the leader's flight.
	slow := fanoutSrc("dedup", 12)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postSrc(t, base, "dedup.chpl", slow, 0)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("dedup burst: status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()

	// 3. Overload: distinct slow requests past slots+queue must draw
	// 429s with Retry-After, and every client still gets an HTTP
	// response (http.Post errors on dropped connections). While the
	// burst is in flight, the observability surface must stay
	// responsive: /debug/requests and /statusz answer 200 under load.
	var rejected, succeeded int
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("ov%d", i)
			resp, _ := postSrc(t, base, name+".chpl", fanoutSrc(name, 12), 300)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				succeeded++
			case http.StatusTooManyRequests:
				rejected++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				t.Errorf("overload: unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	for _, probe := range []string{"/debug/requests", "/statusz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatalf("GET %s during load: %v", probe, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s during load: status %d", probe, resp.StatusCode)
		}
		if !json.Valid(body) {
			t.Errorf("GET %s during load: invalid JSON: %s", probe, body)
		}
	}
	wg.Wait()
	if succeeded == 0 || rejected == 0 {
		t.Fatalf("overload: ok=%d rejected=%d, want both > 0", succeeded, rejected)
	}

	// 3b. Flight recorder: a fresh request's trace ID (echoed in the
	// traceparent header) resolves to a span-tree digest.
	respT, _ := postSrc(t, base, "traced.chpl", fanoutSrc("traced", 6), 0)
	parts := strings.Split(respT.Header.Get("traceparent"), "-")
	if len(parts) != 4 {
		t.Fatalf("bad traceparent %q", respT.Header.Get("traceparent"))
	}
	respD, err := http.Get(base + "/debug/requests?trace=" + parts[1])
	if err != nil {
		t.Fatal(err)
	}
	digest, _ := io.ReadAll(respD.Body)
	respD.Body.Close()
	if respD.StatusCode != http.StatusOK {
		t.Errorf("trace lookup: status %d: %s", respD.StatusCode, digest)
	}
	for _, want := range []string{`"spans"`, `"pps-wave"`, `"route":"/v1/analyze"`} {
		if !strings.Contains(string(digest), want) {
			t.Errorf("digest missing %s:\n%s", want, digest)
		}
	}

	// 4. Counters: the daemon's own view must agree, and the whole
	// exposition must parse as valid Prometheus text format.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.ValidatePromText(metrics); err != nil {
		t.Errorf("/metrics fails prometheus lint: %v", err)
	}
	for _, probe := range []string{"uafcheck_server_dedup_hits", "uafcheck_server_rejects"} {
		val := int64(-1)
		for _, line := range strings.Split(string(metrics), "\n") {
			if strings.HasPrefix(line, probe+" ") {
				fmt.Sscanf(line, probe+" %d", &val)
			}
		}
		if val <= 0 {
			t.Errorf("%s = %d, want > 0\n%s", probe, val, metrics)
		}
	}

	// 5. Graceful shutdown: launch in-flight work, SIGTERM the daemon,
	// and require complete 200 responses plus a clean exit.
	results := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			name := fmt.Sprintf("drain%d", i)
			resp, body := postSrc(t, base, name+".chpl", fanoutSrc(name, 11), 0)
			if resp.StatusCode == http.StatusOK && !bytes.Contains(body, []byte(`"status"`)) {
				t.Errorf("drain %d: truncated body %s", i, body)
			}
			results <- resp.StatusCode
		}(i)
	}
	time.Sleep(150 * time.Millisecond) // let the requests reach the server
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var delivered int
	for i := 0; i < 4; i++ {
		if code := <-results; code == http.StatusOK {
			delivered++
		}
	}
	// Requests admitted before the drain must all complete; ones that
	// arrived after may be 503, but none may be lost mid-body.
	if delivered == 0 {
		t.Error("graceful shutdown delivered no in-flight results")
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("uafserve exited uncleanly: %v", err)
	}
}
