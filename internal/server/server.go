// Package server is the analysis-as-a-service daemon behind
// cmd/uafserve: an HTTP/JSON front end that maps network requests onto
// the existing library stack — the resource governor (per-request
// deadlines degrade, never truncate), the fault-isolated batch driver,
// the content-addressed report cache, and the obs telemetry layer.
//
// Operational model:
//
//   - Admission control: at most MaxInflight requests analyze
//     concurrently and at most QueueDepth more wait; beyond that the
//     server answers 429 with a Retry-After estimate immediately, so
//     overload degrades to fast rejections instead of queue collapse.
//   - Deduplication: identical in-flight request bodies share one
//     analysis (singleflight keyed by content address); followers reuse
//     the leader's encoded bytes verbatim. Completed results are served
//     by the shared report cache.
//   - Degradation: a request's deadline/budget rides the library's
//     degradation ladder — responses carry report.degraded and
//     stats.stop_reason exactly like the library API, with HTTP 200.
//   - Graceful shutdown: Shutdown stops admitting (queued waiters get
//     503, /healthz flips), waits for in-flight analyses to finish, and
//     flushes the disk cache tier.
//
// Endpoints: POST /v1/analyze, POST /v1/analyze-batch (NDJSON stream),
// POST /v1/delta (NDJSON in and out, served by a pool of long-lived
// incremental Analyzers), POST /v1/repair (NDJSON stream of verified
// unified-diff patches; degraded evidence answers a typed 503 refusal,
// never a patch), GET /healthz, GET /livez, GET /metrics (Prometheus
// text format). /v1/analyze and /v1/analyze-batch content-negotiate:
// `Accept: application/sarif+json` or `?format=sarif` serves the SARIF
// 2.1.0 projection with verified repair patches embedded as `fixes`.
// The pre-versioning aliases /analyze and /analyze-batch still work
// but mark their responses deprecated (Deprecation/Link/Sunset
// headers) and count server.deprecated_requests; see docs/SERVER.md
// for the versioning and removal policy.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uafcheck"
	"uafcheck/internal/cache"
	"uafcheck/internal/obs"
	"uafcheck/internal/wire"
)

// Config sizes and wires a Server.
type Config struct {
	// MaxInflight bounds concurrently running analyses (0 = GOMAXPROCS).
	MaxInflight int
	// QueueDepth bounds requests waiting for an analysis slot
	// (0 = 64; negative = no queue, reject when slots are full).
	QueueDepth int
	// DefaultDeadline applies to requests that set no deadline_ms
	// (0 = 30s). On expiry the analysis degrades conservatively.
	DefaultDeadline time.Duration
	// MaxDeadline caps any per-request deadline (0 = 2m).
	MaxDeadline time.Duration
	// Parallelism is the per-analysis PPS worker count (0 = 1: request
	// slots are the scaling unit, like file workers in a batch).
	Parallelism int
	// BatchWorkers is the per-request worker-pool size of
	// /v1/analyze-batch (0 = GOMAXPROCS).
	BatchWorkers int
	// MaxBodyBytes bounds a request body (0 = 8 MiB).
	MaxBodyBytes int64
	// Cache, when non-nil, memoizes complete reports across requests —
	// the process-wide tier under the singleflight layer. The server
	// owns its lifecycle: Shutdown flushes and closes it.
	Cache *uafcheck.Cache
	// FlightRecorderSize bounds the /debug/requests digest ring
	// (0 = DefaultFlightRecorderSize).
	FlightRecorderSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are a debugging surface, not a
	// production one.
	EnablePprof bool
	// Logger receives operational log records (nil = slog.Default()).
	Logger *slog.Logger
	// Components registers extra health probes under /healthz and
	// /statusz, keyed by component name — how an embedding process (a
	// watch supervisor, a replication layer) plugs its own state into
	// readiness without this package importing it. Probes must be safe
	// for concurrent use. A probe reporting state "wedged" fails
	// readiness; any non-"ok"/"off" state marks it degraded.
	Components map[string]func() ComponentStatus
	// Mode labels this process's cluster role on /healthz and /statusz
	// ("single", "worker" or "coordinator"; "" = "single") so
	// mixed-role and mixed-version fleets are diagnosable from their
	// health surfaces alone.
	Mode string
	// CachePeer, when non-nil, mounts the cache peer protocol
	// (GET/PUT/DELETE /v1/cache/{key}) over this backend, letting other
	// replicas warm their caches from this one. Typically the local
	// directory backend of Cache — never a remote tier, which would
	// turn a peer fetch into a fan-out.
	CachePeer cache.Backend
}

// ComponentStatus is one component's health row in /healthz and
// /statusz. State is one of "ok", "off" (not configured), "degraded",
// "disabled", "draining" or "wedged"; Detail carries component-specific
// numbers (queue depths, error counts).
type ComponentStatus struct {
	State  string           `json:"state"`
	Detail map[string]int64 `json:"detail,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Mode == "" {
		c.Mode = "single"
	}
	return c
}

// RequestOptions are the per-request analysis knobs, a strict subset of
// the library Options. Absent fields keep library defaults. All fields
// participate in the dedup/cache content address.
type RequestOptions struct {
	// Prune toggles CCFG pruning rules A-D (default true).
	Prune *bool `json:"prune,omitempty"`
	// MaxStates bounds the PPS exploration (0 = library default); the
	// budget rung of the degradation ladder.
	MaxStates int `json:"max_states,omitempty"`
	// DeadlineMS bounds the analysis wall clock; the deadline rung.
	// 0 means the server's DefaultDeadline; values above MaxDeadline
	// are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace records PPS tables on report.pps_traces.
	Trace bool `json:"trace,omitempty"`
	// ModelAtomics / CountAtomics enable the atomics extensions.
	ModelAtomics bool `json:"model_atomics,omitempty"`
	CountAtomics bool `json:"count_atomics,omitempty"`
	// Retries grants timed-out files extra shrinking-budget attempts
	// (batch requests only).
	Retries int `json:"retries,omitempty"`
	// Metrics includes the telemetry snapshot in-band. Responses with
	// metrics are not byte-stable across cache hits (the snapshot
	// legitimately differs), so it is off by default.
	Metrics bool `json:"metrics,omitempty"`
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Name labels the source in warnings ("input.chpl" when empty).
	Name string `json:"name"`
	// Src is the MiniChapel source text.
	Src     string         `json:"src"`
	Options RequestOptions `json:"options"`
}

// BatchFile is one input of a batch request.
type BatchFile struct {
	Name string `json:"name"`
	Src  string `json:"src"`
}

// BatchRequest is the body of POST /v1/analyze-batch.
type BatchRequest struct {
	Files   []BatchFile    `json:"files"`
	Options RequestOptions `json:"options"`
	// Mode selects the analysis shape: "" or "files" (default) analyzes
	// every file independently on the worker pool; "module" links all
	// files into one module (cross-file calls resolve, callee summaries
	// compose) and answers one canonical line per file in input order.
	Mode string `json:"mode,omitempty"`
	// Module labels the module for mode "module"; it participates in
	// cluster routing (ModuleRouteKey) so successive snapshots of the
	// same module keep landing on the same worker. Defaults to the first
	// file's name.
	Module string `json:"module,omitempty"`
}

// DeltaRequest is one line of a POST /v1/delta NDJSON request stream:
// a (possibly re-sent) file to analyze incrementally. Lines sharing an
// option set share a long-lived Analyzer, so re-sending a file after an
// edit only recomputes the procedures the edit touched. Retries and
// Metrics are the only option fields without effect here (delta lines
// are single-shot; metrics snapshots differ per call by design).
type DeltaRequest struct {
	Name    string         `json:"name"`
	Src     string         `json:"src"`
	Options RequestOptions `json:"options"`
	// Module switches the line to module mode: Files carries the full
	// module snapshot (not a diff) and Name/Src are ignored. Lines
	// sharing an option set share the same pooled Analyzer as single-file
	// lines, and its per-unit memo store keys module units on the
	// call-graph view — editing one file recomputes only the units whose
	// composed callee summaries changed. The response is one canonical
	// line per file, in input order.
	Module string `json:"module,omitempty"`
	// Files is the module snapshot for module-mode lines.
	Files []BatchFile `json:"files,omitempty"`
}

// moduleMode reports whether the delta line is a whole-module snapshot.
func (d *DeltaRequest) moduleMode() bool {
	return d.Module != "" || len(d.Files) > 0
}

// errorBody is the JSON error envelope of non-200 responses. Code,
// when set, is a stable machine-readable refusal class (e.g.
// "repair_degraded") so clients branch on identity instead of matching
// message strings — the HTTP mirror of the library's typed sentinels.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Error codes carried by errorBody.Code.
const (
	// CodeRepairDegraded: the repair was refused because an analysis
	// in the verification loop degraded (budget, deadline,
	// cancellation, panic). Degraded evidence can neither accept nor
	// reject a candidate patch, so no patch is served; the response is
	// a 503 with Retry-After. Retry with a larger max_states budget or
	// a longer deadline.
	CodeRepairDegraded = "repair_degraded"
	// CodeParseError: the source failed the frontend (422).
	CodeParseError = "parse_error"
	// CodeUnresolvedCall: a module-mode analysis found a call that names
	// no procedure in any file of the module (422). The error text lists
	// the unresolved sites; send the missing file in the module snapshot.
	CodeUnresolvedCall = "unresolved_call"
)

// Server is the daemon's request-independent state. Create with New,
// expose via Handler, stop with Shutdown.
type Server struct {
	cfg       Config
	gate      *gate
	flights   *flightGroup
	rec       *obs.Recorder
	start     time.Time
	flightrec *flightRecorder
	logger    *slog.Logger

	// traceSeq numbers requests that arrive without a traceparent; the
	// derived trace IDs are unique per request and reproducible within
	// one server run.
	traceSeq atomic.Uint64
	// deprOnce gates the one-time deprecation warning: the log line
	// fires on the first unversioned-alias hit only, the counter on all.
	deprOnce sync.Once

	// active counts requests anywhere inside a handler (admitted or
	// not); Shutdown polls it to zero after closing the gate.
	active atomic.Int64
	// ewmaMS tracks a moving average of analysis latency, feeding the
	// Retry-After estimate on 429s.
	ewmaMS atomic.Int64

	mu  sync.Mutex
	agg obs.Metrics // aggregate of per-request report telemetry

	// amu guards the /v1/delta analyzer pool: one incremental Analyzer
	// per distinct option fingerprint, bounded by maxAnalyzers.
	amu       sync.Mutex
	analyzers map[string]*uafcheck.Analyzer
	aorder    []string
}

// maxAnalyzers bounds the delta pool: each Analyzer holds a memo store,
// and option sets beyond this many evict the least recently created.
const maxAnalyzers = 8

// New builds a Server from cfg (zero values take documented defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{
		cfg:       cfg,
		gate:      newGate(cfg.MaxInflight, cfg.QueueDepth),
		flights:   newFlightGroup(),
		rec:       obs.New(),
		start:     time.Now(),
		flightrec: newFlightRecorder(cfg.FlightRecorderSize),
		logger:    logger,
		analyzers: make(map[string]*uafcheck.Analyzer),
	}
}

// Handler returns the daemon's route table. Analysis endpoints live
// under the /v1/ prefix; the pre-versioning spellings of /analyze and
// /analyze-batch remain as deprecated aliases (newer endpoints like
// /v1/delta have no unversioned form).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.traced("/v1/analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/analyze-batch", s.traced("/v1/analyze-batch", s.handleBatch))
	mux.HandleFunc("POST /v1/delta", s.traced("/v1/delta", s.handleDelta))
	mux.HandleFunc("POST /v1/repair", s.traced("/v1/repair", s.handleRepair))
	mux.HandleFunc("POST /analyze",
		s.deprecatedAlias("/v1/analyze", s.traced("/analyze", s.handleAnalyze)))
	mux.HandleFunc("POST /analyze-batch",
		s.deprecatedAlias("/v1/analyze-batch", s.traced("/analyze-batch", s.handleBatch)))
	if s.cfg.CachePeer != nil {
		mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheFetch)
		mux.HandleFunc("PUT /v1/cache/{key}", s.handleCacheStore)
		mux.HandleFunc("DELETE /v1/cache/{key}", s.handleCacheDiscard)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// traced wraps an analysis route with the request-scoped observability
// layer: it adopts the caller's W3C traceparent (or derives a fresh
// trace ID), roots the request's span tree, carries both on the request
// context so the library stack attaches its phase and wave spans,
// echoes the traceparent on the response, records the request latency
// on the per-route histogram, and files a digest with the flight
// recorder when the request completes.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tid, remoteParent, hasRemote := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !hasRemote {
			tid = obs.DeriveTraceID("uafserve/request",
				strconv.FormatInt(s.start.UnixNano(), 36),
				strconv.FormatUint(s.traceSeq.Add(1), 36))
		}
		tr := obs.NewTrace(tid)
		ctx := obs.ContextWithTrace(r.Context(), tr)
		if hasRemote {
			ctx = obs.ContextWithParentSpan(ctx, remoteParent)
		}
		ctx, root := obs.StartSpan(ctx, "request")
		root.SetAttr("route", route)
		st := &reqState{}
		ctx = context.WithValue(ctx, reqStateKey{}, st)

		w.Header().Set("traceparent", obs.FormatTraceparent(tid, root.SpanID()))
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r.WithContext(ctx))
		dur := time.Since(t0)
		root.SetAttrInt("status", int64(sw.status()))
		root.End()

		s.rec.Observe(obs.HistKey(obs.HistRequestNS, "route", route), dur.Nanoseconds())
		spans := tr.Spans()
		st.mu.Lock()
		d := RequestDigest{
			TraceID:   tid.String(),
			Route:     route,
			Status:    sw.status(),
			Start:     t0,
			DurMS:     dur.Milliseconds(),
			Outcome:   st.outcome,
			Degraded:  st.degraded,
			Dedup:     st.dedup,
			CacheHit:  st.cacheHit,
			Phases:    digestPhases(spans),
			SpanCount: len(spans),
			Spans:     spans,
		}
		st.mu.Unlock()
		if d.Outcome == "" {
			d.Outcome = outcomeForStatus(d.Status)
		}
		s.flightrec.add(d)
	}
}

// outcomeForStatus is the fallback classification when the handler
// recorded nothing richer.
func outcomeForStatus(code int) string {
	switch {
	case code == http.StatusUnprocessableEntity:
		return "parse-error"
	case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
		return "rejected"
	case code >= 500:
		return "error"
	default:
		return "ok"
	}
}

// statusWriter records the status code written through it. It passes
// http.Flusher through so the NDJSON streaming endpoints keep flushing
// per line.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

// UnversionedSunset is the RFC 8594 Sunset date of the deprecated
// unversioned /analyze and /analyze-batch aliases: the earliest
// release after this date removes them. The removal policy — at least
// two minor releases of Deprecation+Sunset warning before the routes
// answer 410 — is documented in docs/SERVER.md.
const UnversionedSunset = "Fri, 01 Jan 2027 00:00:00 GMT"

// deprecatedAlias serves an unversioned pre-v1 route: same behavior as
// the versioned handler, plus the full RFC deprecation header set —
// Deprecation, a Link to the successor, and the Sunset date after
// which the alias may be removed — and a server.deprecated_requests
// count so operators can see when the aliases are finally unused.
func (s *Server) deprecatedAlias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.rec.Add(obs.CtrServerDeprecated, 1)
		s.deprOnce.Do(func() {
			s.logger.Warn("deprecated unversioned route hit; clients should migrate",
				"route", r.URL.Path, "successor", successor, "sunset", UnversionedSunset)
		})
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		w.Header().Set("Sunset", UnversionedSunset)
		h(w, r)
	}
}

// Shutdown gracefully stops the server: the admission gate closes
// (queued waiters are released with 503, /healthz flips to draining),
// in-flight analyses run to completion, and the report cache's disk
// tier is flushed and closed. Returns ctx.Err if the drain did not
// finish in time; the cache is flushed regardless.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.drain()
	var err error
poll:
	for s.active.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break poll
		case <-time.After(2 * time.Millisecond):
		}
	}
	if s.cfg.Cache != nil {
		s.cfg.Cache.Flush()
		s.cfg.Cache.Close()
	}
	return err
}

// MetricsSnapshot returns the server counters merged with the
// aggregated per-request analysis telemetry — what /metrics renders.
func (s *Server) MetricsSnapshot() obs.Metrics {
	var m obs.Metrics
	s.mu.Lock()
	m.Merge(s.agg)
	s.mu.Unlock()
	m.Merge(s.rec.Snapshot())
	inflight, queued := s.gate.load()
	if m.Gauges == nil {
		m.Gauges = make(map[string]int64)
	}
	m.Gauges[obs.GaugeServerInflight] = int64(inflight)
	m.Gauges[obs.GaugeServerQueueDepth] = int64(queued)
	s.amu.Lock()
	m.Gauges[obs.GaugeServerAnalyzerPool] = int64(len(s.analyzers))
	s.amu.Unlock()
	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Stats()
		m.Gauges[obs.GaugeCacheDiskErrors] = st.DiskErrors
		m.Gauges[obs.GaugeCacheQuarantined] = st.Quarantined
		m.Gauges[obs.GaugeCacheDroppedWrites] = st.DroppedWrites
	}
	return m
}

// ------------------------------------------------------------ analyze

// requestKey derives the singleflight content address: everything that
// determines the response bytes participates — tool version, name,
// source, and the effective (post-default) option set.
func (s *Server) requestKey(kind, name, src string, o RequestOptions) string {
	return cache.KeyOf("uafserve/"+kind, uafcheck.Version, name, src,
		fmt.Sprintf("prune=%t max_states=%d deadline=%s trace=%t ma=%t ca=%t retries=%d metrics=%t",
			o.Prune == nil || *o.Prune, o.MaxStates, s.effectiveDeadline(o),
			o.Trace, o.ModelAtomics, o.CountAtomics, o.Retries, o.Metrics),
	).String()
}

// RouteKey is the content fingerprint the cluster coordinator routes
// by: the same inputs as the singleflight/cache key (kind, tool
// version, name, source, option set) minus the server-resolved
// deadline, which a coordinator cannot know without the worker's
// config. Routing only needs determinism, not cache-key equality.
func RouteKey(kind, name, src string, o RequestOptions) cache.Key {
	return cache.KeyOf("uafserve/route/"+kind, uafcheck.Version, name, src,
		fmt.Sprintf("prune=%t max_states=%d deadline_ms=%d trace=%t ma=%t ca=%t retries=%d metrics=%t",
			o.Prune == nil || *o.Prune, o.MaxStates, o.DeadlineMS,
			o.Trace, o.ModelAtomics, o.CountAtomics, o.Retries, o.Metrics))
}

// ModuleRouteKey is the cluster routing fingerprint of a module-mode
// request: module label plus option set, deliberately NOT the file
// contents. Successive snapshots of one module must land on the same
// worker — that worker's pooled Analyzer holds the module's per-unit
// memo store, and content-addressed routing would scatter every edit
// to a cold worker. Mirrors RouteKey otherwise.
func ModuleRouteKey(module string, o RequestOptions) cache.Key {
	return cache.KeyOf("uafserve/route/module", uafcheck.Version, module,
		fmt.Sprintf("prune=%t max_states=%d deadline_ms=%d trace=%t ma=%t ca=%t retries=%d metrics=%t",
			o.Prune == nil || *o.Prune, o.MaxStates, o.DeadlineMS,
			o.Trace, o.ModelAtomics, o.CountAtomics, o.Retries, o.Metrics))
}

// ModuleLabel resolves the routing label of a module-mode batch
// request: the explicit Module field, else the first file's name.
func (b *BatchRequest) ModuleLabel() string {
	if b.Module != "" {
		return b.Module
	}
	if len(b.Files) > 0 {
		return b.Files[0].Name
	}
	return "module"
}

// ModuleLabel resolves the routing label of a module-mode delta line.
func (d *DeltaRequest) ModuleLabel() string {
	if d.Module != "" {
		return d.Module
	}
	if len(d.Files) > 0 {
		return d.Files[0].Name
	}
	return "module"
}

// effectiveDeadline resolves a request's deadline against the server's
// default and cap.
func (s *Server) effectiveDeadline(o RequestOptions) time.Duration {
	d := time.Duration(o.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// libraryOptions maps request options onto the functional option set of
// the context-first API.
func (s *Server) libraryOptions(o RequestOptions) []uafcheck.Option {
	opts := []uafcheck.Option{
		uafcheck.WithPrune(o.Prune == nil || *o.Prune),
		uafcheck.WithMaxStates(o.MaxStates),
		uafcheck.WithTrace(o.Trace),
		uafcheck.WithAtomicsModel(o.ModelAtomics),
		uafcheck.WithAtomicsCounting(o.CountAtomics),
		uafcheck.WithParallelism(s.cfg.Parallelism),
	}
	if s.cfg.Cache != nil {
		opts = append(opts, uafcheck.WithCache(s.cfg.Cache))
	}
	return opts
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.active.Add(1)
	defer s.active.Add(-1)
	s.rec.Add(obs.CtrServerRequests, 1)

	var req AnalyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Src == "" {
		s.writeError(w, http.StatusBadRequest, "missing src")
		return
	}
	if req.Name == "" {
		req.Name = "input.chpl"
	}

	// Singleflight claim happens before admission: followers piggyback
	// on the leader's slot instead of consuming queue capacity, so a
	// burst of identical requests costs one analysis and one slot. The
	// negotiated format is part of the content address — a SARIF
	// response and a canonical-JSON response are different bytes, so
	// they must never share a flight.
	sarif := wantsSARIF(r)
	kind := "analyze"
	if sarif {
		kind = "analyze-sarif"
	}
	key := s.requestKey(kind, req.Name, req.Src, req.Options)
	f, leader := s.flights.claim(key)
	if !leader {
		s.rec.Add(obs.CtrServerDedupHits, 1)
		stateFrom(r.Context()).setDedup("follower")
		select {
		case <-f.done:
		case <-r.Context().Done():
			return // client went away while waiting; nothing to write
		}
		if f.res.cacheHit {
			stateFrom(r.Context()).setCacheHit()
		}
		s.writeResult(w, f.res, "follower")
		return
	}

	stateFrom(r.Context()).setDedup("leader")
	res := s.analyzeLeader(r, req, sarif)
	s.flights.finish(key, f, res)
	s.writeResult(w, res, "leader")
}

// wantsSARIF is the content negotiation for the analyze endpoints:
// either `?format=sarif` or an Accept header naming
// application/sarif+json selects the SARIF 2.1.0 projection.
func wantsSARIF(r *http.Request) bool {
	if r.URL.Query().Get("format") == "sarif" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/sarif+json")
}

// analyzeLeader runs the deduplicated computation: admission, analysis,
// canonical encoding (or the SARIF projection with embedded fixes when
// the request negotiated it). Its flightResult is shared with every
// follower.
func (s *Server) analyzeLeader(r *http.Request, req AnalyzeRequest, sarif bool) flightResult {
	if err := s.gate.acquire(r.Context()); err != nil {
		return s.rejection(err)
	}
	defer s.gate.release()

	t0 := time.Now()
	// The analysis deliberately runs detached from the request context:
	// its wall-clock bound is the request deadline (degrading, not
	// aborting), and a leader's early disconnect must not starve the
	// followers sharing this flight. obs.Detach keeps the request's
	// trace and parent span so the analysis spans stay in the tree.
	rep, err := uafcheck.AnalyzeContext(obs.Detach(r.Context()), req.Name, req.Src,
		append(s.libraryOptions(req.Options), uafcheck.WithDeadline(s.effectiveDeadline(req.Options)))...)
	s.observeAnalysis(t0, rep)

	st := stateFrom(r.Context())
	code := statusCodeFor(err)
	result := wire.NewResult(req.Name, rep, err, req.Options.Metrics)
	var body []byte
	var encErr error
	ctype := ""
	if sarif && code == http.StatusOK {
		repairs := s.repairForSARIF(r, req, rep)
		body, encErr = wire.SARIFWithFixes([]wire.Result{result}, repairs).EncodeIndent()
		ctype = "application/sarif+json"
	} else {
		body, encErr = result.Encode()
	}
	if encErr != nil {
		return flightResult{code: http.StatusInternalServerError,
			body: mustJSON(errorBody{Error: encErr.Error()})}
	}
	cacheHit := rep != nil && rep.Metrics.Counter(obs.CtrCacheHits) > 0
	if cacheHit {
		st.setCacheHit()
	}
	if rep != nil && rep.Degraded != nil {
		st.set("degraded", string(rep.Degraded.Reason))
	}
	return flightResult{code: code, body: body, cacheHit: cacheHit, ctype: ctype}
}

// repairForSARIF best-effort-repairs one analyzed file so its SARIF
// projection can embed fixes. It returns nil — plain results, no fixes
// — whenever the evidence doesn't support a verified patch: no
// warnings, a degraded report (conservative warnings must never carry
// a patch), or a repair refusal. Repair failures are deliberately
// swallowed: fixes are an enrichment of the SARIF document, not a
// precondition for serving it.
func (s *Server) repairForSARIF(r *http.Request, req AnalyzeRequest, rep *uafcheck.Report) map[string]*uafcheck.RepairReport {
	if rep == nil || rep.Degraded != nil || len(rep.Warnings) == 0 {
		return nil
	}
	rr, err := uafcheck.Repair(obs.Detach(r.Context()), req.Name, req.Src,
		append(s.libraryOptions(req.Options), uafcheck.WithDeadline(s.effectiveDeadline(req.Options)))...)
	if err != nil || len(rr.Patches) == 0 {
		return nil
	}
	return map[string]*uafcheck.RepairReport{req.Name: rr}
}

// statusCodeFor maps an analysis error onto an HTTP status via the
// library's typed sentinels: a frontend rejection (ErrParse) is the
// client's fault, 422; anything else surfacing as an error — instead of
// a degraded report — is unexpected, 500. Resource exhaustion
// (ErrBudgetExhausted, ErrDeadline, ErrCancelled) never reaches this
// path: those ride the degradation ladder inside a 200 report.
func statusCodeFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, uafcheck.ErrParse):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// observeAnalysis folds one finished analysis into the latency EWMA and
// the aggregate telemetry.
func (s *Server) observeAnalysis(t0 time.Time, rep *uafcheck.Report) {
	s.rec.Add(obs.CtrServerAnalyses, 1)
	ms := time.Since(t0).Milliseconds()
	old := s.ewmaMS.Load()
	s.ewmaMS.Store((old*3 + ms) / 4)
	if rep != nil {
		s.mu.Lock()
		s.agg.Merge(rep.Metrics)
		s.mu.Unlock()
	}
}

// -------------------------------------------------------------- batch

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.active.Add(1)
	defer s.active.Add(-1)
	s.rec.Add(obs.CtrServerRequests, 1)

	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Files) == 0 {
		s.writeError(w, http.StatusBadRequest, "missing files")
		return
	}
	if req.Mode != "" && req.Mode != "files" && req.Mode != "module" {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode))
		return
	}
	if err := s.gate.acquire(r.Context()); err != nil {
		res := s.rejection(err)
		s.writeResult(w, res, "")
		return
	}
	defer s.gate.release()
	s.rec.Add(obs.CtrServerBatchFiles, int64(len(req.Files)))

	if req.Mode == "module" {
		s.batchModule(w, r, req)
		return
	}

	files := make([]uafcheck.FileInput, len(req.Files))
	for i, f := range req.Files {
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("input-%d.chpl", i)
		}
		files[i] = uafcheck.FileInput{Name: name, Src: f.Src}
	}

	// Negotiated SARIF: one aggregate document instead of an NDJSON
	// stream (SARIF has no line-oriented form). Results are collected
	// as workers finish and projected once at the end; per-file repair
	// runs afterwards so fixes embed next to the warnings they fix.
	if wantsSARIF(r) {
		s.batchSARIF(w, r, files, req.Options)
		return
	}

	// NDJSON stream: one canonical result line per file, written from
	// the worker that finished it. The mutex serializes lines; the
	// flusher pushes each one out so clients see progress, not a burst.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	emit := func(i int, fr uafcheck.FileReport) {
		line, err := wire.NewResult(fr.Name, fr.Report, fr.Err, req.Options.Metrics).Encode()
		if err != nil {
			line = mustJSON(errorBody{Error: err.Error()})
		}
		wmu.Lock()
		defer wmu.Unlock()
		w.Write(append(line, '\n')) //nolint:errcheck — a dead client just discards the stream
		if flusher != nil {
			flusher.Flush()
		}
	}

	t0 := time.Now()
	opts := append(s.libraryOptions(req.Options),
		uafcheck.WithWorkers(s.cfg.BatchWorkers),
		uafcheck.WithFileTimeout(s.effectiveDeadline(req.Options)),
		uafcheck.WithRetries(req.Options.Retries),
		uafcheck.WithOnFile(emit),
	)
	// The request context drives the batch: a disconnected client
	// cancels remaining files (they degrade and stream to nowhere).
	batchRep := uafcheck.AnalyzeFilesContext(r.Context(), files, opts...)
	s.rec.Add(obs.CtrServerAnalyses, int64(len(req.Files)))
	ms := time.Since(t0).Milliseconds() / int64(len(req.Files))
	old := s.ewmaMS.Load()
	s.ewmaMS.Store((old*3 + ms) / 4)
	s.mu.Lock()
	s.agg.Merge(batchRep.Metrics)
	s.mu.Unlock()
}

// batchModule serves mode "module" of /v1/analyze-batch: the files are
// linked and analyzed as one module (cross-file calls resolve, callee
// summaries compose), and the response is an NDJSON stream of
// canonical per-file result lines in input order. A frontend or
// unresolved-call failure anywhere in the module rejects the whole
// request — module results are all-or-nothing, matching the library's
// AnalyzeModuleContext contract.
func (s *Server) batchModule(w http.ResponseWriter, r *http.Request, req BatchRequest) {
	files := make([]uafcheck.ModuleFile, len(req.Files))
	for i, f := range req.Files {
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("input-%d.chpl", i)
		}
		files[i] = uafcheck.ModuleFile{Name: name, Src: f.Src}
	}
	// Detached from the request context like the single-file leader: the
	// wall-clock bound is the request deadline, degrading rather than
	// aborting.
	t0 := time.Now()
	mrep, err := uafcheck.AnalyzeModuleContext(obs.Detach(r.Context()), files,
		append(s.libraryOptions(req.Options), uafcheck.WithDeadline(s.effectiveDeadline(req.Options)))...)
	if err != nil {
		s.writeModuleError(w, err)
		return
	}
	s.rec.Add(obs.CtrServerAnalyses, int64(len(files)))
	ms := time.Since(t0).Milliseconds() / int64(len(files))
	old := s.ewmaMS.Load()
	s.ewmaMS.Store((old*3 + ms) / 4)
	s.mu.Lock()
	s.agg.Merge(mrep.Metrics)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for _, fr := range mrep.Files {
		line, encErr := wire.NewResult(fr.Name, fr.Report, fr.Err, req.Options.Metrics).Encode()
		if encErr != nil {
			line = mustJSON(errorBody{Error: encErr.Error()})
		}
		w.Write(append(line, '\n')) //nolint:errcheck — a dead client just discards the stream
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// writeModuleError maps a module analysis error onto the HTTP error
// vocabulary: 422 with a typed code for frontend and unresolved-call
// failures (an unresolved-call error matches both sentinels; the finer
// code wins), 500 otherwise.
func (s *Server) writeModuleError(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error(), Code: moduleErrorCode(err)}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusCodeFor(err))
	w.Write(append(mustJSON(body), '\n')) //nolint:errcheck
}

// moduleErrorCode picks the machine-readable refusal class of a module
// analysis error ("" when it is not a typed frontend failure).
func moduleErrorCode(err error) string {
	switch {
	case errors.Is(err, uafcheck.ErrUnresolvedCall):
		return CodeUnresolvedCall
	case errors.Is(err, uafcheck.ErrParse):
		return CodeParseError
	}
	return ""
}

// ------------------------------------------------------------- repair

// handleRepair serves POST /v1/repair: the request body is the
// AnalyzeRequest shape, the response is an NDJSON stream — one line
// per verified patch (unified diff + verdict + warning delta) and a
// terminal summary line carrying the cumulative diff. The endpoint
// rides the same middleware as analysis: tracing, admission control,
// and singleflight (identical concurrent repair requests share one
// repair run and its bytes).
//
// The refusal contract: any degraded analysis inside the
// repair-verify loop answers 503 with code "repair_degraded" and
// Retry-After — degraded evidence can neither accept nor reject a
// candidate, so no patch is ever served from it.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	s.active.Add(1)
	defer s.active.Add(-1)
	s.rec.Add(obs.CtrServerRequests, 1)

	var req AnalyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Src == "" {
		s.writeError(w, http.StatusBadRequest, "missing src")
		return
	}
	if req.Name == "" {
		req.Name = "input.chpl"
	}

	key := s.requestKey("repair", req.Name, req.Src, req.Options)
	f, leader := s.flights.claim(key)
	if !leader {
		s.rec.Add(obs.CtrServerDedupHits, 1)
		stateFrom(r.Context()).setDedup("follower")
		select {
		case <-f.done:
		case <-r.Context().Done():
			return // client went away while waiting; nothing to write
		}
		s.writeResult(w, f.res, "follower")
		return
	}

	stateFrom(r.Context()).setDedup("leader")
	res := s.repairLeader(r, req)
	s.flights.finish(key, f, res)
	s.writeResult(w, res, "leader")
}

// repairLeader runs the deduplicated repair: admission, the
// repair-verify loop, NDJSON encoding. Like analyzeLeader it detaches
// from the request context — the wall-clock bound is the request
// deadline (whose expiry degrades an inner analysis and thereby turns
// into a typed refusal), and a leader's disconnect must not starve
// followers.
func (s *Server) repairLeader(r *http.Request, req AnalyzeRequest) flightResult {
	if err := s.gate.acquire(r.Context()); err != nil {
		return s.rejection(err)
	}
	defer s.gate.release()
	s.rec.Add(obs.CtrServerRepairs, 1)

	t0 := time.Now()
	rr, err := uafcheck.Repair(obs.Detach(r.Context()), req.Name, req.Src,
		append(s.libraryOptions(req.Options), uafcheck.WithDeadline(s.effectiveDeadline(req.Options)))...)
	s.observeAnalysis(t0, nil)

	st := stateFrom(r.Context())
	switch {
	case err == nil:
	case errors.Is(err, uafcheck.ErrParse):
		st.set("parse-error", "")
		return flightResult{code: http.StatusUnprocessableEntity,
			body: mustJSON(errorBody{Error: err.Error(), Code: CodeParseError})}
	case errors.Is(err, uafcheck.ErrRepairDegraded):
		// The typed refusal: 503 + machine-readable code; writeResult
		// attaches Retry-After to every 5xx. Retrying with a larger
		// max_states or deadline_ms gives the verifier the evidence it
		// was missing.
		st.set("refused", "degraded")
		return flightResult{code: http.StatusServiceUnavailable,
			body: mustJSON(errorBody{Error: err.Error(), Code: CodeRepairDegraded})}
	default:
		return flightResult{code: http.StatusInternalServerError,
			body: mustJSON(errorBody{Error: err.Error()})}
	}

	body, encErr := wire.EncodeRepair(req.Name, rr)
	if encErr != nil {
		return flightResult{code: http.StatusInternalServerError,
			body: mustJSON(errorBody{Error: encErr.Error()})}
	}
	if rr.Clean() {
		st.set("repaired", "")
	} else {
		st.set("repair-partial", "")
	}
	return flightResult{code: http.StatusOK, body: body, ctype: "application/x-ndjson"}
}

// batchSARIF answers a batch request that negotiated SARIF: the files
// are analyzed by the same fault-isolated driver, the results are
// collected instead of streamed (SARIF has no line-oriented form), and
// every non-degraded file with warnings gets a best-effort repair so
// the document embeds verified fixes. The whole response is one SARIF
// 2.1.0 document.
func (s *Server) batchSARIF(w http.ResponseWriter, r *http.Request, files []uafcheck.FileInput, o RequestOptions) {
	var mu sync.Mutex
	results := make([]wire.Result, 0, len(files))
	degradedOrFailed := make(map[string]bool, len(files))
	collect := func(i int, fr uafcheck.FileReport) {
		mu.Lock()
		defer mu.Unlock()
		results = append(results, wire.NewResult(fr.Name, fr.Report, fr.Err, false))
		if fr.Err != nil || fr.Report == nil || fr.Report.Degraded != nil || len(fr.Report.Warnings) == 0 {
			degradedOrFailed[fr.Name] = true
		}
	}

	t0 := time.Now()
	opts := append(s.libraryOptions(o),
		uafcheck.WithWorkers(s.cfg.BatchWorkers),
		uafcheck.WithFileTimeout(s.effectiveDeadline(o)),
		uafcheck.WithRetries(o.Retries),
		uafcheck.WithOnFile(collect),
	)
	batchRep := uafcheck.AnalyzeFilesContext(r.Context(), files, opts...)
	s.rec.Add(obs.CtrServerAnalyses, int64(len(files)))
	ms := time.Since(t0).Milliseconds() / int64(len(files))
	old := s.ewmaMS.Load()
	s.ewmaMS.Store((old*3 + ms) / 4)
	s.mu.Lock()
	s.agg.Merge(batchRep.Metrics)
	s.mu.Unlock()

	// Best-effort per-file repair, same eligibility as the single-shot
	// endpoint: only clean (non-degraded) evidence may carry a fix. A
	// disconnected client stops the extra work.
	repairs := make(map[string]*uafcheck.RepairReport)
	for _, f := range files {
		if r.Context().Err() != nil {
			break
		}
		if degradedOrFailed[f.Name] {
			continue
		}
		rr, err := uafcheck.Repair(obs.Detach(r.Context()), f.Name, f.Src,
			append(s.libraryOptions(o), uafcheck.WithDeadline(s.effectiveDeadline(o)))...)
		if err != nil || len(rr.Patches) == 0 {
			continue
		}
		repairs[f.Name] = rr
	}

	body, err := wire.SARIFWithFixes(results, repairs).EncodeIndent()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/sarif+json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(body, '\n')) //nolint:errcheck
}

// -------------------------------------------------------------- delta

// analyzerFor returns the pooled incremental Analyzer for an option
// set, creating it on first use. The fingerprint covers exactly the
// options that participate in unit memoization; deadlines are per-line
// (context) and metrics only affect encoding, so neither splits the
// pool.
func (s *Server) analyzerFor(o RequestOptions) *uafcheck.Analyzer {
	fp := fmt.Sprintf("prune=%t max_states=%d trace=%t ma=%t ca=%t",
		o.Prune == nil || *o.Prune, o.MaxStates, o.Trace, o.ModelAtomics, o.CountAtomics)
	s.amu.Lock()
	defer s.amu.Unlock()
	if a, ok := s.analyzers[fp]; ok {
		return a
	}
	if len(s.aorder) >= maxAnalyzers {
		delete(s.analyzers, s.aorder[0])
		s.aorder = s.aorder[1:]
	}
	a := uafcheck.NewAnalyzer(s.libraryOptions(o)...)
	s.analyzers[fp] = a
	s.aorder = append(s.aorder, fp)
	return a
}

// handleDelta serves POST /v1/delta: an NDJSON request stream of
// DeltaRequest lines answered by an NDJSON stream of canonical results,
// one per line, in order. Lines run through the pooled Analyzers, so a
// client that re-sends a file after each edit gets incremental
// re-analysis — only the edited procedures are recomputed — with
// responses byte-identical to /v1/analyze for the same input. The
// stream holds one admission slot for its whole lifetime.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.active.Add(1)
	defer s.active.Add(-1)
	s.rec.Add(obs.CtrServerRequests, 1)

	if err := s.gate.acquire(r.Context()); err != nil {
		s.writeResult(w, s.rejection(err), "")
		return
	}
	defer s.gate.release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var emitErr error
	emit := func(line []byte) {
		_, emitErr = w.Write(append(line, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
	}

	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))
	for sc.Scan() && emitErr == nil && r.Context().Err() == nil {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var req DeltaRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			emit(mustJSON(errorBody{Error: "malformed delta line: " + err.Error()}))
			continue
		}
		if req.moduleMode() {
			s.deltaModule(r, &req, emit)
			continue
		}
		if req.Src == "" {
			emit(mustJSON(errorBody{Error: "missing src"}))
			continue
		}
		if req.Name == "" {
			req.Name = "input.chpl"
		}
		s.rec.Add(obs.CtrServerDeltaFiles, 1)

		// Per-line deadline: the analysis context expires and the run
		// degrades, exactly like the versioned single-shot endpoint. The
		// request context is deliberately not the cancellation parent — a
		// disconnect is detected between lines, never mid-analysis — but
		// its trace rides along so each line's spans join the tree.
		ctx, cancel := context.WithTimeout(obs.Detach(r.Context()), s.effectiveDeadline(req.Options))
		t0 := time.Now()
		rep, err := s.analyzerFor(req.Options).AnalyzeDelta(ctx, req.Name, req.Src)
		cancel()
		s.observeAnalysis(t0, rep)
		line, encErr := wire.NewResult(req.Name, rep, err, req.Options.Metrics).Encode()
		if encErr != nil {
			line = mustJSON(errorBody{Error: encErr.Error()})
		}
		emit(line)
	}
	if err := sc.Err(); err != nil && emitErr == nil && r.Context().Err() == nil {
		emit(mustJSON(errorBody{Error: "reading delta stream: " + err.Error()}))
	}
}

// deltaModule answers one module-mode delta line: the full module
// snapshot runs through the pooled Analyzer's module engine, so only
// the units whose call-graph view changed since the previous snapshot
// recompute (editing a callee re-analyzes exactly its transitive
// callers), and one canonical line per file streams back in input
// order. Failures produce a single typed error line rather than an
// HTTP error — the NDJSON stream is already flowing.
func (s *Server) deltaModule(r *http.Request, req *DeltaRequest, emit func([]byte)) {
	if len(req.Files) == 0 {
		emit(mustJSON(errorBody{Error: "module delta line missing files"}))
		return
	}
	files := make([]uafcheck.ModuleFile, len(req.Files))
	for i, f := range req.Files {
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("input-%d.chpl", i)
		}
		files[i] = uafcheck.ModuleFile{Name: name, Src: f.Src}
	}
	s.rec.Add(obs.CtrServerDeltaFiles, int64(len(files)))
	ctx, cancel := context.WithTimeout(obs.Detach(r.Context()), s.effectiveDeadline(req.Options))
	defer cancel()
	t0 := time.Now()
	mrep, err := s.analyzerFor(req.Options).AnalyzeModuleDelta(ctx, files)
	if err != nil {
		emit(mustJSON(errorBody{Error: err.Error(), Code: moduleErrorCode(err)}))
		return
	}
	s.rec.Add(obs.CtrServerAnalyses, int64(len(files)))
	ms := time.Since(t0).Milliseconds() / int64(len(files))
	old := s.ewmaMS.Load()
	s.ewmaMS.Store((old*3 + ms) / 4)
	s.mu.Lock()
	s.agg.Merge(mrep.Metrics)
	s.mu.Unlock()
	for _, fr := range mrep.Files {
		line, encErr := wire.NewResult(fr.Name, fr.Report, fr.Err, req.Options.Metrics).Encode()
		if encErr != nil {
			line = mustJSON(errorBody{Error: encErr.Error()})
		}
		emit(line)
	}
}

// -------------------------------------------------------------- admin

// componentHealth assembles the per-component health rows: the
// admission gate, the report cache's disk tier, the /v1/delta analyzer
// pool, and every probe registered via Config.Components.
func (s *Server) componentHealth() map[string]ComponentStatus {
	comps := make(map[string]ComponentStatus, 3+len(s.cfg.Components))

	inflight, queued := s.gate.load()
	admission := ComponentStatus{State: "ok", Detail: map[string]int64{
		"inflight":     int64(inflight),
		"queued":       int64(queued),
		"max_inflight": int64(s.cfg.MaxInflight),
		"queue_depth":  int64(s.cfg.QueueDepth),
	}}
	select {
	case <-s.gate.draining:
		admission.State = "draining"
	default:
	}
	comps["admission"] = admission

	disk := ComponentStatus{State: "off"}
	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Stats()
		disk.State = s.cfg.Cache.DiskState()
		disk.Detail = map[string]int64{
			"disk_errors":    st.DiskErrors,
			"quarantined":    st.Quarantined,
			"dropped_writes": st.DroppedWrites,
		}
	}
	comps["disk_cache"] = disk

	s.amu.Lock()
	pool := int64(len(s.analyzers))
	s.amu.Unlock()
	comps["analyzer_pool"] = ComponentStatus{State: "ok", Detail: map[string]int64{
		"analyzers": pool,
		"capacity":  maxAnalyzers,
	}}

	for name, probe := range s.cfg.Components {
		comps[name] = probe()
	}
	return comps
}

// healthState folds component rows into the overall readiness verdict:
// "ok" (200), "degraded" (200 — still serving, capacity impaired), or
// unready (503) when draining or any component is wedged.
func healthState(comps map[string]ComponentStatus) (status string, code int) {
	status, code = "ok", http.StatusOK
	for _, c := range comps {
		switch c.State {
		case "wedged", "draining":
			return c.State, http.StatusServiceUnavailable
		case "ok", "off":
		default:
			status = "degraded"
		}
	}
	return status, code
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inflight, queued := s.gate.load()
	comps := s.componentHealth()
	status, code := healthState(comps)
	body := map[string]any{
		"status":     status,
		"mode":       s.cfg.Mode,
		"inflight":   inflight,
		"queued":     queued,
		"version":    uafcheck.Version,
		"components": comps,
	}
	if code != http.StatusOK {
		// Overload guidance on every unready answer (draining or a
		// wedged component): a probe or naive client should come back,
		// not give up — and no 5xx leaves without Retry-After.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(mustJSON(body), '\n')) //nolint:errcheck
}

func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"alive\"}\n")) //nolint:errcheck
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.PromSink{W: w}.Emit(s.MetricsSnapshot()) //nolint:errcheck
}

// handleDebugRequests serves the flight recorder. Without parameters it
// lists recent request digests newest-first (span trees elided to a
// count); ?trace=<hex id> returns the matching digest with its full
// span tree inlined; ?limit=N truncates the listing.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if id := r.URL.Query().Get("trace"); id != "" {
		d, ok := s.flightrec.byTrace(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "no recorded request with trace "+id)
			return
		}
		w.Write(append(mustJSON(d), '\n')) //nolint:errcheck
		return
	}
	digests := s.flightrec.snapshot()
	if lim, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && lim >= 0 && lim < len(digests) {
		digests = digests[:lim]
	}
	for i := range digests {
		digests[i].Spans = nil // listing stays light; fetch one by ?trace=
	}
	w.Write(append(mustJSON(map[string]any{
		"requests": digests,
		"capacity": len(s.flightrec.ring),
	}), '\n')) //nolint:errcheck
}

// routeStatus is one per-route row of /statusz.
type routeStatus struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// handleStatusz serves a one-page operational summary: version, uptime,
// load, and per-route latency quantiles derived from the
// server.request_ns histograms.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	m := s.MetricsSnapshot()
	routes := make(map[string]routeStatus)
	for _, name := range m.HistNames() {
		family, labels := obs.SplitHistKey(name)
		if family != obs.HistRequestNS {
			continue
		}
		route := ""
		for _, kv := range labels {
			if kv[0] == "route" {
				route = kv[1]
			}
		}
		h := m.Hist(name)
		const ms = 1e6
		routes[route] = routeStatus{
			Count: h.Count,
			P50MS: h.Quantile(0.50) / ms,
			P90MS: h.Quantile(0.90) / ms,
			P99MS: h.Quantile(0.99) / ms,
		}
	}
	inflight, queued := s.gate.load()
	recorded := len(s.flightrec.snapshot())
	comps := s.componentHealth()
	status, _ := healthState(comps)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(mustJSON(map[string]any{ //nolint:errcheck
		"version":    uafcheck.Version,
		"mode":       s.cfg.Mode,
		"uptime_s":   int64(time.Since(s.start).Seconds()),
		"status":     status,
		"inflight":   inflight,
		"queued":     queued,
		"routes":     routes,
		"components": comps,
		"flight_recorder": map[string]int{
			"recorded": recorded,
			"capacity": len(s.flightrec.ring),
		},
		"pprof": s.cfg.EnablePprof,
	}), '\n'))
}

// ------------------------------------------------------------ plumbing

// decodeBody parses the JSON request body into dst, answering 400/413
// itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

// rejection maps an admission error onto the shared flight result, so
// followers of a rejected leader reuse the same 429/503.
func (s *Server) rejection(err error) flightResult {
	switch {
	case errors.Is(err, errOverload):
		s.rec.Add(obs.CtrServerRejects, 1)
		return flightResult{code: http.StatusTooManyRequests,
			body: mustJSON(errorBody{Error: err.Error()})}
	default: // draining, or the client died while queued
		return flightResult{code: http.StatusServiceUnavailable,
			body: mustJSON(errorBody{Error: err.Error()})}
	}
}

// writeResult renders a flight result. role tags the dedup position
// ("leader"/"follower") for observability; empty omits the header.
func (s *Server) writeResult(w http.ResponseWriter, res flightResult, role string) {
	ctype := res.ctype
	if ctype == "" {
		ctype = "application/json"
	}
	w.Header().Set("Content-Type", ctype)
	if role != "" {
		w.Header().Set("X-Uafserve-Dedup", role)
	}
	if res.cacheHit {
		w.Header().Set("X-Uafserve-Cache", "hit")
	}
	// Every rejection or server-side failure carries retry guidance: a
	// 429 or 503 is overload/drain (come back after the queue clears),
	// and even a 500 is worth one more try rather than an outage page.
	if res.code == http.StatusTooManyRequests || res.code >= 500 {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.WriteHeader(res.code)
	// res.body is shared verbatim between the leader and its followers;
	// the newline is written separately so no writer ever appends to
	// (and thereby mutates) the shared backing array.
	w.Write(res.body) //nolint:errcheck
	if n := len(res.body); n == 0 || res.body[n-1] != '\n' {
		w.Write([]byte{'\n'}) //nolint:errcheck
	}
}

// retryAfterSeconds estimates when a rejected client should come back:
// the queue's expected drain time under the recent average analysis
// latency, clamped to [1, 30] seconds.
func (s *Server) retryAfterSeconds() int {
	_, queued := s.gate.load()
	ms := s.ewmaMS.Load()
	if ms <= 0 {
		ms = 100
	}
	secs := int((ms*int64(queued+1)/int64(s.cfg.MaxInflight) + 999) / 1000)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code >= 500 {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.WriteHeader(code)
	w.Write(append(mustJSON(errorBody{Error: msg}), '\n')) //nolint:errcheck
}

// mustJSON marshals values that cannot fail (plain structs and maps of
// marshalable types).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	return b
}
