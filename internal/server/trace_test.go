package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"uafcheck"
	"uafcheck/internal/obs"
)

// safeBuf is a mutex-guarded log sink: slog handlers may be driven from
// request goroutines.
type safeBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

const buggySrc = "proc p() {\n  var x: int = 0;\n  begin with (ref x) {\n    x = 1;\n  }\n}\n"

// TestRequestSpanTree is the tentpole acceptance test: one POST
// /v1/analyze yields a complete span tree — request root, analysis
// file span, pipeline phases, PPS waves — retrievable from the flight
// recorder by the trace ID the response echoed.
func TestRequestSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: uafcheck.NewCache(uafcheck.CacheConfig{})})
	resp, _ := post(t, ts, "/v1/analyze", AnalyzeRequest{Name: "a.chpl", Src: buggySrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tp := resp.Header.Get("traceparent")
	tid, _, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, r.Body); err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, []byte(buf.String())
	}

	code, body := get("/debug/requests?trace=" + tid.String())
	if code != http.StatusOK {
		t.Fatalf("/debug/requests?trace=: status %d: %s", code, body)
	}
	var d RequestDigest
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("digest decode: %v\n%s", err, body)
	}
	if d.TraceID != tid.String() || d.Route != "/v1/analyze" || d.Status != http.StatusOK {
		t.Errorf("digest = %+v", d)
	}
	if d.Outcome != "ok" {
		t.Errorf("outcome = %q, want ok", d.Outcome)
	}
	if d.SpanCount == 0 || len(d.Spans) != d.SpanCount {
		t.Fatalf("span tree not inlined: count=%d len=%d", d.SpanCount, len(d.Spans))
	}
	names := map[string]int{}
	for _, sp := range d.Spans {
		if sp.TraceID != tid.String() {
			t.Errorf("span %s in foreign trace %s", sp.Name, sp.TraceID)
		}
		names[sp.Name]++
	}
	for _, want := range []string{"request", "file", obs.PhaseParse, obs.PhaseResolve,
		obs.PhaseExplore, "pps-wave", "cache-lookup"} {
		if names[want] == 0 {
			t.Errorf("span tree missing %q: %v", want, names)
		}
	}
	if len(d.Phases) == 0 {
		t.Errorf("digest has no phase breakdown")
	}

	// The listing elides spans but still carries the digest.
	code, body = get("/debug/requests")
	if code != http.StatusOK {
		t.Fatalf("/debug/requests: status %d", code)
	}
	var listing struct {
		Requests []RequestDigest `json:"requests"`
		Capacity int             `json:"capacity"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("listing decode: %v\n%s", err, body)
	}
	if listing.Capacity != DefaultFlightRecorderSize {
		t.Errorf("capacity = %d, want %d", listing.Capacity, DefaultFlightRecorderSize)
	}
	var found bool
	for _, d := range listing.Requests {
		if d.TraceID == tid.String() {
			found = true
			if len(d.Spans) != 0 {
				t.Errorf("listing inlined %d spans", len(d.Spans))
			}
		}
	}
	if !found {
		t.Errorf("trace %s not in listing", tid)
	}

	// Unknown trace IDs 404.
	if code, _ := get("/debug/requests?trace=ffffffffffffffffffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
}

// TestTraceparentIngest: a caller-supplied W3C traceparent is adopted —
// the response echoes the same trace ID with the server's root span.
func TestTraceparentIngest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const remote = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

	body := `{"name":"a.chpl","src":"proc p() { }"}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/analyze", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", remote)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	echo := resp.Header.Get("traceparent")
	tid, sid, ok := obs.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("echoed traceparent %q does not parse", echo)
	}
	if tid.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id not adopted: %s", tid)
	}
	if sid.String() == "00f067aa0ba902b7" {
		t.Error("server must mint its own span id, not echo the caller's")
	}

	// A garbage traceparent is ignored, not an error: the server mints a
	// fresh trace.
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/analyze", strings.NewReader(body))
	req2.Header.Set("traceparent", "garbage")
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("garbage traceparent: status %d", resp2.StatusCode)
	}
	if _, _, ok := obs.ParseTraceparent(resp2.Header.Get("traceparent")); !ok {
		t.Errorf("no fresh traceparent minted: %q", resp2.Header.Get("traceparent"))
	}
}

// TestStatusz: the operational summary carries per-route latency
// quantiles after traffic.
func TestStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		post(t, ts, "/v1/analyze", AnalyzeRequest{Name: "a.chpl", Src: buggySrc})
	}
	resp, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Version string                 `json:"version"`
		Routes  map[string]routeStatus `json:"routes"`
		Flight  struct {
			Recorded int `json:"recorded"`
			Capacity int `json:"capacity"`
		} `json:"flight_recorder"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Version == "" {
		t.Error("statusz missing version")
	}
	rs, ok := st.Routes["/v1/analyze"]
	if !ok {
		t.Fatalf("statusz has no /v1/analyze row: %+v", st.Routes)
	}
	if rs.Count != 3 {
		t.Errorf("route count = %d, want 3", rs.Count)
	}
	if rs.P50MS <= 0 || rs.P50MS > rs.P99MS {
		t.Errorf("quantiles not sane: p50=%v p99=%v", rs.P50MS, rs.P99MS)
	}
	if st.Flight.Recorded != 3 {
		t.Errorf("flight recorder recorded = %d, want 3", st.Flight.Recorded)
	}
}

// TestPprofGate: the profiling surface only exists when opted in.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsPromFormat: /metrics output passes the text-format linter
// and carries the per-route request latency histogram.
func TestMetricsPromFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/analyze", AnalyzeRequest{Name: "a.chpl", Src: buggySrc})
	post(t, ts, "/analyze", AnalyzeRequest{Name: "a.chpl", Src: buggySrc})

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.ValidatePromText([]byte(text)); err != nil {
		t.Fatalf("/metrics fails prometheus lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE uafcheck_server_request_ns histogram",
		`uafcheck_server_request_ns_bucket{route="/v1/analyze",le="+Inf"}`,
		`uafcheck_server_request_ns_count{route="/analyze"}`,
		"# TYPE uafcheck_pps_wave_size histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDeprecatedAliasLogsOnce: the first unversioned hit logs one
// warning; later hits only count.
func TestDeprecatedAliasLogsOnce(t *testing.T) {
	var logBuf safeBuf
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	srv, ts := newTestServer(t, Config{Logger: logger})

	req := AnalyzeRequest{Name: "a.chpl", Src: "proc p() { }"}
	for i := 0; i < 3; i++ {
		if resp, _ := post(t, ts, "/analyze", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("alias status %d", resp.StatusCode)
		}
	}
	if got := srv.MetricsSnapshot().Counter(obs.CtrServerDeprecated); got != 3 {
		t.Errorf("%s = %d, want 3", obs.CtrServerDeprecated, got)
	}
	logs := logBuf.String()
	if n := strings.Count(logs, "deprecated unversioned route"); n != 1 {
		t.Errorf("deprecation warning logged %d times, want once:\n%s", n, logs)
	}
	if !strings.Contains(logs, "/v1/analyze") {
		t.Errorf("warning does not name the successor:\n%s", logs)
	}
}

// TestFlightRecorderRing: the ring keeps only the newest N digests.
func TestFlightRecorderRing(t *testing.T) {
	fr := newFlightRecorder(3)
	for i := 0; i < 5; i++ {
		fr.add(RequestDigest{TraceID: string(rune('a' + i))})
	}
	got := fr.snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []string{"e", "d", "c"} {
		if got[i].TraceID != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i].TraceID, want)
		}
	}
	if _, ok := fr.byTrace("a"); ok {
		t.Error("evicted digest still retrievable")
	}
	if d, ok := fr.byTrace("d"); !ok || d.TraceID != "d" {
		t.Error("byTrace failed for retained digest")
	}
}
