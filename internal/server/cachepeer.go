package server

import (
	"errors"
	"io"
	"net/http"

	"uafcheck/internal/cache"
)

// The cache peer protocol: raw checksummed envelopes addressed by their
// 64-hex content key, mounted when Config.CachePeer is set.
//
//	GET    /v1/cache/{key}  -> 200 envelope bytes | 404 miss
//	PUT    /v1/cache/{key}  -> 204 stored         | 422 corrupt envelope
//	DELETE /v1/cache/{key}  -> 204 discarded
//
// Entries cross the wire in their on-disk envelope form (uafcache1
// header + payload checksum), so the receiving replica re-validates
// every byte with the same machinery that catches torn local writes —
// a lying or corrupted peer degrades to a cache miss, never to a wrong
// result.

// peerKey parses the {key} path segment, answering 400 itself on
// malformed keys.
func (s *Server) peerKey(w http.ResponseWriter, r *http.Request) (cache.Key, bool) {
	k, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return k, false
	}
	return k, true
}

func (s *Server) handleCacheFetch(w http.ResponseWriter, r *http.Request) {
	k, ok := s.peerKey(w, r)
	if !ok {
		return
	}
	env, err := s.cfg.CachePeer.Fetch(k)
	if err != nil {
		if errors.Is(err, cache.ErrNotFound) {
			s.writeError(w, http.StatusNotFound, "no cache entry "+k.String())
			return
		}
		s.writeError(w, http.StatusInternalServerError, "cache fetch: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(env) //nolint:errcheck
}

func (s *Server) handleCacheStore(w http.ResponseWriter, r *http.Request) {
	k, ok := s.peerKey(w, r)
	if !ok {
		return
	}
	env, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusRequestEntityTooLarge, "reading envelope: "+err.Error())
		return
	}
	// Reject corrupt envelopes at the door: a peer must never become a
	// distribution channel for torn entries.
	if err := cache.ValidateEnvelope(env); err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "invalid envelope: "+err.Error())
		return
	}
	if err := s.cfg.CachePeer.Store(k, env); err != nil {
		s.writeError(w, http.StatusInternalServerError, "cache store: "+err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCacheDiscard(w http.ResponseWriter, r *http.Request) {
	k, ok := s.peerKey(w, r)
	if !ok {
		return
	}
	s.cfg.CachePeer.Discard(k, errors.New("peer discard request"))
	w.WriteHeader(http.StatusNoContent)
}
