package server

import (
	"context"
	"sync"
	"time"

	"uafcheck/internal/obs"
)

// DefaultFlightRecorderSize is the digest ring capacity when
// Config.FlightRecorderSize is zero.
const DefaultFlightRecorderSize = 256

// RequestDigest is one completed request as the flight recorder saw it:
// enough to reconstruct what the server did and why, without holding
// request or response bodies.
type RequestDigest struct {
	// TraceID identifies the request's span tree; GET
	// /debug/requests?trace=<id> returns this digest with Spans
	// populated.
	TraceID string `json:"trace_id"`
	// Route is the matched route pattern (e.g. "/v1/analyze").
	Route string `json:"route"`
	// Status is the HTTP status code written.
	Status int `json:"status"`
	// Start is the wall-clock admission time.
	Start time.Time `json:"start"`
	// DurMS is the total request wall clock in milliseconds.
	DurMS int64 `json:"dur_ms"`
	// Outcome classifies how the request ended: "ok", "degraded",
	// "parse-error", "rejected", "error", or "" when the handler
	// recorded nothing (admin routes).
	Outcome string `json:"outcome,omitempty"`
	// Degraded carries the degradation reason when Outcome is
	// "degraded".
	Degraded string `json:"degraded,omitempty"`
	// Dedup is the singleflight role ("leader"/"follower") on analyze
	// requests.
	Dedup string `json:"dedup,omitempty"`
	// CacheHit reports whether the report cache served the result.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Phases breaks the request down by analysis phase, in
	// milliseconds, summed over the trace's phase spans.
	Phases map[string]int64 `json:"phases_ms,omitempty"`
	// SpanCount is the size of the recorded span tree; Spans itself is
	// only inlined when a single digest is requested by trace ID.
	SpanCount int             `json:"span_count"`
	Spans     []obs.TraceSpan `json:"spans,omitempty"`
}

// flightRecorder is a bounded ring of request digests: the last N
// requests, newest first on read. Writers never block readers for long —
// the ring holds completed, immutable digests.
type flightRecorder struct {
	mu   sync.Mutex
	ring []RequestDigest
	next int
	full bool
}

func newFlightRecorder(size int) *flightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &flightRecorder{ring: make([]RequestDigest, size)}
}

func (f *flightRecorder) add(d RequestDigest) {
	f.mu.Lock()
	f.ring[f.next] = d
	f.next = (f.next + 1) % len(f.ring)
	if f.next == 0 {
		f.full = true
	}
	f.mu.Unlock()
}

// snapshot returns the recorded digests newest-first.
func (f *flightRecorder) snapshot() []RequestDigest {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = len(f.ring)
	}
	out := make([]RequestDigest, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (f.next - 1 - i + len(f.ring)) % len(f.ring)
		out = append(out, f.ring[idx])
	}
	return out
}

// byTrace returns the newest digest with the given trace ID.
func (f *flightRecorder) byTrace(id string) (RequestDigest, bool) {
	for _, d := range f.snapshot() {
		if d.TraceID == id {
			return d, true
		}
	}
	return RequestDigest{}, false
}

// reqState is the per-request annotation slot the traced middleware
// stashes in the context; handlers fill in what only they know (outcome,
// dedup role, cache hit) and the middleware folds it into the digest.
type reqState struct {
	mu       sync.Mutex
	outcome  string
	degraded string
	dedup    string
	cacheHit bool
}

func (st *reqState) set(outcome, degraded string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.outcome = outcome
	st.degraded = degraded
	st.mu.Unlock()
}

func (st *reqState) setDedup(role string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.dedup = role
	st.mu.Unlock()
}

func (st *reqState) setCacheHit() {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.cacheHit = true
	st.mu.Unlock()
}

type reqStateKey struct{}

func stateFrom(ctx context.Context) *reqState {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	return st
}

// digestPhases sums span durations by phase name, in milliseconds,
// keeping only the analysis phases (depth-independent: nested phase
// spans each contribute their own duration).
func digestPhases(spans []obs.TraceSpan) map[string]int64 {
	phases := map[string]bool{
		obs.PhaseParse: true, obs.PhaseResolve: true, obs.PhaseCCFG: true,
		obs.PhasePrune: true, obs.PhaseLower: true, obs.PhaseExplore: true,
	}
	var out map[string]int64
	for _, sp := range spans {
		if !phases[sp.Name] {
			continue
		}
		if out == nil {
			out = make(map[string]int64)
		}
		out[sp.Name] += sp.Dur.Milliseconds()
	}
	return out
}
