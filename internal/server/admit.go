package server

import (
	"context"
	"errors"
	"sync"
)

// Admission errors.
var (
	// errOverload: the concurrency limit and the wait queue are both
	// full. Mapped to 429 + Retry-After.
	errOverload = errors.New("server overloaded: admission queue full")
	// errDraining: the server is shutting down and admits no new work.
	// Mapped to 503.
	errDraining = errors.New("server draining: not admitting new requests")
	// errCancelled: the client went away while queued.
	errCancelled = errors.New("request cancelled while queued")
)

// gate is the bounded admission controller: at most maxInflight
// requests hold a slot concurrently and at most maxQueue more wait for
// one. Anything beyond that is rejected immediately — a full queue
// answers 429 in microseconds instead of accumulating latency, which
// is what keeps an overloaded analyzer responsive.
type gate struct {
	sem      chan struct{}
	draining chan struct{}

	mu       sync.Mutex
	queued   int
	inflight int
	maxQueue int
}

func newGate(maxInflight, maxQueue int) *gate {
	return &gate{
		sem:      make(chan struct{}, maxInflight),
		draining: make(chan struct{}),
		maxQueue: maxQueue,
	}
}

// acquire claims a slot, waiting in the bounded queue if necessary.
// It returns errOverload when the queue is full, errDraining once
// drain() has been called, and errCancelled when ctx dies first.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case <-g.draining:
		return errDraining
	default:
	}
	// Fast path: a free slot, no queueing.
	select {
	case g.sem <- struct{}{}:
		g.mu.Lock()
		g.inflight++
		g.mu.Unlock()
		return nil
	default:
	}
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return errOverload
	}
	g.queued++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
	}()
	select {
	case g.sem <- struct{}{}:
		g.mu.Lock()
		g.inflight++
		g.mu.Unlock()
		return nil
	case <-g.draining:
		return errDraining
	case <-ctx.Done():
		return errCancelled
	}
}

// release returns a slot.
func (g *gate) release() {
	g.mu.Lock()
	g.inflight--
	g.mu.Unlock()
	<-g.sem
}

// drain stops admissions: queued waiters are kicked out with
// errDraining and future acquires fail fast. Idempotent.
func (g *gate) drain() {
	g.mu.Lock()
	select {
	case <-g.draining:
	default:
		close(g.draining)
	}
	g.mu.Unlock()
}

// load reports the current (inflight, queued) occupancy.
func (g *gate) load() (inflight, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.queued
}

// ---------------------------------------------------------- singleflight

// flightResult is the shared outcome of one deduplicated analysis: the
// HTTP status code plus the fully encoded canonical response body, so
// followers reuse the leader's bytes verbatim (byte-identity between
// leader and follower responses is free, not re-derived).
type flightResult struct {
	code     int
	body     []byte
	cacheHit bool
	// ctype overrides the response Content-Type when non-empty
	// (application/sarif+json for negotiated SARIF responses,
	// application/x-ndjson for repair streams); empty means
	// application/json.
	ctype string
}

// flight is one in-progress deduplicated computation.
type flight struct {
	done chan struct{}
	res  flightResult
}

// flightGroup deduplicates identical in-flight requests by content
// address. Unlike a cache it holds entries only while the computation
// runs: completed results are served by the report cache instead.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// claim registers interest in key. The first caller becomes the leader
// (leader == true) and must eventually call finish; everyone else gets
// the same *flight to wait on.
func (fg *flightGroup) claim(key string) (f *flight, leader bool) {
	fg.mu.Lock()
	defer fg.mu.Unlock()
	if f, ok := fg.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	fg.m[key] = f
	return f, true
}

// finish publishes the leader's result and releases every follower.
func (fg *flightGroup) finish(key string, f *flight, res flightResult) {
	fg.mu.Lock()
	delete(fg.m, key)
	fg.mu.Unlock()
	f.res = res
	close(f.done)
}
