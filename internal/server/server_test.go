package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"uafcheck"
	"uafcheck/internal/obs"
	"uafcheck/internal/wire"
)

// corpusDir is the shared acceptance corpus.
const corpusDir = "../../testdata/suite"

func loadCorpus(t *testing.T) []uafcheck.FileInput {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.chpl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus under %s: %v", corpusDir, err)
	}
	sort.Strings(paths)
	files := make([]uafcheck.FileInput, len(paths))
	for i, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = uafcheck.FileInput{Name: filepath.Base(p), Src: string(src)}
	}
	return files
}

// fanoutSrc generates a synthetic proc whose PPS state space grows with
// tasks — the knob for "slow enough to observe in flight". The proc
// name participates in the content address, so distinct names defeat
// both the dedup layer and the report cache.
func fanoutSrc(name string, tasks int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "config const flag = true;\nproc %s() {\n  var x: int = 1;\n", name)
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  var d%d$: sync bool;\n", i)
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  begin with (ref x) {\n    x += %d;\n    d%d$ = true;\n  }\n", i+1, i)
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  d%d$;\n", i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// newTestServer wires a Server into an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// post sends body as JSON and returns the response plus its full body.
func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

// TestAnalyzeByteIdentity is the acceptance bar of the daemon: for
// every corpus file, the /v1/analyze response body must be
// byte-identical to the canonical encoding the library/CLI produce for
// the same input and options — and a second (cache-served) request
// must return the same bytes again.
func TestAnalyzeByteIdentity(t *testing.T) {
	files := loadCorpus(t)
	_, ts := newTestServer(t, Config{Cache: uafcheck.NewCache(uafcheck.CacheConfig{})})

	for _, f := range files {
		rep, err := uafcheck.AnalyzeContext(context.Background(), f.Name, f.Src,
			uafcheck.WithPrune(true),
			uafcheck.WithParallelism(1),
			uafcheck.WithDeadline(30*time.Second))
		want, encErr := wire.NewResult(f.Name, rep, err, false).Encode()
		if encErr != nil {
			t.Fatalf("%s: encode: %v", f.Name, encErr)
		}

		resp, body := post(t, ts, "/v1/analyze", AnalyzeRequest{Name: f.Name, Src: f.Src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", f.Name, resp.StatusCode, body)
		}
		got := bytes.TrimSuffix(body, []byte("\n"))
		if !bytes.Equal(got, want) {
			t.Errorf("%s: server bytes differ from canonical encoding\n server: %s\nlibrary: %s",
				f.Name, got, want)
		}

		resp2, body2 := post(t, ts, "/v1/analyze", AnalyzeRequest{Name: f.Name, Src: f.Src})
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("%s: repeat status %d", f.Name, resp2.StatusCode)
		}
		if !bytes.Equal(body, body2) {
			t.Errorf("%s: cache-served bytes differ from live bytes", f.Name)
		}
		if resp2.Header.Get("X-Uafserve-Cache") != "hit" {
			t.Errorf("%s: repeat request not served from cache (header %q)",
				f.Name, resp2.Header.Get("X-Uafserve-Cache"))
		}
	}
}

// TestOverloadReturns429 fills one analysis slot and a one-deep queue
// with slow distinct requests; the rest must be rejected immediately
// with 429 + Retry-After, and nobody's connection may be dropped.
func TestOverloadReturns429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 1})

	const n = 6
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := AnalyzeRequest{
				Name:    fmt.Sprintf("slow%d.chpl", i),
				Src:     fanoutSrc(fmt.Sprintf("slow%d", i), 12),
				Options: RequestOptions{DeadlineMS: 200},
			}
			resp, _ := post(t, ts, "/v1/analyze", req)
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, rejected int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			if secs, err := strconv.Atoi(retryAfter[i]); err != nil || secs < 1 {
				t.Errorf("429 without a usable Retry-After (got %q)", retryAfter[i])
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, c)
		}
	}
	// With 1 slot + 1 queue entry and 6 concurrent slow requests, at
	// least one must run and at least one must be turned away.
	if ok == 0 || rejected == 0 {
		t.Fatalf("want both successes and rejections, got ok=%d rejected=%d", ok, rejected)
	}
	if got := srv.MetricsSnapshot().Counter(obs.CtrServerRejects); got != int64(rejected) {
		t.Errorf("server.rejects = %d, want %d", got, rejected)
	}
}

// TestDedupSingleflight fires identical concurrent requests: exactly
// one analysis runs, everyone gets byte-identical 200 bodies, and the
// dedup counter records the followers.
func TestDedupSingleflight(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 2, QueueDepth: 16})

	const n = 8
	req := AnalyzeRequest{Name: "dedup.chpl", Src: fanoutSrc("dedup", 12)}
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts, "/v1/analyze", req)
			codes[i], bodies[i] = resp.StatusCode, body
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: body differs from request 0", i)
		}
	}
	m := srv.MetricsSnapshot()
	if m.Counter(obs.CtrServerDedupHits) == 0 {
		t.Error("server.dedup_hits = 0, want > 0 for identical concurrent requests")
	}
	if got := m.Counter(obs.CtrServerAnalyses); got >= n {
		t.Errorf("server.analyses = %d, want < %d (singleflight should collapse the burst)", got, n)
	}
}

// TestGracefulShutdown drains the server while requests are in flight:
// every admitted request must still receive its complete 200 response,
// and post-drain requests must get 503.
func TestGracefulShutdown(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 8, QueueDepth: 8,
		Cache: uafcheck.NewCache(uafcheck.CacheConfig{Dir: t.TempDir(), AsyncDiskWrites: 64})})

	const n = 4
	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := AnalyzeRequest{
				Name: fmt.Sprintf("drain%d.chpl", i),
				Src:  fanoutSrc(fmt.Sprintf("drain%d", i), 11),
			}
			resp, body := post(t, ts, "/v1/analyze", req)
			codes[i], bodies[i] = resp.StatusCode, body
		}(i)
	}

	// Drain only once every request holds a slot: "in-flight" means
	// admitted, and the guarantee under test is that admitted work is
	// always delivered.
	for i := 0; ; i++ {
		if inflight, _ := srv.gate.load(); inflight == n {
			break
		}
		if i > 5000 {
			t.Fatal("requests never all admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("in-flight request %d lost to shutdown: status %d, body %s", i, codes[i], bodies[i])
			continue
		}
		var res wire.Result
		if err := json.Unmarshal(bodies[i], &res); err != nil {
			t.Errorf("in-flight request %d: truncated body: %v", i, err)
		}
	}

	resp, _ := post(t, ts, "/v1/analyze", AnalyzeRequest{Name: "late.chpl", Src: "proc p() { }\n"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503", resp.StatusCode)
	}
	hresp, hbody := get(t, ts, "/healthz")
	if hresp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(hbody, []byte("draining")) {
		t.Errorf("draining /healthz: status %d body %s, want 503 draining", hresp.StatusCode, hbody)
	}
}

// TestBatchNDJSON streams a corpus subset through /v1/analyze-batch and
// checks each NDJSON line is byte-identical to the corresponding
// single-file response.
func TestBatchNDJSON(t *testing.T) {
	files := loadCorpus(t)
	if len(files) > 6 {
		files = files[:6]
	}
	srv, ts := newTestServer(t, Config{Cache: uafcheck.NewCache(uafcheck.CacheConfig{})})

	breq := BatchRequest{Files: make([]BatchFile, len(files))}
	for i, f := range files {
		breq.Files[i] = BatchFile{Name: f.Name, Src: f.Src}
	}
	resp, body := post(t, ts, "/v1/analyze-batch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("batch Content-Type = %q", ct)
	}

	lines := map[string][]byte{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var res wire.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines[res.Name] = append([]byte(nil), sc.Bytes()...)
	}
	if len(lines) != len(files) {
		t.Fatalf("got %d NDJSON lines, want %d", len(lines), len(files))
	}

	for _, f := range files {
		line, ok := lines[f.Name]
		if !ok {
			t.Errorf("no batch line for %s", f.Name)
			continue
		}
		_, single := post(t, ts, "/v1/analyze", AnalyzeRequest{Name: f.Name, Src: f.Src})
		if !bytes.Equal(line, bytes.TrimSuffix(single, []byte("\n"))) {
			t.Errorf("%s: batch line differs from single-file response\n batch: %s\nsingle: %s",
				f.Name, line, single)
		}
	}
	if got := srv.MetricsSnapshot().Counter(obs.CtrServerBatchFiles); got != int64(len(files)) {
		t.Errorf("server.batch_files = %d, want %d", got, len(files))
	}
}

// TestDeadlineDegrades maps a tiny request deadline onto the governor:
// the response is still 200, but the report is marked degraded with the
// deadline stop reason.
func TestDeadlineDegrades(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AnalyzeRequest{
		Name:    "big.chpl",
		Src:     fanoutSrc("big", 14),
		Options: RequestOptions{DeadlineMS: 20},
	}
	resp, body := post(t, ts, "/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res wire.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "timed-out" {
		t.Errorf("status = %q, want timed-out", res.Status)
	}
	if res.Report == nil || res.Report.Degraded == nil ||
		res.Report.Degraded.Reason != uafcheck.DegradeDeadline {
		t.Errorf("report not marked deadline-degraded: %s", body)
	}
}

// TestRequestValidation covers the failure envelope: malformed JSON,
// missing fields, frontend errors and oversized bodies.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})

	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	resp2, _ := post(t, ts, "/v1/analyze", AnalyzeRequest{Name: "empty.chpl"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("missing src: status %d, want 400", resp2.StatusCode)
	}

	resp3, body3 := post(t, ts, "/v1/analyze",
		AnalyzeRequest{Name: "bad.chpl", Src: "proc { nonsense"})
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("frontend error: status %d, want 422", resp3.StatusCode)
	}
	var res wire.Result
	if err := json.Unmarshal(body3, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "error" || res.Error == "" {
		t.Errorf("frontend error body = %s, want status error with message", body3)
	}

	big := AnalyzeRequest{Name: "big.chpl", Src: strings.Repeat("x", 4096)}
	resp4, _ := post(t, ts, "/v1/analyze", big)
	if resp4.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp4.StatusCode)
	}

	resp5, err := ts.Client().Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: status %d, want 405", resp5.StatusCode)
	}
}

// TestAdminEndpoints smoke-tests healthz, livez and the Prometheus
// rendering of the server counters.
func TestAdminEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post(t, ts, "/v1/analyze", AnalyzeRequest{Name: "p.chpl", Src: "proc p() { }\n"})

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"status":"ok"`)) {
		t.Errorf("/healthz: status %d body %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts, "/livez")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("alive")) {
		t.Errorf("/livez: status %d body %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"uafcheck_server_requests 1", // the analyze above; admin GETs don't count
		"uafcheck_server_analyses 1",
		"uafcheck_server_inflight",
		"uafcheck_server_queue_depth",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestGate unit-tests the admission primitive directly: slot reuse,
// queue bounds, drain semantics.
func TestGate(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter fits the queue...
	errc := make(chan error, 2)
	go func() { errc <- g.acquire(context.Background()) }()
	waitQueued(t, g, 1)
	// ...the next overflows it immediately.
	if err := g.acquire(context.Background()); err != errOverload {
		t.Fatalf("queue overflow: %v, want errOverload", err)
	}

	g.release()
	if err := <-errc; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}

	// Drain kicks out a fresh waiter and fails fast afterwards.
	go func() { errc <- g.acquire(context.Background()) }()
	waitQueued(t, g, 1)
	g.drain()
	if err := <-errc; err != errDraining {
		t.Fatalf("drained waiter: %v, want errDraining", err)
	}
	if err := g.acquire(context.Background()); err != errDraining {
		t.Fatalf("post-drain acquire: %v, want errDraining", err)
	}
}

func waitQueued(t *testing.T, g *gate, want int) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if _, q := g.load(); q == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d", want)
}
