package batch

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"uafcheck/internal/analysis"
	"uafcheck/internal/obs"
	"uafcheck/internal/pps"
)

const cleanSrc = `proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) { x = 1; done$ = true; }
  done$;
}
`

const warnSrc = `proc main() {
  var x: int = 0;
  begin with (ref x) { x = 1; }
}
`

// pathoSrc explodes combinatorially: 8 tasks x 4 sync writes each.
var pathoSrc = func() string {
	var b strings.Builder
	b.WriteString("proc main() {\n  var x: int = 0;\n")
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			fmt.Fprintf(&b, "  var s%d_%d$: sync bool;\n", i, j)
		}
	}
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "  begin with (ref x) { x = %d;", i)
		for j := 0; j < 4; j++ {
			fmt.Fprintf(&b, " s%d_%d$ = true;", i, j)
		}
		b.WriteString(" }\n")
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			fmt.Fprintf(&b, "  s%d_%d$;\n", i, j)
		}
	}
	b.WriteString("}\n")
	return b.String()
}()

func TestRunMixedBatch(t *testing.T) {
	files := []File{
		{Name: "clean.chpl", Src: cleanSrc},
		{Name: "warn.chpl", Src: warnSrc},
		{Name: "broken.chpl", Src: "proc ( nope"},
		{Name: "budget.chpl", Src: pathoSrc},
	}
	opts := Options{Workers: 4, Analysis: analysis.DefaultOptions()}
	opts.Analysis.PPS.MaxStates = 200 // forces budget.chpl onto the degradation ladder

	results, sum := Run(files, opts)
	if len(results) != len(files) {
		t.Fatalf("got %d results for %d files", len(results), len(files))
	}
	wantStatus := map[string]Status{
		"clean.chpl":  OK,
		"warn.chpl":   OK,
		"broken.chpl": FrontendError,
		"budget.chpl": Degraded,
	}
	for i, r := range results {
		if r.File.Name != files[i].Name || r.Index != i {
			t.Errorf("result %d misaligned: %s/%d", i, r.File.Name, r.Index)
		}
		if want := wantStatus[r.File.Name]; r.Status != want {
			t.Errorf("%s: status %v, want %v", r.File.Name, r.Status, want)
		}
	}
	if sum.Files != 4 || sum.OK != 2 || sum.Errors != 1 || sum.Degraded != 1 {
		t.Errorf("summary %+v", sum)
	}
	if sum.Degradations() != 1 {
		t.Errorf("Degradations() = %d, want 1", sum.Degradations())
	}
	for _, r := range results {
		if r.File.Name == "budget.chpl" {
			if r.Stop != pps.StopBudget {
				t.Errorf("budget.chpl Stop = %q, want %q", r.Stop, pps.StopBudget)
			}
			if r.Conservative == 0 {
				t.Error("budget.chpl has no conservative warnings")
			}
		}
		if r.File.Name == "warn.chpl" && r.Warnings == 0 {
			t.Error("warn.chpl reported no warnings")
		}
	}
}

func TestTimeoutRetryLadder(t *testing.T) {
	files := []File{{Name: "patho.chpl", Src: pathoSrc}}
	results, sum := Run(files, Options{
		FileTimeout: 25 * time.Millisecond,
		Retries:     2,
		Analysis:    analysis.DefaultOptions(),
	})
	r := results[0]
	// Every attempt hits the wall clock before its (still huge) state
	// budget, so the ladder runs all rungs and the file stays TimedOut.
	if r.Status != TimedOut {
		t.Errorf("status %v, want %v", r.Status, TimedOut)
	}
	if r.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", r.Attempts)
	}
	if sum.Retries != 2 {
		t.Errorf("Summary.Retries = %d, want 2", sum.Retries)
	}
}

func TestRetryConvergesToBudget(t *testing.T) {
	files := []File{{Name: "patho.chpl", Src: pathoSrc}}
	opts := Options{
		FileTimeout:  40 * time.Millisecond,
		Retries:      3,
		BudgetShrink: 64,
		Analysis:     analysis.DefaultOptions(),
	}
	opts.Analysis.PPS.MaxStates = 1 << 16
	results, _ := Run(files, opts)
	r := results[0]
	// 65536 states outrun a 40ms clock, but 1024 (two 64x rungs) do not:
	// the wall-clock timeout converges to a deterministic budget stop.
	if r.Status != Degraded {
		t.Fatalf("status %v (stop %q) after %d attempts, want %v", r.Status, r.Stop, r.Attempts, Degraded)
	}
	if r.Stop != pps.StopBudget {
		t.Errorf("Stop = %q, want %q", r.Stop, pps.StopBudget)
	}
	if r.Attempts < 2 {
		t.Errorf("Attempts = %d, want >= 2", r.Attempts)
	}
}

func TestBatchContextCancelsPendingFiles(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var files []File
	for i := 0; i < 8; i++ {
		files = append(files, File{Name: fmt.Sprintf("f%d.chpl", i), Src: pathoSrc})
	}
	start := time.Now()
	results, sum := Run(files, Options{Workers: 2, Ctx: ctx, Analysis: analysis.DefaultOptions()})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled batch still took %v", elapsed)
	}
	if len(results) != len(files) {
		t.Fatalf("cancelled batch dropped results: %d/%d", len(results), len(files))
	}
	for _, r := range results {
		if r.Res == nil {
			t.Errorf("%s: no result despite cooperative cancellation", r.File.Name)
		}
		if r.Status == OK {
			t.Errorf("%s: OK under a dead context", r.File.Name)
		}
	}
	if sum.Degradations() != len(files) {
		t.Errorf("Degradations() = %d, want %d", sum.Degradations(), len(files))
	}
}

func TestBatchObsCounters(t *testing.T) {
	rec := obs.New()
	perFile := make([]*obs.Recorder, 2)
	files := []File{
		{Name: "clean.chpl", Src: cleanSrc},
		{Name: "warn.chpl", Src: warnSrc},
	}
	_, _ = Run(files, Options{
		Workers:  2,
		Analysis: analysis.DefaultOptions(),
		Obs:      rec,
		PerFileObs: func(i int, f File) *obs.Recorder {
			perFile[i] = obs.New()
			return perFile[i]
		},
	})
	m := rec.Snapshot()
	if m.Counter(obs.CtrBatchFiles) != 2 || m.Counter(obs.CtrBatchOK) != 2 {
		t.Errorf("batch counters: files=%d ok=%d", m.Counter(obs.CtrBatchFiles), m.Counter(obs.CtrBatchOK))
	}
	if m.PhaseTotal(obs.PhaseBatch) <= 0 {
		t.Error("no batch span recorded")
	}
	for i, r := range perFile {
		if r == nil {
			t.Fatalf("PerFileObs not called for file %d", i)
		}
		if r.Snapshot().Counter(obs.CtrProcsAnalyzed) == 0 {
			t.Errorf("file %d recorder saw no analysis counters", i)
		}
	}
}

func TestOnResultStreamsEveryFile(t *testing.T) {
	files := []File{
		{Name: "clean.chpl", Src: cleanSrc},
		{Name: "warn.chpl", Src: warnSrc},
		{Name: "broken.chpl", Src: "proc ( nope"},
	}
	var mu sync.Mutex
	seen := map[int]Result{}
	results, _ := Run(files, Options{
		Workers:  3,
		Analysis: analysis.DefaultOptions(),
		OnResult: func(r Result) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[r.Index]; dup {
				t.Errorf("OnResult fired twice for index %d", r.Index)
			}
			seen[r.Index] = r
		},
	})
	if len(seen) != len(files) {
		t.Fatalf("OnResult fired %d times, want %d", len(seen), len(files))
	}
	// The streamed results must be the same values that land in the
	// final slice — index, status and report alike.
	for i, r := range results {
		s := seen[i]
		if s.File.Name != r.File.Name || s.Status != r.Status || s.Res != r.Res {
			t.Errorf("index %d: streamed %v/%p, final %v/%p",
				i, s.Status, s.Res, r.Status, r.Res)
		}
	}
}
