// Package batch is the fault-isolated parallel driver for multi-file
// analysis runs: a worker pool with per-file wall-clock budgets, bounded
// retry-with-smaller-budget after deadline hits, panic isolation (one
// crashing input never aborts the batch) and aggregate robustness
// telemetry through internal/obs.
//
// The driver is the operational contract the resource governor was built
// for: every input produces exactly one classified Result — OK, Degraded
// (sound conservative over-approximation), TimedOut, Crashed or
// FrontendError — so a corpus run over millions of files can always
// account for every file, and a shell caller can always distinguish a
// clean run from a degraded one.
package batch

import (
	"context"
	"runtime"
	"sync"
	"time"

	"uafcheck/internal/analysis"
	"uafcheck/internal/obs"
	"uafcheck/internal/pps"
)

// File is one batch input.
type File struct {
	// Name labels diagnostics and reports (usually a path).
	Name string
	// Src is the MiniChapel source text.
	Src string
}

// Status classifies one file's final outcome, most severe last.
type Status int

const (
	// OK: the pipeline ran to completion; warnings (if any) are exact.
	OK Status = iota
	// Degraded: the exploration stopped on a state budget or batch
	// cancellation and fell back to conservative warnings. Sound, but
	// over-approximate.
	Degraded
	// TimedOut: the per-file deadline fired on every attempt; the final
	// result (when present) is the conservative fallback.
	TimedOut
	// Crashed: a pipeline stage panicked. The panic was recovered into
	// Result.Crashes and the rest of the batch was unaffected.
	Crashed
	// FrontendError: the input failed to lex, parse or resolve.
	FrontendError
)

// String renders the status for reports and telemetry.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	case TimedOut:
		return "timed-out"
	case Crashed:
		return "crashed"
	case FrontendError:
		return "error"
	}
	return "unknown"
}

// Options configure a batch run.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// FileTimeout bounds each attempt's wall clock (0 = unbounded). The
	// per-file context it derives is polled inside the PPS hot loop, so
	// a pathological file returns — degraded — within a few poll
	// intervals of the deadline.
	FileTimeout time.Duration
	// Retries is how many extra attempts a deadline hit earns. Each
	// retry divides the PPS MaxStates budget by BudgetShrink, trading
	// wall-clock flakiness for a deterministic state budget: a file that
	// times out under load converges to a reproducible budget-degraded
	// result instead of flapping.
	Retries int
	// BudgetShrink is the per-retry MaxStates divisor (default 4).
	BudgetShrink int
	// Analysis configures the per-file pipeline.
	Analysis analysis.Options
	// Analyze, when non-nil, replaces analysis.AnalyzeSource as the
	// per-attempt pipeline — the seam the incremental engine plugs into
	// (an Analyzer handle's memoized AnalyzeSourceIncremental). It must
	// honor opts.Ctx and be safe for concurrent use; every attempt
	// (retries included) goes through it with that attempt's effective
	// options, so shrunken retry budgets are never served a full-budget
	// memo.
	Analyze func(name, src string, opts analysis.Options) *analysis.Result
	// Ctx cancels the whole batch. Files not yet started still produce
	// Results: their analyses observe the cancelled context immediately
	// and degrade to the conservative fallback.
	Ctx context.Context
	// Obs receives the batch span and the aggregate outcome counters
	// (files, ok, degraded, crashed, timed_out, errors, retries,
	// warnings). The Recorder is mutex-guarded, so one instance is
	// shared by all workers.
	Obs *obs.Recorder
	// PerFileObs, when set, supplies a telemetry recorder per file; it
	// is attached to the file's analysis options (all attempts of the
	// file share it) and flushed by the worker when the file finishes —
	// so sinks shared across files must be wrapped with
	// obs.Synchronized. Flush errors are best-effort-ignored.
	PerFileObs func(i int, f File) *obs.Recorder
	// OnResult, when set, receives each file's classified result on the
	// worker goroutine that finished it, immediately after the result
	// slot is written and the per-file recorder flushed. Callbacks for
	// different files may run concurrently; the callee must be safe for
	// concurrent use. Streaming consumers (the uafserve batch endpoint)
	// emit per-file responses from this hook instead of waiting for the
	// whole batch.
	OnResult func(r Result)
}

// Result is one file's classified outcome.
type Result struct {
	File  File
	Index int
	// Status is the outcome class; Stop refines Degraded/TimedOut with
	// the machine-readable ladder reason.
	Status Status
	Stop   pps.StopReason
	// Res is the final attempt's analysis (nil only when the attempt was
	// abandoned as a hard hang).
	Res *analysis.Result
	// Crashes carries recovered panics (Status == Crashed).
	Crashes []analysis.Crash
	// Attempts counts pipeline runs for this file (≥ 1 unless the batch
	// context was already dead).
	Attempts int
	// Duration is the wall clock across all attempts.
	Duration time.Duration
	// Warnings / Conservative count the final attempt's warnings and how
	// many of them are degradation-ladder over-approximations.
	Warnings     int
	Conservative int
	// Hung marks an attempt that did not return even after its context
	// fired plus a grace period (the analysis goroutine was abandoned).
	Hung bool
}

// Summary aggregates a batch run — the "files OK / degraded / crashed /
// timed out" accounting line.
type Summary struct {
	Files        int
	OK           int
	Degraded     int
	TimedOut     int
	Crashed      int
	Errors       int
	Retries      int
	Warnings     int
	Conservative int
	Hung         int
}

// Degradations returns how many files produced something other than an
// exact, complete result.
func (s Summary) Degradations() int { return s.Degraded + s.TimedOut + s.Crashed }

// hangGraceMin bounds how long a worker waits for a cancelled analysis
// to come back before abandoning its goroutine.
const hangGraceMin = 100 * time.Millisecond

// Run analyzes every file and returns per-file results (index-aligned
// with files) plus the aggregate summary. Results are deterministic for
// a fixed input set and options: workers race only on who analyzes
// what, never on what a file's analysis observes.
func Run(files []File, opts Options) ([]Result, Summary) {
	endBatch := opts.Obs.Span(obs.PhaseBatch)
	defer endBatch()
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	// Concurrency split: total parallelism ≈ Workers × per-analysis PPS
	// workers. With many files, file-level workers already saturate the
	// machine, so an unset in-analysis parallelism defaults to sequential
	// exploration here (a single Analyze call defaults to GOMAXPROCS
	// instead). An explicit value passes through — callers with few huge
	// files can flip the split the other way.
	if opts.Analysis.PPS.Parallelism <= 0 {
		opts.Analysis.PPS.Parallelism = 1
	}
	if opts.BudgetShrink <= 1 {
		opts.BudgetShrink = 4
	}
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}

	results := make([]Result, len(files))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runFile(files[i], i, opts)
				if opts.OnResult != nil {
					opts.OnResult(results[i])
				}
			}
		}()
	}
	for i := range files {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	sum := summarize(results)
	flushObs(opts.Obs, sum)
	return results, sum
}

// runFile drives one file through the attempt/retry ladder.
func runFile(f File, idx int, opts Options) Result {
	start := time.Now()
	res := Result{File: f, Index: idx}

	aopts := opts.Analysis
	if opts.PerFileObs != nil {
		aopts.Obs = opts.PerFileObs(idx, f)
		defer aopts.Obs.Flush() //nolint:errcheck — telemetry is best-effort
	}
	budget := aopts.PPS.MaxStates
	maxAttempts := 1 + opts.Retries

	for attempt := 0; attempt < maxAttempts; attempt++ {
		res.Attempts = attempt + 1
		if attempt > 0 {
			// Retry rung: a deadline hit means the state space outran the
			// wall clock. Shrink the deterministic budget so the retry
			// terminates by state count, not by timer.
			if budget <= 0 {
				budget = pps.DefaultMaxStates()
			}
			budget /= opts.BudgetShrink
			if budget < 1 {
				budget = 1
			}
			aopts.PPS.MaxStates = budget
		}
		ar, hung := runAttempt(f, aopts, opts)
		if hung {
			res.Hung = true
			res.Status = TimedOut
			res.Stop = pps.StopDeadline
			continue // retry with a smaller budget, if any attempts remain
		}
		res.Res = ar
		res.Hung = false
		classify(&res, ar)
		if res.Status != TimedOut {
			break
		}
	}
	res.Duration = time.Since(start)
	return res
}

// runAttempt executes one pipeline run under the per-file deadline. The
// analysis runs in its own goroutine so a hard hang (a loop that never
// reaches a cancellation poll) can be abandoned; the cooperative path —
// by far the common one — returns promptly after the context fires.
func runAttempt(f File, aopts analysis.Options, opts Options) (ar *analysis.Result, hung bool) {
	ctx := opts.Ctx
	cancel := context.CancelFunc(func() {})
	if opts.FileTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opts.FileTimeout)
	}
	defer cancel()
	aopts.Ctx = ctx

	analyze := opts.Analyze
	if analyze == nil {
		analyze = analysis.AnalyzeSource
	}
	done := make(chan *analysis.Result, 1)
	go func() {
		// analysis recovers per-proc panics itself; this recover is the
		// net under frontend/report crashes so the worker never dies.
		defer func() {
			if r := recover(); r != nil {
				done <- nil
			}
		}()
		done <- analyze(f.Name, f.Src, aopts)
	}()

	select {
	case ar = <-done:
		return ar, false
	case <-ctx.Done():
	}
	grace := opts.FileTimeout
	if grace < hangGraceMin {
		grace = hangGraceMin
	}
	select {
	case ar = <-done:
		return ar, false
	case <-time.After(grace):
		return nil, true
	}
}

// classify maps one attempt's analysis result onto the outcome ladder.
func classify(res *Result, ar *analysis.Result) {
	res.Warnings = 0
	res.Conservative = 0
	res.Stop = pps.StopNone
	if ar == nil {
		// The attempt goroutine panicked outside the per-proc recovery.
		res.Status = Crashed
		res.Stop = analysis.StopPanic
		return
	}
	res.Crashes = ar.Crashes
	for _, w := range ar.Warnings() {
		res.Warnings++
		if w.Conservative {
			res.Conservative++
		}
	}
	if ar.Diags.HasErrors() {
		res.Status = FrontendError
		return
	}
	res.Stop = ar.Degraded()
	switch res.Stop {
	case pps.StopNone:
		res.Status = OK
	case analysis.StopPanic:
		res.Status = Crashed
	case pps.StopDeadline:
		res.Status = TimedOut
	default: // budget, cancelled
		res.Status = Degraded
	}
}

// summarize folds the per-file results.
func summarize(results []Result) Summary {
	var s Summary
	s.Files = len(results)
	for i := range results {
		r := &results[i]
		switch r.Status {
		case OK:
			s.OK++
		case Degraded:
			s.Degraded++
		case TimedOut:
			s.TimedOut++
		case Crashed:
			s.Crashed++
		case FrontendError:
			s.Errors++
		}
		s.Retries += r.Attempts - 1
		s.Warnings += r.Warnings
		s.Conservative += r.Conservative
		if r.Hung {
			s.Hung++
		}
	}
	return s
}

// flushObs records the aggregate counters once per batch.
func flushObs(r *obs.Recorder, s Summary) {
	if r == nil {
		return
	}
	r.Add(obs.CtrBatchFiles, int64(s.Files))
	r.Add(obs.CtrBatchOK, int64(s.OK))
	r.Add(obs.CtrBatchDegraded, int64(s.Degraded))
	r.Add(obs.CtrBatchTimedOut, int64(s.TimedOut))
	r.Add(obs.CtrBatchCrashed, int64(s.Crashed))
	r.Add(obs.CtrBatchErrors, int64(s.Errors))
	r.Add(obs.CtrBatchRetries, int64(s.Retries))
	r.Add(obs.CtrBatchWarnings, int64(s.Warnings))
}
