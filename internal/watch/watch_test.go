package watch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uafcheck"
	"uafcheck/internal/fault"
)

// syncBuf is a mutex-guarded output buffer: the service writes from
// its own goroutine while tests poll String.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

const buggySrc = "proc p() {\n  var x: int = 0;\n  begin with (ref x) {\n    x = 1;\n  }\n}\n"
const fixedSrc = "proc p() {\n  var x: int = 0;\n  sync {\n    begin with (ref x) {\n      x = 1;\n    }\n  }\n}\n"

// editedSrc changes p's body (not just trailing trivia), so the
// incremental engine must re-run the unit instead of serving its memo.
const editedSrc = "proc p() {\n  var x: int = 0;\n  begin with (ref x) {\n    x = 2;\n  }\n}\n"

// fanoutSrc explores far more than a 2-state budget, forcing the
// budget rung of the degradation ladder (same shape as the public
// API's syntheticFanout benchmark program).
const fanoutSrc = `config const flag = true;
proc fan() {
  var x: int = 1;
  var d0$: sync bool;
  var d1$: sync bool;
  var d2$: sync bool;
  var d3$: sync bool;
  begin with (ref x) { x += 1; d0$ = true; }
  begin with (ref x) { x += 2; d1$ = true; }
  begin with (ref x) { x += 3; d2$ = true; }
  begin with (ref x) { x += 4; d3$ = true; }
  if (flag) { writeln(0); } else { writeln(0); }
  if (flag) { writeln(1); } else { writeln(0); }
  d0$;
  d1$;
  d2$;
  d3$;
}
`

// startService spins up a Service over roots with fast test timings
// and returns it plus its output buffer and a stop func.
func startService(t *testing.T, roots []string, hang time.Duration) (*Service, *syncBuf, func()) {
	t.Helper()
	var out syncBuf
	svc := New(Config{
		Roots:       roots,
		Interval:    2 * time.Millisecond,
		HangTimeout: hang,
		MaxBackoff:  20 * time.Millisecond,
		Out:         &out,
		NewAnalyzer: func() Analyzer { return uafcheck.NewAnalyzer() },
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.Run(ctx)
	}()
	return svc, &out, func() {
		cancel()
		<-done
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTreeScanAndDeletion: a directory root is scanned recursively,
// created files are picked up between polls, and a deleted file's
// warnings drop with a diff line instead of erroring the loop.
func TestTreeScanAndDeletion(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "nested")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	a := filepath.Join(dir, "a.chpl")
	b := filepath.Join(sub, "b.chpl")
	if err := os.WriteFile(a, []byte(buggySrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(fixedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-matching extension is ignored by the tree scan.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc, out, stop := startService(t, []string{dir}, time.Minute)
	defer stop()

	waitFor(t, "initial reports", func() bool {
		return strings.Contains(out.String(), "watch: "+a+": 1 warning(s)") &&
			strings.Contains(out.String(), "watch: "+b+": 0 warning(s)")
	})
	if svc.Status().Files != 2 {
		t.Errorf("Files = %d, want 2 (README.md must not be tracked)", svc.Status().Files)
	}

	// A file created after startup is picked up by the rescan.
	c := filepath.Join(sub, "c.chpl")
	if err := os.WriteFile(c, []byte(buggySrc), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "created file report", func() bool {
		return strings.Contains(out.String(), "watch: "+c+": 1 warning(s)")
	})

	// Deleting a file drops its warnings with a diff, not an error.
	if err := os.Remove(a); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deletion diff", func() bool {
		return strings.Contains(out.String(), "watch: "+a+": deleted, dropping 1 warning(s)")
	})
	if _, ok := svc.Warnings(a); ok {
		t.Error("deleted file still has served warnings")
	}
	if got := svc.Metrics().Counter("watch.deleted_files"); got != 1 {
		t.Errorf("watch.deleted_files = %d, want 1", got)
	}
	if st := svc.Status(); st.State != StateHealthy {
		t.Errorf("state after deletion = %v, want healthy", st.State)
	}
}

// TestWedgeRecovery is the watch-service wedge test of the acceptance
// criteria: an injected stall makes one analysis overrun the hang
// timeout; the watchdog must abandon it, transition
// healthy -> wedged -> (restart) degraded -> healthy, keep serving the
// last-known-good warning set throughout, and end up with a live
// analyzer that sees subsequent edits.
func TestWedgeRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.chpl")
	if err := os.WriteFile(path, []byte(buggySrc), 0o644); err != nil {
		t.Fatal(err)
	}

	svc, out, stop := startService(t, []string{dir}, 15*time.Millisecond)
	defer stop()
	waitFor(t, "initial report", func() bool {
		return strings.Contains(out.String(), "1 warning(s)")
	})
	lkg, ok := svc.Warnings(path)
	if !ok || len(lkg) != 1 {
		t.Fatalf("no last-known-good warning set: %v %v", lkg, ok)
	}

	// Arm a one-shot stall far past HangTimeout + grace, then touch the
	// file so the next poll walks into it.
	restore := fault.Set(fault.New(7, fault.Rule{
		Point: fault.AnalysisDelay, Mode: fault.ModeDelay, Prob: 1, Count: 1,
		Delay: 30 * time.Second,
	}))
	defer restore()
	if err := os.WriteFile(path, []byte(editedSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "watchdog abandon", func() bool {
		return svc.Status().Abandoned >= 1
	})
	if st := svc.Status(); st.State != StateWedged {
		t.Errorf("state after abandon = %v, want wedged", st.State)
	}
	// Last-known-good keeps being served while wedged.
	if got, ok := svc.Warnings(path); !ok || len(got) != len(lkg) || got[0] != lkg[0] {
		t.Errorf("last-known-good not served while wedged: %v", got)
	}

	// Backoff elapses, a fresh analyzer is built, and the retried
	// analysis (stall was one-shot) succeeds: healthy again.
	waitFor(t, "analyzer restart", func() bool { return svc.Status().Restarts >= 1 })
	waitFor(t, "recovery to healthy", func() bool { return svc.Status().State == StateHealthy })

	// The full transition chain is observable in the event stream.
	got := out.String()
	for _, want := range []string{
		"watch: state healthy -> wedged",
		"abandoned (hang watchdog)",
		"watch: analyzer restarted (restart 1)",
		"watch: state wedged -> degraded",
		"watch: state degraded -> healthy",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("event stream missing %q:\n%s", want, got)
		}
	}

	// And the restarted analyzer is actually serving: an edit that
	// fixes the bug produces a removal diff.
	if err := os.WriteFile(path, []byte(fixedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restart diff", func() bool {
		return strings.Contains(out.String(), "- "+path)
	})

	m := svc.Metrics()
	if m.Counter("watch.abandoned") < 1 || m.Counter("watch.restarts") < 1 {
		t.Errorf("watchdog counters missing: abandoned=%d restarts=%d",
			m.Counter("watch.abandoned"), m.Counter("watch.restarts"))
	}
	if m.Gauge("watch.state") != int64(StateWedged) {
		t.Errorf("watch.state gauge high-water = %d, want %d (wedged)",
			m.Gauge("watch.state"), StateWedged)
	}
}

// TestDegradedReportKeepsServing: a degraded (conservative-superset)
// analysis flags the pass degraded but its warnings are still served
// and diffed; the service returns to healthy on the next clean pass.
func TestDegradedReportKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.chpl")
	if err := os.WriteFile(path, []byte(fanoutSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	var out syncBuf
	// A two-state budget degrades the fanout analysis to the
	// conservative ladder.
	svc := New(Config{
		Roots:       []string{path},
		Interval:    2 * time.Millisecond,
		HangTimeout: time.Minute,
		Out:         &out,
		NewAnalyzer: func() Analyzer {
			return uafcheck.NewAnalyzer(uafcheck.WithMaxStates(2))
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); svc.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, "degraded report", func() bool {
		return strings.Contains(out.String(), "degraded analysis (budget)")
	})
	if _, ok := svc.Warnings(path); !ok {
		t.Error("degraded analysis did not serve its conservative warnings")
	}
	if st := svc.Status(); st.State == StateWedged {
		t.Errorf("degraded report must not wedge the service: %v", st.State)
	}
}

// TestReadFaultDegrades: an injected read failure degrades the pass
// without killing the loop, and the file recovers on the next poll.
func TestReadFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.chpl")
	if err := os.WriteFile(path, []byte(buggySrc), 0o644); err != nil {
		t.Fatal(err)
	}
	restore := fault.Set(fault.New(5, fault.Rule{
		Point: fault.WatchRead, Mode: fault.ModeError, Prob: 1, Count: 3,
	}))
	defer restore()

	svc, out, stop := startService(t, []string{path}, time.Minute)
	defer stop()
	// The injected read errors burn off (Count: 3), then the file
	// analyzes and the service settles healthy.
	waitFor(t, "recovery after read faults", func() bool {
		return strings.Contains(out.String(), "1 warning(s)") &&
			svc.Status().State == StateHealthy
	})
}

// TestDiffWarnings pins the multiset diff used for the +/- output.
func TestDiffWarnings(t *testing.T) {
	cases := []struct {
		old, new, add, rem []string
	}{
		{nil, nil, nil, nil},
		{nil, []string{"w1", "w2"}, []string{"w1", "w2"}, nil},
		{[]string{"w1", "w2"}, nil, nil, []string{"w1", "w2"}},
		{[]string{"w1", "w2"}, []string{"w2", "w3"}, []string{"w3"}, []string{"w1"}},
		{[]string{"w"}, []string{"w"}, nil, nil},
		{[]string{"w", "w"}, []string{"w"}, nil, []string{"w"}},
	}
	for i, c := range cases {
		add, rem := DiffWarnings(c.old, c.new)
		if fmt.Sprint(add) != fmt.Sprint(c.add) || fmt.Sprint(rem) != fmt.Sprint(c.rem) {
			t.Errorf("case %d: DiffWarnings(%v, %v) = +%v -%v, want +%v -%v",
				i, c.old, c.new, add, rem, c.add, c.rem)
		}
	}
}
