// Package watch is the supervised repo-watch service behind
// `uafcheck -watch`: it polls a set of files or whole project trees,
// re-analyzes changed files through a long-lived incremental Analyzer,
// and prints warning diffs — while a watchdog keeps the loop alive
// when the analyzer itself misbehaves.
//
// Supervision model. The service is always in one of three states:
//
//   - healthy: every file analyzed cleanly on the latest poll;
//   - degraded: something went wrong this poll (an analysis errored,
//     returned a degraded conservative-superset report, or the
//     analyzer was just restarted) but the loop is running — the
//     last-known-good warning set for each file keeps being served;
//   - wedged: an analysis overran its hang timeout plus grace and was
//     abandoned. The analyzer (which may be stuck holding its memo
//     store's locks) is discarded; the service serves last-known-good
//     warnings while it waits out an exponential backoff (with
//     deterministic jitter) before building a fresh analyzer via the
//     configured factory.
//
// A clean pass returns the service to healthy from either degraded
// state. Transitions, per-file diffs and watchdog actions all print to
// Config.Out with the stable "watch: " prefix, and the obs counters
// watch.polls/changed_files/deleted_files/abandoned/restarts plus the
// watch.state/watch.files gauges make the machine observable from
// metrics alone.
package watch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"uafcheck"
	"uafcheck/internal/fault"
	"uafcheck/internal/obs"
)

// State is the watchdog's supervision state.
type State int32

const (
	// StateHealthy: the latest poll analyzed every changed file cleanly.
	StateHealthy State = iota
	// StateDegraded: the loop is serving, but the latest poll hit an
	// analysis error, a degraded (conservative-superset) report, or the
	// analyzer was just restarted and has not proven itself yet.
	StateDegraded
	// StateWedged: a hung analysis was abandoned; the analyzer is gone
	// and the service is backing off before building a fresh one.
	// Last-known-good warnings keep being served meanwhile.
	StateWedged
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateWedged:
		return "wedged"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Analyzer is the incremental analysis dependency, satisfied by
// *uafcheck.Analyzer. The factory in Config builds one at startup and
// again after every watchdog-forced restart.
type Analyzer interface {
	AnalyzeDelta(ctx context.Context, filename, src string) (*uafcheck.Report, error)
}

// ErrAbandoned is returned (wrapped) when the watchdog gives up on a
// hung analysis.
var ErrAbandoned = errors.New("watch: analysis abandoned by watchdog")

// errBackingOff marks polls skipped because the service is wedged and
// waiting out its restart backoff.
var errBackingOff = errors.New("watch: analyzer restart pending")

// Config configures a Service. Roots and NewAnalyzer are required.
type Config struct {
	// Roots are the files and/or directory trees to watch. Directories
	// are rescanned every poll (recursive), picking up created files and
	// dropping deleted ones; explicit file roots are watched even when
	// their extension does not match Exts.
	Roots []string
	// Exts are the file extensions tracked inside directory roots
	// (default ".chpl").
	Exts []string
	// Interval is the poll period (default 500ms).
	Interval time.Duration
	// HangTimeout bounds one file's analysis. The analysis context is
	// cancelled at HangTimeout; a worker that ignores even the
	// cancellation is abandoned at HangTimeout + grace (half of
	// HangTimeout) and the analyzer is restarted. Default 30s.
	HangTimeout time.Duration
	// MaxBackoff caps the exponential restart backoff (default 16x
	// Interval, at least 1s).
	MaxBackoff time.Duration
	// Seed seeds the deterministic backoff jitter (0 means 1).
	Seed int64
	// Out receives diffs and supervision events; nil discards them.
	Out io.Writer
	// NewAnalyzer builds the incremental analyzer, at startup and after
	// each watchdog restart. Must be non-nil.
	NewAnalyzer func() Analyzer
}

// Status is a point-in-time snapshot of the supervision state, the
// shape /statusz-style surfaces report.
type Status struct {
	// State is the current watchdog state.
	State State
	// Files is the number of files currently tracked.
	Files int
	// Restarts counts analyzer rebuilds forced by the watchdog.
	Restarts int64
	// Abandoned counts analyses the watchdog gave up on.
	Abandoned int64
	// LastError is the most recent analysis failure ("" when none).
	LastError string
}

// fileState tracks one watched file between polls.
type fileState struct {
	src      string   // last content analyzed
	warnings []string // last-known-good rendered warning set
	known    bool     // at least one successful analysis happened
}

// Service is the supervised watch loop. Create with New, drive with
// Run; Status, Warnings and Metrics are safe to call concurrently from
// other goroutines (the wedge tests and a future /statusz handler do).
type Service struct {
	cfg Config
	rec *obs.Recorder

	mu        sync.Mutex
	state     State
	files     map[string]*fileState
	an        Analyzer
	restartAt time.Time // when wedged: earliest next analyzer rebuild
	wedges    int       // consecutive wedges, drives the backoff exponent
	restarts  int64
	abandoned int64
	lastErr   string
	rng       uint64
	agg       uafcheck.Metrics
}

// New creates a Service; Run starts it.
func New(cfg Config) *Service {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.HangTimeout <= 0 {
		cfg.HangTimeout = 30 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 16 * cfg.Interval
		if cfg.MaxBackoff < time.Second {
			cfg.MaxBackoff = time.Second
		}
	}
	if len(cfg.Exts) == 0 {
		cfg.Exts = []string{".chpl"}
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Service{
		cfg:   cfg,
		rec:   obs.New(),
		files: make(map[string]*fileState),
		an:    cfg.NewAnalyzer(),
		rng:   uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 1,
	}
}

// Run polls until ctx is cancelled. The first pass reports every
// file's full warning set; later passes print diffs only.
func (s *Service) Run(ctx context.Context) {
	s.pass(ctx, true)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.pass(ctx, false)
		}
	}
}

// Status returns the current supervision snapshot.
func (s *Service) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		State:     s.state,
		Files:     len(s.files),
		Restarts:  s.restarts,
		Abandoned: s.abandoned,
		LastError: s.lastErr,
	}
}

// Warnings returns the last-known-good rendered warning set for path —
// what the service keeps serving while degraded or wedged.
func (s *Service) Warnings(path string) ([]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.files[path]
	if !ok || !st.known {
		return nil, false
	}
	return append([]string(nil), st.warnings...), true
}

// Metrics returns the session aggregate: every analyzed report's
// telemetry merged with the watch loop's own counters and gauges.
func (s *Service) Metrics() uafcheck.Metrics {
	s.mu.Lock()
	agg := s.agg
	s.mu.Unlock()
	agg.Merge(s.rec.Snapshot())
	return agg
}

// pass is one poll: rescan the tree, drop deleted files, re-analyze
// changed ones under the watchdog, and settle the supervision state.
func (s *Service) pass(ctx context.Context, first bool) {
	s.rec.Add(obs.CtrWatchPolls, 1)
	present := s.scan(first)
	s.dropDeleted(present)

	clean := true
	for _, p := range present {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if !s.checkFile(ctx, p, first) {
			clean = false
		}
	}

	s.mu.Lock()
	// A clean pass with a live analyzer earns healthy back; a wedged
	// service stays wedged until a restart succeeds.
	if clean && s.an != nil {
		s.setStateLocked(StateHealthy)
		s.wedges = 0
	}
	// Gauges are high-water marks: the aggregate answers "how bad did
	// supervision get" and "how many files at peak", while Status gives
	// the live values.
	s.rec.Max(obs.GaugeWatchState, int64(s.state))
	s.rec.Max(obs.GaugeWatchFiles, int64(len(s.files)))
	s.mu.Unlock()
}

// scan resolves the roots to the sorted set of files watched this
// poll. Directory roots are walked recursively for Exts matches; file
// roots are included as long as they exist. Root-level errors print on
// the first pass only (a missing root later is just "no files").
func (s *Service) scan(first bool) []string {
	seen := make(map[string]bool)
	for _, root := range s.cfg.Roots {
		info, err := os.Stat(root)
		if err != nil {
			if first {
				fmt.Fprintf(s.cfg.Out, "watch: %s: %v\n", root, err)
			}
			continue
		}
		if !info.IsDir() {
			seen[root] = true
			continue
		}
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil // unreadable subtrees degrade to absence
			}
			for _, ext := range s.cfg.Exts {
				if strings.HasSuffix(path, ext) {
					seen[path] = true
					break
				}
			}
			return nil
		})
	}
	present := make([]string, 0, len(seen))
	for p := range seen {
		present = append(present, p)
	}
	sort.Strings(present)
	return present
}

// dropDeleted removes state for files that vanished since the last
// poll, printing a removal diff for their warnings — deletion is an
// ordinary edit, not an error.
func (s *Service) dropDeleted(present []string) {
	here := make(map[string]bool, len(present))
	for _, p := range present {
		here[p] = true
	}
	s.mu.Lock()
	var gone []string
	for p := range s.files {
		if !here[p] {
			gone = append(gone, p)
		}
	}
	sort.Strings(gone)
	for _, p := range gone {
		st := s.files[p]
		delete(s.files, p)
		s.rec.Add(obs.CtrWatchDeleted, 1)
		fmt.Fprintf(s.cfg.Out, "watch: %s: deleted, dropping %d warning(s)\n", p, len(st.warnings))
		for _, w := range st.warnings {
			fmt.Fprintf(s.cfg.Out, "- %s\n", w)
		}
	}
	s.mu.Unlock()
}

// checkFile re-analyzes p when its content changed. Returns false when
// this file left the pass less than clean (read error, analysis error,
// degraded report, abandoned analysis, or skipped during backoff).
func (s *Service) checkFile(ctx context.Context, p string, first bool) bool {
	s.mu.Lock()
	st := s.files[p]
	if st == nil {
		st = &fileState{}
		s.files[p] = st
	}
	prev := st.src
	s.mu.Unlock()

	data, err := os.ReadFile(p)
	if err == nil {
		err = fault.Err(fault.WatchRead)
	}
	if err != nil {
		if os.IsNotExist(err) {
			// Deleted between scan and read; the next poll's scan prints
			// the removal diff.
			return true
		}
		if first {
			fmt.Fprintf(s.cfg.Out, "watch: %s: %v\n", p, err)
		}
		s.noteError(err)
		return false
	}
	src := string(data)
	if !first && src == prev {
		return true
	}
	s.rec.Add(obs.CtrWatchChanged, 1)

	rep, err := s.analyzeGuarded(ctx, p, src)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return true // shutdown, not a failure
		}
		if errors.Is(err, errBackingOff) || errors.Is(err, ErrAbandoned) {
			// Transient supervision trouble: leave st.src alone so the
			// restarted analyzer retries this content on a later poll.
			return false
		}
		// Frontend failure mid-edit is normal; record the content so an
		// unchanged broken file is not re-parsed (and re-reported) every
		// poll, and keep the last good warning set so the eventual diff
		// is against it.
		s.mu.Lock()
		st.src = src
		s.mu.Unlock()
		fmt.Fprintf(s.cfg.Out, "watch: %s: %v\n", p, err)
		s.noteError(err)
		return false
	}

	s.mu.Lock()
	st.src = src
	s.agg.Merge(rep.Metrics)
	s.mu.Unlock()
	uafcheck.SortWarnings(rep.Warnings)
	next := make([]string, len(rep.Warnings))
	for i, w := range rep.Warnings {
		next[i] = w.String()
	}

	clean := rep.Degraded == nil
	if !clean {
		// A degraded report is a sound conservative superset — safe to
		// serve and diff, but the pass is not healthy.
		fmt.Fprintf(s.cfg.Out, "watch: %s: degraded analysis (%s), warnings are a conservative superset\n",
			p, rep.Degraded.Reason)
		s.noteError(fmt.Errorf("degraded analysis of %s: %s", p, rep.Degraded.Reason))
	}

	s.mu.Lock()
	known := st.known
	old := st.warnings
	st.warnings = next
	st.known = true
	s.mu.Unlock()

	if first || !known {
		fmt.Fprintf(s.cfg.Out, "watch: %s: %d warning(s)\n", p, len(next))
		for _, w := range next {
			fmt.Fprintf(s.cfg.Out, "+ %s\n", w)
		}
		return clean
	}
	added, removed := DiffWarnings(old, next)
	if len(added)+len(removed) > 0 {
		fmt.Fprintf(s.cfg.Out, "watch: %s: %+d/-%d warning(s)\n", p, len(added), len(removed))
		for _, w := range removed {
			fmt.Fprintf(s.cfg.Out, "- %s\n", w)
		}
		for _, w := range added {
			fmt.Fprintf(s.cfg.Out, "+ %s\n", w)
		}
	}
	return clean
}

// analyzeGuarded runs one analysis under the watchdog: the analysis
// context is cancelled at HangTimeout, and a worker that ignores even
// that is abandoned at HangTimeout + grace — its goroutine is left to
// die on its own, the analyzer it may have wedged is discarded, and a
// replacement is scheduled after an exponential backoff.
func (s *Service) analyzeGuarded(ctx context.Context, path, src string) (*uafcheck.Report, error) {
	an, err := s.analyzer()
	if err != nil {
		return nil, err
	}

	actx, cancel := context.WithTimeout(ctx, s.cfg.HangTimeout)
	defer cancel()
	type result struct {
		rep *uafcheck.Report
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rep, err := an.AnalyzeDelta(actx, path, src)
		ch <- result{rep, err}
	}()

	grace := s.cfg.HangTimeout / 2
	timer := time.NewTimer(s.cfg.HangTimeout + grace)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.rep, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
		s.abandon(an, path)
		return nil, fmt.Errorf("%w: %s did not return within %v",
			ErrAbandoned, path, s.cfg.HangTimeout+grace)
	}
}

// analyzer returns the live analyzer, rebuilding it when a wedge's
// backoff has elapsed. During backoff it returns errBackingOff and the
// caller skips the file (last-known-good keeps being served).
func (s *Service) analyzer() (Analyzer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.an != nil {
		return s.an, nil
	}
	if time.Now().Before(s.restartAt) {
		return nil, errBackingOff
	}
	s.an = s.cfg.NewAnalyzer()
	s.restarts++
	s.rec.Add(obs.CtrWatchRestarts, 1)
	// The rebuilt analyzer starts degraded; a clean pass earns healthy.
	s.setStateLocked(StateDegraded)
	fmt.Fprintf(s.cfg.Out, "watch: analyzer restarted (restart %d)\n", s.restarts)
	return s.an, nil
}

// abandon gives up on a hung analysis: the analyzer is discarded (only
// if it is still the current one — a concurrent abandon may have beaten
// us) and the next rebuild is scheduled with exponential backoff plus
// deterministic jitter.
func (s *Service) abandon(an Analyzer, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.abandoned++
	s.rec.Add(obs.CtrWatchAbandoned, 1)
	s.lastErr = fmt.Sprintf("analysis of %s abandoned after %v", path, s.cfg.HangTimeout)
	if s.an != an {
		return
	}
	s.an = nil
	s.wedges++
	// Backoff scales from the hang timeout (a restart cheaper than one
	// analysis worth of waiting buys nothing) and doubles per
	// consecutive wedge.
	backoff := s.cfg.HangTimeout
	if backoff < s.cfg.Interval {
		backoff = s.cfg.Interval
	}
	for i := 1; i < s.wedges && backoff < s.cfg.MaxBackoff; i++ {
		backoff *= 2
	}
	if backoff > s.cfg.MaxBackoff {
		backoff = s.cfg.MaxBackoff
	}
	// Deterministic jitter in [0, backoff/4): splitmix64 over the seed,
	// so a chaos run's restart schedule reproduces exactly.
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	backoff += time.Duration(z % uint64(backoff/4+1))
	s.restartAt = time.Now().Add(backoff)
	s.setStateLocked(StateWedged)
	fmt.Fprintf(s.cfg.Out, "watch: analysis of %s abandoned (hang watchdog); analyzer restart in %v\n",
		path, backoff.Round(time.Millisecond))
}

// noteError records a failure and degrades the state (never past
// wedged — an already-wedged service stays wedged).
func (s *Service) noteError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastErr = err.Error()
	if s.state == StateHealthy {
		s.setStateLocked(StateDegraded)
	}
}

// setStateLocked transitions the state machine, printing observable
// transitions. Caller holds s.mu.
func (s *Service) setStateLocked(next State) {
	if s.state == next {
		return
	}
	fmt.Fprintf(s.cfg.Out, "watch: state %s -> %s\n", s.state, next)
	s.state = next
}

// DiffWarnings computes the multiset difference between two rendered
// warning lists: which lines appeared and which disappeared. Both
// outputs come back sorted for stable display.
func DiffWarnings(old, new []string) (added, removed []string) {
	counts := make(map[string]int, len(old))
	for _, w := range old {
		counts[w]++
	}
	for _, w := range new {
		if counts[w] > 0 {
			counts[w]--
		} else {
			added = append(added, w)
		}
	}
	for w, n := range counts {
		for i := 0; i < n; i++ {
			removed = append(removed, w)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}
