package eval

import (
	"uafcheck/internal/analysis"
	"uafcheck/internal/batch"
	"uafcheck/internal/corpus"
)

// RunTableIBatch runs the Table I evaluation on the fault-isolated batch
// driver instead of the bare worker pool of RunTableIParallel: per-case
// deadlines, retry-with-smaller-budget, and panic isolation, so one
// pathological generated program can slow or crash only itself, never the
// evaluation. The returned Summary is the robustness accounting (cases
// OK / degraded / timed out / crashed).
//
// Scoring is identical to RunTableI — outcomes feed the same aggregate —
// so on a healthy corpus all three drivers produce the same table.
func RunTableIBatch(cases []corpus.TestCase, opts analysis.Options, bopts batch.Options) (TableI, *Details, batch.Summary) {
	files := make([]batch.File, len(cases))
	for i := range cases {
		files[i] = batch.File{Name: cases[i].Name + ".chpl", Src: cases[i].Source}
	}
	bopts.Analysis = opts
	results, sum := batch.Run(files, bopts)

	outcomes := make([]CaseOutcome, len(cases))
	for i := range results {
		outcomes[i] = outcomeFrom(&cases[i], results[i].Res, results[i].Duration)
	}
	table, det := aggregate(cases, outcomes)
	return table, det, sum
}
