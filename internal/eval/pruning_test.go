package eval

import (
	"testing"

	"uafcheck/internal/analysis"
	"uafcheck/internal/ccfg"
	"uafcheck/internal/corpus"
)

// TestPruningStatsAllRulesFire: every pruning rule of §III-A applies
// somewhere on the enriched corpus, and pruning reduces the total PPS
// exploration size without changing any verdict (verdict preservation is
// covered by TestPruneSoundnessProperty; counts by RunTableI guards).
func TestPruningStatsAllRulesFire(t *testing.T) {
	cases := corpus.Generate(corpus.Params{
		Seed: 23, Tests: 260, BeginTests: 130,
		UnsafeTests: 10, TrueSites: 30, AtomicFPTests: 10, FalseSites: 40,
	})
	rep := RunPruningStats(cases, analysis.DefaultOptions())
	if rep.Cases == 0 || rep.TotalTasks == 0 {
		t.Fatal("degenerate pruning report")
	}
	for _, rule := range []ccfg.PruneRule{ccfg.PruneA, ccfg.PruneB, ccfg.PruneC} {
		if rep.ByRule[rule] == 0 {
			t.Errorf("rule %s never fired on the corpus\n%s", rule, rep.Format())
		}
	}
	if rep.PrunedTasks == 0 {
		t.Fatal("nothing pruned")
	}
	if rep.StatesWith > rep.StatesWithout {
		t.Errorf("pruning increased exploration: %d vs %d", rep.StatesWith, rep.StatesWithout)
	}
	if out := rep.Format(); len(out) == 0 {
		t.Error("empty format")
	}
}

// TestPruneRuleDFires: rule D needs a task with safe children and no own
// outer accesses; the corpus patterns don't produce one, so check it
// directly.
func TestPruneRuleDFires(t *testing.T) {
	cases := []corpus.TestCase{{
		Name:     "ruled",
		HasBegin: true,
		Source: `proc f() {
  begin {
    var y: int = 1;
    begin with (in y) { writeln(y); }
  }
}`,
	}}
	rep := RunPruningStats(cases, analysis.DefaultOptions())
	if rep.ByRule[ccfg.PruneD] == 0 {
		t.Errorf("rule D did not fire:\n%s", rep.Format())
	}
}
