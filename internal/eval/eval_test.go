package eval

import (
	"testing"

	"uafcheck/internal/analysis"
	"uafcheck/internal/corpus"
	"uafcheck/internal/parser"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// smallParams shrink the suite for fast unit testing while preserving the
// population structure.
func smallParams(seed int64) corpus.Params {
	return corpus.Params{
		Seed:          seed,
		Tests:         200,
		BeginTests:    40,
		UnsafeTests:   8,
		TrueSites:     24,
		AtomicFPTests: 8,
		FalseSites:    48,
	}
}

// TestCorpusSmallShape verifies the evaluation invariants on a reduced
// suite: every ground-truth site is flagged (no soundness gaps), safe
// patterns never warn (no stray precision bugs), and the aggregate counts
// follow the construction.
func TestCorpusSmallShape(t *testing.T) {
	cases := corpus.Generate(smallParams(7))
	table, det := RunTableI(cases, analysis.DefaultOptions())

	if det.FrontendFailures != 0 {
		t.Fatalf("%d corpus programs failed the frontend", det.FrontendFailures)
	}
	if len(det.UnexpectedWarnCases) != 0 {
		t.Fatalf("safe patterns warned: %v", det.UnexpectedWarnCases)
	}
	for _, out := range det.Outcomes {
		if len(out.MissedSites) != 0 {
			t.Fatalf("case %s missed true sites %v\nsource:\n%s",
				out.Case.Name, out.MissedSites, out.Case.Source)
		}
	}
	if table.TotalTests != 200 || table.TestsWithBegin != 40 {
		t.Errorf("population = %d/%d, want 200/40", table.TotalTests, table.TestsWithBegin)
	}
	if table.TestsWithWarnings != 16 {
		t.Errorf("flagged cases = %d, want 16 (8 unsafe + 8 atomic)", table.TestsWithWarnings)
	}
	if table.TruePositives != 24 {
		t.Errorf("true positives = %d, want 24", table.TruePositives)
	}
	if table.WarningsReported != 24+48 {
		t.Errorf("warnings = %d, want 72", table.WarningsReported)
	}
}

// TestOracleConfirmsGroundTruth cross-validates generator labels with the
// dynamic scheduler: every true site must be dynamically observable and
// no atomic-pattern case may ever trigger a real use-after-free.
func TestOracleConfirmsGroundTruth(t *testing.T) {
	cases := corpus.Generate(smallParams(11))
	rep := ValidateWithOracle(cases, 0, 400, 3)
	if rep.TotalTrue == 0 {
		t.Fatalf("oracle validated no sites")
	}
	if rep.ConfirmedTrue != rep.TotalTrue {
		t.Errorf("oracle confirmed %d/%d true sites", rep.ConfirmedTrue, rep.TotalTrue)
	}
	if len(rep.FalseAlarms) != 0 {
		t.Errorf("atomic-pattern cases triggered real UAF: %v", rep.FalseAlarms)
	}
}

// TestSafePatternsLifetimeVsRaces: "safe" in the corpus means
// LIFETIME-safe (the paper's property). The vector-clock detector draws
// the finer line: wait-chain/handshake idioms are also race-free, while
// fenced parallel increments (safe-syncblock) and the nested-chain's
// unordered read are genuine data races despite being free of
// use-after-free — exactly the distinction §VI draws between the two
// problem families.
func TestSafePatternsLifetimeVsRaces(t *testing.T) {
	raceFree := map[string]bool{
		"safe-syncchain":        true,
		"safe-inintent":         true,
		"safe-single":           true,
		"safe-syncedref":        true,
		"safe-fenced-handshake": true,
		"safe-nestedproc":       true,
		// safe-syncblock: 2+ tasks increment the same variable under one
		// fence — lifetime-safe, racy.
		"safe-syncblock": false,
		// safe-nestedchain: the nested task's read races the outer
		// task's increment (they are mutually unordered).
		"safe-nestedchain": false,
	}
	cases := corpus.Generate(smallParams(41))
	checked := 0
	sawRacy := false
	for i := range cases {
		tc := &cases[i]
		if !tc.HasBegin || tc.WantWarn {
			continue
		}
		wantFree, known := raceFree[tc.Pattern]
		if !known {
			t.Fatalf("pattern %s missing from the race expectation table", tc.Pattern)
		}
		diags := &source.Diagnostics{}
		mod := parser.ParseSource(tc.Name, tc.Source, diags)
		if diags.HasErrors() {
			t.Fatalf("%s: %s", tc.Name, diags)
		}
		info := sym.Resolve(mod, diags)
		if diags.HasErrors() {
			t.Fatalf("%s: %s", tc.Name, diags)
		}
		er := runtime.ExploreExhaustive(mod, info, tc.EntryProc, 3000)
		checked++
		if wantFree && len(er.Races) != 0 {
			t.Errorf("%s (%s): expected race-free, got %v\n%s",
				tc.Name, tc.Pattern, er.Races, tc.Source)
		}
		if len(er.Races) > 0 {
			sawRacy = true
		}
		// Lifetime safety holds for ALL safe patterns regardless.
		if len(er.UAF) != 0 {
			t.Errorf("%s (%s): safe pattern UAF: %v", tc.Name, tc.Pattern, er.UAF)
		}
	}
	if checked == 0 {
		t.Fatal("no safe cases checked")
	}
	if !sawRacy {
		t.Error("expected the fenced-increment patterns to exhibit races")
	}
	t.Logf("lifetime-vs-race check over %d safe task programs", checked)
}

// TestBaselineComparison: the §VI baselines must flag at least as much as
// the paper's analysis, and strictly more on wait-chain-protected code.
func TestBaselineComparison(t *testing.T) {
	cases := corpus.Generate(smallParams(13))
	rep := RunBaselines(cases, analysis.DefaultOptions())
	if rep.Cases == 0 {
		t.Fatal("no begin cases analyzed")
	}
	if rep.NaiveMHPFlags < rep.PaperWarnings {
		t.Errorf("naive MHP (%d) flagged less than the paper (%d)", rep.NaiveMHPFlags, rep.PaperWarnings)
	}
	if rep.ClearedByPPS <= 0 {
		t.Errorf("PPS exploration cleared nothing (%d); wait-chain patterns should be cleared", rep.ClearedByPPS)
	}
	if rep.FinishWouldBlock <= 0 {
		t.Errorf("finish discipline blocked no safe case; sync-chain patterns should trip it")
	}
}
