package eval

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// HistBuckets is the number of power-of-two state-count histogram
// buckets: bucket 0 counts cases that created 0 PPS states, bucket i
// (1 ≤ i < HistBuckets-1) counts cases in [2^(i-1), 2^i - 1], and the
// last bucket is the overflow.
const HistBuckets = 14

// HistBucket maps a per-case state count to its bucket index.
func HistBucket(states int) int {
	if states <= 0 {
		return 0
	}
	b := bits.Len(uint(states))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// HistBucketLabel renders a bucket's value range.
func HistBucketLabel(i int) string {
	switch {
	case i <= 0:
		return "0"
	case i == 1:
		return "1"
	case i >= HistBuckets-1:
		return fmt.Sprintf("%d+", 1<<(HistBuckets-2))
	default:
		return fmt.Sprintf("%d-%d", 1<<(i-1), 1<<i-1)
	}
}

// PatternTelemetry is the per-pattern slice of the corpus benchmark
// artifact (BENCH_corpus.json).
type PatternTelemetry struct {
	Pattern     string  `json:"pattern"`
	Cases       int     `json:"cases"`
	Warnings    int     `json:"warnings"`
	TrueHits    int     `json:"true_hits"`
	TotalMicros int64   `json:"total_us"`
	MeanMicros  float64 `json:"mean_us"`
	MaxMicros   int64   `json:"max_us"`
	TotalStates int64   `json:"total_states"`
	MeanStates  float64 `json:"mean_states"`
	MaxStates   int64   `json:"max_states"`
	// StateHist is indexed like HistBucketLabel.
	StateHist []int `json:"state_hist"`
}

// Telemetry is the aggregate corpus telemetry report: per-pattern
// timing and state-count aggregates plus the shared histogram schema.
type Telemetry struct {
	Cases       int                `json:"cases"`
	TotalMicros int64              `json:"total_us"`
	TotalStates int64              `json:"total_states"`
	HistLabels  []string           `json:"state_hist_labels"`
	Patterns    []PatternTelemetry `json:"patterns"`
}

// Telemetry assembles the aggregate report from the per-pattern stats.
func (d *Details) Telemetry() *Telemetry {
	t := &Telemetry{}
	for i := 0; i < HistBuckets; i++ {
		t.HistLabels = append(t.HistLabels, HistBucketLabel(i))
	}
	names := make([]string, 0, len(d.PerPattern))
	for n := range d.PerPattern {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ps := d.PerPattern[n]
		pt := PatternTelemetry{
			Pattern:     n,
			Cases:       ps.Cases,
			Warnings:    ps.Warnings,
			TrueHits:    ps.TrueHits,
			TotalMicros: ps.TotalTime.Microseconds(),
			MaxMicros:   ps.MaxTime.Microseconds(),
			TotalStates: ps.TotalStates,
			MaxStates:   ps.MaxStates,
			StateHist:   append([]int(nil), ps.StateHist[:]...),
		}
		if ps.Cases > 0 {
			pt.MeanMicros = float64(pt.TotalMicros) / float64(ps.Cases)
			pt.MeanStates = float64(ps.TotalStates) / float64(ps.Cases)
		}
		t.Cases += ps.Cases
		t.TotalMicros += pt.TotalMicros
		t.TotalStates += ps.TotalStates
		t.Patterns = append(t.Patterns, pt)
	}
	return t
}

// Format renders the human-readable aggregate telemetry report: one row
// per pattern with timing and state aggregates, then the state-count
// histogram across all cases.
func (t *Telemetry) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %10s %10s %11s %10s\n",
		"pattern", "cases", "total-ms", "mean-us", "mean-states", "max-states")
	for _, p := range t.Patterns {
		fmt.Fprintf(&b, "%-22s %7d %10.1f %10.1f %11.1f %10d\n",
			p.Pattern, p.Cases, float64(p.TotalMicros)/1000, p.MeanMicros,
			p.MeanStates, p.MaxStates)
	}
	fmt.Fprintf(&b, "%-22s %7d %10.1f\n", "TOTAL", t.Cases, float64(t.TotalMicros)/1000)

	// Cross-pattern histogram.
	var hist [HistBuckets]int
	for _, p := range t.Patterns {
		for i, c := range p.StateHist {
			if i < HistBuckets {
				hist[i] += c
			}
		}
	}
	b.WriteString("states-created histogram (cases per bucket):\n")
	maxCount := 0
	for _, c := range hist {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range hist {
		if c == 0 {
			continue
		}
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", 1+c*40/maxCount)
		}
		fmt.Fprintf(&b, "  %-10s %6d %s\n", HistBucketLabel(i), c, bar)
	}
	return b.String()
}
