package eval

import (
	"testing"

	"uafcheck/internal/analysis"
	"uafcheck/internal/corpus"
)

// TestParallelMatchesSequential: the worker-pool evaluation produces the
// exact same Table I and per-pattern breakdown as the sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	cases := corpus.Generate(smallParams(17))
	seqTable, seqDet := RunTableI(cases, analysis.DefaultOptions())
	for _, workers := range []int{1, 2, 8} {
		parTable, parDet := RunTableIParallel(cases, analysis.DefaultOptions(), workers)
		if parTable != seqTable {
			t.Fatalf("workers=%d: table differs: %+v vs %+v", workers, parTable, seqTable)
		}
		if parDet.FormatPatternBreakdown() != seqDet.FormatPatternBreakdown() {
			t.Fatalf("workers=%d: breakdown differs", workers)
		}
		if len(parDet.Outcomes) != len(seqDet.Outcomes) {
			t.Fatalf("workers=%d: outcome count differs", workers)
		}
		for i := range parDet.Outcomes {
			if parDet.Outcomes[i].Case.Name != seqDet.Outcomes[i].Case.Name ||
				len(parDet.Outcomes[i].Warnings) != len(seqDet.Outcomes[i].Warnings) {
				t.Fatalf("workers=%d: outcome %d differs", workers, i)
			}
		}
	}
}
