package eval

import (
	"testing"

	"uafcheck/internal/analysis"
	"uafcheck/internal/corpus"
)

// TestAtomicsExtensionTableI reproduces the future-work experiment: with
// atomic modeling enabled, every handshake-style false positive
// disappears, no true positive is lost, and the true-positive rate rises
// accordingly. Counting protocols remain conservatively flagged (the E/F
// abstraction is value-blind).
func TestAtomicsExtensionTableI(t *testing.T) {
	cases := corpus.Generate(smallParams(31))

	base, _ := RunTableI(cases, analysis.DefaultOptions())
	ext, extDet := RunTableI(cases, analysis.Options{Prune: true, ModelAtomics: true})

	if ext.TruePositives != base.TruePositives {
		t.Errorf("extension changed true positives: %d -> %d",
			base.TruePositives, ext.TruePositives)
	}
	if ext.WarningsReported >= base.WarningsReported {
		t.Errorf("extension did not reduce warnings: %d -> %d",
			base.WarningsReported, ext.WarningsReported)
	}
	if ext.TPPercent() <= base.TPPercent() {
		t.Errorf("TP%% did not improve: %.1f -> %.1f", base.TPPercent(), ext.TPPercent())
	}
	// Handshake pattern fully cleared; counter pattern still flagged.
	if ps := extDet.PerPattern["atomic-handshake"]; ps != nil && ps.Warnings != 0 {
		t.Errorf("handshake warnings with extension = %d, want 0", ps.Warnings)
	}
	if ps := extDet.PerPattern["atomic-counter"]; ps != nil && ps.Warnings == 0 {
		t.Errorf("counter pattern unexpectedly cleared (value-blind abstraction should keep it)")
	}
	// No soundness regressions: every ground-truth site still flagged.
	for _, out := range extDet.Outcomes {
		if len(out.MissedSites) != 0 {
			t.Fatalf("extension missed true sites in %s: %v", out.Case.Name, out.MissedSites)
		}
	}
	// Safe patterns stay clean.
	if len(extDet.UnexpectedWarnCases) != 0 {
		t.Errorf("extension made safe patterns warn: %v", extDet.UnexpectedWarnCases)
	}
}
