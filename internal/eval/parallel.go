package eval

import (
	"runtime"
	"sync"

	"uafcheck/internal/analysis"
	"uafcheck/internal/corpus"
)

// RunTableIParallel analyzes the corpus with a worker pool — each test
// program is independent, so the suite parallelizes embarrassingly. The
// aggregation is identical to RunTableI; results are deterministic
// because per-case outcomes are merged in case order after the barrier.
func RunTableIParallel(cases []corpus.TestCase, opts analysis.Options, workers int) (TableI, *Details) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outcomes := make([]CaseOutcome, len(cases))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcomes[i] = analyzeCase(&cases[i], opts)
			}
		}()
	}
	for i := range cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Sequential, deterministic aggregation shared with RunTableI.
	return aggregate(cases, outcomes)
}
