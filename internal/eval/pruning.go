package eval

import (
	"fmt"
	"strings"

	"uafcheck/internal/analysis"
	"uafcheck/internal/ccfg"
	"uafcheck/internal/corpus"
)

// PruningReport quantifies the §III-A pruning rules over a corpus.
type PruningReport struct {
	Cases       int
	TotalTasks  int
	PrunedTasks int
	ByRule      map[ccfg.PruneRule]int
	// StatesWith / StatesWithout compare PPS exploration sizes.
	StatesWith    int
	StatesWithout int
}

// RunPruningStats analyzes the begin cases twice (pruning on and off)
// and aggregates which rules fired and how many exploration states
// pruning saved.
func RunPruningStats(cases []corpus.TestCase, opts analysis.Options) PruningReport {
	rep := PruningReport{ByRule: make(map[ccfg.PruneRule]int)}
	kept := opts
	kept.KeepGraphs = true
	noPrune := kept
	noPrune.Prune = false
	for i := range cases {
		tc := &cases[i]
		if !tc.HasBegin {
			continue
		}
		withRes := analysis.AnalyzeSource(tc.Name, tc.Source, kept)
		withoutRes := analysis.AnalyzeSource(tc.Name, tc.Source, noPrune)
		if withRes.Diags.HasErrors() {
			continue
		}
		rep.Cases++
		for _, pr := range withRes.Procs {
			rep.TotalTasks += pr.GraphStats.Tasks - 1 // exclude the root strand
			rep.PrunedTasks += pr.GraphStats.PrunedTasks
			for rule, n := range pr.GraphStats.PrunedByRule {
				rep.ByRule[rule] += n
			}
			rep.StatesWith += pr.PPSStats.StatesProcessed
		}
		for _, pr := range withoutRes.Procs {
			rep.StatesWithout += pr.PPSStats.StatesProcessed
		}
	}
	return rep
}

// Format renders the pruning table.
func (r PruningReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %6d\n", "Begin-task cases", r.Cases)
	fmt.Fprintf(&b, "%-40s %6d\n", "Tasks (excluding root strands)", r.TotalTasks)
	pct := 0.0
	if r.TotalTasks > 0 {
		pct = 100 * float64(r.PrunedTasks) / float64(r.TotalTasks)
	}
	fmt.Fprintf(&b, "%-40s %6d (%.1f%%)\n", "Tasks pruned", r.PrunedTasks, pct)
	for _, rule := range []ccfg.PruneRule{ccfg.PruneA, ccfg.PruneB, ccfg.PruneC, ccfg.PruneD} {
		fmt.Fprintf(&b, "%-40s %6d\n", "  by rule "+rule.String(), r.ByRule[rule])
	}
	fmt.Fprintf(&b, "%-40s %6d\n", "PPS states with pruning", r.StatesWith)
	fmt.Fprintf(&b, "%-40s %6d\n", "PPS states without pruning", r.StatesWithout)
	return b.String()
}
