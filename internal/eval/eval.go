// Package eval runs the paper's evaluation (§V): it feeds a generated
// corpus through the static analysis, scores warnings against the
// corpus's ground-truth labels, and assembles Table I. It can also
// cross-validate flagged programs with the dynamic schedule-exploration
// oracle and compare against the §VI baselines.
package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"uafcheck/internal/analysis"
	"uafcheck/internal/corpus"
	"uafcheck/internal/mhp"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/pst"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// TableI mirrors the paper's Table I rows.
type TableI struct {
	TotalTests        int
	TestsWithBegin    int
	TestsWithWarnings int
	WarningsReported  int
	TruePositives     int
}

// TPPercent is the paper's final row.
func (t TableI) TPPercent() float64 {
	if t.WarningsReported == 0 {
		return 0
	}
	return 100 * float64(t.TruePositives) / float64(t.WarningsReported)
}

// Format renders the table like the paper.
func (t TableI) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %6d\n", "Total test cases", t.TotalTests)
	fmt.Fprintf(&b, "%-42s %6d\n", "Test cases with begin tasks", t.TestsWithBegin)
	fmt.Fprintf(&b, "%-42s %6d\n", "Test cases with Use-After-Free warnings", t.TestsWithWarnings)
	fmt.Fprintf(&b, "%-42s %6d\n", "Number of warnings reported", t.WarningsReported)
	fmt.Fprintf(&b, "%-42s %6d\n", "True positives", t.TruePositives)
	fmt.Fprintf(&b, "%-42s %5.1f%%\n", "Percentage of true positives", t.TPPercent())
	return b.String()
}

// CaseOutcome records the analysis result for one test case.
type CaseOutcome struct {
	Case       *corpus.TestCase
	Warnings   []analysis.Warning
	FrontendOK bool
	// TrueHits are warnings matching a ground-truth dangerous site.
	TrueHits int
	// MissedSites are ground-truth sites the analysis did not flag
	// (soundness gaps — should stay empty).
	MissedSites []string
	// Duration is the wall time of this case's analysis.
	Duration time.Duration
	// StatesCreated / StatesProcessed / StatesMerged sum the PPS stats
	// across the case's analyzed procedures (telemetry aggregates).
	StatesCreated   int
	StatesProcessed int
	StatesMerged    int
}

// Details carries everything beyond the headline table.
type Details struct {
	Outcomes []CaseOutcome
	// PerPattern aggregates warning counts by generator pattern.
	PerPattern map[string]*PatternStats
	// UnexpectedWarnCases lists safe-pattern cases that warned — each one
	// is an analysis precision bug.
	UnexpectedWarnCases []string
	// FrontendFailures counts cases the frontend rejected.
	FrontendFailures int
}

// PatternStats aggregates one generator pattern, including the
// telemetry aggregates the corpus benchmark report serializes.
type PatternStats struct {
	Cases    int
	Warnings int
	TrueHits int
	// TotalTime / MaxTime aggregate per-case analysis wall time.
	TotalTime time.Duration
	MaxTime   time.Duration
	// TotalStates / MaxStates aggregate per-case PPS states created.
	TotalStates int64
	MaxStates   int64
	// StateHist is a power-of-two histogram of per-case states created
	// (see HistBucket).
	StateHist [HistBuckets]int
}

// RunTableI analyzes every case and assembles the table.
func RunTableI(cases []corpus.TestCase, opts analysis.Options) (TableI, *Details) {
	outcomes := make([]CaseOutcome, len(cases))
	for i := range cases {
		outcomes[i] = analyzeCase(&cases[i], opts)
	}
	return aggregate(cases, outcomes)
}

// aggregate folds per-case outcomes into the table and details; shared
// by the sequential and parallel drivers so both stay deterministic and
// can never diverge.
func aggregate(cases []corpus.TestCase, outcomes []CaseOutcome) (TableI, *Details) {
	var table TableI
	det := &Details{PerPattern: make(map[string]*PatternStats)}
	table.TotalTests = len(cases)
	for i := range cases {
		tc := &cases[i]
		out := outcomes[i]
		if tc.HasBegin {
			table.TestsWithBegin++
		}
		ps := det.PerPattern[tc.Pattern]
		if ps == nil {
			ps = &PatternStats{}
			det.PerPattern[tc.Pattern] = ps
		}
		ps.absorb(out)
		if !out.FrontendOK {
			det.FrontendFailures++
		}
		if len(out.Warnings) > 0 {
			table.TestsWithWarnings++
			table.WarningsReported += len(out.Warnings)
			table.TruePositives += out.TrueHits
			if !tc.WantWarn {
				det.UnexpectedWarnCases = append(det.UnexpectedWarnCases, tc.Name)
			}
		}
		det.Outcomes = append(det.Outcomes, out)
	}
	return table, det
}

// absorb folds one case outcome into the pattern aggregates.
func (ps *PatternStats) absorb(out CaseOutcome) {
	ps.Cases++
	ps.Warnings += len(out.Warnings)
	ps.TrueHits += out.TrueHits
	ps.TotalTime += out.Duration
	if out.Duration > ps.MaxTime {
		ps.MaxTime = out.Duration
	}
	ps.TotalStates += int64(out.StatesCreated)
	if int64(out.StatesCreated) > ps.MaxStates {
		ps.MaxStates = int64(out.StatesCreated)
	}
	ps.StateHist[HistBucket(out.StatesCreated)]++
}

func analyzeCase(tc *corpus.TestCase, opts analysis.Options) CaseOutcome {
	start := time.Now()
	res := analysis.AnalyzeSource(tc.Name+".chpl", tc.Source, opts)
	return outcomeFrom(tc, res, time.Since(start))
}

// outcomeFrom scores one analysis result against the case's ground-truth
// labels. res may be nil — a batch attempt abandoned as a hard hang —
// which scores as a frontend-level failure with no warnings.
func outcomeFrom(tc *corpus.TestCase, res *analysis.Result, dur time.Duration) CaseOutcome {
	out := CaseOutcome{Case: tc, Duration: dur}
	if res == nil {
		return out
	}
	out.FrontendOK = !res.Diags.HasErrors()
	out.Warnings = res.Warnings()
	for _, pr := range res.Procs {
		out.StatesCreated += pr.PPSStats.StatesCreated
		out.StatesProcessed += pr.PPSStats.StatesProcessed
		out.StatesMerged += pr.PPSStats.StatesMerged
	}
	truth := make(map[string]bool, len(tc.TrueSites))
	for _, s := range tc.TrueSites {
		truth[s] = false
	}
	for _, w := range out.Warnings {
		key := fmt.Sprintf("%s:%d", w.Var, w.AccessLine)
		if _, ok := truth[key]; ok {
			if !truth[key] {
				truth[key] = true
				out.TrueHits++
			}
		}
	}
	for _, s := range tc.TrueSites {
		if !truth[s] {
			out.MissedSites = append(out.MissedSites, s)
		}
	}
	return out
}

// FormatPatternBreakdown renders the per-pattern table for EXPERIMENTS.md.
func (d *Details) FormatPatternBreakdown() string {
	names := make([]string, 0, len(d.PerPattern))
	for n := range d.PerPattern {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %9s %10s\n", "pattern", "cases", "warnings", "true-hits")
	for _, n := range names {
		ps := d.PerPattern[n]
		fmt.Fprintf(&b, "%-22s %7d %9d %10d\n", n, ps.Cases, ps.Warnings, ps.TrueHits)
	}
	return b.String()
}

// OracleReport is the dynamic cross-validation result.
type OracleReport struct {
	CasesValidated int
	// ConfirmedTrue counts ground-truth sites dynamically observed.
	ConfirmedTrue int
	// TotalTrue is the number of ground-truth sites checked.
	TotalTrue int
	// FalseAlarms counts safe/atomic cases where the oracle DID observe a
	// use-after-free (generator labeling bugs — should be zero).
	FalseAlarms []string
	// Cancelled marks a validation stopped early by its context; the
	// counts above cover only the cases validated before the cut.
	Cancelled bool
}

// ValidateWithOracle replays flagged cases under many schedules and
// checks the ground-truth labels dynamically. maxCases bounds the work
// (0 = all flagged cases); runsPerCase bounds schedules per case.
func ValidateWithOracle(cases []corpus.TestCase, maxCases, runsPerCase int, seed int64) OracleReport {
	return ValidateWithOracleContext(context.Background(), cases, maxCases, runsPerCase, seed)
}

// ValidateWithOracleContext is ValidateWithOracle under a cancellation
// context: the schedule explorer polls ctx between runs, so a deadline or
// cancellation stops the validation promptly with the cases validated so
// far (Cancelled marks the cut).
func ValidateWithOracleContext(ctx context.Context, cases []corpus.TestCase, maxCases, runsPerCase int, seed int64) OracleReport {
	rep := OracleReport{}
	for i := range cases {
		tc := &cases[i]
		if !tc.HasBegin || !tc.WantWarn {
			continue
		}
		if maxCases > 0 && rep.CasesValidated >= maxCases {
			break
		}
		if ctx.Err() != nil {
			rep.Cancelled = true
			break
		}
		rep.CasesValidated++
		diags := &source.Diagnostics{}
		mod := parser.ParseSource(tc.Name+".chpl", tc.Source, diags)
		if diags.HasErrors() {
			continue
		}
		info := sym.Resolve(mod, diags)
		if diags.HasErrors() {
			continue
		}
		er := runtime.ExploreRandomContext(ctx, mod, info, tc.EntryProc, runsPerCase, seed+int64(i))
		if er.Cancelled {
			rep.Cancelled = true
		}
		oracle := runtime.NewOracle(er)
		rep.TotalTrue += len(tc.TrueSites)
		for _, s := range tc.TrueSites {
			var v string
			var line int
			fmt.Sscanf(s, "%1s:%d", &v, &line) // sites are "x:NN"
			parts := strings.SplitN(s, ":", 2)
			if len(parts) == 2 {
				v = parts[0]
				fmt.Sscanf(parts[1], "%d", &line)
			}
			if oracle.TruePositive(v, line) {
				rep.ConfirmedTrue++
			}
		}
		if len(tc.TrueSites) == 0 && len(er.UAF) > 0 {
			rep.FalseAlarms = append(rep.FalseAlarms, tc.Name)
		}
	}
	return rep
}

// BaselineReport compares the paper's analysis with the §VI baselines
// over the begin-task cases.
type BaselineReport struct {
	Cases         int
	PaperWarnings int
	NaiveMHPFlags int
	FinishFlags   int
	// PSTFlags counts accesses flagged by the Program Structure Tree MHP
	// analysis (finish/async only, no point-to-point sync).
	PSTFlags int
	// PPSMHPFlags counts accesses flagged by the §VI MHP-oracle
	// formulation backed by the PPS exploration itself (point-to-point
	// aware) — it should track the paper analysis closely.
	PPSMHPFlags  int
	ClearedByPPS int
	// FinishWouldBlock counts cases where the X10 discipline would
	// reject a program the paper's analysis proves safe.
	FinishWouldBlock int
}

// RunBaselines computes the comparison.
func RunBaselines(cases []corpus.TestCase, opts analysis.Options) BaselineReport {
	rep := BaselineReport{}
	kept := opts
	kept.KeepGraphs = true
	for i := range cases {
		tc := &cases[i]
		if !tc.HasBegin {
			continue
		}
		res := analysis.AnalyzeSource(tc.Name+".chpl", tc.Source, kept)
		if res.Diags.HasErrors() {
			continue
		}
		rep.Cases++
		paper := 0
		naive := 0
		finish := 0
		pstFlags := 0
		for _, pr := range res.Procs {
			paper += len(pr.Warnings)
			if pr.Graph != nil {
				naive += len(mhp.NaiveMHP(pr.Graph))
				finish += len(mhp.FinishEnforcement(pr.Graph))
			}
			if res.Info != nil {
				tree := pst.Build(res.Info, pr.Proc)
				pstFlags += len(tree.CheckUAF())
			}
			if pr.Graph != nil {
				rep.PPSMHPFlags += len(pps.CheckUAFViaMHP(pr.Graph, pps.Options{}))
			}
		}
		rep.PaperWarnings += paper
		rep.NaiveMHPFlags += naive
		rep.FinishFlags += finish
		rep.PSTFlags += pstFlags
		if paper == 0 && finish > 0 {
			rep.FinishWouldBlock++
		}
	}
	rep.ClearedByPPS = rep.NaiveMHPFlags - rep.PaperWarnings
	return rep
}

// Format renders the baseline comparison.
func (r BaselineReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-46s %6d\n", "Begin-task cases analyzed", r.Cases)
	fmt.Fprintf(&b, "%-46s %6d\n", "Paper analysis warnings", r.PaperWarnings)
	fmt.Fprintf(&b, "%-46s %6d\n", "Naive MHP flags (no point-to-point sync)", r.NaiveMHPFlags)
	fmt.Fprintf(&b, "%-46s %6d\n", "X10-style finish-enforcement flags", r.FinishFlags)
	fmt.Fprintf(&b, "%-46s %6d\n", "PST-based MHP flags (finish/async only)", r.PSTFlags)
	fmt.Fprintf(&b, "%-46s %6d\n", "PPS-backed MHP-oracle flags (§VI formulation)", r.PPSMHPFlags)
	fmt.Fprintf(&b, "%-46s %6d\n", "Accesses cleared by PPS exploration", r.ClearedByPPS)
	fmt.Fprintf(&b, "%-46s %6d\n", "Safe cases finish-discipline would reject", r.FinishWouldBlock)
	return b.String()
}
