package eval

// Differential soundness testing: generate random MiniChapel task
// programs (structurally, not from the corpus templates), run the static
// analysis AND the exhaustive dynamic schedule explorer, and check the
// soundness direction the paper claims: every use-after-free observable
// at run time is reported by the compile-time pass.
//
// The converse (precision) deliberately does NOT hold — atomics and other
// non-modelled synchronization produce false positives (§IV-A, §V) — so
// only dynamic ⊆ static is asserted.
//
// Loops are excluded from the generator: the paper's analysis declares
// loops containing sync nodes or begins out of scope (§IV-A), and
// subsuming them is not sound by construction.

import (
	"fmt"
	"testing"

	"uafcheck/internal/analysis"
	"uafcheck/internal/ast"
	"uafcheck/internal/parser"
	"uafcheck/internal/progen"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// TestDifferentialSoundness is the repo's strongest end-to-end check:
// across hundreds of random programs, no dynamically observed
// use-after-free may escape the static analysis.
func TestDifferentialSoundness(t *testing.T) {
	const programs = 250
	checked, uafPrograms := 0, 0
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.Options{})
		diags := &source.Diagnostics{}
		mod := parser.ParseSource("fuzz.chpl", src, diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: generator produced invalid program:\n%s\n%s", seed, diags, src)
		}
		info := sym.Resolve(mod, diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: resolve failed:\n%s\n%s", seed, diags, src)
		}

		res := analysis.AnalyzeSource("fuzz.chpl", src, analysis.DefaultOptions())
		staticSites := make(map[string]bool)
		for _, w := range res.Warnings() {
			staticSites[fmt.Sprintf("%s:%d", w.Var, w.AccessLine)] = true
		}

		er := runtime.ExploreExhaustive(mod, info, "fuzz", 3000)
		checked++
		if len(er.UAF) > 0 {
			uafPrograms++
		}
		for key, ev := range er.UAF {
			if !staticSites[key] {
				t.Fatalf("seed %d: SOUNDNESS VIOLATION — dynamic UAF %s (task %s) "+
					"not statically warned\nstatic sites: %v\nprogram:\n%s",
					seed, key, ev.Task, staticSites, src)
			}
		}
	}
	if uafPrograms == 0 {
		t.Fatalf("fuzzer degenerate: none of %d programs produced a dynamic UAF", checked)
	}
	t.Logf("differential check: %d programs, %d with real UAFs, 0 soundness violations",
		checked, uafPrograms)
}

// TestDifferentialDeadlockAgreement: when the exhaustive dynamic explorer
// finds a deadlock schedule, the PPS exploration should have found a
// stuck state too (or the program has tasks the analysis pruned away —
// pruned tasks never deadlock since they contain no shared sync ops).
func TestDifferentialDeadlockAgreement(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 150; seed++ {
		src := progen.Generate(seed+10000, progen.Options{})
		diags := &source.Diagnostics{}
		mod := parser.ParseSource("fuzz.chpl", src, diags)
		if diags.HasErrors() {
			continue
		}
		info := sym.Resolve(mod, diags)
		if diags.HasErrors() {
			continue
		}
		if !ast.HasBegin(mod) {
			// The paper's pass only analyzes procedures containing begin
			// tasks (§III); a sequential self-deadlock is out of scope.
			continue
		}
		er := runtime.ExploreExhaustive(mod, info, "fuzz", 2000)
		if er.Deadlocks == 0 {
			continue
		}
		found++
		opts := analysis.DefaultOptions()
		opts.KeepGraphs = true
		res := analysis.AnalyzeSource("fuzz.chpl", src, opts)
		stuck, pruned := 0, 0
		for _, pr := range res.Procs {
			stuck += pr.Deadlocks
			pruned += pr.GraphStats.PrunedTasks
		}
		// A deadlock confined to a pruned task (no outer-variable
		// accesses, self-contained sync vars) is invisible by design:
		// pruning preserves warning correctness, not liveness reporting.
		if stuck == 0 && pruned == 0 {
			t.Fatalf("seed %d: dynamic deadlock not predicted statically\nprogram:\n%s",
				seed+10000, src)
		}
	}
	if found == 0 {
		t.Skip("no deadlocking programs generated in this window")
	}
	t.Logf("deadlock agreement: %d deadlocking programs all predicted", found)
}
