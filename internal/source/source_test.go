package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLineColumn(t *testing.T) {
	f := NewFile("t.chpl", "ab\ncde\n\nx")
	cases := []struct {
		pos  Pos
		line int
		col  int
	}{
		{0, 1, 1}, // 'a'
		{1, 1, 2}, // 'b'
		{2, 1, 3}, // '\n' belongs to line 1
		{3, 2, 1}, // 'c'
		{5, 2, 3}, // 'e'
		{7, 3, 1}, // empty line
		{8, 4, 1}, // 'x'
	}
	for _, c := range cases {
		if got := f.Line(c.pos); got != c.line {
			t.Errorf("Line(%d) = %d, want %d", c.pos, got, c.line)
		}
		if got := f.Column(c.pos); got != c.col {
			t.Errorf("Column(%d) = %d, want %d", c.pos, got, c.col)
		}
	}
	if f.NumLines() != 4 {
		t.Errorf("NumLines = %d, want 4", f.NumLines())
	}
}

func TestLineText(t *testing.T) {
	f := NewFile("t", "first\nsecond\nthird")
	if got := f.LineText(2); got != "second" {
		t.Errorf("LineText(2) = %q", got)
	}
	if got := f.LineText(3); got != "third" {
		t.Errorf("LineText(3) = %q", got)
	}
	if got := f.LineText(0); got != "" {
		t.Errorf("LineText(0) = %q, want empty", got)
	}
	if got := f.LineText(99); got != "" {
		t.Errorf("LineText(99) = %q, want empty", got)
	}
}

func TestPositionString(t *testing.T) {
	f := NewFile("a.chpl", "hello\nworld")
	if got := f.Position(6); got != "a.chpl:2:1" {
		t.Errorf("Position(6) = %q", got)
	}
	if got := f.Position(NoPos); got != "a.chpl:-" {
		t.Errorf("Position(NoPos) = %q", got)
	}
}

// Property: for every position in the file, the (line, column) pair maps
// back to the same offset via the line-start index.
func TestLineColumnRoundTripProperty(t *testing.T) {
	f := NewFile("t", "alpha\nbeta gamma\n\n\ndelta\nx\n")
	check := func(raw uint16) bool {
		pos := Pos(int(raw) % len(f.Content))
		line, col := f.Line(pos), f.Column(pos)
		if line < 1 || col < 1 {
			return false
		}
		// Reconstruct: offset of line start + (col-1) == pos.
		lineStart := int(pos) - (col - 1)
		if lineStart < 0 || lineStart > len(f.Content) {
			return false
		}
		if lineStart > 0 && f.Content[lineStart-1] != '\n' {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSpanCover(t *testing.T) {
	a := Span{Start: 5, End: 10}
	b := Span{Start: 2, End: 7}
	c := a.Cover(b)
	if c.Start != 2 || c.End != 10 {
		t.Errorf("Cover = %+v", c)
	}
	if got := a.Cover(NoSpan); got != a {
		t.Errorf("Cover(NoSpan) = %+v", got)
	}
	if got := NoSpan.Cover(a); got != a {
		t.Errorf("NoSpan.Cover = %+v", got)
	}
}

func TestDiagnosticsCountsAndSort(t *testing.T) {
	f := NewFile("z.chpl", "one\ntwo\nthree\n")
	var ds Diagnostics
	ds.Addf(f, Span{Start: 8, End: 9}, Warning, "late")
	ds.Addf(f, Span{Start: 0, End: 1}, Error, "early")
	ds.Addf(f, Span{Start: 4, End: 5}, Note, "middle %d", 42)

	if ds.Count(Warning) != 1 || ds.Count(Error) != 1 || ds.Count(Note) != 1 {
		t.Fatalf("counts wrong: %d/%d/%d", ds.Count(Warning), ds.Count(Error), ds.Count(Note))
	}
	if !ds.HasErrors() {
		t.Error("HasErrors = false")
	}
	ds.SortByPos()
	all := ds.All()
	if all[0].Message != "early" || all[1].Message != "middle 42" || all[2].Message != "late" {
		t.Errorf("sort order wrong: %v", all)
	}
	out := ds.String()
	if !strings.Contains(out, "z.chpl:1:1: error: early") {
		t.Errorf("String() = %q", out)
	}
	if all[1].Line() != 2 {
		t.Errorf("Line() = %d, want 2", all[1].Line())
	}
}

func TestSeverityString(t *testing.T) {
	if Warning.String() != "warning" || Error.String() != "error" || Note.String() != "note" {
		t.Error("severity strings wrong")
	}
	if Severity(99).String() == "" {
		t.Error("unknown severity should render something")
	}
}

func TestEmptyFile(t *testing.T) {
	f := NewFile("empty", "")
	if f.NumLines() != 1 {
		t.Errorf("NumLines(empty) = %d", f.NumLines())
	}
	if f.Line(0) != 1 {
		t.Errorf("Line(0) in empty file = %d", f.Line(0))
	}
}
