// Package source provides source files, positions, spans and diagnostics
// for the MiniChapel frontend. Every later stage (lexer, parser, resolver,
// analysis) reports locations through this package so that warnings carry
// the file:line:column form the paper's compiler pass prints.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a byte offset into a File, 0-based. NoPos marks an unknown
// location (synthesized nodes, inlined copies without an origin).
type Pos int

// NoPos is the zero Pos, meaning "no position recorded".
const NoPos Pos = -1

// IsValid reports whether the position refers to a real file offset.
func (p Pos) IsValid() bool { return p >= 0 }

// Span is a half-open byte range [Start, End) within one file.
type Span struct {
	Start Pos
	End   Pos
}

// NoSpan is the span with both ends at NoPos.
var NoSpan = Span{NoPos, NoPos}

// IsValid reports whether both endpoints are valid and ordered.
func (s Span) IsValid() bool { return s.Start.IsValid() && s.End >= s.Start }

// Cover returns the smallest span containing both s and t.
// Invalid spans are ignored.
func (s Span) Cover(t Span) Span {
	if !s.IsValid() {
		return t
	}
	if !t.IsValid() {
		return s
	}
	u := s
	if t.Start < u.Start {
		u.Start = t.Start
	}
	if t.End > u.End {
		u.End = t.End
	}
	return u
}

// File holds one source file's name and content, plus a line index for
// offset→line:column translation.
type File struct {
	Name    string
	Content string
	lines   []int // byte offsets of line starts; lines[0] == 0
}

// NewFile builds a File and its line index.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// NumLines returns the number of lines in the file. An empty file has one
// (empty) line.
func (f *File) NumLines() int { return len(f.lines) }

// Line returns the 1-based line number containing pos.
func (f *File) Line(pos Pos) int {
	if !pos.IsValid() {
		return 0
	}
	// Find the last line start <= pos.
	i := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > int(pos) })
	return i // lines are 1-based, and i is the count of starts <= pos
}

// Column returns the 1-based column of pos within its line.
func (f *File) Column(pos Pos) int {
	if !pos.IsValid() {
		return 0
	}
	line := f.Line(pos)
	return int(pos) - f.lines[line-1] + 1
}

// Position renders pos as "name:line:col".
func (f *File) Position(pos Pos) string {
	if !pos.IsValid() {
		return f.Name + ":-"
	}
	return fmt.Sprintf("%s:%d:%d", f.Name, f.Line(pos), f.Column(pos))
}

// PosAt returns the byte offset of a 1-based line and column, the
// inverse of Line/Column. Out-of-range lines or columns clamp to the
// nearest valid offset; line <= 0 yields NoPos. The incremental engine
// uses it to re-anchor memoized per-procedure diagnostics after the
// procedure's absolute position shifted.
func (f *File) PosAt(line, col int) Pos {
	if line <= 0 {
		return NoPos
	}
	if line > len(f.lines) {
		line = len(f.lines)
	}
	start := f.lines[line-1]
	end := len(f.Content)
	if line < len(f.lines) {
		end = f.lines[line] - 1
	}
	p := start + col - 1
	if p < start {
		p = start
	}
	if p > end {
		p = end
	}
	return Pos(p)
}

// LineText returns the text of the 1-based line number, without the
// trailing newline. Out-of-range lines yield "".
func (f *File) LineText(line int) string {
	if line < 1 || line > len(f.lines) {
		return ""
	}
	start := f.lines[line-1]
	end := len(f.Content)
	if line < len(f.lines) {
		end = f.lines[line] - 1
	}
	if end < start {
		end = start
	}
	return f.Content[start:end]
}

// Severity classifies a diagnostic.
type Severity int

const (
	// Warning diagnostics report potentially dangerous accesses; the
	// paper's pass never hard-fails the build.
	Warning Severity = iota
	// Error diagnostics are frontend failures (lex/parse/resolve).
	Error
	// Note diagnostics carry analysis-limit information (e.g. a loop
	// containing sync nodes that the analysis subsumes, §IV-A).
	Note
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Error:
		return "error"
	case Note:
		return "note"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is one message anchored to a source span.
type Diagnostic struct {
	File     *File
	Span     Span
	Severity Severity
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	loc := "-"
	if d.File != nil {
		loc = d.File.Position(d.Span.Start)
	}
	return fmt.Sprintf("%s: %s: %s", loc, d.Severity, d.Message)
}

// Line returns the 1-based line of the diagnostic start, or 0.
func (d Diagnostic) Line() int {
	if d.File == nil {
		return 0
	}
	return d.File.Line(d.Span.Start)
}

// Diagnostics accumulates messages in emission order.
type Diagnostics struct {
	list []Diagnostic
}

// Add appends a diagnostic.
func (ds *Diagnostics) Add(d Diagnostic) { ds.list = append(ds.list, d) }

// Addf formats and appends a diagnostic.
func (ds *Diagnostics) Addf(f *File, sp Span, sev Severity, format string, args ...any) {
	ds.Add(Diagnostic{File: f, Span: sp, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// All returns the diagnostics in emission order. The returned slice is the
// internal one; callers must not mutate it.
func (ds *Diagnostics) All() []Diagnostic { return ds.list }

// Count returns the number of diagnostics with the given severity.
func (ds *Diagnostics) Count(sev Severity) int {
	n := 0
	for _, d := range ds.list {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any Error-severity diagnostic was added.
func (ds *Diagnostics) HasErrors() bool { return ds.Count(Error) > 0 }

// String renders all diagnostics, one per line.
func (ds *Diagnostics) String() string {
	var b strings.Builder
	for _, d := range ds.list {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SortByPos orders diagnostics by (file name, start offset), keeping the
// relative order of equal keys stable. Useful for deterministic reports.
func (ds *Diagnostics) SortByPos() {
	sort.SliceStable(ds.list, func(i, j int) bool {
		a, b := ds.list[i], ds.list[j]
		an, bn := "", ""
		if a.File != nil {
			an = a.File.Name
		}
		if b.File != nil {
			bn = b.File.Name
		}
		if an != bn {
			return an < bn
		}
		return a.Span.Start < b.Span.Start
	})
}
