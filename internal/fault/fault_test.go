package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDeterministicSchedule: the same seed fires the same hit ordinals,
// and a different seed fires a different (but still deterministic)
// schedule.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed, Rule{Point: "p", Mode: ModeError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Err("p") != nil
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical schedules (suspicious)")
	}
}

// TestPointIndependence: interleaving hits on another point must not
// shift a point's schedule — each point owns its stream.
func TestPointIndependence(t *testing.T) {
	solo := New(1, Rule{Point: "a", Mode: ModeError, Prob: 0.5})
	mixed := New(1,
		Rule{Point: "a", Mode: ModeError, Prob: 0.5},
		Rule{Point: "b", Mode: ModeError, Prob: 0.5})
	for i := 0; i < 32; i++ {
		mixed.Err("b") // interleave traffic on b
		if (solo.Err("a") != nil) != (mixed.Err("a") != nil) {
			t.Fatalf("point a's schedule shifted under point b traffic at hit %d", i)
		}
	}
}

func TestCountCap(t *testing.T) {
	in := New(1, Rule{Point: "p", Mode: ModeError, Prob: 1, Count: 3})
	fails := 0
	for i := 0; i < 10; i++ {
		if in.Err("p") != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("Count=3 fired %d times", fails)
	}
	if in.Fired("p") != 3 || in.Hits("p") != 10 {
		t.Errorf("counters: fired=%d hits=%d, want 3/10", in.Fired("p"), in.Hits("p"))
	}
}

func TestModes(t *testing.T) {
	in := New(1,
		Rule{Point: "e", Mode: ModeError, Prob: 1},
		Rule{Point: "p", Mode: ModePanic, Prob: 1},
		Rule{Point: "d", Mode: ModeDelay, Prob: 1, Delay: time.Millisecond},
		Rule{Point: "t", Mode: ModeTorn, Prob: 1},
	)
	var ie *InjectedError
	if err := in.Err("e"); !errors.As(err, &ie) || ie.Point != "e" {
		t.Errorf("Err: %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if s, ok := r.(string); !ok || !strings.HasPrefix(s, PanicPrefix) {
				t.Errorf("panic value: %v", r)
			}
		}()
		in.MaybePanic("p")
		t.Error("MaybePanic did not panic")
	}()
	t0 := time.Now()
	in.Sleep("d")
	if time.Since(t0) < time.Millisecond {
		t.Error("Sleep returned too early")
	}
	orig := bytes.Repeat([]byte("x"), 256)
	mangled := in.Mangle("t", orig)
	if bytes.Equal(orig, mangled) {
		t.Error("Mangle left the bytes intact")
	}
	if len(orig) != 256 {
		t.Error("Mangle modified its input slice")
	}
	// Wrong-mode calls never fire: an error point consulted for panic.
	in.MaybePanic("e")
	if got := in.Mangle("e", orig); !bytes.Equal(got, orig) {
		t.Error("Mangle fired on an error-mode point")
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	if err := in.Err("p"); err != nil {
		t.Error("nil injector returned an error")
	}
	in.MaybePanic("p")
	in.Sleep("p")
	if got := in.Mangle("p", []byte("ok")); string(got) != "ok" {
		t.Error("nil injector mangled bytes")
	}
	// The global hooks with nothing installed behave the same.
	restore := Set(nil)
	defer restore()
	if err := Err("p"); err != nil {
		t.Error("global Err with no injector returned an error")
	}
}

func TestSetRestores(t *testing.T) {
	in := New(1, Rule{Point: "p", Mode: ModeError, Prob: 1})
	restore := Set(in)
	if Err("p") == nil {
		t.Error("installed injector did not fire")
	}
	restore()
	if Active() != nil && Err("p") != nil {
		t.Error("restore did not reinstate the previous (nil) injector")
	}
}

func TestParse(t *testing.T) {
	in, err := Parse(3, "cache.fs.write=err:1:2; analysis.panic=panic:0.5; a=delay:1:0:5ms; b=torn:1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Err(CacheWrite) == nil || in.Err(CacheWrite) == nil {
		t.Error("parsed err rule did not fire twice")
	}
	if in.Err(CacheWrite) != nil {
		t.Error("count cap ignored")
	}
	t0 := time.Now()
	in.Sleep("a")
	if time.Since(t0) < 5*time.Millisecond {
		t.Error("parsed delay rule did not sleep")
	}

	for _, bad := range []string{
		"nope",            // no '='
		"p=weird:1",       // unknown mode
		"p=err:2",         // prob out of range
		"p=err:1:-1",      // bad count
		"p=delay:1",       // delay mode without delay
		"p=err:1;p=err:1", // duplicate point
		"p=err:1:1:5ms:x", // too many fields
	} {
		if _, err := Parse(1, bad); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", bad)
		}
	}

	// Empty spec parses to an inert injector.
	in2, err := Parse(1, "")
	if err != nil {
		t.Fatal(err)
	}
	if in2.Err("anything") != nil {
		t.Error("empty spec fired")
	}
}
