// Package fault is the deterministic fault-injection layer: named
// injection points threaded through the long-running surfaces (disk
// cache I/O, the per-procedure analysis pipeline, the watch service)
// that fire filesystem errors, torn writes, delays and panics under a
// seedable schedule. Production binaries pay one atomic load per point
// when injection is off; the chaos suite (make chaos) and the hidden
// -faults flag of uafserve turn it on.
//
// Determinism contract: each point owns an independent splitmix64
// stream seeded from (seed, point name), and a firing decision depends
// only on the point's hit ordinal. Two runs with the same seed and the
// same per-point hit counts fire the same decisions regardless of how
// goroutines interleave across points — which is what lets the chaos
// suite run a fixed seed matrix under -race and still assert on
// outcomes.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection point names. A point is just a string; these constants
// cover the instrumented call sites so specs and tests do not drift.
const (
	// CacheRead fails disk-cache entry reads (I/O error, not corruption).
	CacheRead = "cache.fs.read"
	// CacheWrite fails disk-cache entry writes before any byte lands.
	CacheWrite = "cache.fs.write"
	// CacheRename fails the temp-file -> final-name commit rename.
	CacheRename = "cache.fs.rename"
	// CacheTorn mangles (truncates or bit-flips) the encoded entry on
	// its way to disk — a torn write that the per-entry checksum must
	// catch on read.
	CacheTorn = "cache.fs.torn"
	// AnalysisPanic panics inside the per-procedure pipeline, exercising
	// the crash-recovery rung of the degradation ladder.
	AnalysisPanic = "analysis.panic"
	// AnalysisDelay sleeps inside the per-procedure pipeline — a slow or
	// (with a large delay) effectively hung worker; also the stand-in
	// for a delayed clock, since every deadline the pipeline checks is
	// measured against the stalled wall time.
	AnalysisDelay = "analysis.delay"
	// WatchRead fails source-file reads in the watch service's poll loop.
	WatchRead = "watch.fs.read"
	// ClusterRemoteTorn mangles envelope bytes read from a remote cache
	// peer — a torn network read or a corrupt peer entry that the
	// receiving cache's checksum must catch (and must never warm through
	// to local disk).
	ClusterRemoteTorn = "cluster.cache.torn"
)

// Mode says what a rule does when it fires.
type Mode string

const (
	// ModeError makes Err return an *InjectedError.
	ModeError Mode = "err"
	// ModePanic makes MaybePanic panic with PanicPrefix + point.
	ModePanic Mode = "panic"
	// ModeDelay makes Sleep block for the rule's Delay.
	ModeDelay Mode = "delay"
	// ModeTorn makes Mangle truncate or corrupt the passed bytes.
	ModeTorn Mode = "torn"
)

// PanicPrefix starts every injected panic value, so recovery layers and
// tests can tell injected crashes from real ones.
const PanicPrefix = "fault: injected panic at "

// InjectedError is the error Err returns when an error rule fires.
type InjectedError struct {
	Point string
}

func (e *InjectedError) Error() string {
	return "fault: injected error at " + e.Point
}

// Rule arms one injection point.
type Rule struct {
	// Point names the instrumented call site (see the constants above).
	Point string
	// Mode selects the effect.
	Mode Mode
	// Prob is the per-hit firing probability in [0, 1].
	Prob float64
	// Count caps the number of fires (0 = unlimited).
	Count int64
	// Delay is the sleep duration for ModeDelay rules.
	Delay time.Duration
}

// pointState is one armed point: its rule, its private PRNG stream and
// its traffic counters.
type pointState struct {
	rule  Rule
	rng   uint64
	hits  int64
	fired int64
}

// Injector evaluates rules at injection points. Safe for concurrent
// use; a nil *Injector is inert.
type Injector struct {
	mu     sync.Mutex
	points map[string]*pointState
}

// New arms an injector with the given rules under one seed. Multiple
// rules on the same point are rejected by Parse but the last one wins
// here; keep points unique.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{points: make(map[string]*pointState, len(rules))}
	for _, r := range rules {
		in.points[r.Point] = &pointState{
			rule: r,
			rng:  mix(uint64(seed) ^ strhash(r.Point)),
		}
	}
	return in
}

// Parse builds an injector from a compact spec string:
//
//	point=mode:prob[:count[:delay]] [; more rules]
//
// e.g. "cache.fs.write=err:1:3; analysis.panic=panic:0.25" arms the
// first three disk-cache writes to fail and every per-proc analysis to
// panic with probability 0.25. Delay accepts time.ParseDuration syntax.
func Parse(seed int64, spec string) (*Injector, error) {
	var rules []Rule
	seen := make(map[string]bool)
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: rule %q: want point=mode:prob[:count[:delay]]", part)
		}
		point = strings.TrimSpace(point)
		if seen[point] {
			return nil, fmt.Errorf("fault: duplicate rule for point %q", point)
		}
		seen[point] = true
		fields := strings.Split(rest, ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("fault: rule %q: want mode:prob[:count[:delay]]", part)
		}
		r := Rule{Point: point, Mode: Mode(strings.TrimSpace(fields[0]))}
		switch r.Mode {
		case ModeError, ModePanic, ModeDelay, ModeTorn:
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown mode %q", part, fields[0])
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: rule %q: bad probability %q", part, fields[1])
		}
		r.Prob = prob
		if len(fields) >= 3 {
			n, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: rule %q: bad count %q", part, fields[2])
			}
			r.Count = n
		}
		if len(fields) == 4 {
			d, err := time.ParseDuration(strings.TrimSpace(fields[3]))
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad delay %q", part, fields[3])
			}
			r.Delay = d
		}
		if r.Mode == ModeDelay && r.Delay <= 0 {
			return nil, fmt.Errorf("fault: rule %q: delay mode needs a delay", part)
		}
		rules = append(rules, r)
	}
	return New(seed, rules...), nil
}

// fire records a hit at point and reports whether its rule fires,
// advancing the point's PRNG stream exactly once per hit.
func (in *Injector) fire(point string) (Rule, bool) {
	if in == nil {
		return Rule{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ps, ok := in.points[point]
	if !ok {
		return Rule{}, false
	}
	ps.hits++
	if ps.rule.Count > 0 && ps.fired >= ps.rule.Count {
		return Rule{}, false
	}
	ps.rng = mix(ps.rng)
	// 53 uniform bits -> [0, 1).
	u := float64(ps.rng>>11) / (1 << 53)
	if u >= ps.rule.Prob {
		return Rule{}, false
	}
	ps.fired++
	return ps.rule, true
}

// Err reports an injected error for an armed ModeError point, else nil.
func (in *Injector) Err(point string) error {
	if r, ok := in.fire(point); ok && r.Mode == ModeError {
		return &InjectedError{Point: point}
	}
	return nil
}

// MaybePanic panics when an armed ModePanic point fires.
func (in *Injector) MaybePanic(point string) {
	if r, ok := in.fire(point); ok && r.Mode == ModePanic {
		panic(PanicPrefix + point)
	}
}

// Sleep blocks for the rule's Delay when an armed ModeDelay point
// fires. It deliberately ignores contexts: an injected stall models a
// worker that stopped responding, which is exactly what watchdogs must
// survive.
func (in *Injector) Sleep(point string) {
	if r, ok := in.fire(point); ok && r.Mode == ModeDelay {
		time.Sleep(r.Delay)
	}
}

// Mangle corrupts b when an armed ModeTorn point fires: most fires
// truncate (a torn write that lost its tail), the rest flip one byte
// (bit rot). The input slice is never modified; a fresh slice is
// returned on corruption.
func (in *Injector) Mangle(point string, b []byte) []byte {
	r, ok := in.fire(point)
	if !ok || r.Mode != ModeTorn || len(b) == 0 {
		return b
	}
	in.mu.Lock()
	ps := in.points[point]
	ps.rng = mix(ps.rng)
	u := ps.rng
	in.mu.Unlock()
	if u%4 != 0 { // 3/4 torn tail, 1/4 bit flip
		keep := int(u % uint64(len(b)))
		return append([]byte(nil), b[:keep]...)
	}
	out := append([]byte(nil), b...)
	out[int(u/4)%len(out)] ^= 0x40
	return out
}

// Fired returns how many times the point's rule has fired.
func (in *Injector) Fired(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if ps, ok := in.points[point]; ok {
		return ps.fired
	}
	return 0
}

// Hits returns how many times the point was reached.
func (in *Injector) Hits(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if ps, ok := in.points[point]; ok {
		return ps.hits
	}
	return 0
}

// ------------------------------------------------------- global switch

// active is the process-wide injector consulted by the package-level
// functions at every instrumented call site. nil (the default) makes
// every site a no-op after a single atomic load.
var active atomic.Pointer[Injector]

// Set installs in as the process-wide injector and returns a restore
// function that reinstates the previous one — tests defer it so
// injection never leaks across cases.
func Set(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Active returns the installed injector (nil when injection is off).
func Active() *Injector { return active.Load() }

// Err consults the global injector; see Injector.Err.
func Err(point string) error { return active.Load().Err(point) }

// MaybePanic consults the global injector; see Injector.MaybePanic.
func MaybePanic(point string) { active.Load().MaybePanic(point) }

// Sleep consults the global injector; see Injector.Sleep.
func Sleep(point string) { active.Load().Sleep(point) }

// Mangle consults the global injector; see Injector.Mangle.
func Mangle(point string, b []byte) []byte { return active.Load().Mangle(point, b) }

// ------------------------------------------------------------- hashing

// mix is splitmix64's output function: a full-avalanche step used both
// to derive per-point seeds and to advance each point's stream.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// strhash is FNV-1a, inlined to keep the package dependency-free.
func strhash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
