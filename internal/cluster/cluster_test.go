package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"uafcheck/internal/cache"
	"uafcheck/internal/client"
	"uafcheck/internal/fault"
	"uafcheck/internal/server"
)

// corpusDir is the shared acceptance corpus; the cluster identity
// contract is checked against exactly these inputs.
const corpusDir = "../../testdata/suite"

func loadSuite(t *testing.T) []server.BatchFile {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.chpl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus under %s: %v", corpusDir, err)
	}
	sort.Strings(paths)
	files := make([]server.BatchFile, len(paths))
	for i, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = server.BatchFile{Name: filepath.Base(p), Src: string(src)}
	}
	return files
}

// newWorker boots one in-process worker replica.
func newWorker(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	cfg.Mode = "worker"
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator wires a Coordinator over the given workers with
// background probing disabled — tests drive Probe explicitly.
func newCoordinator(t *testing.T, workers ...WorkerSpec) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := New(Config{
		Workers:       workers,
		Client:        client.Config{MaxAttempts: 1, Budget: 2 * time.Minute},
		ProbeInterval: -1,
	})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		c.Shutdown(ctx) //nolint:errcheck
	})
	return c, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// sortedLines canonicalizes an NDJSON body for order-insensitive
// byte-level comparison (batch lines legitimately arrive in completion
// order, which differs run to run even in one process).
func sortedLines(body []byte) []string {
	var lines []string
	for _, l := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			lines = append(lines, string(l))
		}
	}
	sort.Strings(lines)
	return lines
}

// TestClusterByteIdentitySingle: every corpus file analyzed through a
// 2-worker cluster edge answers byte-identically to a single-process
// server.
func TestClusterByteIdentitySingle(t *testing.T) {
	files := loadSuite(t)
	single := newWorker(t, server.Config{})
	w0 := newWorker(t, server.Config{})
	w1 := newWorker(t, server.Config{})
	_, edge := newCoordinator(t,
		WorkerSpec{ID: "w0", URL: w0.URL},
		WorkerSpec{ID: "w1", URL: w1.URL})

	for _, f := range files {
		req := server.AnalyzeRequest{Name: f.Name, Src: f.Src}
		wantResp, want := postJSON(t, single.URL+"/v1/analyze", req)
		gotResp, got := postJSON(t, edge.URL+"/v1/analyze", req)
		if wantResp.StatusCode != gotResp.StatusCode {
			t.Fatalf("%s: status %d via cluster, %d single", f.Name, gotResp.StatusCode, wantResp.StatusCode)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: cluster response differs from single-process\nsingle:  %s\ncluster: %s", f.Name, want, got)
		}
		if gotResp.Header.Get("X-Uafserve-Worker") == "" {
			t.Fatalf("%s: missing X-Uafserve-Worker header", f.Name)
		}
	}
}

// TestClusterByteIdentityBatch: the full corpus as one batch through
// the cluster edge yields exactly the line set a single process emits
// (compared order-insensitively; lines stream in completion order on
// both sides). Unnamed files must default identically too.
func TestClusterByteIdentityBatch(t *testing.T) {
	files := loadSuite(t)
	// Blank half the names: the coordinator must default them by
	// original batch index before splitting, like one process would.
	for i := range files {
		if i%2 == 1 {
			files[i].Name = ""
		}
	}
	req := server.BatchRequest{Files: files}

	single := newWorker(t, server.Config{})
	w0 := newWorker(t, server.Config{})
	w1 := newWorker(t, server.Config{})
	_, edge := newCoordinator(t,
		WorkerSpec{ID: "w0", URL: w0.URL},
		WorkerSpec{ID: "w1", URL: w1.URL})

	wantResp, want := postJSON(t, single.URL+"/v1/analyze-batch", req)
	gotResp, got := postJSON(t, edge.URL+"/v1/analyze-batch", req)
	if wantResp.StatusCode != http.StatusOK || gotResp.StatusCode != http.StatusOK {
		t.Fatalf("status: single %d, cluster %d", wantResp.StatusCode, gotResp.StatusCode)
	}
	wantLines, gotLines := sortedLines(want), sortedLines(got)
	if len(wantLines) != len(files) {
		t.Fatalf("single emitted %d lines for %d files", len(wantLines), len(files))
	}
	if fmt.Sprint(wantLines) != fmt.Sprint(gotLines) {
		t.Fatalf("cluster batch line set differs from single-process\nsingle:  %v\ncluster: %v", wantLines, gotLines)
	}
}

// TestClusterDeltaByteIdentity: an incremental NDJSON stream — initial
// sends plus an edit re-send — through the cluster edge answers
// byte-identically and in input order, like one process.
func TestClusterDeltaByteIdentity(t *testing.T) {
	files := loadSuite(t)[:6]
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, f := range files {
		enc.Encode(server.DeltaRequest{Name: f.Name, Src: f.Src}) //nolint:errcheck
	}
	// Re-send the first file with an edit: routing is by (name,
	// options), so the cluster lands it on the worker holding the memo.
	enc.Encode(server.DeltaRequest{ //nolint:errcheck
		Name: files[0].Name,
		Src:  files[0].Src + "\nproc extraClusterEdit() { var y: int = 2; }\n",
	})
	body := sb.String()

	single := newWorker(t, server.Config{})
	w0 := newWorker(t, server.Config{})
	w1 := newWorker(t, server.Config{})
	_, edge := newCoordinator(t,
		WorkerSpec{ID: "w0", URL: w0.URL},
		WorkerSpec{ID: "w1", URL: w1.URL})

	post := func(url string) []byte {
		resp, err := http.Post(url+"/v1/delta", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta: status %d", resp.StatusCode)
		}
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := post(single.URL)
	got := post(edge.URL)
	if !bytes.Equal(want, got) {
		t.Fatalf("cluster delta stream differs from single-process\nsingle:  %s\ncluster: %s", want, got)
	}
}

// TestClusterCoordinatorRestart: a fresh coordinator over the same
// worker fleet routes and answers identically — coordinator state is
// soft, so a restart loses nothing.
func TestClusterCoordinatorRestart(t *testing.T) {
	files := loadSuite(t)[:4]
	w0 := newWorker(t, server.Config{})
	w1 := newWorker(t, server.Config{})
	specs := []WorkerSpec{{ID: "w0", URL: w0.URL}, {ID: "w1", URL: w1.URL}}

	_, edge1 := newCoordinator(t, specs...)
	var before [][]byte
	var owners []string
	for _, f := range files {
		resp, out := postJSON(t, edge1.URL+"/v1/analyze", server.AnalyzeRequest{Name: f.Name, Src: f.Src})
		before = append(before, out)
		owners = append(owners, resp.Header.Get("X-Uafserve-Worker"))
	}

	_, edge2 := newCoordinator(t, specs...)
	for i, f := range files {
		resp, out := postJSON(t, edge2.URL+"/v1/analyze", server.AnalyzeRequest{Name: f.Name, Src: f.Src})
		if !bytes.Equal(before[i], out) {
			t.Fatalf("%s: response changed across coordinator restart", f.Name)
		}
		if got := resp.Header.Get("X-Uafserve-Worker"); got != owners[i] {
			t.Fatalf("%s: routed to %s before restart, %s after — routing is not deterministic", f.Name, owners[i], got)
		}
	}
}

// TestClusterBackpressureBubbles: a worker's 429 + Retry-After must
// reach the edge caller verbatim — the coordinator neither retries nor
// rewrites backpressure, so a cluster edge looks exactly like one
// overloaded process.
func TestClusterBackpressureBubbles(t *testing.T) {
	const busyBody = `{"error":"queue full","code":"overloaded"}` + "\n"
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"status":"ok"}`)) //nolint:errcheck
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, busyBody) //nolint:errcheck
		}
	}))
	defer stub.Close()
	_, edge := newCoordinator(t, WorkerSpec{ID: "w0", URL: stub.URL})

	checks := []struct {
		path string
		body any
	}{
		{"/v1/analyze", server.AnalyzeRequest{Name: "a.chpl", Src: "proc a() { }"}},
		{"/v1/analyze-batch", server.BatchRequest{Files: []server.BatchFile{{Name: "a.chpl", Src: "proc a() { }"}}}},
	}
	for _, c := range checks {
		resp, out := postJSON(t, edge.URL+c.path, c.body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d, want 429", c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "7" {
			t.Fatalf("%s: Retry-After %q, want 7", c.path, got)
		}
		if string(out) != busyBody {
			t.Fatalf("%s: body rewritten: %q", c.path, out)
		}
	}
}

// TestChaosClusterWorkerKillMidBatch: one worker accepts its batch
// shard, emits a torn partial line and dies. The edge stream must
// still carry one well-formed line per file — the dead worker's files
// rerouted to the survivor and byte-identical to a single-process run,
// never a silently shorter or corrupt stream.
func TestChaosClusterWorkerKillMidBatch(t *testing.T) {
	files := loadSuite(t)
	req := server.BatchRequest{Files: files}

	// The doomed worker: healthy to probes, then hijacks the batch
	// connection to emit a 200 header plus half a JSON line and die —
	// the worst-timed kill, after the coordinator's header barrier.
	doomed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`)) //nolint:errcheck
			return
		}
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\r\n") //nolint:errcheck
		buf.WriteString(`{"name":"torn-partial`)                                         //nolint:errcheck
		buf.Flush()                                                                      //nolint:errcheck
		conn.Close()
	}))
	defer doomed.Close()
	survivor := newWorker(t, server.Config{})
	coord, edge := newCoordinator(t,
		WorkerSpec{ID: "w0", URL: doomed.URL},
		WorkerSpec{ID: "w1", URL: survivor.URL})

	// The split is content-deterministic; the test is vacuous unless
	// the doomed worker owns at least one file.
	ring := coord.aliveRing()
	doomedOwns := 0
	for _, f := range files {
		if ring.Lookup(server.RouteKey("analyze", f.Name, f.Src, req.Options)) == "w0" {
			doomedOwns++
		}
	}
	if doomedOwns == 0 {
		t.Fatal("ring routed no corpus file to the doomed worker; test would be vacuous")
	}

	single := newWorker(t, server.Config{})
	_, want := postJSON(t, single.URL+"/v1/analyze-batch", req)
	resp, got := postJSON(t, edge.URL+"/v1/analyze-batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	gotLines := sortedLines(got)
	if len(gotLines) != len(files) {
		t.Fatalf("edge stream has %d lines for %d files — a worker kill silently shortened it:\n%s",
			len(gotLines), len(files), got)
	}
	for _, l := range gotLines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("edge relayed a corrupt line: %q", l)
		}
		if strings.Contains(l, "torn-partial") {
			t.Fatalf("edge relayed the dead worker's partial line: %q", l)
		}
	}
	if fmt.Sprint(sortedLines(want)) != fmt.Sprint(gotLines) {
		t.Fatalf("rerouted batch diverged from single-process result\nsingle:  %v\ncluster: %v",
			sortedLines(want), gotLines)
	}
}

// TestChaosClusterWorkerKillNoSurvivor: when the shard owner dies
// mid-stream and no other worker can take the reroute, every
// unfinished file must surface as a flagged status "error" line — the
// degraded outcome is visible, never silent.
func TestChaosClusterWorkerKillNoSurvivor(t *testing.T) {
	doomed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`)) //nolint:errcheck
			return
		}
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\r\n") //nolint:errcheck
		buf.Flush()                                                                      //nolint:errcheck
		conn.Close()
	}))
	defer doomed.Close()
	_, edge := newCoordinator(t, WorkerSpec{ID: "w0", URL: doomed.URL})

	files := []server.BatchFile{
		{Name: "a.chpl", Src: "proc a() { var x: int = 1; }"},
		{Name: "b.chpl", Src: "proc b() { var y: int = 2; }"},
	}
	resp, got := postJSON(t, edge.URL+"/v1/analyze-batch", server.BatchRequest{Files: files})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (stream had started)", resp.StatusCode)
	}
	lines := sortedLines(got)
	if len(lines) != len(files) {
		t.Fatalf("got %d lines for %d files:\n%s", len(lines), len(files), got)
	}
	for _, l := range lines {
		var res struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal([]byte(l), &res); err != nil {
			t.Fatalf("corrupt line: %q", l)
		}
		if res.Status != "error" || !strings.Contains(res.Error, "worker lost mid-batch") {
			t.Fatalf("line not flagged as worker-lost: %q", l)
		}
	}
}

// TestChaosClusterTornRemoteCacheRead: a replica warming from a peer
// over the cache protocol reads a torn envelope. The checksum layer
// must turn that into a quarantine + miss — never a wrong value, and
// never a corrupt byte warmed into the local tier — and a recompute
// lands cleanly afterwards.
func TestChaosClusterTornRemoteCacheRead(t *testing.T) {
	codec := cache.Codec[string]{
		Encode: func(s string) ([]byte, error) { return []byte(s), nil },
		Decode: func(b []byte) (string, error) { return string(b), nil },
		Clone:  func(s string) string { return s },
	}
	k1, k2 := cache.KeyOf("cluster-entry-1"), cache.KeyOf("cluster-entry-2")

	// The peer replica: a dir-backed cache with its backend mounted
	// behind the /v1/cache peer protocol.
	peerBE := cache.NewDirBackend(t.TempDir())
	peerCache := cache.NewWithBackend(codec, 0, peerBE)
	peerCache.Put(k1, "value-one")
	peerCache.Put(k2, "value-two")
	peer := newWorker(t, server.Config{CachePeer: peerBE})

	hc := client.New(client.Config{MaxAttempts: 1, Budget: 5 * time.Second, NoStatusRetry: true})

	// Clean path first: a cold replica warms k1 from the peer and the
	// validated envelope lands in its local tier.
	localA := cache.NewDirBackend(t.TempDir())
	ca := cache.NewWithBackend(codec, 0, cache.NewTiered(localA, NewRemoteBackend([]string{peer.URL}, hc)))
	if v, ok := ca.Get(k1); !ok || v != "value-one" {
		t.Fatalf("warm from peer: got %q, %v", v, ok)
	}
	if _, err := localA.Fetch(k1); err != nil {
		t.Fatalf("validated entry was not warmed into the local tier: %v", err)
	}

	// Torn path: the next remote read is mangled in flight.
	restore := fault.Set(fault.New(7, fault.Rule{
		Point: fault.ClusterRemoteTorn, Mode: fault.ModeTorn, Prob: 1, Count: 1,
	}))
	defer restore()

	localB := cache.NewDirBackend(t.TempDir())
	cb := cache.NewWithBackend(codec, 0, cache.NewTiered(localB, NewRemoteBackend([]string{peer.URL}, hc)))
	if v, ok := cb.Get(k2); ok {
		t.Fatalf("torn remote read served a value: %q", v)
	}
	if st := cb.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1 (stats: %+v)", st.Quarantined, st)
	}
	// The corrupt envelope must not have been warmed locally, and the
	// discard fan-out must have evicted the peer's copy so it cannot
	// re-propagate.
	if _, err := localB.Fetch(k2); err == nil {
		t.Fatal("corrupt envelope was warmed into the local tier")
	}
	if _, err := peerBE.Fetch(k2); err == nil {
		t.Fatal("peer still serves the discarded entry")
	}

	// Recompute: the caller stores a fresh value locally; a restarted
	// replica over the same local tier reads it back intact.
	cb.Put(k2, "value-two")
	cb2 := cache.NewWithBackend(codec, 0, localB)
	if v, ok := cb2.Get(k2); !ok || v != "value-two" {
		t.Fatalf("recomputed entry did not persist: got %q, %v", v, ok)
	}
}

// TestClusterMembershipProbe: killing a worker and probing shrinks the
// ring and degrades /healthz; the cluster keeps serving byte-identical
// results from the survivors, and an empty fleet answers 503 unready.
func TestClusterMembershipProbe(t *testing.T) {
	files := loadSuite(t)[:4]
	w0 := newWorker(t, server.Config{})
	w1live := newWorker(t, server.Config{})
	coord, edge := newCoordinator(t,
		WorkerSpec{ID: "w0", URL: w0.URL},
		WorkerSpec{ID: "w1", URL: w1live.URL})

	healthz := func() (int, map[string]any) {
		resp, err := http.Get(edge.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	if code, m := healthz(); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("full fleet: healthz %d %v", code, m["status"])
	}

	var want [][]byte
	for _, f := range files {
		_, out := postJSON(t, edge.URL+"/v1/analyze", server.AnalyzeRequest{Name: f.Name, Src: f.Src})
		want = append(want, out)
	}

	w1live.Close()
	coord.Probe()
	if coord.aliveRing().Len() != 1 {
		t.Fatalf("ring has %d members after killing one of two", coord.aliveRing().Len())
	}
	code, m := healthz()
	if code != http.StatusOK || m["status"] != "degraded" {
		t.Fatalf("partial fleet: healthz %d %v, want 200 degraded", code, m["status"])
	}
	comps := m["components"].(map[string]any)
	if comps["worker:w1"].(map[string]any)["state"] != "dead" {
		t.Fatalf("worker:w1 not reported dead: %v", comps["worker:w1"])
	}
	for i, f := range files {
		resp, out := postJSON(t, edge.URL+"/v1/analyze", server.AnalyzeRequest{Name: f.Name, Src: f.Src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d on degraded fleet", f.Name, resp.StatusCode)
		}
		if !bytes.Equal(want[i], out) {
			t.Fatalf("%s: result changed after membership shrank", f.Name)
		}
	}

	w0.Close()
	coord.Probe()
	if code, m := healthz(); code != http.StatusServiceUnavailable || m["status"] != "unready" {
		t.Fatalf("empty fleet: healthz %d %v, want 503 unready", code, m["status"])
	}
	resp, _ := postJSON(t, edge.URL+"/v1/analyze", server.AnalyzeRequest{Name: "a.chpl", Src: "proc a() { }"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet: analyze answered %d, want 503", resp.StatusCode)
	}
}

// TestClusterStatuszSurface: /statusz carries the version, the
// coordinator mode, per-worker rows and the breaker map — the
// operator's one-stop view of the fleet.
func TestClusterStatuszSurface(t *testing.T) {
	w0 := newWorker(t, server.Config{})
	_, edge := newCoordinator(t, WorkerSpec{ID: "w0", URL: w0.URL})
	postJSON(t, edge.URL+"/v1/analyze", server.AnalyzeRequest{Name: "a.chpl", Src: "proc a() { }"})

	resp, err := http.Get(edge.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["mode"] != "coordinator" {
		t.Fatalf("mode = %v, want coordinator", m["mode"])
	}
	if v, ok := m["version"].(string); !ok || v == "" {
		t.Fatalf("missing version: %v", m["version"])
	}
	if _, ok := m["components"].(map[string]any)["worker:w0"]; !ok {
		t.Fatalf("missing worker row: %v", m["components"])
	}
	if _, ok := m["breakers"]; !ok {
		t.Fatal("missing breakers map")
	}
	counters := m["counters"].(map[string]any)
	if counters[CtrProxied].(float64) < 1 {
		t.Fatalf("proxied counter not incremented: %v", counters)
	}
}
