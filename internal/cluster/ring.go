// Package cluster shards uafserve across replicas: a coordinator
// terminates HTTP, computes the same content-addressed keys the cache
// uses, and routes each request over a consistent-hash ring to one of N
// workers through the retrying, per-host-circuit-breaking
// internal/client. Workers are the unmodified single-process server
// core behind the same /v1/ wire contract, so every byte the cluster
// serves is byte-identical to what one process would have served —
// the determinism contract extends from cache keys to routing.
//
// The ring hashes logical member IDs (not addresses), so a fleet
// rebuild with the same member names routes identically even when
// every port changed; membership changes remap only the ~1/N of the
// keyspace that consistent hashing requires (see TestRingRebalance).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"uafcheck/internal/cache"
)

// DefaultVnodes is how many virtual nodes each member projects onto
// the ring when the caller passes vnodes <= 0. More vnodes smooth the
// keyspace split at the cost of a larger (still tiny) routing table.
const DefaultVnodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over logical member IDs.
// Membership changes build a new Ring (ring construction for a fleet
// of tens of members is microseconds), which keeps lookups lock-free
// behind an atomic pointer swap at the call site.
type Ring struct {
	points  []ringPoint
	members []string // sorted, unique
}

// NewRing builds a ring from member IDs (duplicates ignored) with the
// given virtual-node count per member (<= 0 means DefaultVnodes). A
// ring with no members is valid; lookups on it return nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make(map[string]bool, len(members))
	for _, m := range members {
		uniq[m] = true
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
		members: make([]string, 0, len(uniq)),
	}
	for m := range uniq {
		r.members = append(r.members, m)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, i), member: m})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by member ID so the ring
		// is deterministic regardless of construction order.
		return a.member < b.member
	})
	return r
}

// pointHash positions one virtual node: the first 8 bytes of
// SHA-256("ring/<member>#<vnode>"), matching the hash family of the
// cache keys the ring routes.
func pointHash(member string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("ring/%s#%d", member, vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash projects a cache key onto the circle: its first 8 bytes.
// The key is already a SHA-256, so no re-hashing is needed.
func keyHash(k cache.Key) uint64 {
	return binary.BigEndian.Uint64(k[:8])
}

// Members returns the sorted member IDs.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Lookup returns the member owning k, or "" for an empty ring.
func (r *Ring) Lookup(k cache.Key) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(keyHash(k))].member
}

// LookupN returns up to n distinct members in ring order starting from
// k's owner — the owner first, then the failover successors a caller
// tries when the owner is down. n > Len() returns every member.
func (r *Ring) LookupN(k cache.Key, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.successor(keyHash(k)); i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// successor finds the index of the first point at or clockwise of h,
// wrapping past the top of the circle.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
