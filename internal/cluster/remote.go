package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"uafcheck/internal/cache"
	"uafcheck/internal/client"
	"uafcheck/internal/fault"
)

// RemoteBackend implements cache.Backend over the cache peer protocol
// (GET/PUT/DELETE /v1/cache/{key}): a replica's window into its peers'
// disk tiers. Peers are tried in consistent-hash order for the key, so
// the replica most likely to hold an entry (the coordinator routed
// that key to it) is asked first and a hit normally costs one request.
//
// RemoteBackend returns the envelope bytes exactly as received — the
// receiving cache validates the checksum itself, so a torn network
// read or a corrupt peer entry (injected via the cluster.cache.torn
// fault point) degrades to a quarantine + miss, never a wrong result.
// It is meant to sit behind cache.NewTiered as the remote tier; used
// alone it would make every local miss a network round-trip.
type RemoteBackend struct {
	peers []string // base URLs, e.g. "http://127.0.0.1:43117"
	ring  *Ring    // over the peer URLs, for hit-likelihood ordering
	hc    *client.Client
}

// NewRemoteBackend builds a remote tier over peer base URLs, speaking
// through hc (which brings retries, per-host breakers, and a budget).
func NewRemoteBackend(peers []string, hc *client.Client) *RemoteBackend {
	return &RemoteBackend{
		peers: peers,
		ring:  NewRing(peers, 0),
		hc:    hc,
	}
}

// Name implements cache.Backend.
func (b *RemoteBackend) Name() string {
	return "remote:" + strings.Join(b.peers, ",")
}

func (b *RemoteBackend) url(peer string, k cache.Key) string {
	return peer + "/v1/cache/" + k.String()
}

// Fetch implements cache.Backend: ask each peer in ring order until
// one has the entry. Every peer answering a clean 404 makes the fetch
// a clean miss; transport or server errors surface as I/O errors (the
// cache counts them) once no peer can serve the entry.
func (b *RemoteBackend) Fetch(k cache.Key) ([]byte, error) {
	var lastErr error
	for _, peer := range b.ring.LookupN(k, len(b.peers)) {
		resp, err := b.hc.Get(context.Background(), b.url(peer, k))
		if err != nil {
			lastErr = err
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			env, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				lastErr = fmt.Errorf("cluster: reading cache entry from %s: %w", peer, err)
				continue
			}
			return fault.Mangle(fault.ClusterRemoteTorn, env), nil
		case http.StatusNotFound:
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		default:
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			lastErr = fmt.Errorf("cluster: cache peer %s: %s", peer, resp.Status)
		}
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w: %s (no peer holds it)", cache.ErrNotFound, k.String())
}

// Store implements cache.Backend: push the envelope to the key's owner
// peer. Behind a tiered backend this is unused (writes land locally
// and peers pull), but a caller may use it to pre-seed a fleet.
func (b *RemoteBackend) Store(k cache.Key, env []byte) error {
	owner := b.ring.Lookup(k)
	if owner == "" {
		return errors.New("cluster: no cache peers configured")
	}
	resp, err := b.hc.Do(context.Background(), http.MethodPut, b.url(owner, k),
		"application/octet-stream", env)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cluster: cache peer %s: %s", owner, resp.Status)
	}
	return nil
}

// Discard implements cache.Backend: tell every peer to drop the entry,
// best-effort, so a corrupt entry cannot keep re-propagating.
func (b *RemoteBackend) Discard(k cache.Key, cause error) {
	for _, peer := range b.peers {
		resp, err := b.hc.Do(context.Background(), http.MethodDelete, b.url(peer, k), "", nil)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
}
