package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uafcheck"
	"uafcheck/internal/cache"
	"uafcheck/internal/client"
	"uafcheck/internal/obs"
	"uafcheck/internal/server"
)

// Cluster counter names on the coordinator's /metrics.
const (
	// CtrProxied counts requests forwarded to a worker (any outcome).
	CtrProxied = "cluster.proxied"
	// CtrReroutes counts failover hops: a candidate worker was
	// unreachable and the request moved to its ring successor.
	CtrReroutes = "cluster.reroutes"
	// CtrWorkerLost counts transport failures against workers.
	CtrWorkerLost = "cluster.worker_lost"
	// CtrBatchLines counts NDJSON result lines merged at the edge.
	CtrBatchLines = "cluster.batch_lines"
	// CtrMembershipChanges counts ring rebuilds from health probes.
	CtrMembershipChanges = "cluster.membership_changes"
)

// WorkerSpec names one worker replica: a stable logical ID (the ring
// hashes IDs, so routing survives every port changing across a fleet
// restart) and the base URL it currently answers on.
type WorkerSpec struct {
	ID  string
	URL string
}

// Config wires a Coordinator.
type Config struct {
	// Workers is the configured fleet. Liveness within it is managed by
	// health probes; membership of the routing ring follows liveness.
	Workers []WorkerSpec
	// Client tunes the worker-facing HTTP client. NoStatusRetry is
	// forced on: worker backpressure must reach the edge, not retries.
	Client client.Config
	// ProbeInterval paces the health prober (0 = 2s; negative disables
	// background probing — tests drive Probe explicitly).
	ProbeInterval time.Duration
	// MaxBodyBytes bounds a request body (0 = 8 MiB), mirroring the
	// worker-side limit so oversized requests die at the edge.
	MaxBodyBytes int64
	// Logger receives operational log records (nil = slog.Default()).
	Logger *slog.Logger
}

// workerHealth is one worker's probed liveness state.
type workerHealth struct {
	alive       bool
	consecFails int64
	lastErr     string
}

// Coordinator terminates cluster HTTP: it owns the routing ring, the
// worker health prober, and the fan-out/merge logic for streaming
// endpoints. Create with New, expose via Handler, stop with Shutdown.
type Coordinator struct {
	cfg   Config
	urls  map[string]string // worker ID -> base URL
	order []string          // configured worker IDs, in config order
	hc    *client.Client    // request path: retries transport errors only
	probe *client.Client    // probe path: single fast attempt
	rec   *obs.Recorder
	log   *slog.Logger
	start time.Time

	ring atomic.Pointer[Ring] // over currently-alive worker IDs

	mu     sync.Mutex
	health map[string]*workerHealth

	stop chan struct{}
	done chan struct{}
}

// New builds a Coordinator, runs one synchronous probe round so the
// initial ring reflects real liveness, and starts the background
// prober (unless ProbeInterval < 0).
func New(cfg Config) *Coordinator {
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ccfg := cfg.Client
	ccfg.NoStatusRetry = true
	if ccfg.Budget <= 0 {
		// Sub-requests carry whole batch streams; give them room.
		ccfg.Budget = 5 * time.Minute
	}
	c := &Coordinator{
		cfg:    cfg,
		urls:   make(map[string]string, len(cfg.Workers)),
		order:  make([]string, 0, len(cfg.Workers)),
		hc:     client.New(ccfg),
		probe:  client.New(client.Config{MaxAttempts: 1, Budget: 3 * time.Second, NoStatusRetry: true}),
		rec:    obs.New(),
		log:    cfg.Logger,
		start:  time.Now(),
		health: make(map[string]*workerHealth, len(cfg.Workers)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, w := range cfg.Workers {
		c.urls[w.ID] = w.URL
		c.order = append(c.order, w.ID)
		c.health[w.ID] = &workerHealth{alive: true}
	}
	c.ring.Store(NewRing(c.order, 0))
	c.Probe()
	if cfg.ProbeInterval > 0 {
		go c.probeLoop()
	} else {
		close(c.done)
	}
	return c
}

// Shutdown stops the prober. In-flight proxied requests finish under
// their own contexts; the caller drains its http.Server separately.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) probeLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Probe()
		}
	}
}

// Probe runs one health round over every configured worker and
// rebuilds the ring when liveness changed. A worker is alive when its
// /healthz answers 200 (a draining or wedged worker answers 503 and
// leaves the ring until it recovers). Safe for concurrent use.
func (c *Coordinator) Probe() {
	type verdict struct {
		id    string
		alive bool
		err   string
	}
	verdicts := make([]verdict, len(c.order))
	var wg sync.WaitGroup
	for i, id := range c.order {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			v := verdict{id: id}
			resp, err := c.probe.Get(context.Background(), c.urls[id]+"/healthz")
			switch {
			case err != nil:
				v.err = err.Error()
			case resp.StatusCode != http.StatusOK:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				v.err = "healthz: " + resp.Status
			default:
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				v.alive = true
			}
			verdicts[i] = v
		}(i, id)
	}
	wg.Wait()

	c.mu.Lock()
	changed := false
	alive := make([]string, 0, len(c.order))
	for _, v := range verdicts {
		h := c.health[v.id]
		if h.alive != v.alive {
			changed = true
		}
		h.alive = v.alive
		h.lastErr = v.err
		if v.alive {
			h.consecFails = 0
			alive = append(alive, v.id)
		} else {
			h.consecFails++
		}
	}
	c.mu.Unlock()

	if changed {
		c.ring.Store(NewRing(alive, 0))
		c.rec.Add(CtrMembershipChanges, 1)
		c.log.Info("cluster: ring membership changed", "alive", alive, "configured", len(c.order))
	}
}

// aliveRing returns the current routing ring.
func (c *Coordinator) aliveRing() *Ring { return c.ring.Load() }

// Handler returns the coordinator's route table: the full /v1/ wire
// contract proxied over the ring, the cache peer protocol routed to
// entry owners, and the admin surfaces.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", c.proxySingle("analyze", "/v1/analyze"))
	mux.HandleFunc("POST /v1/repair", c.proxySingle("repair", "/v1/repair"))
	mux.HandleFunc("POST /v1/analyze-batch", c.handleBatch)
	mux.HandleFunc("POST /v1/delta", c.handleDelta)
	mux.HandleFunc("GET /v1/cache/{key}", c.handleCacheProxy)
	mux.HandleFunc("PUT /v1/cache/{key}", c.handleCacheProxy)
	mux.HandleFunc("DELETE /v1/cache/{key}", c.handleCacheProxy)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{\"status\":\"alive\"}\n")) //nolint:errcheck
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.PromSink{W: w}.Emit(c.rec.Snapshot()) //nolint:errcheck
	})
	mux.HandleFunc("GET /statusz", c.handleStatusz)
	return mux
}

// forwardHeaders picks the request headers that must reach the worker:
// content negotiation (SARIF), tracing, and body typing.
func forwardHeaders(r *http.Request) http.Header {
	h := http.Header{}
	for _, k := range []string{"Accept", "Content-Type", "Traceparent"} {
		if v := r.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	return h
}

// copyResponse relays a worker response to the edge verbatim: status,
// contract headers, and the (possibly streaming) body, flushed per
// chunk so NDJSON consumers see lines as workers produce them.
func copyResponse(w http.ResponseWriter, resp *http.Response, workerID string) {
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "Retry-After", "Traceparent",
		"X-Uafserve-Dedup", "X-Uafserve-Cache", "Sunset"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Uafserve-Worker", workerID)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n]) //nolint:errcheck — a dead client just discards the stream
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// errorJSON writes the same error envelope shape the worker tier uses.
func (c *Coordinator) errorJSON(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code >= 500 {
		w.Header().Set("Retry-After", "2")
	}
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%s}\n", mustQuote(msg))
}

func mustQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// proxySingle forwards one body-addressed request (analyze, repair) to
// the content-key owner, with one failover hop to the ring successor
// when the owner is unreachable. Any HTTP answer from a worker — 200,
// 429 with Retry-After, 503 — is definitive and relayed unchanged.
func (c *Coordinator) proxySingle(kind, path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
		if err != nil {
			c.errorJSON(w, http.StatusRequestEntityTooLarge, "reading body: "+err.Error())
			return
		}
		var req server.AnalyzeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			c.errorJSON(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
			return
		}
		key := server.RouteKey(kind, req.Name, req.Src, req.Options)
		c.forwardByKey(w, r, key, path, body)
	}
}

// forwardByKey routes body to the key owner's /v1 path, trying up to
// two ring candidates on transport failure.
func (c *Coordinator) forwardByKey(w http.ResponseWriter, r *http.Request, key cache.Key, path string, body []byte) {
	cands := c.aliveRing().LookupN(key, 2)
	if len(cands) == 0 {
		c.errorJSON(w, http.StatusServiceUnavailable, "no workers alive")
		return
	}
	var lastErr error
	for i, id := range cands {
		if i > 0 {
			c.rec.Add(CtrReroutes, 1)
		}
		resp, err := c.hc.DoWithHeaders(r.Context(), http.MethodPost,
			c.urls[id]+path, forwardHeaders(r), body)
		if err != nil {
			lastErr = err
			c.rec.Add(CtrWorkerLost, 1)
			continue
		}
		c.rec.Add(CtrProxied, 1)
		copyResponse(w, resp, id)
		return
	}
	c.errorJSON(w, http.StatusBadGateway,
		fmt.Sprintf("all candidate workers unreachable: %v", lastErr))
}

// handleCacheProxy routes cache peer requests by entry key: GET and
// PUT go to the key's owner (with one failover hop for GET), DELETE
// fans out to every worker so no replica can re-serve a discarded
// entry.
func (c *Coordinator) handleCacheProxy(w http.ResponseWriter, r *http.Request) {
	k, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		c.errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	path := "/v1/cache/" + k.String()
	if r.Method == http.MethodDelete {
		for _, id := range c.aliveRing().Members() {
			resp, err := c.hc.Do(r.Context(), http.MethodDelete, c.urls[id]+path, "", nil)
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	body := []byte(nil)
	if r.Method == http.MethodPut {
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
		if err != nil {
			c.errorJSON(w, http.StatusRequestEntityTooLarge, "reading envelope: "+err.Error())
			return
		}
	}
	cands := c.aliveRing().LookupN(k, 2)
	if len(cands) == 0 {
		c.errorJSON(w, http.StatusServiceUnavailable, "no workers alive")
		return
	}
	var lastErr error
	for _, id := range cands {
		resp, err := c.hc.DoWithHeaders(r.Context(), r.Method, c.urls[id]+path,
			forwardHeaders(r), body)
		if err != nil {
			lastErr = err
			continue
		}
		copyResponse(w, resp, id)
		return
	}
	c.errorJSON(w, http.StatusBadGateway,
		fmt.Sprintf("all candidate workers unreachable: %v", lastErr))
}

// ----------------------------------------------------------- admin

// workerRows builds the per-worker component rows for /healthz and
// /statusz: "worker:<id>" with liveness ("ok" / "dead") and probe
// failure streaks — the coordinator-side mirror of each worker's own
// health surface.
func (c *Coordinator) workerRows() (rows map[string]server.ComponentStatus, aliveCount int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows = make(map[string]server.ComponentStatus, len(c.order)+1)
	for _, id := range c.order {
		h := c.health[id]
		st := server.ComponentStatus{State: "ok", Detail: map[string]int64{
			"consecutive_probe_failures": h.consecFails,
		}}
		if !h.alive {
			st.State = "dead"
		} else {
			aliveCount++
		}
		rows["worker:"+id] = st
	}
	rows["ring"] = server.ComponentStatus{State: "ok", Detail: map[string]int64{
		"members":    int64(aliveCount),
		"configured": int64(len(c.order)),
	}}
	return rows, aliveCount
}

// clusterState folds worker liveness into the coordinator verdict:
// every worker alive is "ok", a partial fleet is "degraded" (still
// serving, capacity and cache locality impaired), an empty ring is
// unready (503 — nothing can serve analyses).
func (c *Coordinator) clusterState() (rows map[string]server.ComponentStatus, status string, code int) {
	rows, alive := c.workerRows()
	switch {
	case alive == 0:
		return rows, "unready", http.StatusServiceUnavailable
	case alive < len(c.order):
		return rows, "degraded", http.StatusOK
	default:
		return rows, "ok", http.StatusOK
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rows, status, code := c.clusterState()
	body, _ := json.Marshal(map[string]any{
		"status":     status,
		"mode":       "coordinator",
		"version":    uafcheck.Version,
		"components": rows,
	})
	if code != http.StatusOK {
		w.Header().Set("Retry-After", strconv.Itoa(int(c.cfg.ProbeInterval/time.Second)+1))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n')) //nolint:errcheck
}

func (c *Coordinator) handleStatusz(w http.ResponseWriter, r *http.Request) {
	rows, status, _ := c.clusterState()
	m := c.rec.Snapshot()
	counters := make(map[string]int64)
	for _, name := range m.CounterNames() {
		counters[name] = m.Counter(name)
	}
	body, _ := json.Marshal(map[string]any{
		"version":    uafcheck.Version,
		"mode":       "coordinator",
		"uptime_s":   int64(time.Since(c.start).Seconds()),
		"status":     status,
		"components": rows,
		"counters":   counters,
		"breakers":   c.hc.HostStates(),
	})
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n')) //nolint:errcheck
}
