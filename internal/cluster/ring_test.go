package cluster

import (
	"fmt"
	"testing"

	"uafcheck/internal/cache"
)

// sampleKeys derives a deterministic 10k-key sample (content-addressed
// keys are SHA-256, so synthetic inputs are as uniform as real ones).
func sampleKeys(n int) []cache.Key {
	keys := make([]cache.Key, n)
	for i := range keys {
		keys[i] = cache.KeyOf("ring-sample", fmt.Sprint(i))
	}
	return keys
}

func memberIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("worker-%d", i)
	}
	return ids
}

// TestRingDeterministic: routing is byte-deterministic for a fixed
// member set — two independently built rings over the same members
// agree on every key, regardless of construction order.
func TestRingDeterministic(t *testing.T) {
	keys := sampleKeys(10000)
	a := NewRing([]string{"worker-0", "worker-1", "worker-2", "worker-3"}, 0)
	b := NewRing([]string{"worker-3", "worker-1", "worker-0", "worker-2"}, 0)
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %s: ring A says %s, ring B says %s",
				k.String()[:12], a.Lookup(k), b.Lookup(k))
		}
	}
}

// TestRingRebalance: the consistent-hashing contract. Adding or
// removing one of N members remaps at most ~2/N of a 10k-key sample
// (theoretical minimum 1/N; the slack covers vnode placement variance),
// and keys that stay mapped stay with the same member.
func TestRingRebalance(t *testing.T) {
	keys := sampleKeys(10000)
	for _, n := range []int{2, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			before := NewRing(memberIDs(n), 0)
			grown := NewRing(memberIDs(n+1), 0)
			shrunk := NewRing(memberIDs(n)[:n-1], 0)

			var movedOnAdd, movedOnRemove int
			for _, k := range keys {
				base := before.Lookup(k)
				if g := grown.Lookup(k); g != base {
					// A key may only move to the new member, never
					// shuffle between survivors.
					if g != fmt.Sprintf("worker-%d", n) {
						t.Fatalf("add: key %s moved %s -> %s (not the new member)",
							k.String()[:12], base, g)
					}
					movedOnAdd++
				}
				if s := shrunk.Lookup(k); s != base {
					// Only keys owned by the removed member may move.
					if base != fmt.Sprintf("worker-%d", n-1) {
						t.Fatalf("remove: key %s moved %s -> %s but its owner survived",
							k.String()[:12], base, s)
					}
					movedOnRemove++
				}
			}
			// ~1/(n+1) of keys should land on the new member; allow 2x.
			if limit := 2 * len(keys) / (n + 1); movedOnAdd > limit {
				t.Errorf("adding 1 of %d members remapped %d/%d keys, want <= %d",
					n, movedOnAdd, len(keys), limit)
			}
			if limit := 2 * len(keys) / n; movedOnRemove > limit {
				t.Errorf("removing 1 of %d members remapped %d/%d keys, want <= %d",
					n, movedOnRemove, len(keys), limit)
			}
			if movedOnAdd == 0 || movedOnRemove == 0 {
				t.Error("membership change moved zero keys — ring is not rebalancing")
			}
		})
	}
}

// TestRingLookupN: failover order starts at the owner, yields distinct
// members, and caps at the member count.
func TestRingLookupN(t *testing.T) {
	r := NewRing(memberIDs(3), 0)
	k := cache.KeyOf("failover", "probe")
	seq := r.LookupN(k, 5)
	if len(seq) != 3 {
		t.Fatalf("LookupN(5) over 3 members returned %d, want 3", len(seq))
	}
	if seq[0] != r.Lookup(k) {
		t.Errorf("LookupN[0] = %s, Lookup = %s — owner must come first", seq[0], r.Lookup(k))
	}
	seen := map[string]bool{}
	for _, m := range seq {
		if seen[m] {
			t.Errorf("LookupN repeated member %s", m)
		}
		seen[m] = true
	}
}

// TestRingBalance: with default vnodes no member owns a grossly
// disproportionate keyspace share (each within 2x of fair).
func TestRingBalance(t *testing.T) {
	const n = 4
	r := NewRing(memberIDs(n), 0)
	keys := sampleKeys(10000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	fair := len(keys) / n
	for m, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("member %s owns %d/%d keys (fair share %d)", m, c, len(keys), fair)
		}
	}
}

// TestRingEmpty: lookups on an empty ring return nothing, not panic.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Lookup(cache.KeyOf("x")); got != "" {
		t.Errorf("empty ring Lookup = %q", got)
	}
	if got := r.LookupN(cache.KeyOf("x"), 2); got != nil {
		t.Errorf("empty ring LookupN = %v", got)
	}
}
