package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uafcheck/internal/obs"
	"uafcheck/internal/server"
)

// Module fixtures shared with the server tests: main -> mid -> leaf.
func clusterModuleFiles(leafWrite string) []server.BatchFile {
	return []server.BatchFile{
		{Name: "leaf.chpl", Src: "proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + " + leafWrite + ";\n  }\n}\n"},
		{Name: "mid.chpl", Src: "proc mid(ref w: int) {\n  leaf(w);\n}\n"},
		{Name: "main.chpl", Src: "proc main() {\n  var x: int = 0;\n  mid(x);\n}\n"},
	}
}

// TestClusterModuleCellRouting: a module is one call-graph cell. Both
// batch and delta module requests for the same module label must land
// on the same worker — across snapshots — so the per-unit memo affinity
// survives edits, and the stream stays byte-identical to a
// single-process server.
func TestClusterModuleCellRouting(t *testing.T) {
	single := newWorker(t, server.Config{})

	sw0 := server.New(server.Config{Mode: "worker"})
	sw1 := server.New(server.Config{Mode: "worker"})
	w0 := httptest.NewServer(sw0.Handler())
	w1 := httptest.NewServer(sw1.Handler())
	t.Cleanup(w0.Close)
	t.Cleanup(w1.Close)
	_, edge := newCoordinator(t,
		WorkerSpec{ID: "w0", URL: w0.URL},
		WorkerSpec{ID: "w1", URL: w1.URL})

	v1 := clusterModuleFiles("1")
	v2 := clusterModuleFiles("9") // effect-preserving callee edit

	// Batch module mode: input-order NDJSON, identical through the edge.
	for _, snap := range [][]server.BatchFile{v1, v2} {
		req := server.BatchRequest{Mode: "module", Module: "app", Files: snap}
		_, want := postJSON(t, single.URL+"/v1/analyze-batch", req)
		resp, got := postJSON(t, edge.URL+"/v1/analyze-batch", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("edge batch status %d: %s", resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("edge module batch differs from single-process\nsingle:  %s\ncluster: %s", want, got)
		}
	}

	// Delta module lines: two snapshots of the same module label.
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, snap := range [][]server.BatchFile{v1, v2, v2} {
		enc.Encode(server.DeltaRequest{Module: "app", Files: snap}) //nolint:errcheck
	}
	postDelta := func(url string) []byte {
		resp, err := http.Post(url+"/v1/delta", "application/x-ndjson", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta status %d", resp.StatusCode)
		}
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := postDelta(single.URL)
	got := postDelta(edge.URL)
	if !bytes.Equal(want, got) {
		t.Fatalf("edge module delta differs from single-process\nsingle:  %s\ncluster: %s", want, got)
	}

	// Affinity: the route key is (module label, options) — not file
	// contents — so every request above hit one worker and the other
	// saw nothing.
	loads := []int64{
		sw0.MetricsSnapshot().Counter(obs.CtrServerBatchFiles) + sw0.MetricsSnapshot().Counter(obs.CtrServerDeltaFiles),
		sw1.MetricsSnapshot().Counter(obs.CtrServerBatchFiles) + sw1.MetricsSnapshot().Counter(obs.CtrServerDeltaFiles),
	}
	if (loads[0] == 0) == (loads[1] == 0) {
		t.Fatalf("module cell split across workers: w0=%d w1=%d files", loads[0], loads[1])
	}
	// And the warm worker actually reused its memo across snapshots.
	hot := sw0
	if loads[0] == 0 {
		hot = sw1
	}
	if hits := hot.MetricsSnapshot().Counter(obs.CtrUnitHits); hits == 0 {
		t.Errorf("warm worker served no unit hits across module snapshots")
	}
}
