package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"uafcheck/internal/cache"
	"uafcheck/internal/server"
	"uafcheck/internal/wire"
)

// The streaming proxies. Two invariants both endpoints enforce:
//
//  1. Backpressure forwards unchanged *before* any line streams: a
//     sub-request answering 429/503 while the edge response is still
//     unstarted is relayed verbatim — status, Retry-After, body — so a
//     cluster edge looks exactly like a single overloaded process.
//  2. A worker lost mid-stream yields degraded-flagged lines, never a
//     silently shorter stream: its unfinished files are rerouted once
//     to a ring successor, and whatever still cannot be computed is
//     emitted as a status "error" wire line naming the failure.

// scanBuf sizes NDJSON line scanners: start at 64 KiB, allow lines up
// to the body cap.
func lineScanner(r io.Reader, max int64) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), int(max))
	return sc
}

// ndjsonEmitter serializes line writes to the edge and flushes each
// one, so clients see per-file progress exactly as with one process.
type ndjsonEmitter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	started bool
}

func newEmitter(w http.ResponseWriter) *ndjsonEmitter {
	f, _ := w.(http.Flusher)
	return &ndjsonEmitter{w: w, flusher: f}
}

// start writes the edge 200 + NDJSON header exactly once.
func (e *ndjsonEmitter) start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.startLocked()
}

func (e *ndjsonEmitter) startLocked() {
	if !e.started {
		e.w.Header().Set("Content-Type", "application/x-ndjson")
		e.w.WriteHeader(http.StatusOK)
		e.started = true
	}
}

func (e *ndjsonEmitter) emit(line []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.startLocked()
	e.w.Write(append(line, '\n')) //nolint:errcheck — a dead client just discards the stream
	if e.flusher != nil {
		e.flusher.Flush()
	}
}

// errorLine renders the canonical status "error" wire line for a file
// the cluster could not get analyzed.
func errorLine(name string, err error) []byte {
	line, encErr := wire.NewResult(name, nil, err, false).Encode()
	if encErr != nil {
		b, _ := json.Marshal(map[string]string{"name": name, "error": err.Error()})
		return b
	}
	return line
}

// altWorker picks the first alive ring member that is not exclude —
// the reroute target for a group whose worker died.
func (c *Coordinator) altWorker(key cache.Key, exclude string) (string, bool) {
	for _, id := range c.aliveRing().LookupN(key, len(c.order)) {
		if id != exclude {
			return id, true
		}
	}
	return "", false
}

// ------------------------------------------------------------- batch

// batchGroup is the slice of one batch routed to a single worker.
type batchGroup struct {
	worker string
	key    cache.Key // first file's route key; reroute anchor
	files  []server.BatchFile
}

// handleBatch fans one /v1/analyze-batch out across the ring and
// merges the per-file NDJSON lines back at the edge. File names are
// defaulted by original batch index *before* splitting, so every line
// is byte-identical to what the single-process server would emit
// (which defaults names the same way); lines arrive in completion
// order, exactly as they do from one process's worker pool.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		c.errorJSON(w, http.StatusRequestEntityTooLarge, "reading body: "+err.Error())
		return
	}
	var req server.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		c.errorJSON(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return
	}
	if len(req.Files) == 0 {
		c.errorJSON(w, http.StatusBadRequest, "missing files")
		return
	}
	for i := range req.Files {
		if req.Files[i].Name == "" {
			req.Files[i].Name = fmt.Sprintf("input-%d.chpl", i)
		}
	}
	ring := c.aliveRing()
	if ring.Len() == 0 {
		c.errorJSON(w, http.StatusServiceUnavailable, "no workers alive")
		return
	}

	// Module mode is one call-graph cell, not a bag of independent
	// files: the whole request goes to a single worker chosen by the
	// module label and option set — deliberately not the file contents —
	// so successive snapshots of the same module land on the worker
	// whose Analyzer holds its per-unit memo store, and the incremental
	// speedup survives sharding.
	if req.Mode == "module" {
		key := server.ModuleRouteKey(req.ModuleLabel(), req.Options)
		fwd, _ := json.Marshal(req)
		c.forwardByKey(w, r, key, "/v1/analyze-batch", fwd)
		return
	}

	// SARIF is one aggregate document, not a line stream: route the
	// whole batch to a single worker (keyed by the full content) so the
	// cluster serves the identical document a single process would.
	if wantsSARIF(r) {
		var sb strings.Builder
		for _, f := range req.Files {
			sb.WriteString(f.Name)
			sb.WriteByte(0)
			sb.WriteString(f.Src)
			sb.WriteByte(0)
		}
		key := server.RouteKey("analyze-batch", "sarif", sb.String(), req.Options)
		fwd, _ := json.Marshal(req)
		c.forwardByKey(w, r, key, "/v1/analyze-batch", fwd)
		return
	}

	groups := c.groupFiles(ring, req)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	// Fire every sub-batch, then barrier on response *headers* (not
	// bodies): a sub-batch rejected with 429/503 must forward to the
	// edge unchanged before any line streams. Workers that are
	// unreachable get one reroute hop here, before the barrier.
	type subResp struct {
		resp *http.Response
		err  error
	}
	resps := make([]subResp, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.postSubBatch(ctx, r, groups[i].worker, groups[i].files, req.Options)
			if err != nil {
				c.rec.Add(CtrWorkerLost, 1)
				if alt, ok := c.altWorker(groups[i].key, groups[i].worker); ok {
					c.rec.Add(CtrReroutes, 1)
					groups[i].worker = alt
					resp, err = c.postSubBatch(ctx, r, alt, groups[i].files, req.Options)
				}
			}
			resps[i] = subResp{resp: resp, err: err}
		}(i)
	}
	wg.Wait()

	for i, sr := range resps {
		if sr.err == nil && sr.resp.StatusCode != http.StatusOK {
			// Worker backpressure wins over partial progress: relay it
			// verbatim and drop the other sub-streams (their workers see
			// a cancelled request and release their slots).
			for j, other := range resps {
				if j != i && other.err == nil {
					other.resp.Body.Close()
				}
			}
			copyResponse(w, sr.resp, groups[i].worker)
			return
		}
	}

	em := newEmitter(w)
	em.start()
	var lineWG sync.WaitGroup
	for i := range groups {
		lineWG.Add(1)
		go func(i int) {
			defer lineWG.Done()
			if resps[i].err != nil {
				// Both the owner and its successor were unreachable:
				// every file in the group gets a flagged error line.
				for _, f := range groups[i].files {
					em.emit(errorLine(f.Name, fmt.Errorf("cluster: no worker reachable for batch shard: %v", resps[i].err)))
				}
				return
			}
			c.streamGroup(ctx, r, em, groups[i], resps[i].resp, req.Options, true)
		}(i)
	}
	lineWG.Wait()
}

// groupFiles splits batch files across ring owners, preserving input
// order within each group.
func (c *Coordinator) groupFiles(ring *Ring, req server.BatchRequest) []batchGroup {
	index := make(map[string]int)
	var groups []batchGroup
	for _, f := range req.Files {
		key := server.RouteKey("analyze", f.Name, f.Src, req.Options)
		owner := ring.Lookup(key)
		gi, ok := index[owner]
		if !ok {
			gi = len(groups)
			index[owner] = gi
			groups = append(groups, batchGroup{worker: owner, key: key})
		}
		groups[gi].files = append(groups[gi].files, f)
	}
	return groups
}

// postSubBatch sends one worker its shard of the batch.
func (c *Coordinator) postSubBatch(ctx context.Context, r *http.Request, worker string, files []server.BatchFile, opts server.RequestOptions) (*http.Response, error) {
	body, err := json.Marshal(server.BatchRequest{Files: files, Options: opts})
	if err != nil {
		return nil, err
	}
	return c.hc.DoWithHeaders(ctx, http.MethodPost,
		c.urls[worker]+"/v1/analyze-batch", forwardHeaders(r), body)
}

// streamGroup relays one sub-batch's NDJSON lines to the edge. If the
// stream dies before every file's line arrived (worker killed
// mid-batch), the unfinished files are rerouted once to another
// worker; files that still cannot be computed are emitted as flagged
// error lines — the stream is never silently short.
func (c *Coordinator) streamGroup(ctx context.Context, r *http.Request, em *ndjsonEmitter, g batchGroup, resp *http.Response, opts server.RequestOptions, mayReroute bool) {
	pendingByName := make(map[string]int, len(g.files))
	for _, f := range g.files {
		pendingByName[f.Name]++
	}
	pending := len(g.files)

	sc := lineScanner(resp.Body, c.cfg.MaxBodyBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			// A worker killed mid-write leaves a truncated trailing line
			// (bufio.Scanner surfaces the partial token at EOF). Never
			// relay it; the file stays pending and gets rerouted below.
			continue
		}
		em.emit(append([]byte(nil), line...))
		c.rec.Add(CtrBatchLines, 1)
		var meta struct {
			Name string `json:"name"`
		}
		if json.Unmarshal(line, &meta) == nil && pendingByName[meta.Name] > 0 {
			pendingByName[meta.Name]--
			pending--
		}
	}
	scanErr := sc.Err()
	resp.Body.Close()
	if pending == 0 {
		return
	}
	if scanErr == nil {
		scanErr = fmt.Errorf("stream from worker %s ended %d lines early", g.worker, pending)
	}
	c.rec.Add(CtrWorkerLost, 1)
	c.log.Warn("cluster: batch shard lost mid-stream",
		"worker", g.worker, "missing", pending, "err", scanErr)

	remaining := make([]server.BatchFile, 0, pending)
	need := pendingByName
	for _, f := range g.files {
		if need[f.Name] > 0 {
			need[f.Name]--
			remaining = append(remaining, f)
		}
	}

	if mayReroute && ctx.Err() == nil {
		if alt, ok := c.altWorker(g.key, g.worker); ok {
			c.rec.Add(CtrReroutes, 1)
			if rresp, err := c.postSubBatch(ctx, r, alt, remaining, opts); err == nil {
				if rresp.StatusCode == http.StatusOK {
					c.streamGroup(ctx, r, em, batchGroup{worker: alt, key: g.key, files: remaining}, rresp, opts, false)
					return
				}
				io.Copy(io.Discard, rresp.Body) //nolint:errcheck
				rresp.Body.Close()
				scanErr = fmt.Errorf("reroute to %s rejected: %s (original: %v)", alt, rresp.Status, scanErr)
			} else {
				scanErr = fmt.Errorf("reroute to %s failed: %v (original: %v)", alt, err, scanErr)
			}
		}
	}
	for _, f := range remaining {
		em.emit(errorLine(f.Name, fmt.Errorf("cluster: worker lost mid-batch: %v", scanErr)))
	}
}

// wantsSARIF mirrors the worker-side content negotiation trigger.
func wantsSARIF(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/sarif+json")
}

// ------------------------------------------------------------- delta

// handleDelta proxies the incremental NDJSON stream line by line.
// Routing is by (name, options) — not content — so re-sends of an
// edited file land on the worker holding that file's memo store, and
// the incremental speedup survives sharding. The worker-side analyzer
// pool lives across requests, so forwarding each line as its own
// single-line /v1/delta call preserves both per-file ordering and
// memoization; lines answer in input order exactly as one process
// would answer them.
func (c *Coordinator) handleDelta(w http.ResponseWriter, r *http.Request) {
	if c.aliveRing().Len() == 0 {
		c.errorJSON(w, http.StatusServiceUnavailable, "no workers alive")
		return
	}
	em := newEmitter(w)
	sc := lineScanner(r.Body, c.cfg.MaxBodyBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var dr server.DeltaRequest
		if err := json.Unmarshal(line, &dr); err != nil {
			em.emit(errorLine(dr.Name, fmt.Errorf("malformed delta line: %v", err)))
			continue
		}
		key := server.RouteKey("delta", dr.Name, "", dr.Options)
		if dr.Module != "" || len(dr.Files) > 0 {
			// Module lines route by module label, matching the batch
			// module path: the memo affinity is per module, not per file.
			key = server.ModuleRouteKey(dr.ModuleLabel(), dr.Options)
		}
		cands := c.aliveRing().LookupN(key, 2)
		var lastErr error
		relayed := false
		for i, id := range cands {
			if i > 0 {
				c.rec.Add(CtrReroutes, 1)
			}
			resp, err := c.hc.DoWithHeaders(r.Context(), http.MethodPost,
				c.urls[id]+"/v1/delta", forwardHeaders(r), append(append([]byte(nil), line...), '\n'))
			if err != nil {
				lastErr = err
				c.rec.Add(CtrWorkerLost, 1)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				if !em.started {
					// Backpressure before the stream began: relay the
					// 429/503 verbatim, Retry-After and all.
					copyResponse(w, resp, id)
					return
				}
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
				resp.Body.Close()
				em.emit(errorLine(dr.Name, fmt.Errorf("cluster: worker %s answered %s: %s",
					id, resp.Status, bytes.TrimSpace(b))))
				relayed = true
				break
			}
			rs := lineScanner(resp.Body, c.cfg.MaxBodyBytes)
			for rs.Scan() {
				out := bytes.TrimSpace(rs.Bytes())
				if len(out) == 0 || !json.Valid(out) {
					continue
				}
				em.emit(append([]byte(nil), out...))
			}
			resp.Body.Close()
			c.rec.Add(CtrProxied, 1)
			relayed = true
			break
		}
		if !relayed {
			em.emit(errorLine(dr.Name, fmt.Errorf("cluster: no worker reachable: %v", lastErr)))
		}
	}
	if err := sc.Err(); err != nil && r.Context().Err() == nil {
		em.emit(errorLine("", fmt.Errorf("reading delta stream: %v", err)))
	}
	em.start() // an empty input still answers 200 with an empty stream
}
