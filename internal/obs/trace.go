// Request-scoped distributed tracing: hierarchical spans with
// deterministic IDs, carried through context.Context, interoperable
// with W3C traceparent at HTTP boundaries.
//
// Traces complement the Recorder's flat phase spans: a Recorder span is
// an aggregate timing bucket, a TraceSpan belongs to one request (or
// one CLI run) and knows its parent, so a single /v1/analyze request
// can be reconstructed as a tree — server handler → file analysis →
// per-procedure phases → PPS waves → cache lookups.
//
// Determinism: trace IDs are either ingested from the caller's
// traceparent header or derived by hashing stable content
// (DeriveTraceID), and span IDs are a per-trace sequence counter — no
// RNG anywhere, so replaying the same input through the same build
// yields the same tree shape and the same IDs (only wall-clock offsets
// differ).
//
// Everything is nil-safe the same way the Recorder is: StartSpan on a
// context without a trace returns a nil *ActiveSpan whose methods are
// no-ops, so library code traces unconditionally and pays one
// context.Value lookup when tracing is off.
package obs

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is an 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID decodes a 32-hex-digit trace ID; ok is false for
// malformed or all-zero input.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// ParseSpanID decodes a 16-hex-digit span ID; ok is false for malformed
// or all-zero input.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// DeriveTraceID builds a deterministic trace ID by hashing the given
// parts (length-prefixed, so ("ab","c") and ("a","bc") differ). The
// same inputs always produce the same ID — the property that lets a
// CLI rerun or a test look up "the" trace of a file without plumbing
// IDs around.
func DeriveTraceID(parts ...string) TraceID {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	var id TraceID
	copy(id[:], h.Sum(nil))
	if id.IsZero() {
		id[15] = 1 // all-zero is invalid per W3C; astronomically unlikely
	}
	return id
}

// ---------------------------------------------------------------- traceparent

// ParseTraceparent parses a W3C traceparent header
// ("00-<trace-id>-<parent-id>-<flags>"). ok is false for malformed
// headers, unknown versions, or all-zero IDs.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if h[0] != '0' || h[1] != '0' {
		return TraceID{}, SpanID{}, false // only version 00 is understood
	}
	if len(h) != 55 {
		return TraceID{}, SpanID{}, false // version 00 has no trailing fields
	}
	tid, ok := ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	sid, ok := ParseSpanID(h[36:52])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set.
func FormatTraceparent(tid TraceID, sid SpanID) string {
	return "00-" + tid.String() + "-" + sid.String() + "-01"
}

// ---------------------------------------------------------------- trace

// TraceSpan is one completed span of a trace — the serializable form
// flight-recorder digests, Metrics.Trace, and the JSONL trace file
// carry.
type TraceSpan struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span's ID; empty for a root span (or a span
	// whose parent lives in the remote caller).
	Parent string        `json:"parent_id,omitempty"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	// Attrs carries small structured annotations (wave sizes, file
	// names, hit/miss outcomes). Values are strings so the JSON form is
	// stable.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// DefaultTraceSpans caps the spans one trace retains; later spans are
// counted as dropped rather than growing without bound (a pathological
// input can run thousands of PPS waves).
const DefaultTraceSpans = 4096

// Trace collects the spans of one request or run. Safe for concurrent
// use; span IDs are a sequence counter so they are deterministic given
// a deterministic span creation order.
type Trace struct {
	id   TraceID
	t0   time.Time
	next atomic.Uint64

	mu      sync.Mutex
	spans   []TraceSpan
	max     int
	dropped int64
}

// NewTrace creates an empty trace with the given ID, retaining at most
// DefaultTraceSpans spans.
func NewTrace(id TraceID) *Trace {
	return &Trace{id: id, t0: time.Now(), max: DefaultTraceSpans}
}

// ID returns the trace's identifier.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Dropped returns how many completed spans were discarded because the
// trace hit its span cap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the completed spans ordered by start offset
// (ties broken by span ID, which encodes creation order).
func (t *Trace) Spans() []TraceSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]TraceSpan(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// newSpanID hands out the next sequential span ID (1, 2, 3, ...).
func (t *Trace) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.next.Add(1))
	return id
}

// record appends a completed span, honoring the span cap.
func (t *Trace) record(sp TraceSpan) {
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
	} else {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// ---------------------------------------------------------------- context

type traceCtxKey struct{}
type spanCtxKey struct{}

// ContextWithTrace returns a context carrying the trace; child spans
// started from it attach to the trace. A nil ctx is treated as
// context.Background().
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// ContextWithParentSpan marks sid as the parent for the next StartSpan.
// Used at the HTTP boundary to parent the server's root span under the
// remote caller's span from traceparent.
func ContextWithParentSpan(ctx context.Context, sid SpanID) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, sid)
}

// CurrentSpanID returns the span ID the context is inside of, if any.
func CurrentSpanID(ctx context.Context) (SpanID, bool) {
	if ctx == nil {
		return SpanID{}, false
	}
	sid, ok := ctx.Value(spanCtxKey{}).(SpanID)
	return sid, ok
}

// Detach returns a fresh context (no deadline, no cancellation) that
// still carries ctx's trace and current span. Handlers that must
// outlive the request context (uafserve's singleflight leaders) use
// this so their analysis spans stay in the request's trace.
func Detach(ctx context.Context) context.Context {
	out := context.Background()
	if tr := TraceFrom(ctx); tr != nil {
		out = ContextWithTrace(out, tr)
	}
	if sid, ok := CurrentSpanID(ctx); ok {
		out = ContextWithParentSpan(out, sid)
	}
	return out
}

// ActiveSpan is an in-flight span. All methods are nil-safe so callers
// can trace unconditionally:
//
//	ctx, sp := obs.StartSpan(ctx, "parse")
//	defer sp.End()
type ActiveSpan struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration

	mu    sync.Mutex
	attrs map[string]string
	done  bool
}

// StartSpan opens a span named name if ctx carries a trace. The
// returned context parents subsequent StartSpan calls under the new
// span. Without a trace it returns (ctx, nil) — and a nil *ActiveSpan's
// methods are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := &ActiveSpan{
		tr:    tr,
		id:    tr.newSpanID(),
		name:  name,
		start: time.Since(tr.t0),
	}
	if parent, ok := CurrentSpanID(ctx); ok {
		sp.parent = parent
	}
	return context.WithValue(ctx, spanCtxKey{}, sp.id), sp
}

// SpanID returns the span's ID (zero for a nil span).
func (sp *ActiveSpan) SpanID() SpanID {
	if sp == nil {
		return SpanID{}
	}
	return sp.id
}

// SetAttr attaches a string annotation to the span.
func (sp *ActiveSpan) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]string, 4)
	}
	sp.attrs[key] = value
	sp.mu.Unlock()
}

// SetAttrInt attaches an integer annotation to the span.
func (sp *ActiveSpan) SetAttrInt(key string, value int64) {
	if sp == nil {
		return
	}
	sp.SetAttr(key, strconv.FormatInt(value, 10))
}

// End completes the span and records it on its trace. Calling End more
// than once (or on a nil span) is a no-op.
func (sp *ActiveSpan) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.done {
		sp.mu.Unlock()
		return
	}
	sp.done = true
	attrs := sp.attrs
	sp.mu.Unlock()

	out := TraceSpan{
		TraceID: sp.tr.id.String(),
		SpanID:  sp.id.String(),
		Name:    sp.name,
		Start:   sp.start,
		Dur:     time.Since(sp.tr.t0) - sp.start,
		Attrs:   attrs,
	}
	if !sp.parent.IsZero() {
		out.Parent = sp.parent.String()
	}
	sp.tr.record(out)
}

// StartPhase opens a Recorder span and a trace span with the same name
// and returns a single closer for both — the one-liner the pipeline's
// phase boundaries use so flat aggregates and the request tree stay in
// sync. Either side may be absent (nil Recorder, traceless ctx).
func StartPhase(ctx context.Context, r *Recorder, name string) (context.Context, func()) {
	endSpan := r.Span(name)
	ctx, sp := StartSpan(ctx, name)
	if sp == nil {
		return ctx, endSpan
	}
	return ctx, func() {
		sp.End()
		endSpan()
	}
}
