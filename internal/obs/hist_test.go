package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if upper := HistBucketUpper(c.bucket); c.v > upper {
			t.Errorf("value %d above its bucket %d upper bound %d", c.v, c.bucket, upper)
		}
	}
	// Negative observations clamp to the zero bucket rather than
	// corrupting the layout.
	var h Histogram
	h.Observe(-5)
	if h.Buckets[0] != 1 || h.Sum != 0 {
		t.Errorf("negative observe should clamp to 0: %+v", h)
	}
}

func TestHistMergeAssociativeCommutative(t *testing.T) {
	mk := func(vals ...int64) Histogram {
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	a := mk(1, 5, 900, 0)
	b := mk(2, 2, 1<<40)
	c := mk(7)

	ab := a
	ab.Merge(b)
	abc1 := ab
	abc1.Merge(c)

	bc := b
	bc.Merge(c)
	abc2 := a
	abc2.Merge(bc)

	ba := b
	ba.Merge(a)
	abc3 := c
	abc3.Merge(ba)

	if !reflect.DeepEqual(abc1, abc2) || !reflect.DeepEqual(abc1, abc3) {
		t.Errorf("merge not associative/commutative:\n%+v\n%+v\n%+v", abc1, abc2, abc3)
	}
	if abc1.Count != 8 {
		t.Errorf("merged count = %d, want 8", abc1.Count)
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 3, 900, 1 << 50} {
		h.Observe(v)
	}
	b1, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, back) {
		t.Fatalf("round trip changed histogram: %+v -> %+v", h, back)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-marshal not byte-identical: %s vs %s", b1, b2)
	}

	var empty Histogram
	be, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	var emptyBack Histogram
	if err := json.Unmarshal(be, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if !emptyBack.Empty() {
		t.Errorf("empty histogram round trip: %+v", emptyBack)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p50 := h.Quantile(0.5)
	// Log-bucket interpolation is coarse; the median of 1..1000 must
	// land within its bucket's decade.
	if p50 < 256 || p50 > 1023 {
		t.Errorf("p50 = %v, want within [256,1023]", p50)
	}
	if p0, p100 := h.Quantile(0), h.Quantile(1); p0 > p100 {
		t.Errorf("quantiles not monotone: p0=%v p100=%v", p0, p100)
	}
}

func TestHistKeySplit(t *testing.T) {
	key := HistKey(HistRequestNS, "route", "/v1/analyze")
	fam, labels := SplitHistKey(key)
	if fam != HistRequestNS {
		t.Errorf("family = %q", fam)
	}
	if len(labels) != 1 || labels[0] != [2]string{"route", "/v1/analyze"} {
		t.Errorf("labels = %v", labels)
	}
	if fam, labels := SplitHistKey("bare"); fam != "bare" || labels != nil {
		t.Errorf("bare key split = %q %v", fam, labels)
	}
}

func TestHistNondeterministic(t *testing.T) {
	for key, want := range map[string]bool{
		HistPhaseNS: true,
		HistKey(HistRequestNS, "route", "/v1/analyze"): true,
		HistCacheLookupNS: true,
		HistWaveSize:      false,
		"custom.count":    false,
	} {
		if got := HistNondeterministic(key); got != want {
			t.Errorf("HistNondeterministic(%q) = %v, want %v", key, got, want)
		}
	}
}

func TestRecorderObserveAndMergeSnapshot(t *testing.T) {
	r := New()
	r.Observe(HistWaveSize, 3)
	r.Observe(HistWaveSize, 9)
	var h Histogram
	h.Observe(5)
	r.ObserveHist(HistWaveSize, h)
	r.ObserveHist(HistWaveSize, Histogram{}) // no-op

	m := r.Snapshot()
	got := m.Hist(HistWaveSize)
	if got.Count != 3 || got.Sum != 17 {
		t.Errorf("snapshot hist = %+v", got)
	}

	var other Metrics
	other.Merge(m)
	other.Merge(m)
	if merged := other.Hist(HistWaveSize); merged.Count != 6 || merged.Sum != 34 {
		t.Errorf("merged hist = %+v", merged)
	}
	if names := m.HistNames(); len(names) != 1 || names[0] != HistWaveSize {
		t.Errorf("HistNames = %v", names)
	}
}
