package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	end := r.Span(PhaseParse)
	end()
	r.Add(CtrCCFGNodes, 5)
	r.Max(GaugePeakFrontier, 9)
	if m := r.Snapshot(); len(m.Spans) != 0 || len(m.Counters) != 0 || len(m.Gauges) != 0 {
		t.Fatalf("nil recorder produced data: %+v", m)
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("nil flush: %v", err)
	}
}

func TestRecorderCountersGaugesSpans(t *testing.T) {
	r := New()
	end := r.Span(PhaseParse)
	end()
	r.Add(CtrStatesCreated, 3)
	r.Add(CtrStatesCreated, 4)
	r.Add(CtrStatesMerged, 0) // zero deltas are dropped
	r.Max(GaugePeakFrontier, 2)
	r.Max(GaugePeakFrontier, 7)
	r.Max(GaugePeakFrontier, 5)

	m := r.Snapshot()
	if got := m.Counter(CtrStatesCreated); got != 7 {
		t.Errorf("states_created = %d, want 7", got)
	}
	if _, ok := m.Counters[CtrStatesMerged]; ok {
		t.Errorf("zero-delta counter materialized")
	}
	if got := m.Gauge(GaugePeakFrontier); got != 7 {
		t.Errorf("peak_frontier = %d, want 7", got)
	}
	if len(m.Spans) != 1 || m.Spans[0].Name != PhaseParse {
		t.Errorf("spans = %+v", m.Spans)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	r := New()
	r.Add(CtrWarnings, 1)
	m := r.Snapshot()
	m.Counters[CtrWarnings] = 99
	if got := r.Snapshot().Counter(CtrWarnings); got != 1 {
		t.Fatalf("snapshot aliases recorder state: %d", got)
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				end := r.Span(PhaseExplore)
				r.Add(CtrStatesProcessed, 1)
				r.Max(GaugePeakFrontier, int64(j))
				end()
			}
		}()
	}
	wg.Wait()
	m := r.Snapshot()
	if got := m.Counter(CtrStatesProcessed); got != 800 {
		t.Errorf("states_processed = %d, want 800", got)
	}
	if len(m.Spans) != 800 {
		t.Errorf("spans = %d, want 800", len(m.Spans))
	}
}

func TestMetricsMerge(t *testing.T) {
	var agg Metrics
	agg.Merge(Metrics{
		Counters: map[string]int64{CtrWarnings: 2},
		Gauges:   map[string]int64{GaugePeakFrontier: 5},
		Spans:    []Span{{Name: PhaseParse, Dur: time.Millisecond}},
	})
	agg.Merge(Metrics{
		Counters: map[string]int64{CtrWarnings: 3},
		Gauges:   map[string]int64{GaugePeakFrontier: 4},
		Spans:    []Span{{Name: PhaseParse, Dur: 2 * time.Millisecond}},
	})
	if agg.Counter(CtrWarnings) != 5 {
		t.Errorf("merged counter = %d, want 5", agg.Counter(CtrWarnings))
	}
	if agg.Gauge(GaugePeakFrontier) != 5 {
		t.Errorf("merged gauge = %d, want 5 (max)", agg.Gauge(GaugePeakFrontier))
	}
	if agg.PhaseTotal(PhaseParse) != 3*time.Millisecond {
		t.Errorf("phase total = %v", agg.PhaseTotal(PhaseParse))
	}
}

func sampleMetrics() Metrics {
	return Metrics{
		Spans: []Span{
			{Name: PhaseParse, Start: 0, Dur: 120 * time.Microsecond},
			{Name: PhaseExplore, Start: 200 * time.Microsecond, Dur: time.Millisecond},
			{Name: PhaseExplore, Start: 2 * time.Millisecond, Dur: time.Millisecond},
		},
		Counters: map[string]int64{CtrStatesCreated: 11, CtrCCFGNodes: 12},
		Gauges:   map[string]int64{GaugePeakFrontier: 4},
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	if err := (TextSink{W: &buf}).Emit(sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"phase timings:", "parse", "pps-explore", "(2 spans)",
		"counters:", "ccfg.nodes", "pps.states_created",
		"gauges:", "pps.peak_frontier",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Counters render sorted: ccfg.nodes before pps.states_created.
	if strings.Index(out, "ccfg.nodes") > strings.Index(out, "pps.states_created") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	if err := (JSONLSink{W: &buf}).Emit(sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // 3 spans + 2 counters + 1 gauge
		t.Fatalf("lines = %d, want 6:\n%s", len(lines), buf.String())
	}
	types := map[string]int{}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", ln, err)
		}
		types[rec["type"].(string)]++
	}
	if types["span"] != 3 || types["counter"] != 2 || types["gauge"] != 1 {
		t.Errorf("record types = %v", types)
	}
}

func TestPromSink(t *testing.T) {
	var buf bytes.Buffer
	if err := (PromSink{W: &buf}).Emit(sampleMetrics()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`uafcheck_phase_seconds{phase="parse"}`,
		"# TYPE uafcheck_pps_states_created counter",
		"uafcheck_pps_states_created 11",
		"uafcheck_pps_peak_frontier 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanTimesAreSane(t *testing.T) {
	r := New()
	end := r.Span(PhaseOracle)
	time.Sleep(2 * time.Millisecond)
	end()
	m := r.Snapshot()
	if len(m.Spans) != 1 || m.Spans[0].Dur < time.Millisecond {
		t.Fatalf("span duration too small: %+v", m.Spans)
	}
	if m.PhaseTotal(PhaseOracle) != m.Spans[0].Dur {
		t.Fatalf("PhaseTotal mismatch")
	}
}
