package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidatePromText is a dependency-free Prometheus text exposition
// format linter: it parses every line of data and checks the structural
// rules a real scraper relies on. Used by the /metrics lint tests (and
// available to operators via tests only — it is not on any serving
// path).
//
// Checked rules:
//   - every sample line is `name{labels} value` or `name value` with a
//     legal metric name, legal label names, correctly quoted/escaped
//     label values, and a parseable float value;
//   - `# TYPE` lines are well-formed, name each metric at most once,
//     and precede that metric's samples;
//   - samples of one metric name are contiguous (no interleaving);
//   - histogram families expose `_bucket`, `_sum` and `_count` series,
//     bucket counts are cumulative (non-decreasing in `le` order), an
//     `le="+Inf"` bucket exists, and it equals the `_count` value.
func ValidatePromText(data []byte) error {
	type histSeries struct {
		buckets map[string][]histBucketSample // label-set key -> buckets
		count   map[string]float64
		hasSum  map[string]bool
	}
	typed := make(map[string]string) // metric name -> TYPE
	seen := make(map[string]bool)    // metric names with samples
	hists := make(map[string]*histSeries)
	lastName := ""
	closed := make(map[string]bool) // sample blocks already finished

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !validPromName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if seen[name] {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				typed[name] = kind
				if kind == "histogram" {
					hists[name] = &histSeries{
						buckets: make(map[string][]histBucketSample),
						count:   make(map[string]float64),
						hasSum:  make(map[string]bool),
					}
				}
			}
			continue // HELP and other comments are free-form
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		family, suffix := "", ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if _, ok := hists[trimmed]; ok {
					family, suffix = trimmed, sfx
					base = trimmed
					break
				}
			}
		}
		if base != lastName {
			if closed[base] {
				return fmt.Errorf("line %d: samples of %q are not contiguous", lineNo, base)
			}
			if lastName != "" {
				closed[lastName] = true
			}
			lastName = base
		}
		seen[base] = true

		if family != "" {
			hs := hists[family]
			key := labelSetKey(labels, "le")
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket of %q without le label", lineNo, family)
				}
				bound, err := parseLe(le)
				if err != nil {
					return fmt.Errorf("line %d: %v", lineNo, err)
				}
				hs.buckets[key] = append(hs.buckets[key], histBucketSample{bound, value})
			case "_sum":
				hs.hasSum[key] = true
			case "_count":
				hs.count[key] = value
			}
			continue
		}
		if _, ok := labels["le"]; ok && typed[base] != "histogram" {
			return fmt.Errorf("line %d: le label on non-histogram metric %q", lineNo, base)
		}
		_ = value
	}

	for family, hs := range hists {
		if !seen[family] {
			return fmt.Errorf("histogram %q declared but has no samples", family)
		}
		var keys []string
		for k := range hs.buckets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			buckets := hs.buckets[key]
			prev := math.Inf(-1)
			prevCum := -1.0
			sawInf := false
			for _, bs := range buckets {
				if bs.bound <= prev {
					return fmt.Errorf("histogram %q{%s}: le bounds not increasing", family, key)
				}
				if bs.cum < prevCum {
					return fmt.Errorf("histogram %q{%s}: bucket counts not cumulative", family, key)
				}
				prev, prevCum = bs.bound, bs.cum
				if math.IsInf(bs.bound, 1) {
					sawInf = true
				}
			}
			if !sawInf {
				return fmt.Errorf("histogram %q{%s}: missing le=\"+Inf\" bucket", family, key)
			}
			count, ok := hs.count[key]
			if !ok {
				return fmt.Errorf("histogram %q{%s}: missing _count series", family, key)
			}
			if !hs.hasSum[key] {
				return fmt.Errorf("histogram %q{%s}: missing _sum series", family, key)
			}
			if last := buckets[len(buckets)-1].cum; last != count {
				return fmt.Errorf("histogram %q{%s}: +Inf bucket %g != count %g", family, key, last, count)
			}
		}
	}
	return nil
}

type histBucketSample struct {
	bound float64
	cum   float64
}

// parseLe parses an le bound, accepting "+Inf".
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// labelSetKey canonicalizes a label map (minus the excluded label) for
// grouping histogram series.
func labelSetKey(labels map[string]string, exclude string) string {
	var keys []string
	for k := range labels {
		if k != exclude {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}

// validPromName reports whether s is a legal metric name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':' ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validPromLabelName reports whether s is a legal label name.
func validPromLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses one sample line into name, labels and value.
func parsePromSample(line string) (string, map[string]string, float64, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:i]
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels := make(map[string]string)
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validPromLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q in %q", lname, line)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in %q", rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q in %q", lname, line)
			}
			labels[lname] = val.String()
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q in %q", fields[0], line)
	}
	return name, labels, v, nil
}
