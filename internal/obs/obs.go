// Package obs is the pipeline's telemetry layer: span-based phase
// tracing, typed counters and gauges, and pluggable sinks.
//
// Every stage of the analysis pipeline (parse, resolve, lower, CCFG
// build, prune, PPS exploration, dynamic oracle) opens a Span on a
// Recorder and bumps counters for the state-space work it performs. The
// Recorder is nil-safe: a nil *Recorder turns every call into a no-op,
// so library code records unconditionally and pays nothing when
// telemetry is off. Counters that live on hot loops (one bump per PPS
// transition) are accumulated in plain integers by the caller and
// flushed into the Recorder once per phase, so the exploration loop
// itself never touches a map or a mutex.
//
// A Snapshot of a Recorder is a Metrics value — a plain, serializable
// struct — which the sinks render: TextSink for humans, JSONLSink as a
// JSON-lines trace file, PromSink in Prometheus text exposition format.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Phase names used by the pipeline spans.
const (
	PhaseParse   = "parse"
	PhaseResolve = "resolve"
	PhaseLower   = "lower"
	PhaseCCFG    = "ccfg-build"
	PhasePrune   = "prune"
	PhaseExplore = "pps-explore"
	PhaseOracle  = "oracle"
	PhaseBatch   = "batch"
)

// Counter names. The dotted names are stable identifiers; the Prometheus
// sink rewrites dots to underscores.
const (
	// CCFG construction.
	CtrCCFGNodes         = "ccfg.nodes"
	CtrCCFGTasks         = "ccfg.tasks"
	CtrCCFGSyncVars      = "ccfg.sync_vars"
	CtrCCFGAtomicOps     = "ccfg.atomic_ops"
	CtrTrackedAccesses   = "ccfg.tracked_accesses"
	CtrProtectedAccesses = "ccfg.protected_accesses"

	// Pruning rules A-D (§III-A).
	CtrPrunedTasks = "prune.tasks"
	CtrPruneRuleA  = "prune.rule_a"
	CtrPruneRuleB  = "prune.rule_b"
	CtrPruneRuleC  = "prune.rule_c"
	CtrPruneRuleD  = "prune.rule_d"

	// PPS exploration (§III-B/C).
	CtrStatesCreated   = "pps.states_created"
	CtrStatesMerged    = "pps.states_merged"
	CtrStatesForked    = "pps.states_forked"
	CtrStatesProcessed = "pps.states_processed"
	CtrSinkStates      = "pps.sinks"
	CtrDeadlockStates  = "pps.deadlocks"
	// CtrPPSWaves counts bulk-synchronous frontier rounds of the wave
	// explorer. Deliberately no worker-count gauge: every recorded pps.*
	// value is independent of Options.Parallelism, so metrics stay
	// byte-comparable across machines and worker counts.
	CtrPPSWaves = "pps.waves"

	// Sync transitions by rule kind (paper rules 1-3 + atomics extension).
	CtrTransSingleRead = "pps.trans_single_read"
	CtrTransRead       = "pps.trans_read"
	CtrTransWrite      = "pps.trans_write"
	CtrTransAtomicFill = "pps.trans_atomic_fill"
	CtrTransAtomicWait = "pps.trans_atomic_wait"

	// Whole-pass accounting.
	CtrProcsAnalyzed = "analysis.procs"
	CtrWarnings      = "analysis.warnings"

	// Dynamic oracle.
	CtrOracleSchedules = "oracle.schedules"
	CtrOracleSteps     = "oracle.steps"
	CtrOracleDeadlocks = "oracle.deadlocks"
	CtrOracleUAFSites  = "oracle.uaf_sites"

	// Batch driver (internal/batch): per-file outcome classes and
	// recovery work.
	CtrBatchFiles    = "batch.files"
	CtrBatchOK       = "batch.ok"
	CtrBatchDegraded = "batch.degraded"
	CtrBatchCrashed  = "batch.crashed"
	CtrBatchTimedOut = "batch.timed_out"
	CtrBatchErrors   = "batch.errors"
	CtrBatchRetries  = "batch.retries"
	CtrBatchWarnings = "batch.warnings"

	// Content-addressed report cache (internal/cache): consult outcomes
	// and store traffic, recorded by the public Analyze entry points.
	CtrCacheHits     = "cache.hits"
	CtrCacheMisses   = "cache.misses"
	CtrCacheStores   = "cache.stores"
	CtrCacheDiskHits = "cache.disk_hits"

	// Analysis-as-a-service daemon (internal/server): request traffic,
	// admission-control rejections, and singleflight deduplication.
	CtrServerRequests   = "server.requests"
	CtrServerAnalyses   = "server.analyses"
	CtrServerRejects    = "server.rejects"
	CtrServerDedupHits  = "server.dedup_hits"
	CtrServerBatchFiles = "server.batch_files"
	// CtrServerDeprecated counts requests arriving on unversioned route
	// aliases (pre-/v1/ paths kept for compatibility); a deprecation
	// signal for operators before the aliases are removed.
	CtrServerDeprecated = "server.deprecated_requests"
	// CtrServerDeltaFiles counts files analyzed through /v1/delta.
	CtrServerDeltaFiles = "server.delta_files"
	// CtrServerRepairs counts repair attempts served by /v1/repair
	// (leaders only; refusals included — the attempt is the unit).
	CtrServerRepairs = "server.repairs"

	// Incremental per-procedure engine (internal/analysis incremental
	// mode): memoized analysis units served from the unit cache vs
	// recomputed from scratch.
	CtrUnitHits   = "incr.unit_hits"
	CtrUnitMisses = "incr.unit_misses"

	// Watch service (internal/watch) poll loop: polls performed, source
	// files whose content hash changed between polls, files that
	// disappeared between polls (warnings dropped), analyses the
	// watchdog abandoned as hung, and analyzer restarts it performed.
	CtrWatchPolls     = "watch.polls"
	CtrWatchChanged   = "watch.changed_files"
	CtrWatchDeleted   = "watch.deleted_files"
	CtrWatchAbandoned = "watch.abandoned"
	CtrWatchRestarts  = "watch.restarts"
)

// Gauge names.
const (
	GaugePeakFrontier = "pps.peak_frontier"
	// Live load gauges of the uafserve daemon: requests currently being
	// analyzed and requests waiting in the admission queue, sampled at
	// /metrics scrape time.
	GaugeServerInflight   = "server.inflight"
	GaugeServerQueueDepth = "server.queue_depth"
	// GaugeServerAnalyzerPool is the number of per-option-fingerprint
	// incremental Analyzers currently alive in the /v1/delta pool.
	GaugeServerAnalyzerPool = "server.analyzer_pool"
	// Disk-cache health gauges, sampled from cache stats at /metrics
	// scrape time: I/O failures, corrupt entries quarantined, and async
	// writes dropped on a full queue.
	GaugeCacheDiskErrors    = "cache.disk_errors"
	GaugeCacheQuarantined   = "cache.quarantined"
	GaugeCacheDroppedWrites = "cache.dropped_writes"
	// Watch-service watchdog gauges: supervision state (0 healthy,
	// 1 degraded, 2 wedged) and files currently tracked.
	GaugeWatchState = "watch.state"
	GaugeWatchFiles = "watch.files"
)

// Span is one timed phase execution. Start is the offset from the
// Recorder's creation, so spans order and nest naturally.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Metrics is a plain snapshot of a Recorder: what the sinks render and
// what the public API attaches to reports.
type Metrics struct {
	Spans    []Span           `json:"spans,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Hists holds fixed-bucket log2 histograms keyed by
	// "family|label=value,..." (see HistKey). Families ending in "_ns"
	// are wall-clock and nondeterministic; all others are
	// schedule-independent.
	Hists map[string]Histogram `json:"hists,omitempty"`
	// Trace is the span tree of the run when request tracing was on —
	// hierarchical TraceSpans, unlike the flat aggregate Spans above.
	Trace []TraceSpan `json:"trace,omitempty"`
}

// Counter returns the named counter, or 0.
func (m Metrics) Counter(name string) int64 { return m.Counters[name] }

// Gauge returns the named gauge, or 0.
func (m Metrics) Gauge(name string) int64 { return m.Gauges[name] }

// PhaseTotal sums the durations of every span with the given name.
func (m Metrics) PhaseTotal(name string) time.Duration {
	var d time.Duration
	for _, s := range m.Spans {
		if s.Name == name {
			d += s.Dur
		}
	}
	return d
}

// CounterNames returns the counter names in sorted order.
func (m Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the gauge names in sorted order.
func (m Metrics) GaugeNames() []string {
	names := make([]string, 0, len(m.Gauges))
	for n := range m.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// phaseAgg is one aggregated span line of FormatText.
type phaseAgg struct {
	name  string
	count int
	total time.Duration
	first time.Duration
}

// aggregateSpans folds spans by name, ordered by first start.
func (m Metrics) aggregateSpans() []phaseAgg {
	idx := make(map[string]int)
	var out []phaseAgg
	for _, s := range m.Spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, phaseAgg{name: s.Name, first: s.Start})
		}
		out[i].count++
		out[i].total += s.Dur
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].first < out[j].first })
	return out
}

// Merge folds other into m: spans and trace spans are concatenated,
// counters summed, gauges kept at their maximum, histograms summed
// bucket-wise. Counter, gauge and histogram merging is commutative and
// associative, so aggregate runs (corpus evaluation, the uafserve
// metrics aggregator) produce the same totals in any merge order.
func (m *Metrics) Merge(other Metrics) {
	m.Spans = append(m.Spans, other.Spans...)
	m.Trace = append(m.Trace, other.Trace...)
	for k, v := range other.Counters {
		if m.Counters == nil {
			m.Counters = make(map[string]int64)
		}
		m.Counters[k] += v
	}
	for k, v := range other.Gauges {
		if m.Gauges == nil {
			m.Gauges = make(map[string]int64)
		}
		if v > m.Gauges[k] {
			m.Gauges[k] = v
		}
	}
	for k, v := range other.Hists {
		if m.Hists == nil {
			m.Hists = make(map[string]Histogram)
		}
		h := m.Hists[k]
		h.Merge(v)
		m.Hists[k] = h
	}
}

// ---------------------------------------------------------------- recorder

// Recorder accumulates spans, counters and gauges. All methods are safe
// on a nil receiver (no-ops) and safe for concurrent use otherwise.
type Recorder struct {
	t0    time.Time
	sinks []Sink

	mu       sync.Mutex
	spans    []Span
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
	trace    []TraceSpan
}

// New creates a Recorder emitting to the given sinks on Flush.
func New(sinks ...Sink) *Recorder {
	return &Recorder{
		t0:       time.Now(),
		sinks:    sinks,
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// noopEnd is returned by Span on a nil Recorder so the caller's
// `defer end()` costs nothing and allocates nothing.
var noopEnd = func() {}

// Span opens a named phase span and returns its closer.
//
//	end := rec.Span(obs.PhaseParse)
//	defer end()
func (r *Recorder) Span(name string) (end func()) {
	if r == nil {
		return noopEnd
	}
	start := time.Since(r.t0)
	return func() {
		dur := time.Since(r.t0) - start
		r.mu.Lock()
		r.spans = append(r.spans, Span{Name: name, Start: start, Dur: dur})
		r.observeLocked(HistKey(HistPhaseNS, "phase", name), dur.Nanoseconds())
		r.mu.Unlock()
	}
}

// observeLocked records one histogram value; r.mu must be held.
func (r *Recorder) observeLocked(name string, v int64) {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.Observe(v)
}

// Observe records one value into the named histogram.
func (r *Recorder) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observeLocked(name, v)
	r.mu.Unlock()
}

// ObserveHist merges a locally accumulated histogram into the named
// histogram — the bulk form hot loops use: accumulate into a stack
// Histogram, merge once per phase, exactly like the flushed counters.
func (r *Recorder) ObserveHist(name string, h Histogram) {
	if r == nil || h.Empty() {
		return
	}
	r.mu.Lock()
	dst := r.hists[name]
	if dst == nil {
		dst = &Histogram{}
		r.hists[name] = dst
	}
	dst.Merge(h)
	r.mu.Unlock()
}

// Add bumps a counter by delta.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil || delta == 0 {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Max raises a gauge to v if v exceeds its current value.
func (r *Recorder) Max(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// SetTrace attaches a completed span tree to the recorder; Snapshot
// carries it as Metrics.Trace, so sinks (the JSONL trace file) and
// Report.Metrics pick it up without extra plumbing. The per-file
// analysis entry points call this when they own the run's trace.
func (r *Recorder) SetTrace(spans []TraceSpan) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace = spans
	r.mu.Unlock()
}

// Snapshot returns a deep copy of the current state.
func (r *Recorder) Snapshot() Metrics {
	if r == nil {
		return Metrics{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Metrics{
		Spans:    append([]Span(nil), r.spans...),
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
	}
	for k, v := range r.counters {
		m.Counters[k] = v
	}
	for k, v := range r.gauges {
		m.Gauges[k] = v
	}
	if len(r.hists) > 0 {
		m.Hists = make(map[string]Histogram, len(r.hists))
		for k, h := range r.hists {
			m.Hists[k] = *h
		}
	}
	m.Trace = append([]TraceSpan(nil), r.trace...)
	return m
}

// Flush emits a snapshot to every sink; the first error wins.
func (r *Recorder) Flush() error {
	if r == nil || len(r.sinks) == 0 {
		return nil
	}
	m := r.Snapshot()
	var first error
	for _, s := range r.sinks {
		if err := s.Emit(m); err != nil && first == nil {
			first = err
		}
	}
	return first
}
