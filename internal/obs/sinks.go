package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sink renders a Metrics snapshot somewhere.
type Sink interface {
	Emit(m Metrics) error
}

// ---------------------------------------------------------------- sync

// syncSink serializes Emit calls to a wrapped sink with a mutex.
type syncSink struct {
	mu   sync.Mutex
	sink Sink
}

// Synchronized wraps a sink so concurrent Emit calls serialize — the
// stock sinks write whole snapshots to one io.Writer and are not safe
// to share between goroutines bare. The batch driver wraps every sink
// it fans out to workers. Wrapping an already-synchronized sink returns
// it unchanged.
func Synchronized(s Sink) Sink {
	if s == nil {
		return nil
	}
	if _, ok := s.(*syncSink); ok {
		return s
	}
	return &syncSink{sink: s}
}

// Emit implements Sink, holding the mutex across the wrapped emit so
// interleaved snapshots can never corrupt each other's output lines.
func (s *syncSink) Emit(m Metrics) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Emit(m)
}

// ---------------------------------------------------------------- text

// TextSink renders a human-readable report: phase timings aggregated by
// name (in first-start order), then counters and gauges sorted by name.
type TextSink struct {
	W io.Writer
}

// Emit implements Sink.
func (s TextSink) Emit(m Metrics) error {
	_, err := io.WriteString(s.W, m.FormatText())
	return err
}

// FormatText renders the snapshot as the TextSink prints it.
func (m Metrics) FormatText() string {
	var b strings.Builder
	aggs := m.aggregateSpans()
	if len(aggs) > 0 {
		b.WriteString("phase timings:\n")
		for _, a := range aggs {
			count := ""
			if a.count > 1 {
				count = fmt.Sprintf("  (%d spans)", a.count)
			}
			fmt.Fprintf(&b, "  %-14s %12s%s\n", a.name, formatDur(a.total), count)
		}
	}
	if len(m.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, n := range m.CounterNames() {
			fmt.Fprintf(&b, "  %-28s %10d\n", n, m.Counters[n])
		}
	}
	if len(m.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, n := range m.GaugeNames() {
			fmt.Fprintf(&b, "  %-28s %10d\n", n, m.Gauges[n])
		}
	}
	if len(m.Hists) > 0 {
		b.WriteString("histograms:\n")
		for _, n := range m.HistNames() {
			h := m.Hists[n]
			fmt.Fprintf(&b, "  %-28s count=%d sum=%d p50=%.0f p90=%.0f p99=%.0f\n",
				n, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
		}
	}
	return b.String()
}

// formatDur trims a duration to a readable precision.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// ---------------------------------------------------------------- jsonl

// JSONLSink writes one JSON object per line: each span as
// {"type":"span",...}, then each counter and gauge. Lines from
// successive Emit calls append, making the output a trace file that
// accumulates across analyzed inputs.
type JSONLSink struct {
	W io.Writer
}

// jsonlRecord is the line schema of JSONLSink. Flat recorder spans are
// "span" lines; hierarchical request-tree spans are "trace_span" lines
// carrying their trace/span/parent IDs; histograms are "hist" lines
// with sparse [bucket, count] pairs.
type jsonlRecord struct {
	Type    string            `json:"type"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us,omitempty"`
	DurUS   int64             `json:"dur_us,omitempty"`
	Value   int64             `json:"value,omitempty"`
	TraceID string            `json:"trace_id,omitempty"`
	SpanID  string            `json:"span_id,omitempty"`
	Parent  string            `json:"parent_id,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Sum     int64             `json:"sum,omitempty"`
	Buckets [][2]int64        `json:"buckets,omitempty"`
}

// Emit implements Sink.
func (s JSONLSink) Emit(m Metrics) error {
	enc := json.NewEncoder(s.W)
	for _, sp := range m.Trace {
		rec := jsonlRecord{
			Type:    "trace_span",
			Name:    sp.Name,
			StartUS: sp.Start.Microseconds(),
			DurUS:   sp.Dur.Microseconds(),
			TraceID: sp.TraceID,
			SpanID:  sp.SpanID,
			Parent:  sp.Parent,
			Attrs:   sp.Attrs,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, sp := range m.Spans {
		rec := jsonlRecord{
			Type:    "span",
			Name:    sp.Name,
			StartUS: sp.Start.Microseconds(),
			DurUS:   sp.Dur.Microseconds(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, n := range m.CounterNames() {
		if err := enc.Encode(jsonlRecord{Type: "counter", Name: n, Value: m.Counters[n]}); err != nil {
			return err
		}
	}
	for _, n := range m.GaugeNames() {
		if err := enc.Encode(jsonlRecord{Type: "gauge", Name: n, Value: m.Gauges[n]}); err != nil {
			return err
		}
	}
	for _, n := range m.HistNames() {
		h := m.Hists[n]
		rec := jsonlRecord{Type: "hist", Name: n, Count: h.Count, Sum: h.Sum}
		for i, c := range h.Buckets {
			if c != 0 {
				rec.Buckets = append(rec.Buckets, [2]int64{int64(i), c})
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------- prom

// PromSink writes Prometheus text exposition format. Metric names are
// prefixed (default "uafcheck") and dots become underscores; phase
// durations are exported as <prefix>_phase_seconds{phase="..."}.
type PromSink struct {
	W io.Writer
	// Prefix defaults to "uafcheck".
	Prefix string
}

// Emit implements Sink.
func (s PromSink) Emit(m Metrics) error {
	prefix := s.Prefix
	if prefix == "" {
		prefix = "uafcheck"
	}
	var b strings.Builder
	aggs := m.aggregateSpans()
	if len(aggs) > 0 {
		fmt.Fprintf(&b, "# TYPE %s_phase_seconds gauge\n", prefix)
		for _, a := range aggs {
			fmt.Fprintf(&b, "%s_phase_seconds{phase=%q} %g\n", prefix, a.name, a.total.Seconds())
		}
	}
	for _, n := range m.CounterNames() {
		pn := promName(prefix, n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, m.Counters[n])
	}
	for _, n := range m.GaugeNames() {
		pn := promName(prefix, n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, m.Gauges[n])
	}
	writePromHists(&b, prefix, m)
	_, err := io.WriteString(s.W, b.String())
	return err
}

// writePromHists renders Metrics.Hists as Prometheus histogram
// families: keys sharing a family (the part before '|') become one
// metric name, their label suffixes become label sets, and the fixed
// log2 buckets become cumulative `le` series with exact power-of-two
// bounds (le="2^i - 1"). Output order is deterministic: families
// sorted, label sets sorted within a family.
func writePromHists(b *strings.Builder, prefix string, m Metrics) {
	if len(m.Hists) == 0 {
		return
	}
	byFamily := make(map[string][]string)
	var families []string
	for _, key := range m.HistNames() { // sorted, so per-family key order is sorted too
		family, _ := SplitHistKey(key)
		if _, ok := byFamily[family]; !ok {
			families = append(families, family)
		}
		byFamily[family] = append(byFamily[family], key)
	}
	sort.Strings(families)
	for _, family := range families {
		pn := promName(prefix, family)
		fmt.Fprintf(b, "# TYPE %s histogram\n", pn)
		for _, key := range byFamily[family] {
			h := m.Hists[key]
			_, labels := SplitHistKey(key)
			base := promLabelPrefix(labels)
			// Emit buckets up to the highest populated index; +Inf
			// carries the rest. Indexes >= 63 share the MaxInt64 bound,
			// so they fold into +Inf instead of duplicating an le.
			top := 0
			for i, c := range h.Buckets {
				if c != 0 {
					top = i
				}
			}
			if top > 62 {
				top = 62
			}
			var cum int64
			for i := 0; i <= top; i++ {
				cum += h.Buckets[i]
				fmt.Fprintf(b, "%s_bucket{%sle=\"%d\"} %d\n", pn, base, HistBucketUpper(i), cum)
			}
			fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", pn, base, h.Count)
			if len(labels) == 0 {
				fmt.Fprintf(b, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
			} else {
				lbl := strings.TrimSuffix(base, ",")
				fmt.Fprintf(b, "%s_sum{%s} %d\n%s_count{%s} %d\n", pn, lbl, h.Sum, pn, lbl, h.Count)
			}
		}
	}
}

// promLabelPrefix renders labels as `k1="v1",k2="v2",` (trailing comma
// so an `le` label can append), with values escaped per the text
// exposition format.
func promLabelPrefix(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, kv := range labels {
		b.WriteString(promLabelName(kv[0]))
		b.WriteString("=\"")
		b.WriteString(promEscape(kv[1]))
		b.WriteString("\",")
	}
	return b.String()
}

// promLabelName sanitizes a label name to [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a label value per the Prometheus text format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func promName(prefix, name string) string {
	return prefix + "_" + strings.ReplaceAll(name, ".", "_")
}
