package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Sink renders a Metrics snapshot somewhere.
type Sink interface {
	Emit(m Metrics) error
}

// ---------------------------------------------------------------- sync

// syncSink serializes Emit calls to a wrapped sink with a mutex.
type syncSink struct {
	mu   sync.Mutex
	sink Sink
}

// Synchronized wraps a sink so concurrent Emit calls serialize — the
// stock sinks write whole snapshots to one io.Writer and are not safe
// to share between goroutines bare. The batch driver wraps every sink
// it fans out to workers. Wrapping an already-synchronized sink returns
// it unchanged.
func Synchronized(s Sink) Sink {
	if s == nil {
		return nil
	}
	if _, ok := s.(*syncSink); ok {
		return s
	}
	return &syncSink{sink: s}
}

// Emit implements Sink, holding the mutex across the wrapped emit so
// interleaved snapshots can never corrupt each other's output lines.
func (s *syncSink) Emit(m Metrics) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Emit(m)
}

// ---------------------------------------------------------------- text

// TextSink renders a human-readable report: phase timings aggregated by
// name (in first-start order), then counters and gauges sorted by name.
type TextSink struct {
	W io.Writer
}

// Emit implements Sink.
func (s TextSink) Emit(m Metrics) error {
	_, err := io.WriteString(s.W, m.FormatText())
	return err
}

// FormatText renders the snapshot as the TextSink prints it.
func (m Metrics) FormatText() string {
	var b strings.Builder
	aggs := m.aggregateSpans()
	if len(aggs) > 0 {
		b.WriteString("phase timings:\n")
		for _, a := range aggs {
			count := ""
			if a.count > 1 {
				count = fmt.Sprintf("  (%d spans)", a.count)
			}
			fmt.Fprintf(&b, "  %-14s %12s%s\n", a.name, formatDur(a.total), count)
		}
	}
	if len(m.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, n := range m.CounterNames() {
			fmt.Fprintf(&b, "  %-28s %10d\n", n, m.Counters[n])
		}
	}
	if len(m.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, n := range m.GaugeNames() {
			fmt.Fprintf(&b, "  %-28s %10d\n", n, m.Gauges[n])
		}
	}
	return b.String()
}

// formatDur trims a duration to a readable precision.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// ---------------------------------------------------------------- jsonl

// JSONLSink writes one JSON object per line: each span as
// {"type":"span",...}, then each counter and gauge. Lines from
// successive Emit calls append, making the output a trace file that
// accumulates across analyzed inputs.
type JSONLSink struct {
	W io.Writer
}

// jsonlRecord is the line schema of JSONLSink.
type jsonlRecord struct {
	Type    string `json:"type"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us,omitempty"`
	DurUS   int64  `json:"dur_us,omitempty"`
	Value   int64  `json:"value,omitempty"`
}

// Emit implements Sink.
func (s JSONLSink) Emit(m Metrics) error {
	enc := json.NewEncoder(s.W)
	for _, sp := range m.Spans {
		rec := jsonlRecord{
			Type:    "span",
			Name:    sp.Name,
			StartUS: sp.Start.Microseconds(),
			DurUS:   sp.Dur.Microseconds(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, n := range m.CounterNames() {
		if err := enc.Encode(jsonlRecord{Type: "counter", Name: n, Value: m.Counters[n]}); err != nil {
			return err
		}
	}
	for _, n := range m.GaugeNames() {
		if err := enc.Encode(jsonlRecord{Type: "gauge", Name: n, Value: m.Gauges[n]}); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------- prom

// PromSink writes Prometheus text exposition format. Metric names are
// prefixed (default "uafcheck") and dots become underscores; phase
// durations are exported as <prefix>_phase_seconds{phase="..."}.
type PromSink struct {
	W io.Writer
	// Prefix defaults to "uafcheck".
	Prefix string
}

// Emit implements Sink.
func (s PromSink) Emit(m Metrics) error {
	prefix := s.Prefix
	if prefix == "" {
		prefix = "uafcheck"
	}
	var b strings.Builder
	aggs := m.aggregateSpans()
	if len(aggs) > 0 {
		fmt.Fprintf(&b, "# TYPE %s_phase_seconds gauge\n", prefix)
		for _, a := range aggs {
			fmt.Fprintf(&b, "%s_phase_seconds{phase=%q} %g\n", prefix, a.name, a.total.Seconds())
		}
	}
	for _, n := range m.CounterNames() {
		pn := promName(prefix, n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, m.Counters[n])
	}
	for _, n := range m.GaugeNames() {
		pn := promName(prefix, n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, m.Gauges[n])
	}
	_, err := io.WriteString(s.W, b.String())
	return err
}

func promName(prefix, name string) string {
	return prefix + "_" + strings.ReplaceAll(name, ".", "_")
}
