package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// overlapSink trips if two Emit calls ever run concurrently — the
// condition Synchronized exists to prevent.
type overlapSink struct {
	inside  atomic.Int32
	overlap atomic.Bool
	emits   atomic.Int32
}

func (s *overlapSink) Emit(m Metrics) error {
	if s.inside.Add(1) > 1 {
		s.overlap.Store(true)
	}
	s.emits.Add(1)
	s.inside.Add(-1)
	return nil
}

func TestSynchronizedSerializesEmits(t *testing.T) {
	raw := &overlapSink{}
	s := Synchronized(raw)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := New(s)
			for i := 0; i < 200; i++ {
				rec.Add(CtrWarnings, 1)
				if err := rec.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if raw.overlap.Load() {
		t.Error("Emit calls overlapped through Synchronized")
	}
	if got := raw.emits.Load(); got != 8*200 {
		t.Errorf("emits = %d, want %d", got, 8*200)
	}
}

func TestSynchronizedIdempotentAndNilSafe(t *testing.T) {
	if Synchronized(nil) != nil {
		t.Error("Synchronized(nil) != nil")
	}
	s := Synchronized(&overlapSink{})
	if Synchronized(s) != s {
		t.Error("double-wrapping allocated a second mutex layer")
	}
}

// TestSynchronizedTextSinkOutputIntact writes concurrent snapshots into
// one buffer and checks no line was torn mid-record.
func TestSynchronizedTextSinkOutputIntact(t *testing.T) {
	// bytes.Buffer is not goroutine-safe on its own; the Synchronized
	// wrapper is the only thing keeping these writers apart.
	var buf bytes.Buffer
	s := Synchronized(TextSink{W: &buf})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := New(s)
			rec.Add(CtrStatesCreated, 42)
			for i := 0; i < 100; i++ {
				rec.Flush() //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || line == "counters:" {
			continue
		}
		if !strings.Contains(line, CtrStatesCreated) {
			t.Fatalf("torn or foreign line in output: %q", line)
		}
	}
}
