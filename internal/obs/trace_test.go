package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestDeriveTraceIDDeterministic(t *testing.T) {
	a := DeriveTraceID("file.chpl", "proc p() {}")
	b := DeriveTraceID("file.chpl", "proc p() {}")
	if a != b {
		t.Errorf("same parts gave different IDs: %s vs %s", a, b)
	}
	if a.IsZero() {
		t.Error("derived ID is zero")
	}
	// Length-prefixing means part boundaries matter: ("ab","c") and
	// ("a","bc") must not collide.
	if DeriveTraceID("ab", "c") == DeriveTraceID("a", "bc") {
		t.Error("length prefixing failed: shifted parts collide")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := DeriveTraceID("test")
	var sid SpanID
	copy(sid[:], []byte{1, 2, 3, 4, 5, 6, 7, 8})
	h := FormatTraceparent(tid, sid)
	if len(h) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(h), h)
	}
	gtid, gsid, ok := ParseTraceparent(h)
	if !ok || gtid != tid || gsid != sid {
		t.Fatalf("round trip failed: %v %v %v from %q", gtid, gsid, ok, h)
	}
	for _, bad := range []string{
		"",
		"xx-00000000000000000000000000000001-0000000000000001-01",
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace id
		"00-00000000000000000000000000000001-0000000000000000-01", // zero span id
		"00-0001-0001-01",
		"01-00000000000000000000000000000001-0000000000000001-01", // unknown version
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace(DeriveTraceID("structure"))
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grand")
	grand.SetAttr("k", "v")
	grand.SetAttrInt("n", 42)
	grand.End()
	grand.End() // double End is a no-op
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]TraceSpan{}
	for _, sp := range spans {
		if sp.TraceID != tr.ID().String() {
			t.Errorf("span %s has trace id %s", sp.Name, sp.TraceID)
		}
		byName[sp.Name] = sp
	}
	if byName["root"].Parent != "" {
		t.Errorf("root has parent %q", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].SpanID {
		t.Errorf("child parent = %q, want root %q", byName["child"].Parent, byName["root"].SpanID)
	}
	if byName["grand"].Parent != byName["child"].SpanID {
		t.Errorf("grand parent = %q, want child %q", byName["grand"].Parent, byName["child"].SpanID)
	}
	if byName["grand"].Attrs["k"] != "v" || byName["grand"].Attrs["n"] != "42" {
		t.Errorf("grand attrs = %v", byName["grand"].Attrs)
	}
}

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		// nil-safe: all methods must work on the returned value even if
		// non-nil is returned for a no-trace context.
		sp.SetAttr("a", "b")
		sp.End()
	}
	if TraceFrom(ctx) != nil {
		t.Error("no-trace StartSpan invented a trace")
	}
	var nilSpan *ActiveSpan
	nilSpan.SetAttr("a", "b") // must not panic
	nilSpan.SetAttrInt("n", 1)
	nilSpan.End()
	if !nilSpan.SpanID().IsZero() {
		t.Error("nil span has a span ID")
	}
}

func TestDetachKeepsTrace(t *testing.T) {
	tr := NewTrace(DeriveTraceID("detach"))
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, sp := StartSpan(ctx, "parent")
	defer sp.End()

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	detached := Detach(cancelled)
	if detached.Err() != nil {
		t.Fatal("detached context inherited cancellation")
	}
	if TraceFrom(detached) != tr {
		t.Fatal("detached context lost the trace")
	}
	if sid, ok := CurrentSpanID(detached); !ok || sid != sp.SpanID() {
		t.Fatal("detached context lost the parent span")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace(DeriveTraceID("cap"))
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < DefaultTraceSpans+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	if got := len(tr.Spans()); got != DefaultTraceSpans {
		t.Errorf("retained %d spans, want cap %d", got, DefaultTraceSpans)
	}
	if tr.Dropped() != 10 {
		t.Errorf("dropped = %d, want 10", tr.Dropped())
	}
}

func TestJSONLSinkEmitsTraceSpans(t *testing.T) {
	r := New()
	tr := NewTrace(DeriveTraceID("jsonl"))
	ctx := ContextWithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "work")
	sp.End()
	r.SetTrace(tr.Spans())

	var buf bytes.Buffer
	if err := (JSONLSink{W: &buf}).Emit(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"trace_span"`) {
		t.Fatalf("JSONL output missing trace_span line:\n%s", out)
	}
	if !strings.Contains(out, tr.ID().String()) {
		t.Fatalf("JSONL output missing trace id:\n%s", out)
	}
}

func TestPromSinkOutputLints(t *testing.T) {
	r := New()
	r.Add(CtrServerRequests, 3)
	r.Max(GaugeServerInflight, 1)
	r.Observe(HistKey(HistRequestNS, "route", "/v1/analyze"), 1500)
	r.Observe(HistKey(HistRequestNS, "route", "/v1/analyze"), 90000)
	r.Observe(HistKey(HistRequestNS, "route", "/v1/delta"), 7)
	r.Observe(HistWaveSize, 4)

	var buf bytes.Buffer
	if err := (PromSink{W: &buf}).Emit(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePromText(buf.Bytes()); err != nil {
		t.Fatalf("prometheus lint failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"_bucket", `le="+Inf"`, "_sum", "_count", `route="/v1/analyze"`} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestValidatePromTextRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad name":       "1bad_name 3\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"missing +Inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n",
		"bad value":      "m abc\n",
	}
	for name, text := range cases {
		if err := ValidatePromText([]byte(text)); err == nil {
			t.Errorf("%s: lint accepted invalid input:\n%s", name, text)
		}
	}
}
