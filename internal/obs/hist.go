package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// HistBuckets is the fixed bucket count of every Histogram. Bucket i
// holds values v with bits.Len64(v) == i: bucket 0 is exactly {0},
// bucket i (i >= 1) covers [2^(i-1), 2^i - 1]. 65 buckets span the full
// non-negative int64 range, so two histograms always have the same
// layout and merge bucket-wise without rebinning.
const HistBuckets = 65

// Histogram is a fixed-layout log2-bucket histogram of non-negative
// int64 observations (negative values clamp to 0). The zero value is
// ready to use. It is a plain value type: copying copies the counts,
// and Merge is a bucket-wise sum, which makes merging commutative and
// associative — the property that keeps aggregated metrics
// deterministic under any Parallelism and any merge order.
//
// Histogram itself is not synchronized; share one through a Recorder
// (Observe/ObserveHist) or guard it externally.
type Histogram struct {
	// Count is the total number of observations.
	Count int64
	// Sum is the exact sum of all observed values.
	Sum int64
	// Buckets[i] counts observations v with bits.Len64(v) == i.
	Buckets [HistBuckets]int64
}

// histBucket returns the bucket index for v (callers clamp v >= 0).
func histBucket(v int64) int { return bits.Len64(uint64(v)) }

// HistBucketUpper returns the inclusive upper bound of bucket i
// (2^i - 1; bucket 0's bound is 0). The last bucket's bound is MaxInt64.
func HistBucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	h.Buckets[histBucket(v)]++
}

// Merge folds other into h bucket-wise.
func (h *Histogram) Merge(other Histogram) {
	h.Count += other.Count
	h.Sum += other.Sum
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
}

// Empty reports whether the histogram has no observations.
func (h Histogram) Empty() bool { return h.Count == 0 }

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the
// bucket containing the target rank and interpolating linearly inside
// its [lower, upper] value range. With log2 buckets the estimate is
// within a factor of two of the true value, which is all a statusz
// percentile needs.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if rank <= next || i == HistBuckets-1 {
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(HistBucketUpper(i))
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		seen = next
	}
	return 0
}

// histJSON is the stable serialized form: sparse [bucket, count] pairs
// in ascending bucket order, so encoding is deterministic and
// marshal/unmarshal round trips are byte-identical.
type histJSON struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (h Histogram) MarshalJSON() ([]byte, error) {
	enc := histJSON{Count: h.Count, Sum: h.Sum}
	for i, c := range h.Buckets {
		if c != 0 {
			enc.Buckets = append(enc.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var dec histJSON
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	*h = Histogram{Count: dec.Count, Sum: dec.Sum}
	for _, pair := range dec.Buckets {
		i := pair[0]
		if i < 0 || i >= HistBuckets {
			return fmt.Errorf("obs: histogram bucket index %d out of range", i)
		}
		h.Buckets[i] = pair[1]
	}
	return nil
}

// ---------------------------------------------------------------- naming

// Histogram name constants. Keys follow the counter convention (dotted
// families, dots become underscores in Prometheus) with one extension:
// a key may carry labels after a '|' separator as comma-joined k=v
// pairs, e.g. "server.request_ns|route=/v1/analyze". The Prometheus
// sink folds every key of one family into a single labeled histogram
// family.
//
// Families ending in "_ns" record wall-clock durations in nanoseconds
// and are inherently nondeterministic; every other family records
// schedule-independent values and must stay byte-identical across runs
// and Parallelism levels (the determinism suite enforces this for
// pps.wave_size).
const (
	// HistWaveSize is the frontier size of each bulk-synchronous PPS
	// wave — the state-shape distribution §V's scaling story depends on.
	HistWaveSize = "pps.wave_size"
	// HistPhaseNS records one observation per completed phase span,
	// labeled with the phase name.
	HistPhaseNS = "phase_ns"
	// HistCacheLookupNS times content-addressed report cache lookups.
	HistCacheLookupNS = "cache.lookup_ns"
	// HistUnitLookupNS times per-procedure unit memo lookups of the
	// incremental engine.
	HistUnitLookupNS = "incr.unit_lookup_ns"
	// HistRequestNS is the per-route request latency family of the
	// uafserve daemon, labeled with the route.
	HistRequestNS = "server.request_ns"
)

// HistKey builds a "family|k=v,..." histogram key. Pairs must come as
// alternating key, value strings; they are joined in the given order.
func HistKey(family string, labels ...string) string {
	if len(labels) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('|')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	return b.String()
}

// SplitHistKey splits a histogram key into its family and label pairs.
func SplitHistKey(key string) (family string, labels [][2]string) {
	family, rest, ok := strings.Cut(key, "|")
	if !ok {
		return key, nil
	}
	for _, pair := range strings.Split(rest, ",") {
		k, v, _ := strings.Cut(pair, "=")
		labels = append(labels, [2]string{k, v})
	}
	return family, labels
}

// HistNondeterministic reports whether a histogram key belongs to a
// wall-clock family (name ending in "_ns") whose contents legitimately
// vary between runs. Determinism-sensitive consumers (report
// canonicalization, the determinism test suite) strip these.
func HistNondeterministic(key string) bool {
	family, _ := SplitHistKey(key)
	return strings.HasSuffix(family, "_ns")
}

// HistNames returns the histogram keys in sorted order.
func (m Metrics) HistNames() []string {
	names := make([]string, 0, len(m.Hists))
	for n := range m.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Hist returns the named histogram (zero value if absent).
func (m Metrics) Hist(name string) Histogram { return m.Hists[name] }
