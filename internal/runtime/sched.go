package runtime

import (
	"context"
	"math/rand"

	"uafcheck/internal/ast"
	"uafcheck/internal/sym"
)

// RandomPolicy picks uniformly among runnable tasks with a seeded PRNG,
// giving reproducible schedule sampling.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy seeds a random scheduling policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Policy.
func (p *RandomPolicy) Choose(step int, runnable []int, cont int) int {
	return p.rng.Intn(len(runnable))
}

// replayPolicy follows a fixed decision prefix, then always picks the
// first runnable task. The exhaustive explorer uses it for systematic
// depth-first schedule enumeration.
type replayPolicy struct {
	prefix []int
	// preferContinue makes the post-prefix default follow the previously
	// running task, spending no preemption budget (bounded exploration).
	preferContinue bool
}

// Choose implements Policy.
func (p *replayPolicy) Choose(step int, runnable []int, cont int) int {
	// step counts from 1.
	if step-1 < len(p.prefix) {
		c := p.prefix[step-1]
		if c < len(runnable) {
			return c
		}
		return len(runnable) - 1
	}
	if p.preferContinue && cont >= 0 {
		return cont
	}
	return 0
}

// ExploreResult aggregates observations across many schedules.
type ExploreResult struct {
	Runs      int
	UAF       map[string]UAFEvent // keyed by Var:Line
	Races     map[string]RaceEvent
	Deadlocks int
	// TotalSteps sums scheduler steps across all runs (oracle telemetry).
	TotalSteps int
	// Truncated reports whether the exploration hit its run budget
	// before exhausting the schedule tree.
	Truncated bool
	// Cancelled reports that the context fired before the exploration
	// finished; the observations so far are still valid (under-approx).
	Cancelled bool
}

// sawUAF merges one run's events.
func (er *ExploreResult) absorb(r *RunResult) {
	for _, e := range r.UAF {
		if _, ok := er.UAF[e.Key()]; !ok {
			er.UAF[e.Key()] = e
		}
	}
	for _, e := range r.Races {
		if _, ok := er.Races[e.Key()]; !ok {
			er.Races[e.Key()] = e
		}
	}
	if r.Deadlock {
		er.Deadlocks++
	}
	er.TotalSteps += r.Steps
}

// ExploreRandom runs n seeded random schedules.
func ExploreRandom(mod *ast.Module, info *sym.Info, entry string, n int, seed int64) *ExploreResult {
	return ExploreRandomContext(context.Background(), mod, info, entry, n, seed)
}

// ExploreRandomContext is ExploreRandom under a deadline: the context is
// polled between runs and inside each run's scheduler loop, so a
// pathological program cannot hold the oracle past its budget.
func ExploreRandomContext(ctx context.Context, mod *ast.Module, info *sym.Info, entry string, n int, seed int64) *ExploreResult {
	er := &ExploreResult{UAF: make(map[string]UAFEvent), Races: make(map[string]RaceEvent)}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			er.Cancelled = true
			return er
		}
		r := Run(mod, info, Config{
			Entry:       entry,
			DetectRaces: true,
			Policy:      NewRandomPolicy(seed + int64(i)),
			Ctx:         ctx,
		})
		er.Runs++
		er.absorb(r)
		if r.Cancelled {
			er.Cancelled = true
			return er
		}
	}
	return er
}

// ExploreExhaustive enumerates schedules depth-first up to maxRuns
// executions. Each run replays a decision prefix and then follows the
// first-runnable default; after the run, every decision point at or past
// the prefix with unexplored alternatives spawns a sibling prefix.
//
// For small programs (the paper's figures, corpus unit patterns) this
// covers the complete schedule space and is a sound oracle: an access is
// a true use-after-free iff some schedule triggers it.
func ExploreExhaustive(mod *ast.Module, info *sym.Info, entry string, maxRuns int) *ExploreResult {
	return ExploreExhaustiveContext(context.Background(), mod, info, entry, maxRuns)
}

// ExploreExhaustiveContext is ExploreExhaustive under a deadline; when
// the context fires the enumeration stops with Cancelled (and Truncated,
// since the tree was not exhausted).
func ExploreExhaustiveContext(ctx context.Context, mod *ast.Module, info *sym.Info, entry string, maxRuns int) *ExploreResult {
	er := &ExploreResult{UAF: make(map[string]UAFEvent), Races: make(map[string]RaceEvent)}
	type job struct{ prefix []int }
	stack := []job{{prefix: nil}}
	for len(stack) > 0 {
		if er.Runs >= maxRuns {
			er.Truncated = true
			return er
		}
		if ctx.Err() != nil {
			er.Cancelled = true
			er.Truncated = true
			return er
		}
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := Run(mod, info, Config{
			Entry:       entry,
			DetectRaces: true,
			Policy:      &replayPolicy{prefix: j.prefix},
			Ctx:         ctx,
		})
		er.Runs++
		er.absorb(r)
		if r.Cancelled {
			er.Cancelled = true
			er.Truncated = true
			return er
		}
		// Spawn siblings for unexplored alternatives discovered beyond
		// the prefix (standard stateless-DFS enumeration).
		for i := len(j.prefix); i < len(r.Decisions); i++ {
			for alt := r.Decisions[i] + 1; alt < r.Alternatives[i]; alt++ {
				np := make([]int, i+1)
				copy(np, r.Decisions[:i])
				np[i] = alt
				stack = append(stack, job{prefix: np})
			}
		}
	}
	return er
}

// ExploreBounded enumerates schedules depth-first like ExploreExhaustive
// but limits PREEMPTIONS per schedule (iterative context bounding, the
// CHESS insight): a decision only counts against the bound when it
// switches away from a task that could have continued. Most concurrency
// bugs — including every use-after-free pattern in the paper — manifest
// within one or two preemptions, so the bounded space is exponentially
// smaller while retaining almost all bug-finding power.
func ExploreBounded(mod *ast.Module, info *sym.Info, entry string, maxRuns, bound int) *ExploreResult {
	return ExploreBoundedContext(context.Background(), mod, info, entry, maxRuns, bound)
}

// ExploreBoundedContext is ExploreBounded under a deadline.
func ExploreBoundedContext(ctx context.Context, mod *ast.Module, info *sym.Info, entry string, maxRuns, bound int) *ExploreResult {
	er := &ExploreResult{UAF: make(map[string]UAFEvent), Races: make(map[string]RaceEvent)}
	type job struct {
		prefix     []int
		preemptive int
	}
	stack := []job{{prefix: nil}}
	for len(stack) > 0 {
		if er.Runs >= maxRuns {
			er.Truncated = true
			return er
		}
		if ctx.Err() != nil {
			er.Cancelled = true
			er.Truncated = true
			return er
		}
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := Run(mod, info, Config{
			Entry:       entry,
			DetectRaces: true,
			Policy:      &replayPolicy{prefix: j.prefix, preferContinue: true},
			Ctx:         ctx,
		})
		er.Runs++
		er.absorb(r)
		if r.Cancelled {
			er.Cancelled = true
			er.Truncated = true
			return er
		}
		// Preemptions along the replayed prefix are j.preemptive; beyond
		// the prefix the default policy continues the previous task when
		// possible (choice 0 may still preempt if the previous task
		// blocked — that's free).
		used := j.preemptive
		for i := len(j.prefix); i < len(r.Decisions); i++ {
			// The default (taken) choice is the continuation, not
			// necessarily index 0 — enumerate every OTHER alternative.
			for alt := 0; alt < r.Alternatives[i]; alt++ {
				if alt == r.Decisions[i] {
					continue
				}
				cost := 0
				if r.ContIdx[i] >= 0 && alt != r.ContIdx[i] {
					cost = 1
				}
				if used+cost > bound {
					continue
				}
				np := make([]int, i+1)
				copy(np, r.Decisions[:i])
				np[i] = alt
				stack = append(stack, job{prefix: np, preemptive: used + cost})
			}
			// Following the default path: did step i itself preempt?
			if r.ContIdx[i] >= 0 && r.Decisions[i] != r.ContIdx[i] {
				used++
			}
		}
	}
	return er
}

// Oracle classifies a static warning site (variable name + access line):
// true positive iff some explored schedule observed a use-after-free at
// that site.
type Oracle struct {
	er *ExploreResult
}

// NewOracle builds an oracle from exploration results.
func NewOracle(er *ExploreResult) *Oracle { return &Oracle{er: er} }

// TruePositive reports whether the site was dynamically confirmed.
func (o *Oracle) TruePositive(varName string, line int) bool {
	_, ok := o.er.UAF[UAFEvent{Var: varName, Line: line}.Key()]
	return ok
}

// Events returns all observed events.
func (o *Oracle) Events() map[string]UAFEvent { return o.er.UAF }
