package runtime

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"uafcheck/internal/ast"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// ctxCheckSteps is how many scheduler steps pass between cancellation
// polls of Config.Ctx.
const ctxCheckSteps = 64

// UAFEvent is one observed use-after-free: an access to a cell whose
// declaring scope had already exited.
type UAFEvent struct {
	Var   string
	Line  int
	Task  string
	Write bool
}

// Key identifies the event site (variable + access line), the granularity
// at which static warnings are matched against dynamic observations.
func (e UAFEvent) Key() string { return fmt.Sprintf("%s:%d", e.Var, e.Line) }

// RunResult is the outcome of executing one schedule.
type RunResult struct {
	UAF    []UAFEvent
	Output []string
	// Races are the data races observed when Config.DetectRaces is set.
	Races []RaceEvent
	// Trace is the execution event log when Config.Trace is set.
	Trace         []string
	Deadlock      bool
	Blocked       []string // what each task was blocked on at deadlock
	Steps         int
	RuntimeErrors []string
	// Cancelled reports that Config.Ctx fired and the run was killed
	// before the program finished.
	Cancelled bool
	// Decisions records the scheduling choices taken (replay/explore).
	Decisions []int
	// Alternatives records, per decision, how many tasks were runnable.
	Alternatives []int
	// ContIdx records, per decision, the runnable index that would have
	// CONTINUED the previously running task (-1 when it was blocked or
	// done). Choosing any other index is a preemption — the quantity the
	// bounded explorer limits.
	ContIdx []int
}

// Policy chooses the next task among runnable candidates.
type Policy interface {
	// Choose returns an index into the runnable slice. cont is the index
	// that would continue the previously running task, or -1 when that
	// task is blocked or finished.
	Choose(step int, runnable []int, cont int) int
}

// Config configures one run.
type Config struct {
	// Entry is the procedure to execute; empty means the first proc.
	Entry string
	// MaxSteps bounds scheduler steps (livelock guard). 0 = default.
	MaxSteps int
	// Policy picks tasks; nil means first-runnable.
	Policy Policy
	// CaptureOutput retains writeln output.
	CaptureOutput bool
	// Trace records an execution event log (spawns, blocks, sync
	// operations, scope deaths, use-after-free hits).
	Trace bool
	// DetectRaces enables the vector-clock data-race detector.
	DetectRaces bool
	// Ctx carries a deadline/cancellation for the run; the scheduler
	// polls it every ctxCheckSteps steps and kills the machine when it
	// fires (RunResult.Cancelled). nil means no deadline.
	Ctx context.Context
}

const defaultMaxSteps = 200000

// Machine executes one program once under one schedule.
type Machine struct {
	mod  *ast.Module
	info *sym.Info
	file *source.File
	cfg  Config

	tasks     []*task
	nextTask  int
	stateVer  int
	steps     int
	res       *RunResult
	killed    bool
	schedCh   chan *task
	uafSeen   map[string]bool
	taskCount int // live tasks
	lastTask  *task
	raceCells map[*Cell]*raceState
	raceSeen  map[string]bool
}

type task struct {
	id       int
	label    string
	resume   chan struct{}
	done     bool
	blocked  bool
	blockVer int
	blockWhy string
	env      *env
	groups   []*syncGroup
	// clock is the task's vector clock (race detection).
	clock vclock
}

// env is a chained environment frame: one per procedure invocation and
// one per begin task (for in-intent copies).
type env struct {
	parent  *env
	vars    map[*sym.Symbol]*Cell
	syncs   map[*sym.Symbol]*SyncCell
	atomics map[*sym.Symbol]*AtomicCell
}

func newEnv(parent *env) *env {
	return &env{
		parent:  parent,
		vars:    make(map[*sym.Symbol]*Cell),
		syncs:   make(map[*sym.Symbol]*SyncCell),
		atomics: make(map[*sym.Symbol]*AtomicCell),
	}
}

func (e *env) cell(s *sym.Symbol) *Cell {
	for f := e; f != nil; f = f.parent {
		if c, ok := f.vars[s]; ok {
			return c
		}
	}
	return nil
}

func (e *env) syncCell(s *sym.Symbol) *SyncCell {
	for f := e; f != nil; f = f.parent {
		if c, ok := f.syncs[s]; ok {
			return c
		}
	}
	return nil
}

func (e *env) atomicCell(s *sym.Symbol) *AtomicCell {
	for f := e; f != nil; f = f.parent {
		if c, ok := f.atomics[s]; ok {
			return c
		}
	}
	return nil
}

// syncGroup counts live tasks inside one sync block's dynamic extent.
type syncGroup struct {
	live int
	// clock accumulates the exit clocks of completed members so the
	// fence establishes happens-before into the waiter.
	clock vclock
}

type killSignal struct{}

// Run executes the program under the configured schedule.
func Run(mod *ast.Module, info *sym.Info, cfg Config) *RunResult {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	m := &Machine{
		mod: mod, info: info, file: mod.File, cfg: cfg,
		res:       &RunResult{},
		uafSeen:   make(map[string]bool),
		schedCh:   make(chan *task),
		raceCells: make(map[*Cell]*raceState),
		raceSeen:  make(map[string]bool),
	}
	entry := cfg.Entry
	if entry == "" && len(mod.Procs) > 0 {
		entry = mod.Procs[0].Name.Name
	}
	proc := mod.Proc(entry)
	if proc == nil {
		m.res.RuntimeErrors = append(m.res.RuntimeErrors, "entry proc not found: "+entry)
		return m.res
	}

	root := m.newTask("main", newEnv(nil), nil)
	go m.taskBody(root, func() {
		// Module-level config constants are evaluated before the entry
		// procedure, like Chapel module initialization.
		for _, cfg := range m.mod.Configs {
			root.env.vars[m.info.Uses[cfg.Name]] = &Cell{
				Name: cfg.Name.Name,
				Val:  m.evalConfig(root, cfg),
			}
		}
		m.callProc(root, proc, nil)
	})
	m.schedule()
	return m.res
}

func (m *Machine) newTask(label string, e *env, groups []*syncGroup) *task {
	t := &task{
		id:     m.nextTask,
		label:  label,
		resume: make(chan struct{}),
		env:    e,
		groups: append([]*syncGroup(nil), groups...),
		clock:  vclock{},
	}
	t.clock[t.id] = 1
	m.nextTask++
	m.tasks = append(m.tasks, t)
	m.taskCount++
	for _, g := range t.groups {
		g.live++
	}
	return t
}

// taskBody wraps a task goroutine: it waits for its first resume, runs
// body, and reports completion to the scheduler.
func (m *Machine) taskBody(t *task, body func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); !ok {
				m.res.RuntimeErrors = append(m.res.RuntimeErrors,
					fmt.Sprintf("task %s panicked: %v", t.label, r))
			}
		}
		t.done = true
		m.taskCount--
		for _, g := range t.groups {
			g.live--
			if m.cfg.DetectRaces {
				if g.clock == nil {
					g.clock = vclock{}
				}
				g.clock.join(t.clock)
			}
		}
		m.stateVer++
		// Always hand control back so the scheduler (or kill) can
		// account for the exit; exactly one receiver is waiting.
		m.schedCh <- t
	}()
	<-t.resume
	if m.killed {
		panic(killSignal{})
	}
	body()
}

// yield hands control back to the scheduler and waits to be resumed.
func (m *Machine) yield(t *task) {
	m.schedCh <- t
	<-t.resume
	if m.killed {
		panic(killSignal{})
	}
}

// block marks the task blocked on a condition and yields. The scheduler
// only re-runs it after the global state version changes.
func (m *Machine) block(t *task, why string) {
	m.trace(t, "blocked on %s", why)
	t.blocked = true
	t.blockVer = m.stateVer
	t.blockWhy = why
	m.yield(t)
	t.blocked = false
}

// schedule is the scheduler loop, run by the caller of Run.
func (m *Machine) schedule() {
	defer func() { m.res.Steps = m.steps }()
	for {
		if m.taskCount == 0 {
			return
		}
		var runnable []int
		for i, t := range m.tasks {
			if t.done {
				continue
			}
			if t.blocked && t.blockVer >= m.stateVer {
				continue
			}
			runnable = append(runnable, i)
		}
		if len(runnable) == 0 {
			// Every live task is blocked on an unchanged state: deadlock.
			m.res.Deadlock = true
			for _, t := range m.tasks {
				if !t.done {
					m.res.Blocked = append(m.res.Blocked,
						fmt.Sprintf("%s: %s", t.label, t.blockWhy))
				}
			}
			m.kill()
			return
		}
		m.steps++
		if m.steps > m.cfg.MaxSteps {
			m.res.RuntimeErrors = append(m.res.RuntimeErrors, "step budget exceeded")
			m.kill()
			return
		}
		if m.cfg.Ctx != nil && m.steps%ctxCheckSteps == 0 && m.cfg.Ctx.Err() != nil {
			m.res.Cancelled = true
			m.kill()
			return
		}
		cont := -1
		for i, ti := range runnable {
			if m.tasks[ti] == m.lastTask {
				cont = i
			}
		}
		choice := 0
		if m.cfg.Policy != nil {
			choice = m.cfg.Policy.Choose(m.steps, runnable, cont)
			if choice < 0 || choice >= len(runnable) {
				choice = 0
			}
		}
		m.res.Decisions = append(m.res.Decisions, choice)
		m.res.Alternatives = append(m.res.Alternatives, len(runnable))
		m.res.ContIdx = append(m.res.ContIdx, cont)
		t := m.tasks[runnable[choice]]
		m.lastTask = t
		t.resume <- struct{}{}
		<-m.schedCh // task yields or completes
	}
}

// kill unwinds all live task goroutines. Whenever the scheduler holds
// control, every live task goroutine is parked in <-t.resume; resuming it
// with killed set makes it panic(killSignal) and send its completion
// notice, which we consume before moving on — so no two goroutines touch
// machine state concurrently.
func (m *Machine) kill() {
	m.killed = true
	for _, t := range m.tasks {
		if t.done {
			continue
		}
		t.resume <- struct{}{}
		<-m.schedCh
	}
}

func (m *Machine) recordUAF(t *task, c *Cell, line int, write bool) {
	ev := UAFEvent{Var: c.Name, Line: line, Task: t.label, Write: write}
	m.trace(t, "USE-AFTER-FREE %s (declared line %d) at line %d", c.Name, c.DeclLine, line)
	if !m.uafSeen[ev.Key()] {
		m.uafSeen[ev.Key()] = true
		m.res.UAF = append(m.res.UAF, ev)
	}
}

// trace appends one event to the run log when tracing is enabled.
func (m *Machine) trace(t *task, format string, args ...any) {
	if !m.cfg.Trace {
		return
	}
	who := "main"
	if t != nil {
		who = t.label
	}
	m.res.Trace = append(m.res.Trace, fmt.Sprintf("[%s] %s", who, fmt.Sprintf(format, args...)))
}

func (m *Machine) line(sp source.Span) int { return m.file.Line(sp.Start) }

// Summary renders the run result compactly (tests, examples).
func (r *RunResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d uaf=%d deadlock=%t", r.Steps, len(r.UAF), r.Deadlock)
	if len(r.UAF) > 0 {
		keys := make([]string, 0, len(r.UAF))
		for _, e := range r.UAF {
			keys = append(keys, e.Key())
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, " [%s]", strings.Join(keys, " "))
	}
	return b.String()
}
