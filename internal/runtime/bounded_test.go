package runtime

import (
	"fmt"
	"strings"
	"testing"
)

// TestBoundedFindsFigure1Bug: the Figure 1 use-after-free manifests
// within two preemptions; the bounded explorer must find it with far
// fewer runs than full exhaustion needs.
func TestBoundedFindsFigure1Bug(t *testing.T) {
	mod, info := loadFile(t, "figure1.chpl")
	er := ExploreBounded(mod, info, "outerVarUse", 5000, 2)
	if er.Truncated {
		t.Logf("bounded exploration truncated at %d runs", er.Runs)
	}
	found := false
	for _, e := range er.UAF {
		if e.Task == "TASK B" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bound-2 exploration missed the TASK B bug (%d runs)", er.Runs)
	}
	t.Logf("bounded: bug found within %d runs", er.Runs)
}

// TestBoundedSmallerThanExhaustive: on a program with several tasks, the
// preemption-bounded space is much smaller than the full schedule tree.
func TestBoundedSmallerThanExhaustive(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("proc many() {\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "  var v%d: int = %d;\n", i, i)
		fmt.Fprintf(&sb, "  var d%d$: sync bool;\n", i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "  begin with (ref v%d) {\n    v%d = v%d + 1;\n    d%d$ = true;\n  }\n", i, i, i, i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "  d%d$;\n", i)
	}
	sb.WriteString("}\n")
	mod, info := load(t, sb.String())

	bounded := ExploreBounded(mod, info, "many", 200000, 1)
	exhaustive := ExploreExhaustive(mod, info, "many", 200000)
	if bounded.Truncated {
		t.Fatalf("bound-1 space should be tiny, got truncated at %d", bounded.Runs)
	}
	if !exhaustive.Truncated && exhaustive.Runs <= bounded.Runs {
		t.Errorf("exhaustive (%d runs) not larger than bounded (%d runs)",
			exhaustive.Runs, bounded.Runs)
	}
	t.Logf("bounded=1: %d runs; exhaustive: %d runs (truncated=%t)",
		bounded.Runs, exhaustive.Runs, exhaustive.Truncated)
	// The program is safe: neither may report UAFs.
	if len(bounded.UAF) != 0 || len(exhaustive.UAF) != 0 {
		t.Errorf("safe program reported UAFs: %v / %v", bounded.UAF, exhaustive.UAF)
	}
}

// TestBoundedZeroIsSingleScheduleFamily: bound 0 allows no preemption at
// all — only voluntary switches (blocking, task exit) — so the run count
// collapses to the branch structure only.
func TestBoundedZeroIsSingleScheduleFamily(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    x = 2;
    done$ = true;
  }
  done$;
  writeln(x);
}`)
	er := ExploreBounded(mod, info, "main", 1000, 0)
	if er.Truncated {
		t.Fatalf("bound-0 should be tiny: %d runs", er.Runs)
	}
	if er.Runs > 8 {
		t.Errorf("bound-0 runs = %d, expected a handful", er.Runs)
	}
	if len(er.UAF) != 0 {
		t.Errorf("safe program flagged: %v", er.UAF)
	}
}

// TestBoundedAgreesWithExhaustiveOnSmallPrograms: for programs small
// enough to exhaust, a generous bound must find the same UAF site set.
func TestBoundedAgreesWithExhaustiveOnSmallPrograms(t *testing.T) {
	srcs := []string{
		`proc p() {
		  var x: int = 1;
		  begin with (ref x) { writeln(x); }
		}`,
		`proc p() {
		  var x: int = 1;
		  var done$: sync bool;
		  begin with (ref x) { x = 2; done$ = true; x = 3; }
		  done$;
		}`,
		`proc p() {
		  var x: int = 1;
		  var a$: sync bool;
		  begin with (ref x) {
		    begin with (ref x) { writeln(x); }
		    a$ = true;
		  }
		  a$;
		}`,
	}
	for i, src := range srcs {
		mod, info := load(t, src)
		ex := ExploreExhaustive(mod, info, "p", 100000)
		bd := ExploreBounded(mod, info, "p", 100000, 3)
		if ex.Truncated || bd.Truncated {
			t.Fatalf("case %d truncated", i)
		}
		if len(ex.UAF) != len(bd.UAF) {
			t.Errorf("case %d: exhaustive %v vs bounded %v", i, ex.UAF, bd.UAF)
		}
		for k := range ex.UAF {
			if _, ok := bd.UAF[k]; !ok {
				t.Errorf("case %d: bounded missed %s", i, k)
			}
		}
	}
}
