package runtime

import (
	"strings"
	"testing"
)

func TestSingleWriteOnceReadMany(t *testing.T) {
	// A single variable is filled once and read any number of times;
	// readFF retains the full state.
	mod, info := load(t, `
proc main() {
  var s$: single int;
  s$.writeEF(1);
  var v: int = s$.readFF();
  var w: int = s$.readFF();
  writeln(v + w);
}`)
	r := Run(mod, info, Config{CaptureOutput: true})
	if len(r.RuntimeErrors) != 0 || len(r.Output) != 1 || r.Output[0] != "2" {
		t.Fatalf("single reuse failed: %v / %v", r.RuntimeErrors, r.Output)
	}
}

func TestSingleSecondWriteReported(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var s$: single int;
  s$.writeEF(1);
  var v: int = s$.readFF();
  writeln(v);
  s$.writeEF(2);
}`)
	// The second writeEF blocks until empty — singles never empty, so
	// this deadlocks rather than double-writing (Chapel would error; we
	// surface the blocked state).
	r := Run(mod, info, Config{})
	if !r.Deadlock {
		t.Fatalf("second single write should block forever: %s", r.Summary())
	}
}

func TestStepBudgetGuard(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var f: atomic int;
  f.waitFor(1);
}`)
	r := Run(mod, info, Config{MaxSteps: 50})
	stop := false
	for _, e := range r.RuntimeErrors {
		if strings.Contains(e, "step budget") {
			stop = true
		}
	}
	// waitFor with no writer: either detected as deadlock (blocked with
	// no state change) or the budget trips; both are acceptable guards.
	if !stop && !r.Deadlock {
		t.Fatalf("runaway spin not stopped: %s", r.Summary())
	}
}

func TestStringValues(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var s: string = "abc";
  s += "def";
  writeln(s, "!", 42);
}`)
	r := Run(mod, info, Config{CaptureOutput: true})
	if len(r.Output) != 1 || r.Output[0] != "abcdef!42" {
		t.Fatalf("output = %v", r.Output)
	}
}

func TestDivisionByZeroRecorded(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var a: int = 1;
  var b: int = 0;
  writeln(a / b);
  writeln(a % b);
}`)
	r := Run(mod, info, Config{CaptureOutput: true})
	if len(r.RuntimeErrors) != 2 {
		t.Fatalf("errors = %v", r.RuntimeErrors)
	}
}

func TestAssertBuiltin(t *testing.T) {
	mod, info := load(t, `
proc main() {
  assert(1 + 1 == 2);
  assert(false);
}`)
	r := Run(mod, info, Config{})
	if len(r.RuntimeErrors) != 1 || !strings.Contains(r.RuntimeErrors[0], "assertion failed") {
		t.Fatalf("errors = %v", r.RuntimeErrors)
	}
}

func TestEarlyReturnKillsScope(t *testing.T) {
	mod, info := load(t, `
proc worker(): int {
  var local: int = 5;
  begin with (ref local) {
    writeln(local);
  }
  return local;
}
proc main() {
  writeln(worker());
}`)
	er := ExploreExhaustive(mod, info, "main", 10000)
	if len(er.UAF) != 1 {
		t.Fatalf("return-path scope death not detected: %v", er.UAF)
	}
}

func TestReturnInsideSyncBlockStillFences(t *testing.T) {
	mod, info := load(t, `
proc f(): int {
  var x: int = 0;
  sync {
    begin with (ref x) {
      x = 7;
    }
    return 1;
  }
  return 0;
}
proc main() {
  writeln(f());
  }`)
	er := ExploreExhaustive(mod, info, "main", 20000)
	if len(er.UAF) != 0 {
		t.Fatalf("sync fence skipped on early return: %v", er.UAF)
	}
	if er.Deadlocks != 0 {
		t.Fatalf("deadlocks: %d", er.Deadlocks)
	}
}

func TestCompareExchange(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var a: atomic int;
  a.write(3);
  writeln(a.compareExchange(3, 9));
  writeln(a.read());
  writeln(a.compareExchange(3, 1));
  writeln(a.read());
}`)
	r := Run(mod, info, Config{CaptureOutput: true})
	want := []string{"true", "9", "false", "9"}
	if len(r.Output) != len(want) {
		t.Fatalf("output = %v", r.Output)
	}
	for i := range want {
		if r.Output[i] != want[i] {
			t.Fatalf("output[%d] = %s, want %s", i, r.Output[i], want[i])
		}
	}
}

func TestNestedProcRecursionRuns(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var acc: int = 0;
  proc sum(n: int): int {
    if (n <= 0) {
      return 0;
    }
    return n + sum(n - 1);
  }
  acc = sum(5);
  writeln(acc);
}`)
	r := Run(mod, info, Config{CaptureOutput: true})
	if len(r.Output) != 1 || r.Output[0] != "15" {
		t.Fatalf("recursion output = %v (%v)", r.Output, r.RuntimeErrors)
	}
}
