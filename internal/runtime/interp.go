package runtime

import (
	"uafcheck/internal/ast"
	"uafcheck/internal/source"
)

// loopIterCap bounds loop iterations so buggy corpus programs terminate.
const loopIterCap = 100000

// callProc executes a procedure body in a fresh environment frame.
// refCells maps by-ref formals to caller cells; nil entries (and missing
// params) get fresh cells with zero values.
func (m *Machine) callProc(t *task, proc *ast.ProcDecl, args []argVal) Value {
	frame := newEnv(t.env)
	saved := t.env
	t.env = frame
	defer func() { t.env = saved }()

	var owned []*Cell
	for i, prm := range proc.Params {
		s := m.info.Uses[prm.Name]
		if s == nil {
			continue
		}
		if i < len(args) && args[i].cell != nil {
			// By-ref: alias the caller's cell.
			frame.vars[s] = args[i].cell
			continue
		}
		c := &Cell{Name: s.Name, DeclLine: m.line(prm.Name.Sp)}
		if i < len(args) {
			c.Val = args[i].val
		} else {
			c.Val = zeroValue(prm.Type)
		}
		frame.vars[s] = c
		owned = append(owned, c)
	}
	ret, _ := m.stmts(t, proc.Body.Stmts)
	for _, c := range owned {
		c.Dead = true
	}
	return ret
}

type argVal struct {
	val  Value
	cell *Cell // non-nil for by-ref arguments
}

func zeroValue(tp ast.Type) Value {
	switch tp.Kind {
	case ast.TypeBool:
		return BoolV(false)
	case ast.TypeString:
		return StringV("")
	default:
		return IntV(0)
	}
}

// stmts executes a statement list; the bool result reports early return.
// Cells declared directly in the list die when it exits (scope end).
func (m *Machine) stmts(t *task, list []ast.Stmt) (Value, bool) {
	ret, returned, owned := m.stmtsCollect(t, list)
	for _, c := range owned {
		c.Dead = true
	}
	m.stateVer++
	return ret, returned
}

// stmtsCollect executes a statement list but leaves the lifetime of the
// directly-declared cells to the caller. The sync-block fence needs this:
// in Chapel the fence at the closing brace runs BEFORE the block's locals
// are deallocated, so tasks created inside may legally use them.
func (m *Machine) stmtsCollect(t *task, list []ast.Stmt) (Value, bool, []*Cell) {
	var owned []*Cell
	for _, s := range list {
		ret, returned, cells := m.stmt(t, s)
		owned = append(owned, cells...)
		if returned {
			return ret, true, owned
		}
	}
	return Value{}, false, owned
}

// stmt executes one statement. It returns the declared cells so the
// caller (the enclosing block) can end their lifetime at scope exit.
func (m *Machine) stmt(t *task, s ast.Stmt) (ret Value, returned bool, owned []*Cell) {
	m.yield(t) // statement-level scheduling point
	switch x := s.(type) {
	case *ast.VarDecl:
		return Value{}, false, m.varDecl(t, x)
	case *ast.AssignStmt:
		m.assign(t, x)
	case *ast.IncDecStmt:
		sm := m.info.Uses[x.X]
		if sm == nil {
			return
		}
		c := t.env.cell(sm)
		if c == nil {
			return
		}
		m.checkCell(t, c, x.X.Sp, false)
		m.checkCell(t, c, x.X.Sp, true)
		if x.Op == "++" {
			c.Val = IntV(c.Val.I + 1)
		} else {
			c.Val = IntV(c.Val.I - 1)
		}
	case *ast.ExprStmt:
		m.eval(t, x.X)
	case *ast.CallStmt:
		m.eval(t, x.X)
	case *ast.BeginStmt:
		m.begin(t, x)
	case *ast.SyncStmt:
		ret, returned = m.syncBlock(t, x)
	case *ast.IfStmt:
		if m.eval(t, x.Cond).Truthy() {
			ret, returned = m.stmts(t, x.Then.Stmts)
		} else if x.Else != nil {
			ret, returned = m.stmts(t, x.Else.Stmts)
		}
	case *ast.WhileStmt:
		for i := 0; m.eval(t, x.Cond).Truthy(); i++ {
			if i >= loopIterCap {
				m.res.RuntimeErrors = append(m.res.RuntimeErrors, "while loop iteration cap hit")
				break
			}
			ret, returned = m.stmts(t, x.Body.Stmts)
			if returned {
				return
			}
		}
	case *ast.ForStmt:
		lo := m.eval(t, x.Range.Lo).I
		hi := m.eval(t, x.Range.Hi).I
		lv := m.info.Uses[x.Var]
		cell := &Cell{Name: x.Var.Name, DeclLine: m.line(x.Var.Sp)}
		if lv != nil {
			t.env.vars[lv] = cell
		}
		for i := lo; i <= hi; i++ {
			if i-lo >= loopIterCap {
				m.res.RuntimeErrors = append(m.res.RuntimeErrors, "for loop iteration cap hit")
				break
			}
			cell.Val = IntV(i)
			ret, returned = m.stmts(t, x.Body.Stmts)
			if returned {
				break
			}
		}
		cell.Dead = true
	case *ast.ReturnStmt:
		if x.Value != nil {
			ret = m.eval(t, x.Value)
		}
		returned = true
	case *ast.BlockStmt:
		ret, returned = m.stmts(t, x.Stmts)
	case *ast.ProcStmt:
		// Definition only; executed at call sites.
	}
	return
}

func (m *Machine) varDecl(t *task, x *ast.VarDecl) []*Cell {
	s := m.info.Uses[x.Name]
	if s == nil {
		return nil
	}
	switch x.Type.Qual {
	case ast.QualSync, ast.QualSingle:
		sc := &SyncCell{IsSingle: x.Type.Qual == ast.QualSingle, Name: s.Name}
		if x.Init != nil {
			sc.Val = m.eval(t, x.Init)
			sc.Full = true
			sc.WriteCount = 1
		}
		t.env.syncs[s] = sc
		m.stateVer++
		return nil // sync vars are universally visible; lifetime not modelled
	case ast.QualAtomic:
		ac := &AtomicCell{Name: s.Name}
		if x.Init != nil {
			ac.Val = m.eval(t, x.Init).I
		}
		t.env.atomics[s] = ac
		m.stateVer++
		return nil
	}
	c := &Cell{Name: s.Name, DeclLine: m.line(x.Name.Sp)}
	if x.Init != nil {
		c.Val = m.eval(t, x.Init)
	} else {
		c.Val = zeroValue(x.Type)
	}
	t.env.vars[s] = c
	return []*Cell{c}
}

func (m *Machine) assign(t *task, x *ast.AssignStmt) {
	sm := m.info.Uses[x.Lhs]
	if sm == nil {
		return
	}
	if sm.IsSyncVar() {
		// `done$ = v` is writeEF.
		v := m.eval(t, x.Rhs)
		m.writeEF(t, sm, v, x.Sp)
		return
	}
	if sm.IsAtomic() {
		v := m.eval(t, x.Rhs)
		if ac := t.env.atomicCell(sm); ac != nil {
			m.atomicHB(t, ac)
			ac.Val = v.I
			m.stateVer++
		}
		return
	}
	c := t.env.cell(sm)
	if c == nil {
		return
	}
	rhs := m.eval(t, x.Rhs)
	switch x.Op {
	case "+=":
		m.checkCell(t, c, x.Lhs.Sp, false)
		if c.Val.Kind == KString {
			c.Val = StringV(c.Val.S + rhs.String())
		} else {
			c.Val = IntV(c.Val.I + rhs.I)
		}
	case "-=":
		m.checkCell(t, c, x.Lhs.Sp, false)
		c.Val = IntV(c.Val.I - rhs.I)
	case "*=":
		m.checkCell(t, c, x.Lhs.Sp, false)
		c.Val = IntV(c.Val.I * rhs.I)
	default:
		c.Val = rhs
	}
	m.checkCell(t, c, x.Lhs.Sp, true)
}

func (m *Machine) begin(t *task, x *ast.BeginStmt) {
	childEnv := newEnv(t.env)
	// `in`-intent copies are snapshotted at creation time in the parent.
	for _, w := range x.With {
		outer := m.info.Uses[w.Name]
		if outer == nil || outer.IsSyncVar() || outer.IsAtomic() {
			continue
		}
		if w.Intent == ast.IntentIn {
			cp := m.info.CopyFor[x][outer]
			src := t.env.cell(outer)
			var v Value
			if src != nil {
				m.checkCell(t, src, w.Name.Sp, false)
				v = src.Val
			}
			if cp != nil {
				childEnv.vars[cp] = &Cell{Name: cp.Name, Val: v, DeclLine: m.line(w.Name.Sp)}
			}
		}
	}
	child := m.newTask(x.Label, childEnv, t.groups)
	if m.cfg.DetectRaces {
		// Spawn edge: the child starts after everything the parent did.
		child.clock.join(t.clock)
		child.tick()
		t.tick()
	}
	m.trace(t, "spawn %s", x.Label)
	go m.taskBody(child, func() {
		m.stmts(child, x.Body.Stmts)
		m.trace(child, "task exits")
	})
	m.stateVer++
}

func (m *Machine) syncBlock(t *task, x *ast.SyncStmt) (Value, bool) {
	g := &syncGroup{}
	t.groups = append(t.groups, g)
	ret, returned, owned := m.stmtsCollect(t, x.Body.Stmts)
	t.groups = t.groups[:len(t.groups)-1]
	// Fence: wait until every task created inside the block (transitively)
	// has completed — BEFORE the block's own locals die, so tasks inside
	// the block may legally reference them.
	for g.live > 0 {
		m.block(t, "sync block fence")
	}
	if m.cfg.DetectRaces && g.clock != nil {
		// Fence edge: everything the fenced tasks did happened before
		// the code after the block.
		t.clock.join(g.clock)
		t.tick()
	}
	for _, c := range owned {
		c.Dead = true
	}
	m.stateVer++
	return ret, returned
}

// checkCell records a use-after-free when the cell's scope has exited,
// and feeds the race detector.
func (m *Machine) checkCell(t *task, c *Cell, sp source.Span, write bool) {
	if c.Dead {
		m.recordUAF(t, c, m.file.Line(sp.Start), write)
	}
	m.onAccess(t, c, m.file.Line(sp.Start), write)
}
