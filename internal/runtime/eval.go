package runtime

import (
	"fmt"
	"strings"

	"uafcheck/internal/ast"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// evalConfig evaluates a module config declaration's initializer.
func (m *Machine) evalConfig(t *task, cfg *ast.VarDecl) Value {
	if cfg.Init == nil {
		return zeroValue(cfg.Type)
	}
	return m.eval(t, cfg.Init)
}

// eval evaluates an expression in the task's environment. Reads of sync
// variables block per readFE/readFF semantics; reads of dead cells record
// use-after-free events but still return the stale value (the program
// keeps running, as a real racy execution would).
func (m *Machine) eval(t *task, e ast.Expr) Value {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntV(x.Value)
	case *ast.BoolLit:
		return BoolV(x.Value)
	case *ast.StringLit:
		return StringV(x.Value)
	case *ast.Ident:
		return m.evalIdent(t, x)
	case *ast.UnaryExpr:
		v := m.eval(t, x.X)
		switch x.Op {
		case "!":
			return BoolV(!v.Truthy())
		case "-":
			return IntV(-v.I)
		}
		return v
	case *ast.BinaryExpr:
		return m.evalBinary(t, x)
	case *ast.RangeExpr:
		// Ranges only appear in for headers; evaluating one directly
		// yields its low bound.
		return m.eval(t, x.Lo)
	case *ast.CallExpr:
		return m.evalCall(t, x)
	case *ast.MethodCallExpr:
		return m.evalMethod(t, x)
	}
	return Value{}
}

func (m *Machine) evalIdent(t *task, x *ast.Ident) Value {
	s := m.info.Uses[x]
	if s == nil {
		return Value{}
	}
	switch {
	case s.Type.Qual == ast.QualSync:
		return m.readFE(t, s, x.Sp)
	case s.Type.Qual == ast.QualSingle:
		return m.readFF(t, s, x.Sp)
	case s.IsAtomic():
		if ac := t.env.atomicCell(s); ac != nil {
			m.atomicHB(t, ac)
			return IntV(ac.Val)
		}
		return IntV(0)
	}
	c := t.env.cell(s)
	if c == nil {
		return Value{}
	}
	m.checkCell(t, c, x.Sp, false)
	return c.Val
}

func (m *Machine) evalBinary(t *task, x *ast.BinaryExpr) Value {
	a := m.eval(t, x.X)
	b := m.eval(t, x.Y)
	switch x.Op {
	case "+":
		if a.Kind == KString || b.Kind == KString {
			return StringV(a.String() + b.String())
		}
		return IntV(a.I + b.I)
	case "-":
		return IntV(a.I - b.I)
	case "*":
		return IntV(a.I * b.I)
	case "/":
		if b.I == 0 {
			m.res.RuntimeErrors = append(m.res.RuntimeErrors, "division by zero")
			return IntV(0)
		}
		return IntV(a.I / b.I)
	case "%":
		if b.I == 0 {
			m.res.RuntimeErrors = append(m.res.RuntimeErrors, "modulo by zero")
			return IntV(0)
		}
		return IntV(a.I % b.I)
	case "==":
		return BoolV(valueEq(a, b))
	case "!=":
		return BoolV(!valueEq(a, b))
	case "<":
		return BoolV(a.I < b.I)
	case "<=":
		return BoolV(a.I <= b.I)
	case ">":
		return BoolV(a.I > b.I)
	case ">=":
		return BoolV(a.I >= b.I)
	case "&&":
		return BoolV(a.Truthy() && b.Truthy())
	case "||":
		return BoolV(a.Truthy() || b.Truthy())
	}
	return Value{}
}

func valueEq(a, b Value) bool {
	if a.Kind != b.Kind {
		return a.I == b.I
	}
	switch a.Kind {
	case KInt:
		return a.I == b.I
	case KBool:
		return a.B == b.B
	default:
		return a.S == b.S
	}
}

func (m *Machine) evalCall(t *task, x *ast.CallExpr) Value {
	if sym.IsBuiltin(x.Fun.Name) {
		return m.evalBuiltin(t, x)
	}
	callee := m.info.Uses[x.Fun]
	if callee == nil || callee.Proc == nil {
		return Value{}
	}
	proc := callee.Proc
	args := make([]argVal, 0, len(x.Args))
	for i, a := range x.Args {
		byRef := i < len(proc.Params) && proc.Params[i].ByRef
		if byRef {
			if id, ok := a.(*ast.Ident); ok {
				if s := m.info.Uses[id]; s != nil {
					if c := t.env.cell(s); c != nil {
						args = append(args, argVal{cell: c})
						continue
					}
				}
			}
		}
		args = append(args, argVal{val: m.eval(t, a)})
	}
	return m.callProc(t, proc, args)
}

func (m *Machine) evalBuiltin(t *task, x *ast.CallExpr) Value {
	switch x.Fun.Name {
	case "writeln", "write":
		var parts []string
		for _, a := range x.Args {
			parts = append(parts, m.eval(t, a).String())
		}
		if m.cfg.CaptureOutput {
			m.res.Output = append(m.res.Output, strings.Join(parts, ""))
		}
		return Value{}
	case "assert":
		if len(x.Args) > 0 && !m.eval(t, x.Args[0]).Truthy() {
			m.res.RuntimeErrors = append(m.res.RuntimeErrors,
				fmt.Sprintf("assertion failed at line %d", m.line(x.Sp)))
		}
		return Value{}
	case "sleep":
		// Compute delay: a scheduling point with no semantic effect.
		m.yield(t)
		return Value{}
	}
	return Value{}
}

func (m *Machine) evalMethod(t *task, x *ast.MethodCallExpr) Value {
	recv := m.info.Uses[x.Recv]
	if recv == nil {
		return Value{}
	}
	var arg Value
	if len(x.Args) > 0 {
		arg = m.eval(t, x.Args[0])
	}
	switch {
	case recv.Type.Qual == ast.QualSync:
		switch x.Method {
		case "readFE":
			return m.readFE(t, recv, x.Sp)
		case "writeEF", "writeXF":
			m.writeEF(t, recv, arg, x.Sp)
			return Value{}
		case "reset":
			if sc := t.env.syncCell(recv); sc != nil {
				sc.Full = false
				m.stateVer++
			}
			return Value{}
		case "isFull":
			if sc := t.env.syncCell(recv); sc != nil {
				return BoolV(sc.Full)
			}
			return BoolV(false)
		}
	case recv.Type.Qual == ast.QualSingle:
		switch x.Method {
		case "readFF":
			return m.readFF(t, recv, x.Sp)
		case "writeEF":
			m.writeEF(t, recv, arg, x.Sp)
			return Value{}
		case "isFull":
			if sc := t.env.syncCell(recv); sc != nil {
				return BoolV(sc.Full)
			}
			return BoolV(false)
		}
	case recv.IsAtomic():
		ac := t.env.atomicCell(recv)
		if ac == nil {
			return IntV(0)
		}
		m.atomicHB(t, ac)
		switch x.Method {
		case "read":
			return IntV(ac.Val)
		case "write":
			ac.Val = arg.I
			m.stateVer++
			return Value{}
		case "add":
			ac.Val += arg.I
			m.stateVer++
			return Value{}
		case "sub":
			ac.Val -= arg.I
			m.stateVer++
			return Value{}
		case "fetchAdd":
			old := ac.Val
			ac.Val += arg.I
			m.stateVer++
			return IntV(old)
		case "fetchSub":
			old := ac.Val
			ac.Val -= arg.I
			m.stateVer++
			return IntV(old)
		case "compareExchange":
			var want int64
			if len(x.Args) > 1 {
				want = m.eval(t, x.Args[1]).I
			}
			if ac.Val == arg.I {
				ac.Val = want
				m.stateVer++
				return BoolV(true)
			}
			return BoolV(false)
		case "waitFor":
			for ac.Val != arg.I {
				m.block(t, fmt.Sprintf("%s.waitFor(%d)", recv.Name, arg.I))
				ac = t.env.atomicCell(recv)
				if ac == nil {
					return Value{}
				}
			}
			m.atomicHB(t, ac)
			return Value{}
		}
	}
	return Value{}
}

// ---------------------------------------------------------------- sync

func (m *Machine) syncCellOf(t *task, s *sym.Symbol, sp source.Span) *SyncCell {
	sc := t.env.syncCell(s)
	if sc == nil {
		m.res.RuntimeErrors = append(m.res.RuntimeErrors,
			fmt.Sprintf("sync variable %s unbound at line %d", s.Name, m.file.Line(sp.Start)))
	}
	return sc
}

// readFE blocks until full, returns the value and empties the variable.
func (m *Machine) readFE(t *task, s *sym.Symbol, sp source.Span) Value {
	sc := m.syncCellOf(t, s, sp)
	if sc == nil {
		return Value{}
	}
	for !sc.Full {
		m.block(t, "readFE("+s.Name+")")
	}
	sc.Full = false
	m.stateVer++
	if m.cfg.DetectRaces && sc.clock != nil {
		t.clock.join(sc.clock)
		t.tick()
	}
	m.trace(t, "readFE(%s) -> empty", s.Name)
	return sc.Val
}

// readFF blocks until full and retains the full state.
func (m *Machine) readFF(t *task, s *sym.Symbol, sp source.Span) Value {
	sc := m.syncCellOf(t, s, sp)
	if sc == nil {
		return Value{}
	}
	for !sc.Full {
		m.block(t, "readFF("+s.Name+")")
	}
	if m.cfg.DetectRaces && sc.clock != nil {
		t.clock.join(sc.clock)
		t.tick()
	}
	return sc.Val
}

// writeEF blocks until empty, then fills the variable.
func (m *Machine) writeEF(t *task, s *sym.Symbol, v Value, sp source.Span) {
	sc := m.syncCellOf(t, s, sp)
	if sc == nil {
		return
	}
	for sc.Full {
		m.block(t, "writeEF("+s.Name+")")
	}
	if sc.IsSingle && sc.WriteCount > 0 {
		m.res.RuntimeErrors = append(m.res.RuntimeErrors,
			fmt.Sprintf("second write to single variable %s at line %d", s.Name, m.file.Line(sp.Start)))
	}
	sc.Val = v
	sc.Full = true
	sc.WriteCount++
	m.stateVer++
	if m.cfg.DetectRaces {
		// Transfer the writer's history to whoever consumes the value.
		if sc.clock == nil {
			sc.clock = vclock{}
		}
		sc.clock.join(t.clock)
		t.tick()
	}
	m.trace(t, "writeEF(%s) -> full", s.Name)
}
