package runtime

import (
	"os"
	"path/filepath"
	"testing"

	"uafcheck/internal/ast"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func load(t *testing.T, src string) (*ast.Module, *sym.Info) {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("test.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve errors:\n%s", diags)
	}
	return mod, info
}

func loadFile(t *testing.T, name string) (*ast.Module, *sym.Info) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return load(t, string(data))
}

func TestSequentialExecution(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 1;
  x += 2;
  x *= 3;
  writeln("x=", x);
}`)
	r := Run(mod, info, Config{CaptureOutput: true})
	if len(r.UAF) != 0 || r.Deadlock {
		t.Fatalf("unexpected failure: %s", r.Summary())
	}
	if len(r.Output) != 1 || r.Output[0] != "x=9" {
		t.Fatalf("output = %q, want [x=9]", r.Output)
	}
}

func TestSyncVariableOrdersTasks(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) {
    x = 42;
    done$ = true;
  }
  done$;
  writeln(x);
}`)
	// Under every schedule the parent reads x only after the task wrote
	// it: the output must always be 42 and there is never a UAF.
	for seed := int64(0); seed < 20; seed++ {
		r := Run(mod, info, Config{CaptureOutput: true, Policy: NewRandomPolicy(seed)})
		if r.Deadlock || len(r.UAF) != 0 {
			t.Fatalf("seed %d: %s", seed, r.Summary())
		}
		if len(r.Output) != 1 || r.Output[0] != "42" {
			t.Fatalf("seed %d: output %q, want [42]", seed, r.Output)
		}
	}
}

func TestUnsynchronizedTaskTriggersUAF(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 7;
  begin with (ref x) {
    writeln(x);
  }
}`)
	er := ExploreExhaustive(mod, info, "", 10000)
	if er.Truncated {
		t.Fatalf("exploration truncated after %d runs", er.Runs)
	}
	if len(er.UAF) != 1 {
		t.Fatalf("UAF sites = %v, want exactly the writeln(x) access", er.UAF)
	}
	for _, e := range er.UAF {
		if e.Var != "x" {
			t.Errorf("UAF var = %s, want x", e.Var)
		}
	}
}

func TestInIntentCopyIsSafe(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 7;
  begin with (in x) {
    writeln(x);
  }
}`)
	er := ExploreExhaustive(mod, info, "", 10000)
	if len(er.UAF) != 0 {
		t.Fatalf("in-intent copy produced UAF: %v", er.UAF)
	}
}

func TestSyncBlockProtects(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 7;
  sync {
    begin with (ref x) {
      x = 8;
    }
  }
  writeln(x);
}`)
	er := ExploreExhaustive(mod, info, "", 20000)
	if len(er.UAF) != 0 {
		t.Fatalf("sync block failed to protect: %v", er.UAF)
	}
	if er.Deadlocks != 0 {
		t.Fatalf("unexpected deadlocks: %d", er.Deadlocks)
	}
}

func TestSyncBlockWaitsTransitively(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 7;
  sync {
    begin with (ref x) {
      begin with (ref x) {
        x = 9;
      }
    }
  }
  writeln(x);
}`)
	er := ExploreExhaustive(mod, info, "", 50000)
	if len(er.UAF) != 0 {
		t.Fatalf("transitive sync fence failed: %v", er.UAF)
	}
}

// TestFigure1DynamicOracle confirms the paper's claim dynamically: the
// TASK B access can fire after the scope exits in some schedule, while
// TASK A's accesses never do.
func TestFigure1DynamicOracle(t *testing.T) {
	mod, info := loadFile(t, "figure1.chpl")
	er := ExploreExhaustive(mod, info, "outerVarUse", 200000)
	if er.Truncated {
		t.Logf("exploration truncated after %d runs (still a valid lower bound)", er.Runs)
	}
	// The dangerous access is the writeln(x) in TASK B.
	found := false
	for _, e := range er.UAF {
		if e.Var != "x" {
			t.Errorf("unexpected UAF on %s", e.Var)
		}
		if e.Task == "TASK B" {
			found = true
		} else {
			t.Errorf("UAF observed in %s, expected only TASK B: %+v", e.Task, e)
		}
	}
	if !found {
		t.Errorf("dynamic oracle did not confirm the TASK B use-after-free (runs=%d)", er.Runs)
	}
}

// TestFigure1SafeVariantDynamic: the swapped-wait variant never triggers
// a use-after-free under any schedule.
func TestFigure1SafeVariantDynamic(t *testing.T) {
	mod, info := loadFile(t, "figure1_safe.chpl")
	er := ExploreExhaustive(mod, info, "outerVarUseSafe", 200000)
	if len(er.UAF) != 0 {
		t.Fatalf("safe variant triggered UAF: %v", er.UAF)
	}
}

func TestDeadlockDetected(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var a$: sync bool;
  a$; // readFE on an empty variable that no one fills
}`)
	r := Run(mod, info, Config{})
	if !r.Deadlock {
		t.Fatalf("expected deadlock, got %s", r.Summary())
	}
}

func TestAtomicWaitForSynchronizes(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 0;
  var f: atomic int;
  begin with (ref x) {
    x = 5;
    f.write(1);
  }
  f.waitFor(1);
  writeln(x);
}`)
	for seed := int64(0); seed < 30; seed++ {
		r := Run(mod, info, Config{CaptureOutput: true, Policy: NewRandomPolicy(seed)})
		if len(r.UAF) != 0 || r.Deadlock {
			t.Fatalf("seed %d: %s", seed, r.Summary())
		}
		if len(r.Output) != 1 || r.Output[0] != "5" {
			t.Fatalf("seed %d: output %q", seed, r.Output)
		}
	}
}

func TestSingleVariableDoubleWriteReported(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var s$: single bool;
  s$.writeEF(true);
  var v: bool = s$.readFF();
  writeln(v);
}`)
	r := Run(mod, info, Config{CaptureOutput: true})
	if len(r.RuntimeErrors) != 0 {
		t.Fatalf("unexpected errors: %v", r.RuntimeErrors)
	}
	if len(r.Output) != 1 || r.Output[0] != "true" {
		t.Fatalf("output %q", r.Output)
	}
}

func TestNestedProcHiddenAccessUAF(t *testing.T) {
	// The hidden outer access pattern of §I: a nested proc reads x; the
	// begin task calls it without passing x.
	mod, info := load(t, `
proc main() {
  var x: int = 3;
  proc peek() {
    writeln(x);
  }
  begin {
    peek();
  }
}`)
	er := ExploreExhaustive(mod, info, "", 10000)
	if len(er.UAF) != 1 {
		t.Fatalf("hidden nested-proc access not caught: %v", er.UAF)
	}
}

func TestExploreRandomReproducible(t *testing.T) {
	mod, info := loadFile(t, "figure1.chpl")
	a := ExploreRandom(mod, info, "outerVarUse", 50, 1)
	b := ExploreRandom(mod, info, "outerVarUse", 50, 1)
	if len(a.UAF) != len(b.UAF) {
		t.Fatalf("same seed diverged: %d vs %d UAF sites", len(a.UAF), len(b.UAF))
	}
}
