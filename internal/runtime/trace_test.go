package runtime

import (
	"strings"
	"testing"
)

// TestExecutionTrace: the event log records spawns, sync transitions,
// blocking and use-after-free hits in schedule order.
func TestExecutionTrace(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) {
    x = 1;
    done$ = true;
  }
  done$;
  writeln(x);
}`)
	r := Run(mod, info, Config{Trace: true})
	log := strings.Join(r.Trace, "\n")
	for _, want := range []string{
		"[main] spawn TASK A",
		"[TASK A] writeEF(done$) -> full",
		"[main] readFE(done$) -> empty",
		"[TASK A] task exits",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("trace missing %q:\n%s", want, log)
		}
	}
}

func TestTraceRecordsBlockingAndUAF(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 0;
  begin with (ref x) {
    writeln(x);
  }
}`)
	// Force the racy schedule: main runs to completion first (index 0 is
	// main at every decision), then the task.
	r := Run(mod, info, Config{Trace: true, Policy: &replayPolicy{}})
	log := strings.Join(r.Trace, "\n")
	if !strings.Contains(log, "USE-AFTER-FREE x") {
		t.Errorf("trace missing the UAF event:\n%s", log)
	}

	mod2, info2 := load(t, `
proc main() {
  var g$: sync bool;
  begin {
    g$ = true;
  }
  g$;
}`)
	r = Run(mod2, info2, Config{Trace: true, Policy: &replayPolicy{}})
	log = strings.Join(r.Trace, "\n")
	if !strings.Contains(log, "blocked on readFE(g$)") {
		t.Errorf("trace missing the blocking event:\n%s", log)
	}
}

// TestTraceOffByDefault: no events are collected unless asked for.
func TestTraceOffByDefault(t *testing.T) {
	mod, info := load(t, `proc main() { var x: int = 1; writeln(x); }`)
	r := Run(mod, info, Config{})
	if len(r.Trace) != 0 {
		t.Errorf("trace collected without Config.Trace: %v", r.Trace)
	}
}
