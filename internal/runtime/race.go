package runtime

import "fmt"

// The dynamic race detector: vector clocks track the happens-before
// order induced by task creation, sync-variable transfers, sync-block
// fences and atomic operations. Two accesses to the same plain variable
// race when they are unordered and at least one writes. This extends the
// oracle beyond use-after-free into the §VI related-work territory
// (static race detection) — dynamically, on the same interpreter.
//
// The design follows the classic vector-clock discipline:
//
//   - spawn: the child inherits a copy of the parent's clock; the parent
//     then advances its own component;
//   - writeEF transfers the writer's clock into the sync cell; readFE /
//     readFF join it into the reader (message-passing edge);
//   - atomic cells behave like SC variables: every operation joins the
//     cell clock into the task and the task clock into the cell;
//   - a sync-block fence joins the exit clocks of every task the group
//     waited for.

// vclock is a sparse vector clock keyed by task ID.
type vclock map[int]int

func (v vclock) clone() vclock {
	out := make(vclock, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// join folds other into v (pointwise max).
func (v vclock) join(other vclock) {
	for k, x := range other {
		if x > v[k] {
			v[k] = x
		}
	}
}

// leq reports v ≤ other pointwise (v happened before or equals other).
func (v vclock) leq(other vclock) bool {
	for k, x := range v {
		if x > other[k] {
			return false
		}
	}
	return true
}

// accessStamp records one access for race checking.
type accessStamp struct {
	clock vclock
	task  string
	line  int
}

// RaceEvent is one detected data race on a plain variable.
type RaceEvent struct {
	Var string
	// First/Second describe the two unordered accesses.
	FirstTask  string
	FirstLine  int
	SecondTask string
	SecondLine int
	// Write marks whether the SECOND access is a write.
	Write bool
}

// Key identifies the race site pair (order-normalized).
func (e RaceEvent) Key() string {
	a := fmt.Sprintf("%s:%d", e.Var, e.FirstLine)
	b := fmt.Sprintf("%s:%d", e.Var, e.SecondLine)
	if a > b {
		a, b = b, a
	}
	return a + "/" + b
}

// raceState is the per-cell detector state.
type raceState struct {
	lastWrite *accessStamp
	// reads holds the most recent read per task.
	reads map[string]*accessStamp
}

// onAccess checks and records an access under the task's current clock.
func (m *Machine) onAccess(t *task, c *Cell, line int, write bool) {
	if !m.cfg.DetectRaces {
		return
	}
	st := m.raceCells[c]
	if st == nil {
		st = &raceState{reads: make(map[string]*accessStamp)}
		m.raceCells[c] = st
	}
	cur := t.clock
	report := func(prev *accessStamp) {
		ev := RaceEvent{
			Var:        c.Name,
			FirstTask:  prev.task,
			FirstLine:  prev.line,
			SecondTask: t.label,
			SecondLine: line,
			Write:      write,
		}
		if !m.raceSeen[ev.Key()] {
			m.raceSeen[ev.Key()] = true
			m.res.Races = append(m.res.Races, ev)
		}
	}
	if st.lastWrite != nil && !st.lastWrite.clock.leq(cur) {
		// Unordered with the previous write: read-write or write-write
		// race.
		report(st.lastWrite)
	}
	if write {
		for _, r := range st.reads {
			if !r.clock.leq(cur) {
				report(r)
			}
		}
		st.lastWrite = &accessStamp{clock: cur.clone(), task: t.label, line: line}
		st.reads = make(map[string]*accessStamp)
		return
	}
	st.reads[t.label] = &accessStamp{clock: cur.clone(), task: t.label, line: line}
}

// tick advances the task's own clock component.
func (t *task) tick() {
	t.clock[t.id]++
}

// atomicHB makes an atomic operation a sequentially-consistent
// synchronization point: the cell and the task exchange histories.
func (m *Machine) atomicHB(t *task, ac *AtomicCell) {
	if !m.cfg.DetectRaces || ac == nil {
		return
	}
	if ac.clock == nil {
		ac.clock = vclock{}
	}
	t.clock.join(ac.clock)
	ac.clock.join(t.clock)
	t.tick()
}
