// Package runtime executes MiniChapel programs with real fire-and-forget
// task semantics: a cooperative scheduler interleaves begin tasks, sync
// and single variables block with full/empty semantics, sync blocks fence
// transitively, atomics spin, and — crucially — lexical scopes deallocate
// when their block exits while child tasks may still be running.
//
// Every access to a deallocated cell is recorded as a use-after-free
// event. Running many seeded schedules (or exhaustively enumerating
// schedules for small programs) yields the dynamic oracle that replaces
// the paper's manual verification of true positives (§V).
package runtime

import "fmt"

// Kind tags a Value.
type Kind int

const (
	// KInt is a 64-bit integer.
	KInt Kind = iota
	// KBool is a boolean.
	KBool
	// KString is a string.
	KString
)

// Value is a MiniChapel runtime value.
type Value struct {
	Kind Kind
	I    int64
	B    bool
	S    string
}

// IntV makes an integer value.
func IntV(i int64) Value { return Value{Kind: KInt, I: i} }

// BoolV makes a boolean value.
func BoolV(b bool) Value { return Value{Kind: KBool, B: b} }

// StringV makes a string value.
func StringV(s string) Value { return Value{Kind: KString, S: s} }

// Truthy interprets the value as a condition.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KBool:
		return v.B
	case KInt:
		return v.I != 0
	default:
		return v.S != ""
	}
}

// String renders the value as writeln would.
func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KBool:
		return fmt.Sprintf("%t", v.B)
	default:
		return v.S
	}
}

// Cell is one storage location. Begin tasks capturing a variable by
// reference share the cell; when the declaring scope exits the cell is
// marked dead and later accesses are use-after-free.
type Cell struct {
	Val  Value
	Dead bool
	Name string
	// DeclLine is the source line of the declaration (reports).
	DeclLine int
}

// SyncCell is the runtime state of a sync or single variable.
type SyncCell struct {
	Full     bool
	Val      Value
	IsSingle bool
	// WriteCount detects prohibited second writes to single variables.
	WriteCount int
	Name       string
	// clock carries the happens-before edge from writer to reader.
	clock vclock
}

// AtomicCell is the runtime state of an atomic variable.
type AtomicCell struct {
	Val  int64
	Name string
	// clock makes atomic operations sequentially-consistent sync points.
	clock vclock
}
