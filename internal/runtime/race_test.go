package runtime

import (
	"testing"
)

// raceExplore runs bounded exploration with race detection and collects
// the distinct race keys observed across schedules.
func raceExplore(t *testing.T, src, entry string) map[string]bool {
	t.Helper()
	mod, info := load(t, src)
	out := make(map[string]bool)
	// Exhaustive DFS with race detection: replay prefixes like
	// ExploreExhaustive but with DetectRaces on.
	type job struct{ prefix []int }
	stack := []job{{}}
	runs := 0
	for len(stack) > 0 && runs < 20000 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := Run(mod, info, Config{
			Entry:       entry,
			DetectRaces: true,
			Policy:      &replayPolicy{prefix: j.prefix},
		})
		runs++
		for _, e := range r.Races {
			out[e.Key()] = true
		}
		for i := len(j.prefix); i < len(r.Decisions); i++ {
			for alt := r.Decisions[i] + 1; alt < r.Alternatives[i]; alt++ {
				np := make([]int, i+1)
				copy(np, r.Decisions[:i])
				np[i] = alt
				stack = append(stack, job{prefix: np})
			}
		}
	}
	return out
}

// TestRaceUnsyncedWrites: two tasks increment the same variable with no
// ordering — a write-write race.
func TestRaceUnsyncedWrites(t *testing.T) {
	races := raceExplore(t, `
proc main() {
  var x: int = 0;
  var da$: sync bool;
  var db$: sync bool;
  begin with (ref x) { x = x + 1; da$ = true; }
  begin with (ref x) { x = x + 1; db$ = true; }
  da$;
  db$;
}`, "main")
	if len(races) == 0 {
		t.Fatal("unsynchronized concurrent increments produced no race")
	}
}

// TestNoRaceWaitChain: the token chain orders the task's write before the
// parent's read.
func TestNoRaceWaitChain(t *testing.T) {
	races := raceExplore(t, `
proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) {
    x = 42;
    done$ = true;
  }
  done$;
  writeln(x);
}`, "main")
	if len(races) != 0 {
		t.Fatalf("wait chain reported racy: %v", races)
	}
}

// TestNoRaceSyncBlock: the fence orders everything inside before the
// parent's continuation.
func TestNoRaceSyncBlock(t *testing.T) {
	races := raceExplore(t, `
proc main() {
  var x: int = 0;
  sync {
    begin with (ref x) { x = 1; }
  }
  writeln(x);
}`, "main")
	if len(races) != 0 {
		t.Fatalf("fence reported racy: %v", races)
	}
}

// TestNoRaceAtomicHandshake: the atomic waitFor induces happens-before —
// the detector must honor it even though the STATIC analysis does not.
func TestNoRaceAtomicHandshake(t *testing.T) {
	races := raceExplore(t, `
proc main() {
  var x: int = 0;
  var f: atomic int;
  begin with (ref x) {
    x = 9;
    f.write(1);
  }
  f.waitFor(1);
  writeln(x);
}`, "main")
	if len(races) != 0 {
		t.Fatalf("atomic handshake reported racy: %v", races)
	}
}

// TestRaceReadVsWrite: a parent read unordered with a task write races.
func TestRaceReadVsWrite(t *testing.T) {
	races := raceExplore(t, `
proc main() {
  var x: int = 0;
  var done$: sync bool;
  begin with (ref x) {
    x = 1;
    done$ = true;
  }
  writeln(x);
  done$;
}`, "main")
	if len(races) == 0 {
		t.Fatal("parent read racing the task write not detected")
	}
}

// TestRaceDetectionOffByDefault: no race machinery runs unless enabled.
func TestRaceDetectionOffByDefault(t *testing.T) {
	mod, info := load(t, `
proc main() {
  var x: int = 0;
  begin with (ref x) { x = 1; }
  writeln(x);
}`)
	r := Run(mod, info, Config{})
	if len(r.Races) != 0 {
		t.Fatalf("races recorded without DetectRaces: %v", r.Races)
	}
}

// TestSingleBroadcastNoRaceOnReads: many readers of a single variable are
// race-free among themselves and with the writer.
func TestSingleBroadcastNoRaceOnReads(t *testing.T) {
	races := raceExplore(t, `
proc main() {
  var x: int = 7;
  var go$: single bool;
  var d1$: sync bool;
  var d2$: sync bool;
  begin {
    go$.readFF();
    writeln(x);
    d1$ = true;
  }
  begin {
    go$.readFF();
    writeln(x);
    d2$ = true;
  }
  go$.writeEF(true);
  d1$;
  d2$;
}`, "main")
	if len(races) != 0 {
		t.Fatalf("read-only sharing reported racy: %v", races)
	}
}
