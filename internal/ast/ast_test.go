package ast

import (
	"strings"
	"testing"

	"uafcheck/internal/source"
)

// buildModule constructs a small tree by hand so this package's tests do
// not depend on the parser.
func buildModule() *Module {
	file := source.NewFile("hand.chpl", "")
	x := &Ident{Name: "x"}
	inner := &BeginStmt{
		Label: "TASK B",
		Body:  &BlockStmt{Stmts: []Stmt{&ExprStmt{X: &Ident{Name: "x"}}}},
	}
	outer := &BeginStmt{
		Label: "TASK A",
		With:  []WithClause{{Intent: IntentRef, Name: &Ident{Name: "x"}}},
		Body: &BlockStmt{Stmts: []Stmt{
			inner,
			&AssignStmt{Lhs: &Ident{Name: "x"}, Op: "+=", Rhs: &IntLit{Value: 1}},
		}},
	}
	proc := &ProcDecl{
		Name: &Ident{Name: "f"},
		Ret:  Type{Kind: TypeVoid},
		Body: &BlockStmt{Stmts: []Stmt{
			&VarDecl{Name: x, Type: Type{Kind: TypeInt}, Init: &IntLit{Value: 10}},
			outer,
			&IfStmt{
				Cond: &BinaryExpr{Op: ">", X: &Ident{Name: "x"}, Y: &IntLit{Value: 0}},
				Then: &BlockStmt{Stmts: []Stmt{&CallStmt{X: &CallExpr{
					Fun: &Ident{Name: "writeln"}, Args: []Expr{&Ident{Name: "x"}},
				}}}},
			},
		}},
	}
	return &Module{File: file, Procs: []*ProcDecl{proc}}
}

func TestCountBegins(t *testing.T) {
	m := buildModule()
	if got := CountBegins(m); got != 2 {
		t.Errorf("CountBegins = %d, want 2 (nested counted)", got)
	}
	if !HasBegin(m) {
		t.Error("HasBegin = false")
	}
	if HasBegin(&IntLit{Value: 1}) {
		t.Error("HasBegin(lit) = true")
	}
}

func TestWalkPreOrderAndPrune(t *testing.T) {
	m := buildModule()
	var order []string
	Walk(m, func(n Node) bool {
		switch x := n.(type) {
		case *ProcDecl:
			order = append(order, "proc:"+x.Name.Name)
		case *BeginStmt:
			order = append(order, "begin:"+x.Label)
		case *VarDecl:
			order = append(order, "var:"+x.Name.Name)
		}
		return true
	})
	want := []string{"proc:f", "var:x", "begin:TASK A", "begin:TASK B"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}

	// Prune: refusing to descend into begins hides the nested one.
	count := 0
	Walk(m, func(n Node) bool {
		if _, ok := n.(*BeginStmt); ok {
			count++
			return false
		}
		return true
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d begins, want 1", count)
	}
}

func TestWalkNilSafe(t *testing.T) {
	Walk(nil, func(Node) bool { return true }) // must not panic
}

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{Type{Kind: TypeInt}, "int"},
		{Type{Qual: QualSync, Kind: TypeBool}, "sync bool"},
		{Type{Qual: QualSingle, Kind: TypeInt}, "single int"},
		{Type{Qual: QualAtomic, Kind: TypeInt}, "atomic int"},
		{Type{Kind: TypeVoid}, "void"},
		{Type{Kind: TypeString}, "string"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("Type%v = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestIntentString(t *testing.T) {
	if IntentRef.String() != "ref" || IntentIn.String() != "in" {
		t.Error("intent strings wrong")
	}
}

func TestPrintStmtForms(t *testing.T) {
	cases := []struct {
		stmt Stmt
		want string
	}{
		{&VarDecl{Name: &Ident{Name: "d$"}, Type: Type{Qual: QualSync, Kind: TypeBool}},
			"var d$: sync bool;"},
		{&AssignStmt{Lhs: &Ident{Name: "x"}, Op: "=", Rhs: &IntLit{Value: 3}},
			"x = 3;"},
		{&IncDecStmt{X: &Ident{Name: "x"}, Op: "++"}, "x++;"},
		{&ReturnStmt{Value: &BoolLit{Value: true}}, "return true;"},
		{&ReturnStmt{}, "return;"},
		{&ExprStmt{X: &Ident{Name: "done$"}}, "done$;"},
	}
	for _, c := range cases {
		if got := PrintStmt(c.stmt); got != c.want {
			t.Errorf("PrintStmt = %q, want %q", got, c.want)
		}
	}
}

func TestPrintExprForms(t *testing.T) {
	e := &MethodCallExpr{Recv: &Ident{Name: "a"}, Method: "fetchAdd",
		Args: []Expr{&IntLit{Value: 1}}}
	if got := PrintExpr(e); got != "a.fetchAdd(1)" {
		t.Errorf("PrintExpr = %q", got)
	}
	r := &RangeExpr{Lo: &IntLit{Value: 1}, Hi: &Ident{Name: "n"}}
	if got := PrintExpr(r); got != "1..n" {
		t.Errorf("range = %q", got)
	}
	s := &StringLit{Value: "hi\tthere"}
	if got := PrintExpr(s); got != `"hi\tthere"` {
		t.Errorf("string = %q", got)
	}
	u := &UnaryExpr{Op: "!", X: &BoolLit{Value: false}}
	if got := PrintExpr(u); got != "!false" {
		t.Errorf("unary = %q", got)
	}
}

func TestPrintModuleWithBegin(t *testing.T) {
	m := buildModule()
	out := Print(m)
	for _, want := range []string{
		"proc f() {",
		"var x: int = 10;",
		"begin with (ref x) {",
		"begin {",
		"x += 1;",
		"if ((x > 0)) {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Print missing %q:\n%s", want, out)
		}
	}
}
