package ast

// Visitor is called for every node during Walk; returning false prunes the
// subtree below the node.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in source order, calling v for each
// node before its children.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch x := n.(type) {
	case *Module:
		for _, c := range x.Configs {
			Walk(c, v)
		}
		for _, p := range x.Procs {
			Walk(p, v)
		}
	case *ProcDecl:
		for _, p := range x.Params {
			Walk(p.Name, v)
		}
		Walk(x.Body, v)
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(s, v)
		}
	case *VarDecl:
		Walk(x.Name, v)
		if x.Init != nil {
			Walk(x.Init, v)
		}
	case *AssignStmt:
		Walk(x.Lhs, v)
		Walk(x.Rhs, v)
	case *IncDecStmt:
		Walk(x.X, v)
	case *ExprStmt:
		Walk(x.X, v)
	case *CallStmt:
		Walk(x.X, v)
	case *BeginStmt:
		for _, w := range x.With {
			Walk(w.Name, v)
		}
		Walk(x.Body, v)
	case *SyncStmt:
		Walk(x.Body, v)
	case *IfStmt:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		if x.Else != nil {
			Walk(x.Else, v)
		}
	case *WhileStmt:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *ForStmt:
		Walk(x.Var, v)
		Walk(x.Range, v)
		Walk(x.Body, v)
	case *ReturnStmt:
		if x.Value != nil {
			Walk(x.Value, v)
		}
	case *ProcStmt:
		Walk(x.Proc, v)
	case *BinaryExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *UnaryExpr:
		Walk(x.X, v)
	case *CallExpr:
		Walk(x.Fun, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *MethodCallExpr:
		Walk(x.Recv, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *RangeExpr:
		Walk(x.Lo, v)
		Walk(x.Hi, v)
	case *Ident, *IntLit, *BoolLit, *StringLit:
		// Leaves.
	}
}

// CountBegins returns the number of begin statements in the subtree,
// including nested ones.
func CountBegins(n Node) int {
	count := 0
	Walk(n, func(m Node) bool {
		if _, ok := m.(*BeginStmt); ok {
			count++
		}
		return true
	})
	return count
}

// HasBegin reports whether the subtree contains any begin statement.
func HasBegin(n Node) bool { return CountBegins(n) > 0 }
