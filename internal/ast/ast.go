// Package ast defines the abstract syntax tree for MiniChapel.
//
// The tree mirrors the constructs the paper's analysis observes: procedure
// declarations (including nested ones), variable declarations with plain /
// sync / single / atomic types, begin statements with capture intents,
// sync blocks, branches, loops, assignments, sync-variable reads/writes
// and calls.
package ast

import (
	"uafcheck/internal/source"
)

// Node is the common interface of all AST nodes.
type Node interface {
	Span() source.Span
}

// ---------------------------------------------------------------- types

// TypeKind enumerates MiniChapel variable types.
type TypeKind int

const (
	TypeInt TypeKind = iota
	TypeBool
	TypeString
	TypeVoid
)

// String returns the Chapel spelling of the type.
func (t TypeKind) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeString:
		return "string"
	case TypeVoid:
		return "void"
	}
	return "?"
}

// SyncQual is the synchronization qualifier on a variable declaration.
type SyncQual int

const (
	// QualNone marks an ordinary variable.
	QualNone SyncQual = iota
	// QualSync marks a `sync T` variable (full/empty, readFE/writeEF).
	QualSync
	// QualSingle marks a `single T` variable (write-once, readFF).
	QualSingle
	// QualAtomic marks an `atomic T` variable (non-blocking ops).
	QualAtomic
)

// String returns the Chapel spelling of the qualifier.
func (q SyncQual) String() string {
	switch q {
	case QualNone:
		return ""
	case QualSync:
		return "sync"
	case QualSingle:
		return "single"
	case QualAtomic:
		return "atomic"
	}
	return "?"
}

// Type is a (possibly qualified) MiniChapel type.
type Type struct {
	Qual SyncQual
	Kind TypeKind
}

// String returns the Chapel spelling, e.g. "sync bool".
func (t Type) String() string {
	if t.Qual == QualNone {
		return t.Kind.String()
	}
	return t.Qual.String() + " " + t.Kind.String()
}

// ---------------------------------------------------------------- exprs

// Expr is the interface of expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a name reference.
type Ident struct {
	Name string
	Sp   source.Span
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Sp    source.Span
}

// BoolLit is a boolean literal.
type BoolLit struct {
	Value bool
	Sp    source.Span
}

// StringLit is a string literal (value excludes quotes, escapes resolved).
type StringLit struct {
	Value string
	Sp    source.Span
}

// BinaryExpr is a binary operation; Op is a token spelling such as "+".
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Sp   source.Span
}

// UnaryExpr is a prefix operation ("!", "-").
type UnaryExpr struct {
	Op string
	X  Expr
	Sp source.Span
}

// CallExpr is a procedure call f(args...).
type CallExpr struct {
	Fun  *Ident
	Args []Expr
	Sp   source.Span
}

// MethodCallExpr is recv.method(args...) — used for sync-variable
// readFE/readFF/writeEF/writeXF and atomic read/write/fetchAdd etc.
type MethodCallExpr struct {
	Recv   *Ident
	Method string
	Args   []Expr
	Sp     source.Span
}

// RangeExpr is lo..hi, used only in for headers.
type RangeExpr struct {
	Lo, Hi Expr
	Sp     source.Span
}

func (e *Ident) Span() source.Span          { return e.Sp }
func (e *IntLit) Span() source.Span         { return e.Sp }
func (e *BoolLit) Span() source.Span        { return e.Sp }
func (e *StringLit) Span() source.Span      { return e.Sp }
func (e *BinaryExpr) Span() source.Span     { return e.Sp }
func (e *UnaryExpr) Span() source.Span      { return e.Sp }
func (e *CallExpr) Span() source.Span       { return e.Sp }
func (e *MethodCallExpr) Span() source.Span { return e.Sp }
func (e *RangeExpr) Span() source.Span      { return e.Sp }

func (*Ident) exprNode()          {}
func (*IntLit) exprNode()         {}
func (*BoolLit) exprNode()        {}
func (*StringLit) exprNode()      {}
func (*BinaryExpr) exprNode()     {}
func (*UnaryExpr) exprNode()      {}
func (*CallExpr) exprNode()       {}
func (*MethodCallExpr) exprNode() {}
func (*RangeExpr) exprNode()      {}

// ---------------------------------------------------------------- stmts

// Stmt is the interface of statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// VarDecl declares a variable: `[config] (var|const) name : Type [= init];`.
type VarDecl struct {
	Config bool
	Const  bool
	Name   *Ident
	Type   Type
	Init   Expr // may be nil
	Sp     source.Span
}

// AssignStmt is `lhs op rhs;` where op is "=", "+=", "-=", "*=".
// For a sync/single variable on the left, `=` lowers to writeEF.
type AssignStmt struct {
	Lhs *Ident
	Op  string
	Rhs Expr
	Sp  source.Span
}

// IncDecStmt is `x++;` or `x--;`.
type IncDecStmt struct {
	X  *Ident
	Op string // "++" or "--"
	Sp source.Span
}

// ExprStmt is an expression in statement position. A bare sync-variable
// identifier (`doneA$;`) is the Chapel idiom for a blocking readFE and is
// represented as an ExprStmt wrapping an Ident.
type ExprStmt struct {
	X  Expr
	Sp source.Span
}

// CallStmt is a call in statement position: writeln(...), f(...), or a
// method call such as done$.writeEF(true) or count.fetchAdd(1).
type CallStmt struct {
	X  Expr // *CallExpr or *MethodCallExpr
	Sp source.Span
}

// Intent is a begin-with capture intent.
type Intent int

const (
	// IntentRef captures the outer variable by reference (`ref x`);
	// accesses target the original memory location.
	IntentRef Intent = iota
	// IntentIn captures by value (`in x`); the task works on a local
	// copy and all accesses inside the task are safe.
	IntentIn
)

// String returns "ref" or "in".
func (i Intent) String() string {
	if i == IntentIn {
		return "in"
	}
	return "ref"
}

// WithClause is one `ref x` / `in x` entry of a begin's with-list.
type WithClause struct {
	Intent Intent
	Name   *Ident
}

// BeginStmt is `begin [with (...)] { body }` — a fire-and-forget task.
type BeginStmt struct {
	With []WithClause
	Body *BlockStmt
	// Label is a stable display name assigned by the parser ("TASK A",
	// "TASK B", ... in creation order) for readable reports.
	Label string
	Sp    source.Span
}

// SyncStmt is `sync { body }` — a fence that blocks the parent until all
// tasks created inside the block complete.
type SyncStmt struct {
	Body *BlockStmt
	Sp   source.Span
}

// IfStmt is `if (cond) { } [else { }]`.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
	Sp   source.Span
}

// WhileStmt is `while (cond) { }`.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Sp   source.Span
}

// ForStmt is `for i in lo..hi { }`.
type ForStmt struct {
	Var   *Ident
	Range *RangeExpr
	Body  *BlockStmt
	Sp    source.Span
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	Value Expr // may be nil
	Sp    source.Span
}

// BlockStmt is `{ stmts }`. Every block introduces a scope.
type BlockStmt struct {
	Stmts []Stmt
	Sp    source.Span
}

// ProcDecl declares a procedure. Procedures may nest (Chapel function
// nesting, §I); a nested proc can access live variables of its parent.
type ProcDecl struct {
	Name   *Ident
	Params []Param
	Ret    Type
	Body   *BlockStmt
	Sp     source.Span
}

// Param is one formal parameter, optionally by-reference.
type Param struct {
	ByRef bool
	Name  *Ident
	Type  Type
}

// ProcStmt wraps a nested procedure declaration in statement position.
type ProcStmt struct {
	Proc *ProcDecl
	Sp   source.Span
}

func (s *VarDecl) Span() source.Span    { return s.Sp }
func (s *AssignStmt) Span() source.Span { return s.Sp }
func (s *IncDecStmt) Span() source.Span { return s.Sp }
func (s *ExprStmt) Span() source.Span   { return s.Sp }
func (s *CallStmt) Span() source.Span   { return s.Sp }
func (s *BeginStmt) Span() source.Span  { return s.Sp }
func (s *SyncStmt) Span() source.Span   { return s.Sp }
func (s *IfStmt) Span() source.Span     { return s.Sp }
func (s *WhileStmt) Span() source.Span  { return s.Sp }
func (s *ForStmt) Span() source.Span    { return s.Sp }
func (s *ReturnStmt) Span() source.Span { return s.Sp }
func (s *BlockStmt) Span() source.Span  { return s.Sp }
func (s *ProcStmt) Span() source.Span   { return s.Sp }
func (s *ProcDecl) Span() source.Span   { return s.Sp }

func (*VarDecl) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*IncDecStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*CallStmt) stmtNode()   {}
func (*BeginStmt) stmtNode()  {}
func (*SyncStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode() {}
func (*BlockStmt) stmtNode()  {}
func (*ProcStmt) stmtNode()   {}

// ---------------------------------------------------------------- module

// Module is one parsed source file: a list of top-level procedures plus
// top-level config constants.
type Module struct {
	File    *source.File
	Configs []*VarDecl
	Procs   []*ProcDecl
}

// Span covers the whole file.
func (m *Module) Span() source.Span {
	return source.Span{Start: 0, End: source.Pos(len(m.File.Content))}
}

// Proc returns the top-level procedure with the given name, or nil.
func (m *Module) Proc(name string) *ProcDecl {
	for _, p := range m.Procs {
		if p.Name.Name == name {
			return p
		}
	}
	return nil
}
