package ast

import (
	"fmt"
	"strings"
)

// Print renders the module back to MiniChapel source text. The output
// reparses to an equivalent tree; the corpus generator and the tests use
// this for round-trip checks.
func Print(m *Module) string {
	var p printer
	for _, c := range m.Configs {
		p.stmt(c)
	}
	for i, proc := range m.Procs {
		if i > 0 || len(m.Configs) > 0 {
			p.b.WriteByte('\n')
		}
		p.proc(proc)
	}
	return p.b.String()
}

// PrintStmt renders one statement (for diagnostics and tests).
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return strings.TrimRight(p.b.String(), "\n")
}

// PrintExpr renders one expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) proc(d *ProcDecl) {
	var params []string
	for _, prm := range d.Params {
		s := ""
		if prm.ByRef {
			s = "ref "
		}
		params = append(params, fmt.Sprintf("%s%s: %s", s, prm.Name.Name, prm.Type))
	}
	ret := ""
	if d.Ret.Kind != TypeVoid || d.Ret.Qual != QualNone {
		ret = ": " + d.Ret.String()
	}
	p.line("proc %s(%s)%s {", d.Name.Name, strings.Join(params, ", "), ret)
	p.indent++
	for _, s := range d.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) block(b *BlockStmt) {
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *VarDecl:
		kw := "var"
		if x.Const {
			kw = "const"
		}
		if x.Config {
			kw = "config " + kw
		}
		init := ""
		if x.Init != nil {
			init = " = " + PrintExpr(x.Init)
		}
		p.line("%s %s: %s%s;", kw, x.Name.Name, x.Type, init)
	case *AssignStmt:
		p.line("%s %s %s;", x.Lhs.Name, x.Op, PrintExpr(x.Rhs))
	case *IncDecStmt:
		p.line("%s%s;", x.X.Name, x.Op)
	case *ExprStmt:
		p.line("%s;", PrintExpr(x.X))
	case *CallStmt:
		p.line("%s;", PrintExpr(x.X))
	case *BeginStmt:
		with := ""
		if len(x.With) > 0 {
			var cs []string
			for _, w := range x.With {
				cs = append(cs, w.Intent.String()+" "+w.Name.Name)
			}
			with = " with (" + strings.Join(cs, ", ") + ")"
		}
		p.line("begin%s {", with)
		p.block(x.Body)
		p.line("}")
	case *SyncStmt:
		p.line("sync {")
		p.block(x.Body)
		p.line("}")
	case *IfStmt:
		p.line("if (%s) {", PrintExpr(x.Cond))
		p.block(x.Then)
		if x.Else != nil {
			p.line("} else {")
			p.block(x.Else)
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", PrintExpr(x.Cond))
		p.block(x.Body)
		p.line("}")
	case *ForStmt:
		p.line("for %s in %s {", x.Var.Name, PrintExpr(x.Range))
		p.block(x.Body)
		p.line("}")
	case *ReturnStmt:
		if x.Value != nil {
			p.line("return %s;", PrintExpr(x.Value))
		} else {
			p.line("return;")
		}
	case *BlockStmt:
		p.line("{")
		p.block(x)
		p.line("}")
	case *ProcStmt:
		p.proc(x.Proc)
	default:
		p.line("/* ?stmt %T */", s)
	}
}

func (p *printer) expr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		p.b.WriteString(x.Name)
	case *IntLit:
		fmt.Fprintf(&p.b, "%d", x.Value)
	case *BoolLit:
		fmt.Fprintf(&p.b, "%t", x.Value)
	case *StringLit:
		fmt.Fprintf(&p.b, "%q", x.Value)
	case *BinaryExpr:
		p.b.WriteByte('(')
		p.expr(x.X)
		p.b.WriteString(" " + x.Op + " ")
		p.expr(x.Y)
		p.b.WriteByte(')')
	case *UnaryExpr:
		p.b.WriteString(x.Op)
		p.expr(x.X)
	case *CallExpr:
		p.b.WriteString(x.Fun.Name)
		p.args(x.Args)
	case *MethodCallExpr:
		p.b.WriteString(x.Recv.Name + "." + x.Method)
		p.args(x.Args)
	case *RangeExpr:
		p.expr(x.Lo)
		p.b.WriteString("..")
		p.expr(x.Hi)
	default:
		fmt.Fprintf(&p.b, "/* ?expr %T */", e)
	}
}

func (p *printer) args(args []Expr) {
	p.b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.expr(a)
	}
	p.b.WriteByte(')')
}
