package analysis

// Property tests over random task programs for the two transformations
// the paper claims are verdict-preserving:
//
//   - §III-A: "The tasks identified as safe are pruned without affecting
//     the correctness of the analysis."
//   - §III-C: merging PPSes with identical (ASN, state-table) is an
//     optimization — it must not change which accesses are reported.

import (
	"fmt"
	"sort"
	"testing"

	"uafcheck/internal/pps"
	"uafcheck/internal/progen"
)

func warningSet(res *Result) []string {
	var out []string
	for _, w := range res.Warnings() {
		out = append(out, fmt.Sprintf("%s:%d:%s", w.Var, w.AccessLine, w.Task))
	}
	sort.Strings(out)
	return out
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeEquivalenceProperty: the §III-C merge optimization never
// changes the reported warning set.
func TestMergeEquivalenceProperty(t *testing.T) {
	const programs = 150
	differing := 0
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed+5000, progen.Options{})
		merged := AnalyzeSource("p.chpl", src, Options{Prune: true})
		unmerged := AnalyzeSource("p.chpl", src,
			Options{Prune: true, PPS: pps.Options{DisableMerge: true, MaxStates: 1 << 18}})
		if merged.Diags.HasErrors() || unmerged.Diags.HasErrors() {
			continue
		}
		// Skip runs that hit the exploration budget: truncated
		// explorations are allowed to differ.
		incomplete := false
		for _, pr := range append(merged.Procs, unmerged.Procs...) {
			if pr.PPSStats.Incomplete {
				incomplete = true
			}
		}
		if incomplete {
			continue
		}
		a, b := warningSet(merged), warningSet(unmerged)
		if !equalSets(a, b) {
			differing++
			t.Errorf("seed %d: merge changed the verdict set\nmerged:   %v\nunmerged: %v\nprogram:\n%s",
				seed+5000, a, b, src)
			if differing > 2 {
				t.Fatal("stopping after 3 counterexamples")
			}
		}
	}
}

// TestPruneSoundnessProperty: pruning may only REMOVE work, never
// warnings — every warning produced with pruning on must also be
// produced with pruning off, and pruning must not invent warnings
// (the pruned tasks have no tracked accesses by construction).
func TestPruneSoundnessProperty(t *testing.T) {
	const programs = 150
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed+7000, progen.Options{})
		pruned := AnalyzeSource("p.chpl", src, Options{Prune: true})
		unpruned := AnalyzeSource("p.chpl", src, Options{Prune: false})
		if pruned.Diags.HasErrors() || unpruned.Diags.HasErrors() {
			continue
		}
		incomplete := false
		for _, pr := range append(pruned.Procs, unpruned.Procs...) {
			if pr.PPSStats.Incomplete {
				incomplete = true
			}
		}
		if incomplete {
			continue
		}
		a, b := warningSet(pruned), warningSet(unpruned)
		if !equalSets(a, b) {
			t.Fatalf("seed %d: pruning changed the verdict set\npruned:   %v\nunpruned: %v\nprogram:\n%s",
				seed+7000, a, b, src)
		}
	}
}

// TestAtomicExtensionMonotoneProperty: enabling the atomics extension may
// only remove warnings (it adds synchronization knowledge), never add
// any, across random programs with atomic handshakes.
func TestAtomicExtensionMonotoneProperty(t *testing.T) {
	const programs = 120
	for seed := int64(0); seed < programs; seed++ {
		src := progen.Generate(seed+9000, progen.Options{Atomics: true})
		plain := AnalyzeSource("p.chpl", src, Options{Prune: true})
		modeled := AnalyzeSource("p.chpl", src, Options{Prune: true, ModelAtomics: true})
		if plain.Diags.HasErrors() || modeled.Diags.HasErrors() {
			continue
		}
		plainSet := make(map[string]bool)
		for _, s := range warningSet(plain) {
			plainSet[s] = true
		}
		for _, s := range warningSet(modeled) {
			if !plainSet[s] {
				t.Fatalf("seed %d: extension ADDED warning %s\nprogram:\n%s", seed+9000, s, src)
			}
		}
	}
}
