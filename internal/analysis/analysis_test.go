package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck/internal/pps"
	"uafcheck/internal/source"
)

func analyzeTestdata(t *testing.T, name string, opts Options) *Result {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	res := AnalyzeFile(source.NewFile(name, string(data)), opts)
	if res.Diags.HasErrors() {
		t.Fatalf("frontend errors:\n%s", res.Diags)
	}
	return res
}

// TestFigure1Warnings reproduces the paper's headline example: the access
// of x in TASK B is the one potentially dangerous access; the accesses in
// TASK A are safe (the parent waits on doneA$) and TASK C accesses a
// local copy.
func TestFigure1Warnings(t *testing.T) {
	res := analyzeTestdata(t, "figure1.chpl", Options{Prune: true, KeepGraphs: true})
	ws := res.Warnings()
	if len(ws) != 1 {
		t.Fatalf("want exactly 1 warning, got %d:\n%v", len(ws), ws)
	}
	w := ws[0]
	if w.Var != "x" {
		t.Errorf("warned variable = %q, want x", w.Var)
	}
	if w.Task != "TASK B" {
		t.Errorf("warned task = %q, want TASK B", w.Task)
	}
	if w.Reason != pps.AfterFrontier {
		t.Errorf("reason = %v, want after-frontier", w.Reason)
	}
}

// TestFigure1SafeVariant: swapping the wait order (doneB$ consumed before
// doneA$ is filled) creates the wait chain B -> A -> parent, making every
// access safe (§I).
func TestFigure1SafeVariant(t *testing.T) {
	res := analyzeTestdata(t, "figure1_safe.chpl", Options{Prune: true})
	if ws := res.Warnings(); len(ws) != 0 {
		t.Fatalf("want no warnings for the swapped-wait variant, got %d:\n%v", len(ws), ws)
	}
}

// TestFigure1TaskCPruned: TASK C has no outer references (in-intent copy)
// and no sync events; pruning Rule A removes it (§III-A).
func TestFigure1TaskCPruned(t *testing.T) {
	res := analyzeTestdata(t, "figure1.chpl", Options{Prune: true, KeepGraphs: true})
	if len(res.Procs) != 1 {
		t.Fatalf("want 1 analyzed proc, got %d", len(res.Procs))
	}
	g := res.Procs[0].Graph
	pruned := 0
	for _, task := range g.Tasks {
		if task.Pruned {
			pruned++
			if task.Label != "TASK C" {
				t.Errorf("pruned %s, expected only TASK C", task.Label)
			}
		}
	}
	if pruned != 1 {
		t.Errorf("pruned %d tasks, want 1 (TASK C by rule A)", pruned)
	}
}

// TestFigure2CCFGShape checks the structural properties of Figure 2: four
// tasks, four sync nodes, and PF(x) = exactly the root strand's readFE.
func TestFigure2CCFGShape(t *testing.T) {
	res := analyzeTestdata(t, "figure1.chpl", Options{Prune: true, KeepGraphs: true})
	g := res.Procs[0].Graph
	if got := len(g.Tasks); got != 4 {
		t.Errorf("tasks = %d, want 4 (root, A, B, C)", got)
	}
	if got := g.SyncNodeCount(); got != 4 {
		t.Errorf("sync nodes in unpruned tasks = %d, want 4 "+
			"(writeEF doneB$, writeEF doneA$, readFE doneB$, readFE doneA$)", got)
	}
	// PF(x) must be the root strand's readFE(doneA$).
	var pfNodes int
	for _, nodes := range g.PF {
		for _, n := range nodes {
			pfNodes++
			if n.Task.Label != "root" {
				t.Errorf("PF node in task %s, want root strand", n.Task.Label)
			}
			if n.Sync == nil || n.Sync.Op.String() != "readFE" || n.Sync.Sym.Name != "doneA$" {
				t.Errorf("PF node sync = %v, want readFE(doneA$)", n.Sync)
			}
		}
	}
	if pfNodes != 1 {
		t.Errorf("PF node count = %d, want 1 (paper: PF={Node 7})", pfNodes)
	}
	// The graph must render without panicking and mention the pruned
	// task.
	text := g.Text()
	if !strings.Contains(text, "pruned: rule A") {
		t.Errorf("Text() missing pruned TASK C annotation:\n%s", text)
	}
	if dot := g.DOT(); !strings.Contains(dot, "digraph ccfg") {
		t.Errorf("DOT() output malformed")
	}
}

// TestFigure3PPSTrace explores Figure 1 with tracing on and checks the
// invariants of the paper's Figure 3 table: the dangerous access x@TASK B
// appears in the OV set of some sink state, and TASK A's accesses get
// promoted to the safe set via PF(x).
func TestFigure3PPSTrace(t *testing.T) {
	res := analyzeTestdata(t, "figure1.chpl",
		Options{Prune: true, KeepGraphs: true, PPS: pps.Options{Trace: true}})
	r := res.Procs[0].PPS
	if r.Stats.Sinks == 0 {
		t.Fatalf("no sink PPS reached")
	}
	if len(r.Trace) == 0 {
		t.Fatalf("trace empty")
	}
	promoted := false
	for _, row := range r.Trace {
		if strings.Contains(row.Remark, "PF(x)") {
			promoted = true
		}
	}
	if !promoted {
		t.Errorf("no PPS promoted accesses via PF(x); trace:\n%s", pps.FormatTrace(r.Trace))
	}
	if len(r.Unsafe) != 1 {
		t.Errorf("unsafe accesses = %d, want 1", len(r.Unsafe))
	}
}

// TestFigure6Warnings reproduces §III-D: with the branch present, the
// access of x in TASK B is potentially dangerous on the if-taken path.
func TestFigure6Warnings(t *testing.T) {
	res := analyzeTestdata(t, "figure6.chpl", Options{Prune: true, KeepGraphs: true})
	ws := res.Warnings()
	if len(ws) != 1 {
		t.Fatalf("want exactly 1 warning, got %d:\n%v", len(ws), ws)
	}
	if ws[0].Var != "x" || ws[0].Task != "TASK B" {
		t.Errorf("warning = %+v, want x in TASK B", ws[0])
	}
}

// TestFigure7PPSTrace checks the branching exploration of Figure 7: both
// the if-taken and the else initial states are generated, and the unsafe
// access is found only via the if path.
func TestFigure7PPSTrace(t *testing.T) {
	res := analyzeTestdata(t, "figure6.chpl",
		Options{Prune: true, KeepGraphs: true, PPS: pps.Options{Trace: true}})
	r := res.Procs[0].PPS
	initials := 0
	for _, row := range r.Trace {
		if row.TS == 0 {
			initials++
		}
	}
	if initials < 2 {
		t.Errorf("initial PPS count = %d, want >= 2 (if and else paths, paper PPS 0 and PPS 8)", initials)
	}
	if r.Stats.Sinks < 2 {
		t.Errorf("sink count = %d, want >= 2", r.Stats.Sinks)
	}
	if len(r.Unsafe) != 1 {
		t.Errorf("unsafe = %d, want 1", len(r.Unsafe))
	}
}
