package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// render flattens an analysis result into a comparable transcript:
// every diagnostic in emission order plus every warning rendered the
// way the compiler prints it.
func render(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(res.Diags.String())
	for _, pr := range res.Procs {
		for _, w := range pr.Warnings {
			b.WriteString(w.String())
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s nodes=%d tasks=%d pruned=%d states=%d sinks=%d deadlocks=%d atomics=%t\n",
			pr.Proc.Name.Name, pr.GraphStats.Nodes, pr.GraphStats.Tasks,
			pr.GraphStats.PrunedTasks, pr.PPSStats.StatesCreated,
			pr.PPSStats.Sinks, pr.Deadlocks, pr.HasAtomics)
	}
	return b.String()
}

// checkIncr runs the incremental engine against the from-scratch
// pipeline and requires identical transcripts; it returns the traffic.
func checkIncr(t *testing.T, units *Units, src string) IncrStats {
	t.Helper()
	opts := DefaultOptions()
	inc, stats := AnalyzeSourceIncremental("t.chpl", src, opts, units)
	fresh := AnalyzeSource("t.chpl", src, opts)
	if got, want := render(t, inc), render(t, fresh); got != want {
		t.Fatalf("incremental and fresh transcripts differ\nincremental:\n%s\nfresh:\n%s\nsource:\n%s", got, want, src)
	}
	return stats
}

// TestIncrementalSyncedBitInvalidation pins the cross-procedure rule of
// §III-A: wrapping a unit's call sites in sync blocks elsewhere in the
// module changes the unit's synced-scope bit, so the memo entry must be
// invalidated even though the unit's own text is unchanged.
func TestIncrementalSyncedBitInvalidation(t *testing.T) {
	unit := `proc u(ref x: int) {
  begin with (ref x) {
    x = 1;
  }
}
`
	unsynced := unit + `proc caller() {
  var v: int = 0;
  u(v);
}
`
	synced := unit + `proc caller() {
  var v: int = 0;
  sync {
    u(v);
  }
}
`
	units := NewUnits("test", 0)
	st := checkIncr(t, units, unsynced)
	if st.UnitMisses != 1 || st.UnitHits != 0 {
		t.Fatalf("cold run: %+v", st)
	}
	// The unit's text did not change, but its call sites did: a hit here
	// would serve warnings computed under the wrong synced-scope bit.
	st = checkIncr(t, units, synced)
	if st.UnitMisses != 1 || st.UnitHits != 0 {
		t.Fatalf("synced-bit flip must invalidate the unit: %+v", st)
	}
	// Same content again: both variants are now memoized independently.
	if st = checkIncr(t, units, unsynced); st.UnitHits != 1 {
		t.Fatalf("unsynced variant should be memoized: %+v", st)
	}
	if st = checkIncr(t, units, synced); st.UnitHits != 1 {
		t.Fatalf("synced variant should be memoized: %+v", st)
	}
}

// TestIncrementalConfigInvalidation pins the module-level rule: editing
// a config const invalidates every unit (config decl lines surface in
// warnings, and config bindings affect resolution), while re-analyzing
// unchanged content hits.
func TestIncrementalConfigInvalidation(t *testing.T) {
	prog := func(init string) string {
		return "config const n = " + init + ";\n" +
			`proc p() {
  var v: int = 0;
  begin with (ref v) {
    v = n;
  }
}
`
	}
	units := NewUnits("test", 0)
	if st := checkIncr(t, units, prog("3")); st.UnitMisses != 1 {
		t.Fatalf("cold run: %+v", st)
	}
	if st := checkIncr(t, units, prog("4")); st.UnitMisses != 1 || st.UnitHits != 0 {
		t.Fatalf("config edit must invalidate the unit: %+v", st)
	}
	if st := checkIncr(t, units, prog("4")); st.UnitHits != 1 {
		t.Fatalf("unchanged content should hit: %+v", st)
	}
}

// TestIncrementalCalleeBodyReuse pins the reuse direction: a unit that
// calls a top-level procedure treats the call as opaque (§III partial
// inter-procedural analysis), so editing the callee's BODY must not
// invalidate the caller — only the call-site accounting and binding
// kind matter.
func TestIncrementalCalleeBodyReuse(t *testing.T) {
	prog := func(calleeBody string) string {
		return `proc caller() {
  var v: int = 0;
  begin with (ref v) {
    v = 1;
  }
  helper(v);
}
proc helper(y: int) {
` + calleeBody + `}
`
	}
	units := NewUnits("test", 0)
	if st := checkIncr(t, units, prog("  writeln(y);\n")); st.UnitMisses != 1 {
		t.Fatalf("cold run: %+v", st)
	}
	// helper has no begin, so caller is the only unit; its fingerprint
	// must survive the callee body edit.
	if st := checkIncr(t, units, prog("  writeln(y + 1);\n")); st.UnitHits != 1 || st.UnitMisses != 0 {
		t.Fatalf("callee body edit must not invalidate the caller: %+v", st)
	}
}

// TestIncrementalDegradedNeverStored: a budget-degraded unit must be
// recomputed every time — serving it later could mask the complete
// result a fresh run would produce.
func TestIncrementalDegradedNeverStored(t *testing.T) {
	src := `proc big() {
  var x: int = 0;
  var a$: sync bool;
  var b$: sync bool;
  var c$: sync bool;
  begin with (ref x) { x = 2; a$ = true; }
  begin with (ref x) { x = 3; b$ = true; }
  begin with (ref x) { x = 4; c$ = true; }
  a$;
  b$;
  c$;
}
`
	opts := DefaultOptions()
	opts.PPS.MaxStates = 2
	units := NewUnits("test", 0)
	for i := 0; i < 2; i++ {
		res, stats := AnalyzeSourceIncremental("t.chpl", src, opts, units)
		if res.Degraded() == "" {
			t.Fatalf("run %d: expected a budget-degraded result", i)
		}
		if stats.UnitHits != 0 {
			t.Fatalf("run %d: degraded units must never be served from cache: %+v", i, stats)
		}
	}
}
