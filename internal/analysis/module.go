// Module mode: whole-module interprocedural analysis over the
// cross-file call graph.
//
// Every file of the module is parsed and resolved against a shared
// linker scope (internal/modgraph), per-procedure summaries are
// computed bottom-up with a fixpoint over call-graph cycles, and each
// analysis root is lowered with the callee summaries spliced in at its
// opaque call sites. The incremental variant memoizes per unit exactly
// like single-file mode, with one extra key component: the identities
// and summary fingerprints of the unit's direct module-level callees.
// That component is what makes memo invalidation propagate along
// call-graph edges — editing a callee re-keys exactly its (transitive)
// callers whose composed summaries changed, and nothing else.
package analysis

import (
	"time"

	"uafcheck/internal/ast"
	"uafcheck/internal/ir"
	"uafcheck/internal/modgraph"
	"uafcheck/internal/obs"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// ModuleFile is one input file of a module analysis.
type ModuleFile struct {
	Name string
	Src  string
}

// ModuleResult is the whole-module analysis outcome: one Result per
// file, in input order, plus the linked graph.
type ModuleResult struct {
	Files []*Result
	Graph *modgraph.Graph
	// Unresolved lists calls that named no procedure in any file; the
	// public layer converts a non-empty list into ErrUnresolvedCall.
	Unresolved []modgraph.Unresolved
	// FrontendFailed is set when any file had parse or resolution
	// errors; the concurrency pass was skipped module-wide.
	FrontendFailed bool
}

// AnalyzeModule analyzes all files of one module together. A nil units
// store analyzes every root afresh; with a store the per-unit memo is
// consulted exactly as in single-file incremental mode. Both paths
// assemble the same Results, so a one-shot run is byte-identical to a
// warm incremental run by construction.
func AnalyzeModule(files []ModuleFile, opts Options, units *Units) (*ModuleResult, IncrStats) {
	var stats IncrStats
	if opts.KeepGraphs || opts.PPS.Trace {
		// Retained graphs and PPS traces are not serializable; run every
		// unit afresh, exactly like single-file incremental mode.
		units = nil
	}
	mres := &ModuleResult{}
	mfiles := make([]*modgraph.File, len(files))
	results := make([]*Result, len(files))
	for i, in := range files {
		f := source.NewFile(in.Name, in.Src)
		diags := &source.Diagnostics{}
		_, endParse := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseParse)
		mod := parser.Parse(f, diags)
		endParse()
		mfiles[i] = &modgraph.File{Name: in.Name, Src: f, Mod: mod, Diags: diags}
		results[i] = &Result{Module: mod, Diags: diags}
		if diags.HasErrors() {
			mres.FrontendFailed = true
		}
	}
	mres.Files = results
	if mres.FrontendFailed {
		// Frontend errors: skip linking, matching the single-file
		// pipeline which stops before its analysis phases.
		return mres, stats
	}
	_, endResolve := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseResolve)
	g := modgraph.Link(mfiles)
	endResolve()
	mres.Graph = g
	mres.Unresolved = g.Unresolved
	for i, mf := range mfiles {
		results[i].Info = mf.Info
		if mf.Diags.HasErrors() {
			mres.FrontendFailed = true
		}
	}
	if mres.FrontendFailed {
		return mres, stats
	}

	// Cross-file synced-scope rule (§III-A): a procedure's by-ref
	// formals are structurally safe when every call site, in any file
	// of the module, sits inside a sync block.
	sites := moduleCallSites(g)
	synced := moduleSyncedRefParams(g, sites)
	low := ir.LowerOptions{Inline: opts.InlineLowering, Effects: g.Effects}

	for i, mf := range mfiles {
		res := results[i]
		file := mf.Src
		diags := mf.Diags
		configsFP := ""
		if units != nil {
			configsFP = configsFingerprint(file, mf.Mod)
		}
		beginPrefix := 0
		for _, proc := range mf.Mod.Procs {
			if !g.NeedsAnalysis(proc) {
				continue
			}
			if units != nil {
				key := unitKey(units.salt, file.Name, opts, file, proc,
					sites[proc].allSynced(), configsFP,
					moduleRefs(proc, mf.Info), moduleCalleesFP(g, mf, proc))
				lookupStart := time.Now()
				ur, ok := units.c.Get(key)
				opts.Obs.Observe(obs.HistUnitLookupNS, time.Since(lookupStart).Nanoseconds())
				if ok && ur != nil {
					stats.UnitHits++
					opts.Obs.Add(obs.CtrUnitHits, 1)
					pr := ur.materialize(file, proc, beginPrefix, diags)
					res.Procs = append(res.Procs, pr)
					opts.Obs.Add(obs.CtrProcsAnalyzed, 1)
					opts.Obs.Add(obs.CtrWarnings, int64(len(pr.Warnings)))
					beginPrefix += ast.CountBegins(proc)
					continue
				}
				stats.UnitMisses++
				opts.Obs.Add(obs.CtrUnitMisses, 1)
				pdiags := &source.Diagnostics{}
				pr, crash := analyzeProcSafe(mf.Info, proc, synced, opts, pdiags, low)
				for _, d := range pdiags.All() {
					diags.Add(d)
				}
				if crash != nil {
					res.Crashes = append(res.Crashes, *crash)
					diags.Addf(file, proc.Name.Sp, source.Note,
						"proc %s: internal analysis panic in phase %s (recovered): %s",
						proc.Name.Name, crash.Phase, crash.Err)
					beginPrefix += ast.CountBegins(proc)
					continue
				}
				res.Procs = append(res.Procs, pr)
				opts.Obs.Add(obs.CtrProcsAnalyzed, 1)
				opts.Obs.Add(obs.CtrWarnings, int64(len(pr.Warnings)))
				if pr.PPSStats.Stop == pps.StopNone {
					units.c.Put(key, captureUnit(file, proc, beginPrefix, pr, pdiags))
				}
				beginPrefix += ast.CountBegins(proc)
				continue
			}
			pr, crash := analyzeProcSafe(mf.Info, proc, synced, opts, diags, low)
			if crash != nil {
				res.Crashes = append(res.Crashes, *crash)
				diags.Addf(file, proc.Name.Sp, source.Note,
					"proc %s: internal analysis panic in phase %s (recovered): %s",
					proc.Name.Name, crash.Phase, crash.Err)
				continue
			}
			res.Procs = append(res.Procs, pr)
			opts.Obs.Add(obs.CtrProcsAnalyzed, 1)
			opts.Obs.Add(obs.CtrWarnings, int64(len(pr.Warnings)))
		}
	}
	return mres, stats
}

// moduleCallSites merges per-file call-site accounting across the
// module; extern uses resolve to the defining file's declaration, so
// the merge keys on declarations, not names.
func moduleCallSites(g *modgraph.Graph) map[*ast.ProcDecl]*siteInfo {
	merged := make(map[*ast.ProcDecl]*siteInfo)
	for _, f := range g.Files {
		for d, si := range procCallSites(f.Mod, f.Info) {
			m := merged[d]
			if m == nil {
				m = &siteInfo{}
				merged[d] = m
			}
			m.calls += si.calls
			m.synced += si.synced
		}
	}
	return merged
}

// moduleSyncedRefParams projects the merged accounting onto by-ref
// formal symbols, using each declaration's defining file's resolver
// info (only that info knows the formal symbols).
func moduleSyncedRefParams(g *modgraph.Graph, sites map[*ast.ProcDecl]*siteInfo) map[*sym.Symbol]bool {
	out := make(map[*sym.Symbol]bool)
	for _, f := range g.Files {
		own := make(map[*ast.ProcDecl]*siteInfo)
		for d, si := range sites {
			if f.Info.ProcSyms[d] != nil {
				own[d] = si
			}
		}
		for s, v := range syncedRefParamsFrom(own, f.Info) {
			out[s] = v
		}
	}
	return out
}

// moduleCalleesFP renders the unit's direct-callee view for the memo
// key: one line per distinct module-level callee, identity plus
// converged summary fingerprint, in deterministic order.
func moduleCalleesFP(g *modgraph.Graph, f *modgraph.File, proc *ast.ProcDecl) string {
	callees := g.DirectCallees(f, proc)
	if len(callees) == 0 {
		return "module"
	}
	s := "module"
	for _, d := range callees {
		s += "\n" + g.SummaryFingerprint(d)
	}
	return s
}
