// Package analysis is the end-to-end compiler pass of the paper: it
// parses MiniChapel source, resolves names, lowers each outermost
// procedure containing begin tasks (partial inter-procedural analysis,
// §III), builds and prunes the CCFG, explores the Parallel Program
// States, and renders the potentially-dangerous-access warnings the
// paper's modified Chapel compiler prints.
package analysis

import (
	"context"
	"fmt"
	"runtime/debug"

	"uafcheck/internal/ast"
	"uafcheck/internal/ccfg"
	"uafcheck/internal/fault"
	"uafcheck/internal/ir"
	"uafcheck/internal/obs"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// Options configure the pass.
type Options struct {
	// Prune applies the CCFG pruning rules A-D (default on; the ablation
	// benchmark switches it off).
	Prune bool
	// ModelAtomics enables the atomics extension (§IV-A sketch / §VII
	// future work): atomic writes as fill events, waitFor as
	// SINGLE-READ-like waits. Off by default, matching the paper.
	ModelAtomics bool
	// CountAtomics (implies ModelAtomics) additionally models monotonic
	// atomic variables as saturating counters, verifying waitFor(n)
	// counting protocols.
	CountAtomics bool
	// PPS configures the state exploration.
	PPS pps.Options
	// KeepGraphs retains the per-proc CCFG and PPS results (figure
	// regeneration, tests); corpus runs leave it off to save memory.
	KeepGraphs bool
	// Obs receives phase spans and pipeline counters from every stage;
	// nil disables telemetry at zero cost.
	Obs *obs.Recorder
	// Ctx carries the file's deadline/cancellation budget. It is polled
	// at phase boundaries and inside the PPS hot loop; when it fires,
	// each remaining procedure degrades to conservative warnings instead
	// of being skipped. nil means no budget. When Ctx carries an
	// obs.Trace, the pipeline's phases attach hierarchical spans to it.
	Ctx context.Context
	// RecordTrace creates a per-file trace (deterministic ID derived
	// from the file name and content) when Ctx does not already carry
	// one, and attaches the completed span tree to Result.Trace. When
	// Ctx carries an ambient trace (a server request), spans go there
	// instead and Result.Trace stays nil — the request owns the tree.
	// Excluded from Fingerprint: tracing never changes results.
	RecordTrace bool
	// InlineLowering selects the legacy per-call-site inliner for
	// nested procedures instead of the default template (summary)
	// expansion. The two are byte-identical by construction — the
	// summary lowerer falls back to the inliner whenever a template
	// cannot reproduce it exactly — so the flag is excluded from
	// Fingerprint and exists for A/B verification (the property test)
	// and as an escape hatch.
	InlineLowering bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{Prune: true}
}

// Fingerprint canonically encodes every option that can change an
// analysis result — the options half of the content-addressed cache
// key. Resource knobs that only change wall clock, never the committed
// outcome, are deliberately excluded: PPS.Parallelism (the wave
// explorer is deterministic by construction), Obs/sinks, and
// Ctx/deadlines (a run that degrades is never cached). MaxStates and
// MaxOutcomes ARE included: a budget-truncated result depends on them.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("prune=%t atomics=%t count=%t maxstates=%d maxoutcomes=%d trace=%t nomerge=%t keep=%t",
		o.Prune, o.ModelAtomics, o.CountAtomics,
		o.PPS.MaxStates, o.PPS.MaxOutcomes,
		o.PPS.Trace, o.PPS.DisableMerge, o.KeepGraphs)
}

// Warning is one reported potentially dangerous outer-variable access.
type Warning struct {
	Var   string
	Task  string
	Proc  string
	Write bool
	// Conservative marks warnings emitted by the degradation ladder: the
	// exploration stopped early (budget, deadline, cancellation) and the
	// access was flagged because it was not proven safe, not because it
	// was proven dangerous.
	Conservative bool
	Reason       pps.UnsafeReason
	AccessLine   int
	// AccessCol is the 1-based source column of the access.
	AccessCol int
	DeclLine  int
	// DeclPos is the byte offset of the variable's declaration (NoPos
	// when the symbol has no recorded declaration). The incremental
	// engine uses it to tell declarations inside the analyzed procedure
	// (stored line-relative, rebased on reuse) from module-level ones
	// (stored absolute).
	DeclPos source.Pos
	Pos     string // file:line:col of the access
	// Prov carries the explain-mode provenance: the CCFG node of the
	// access, the sink PPS that still held it, and the transition chain
	// that reached it.
	Prov *pps.Provenance
}

// String renders the warning in compiler style.
func (w Warning) String() string {
	verb := "read"
	if w.Write {
		verb = "write"
	}
	if w.Conservative {
		return fmt.Sprintf("%s: warning: potentially dangerous %s of outer variable %q "+
			"(declared at line %d) inside %s of proc %s: analysis degraded before the "+
			"access could be proven safe [%s]",
			w.Pos, verb, w.Var, w.DeclLine, w.Task, w.Proc, w.Reason)
	}
	return fmt.Sprintf("%s: warning: potentially dangerous %s of outer variable %q "+
		"(declared at line %d) inside %s of proc %s: the task may execute after "+
		"the variable's scope has exited [%s]",
		w.Pos, verb, w.Var, w.DeclLine, w.Task, w.Proc, w.Reason)
}

// StopPanic extends the pps stop reasons with the panic-isolation rung
// of the degradation ladder: a recovered pipeline crash.
const StopPanic pps.StopReason = "panic"

// Crash is a recovered panic inside the per-procedure pipeline — the
// structured diagnostic the fault-isolated drivers aggregate instead of
// letting one bad input take down a batch.
type Crash struct {
	// Proc is the procedure being analyzed when the panic fired.
	Proc string
	// Phase is the pipeline phase that crashed (lower, ccfg-build,
	// pps-explore, report).
	Phase string
	// Err is the panic value's rendering.
	Err string
	// Stack is the recovered goroutine stack.
	Stack string
}

// ProcResult holds the analysis artifacts of one root procedure.
type ProcResult struct {
	Proc     *ast.ProcDecl
	Program  *ir.Program
	Graph    *ccfg.Graph
	PPS      *pps.Result
	Warnings []Warning
	// Pruned counts tasks removed by each rule.
	GraphStats ccfg.Stats
	PPSStats   pps.Stats
	// HasAtomics marks procs whose graphs contain atomic operations —
	// the evaluation's dominant false-positive source (§V).
	HasAtomics bool
	Deadlocks  int
	// Truncated reports that the nested-procedure recursion cutoff
	// fired while lowering this procedure (paper §III-A): the analysis
	// saw a partial expansion of a cyclic nested-call chain.
	Truncated bool
}

// Result is the analysis of one file.
type Result struct {
	Module *ast.Module
	Info   *sym.Info
	Diags  *source.Diagnostics
	Procs  []*ProcResult
	// Crashes lists procedures whose pipeline panicked; the panic was
	// recovered, the remaining procedures still analyzed.
	Crashes []Crash
	// Trace is the file's completed span tree when Options.RecordTrace
	// created a per-file trace (nil when the caller owns the trace).
	Trace []obs.TraceSpan
}

// Degraded returns the file's aggregate degradation cause, or StopNone
// when every procedure ran to completion. When procedures degraded for
// different reasons the most severe wins: panic > cancelled > deadline >
// budget.
func (r *Result) Degraded() pps.StopReason {
	rank := map[pps.StopReason]int{
		pps.StopBudget: 1, pps.StopDeadline: 2, pps.StopCancelled: 3, StopPanic: 4,
	}
	worst := pps.StopNone
	if len(r.Crashes) > 0 {
		worst = StopPanic
	}
	for _, pr := range r.Procs {
		if s := pr.PPSStats.Stop; rank[s] > rank[worst] {
			worst = s
		}
	}
	return worst
}

// Warnings returns all warnings across procedures, in source order per
// procedure.
func (r *Result) Warnings() []Warning {
	var out []Warning
	for _, p := range r.Procs {
		out = append(out, p.Warnings...)
	}
	return out
}

// AnalyzeSource parses and analyzes one source text.
func AnalyzeSource(name, src string, opts Options) *Result {
	file := source.NewFile(name, src)
	return AnalyzeFile(file, opts)
}

// AnalyzeFile analyzes a source file. When tracing is active (an
// ambient trace on Options.Ctx, or Options.RecordTrace) the file gets a
// "file" span parenting the per-procedure phase spans.
func AnalyzeFile(file *source.File, opts Options) *Result {
	var owned *obs.Trace
	if opts.RecordTrace && obs.TraceFrom(opts.Ctx) == nil {
		owned = obs.NewTrace(obs.DeriveTraceID("uafcheck/file", file.Name, file.Content))
		opts.Ctx = obs.ContextWithTrace(opts.Ctx, owned)
	}
	ctx, fileSp := obs.StartSpan(opts.Ctx, "file")
	fileSp.SetAttr("name", file.Name)
	opts.Ctx = ctx
	res := analyzeFile(file, opts)
	fileSp.End()
	if owned != nil {
		res.Trace = owned.Spans()
		opts.Obs.SetTrace(res.Trace)
	}
	return res
}

// analyzeFile is AnalyzeFile's body, free of trace bookkeeping.
func analyzeFile(file *source.File, opts Options) *Result {
	diags := &source.Diagnostics{}
	_, endParse := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseParse)
	mod := parser.Parse(file, diags)
	endParse()
	res := &Result{Module: mod, Diags: diags}
	if diags.HasErrors() {
		// Frontend errors: skip the concurrency pass, matching a compiler
		// that stops before its analysis phases.
		return res
	}
	_, endResolve := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseResolve)
	info := sym.Resolve(mod, diags)
	endResolve()
	res.Info = info
	if diags.HasErrors() {
		return res
	}
	synced := syncedRefParams(mod, info)
	for _, proc := range mod.Procs {
		if !ast.HasBegin(proc) {
			// Partial inter-procedural analysis: only outermost
			// procedures containing begin tasks are analyzed (§III).
			continue
		}
		pr, crash := analyzeProcSafe(info, proc, synced, opts, diags,
			ir.LowerOptions{Inline: opts.InlineLowering})
		if crash != nil {
			res.Crashes = append(res.Crashes, *crash)
			diags.Addf(file, proc.Name.Sp, source.Note,
				"proc %s: internal analysis panic in phase %s (recovered): %s",
				proc.Name.Name, crash.Phase, crash.Err)
			continue
		}
		res.Procs = append(res.Procs, pr)
		opts.Obs.Add(obs.CtrProcsAnalyzed, 1)
		opts.Obs.Add(obs.CtrWarnings, int64(len(pr.Warnings)))
	}
	return res
}

// analyzeProcSafe is the fault-isolation rung of the ladder: a panic
// anywhere in one procedure's lower → CCFG → PPS pipeline is converted
// into a structured Crash instead of aborting the file (or a whole
// batch). phase is threaded through analyzeProc so the crash records
// which stage died.
func analyzeProcSafe(info *sym.Info, proc *ast.ProcDecl, synced map[*sym.Symbol]bool,
	opts Options, diags *source.Diagnostics, low ir.LowerOptions) (pr *ProcResult, crash *Crash) {
	phase := obs.PhaseLower
	defer func() {
		if r := recover(); r != nil {
			crash = &Crash{
				Proc:  proc.Name.Name,
				Phase: phase,
				Err:   fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
			pr = nil
		}
	}()
	pr = analyzeProc(info, proc, synced, opts, diags, low, &phase)
	return pr, nil
}

func analyzeProc(info *sym.Info, proc *ast.ProcDecl, synced map[*sym.Symbol]bool,
	opts Options, diags *source.Diagnostics, low ir.LowerOptions, phase *string) *ProcResult {
	// Chaos hooks: a stalled worker (the deadline checks below then run
	// against the delayed clock) and an injected crash, which the
	// analyzeProcSafe recover turns into a Crash + degraded report —
	// exactly the path a real panic takes.
	fault.Sleep(fault.AnalysisDelay)
	fault.MaybePanic(fault.AnalysisPanic)
	pctx, procSp := obs.StartSpan(opts.Ctx, "proc")
	procSp.SetAttr("name", proc.Name.Name)
	opts.Ctx = pctx
	defer procSp.End()
	_, endLower := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseLower)
	prog := ir.LowerWith(info, proc, diags, low)
	endLower()
	*phase = obs.PhaseCCFG
	g := ccfg.Build(prog, diags, ccfg.BuildOptions{
		Prune:           opts.Prune,
		SyncedRefParams: synced,
		ModelAtomics:    opts.ModelAtomics,
		CountAtomics:    opts.CountAtomics,
		Obs:             opts.Obs,
		Ctx:             opts.Ctx,
	})
	*phase = obs.PhaseExplore
	ppsOpts := opts.PPS
	ppsOpts.Obs = opts.Obs
	ppsOpts.Ctx = opts.Ctx
	r := pps.Explore(g, ppsOpts)
	*phase = "report"

	pr := &ProcResult{
		Proc:       proc,
		GraphStats: g.Stats(),
		PPSStats:   r.Stats,
		HasAtomics: pr0HasAtomics(g),
		Deadlocks:  len(r.Deadlocks),
		Truncated:  prog.Truncated,
	}
	if opts.KeepGraphs {
		pr.Program = prog
		pr.Graph = g
		pr.PPS = r
	}
	file := info.Module.File
	for _, u := range r.Unsafe {
		a := u.Access
		pr.Warnings = append(pr.Warnings, Warning{
			Var:          a.Sym.Name,
			Task:         a.Task.Label,
			Proc:         proc.Name.Name,
			Write:        a.Write,
			Conservative: u.Conservative,
			Reason:       u.Reason,
			AccessLine:   file.Line(a.Sp.Start),
			AccessCol:    file.Column(a.Sp.Start),
			DeclLine:     declLine(file, a.Sym),
			DeclPos:      declPos(a.Sym),
			Pos:          file.Position(a.Sp.Start),
			Prov:         u.Prov,
		})
	}
	for _, w := range pr.Warnings {
		diags.Addf(file, source.NoSpan, source.Warning, "%s", w.String())
	}
	if len(r.Deadlocks) > 0 {
		diags.Addf(file, proc.Name.Sp, source.Note,
			"proc %s: %d parallel program state(s) block with no applicable rule (potential deadlock)",
			proc.Name.Name, len(r.Deadlocks))
	}
	switch r.Stats.Stop {
	case pps.StopBudget:
		diags.Addf(file, proc.Name.Sp, source.Note,
			"proc %s: PPS exploration budget exceeded; degraded to conservative warnings",
			proc.Name.Name)
	case pps.StopDeadline:
		diags.Addf(file, proc.Name.Sp, source.Note,
			"proc %s: PPS exploration deadline exceeded; degraded to conservative warnings",
			proc.Name.Name)
	case pps.StopCancelled:
		diags.Addf(file, proc.Name.Sp, source.Note,
			"proc %s: PPS exploration cancelled; degraded to conservative warnings",
			proc.Name.Name)
	}
	return pr
}

func pr0HasAtomics(g *ccfg.Graph) bool {
	for _, n := range g.Nodes {
		if len(n.Atomics) > 0 {
			return true
		}
	}
	return false
}

func declLine(file *source.File, s *sym.Symbol) int {
	if s.Decl == nil {
		return 0
	}
	return file.Line(s.Decl.Span().Start)
}

func declPos(s *sym.Symbol) source.Pos {
	if s.Decl == nil {
		return source.NoPos
	}
	return s.Decl.Span().Start
}

// siteInfo accounts a procedure's call sites for the synced-scope rule:
// how many there are and how many sit lexically inside a sync block.
type siteInfo struct {
	calls  int
	synced int
}

// allSynced reports whether the procedure has call sites and every one
// is enclosed in a sync block — the condition under which its by-ref
// formals are structurally safe.
func (si *siteInfo) allSynced() bool {
	return si != nil && si.calls > 0 && si.calls == si.synced
}

// syncedRefParams implements the synced-scope list rule of §III-A: a
// by-ref formal of a procedure is structurally safe when the procedure
// has at least one call site and every call site is lexically enclosed in
// a sync block.
func syncedRefParams(mod *ast.Module, info *sym.Info) map[*sym.Symbol]bool {
	return syncedRefParamsFrom(procCallSites(mod, info), info)
}

// procCallSites walks the whole module collecting per-procedure call
// site accounting — the cross-procedure fact feeding the synced-scope
// rule, and (split out from syncedRefParams) the bit the incremental
// engine folds into each unit's fingerprint.
func procCallSites(mod *ast.Module, info *sym.Info) map[*ast.ProcDecl]*siteInfo {
	sites := make(map[*ast.ProcDecl]*siteInfo)

	var walkStmts func(list []ast.Stmt, syncDepth int)
	var walkExpr func(e ast.Expr, syncDepth int)
	walkExpr = func(e ast.Expr, syncDepth int) {
		switch x := e.(type) {
		case *ast.CallExpr:
			if s := info.Uses[x.Fun]; s != nil && s.Proc != nil {
				si := sites[s.Proc]
				if si == nil {
					si = &siteInfo{}
					sites[s.Proc] = si
				}
				si.calls++
				if syncDepth > 0 {
					si.synced++
				}
			}
			for _, a := range x.Args {
				walkExpr(a, syncDepth)
			}
		case *ast.MethodCallExpr:
			for _, a := range x.Args {
				walkExpr(a, syncDepth)
			}
		case *ast.BinaryExpr:
			walkExpr(x.X, syncDepth)
			walkExpr(x.Y, syncDepth)
		case *ast.UnaryExpr:
			walkExpr(x.X, syncDepth)
		case *ast.RangeExpr:
			walkExpr(x.Lo, syncDepth)
			walkExpr(x.Hi, syncDepth)
		}
	}
	var walkStmt func(s ast.Stmt, syncDepth int)
	walkStmt = func(s ast.Stmt, syncDepth int) {
		switch x := s.(type) {
		case *ast.VarDecl:
			if x.Init != nil {
				walkExpr(x.Init, syncDepth)
			}
		case *ast.AssignStmt:
			walkExpr(x.Rhs, syncDepth)
		case *ast.ExprStmt:
			walkExpr(x.X, syncDepth)
		case *ast.CallStmt:
			walkExpr(x.X, syncDepth)
		case *ast.BeginStmt:
			// Tasks created inside a sync block stay within its dynamic
			// extent, so the sync depth carries into the task body.
			walkStmts(x.Body.Stmts, syncDepth)
		case *ast.SyncStmt:
			walkStmts(x.Body.Stmts, syncDepth+1)
		case *ast.IfStmt:
			walkExpr(x.Cond, syncDepth)
			walkStmts(x.Then.Stmts, syncDepth)
			if x.Else != nil {
				walkStmts(x.Else.Stmts, syncDepth)
			}
		case *ast.WhileStmt:
			walkExpr(x.Cond, syncDepth)
			walkStmts(x.Body.Stmts, syncDepth)
		case *ast.ForStmt:
			walkExpr(x.Range.Lo, syncDepth)
			walkExpr(x.Range.Hi, syncDepth)
			walkStmts(x.Body.Stmts, syncDepth)
		case *ast.ReturnStmt:
			if x.Value != nil {
				walkExpr(x.Value, syncDepth)
			}
		case *ast.BlockStmt:
			walkStmts(x.Stmts, syncDepth)
		case *ast.ProcStmt:
			walkStmts(x.Proc.Body.Stmts, 0)
		}
	}
	walkStmts = func(list []ast.Stmt, syncDepth int) {
		for _, s := range list {
			walkStmt(s, syncDepth)
		}
	}
	for _, p := range mod.Procs {
		walkStmts(p.Body.Stmts, 0)
	}
	return sites
}

// syncedRefParamsFrom projects the call-site accounting onto the by-ref
// formal symbols the CCFG builder consults.
func syncedRefParamsFrom(sites map[*ast.ProcDecl]*siteInfo, info *sym.Info) map[*sym.Symbol]bool {
	out := make(map[*sym.Symbol]bool)
	for proc, si := range sites {
		if si.allSynced() {
			scope := info.ScopeFor(proc)
			if scope == nil {
				continue
			}
			for _, s := range scope.Symbols() {
				if s.Kind == sym.KindParam && s.ByRef {
					out[s] = true
				}
			}
		}
	}
	return out
}
