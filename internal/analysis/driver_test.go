package analysis

import (
	"strings"
	"testing"

	"uafcheck/internal/pps"
	"uafcheck/internal/source"
)

func analyzeStr(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res := AnalyzeSource("t.chpl", src, opts)
	if res.Diags.HasErrors() {
		t.Fatalf("frontend errors:\n%s", res.Diags)
	}
	return res
}

// TestOnlyBeginProcsAnalyzed: the partial inter-procedural discipline —
// procedures without begin tasks are skipped entirely.
func TestOnlyBeginProcsAnalyzed(t *testing.T) {
	res := analyzeStr(t, `
proc plain() { var x: int = 1; writeln(x); }
proc tasky() {
  var y: int = 1;
  begin with (ref y) { y = 2; }
}
proc alsoPlain() { writeln(2); }
`, DefaultOptions())
	if len(res.Procs) != 1 || res.Procs[0].Proc.Name.Name != "tasky" {
		t.Fatalf("analyzed procs = %v, want only tasky", res.Procs)
	}
	if len(res.Warnings()) != 1 {
		t.Errorf("warnings = %d", len(res.Warnings()))
	}
}

// TestMultipleProcsIndependent: two begin-procs analyzed separately, each
// contributing its own warnings with its own proc name.
func TestMultipleProcsIndependent(t *testing.T) {
	res := analyzeStr(t, `
proc alpha() {
  var a: int = 1;
  begin with (ref a) { a = 2; }
}
proc beta() {
  var b: int = 1;
  var done$: sync bool;
  begin with (ref b) { b = 2; done$ = true; }
  done$;
}
`, DefaultOptions())
	if len(res.Procs) != 2 {
		t.Fatalf("procs = %d", len(res.Procs))
	}
	ws := res.Warnings()
	if len(ws) != 1 || ws[0].Proc != "alpha" || ws[0].Var != "a" {
		t.Fatalf("warnings = %v", ws)
	}
}

// TestSyncedRefParamsAcrossProcs: the synced-scope list requires EVERY
// call site fenced; one stray call disables it.
func TestSyncedRefParamsAcrossProcs(t *testing.T) {
	synced := `
proc work(ref buf: int) {
  begin { buf = 1; }
}
proc c1() { var v: int = 0; sync { work(v); } }
proc c2() { var w: int = 0; sync { work(w); } }
`
	res := analyzeStr(t, synced, DefaultOptions())
	if n := len(res.Warnings()); n != 0 {
		t.Fatalf("all-synced call sites still warned: %d", n)
	}

	mixed := synced + `
proc c3() { var u: int = 0; work(u); }
`
	res = analyzeStr(t, mixed, DefaultOptions())
	if n := len(res.Warnings()); n != 1 {
		t.Fatalf("mixed call sites: warnings = %d, want 1", n)
	}
}

// TestBudgetNoteEmitted: exceeding the PPS budget produces the
// incomplete-analysis note.
func TestBudgetNoteEmitted(t *testing.T) {
	res := analyzeStr(t, `
proc f() {
  var x: int = 1;
  var a$: sync bool;
  var b$: sync bool;
  begin with (ref x) { x = 1; a$ = true; }
  begin with (ref x) { x = 2; b$ = true; }
  a$;
  b$;
}
`, Options{Prune: true, PPS: pps.Options{MaxStates: 1}})
	found := false
	for _, d := range res.Diags.All() {
		if d.Severity == source.Note && strings.Contains(d.Message, "budget exceeded") {
			found = true
		}
	}
	if !found {
		t.Error("budget note missing")
	}
	if !res.Procs[0].PPSStats.Incomplete {
		t.Error("Incomplete flag not set")
	}
}

// TestWarningRendering: the compiler-style message carries every field.
func TestWarningRendering(t *testing.T) {
	res := analyzeStr(t, `
proc f() {
  var data: int = 1;
  begin with (ref data) { writeln(data); }
}
`, DefaultOptions())
	ws := res.Warnings()
	if len(ws) != 1 {
		t.Fatalf("warnings = %d", len(ws))
	}
	msg := ws[0].String()
	for _, want := range []string{
		"t.chpl:4:", "warning", "read", `"data"`, "TASK A", "proc f", "never-synchronized",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("message missing %q: %s", want, msg)
		}
	}
}

// TestHasAtomicsFlag: the per-proc atomic marker feeds the evaluation's
// false-positive accounting.
func TestHasAtomicsFlag(t *testing.T) {
	res := analyzeStr(t, `
proc f() {
  var x: int = 1;
	var a: atomic int;
  begin with (ref x) { x = 2; a.write(1); }
  a.waitFor(1);
}
`, DefaultOptions())
	if !res.Procs[0].HasAtomics {
		t.Error("HasAtomics = false")
	}
}

// TestFrontendErrorShortCircuits: files that fail the frontend produce no
// proc results.
func TestFrontendErrorShortCircuits(t *testing.T) {
	res := AnalyzeSource("bad.chpl", "proc f() { var = ; }", DefaultOptions())
	if !res.Diags.HasErrors() {
		t.Fatal("expected errors")
	}
	if len(res.Procs) != 0 {
		t.Error("analysis ran despite frontend errors")
	}
}
