// Incremental mode: per-procedure memoization of the analysis pipeline.
//
// The unit of incrementality is one top-level procedure containing
// begin tasks — exactly the unit the paper's partial inter-procedural
// analysis (§III) already analyzes independently: nested procedures are
// inlined into their root, calls to other top-level procedures are
// opaque, and the only cross-procedure facts a unit consumes are
//
//   - the synced-scope bit of the unit itself (whether every call site
//     of the unit, anywhere in the module, sits inside a sync block —
//     §III-A), and
//   - the module-level bindings its free identifiers resolve to
//     (config consts and top-level procedure names).
//
// A unit's fingerprint hashes the unit's source text together with
// those facts and the effective options; lowering, CCFG construction,
// pruning and PPS exploration are memoized per fingerprint in a
// content-addressed internal/cache store. Memoized results are stored
// position-relative (warning and note lines relative to the unit's
// first line, task labels as within-unit ordinals) so that edits that
// merely shift a unit — or add/remove begin tasks in other units — do
// not invalidate it. Recombining cached and fresh units reproduces the
// from-scratch Result exactly; the public layer's report construction
// is deterministic, so the wire encoding is byte-identical (enforced by
// the property test in incremental_test.go at the repo root).
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"uafcheck/internal/ast"
	"uafcheck/internal/cache"
	"uafcheck/internal/ccfg"
	"uafcheck/internal/ir"
	"uafcheck/internal/obs"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// Units is the memo store of the incremental engine: a content-addressed
// in-memory LRU of per-procedure analysis results, shared across files
// and safe for concurrent use. The salt (the public layer passes the
// tool Version) partitions entries across releases the same way the
// report cache does.
type Units struct {
	salt string
	c    *cache.Cache[*UnitResult]
}

// NewUnits creates a unit store; maxEntries <= 0 selects the library
// default LRU bound.
func NewUnits(salt string, maxEntries int) *Units {
	codec := cache.Codec[*UnitResult]{
		Encode: func(u *UnitResult) ([]byte, error) { return json.Marshal(u) },
		Decode: func(b []byte) (*UnitResult, error) {
			u := &UnitResult{}
			if err := json.Unmarshal(b, u); err != nil {
				return nil, err
			}
			return u, nil
		},
		Clone: func(u *UnitResult) *UnitResult { return u.Clone() },
	}
	return &Units{salt: salt, c: cache.New(codec, maxEntries, "")}
}

// Stats returns the store's traffic counters.
func (u *Units) Stats() cache.Stats { return u.c.Stats() }

// Len returns the number of memoized units.
func (u *Units) Len() int { return u.c.Len() }

// UnitResult is the memoized outcome of one analysis unit — everything
// analyzeProc produces, stored position-relative so the entry survives
// the unit moving within (or across) files. Only complete runs are
// stored: degraded or crashed units depend on this run's budget race
// and are always recomputed.
type UnitResult struct {
	Proc       string        `json:"proc"`
	Warnings   []UnitWarning `json:"warnings,omitempty"`
	PreNotes   []UnitNote    `json:"pre_notes,omitempty"`
	PostNotes  []UnitNote    `json:"post_notes,omitempty"`
	GraphStats ccfg.Stats    `json:"graph_stats"`
	PPSStats   pps.Stats     `json:"pps_stats"`
	Deadlocks  int           `json:"deadlocks"`
	HasAtomics bool          `json:"has_atomics"`
	Truncated  bool          `json:"truncated,omitempty"`
}

// Clone returns a structurally complete deep copy sharing no mutable
// state with the receiver. The memo store clones on both Put and Get —
// on the store's hot path this runs for every cached unit of every
// re-analysis, which is why it is hand-written rather than a
// serialization round-trip.
func (u *UnitResult) Clone() *UnitResult {
	if u == nil {
		return nil
	}
	v := *u
	if u.GraphStats.PrunedByRule != nil {
		v.GraphStats.PrunedByRule = make(map[ccfg.PruneRule]int, len(u.GraphStats.PrunedByRule))
		for k, n := range u.GraphStats.PrunedByRule {
			v.GraphStats.PrunedByRule[k] = n
		}
	}
	if u.Warnings != nil {
		v.Warnings = make([]UnitWarning, len(u.Warnings))
		copy(v.Warnings, u.Warnings)
		for i := range v.Warnings {
			if p := v.Warnings[i].Prov; p != nil {
				cp := *p
				cp.Chain = append([]string(nil), p.Chain...)
				v.Warnings[i].Prov = &cp
			}
		}
	}
	v.PreNotes = append([]UnitNote(nil), u.PreNotes...)
	v.PostNotes = append([]UnitNote(nil), u.PostNotes...)
	return &v
}

// UnitWarning is a Warning in position-relative form. Lines are stored
// relative to the unit's first line; columns are shift-invariant and
// stored as is. The task label is stored as a within-unit ordinal
// because the parser assigns labels in file order across all
// procedures — rebasing the ordinal against the unit's begin prefix
// reproduces the label without fingerprinting that prefix.
type UnitWarning struct {
	Var   string `json:"var"`
	Write bool   `json:"write"`
	// TaskOrd is the begin's 0-based ordinal within the unit; TaskLabel
	// is the stored literal fallback for labels the ordinal scheme cannot
	// represent (TaskOrd < 0).
	TaskOrd   int              `json:"task_ord"`
	TaskLabel string           `json:"task_label,omitempty"`
	Reason    pps.UnsafeReason `json:"reason"`
	RelLine   int              `json:"rel_line"`
	Col       int              `json:"col"`
	// DeclLine is relative to the unit's first line, unless DeclAbs marks
	// a module-level declaration (config const) — those are stored
	// absolute, and any module-level edit changes the fingerprint anyway.
	DeclLine int             `json:"decl_line"`
	DeclAbs  bool            `json:"decl_abs,omitempty"`
	Prov     *pps.Provenance `json:"prov,omitempty"`
}

// UnitNote is a Note-severity diagnostic in position-relative form.
// PreNotes precede the unit's warning diagnostics in emission order
// (lowering notes); PostNotes follow them (the deadlock note).
type UnitNote struct {
	RelLine int    `json:"rel_line"`
	Col     int    `json:"col"`
	Abs     bool   `json:"abs,omitempty"`    // anchored outside the unit: line is absolute
	NoPos   bool   `json:"no_pos,omitempty"` // anchored at NoSpan
	Message string `json:"message"`
}

// IncrStats reports one incremental run's unit-cache traffic.
type IncrStats struct {
	UnitHits   int
	UnitMisses int
}

// AnalyzeSourceIncremental is AnalyzeSource with per-unit memoization:
// parse and resolve always run (they are cheap and position-bearing),
// then each root procedure is either served from the unit store or
// analyzed afresh and stored. The assembled Result is indistinguishable
// from a from-scratch run. Trace/KeepGraphs runs bypass the store (the
// retained graphs are not serializable) and fall back to AnalyzeSource,
// as does a nil store.
func AnalyzeSourceIncremental(name, src string, opts Options, units *Units) (*Result, IncrStats) {
	if units == nil || opts.KeepGraphs || opts.PPS.Trace {
		return AnalyzeSource(name, src, opts), IncrStats{}
	}
	file := source.NewFile(name, src)
	var owned *obs.Trace
	if opts.RecordTrace && obs.TraceFrom(opts.Ctx) == nil {
		owned = obs.NewTrace(obs.DeriveTraceID("uafcheck/file", file.Name, file.Content))
		opts.Ctx = obs.ContextWithTrace(opts.Ctx, owned)
	}
	ctx, fileSp := obs.StartSpan(opts.Ctx, "file")
	fileSp.SetAttr("name", file.Name)
	fileSp.SetAttr("mode", "incremental")
	opts.Ctx = ctx
	res, stats := analyzeIncremental(file, opts, units)
	fileSp.End()
	if owned != nil {
		res.Trace = owned.Spans()
		opts.Obs.SetTrace(res.Trace)
	}
	return res, stats
}

// analyzeIncremental is AnalyzeSourceIncremental's body, free of trace
// bookkeeping.
func analyzeIncremental(file *source.File, opts Options, units *Units) (*Result, IncrStats) {
	var stats IncrStats
	diags := &source.Diagnostics{}
	_, endParse := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseParse)
	mod := parser.Parse(file, diags)
	endParse()
	res := &Result{Module: mod, Diags: diags}
	if diags.HasErrors() {
		return res, stats
	}
	_, endResolve := obs.StartPhase(opts.Ctx, opts.Obs, obs.PhaseResolve)
	info := sym.Resolve(mod, diags)
	endResolve()
	res.Info = info
	if diags.HasErrors() {
		return res, stats
	}
	sites := procCallSites(mod, info)
	synced := syncedRefParamsFrom(sites, info)
	configsFP := configsFingerprint(file, mod)
	beginPrefix := 0
	for _, proc := range mod.Procs {
		if !ast.HasBegin(proc) {
			continue
		}
		key := unitKey(units.salt, file.Name, opts, file, proc,
			sites[proc].allSynced(), configsFP, moduleRefs(proc, info), "")
		lookupStart := time.Now()
		ur, ok := units.c.Get(key)
		opts.Obs.Observe(obs.HistUnitLookupNS, time.Since(lookupStart).Nanoseconds())
		if ok && ur != nil {
			stats.UnitHits++
			opts.Obs.Add(obs.CtrUnitHits, 1)
			_, usp := obs.StartSpan(opts.Ctx, "unit-hit")
			usp.SetAttr("proc", proc.Name.Name)
			pr := ur.materialize(file, proc, beginPrefix, diags)
			usp.End()
			res.Procs = append(res.Procs, pr)
			opts.Obs.Add(obs.CtrProcsAnalyzed, 1)
			opts.Obs.Add(obs.CtrWarnings, int64(len(pr.Warnings)))
			beginPrefix += ast.CountBegins(proc)
			continue
		}
		stats.UnitMisses++
		opts.Obs.Add(obs.CtrUnitMisses, 1)
		pdiags := &source.Diagnostics{}
		pr, crash := analyzeProcSafe(info, proc, synced, opts, pdiags,
			ir.LowerOptions{Inline: opts.InlineLowering})
		for _, d := range pdiags.All() {
			diags.Add(d)
		}
		if crash != nil {
			res.Crashes = append(res.Crashes, *crash)
			diags.Addf(file, proc.Name.Sp, source.Note,
				"proc %s: internal analysis panic in phase %s (recovered): %s",
				proc.Name.Name, crash.Phase, crash.Err)
			beginPrefix += ast.CountBegins(proc)
			continue
		}
		res.Procs = append(res.Procs, pr)
		opts.Obs.Add(obs.CtrProcsAnalyzed, 1)
		opts.Obs.Add(obs.CtrWarnings, int64(len(pr.Warnings)))
		// Only complete units are memoized: a degraded unit's warning set
		// depends on this run's budget/deadline race.
		if pr.PPSStats.Stop == pps.StopNone {
			units.c.Put(key, captureUnit(file, proc, beginPrefix, pr, pdiags))
		}
		beginPrefix += ast.CountBegins(proc)
	}
	return res, stats
}

// unitKey is the content address of one analysis unit: everything that
// can change the unit's (position-relative) result participates, and
// nothing that cannot — in particular neither the unit's absolute
// position nor the number of begin tasks preceding it. calleesFP is the
// module-mode extension: the identities and summary fingerprints of the
// unit's direct module-level callees ("" in single-file mode), which is
// how memo invalidation propagates along call-graph edges — an edit to
// a callee that changes its (transitively composed) summary changes
// this component for exactly the units that call it, while an
// effect-preserving callee edit leaves every caller unit hot.
func unitKey(salt, name string, opts Options, file *source.File, proc *ast.ProcDecl,
	syncedUnit bool, configsFP string, refsFP string, calleesFP string) cache.Key {
	text := ""
	if sp := proc.Sp; sp.IsValid() && int(sp.End) <= len(file.Content) {
		text = file.Content[sp.Start:sp.End]
	}
	return cache.KeyOf(
		"uafcheck/unit", salt, name,
		opts.Fingerprint(),
		text,
		fmt.Sprintf("synced=%t", syncedUnit),
		configsFP,
		refsFP,
		calleesFP,
	)
}

// configsFingerprint canonically encodes every top-level config const:
// source text plus absolute declaration line, because config decl lines
// surface verbatim in warnings ("declared at line N") and config
// bindings affect resolution inside every unit.
func configsFingerprint(file *source.File, mod *ast.Module) string {
	var b strings.Builder
	for _, c := range mod.Configs {
		sp := c.Span()
		text := ""
		if sp.IsValid() && int(sp.End) <= len(file.Content) {
			text = file.Content[sp.Start:sp.End]
		}
		fmt.Fprintf(&b, "%d|%s\n", file.Line(sp.Start), text)
	}
	return b.String()
}

// moduleRefs canonically encodes how the unit's identifiers resolve
// outside it: every identifier bound to a module-scope symbol (config
// const or top-level procedure) or left unresolved. Renaming or
// re-kinding a module-level binding another procedure introduced — or
// removing one so an identifier falls back to unresolved/builtin —
// changes this string and invalidates the unit.
func moduleRefs(proc *ast.ProcDecl, info *sym.Info) string {
	set := make(map[string]struct{})
	ast.Walk(proc, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		s, used := info.Uses[id]
		switch {
		case !used:
			// Declaration occurrences are covered by the unit text.
		case s == nil:
			set["?"+id.Name] = struct{}{}
		case s.Scope != nil && s.Scope.Kind == sym.ScopeModule:
			set[fmt.Sprintf("%s:%d:%d:%t", s.Name, int(s.Kind), int(s.Type.Qual), s.ByRef)] = struct{}{}
		}
		return true
	})
	refs := make([]string, 0, len(set))
	for r := range set {
		refs = append(refs, r)
	}
	sort.Strings(refs)
	return strings.Join(refs, "\n")
}

// captureUnit converts a freshly analyzed unit into its
// position-relative memo form. pdiags holds exactly the diagnostics the
// unit's pipeline emitted (the caller gave analyzeProcSafe a private
// collector).
func captureUnit(file *source.File, proc *ast.ProcDecl, beginPrefix int,
	pr *ProcResult, pdiags *source.Diagnostics) *UnitResult {
	base := file.Line(proc.Sp.Start)
	ur := &UnitResult{
		Proc:       pr.Proc.Name.Name,
		GraphStats: pr.GraphStats,
		PPSStats:   pr.PPSStats,
		Deadlocks:  pr.Deadlocks,
		HasAtomics: pr.HasAtomics,
		Truncated:  pr.Truncated,
	}
	for _, w := range pr.Warnings {
		uw := UnitWarning{
			Var:     w.Var,
			Write:   w.Write,
			TaskOrd: parser.TaskIndex(w.Task) - beginPrefix,
			Reason:  w.Reason,
			RelLine: w.AccessLine - base,
			Col:     w.AccessCol,
			Prov:    w.Prov,
		}
		if uw.TaskOrd < 0 || parser.TaskIndex(w.Task) < 0 {
			uw.TaskOrd = -1
			uw.TaskLabel = w.Task
		}
		if w.DeclPos.IsValid() && w.DeclPos >= proc.Sp.Start && w.DeclPos < proc.Sp.End {
			uw.DeclLine = w.DeclLine - base
		} else {
			uw.DeclLine = w.DeclLine
			uw.DeclAbs = true
		}
		ur.Warnings = append(ur.Warnings, uw)
	}
	// Replayable diagnostics: Note-severity entries, split around the
	// warning-severity block analyzeProc emits between lowering notes and
	// the deadlock note.
	seenWarning := false
	for _, d := range pdiags.All() {
		switch d.Severity {
		case source.Warning:
			seenWarning = true
		case source.Note:
			n := captureNote(file, proc, base, d)
			if seenWarning {
				ur.PostNotes = append(ur.PostNotes, n)
			} else {
				ur.PreNotes = append(ur.PreNotes, n)
			}
		}
	}
	return ur
}

func captureNote(file *source.File, proc *ast.ProcDecl, base int, d source.Diagnostic) UnitNote {
	n := UnitNote{Message: d.Message}
	start := d.Span.Start
	if !start.IsValid() {
		n.NoPos = true
		return n
	}
	n.Col = file.Column(start)
	line := file.Line(start)
	if start >= proc.Sp.Start && start < proc.Sp.End {
		n.RelLine = line - base
	} else {
		n.RelLine = line
		n.Abs = true
	}
	return n
}

// materialize rebases a memoized unit against the unit's current
// position and begin prefix, reproducing the ProcResult — and the
// diagnostics — a fresh analyzeProc run would emit.
func (ur *UnitResult) materialize(file *source.File, proc *ast.ProcDecl,
	beginPrefix int, diags *source.Diagnostics) *ProcResult {
	base := file.Line(proc.Sp.Start)
	pr := &ProcResult{
		Proc:       proc,
		GraphStats: ur.GraphStats,
		PPSStats:   ur.PPSStats,
		Deadlocks:  ur.Deadlocks,
		HasAtomics: ur.HasAtomics,
		Truncated:  ur.Truncated,
	}
	for _, uw := range ur.Warnings {
		task := uw.TaskLabel
		if uw.TaskOrd >= 0 {
			task = parser.TaskLabel(beginPrefix + uw.TaskOrd)
		}
		declLine := uw.DeclLine
		declPos := source.NoPos
		if !uw.DeclAbs {
			declLine += base
			declPos = file.PosAt(declLine, 1)
		}
		accessLine := base + uw.RelLine
		pr.Warnings = append(pr.Warnings, Warning{
			Var:        uw.Var,
			Task:       task,
			Proc:       ur.Proc,
			Write:      uw.Write,
			Reason:     uw.Reason,
			AccessLine: accessLine,
			AccessCol:  uw.Col,
			DeclLine:   declLine,
			DeclPos:    declPos,
			Pos:        fmt.Sprintf("%s:%d:%d", file.Name, accessLine, uw.Col),
			Prov:       uw.Prov,
		})
	}
	for _, n := range ur.PreNotes {
		diags.Add(n.diag(file, base))
	}
	for _, w := range pr.Warnings {
		diags.Addf(file, source.NoSpan, source.Warning, "%s", w.String())
	}
	for _, n := range ur.PostNotes {
		diags.Add(n.diag(file, base))
	}
	return pr
}

// diag re-anchors a memoized note at the unit's current position.
func (n UnitNote) diag(file *source.File, base int) source.Diagnostic {
	d := source.Diagnostic{File: file, Span: source.NoSpan, Severity: source.Note, Message: n.Message}
	if n.NoPos {
		return d
	}
	line := n.RelLine
	if !n.Abs {
		line += base
	}
	p := file.PosAt(line, n.Col)
	d.Span = source.Span{Start: p, End: p}
	return d
}
