// Package cache provides a content-addressed result cache: values are
// stored under a SHA-256 key derived from everything that determines
// them (source text, effective options, tool version), so a hit is
// correct by construction — any input change produces a different key
// and a clean miss, and no invalidation protocol is needed.
//
// The cache is generic over its value type so higher layers can store
// their own types (the public package instantiates it with *Report)
// without this package importing them. Two storage tiers:
//
//   - an in-memory LRU holding decoded values, bounded by entry count;
//   - an optional on-disk layer (one checksummed file per key, written
//     with a temp-file rename) that survives process restarts and is
//     shared by concurrent processes.
//
// The disk tier is crash-safe: every entry carries a header with a
// SHA-256 checksum of its payload, verified on every read. A corrupt
// entry — torn write, bit rot, truncation, a concurrent writer dying
// mid-rename — is never decoded and never crashes the reader; it is
// quarantined (moved aside under quarantine/) and the lookup degrades
// to a miss, so the worst a bad disk can do is force a recompute.
// RecoverDisk runs the same validation over the whole directory at
// startup. Write failures are counted, and after
// MaxConsecutiveDiskFailures in a row the disk tier disables itself
// with a one-time log instead of hammering a dead disk forever.
//
// Every returned value is cloned through the Codec, so callers may
// freely mutate what they get back without corrupting the cache.
package cache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
)

// Key is a content address: the SHA-256 of the inputs that determine
// the cached value.
type Key [sha256.Size]byte

// KeyOf hashes the given chunks into a Key. Chunks are length-prefix
// separated so ("ab","c") and ("a","bc") cannot collide.
func KeyOf(chunks ...string) Key {
	h := sha256.New()
	var lenbuf [8]byte
	for _, c := range chunks {
		n := len(c)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write([]byte(c))
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// String returns the hex form of the key (also the disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the 64-hex form back into a Key — how the cache peer
// HTTP endpoint turns a URL path segment into an address.
func ParseKey(s string) (Key, error) {
	var k Key
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != sha256.Size {
		return k, fmt.Errorf("cache: malformed key %q", s)
	}
	copy(k[:], raw)
	return k, nil
}

// Codec says how to serialize and defensively copy cached values. All
// three functions must be safe for concurrent use.
type Codec[V any] struct {
	// Encode serializes a value for the disk layer.
	Encode func(V) ([]byte, error)
	// Decode deserializes a disk entry.
	Decode func([]byte) (V, error)
	// Clone deep-copies a value; Get and Put clone through this so the
	// cache's copy is never aliased by callers.
	Clone func(V) V
}

// Stats counts cache traffic. Retrieved via Cache.Stats.
type Stats struct {
	Hits      int64 // in-memory hits
	DiskHits  int64 // misses served by the disk layer (subset of Hits)
	Misses    int64
	Stores    int64
	Evictions int64
	// DroppedWrites counts async disk writes discarded because the write
	// queue was full (StartAsyncDisk). The in-memory entry is unaffected;
	// only persistence across restarts is lost for those entries.
	DroppedWrites int64
	// DiskErrors counts disk-tier I/O failures: failed entry writes and
	// failed (non-ENOENT) entry reads. Corruption detected by the
	// checksum counts under Quarantined, not here.
	DiskErrors int64
	// Quarantined counts corrupt disk entries moved aside (by a read, or
	// by RecoverDisk) instead of being served or crashed on.
	Quarantined int64
}

// Cache is a bounded LRU keyed by content address, with an optional
// write-through persistence backend. Safe for concurrent use.
type Cache[V any] struct {
	codec      Codec[V]
	maxEntries int
	backend    Backend // nil disables the persistence layer

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	stats Stats
	// consecFails counts consecutive disk write failures; at
	// MaxConsecutiveDiskFailures the disk tier turns itself off
	// (diskDisabled) with a one-time warning log.
	consecFails  int
	diskDisabled bool

	// Async disk tier (StartAsyncDisk): jobs feed a single background
	// writer; pending tracks enqueued-but-unwritten entries for Flush.
	// Enqueues happen under mu (non-blocking sends to a buffered
	// channel), so Close can atomically cut off producers before closing
	// the channel.
	async   chan diskJob[V]
	pending sync.WaitGroup
	done    chan struct{}
}

// diskJob is one queued async disk write. The value is the cache's own
// immutable copy; encoding happens on the writer goroutine so Put never
// pays serialization latency in async mode.
type diskJob[V any] struct {
	key Key
	val V
}

type entry[V any] struct {
	key Key
	val V
}

// DefaultMaxEntries bounds the in-memory layer when the caller passes
// maxEntries <= 0.
const DefaultMaxEntries = 1024

// New creates a cache. maxEntries bounds the in-memory LRU (<= 0 means
// DefaultMaxEntries); dir, when non-empty, enables a local-directory
// persistence backend, created on first store.
func New[V any](codec Codec[V], maxEntries int, dir string) *Cache[V] {
	var be Backend
	if dir != "" {
		be = NewDirBackend(dir)
	}
	return NewWithBackend(codec, maxEntries, be)
}

// NewWithBackend creates a cache over an arbitrary persistence backend
// (nil for memory-only) — how the cluster layer plugs a tiered
// local+remote store under the same LRU, envelope validation, and
// self-disabling failure accounting as the plain disk tier.
func NewWithBackend[V any](codec Codec[V], maxEntries int, be Backend) *Cache[V] {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache[V]{
		codec:      codec,
		maxEntries: maxEntries,
		backend:    be,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
	}
}

// Backend returns the persistence backend (nil for memory-only caches)
// — what uafserve mounts behind its /v1/cache peer endpoints.
func (c *Cache[V]) Backend() Backend { return c.backend }

// Get returns a clone of the value stored under k. A memory miss falls
// through to the disk layer (when configured) and promotes the decoded
// value into memory.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		v := c.codec.Clone(el.Value.(*entry[V]).val)
		c.stats.Hits++
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()

	if c.diskActive() {
		if v, ok := c.readDisk(k); ok {
			c.mu.Lock()
			c.insertLocked(k, v)
			c.stats.Hits++
			c.stats.DiskHits++
			out := c.codec.Clone(v)
			c.mu.Unlock()
			return out, true
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	var zero V
	return zero, false
}

// Put stores a clone of v under k in memory and (best-effort) on disk.
// Disk write failures never fail the call — the cache is an
// accelerator, never a correctness dependency — but they are no longer
// silent: each one counts in Stats.DiskErrors, and after
// MaxConsecutiveDiskFailures in a row the disk tier disables itself
// with a one-time warning log (subsequent Puts skip the disk entirely).
// With StartAsyncDisk active, the disk write is queued and performed by
// the background writer instead of blocking the caller.
func (c *Cache[V]) Put(k Key, v V) {
	v = c.codec.Clone(v)
	c.mu.Lock()
	c.insertLocked(k, v)
	c.stats.Stores++
	disk := c.backend != nil && !c.diskDisabled
	enqueued := false
	if disk && c.async != nil {
		enqueued = true
		c.pending.Add(1)
		select {
		case c.async <- diskJob[V]{key: k, val: v}:
		default:
			// Queue full: the write is dropped, not blocked on. The
			// in-memory entry stays; only restart persistence is lost.
			c.pending.Done()
			c.stats.DroppedWrites++
		}
	}
	c.mu.Unlock()

	if !disk || enqueued {
		return
	}
	c.noteWrite(c.writeDisk(k, v))
}

// MaxConsecutiveDiskFailures is how many disk writes must fail in a row
// before the disk tier turns itself off. One success resets the streak.
const MaxConsecutiveDiskFailures = 8

// noteWrite folds one disk write outcome into the failure accounting:
// success resets the consecutive-failure streak, failure counts it and
// — at MaxConsecutiveDiskFailures — disables the disk tier with a
// one-time warning. The in-memory tier is unaffected either way.
func (c *Cache[V]) noteWrite(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		c.consecFails = 0
		return
	}
	c.stats.DiskErrors++
	c.consecFails++
	if c.consecFails >= MaxConsecutiveDiskFailures && !c.diskDisabled {
		c.diskDisabled = true
		slog.Warn("cache: persistence tier disabled after consecutive write failures",
			"failures", c.consecFails, "backend", c.backend.Name(), "err", err)
	}
}

// diskActive reports whether the persistence tier exists and has not
// disabled itself.
func (c *Cache[V]) diskActive() bool {
	if c.backend == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.diskDisabled
}

// DiskState classifies the persistence tier for health surfaces: "off"
// (no backend configured), "ok", or "disabled" (too many consecutive
// write failures; see MaxConsecutiveDiskFailures).
func (c *Cache[V]) DiskState() string {
	if c.backend == nil {
		return "off"
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.diskDisabled {
		return "disabled"
	}
	return "ok"
}

// writeDisk serializes v into the checksummed envelope and hands it to
// the persistence backend. The envelope is built here — above the
// backend seam — so every backend's entries carry the same crash-safety
// checksum.
func (c *Cache[V]) writeDisk(k Key, v V) error {
	data, err := c.codec.Encode(v)
	if err != nil {
		return err
	}
	return c.backend.Store(k, encodeEntry(data))
}

// ------------------------------------------------- disk entry envelope

// diskMagic versions the on-disk entry envelope. Entries not carrying
// it (including pre-checksum legacy files) are treated as corrupt and
// quarantined; they recompute once and re-persist in the new format.
const diskMagic = "uafcache1"

// encodeEntry wraps a payload in the checksummed envelope:
//
//	uafcache1 <64-hex sha256(payload)>\n<payload>
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(diskMagic) + 1 + hex.EncodedLen(len(sum)) + 1 + len(payload))
	b.WriteString(diskMagic)
	b.WriteByte(' ')
	b.WriteString(hex.EncodeToString(sum[:]))
	b.WriteByte('\n')
	b.Write(payload)
	return b.Bytes()
}

// decodeEntry validates the envelope and returns the payload. Any
// deviation — missing or malformed header, checksum mismatch,
// truncation — is an error; callers quarantine on it.
func decodeEntry(raw []byte) ([]byte, error) {
	header, payload, ok := bytes.Cut(raw, []byte{'\n'})
	if !ok {
		return nil, fmt.Errorf("cache: entry has no header line")
	}
	magic, sumHex, ok := bytes.Cut(header, []byte{' '})
	if !ok || string(magic) != diskMagic {
		return nil, fmt.Errorf("cache: entry header %q is not %q", header, diskMagic)
	}
	want, err := hex.DecodeString(string(sumHex))
	if err != nil || len(want) != sha256.Size {
		return nil, fmt.Errorf("cache: malformed entry checksum %q", sumHex)
	}
	if got := sha256.Sum256(payload); !bytes.Equal(got[:], want) {
		return nil, fmt.Errorf("cache: entry checksum mismatch (torn write or corruption)")
	}
	return payload, nil
}

// ValidateEnvelope checks that raw is a well-formed checksummed entry
// envelope without decoding its payload — how a cache peer endpoint
// rejects corrupt uploads and how the tiered backend refuses to warm a
// torn remote read through to local disk.
func ValidateEnvelope(raw []byte) error {
	_, err := decodeEntry(raw)
	return err
}

// readDisk loads and validates one backend entry. I/O errors count as
// DiskErrors; validation or decode failures quarantine the entry
// (Backend.Discard). Both degrade to a miss.
func (c *Cache[V]) readDisk(k Key) (V, bool) {
	var zero V
	raw, err := c.backend.Fetch(k)
	if err != nil {
		if !errors.Is(err, ErrNotFound) {
			c.mu.Lock()
			c.stats.DiskErrors++
			c.mu.Unlock()
		}
		return zero, false
	}
	payload, err := decodeEntry(raw)
	if err == nil {
		v, derr := c.codec.Decode(payload)
		if derr == nil {
			return v, true
		}
		err = derr
	}
	c.backend.Discard(k, err)
	c.mu.Lock()
	c.stats.Quarantined++
	c.mu.Unlock()
	slog.Warn("cache: quarantined corrupt entry",
		"entry", k.String(), "backend", c.backend.Name(), "cause", err)
	return zero, false
}

// QuarantineDir is the subdirectory corrupt entries are moved into,
// preserved for post-mortem inspection instead of deleted.
const QuarantineDir = "quarantine"

// RecoverStats summarizes one RecoverDisk pass.
type RecoverStats struct {
	// Scanned counts entry files examined.
	Scanned int
	// OK counts entries that validated (checksum and decode).
	OK int
	// Quarantined counts corrupt entries moved aside.
	Quarantined int
	// TempFiles counts leftover put-* temp files (a writer crashed
	// mid-write before its rename) that were swept.
	TempFiles int
}

// RecoverDisk validates every entry in the persistence tier — the
// startup crash-recovery scan. Corrupt entries are quarantined,
// orphaned temp files from interrupted writes are removed, and valid
// entries are left in place (not promoted to memory; they load on
// first Get). A no-op without a recoverable backend (remote tiers
// validate per read instead).
func (c *Cache[V]) RecoverDisk() RecoverStats {
	rb, ok := c.backend.(RecoverableBackend)
	if !ok {
		return RecoverStats{}
	}
	rs := rb.Recover(func(env []byte) error {
		payload, err := decodeEntry(env)
		if err != nil {
			return err
		}
		if _, derr := c.codec.Decode(payload); derr != nil {
			return fmt.Errorf("cache: entry payload does not decode")
		}
		return nil
	})
	if rs.Quarantined > 0 {
		c.mu.Lock()
		c.stats.Quarantined += int64(rs.Quarantined)
		c.mu.Unlock()
		slog.Warn("cache: recovery quarantined corrupt entries",
			"backend", c.backend.Name(), "quarantined", rs.Quarantined)
	}
	return rs
}

// StartAsyncDisk switches the disk tier to asynchronous writes: Put
// enqueues entries on a bounded queue (depth entries, <= 0 means 256)
// drained by one background writer goroutine, so the analysis path
// never waits on serialization or I/O. When the queue is full the write
// is dropped (Stats.DroppedWrites) rather than applying backpressure.
//
// Call before the cache is shared between goroutines (typically right
// after New). No-op when the cache has no disk tier or async mode is
// already on. Pair with Flush at checkpoints and Close at shutdown.
func (c *Cache[V]) StartAsyncDisk(depth int) {
	if c.backend == nil {
		return
	}
	if depth <= 0 {
		depth = 256
	}
	c.mu.Lock()
	if c.async != nil {
		c.mu.Unlock()
		return
	}
	c.async = make(chan diskJob[V], depth)
	c.done = make(chan struct{})
	jobs, done := c.async, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		for j := range jobs {
			c.noteWrite(c.writeDisk(j.key, j.val))
			c.pending.Done()
		}
	}()
}

// Flush blocks until every queued async disk write has reached the
// filesystem. A no-op for synchronous caches. Safe to call repeatedly
// and concurrently with Put (writes enqueued after Flush begins may or
// may not be covered).
func (c *Cache[V]) Flush() {
	c.pending.Wait()
}

// Close drains the async queue and stops the background writer. The
// cache stays fully usable afterwards — subsequent Puts simply fall
// back to synchronous disk writes. Safe to call more than once.
func (c *Cache[V]) Close() {
	c.mu.Lock()
	jobs, done := c.async, c.done
	c.async = nil // producers cut off atomically; later Puts write sync
	c.mu.Unlock()
	if jobs == nil {
		return
	}
	c.pending.Wait() // buffered jobs all written and Done'd
	close(jobs)
	<-done
}

// insertLocked adds or refreshes the in-memory entry and evicts from
// the LRU tail past maxEntries. Caller holds c.mu.
func (c *Cache[V]) insertLocked(k Key, v V) {
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[V]{key: k, val: v})
	for c.ll.Len() > c.maxEntries {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry[V]).key)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of in-memory entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
