// Package cache provides a content-addressed result cache: values are
// stored under a SHA-256 key derived from everything that determines
// them (source text, effective options, tool version), so a hit is
// correct by construction — any input change produces a different key
// and a clean miss, and no invalidation protocol is needed.
//
// The cache is generic over its value type so higher layers can store
// their own types (the public package instantiates it with *Report)
// without this package importing them. Two storage tiers:
//
//   - an in-memory LRU holding decoded values, bounded by entry count;
//   - an optional on-disk layer (one JSON file per key, written with a
//     temp-file rename) that survives process restarts and is shared by
//     concurrent processes.
//
// Every returned value is cloned through the Codec, so callers may
// freely mutate what they get back without corrupting the cache.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"
)

// Key is a content address: the SHA-256 of the inputs that determine
// the cached value.
type Key [sha256.Size]byte

// KeyOf hashes the given chunks into a Key. Chunks are length-prefix
// separated so ("ab","c") and ("a","bc") cannot collide.
func KeyOf(chunks ...string) Key {
	h := sha256.New()
	var lenbuf [8]byte
	for _, c := range chunks {
		n := len(c)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write([]byte(c))
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// String returns the hex form of the key (also the disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Codec says how to serialize and defensively copy cached values. All
// three functions must be safe for concurrent use.
type Codec[V any] struct {
	// Encode serializes a value for the disk layer.
	Encode func(V) ([]byte, error)
	// Decode deserializes a disk entry.
	Decode func([]byte) (V, error)
	// Clone deep-copies a value; Get and Put clone through this so the
	// cache's copy is never aliased by callers.
	Clone func(V) V
}

// Stats counts cache traffic. Retrieved via Cache.Stats.
type Stats struct {
	Hits      int64 // in-memory hits
	DiskHits  int64 // misses served by the disk layer (subset of Hits)
	Misses    int64
	Stores    int64
	Evictions int64
	// DroppedWrites counts async disk writes discarded because the write
	// queue was full (StartAsyncDisk). The in-memory entry is unaffected;
	// only persistence across restarts is lost for those entries.
	DroppedWrites int64
}

// Cache is a bounded LRU keyed by content address, with an optional
// write-through disk layer. Safe for concurrent use.
type Cache[V any] struct {
	codec      Codec[V]
	maxEntries int
	dir        string // "" disables the disk layer

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	stats Stats

	// Async disk tier (StartAsyncDisk): jobs feed a single background
	// writer; pending tracks enqueued-but-unwritten entries for Flush.
	// Enqueues happen under mu (non-blocking sends to a buffered
	// channel), so Close can atomically cut off producers before closing
	// the channel.
	async   chan diskJob[V]
	pending sync.WaitGroup
	done    chan struct{}
}

// diskJob is one queued async disk write. The value is the cache's own
// immutable copy; encoding happens on the writer goroutine so Put never
// pays serialization latency in async mode.
type diskJob[V any] struct {
	key Key
	val V
}

type entry[V any] struct {
	key Key
	val V
}

// DefaultMaxEntries bounds the in-memory layer when the caller passes
// maxEntries <= 0.
const DefaultMaxEntries = 1024

// New creates a cache. maxEntries bounds the in-memory LRU (<= 0 means
// DefaultMaxEntries); dir, when non-empty, enables the disk layer and
// is created on first store.
func New[V any](codec Codec[V], maxEntries int, dir string) *Cache[V] {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache[V]{
		codec:      codec,
		maxEntries: maxEntries,
		dir:        dir,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
	}
}

// Get returns a clone of the value stored under k. A memory miss falls
// through to the disk layer (when configured) and promotes the decoded
// value into memory.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		v := c.codec.Clone(el.Value.(*entry[V]).val)
		c.stats.Hits++
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if data, err := os.ReadFile(c.path(k)); err == nil {
			if v, err := c.codec.Decode(data); err == nil {
				c.mu.Lock()
				c.insertLocked(k, v)
				c.stats.Hits++
				c.stats.DiskHits++
				out := c.codec.Clone(v)
				c.mu.Unlock()
				return out, true
			}
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	var zero V
	return zero, false
}

// Put stores a clone of v under k in memory and (best-effort) on disk.
// Disk write failures are deliberately swallowed: the cache is an
// accelerator, never a correctness dependency. With StartAsyncDisk
// active, the disk write is queued and performed by the background
// writer instead of blocking the caller.
func (c *Cache[V]) Put(k Key, v V) {
	v = c.codec.Clone(v)
	c.mu.Lock()
	c.insertLocked(k, v)
	c.stats.Stores++
	enqueued := false
	if c.dir != "" && c.async != nil {
		enqueued = true
		c.pending.Add(1)
		select {
		case c.async <- diskJob[V]{key: k, val: v}:
		default:
			// Queue full: the write is dropped, not blocked on. The
			// in-memory entry stays; only restart persistence is lost.
			c.pending.Done()
			c.stats.DroppedWrites++
		}
	}
	c.mu.Unlock()

	if c.dir == "" || enqueued {
		return
	}
	c.writeDisk(k, v)
}

// writeDisk serializes v and writes it under k's disk path with a
// temp-file + rename so concurrent readers never see a partial entry.
func (c *Cache[V]) writeDisk(k Key, v V) {
	data, err := c.codec.Encode(v)
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(k)); err != nil {
		os.Remove(name)
	}
}

// StartAsyncDisk switches the disk tier to asynchronous writes: Put
// enqueues entries on a bounded queue (depth entries, <= 0 means 256)
// drained by one background writer goroutine, so the analysis path
// never waits on serialization or I/O. When the queue is full the write
// is dropped (Stats.DroppedWrites) rather than applying backpressure.
//
// Call before the cache is shared between goroutines (typically right
// after New). No-op when the cache has no disk tier or async mode is
// already on. Pair with Flush at checkpoints and Close at shutdown.
func (c *Cache[V]) StartAsyncDisk(depth int) {
	if c.dir == "" {
		return
	}
	if depth <= 0 {
		depth = 256
	}
	c.mu.Lock()
	if c.async != nil {
		c.mu.Unlock()
		return
	}
	c.async = make(chan diskJob[V], depth)
	c.done = make(chan struct{})
	jobs, done := c.async, c.done
	c.mu.Unlock()
	go func() {
		defer close(done)
		for j := range jobs {
			c.writeDisk(j.key, j.val)
			c.pending.Done()
		}
	}()
}

// Flush blocks until every queued async disk write has reached the
// filesystem. A no-op for synchronous caches. Safe to call repeatedly
// and concurrently with Put (writes enqueued after Flush begins may or
// may not be covered).
func (c *Cache[V]) Flush() {
	c.pending.Wait()
}

// Close drains the async queue and stops the background writer. The
// cache stays fully usable afterwards — subsequent Puts simply fall
// back to synchronous disk writes. Safe to call more than once.
func (c *Cache[V]) Close() {
	c.mu.Lock()
	jobs, done := c.async, c.done
	c.async = nil // producers cut off atomically; later Puts write sync
	c.mu.Unlock()
	if jobs == nil {
		return
	}
	c.pending.Wait() // buffered jobs all written and Done'd
	close(jobs)
	<-done
}

// insertLocked adds or refreshes the in-memory entry and evicts from
// the LRU tail past maxEntries. Caller holds c.mu.
func (c *Cache[V]) insertLocked(k Key, v V) {
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[V]{key: k, val: v})
	for c.ll.Len() > c.maxEntries {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry[V]).key)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of in-memory entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache[V]) path(k Key) string {
	return filepath.Join(c.dir, k.String()+".json")
}
