package cache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uafcheck/internal/fault"
)

// ErrNotFound is the canonical miss: the backend has no entry under the
// key. Any other Fetch error is an I/O failure and counts as
// Stats.DiskErrors at the cache layer.
var ErrNotFound = errors.New("cache: entry not found")

// Backend is a pluggable blob store for enveloped cache entries — the
// persistence tier behind the in-memory LRU. Implementations move raw
// envelope bytes only; the checksummed envelope itself (encodeEntry /
// decodeEntry) is produced and verified by the Cache, so every backend
// — a local directory, a remote HTTP peer, a tiered chain — gets the
// same crash-safety contract: a torn or corrupt entry is detected on
// read, quarantined via Discard, and degrades to a miss.
//
// All methods must be safe for concurrent use. Store failures are
// tolerated by the cache (counted, and the tier self-disables after
// MaxConsecutiveDiskFailures in a row); Fetch failures degrade to
// misses.
type Backend interface {
	// Name identifies the backend in logs and health rows.
	Name() string
	// Fetch returns the raw envelope bytes stored under k, or
	// ErrNotFound (possibly wrapped) for a clean miss.
	Fetch(k Key) ([]byte, error)
	// Store persists the envelope bytes under k.
	Store(k Key, env []byte) error
	// Discard removes the entry under k so it is never consulted again
	// — called by the cache when the envelope fails validation. cause
	// is the validation error, for backends that preserve evidence.
	// Best-effort: Discard never fails.
	Discard(k Key, cause error)
}

// RecoverableBackend is implemented by backends that support a startup
// crash-recovery scan over their whole store (the local directory
// backend). validate reports whether one envelope is intact.
type RecoverableBackend interface {
	Recover(validate func(env []byte) error) RecoverStats
}

// --------------------------------------------------------- DirBackend

// DirBackend stores one envelope file per key in a local directory —
// the disk tier extracted from the original cache implementation.
// Writes are temp-file + rename so concurrent readers never observe a
// partial entry; corrupt entries are moved into quarantine/ for
// post-mortem inspection instead of deleted. The fault-injection
// points cache.fs.read / cache.fs.write / cache.fs.rename /
// cache.fs.torn instrument this backend (and only this backend — a
// remote peer's torn reads have their own point).
type DirBackend struct {
	dir string
}

// NewDirBackend creates a directory backend rooted at dir. The
// directory is created lazily on first store.
func NewDirBackend(dir string) *DirBackend {
	return &DirBackend{dir: dir}
}

// Name implements Backend.
func (d *DirBackend) Name() string { return "dir:" + d.dir }

// Dir returns the backing directory.
func (d *DirBackend) Dir() string { return d.dir }

func (d *DirBackend) path(k Key) string {
	return filepath.Join(d.dir, k.String()+".json")
}

// Fetch implements Backend: a plain file read, with ENOENT mapped to
// the canonical miss.
func (d *DirBackend) Fetch(k Key) ([]byte, error) {
	raw, err := os.ReadFile(d.path(k))
	if err == nil {
		err = fault.Err(fault.CacheRead)
	}
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, k.String())
		}
		return nil, err
	}
	return raw, nil
}

// Store implements Backend: temp-file + rename so a crash mid-write
// leaves only a put-* temp (swept by Recover) and a torn rename leaves
// an entry the envelope checksum rejects.
func (d *DirBackend) Store(k Key, env []byte) error {
	env = fault.Mangle(fault.CacheTorn, env)
	if err := fault.Err(fault.CacheWrite); err != nil {
		return err
	}
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := fault.Err(fault.CacheRename); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, d.path(k)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Discard implements Backend: the entry is moved into quarantine/
// (falling back to deletion when the move itself fails) so it is never
// consulted again but stays available for post-mortem inspection.
func (d *DirBackend) Discard(k Key, cause error) {
	d.quarantinePath(d.path(k))
}

// quarantinePath moves one entry file aside. Never errors: the worst
// case (move and delete both fail) re-quarantines on the next read.
func (d *DirBackend) quarantinePath(path string) {
	qdir := filepath.Join(d.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err == nil {
			return
		}
	}
	os.Remove(path)
}

// Recover implements RecoverableBackend: validate every entry file,
// quarantine the corrupt ones, and sweep put-* temps orphaned by a
// writer that crashed before its rename.
func (d *DirBackend) Recover(validate func(env []byte) error) RecoverStats {
	var rs RecoverStats
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return rs
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(d.dir, name)
		if strings.HasPrefix(name, "put-") {
			os.Remove(path)
			rs.TempFiles++
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		rs.Scanned++
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if validate(raw) == nil {
			rs.OK++
			continue
		}
		d.quarantinePath(path)
		rs.Quarantined++
	}
	return rs
}

// ------------------------------------------------------ TieredBackend

// TieredBackend chains a fast local backend with a remote one: reads
// try local first and fall through to the remote tier, warming the
// local copy on a remote hit so a cold replica serves its second
// lookup from disk instead of the network. Writes land locally only —
// peers pull entries on demand rather than being pushed to, which
// keeps stores off the request path and makes the remote tier purely
// an accelerator.
//
// A remote envelope is validated before it is warmed through: torn or
// corrupt remote bytes are never persisted locally. They are still
// returned to the cache layer, whose own validation quarantines the
// entry (Discard) and degrades the lookup to a miss — the same
// contract as a torn local read.
type TieredBackend struct {
	local  Backend
	remote Backend
}

// NewTiered chains local and remote into one backend.
func NewTiered(local, remote Backend) *TieredBackend {
	return &TieredBackend{local: local, remote: remote}
}

// Name implements Backend.
func (t *TieredBackend) Name() string {
	return "tiered(" + t.local.Name() + ", " + t.remote.Name() + ")"
}

// Fetch implements Backend: local first, then remote with warm-through.
func (t *TieredBackend) Fetch(k Key) ([]byte, error) {
	env, err := t.local.Fetch(k)
	if err == nil {
		return env, nil
	}
	env, rerr := t.remote.Fetch(k)
	if rerr != nil {
		if errors.Is(rerr, ErrNotFound) && !errors.Is(err, ErrNotFound) {
			// A local I/O failure is the more actionable error when the
			// remote simply doesn't have the entry either.
			return nil, err
		}
		return nil, rerr
	}
	if _, verr := decodeEntry(env); verr == nil {
		t.local.Store(k, env) //nolint:errcheck — warm-through is best-effort
	}
	return env, nil
}

// Store implements Backend: local tier only (peers pull, see type doc).
func (t *TieredBackend) Store(k Key, env []byte) error {
	return t.local.Store(k, env)
}

// Discard implements Backend: both tiers, so neither can re-serve the
// corrupt entry.
func (t *TieredBackend) Discard(k Key, cause error) {
	t.local.Discard(k, cause)
	t.remote.Discard(k, cause)
}

// Recover implements RecoverableBackend by delegating to the local
// tier when it supports recovery (remote tiers validate per read).
func (t *TieredBackend) Recover(validate func(env []byte) error) RecoverStats {
	if r, ok := t.local.(RecoverableBackend); ok {
		return r.Recover(validate)
	}
	return RecoverStats{}
}
