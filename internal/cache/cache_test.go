package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type payload struct {
	Name  string   `json:"name"`
	Items []string `json:"items"`
}

func payloadCodec() Codec[*payload] {
	return Codec[*payload]{
		Encode: func(p *payload) ([]byte, error) { return json.Marshal(p) },
		Decode: func(b []byte) (*payload, error) {
			p := &payload{}
			if err := json.Unmarshal(b, p); err != nil {
				return nil, err
			}
			return p, nil
		},
		Clone: func(p *payload) *payload {
			cp := *p
			cp.Items = append([]string(nil), p.Items...)
			return &cp
		},
	}
}

func TestKeyOfChunkBoundaries(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error("length-prefixed chunks must not collide across boundaries")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Error("KeyOf must be deterministic")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(payloadCodec(), 8, "")
	k := KeyOf("a")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, &payload{Name: "a", Items: []string{"one"}})
	got, ok := c.Get(k)
	if !ok || got.Name != "a" || len(got.Items) != 1 {
		t.Fatalf("round trip lost data: %+v ok=%v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 store", st)
	}
}

// TestMutationIsolation: mutating either the stored value after Put or
// the returned value after Get must not leak into later Gets.
func TestMutationIsolation(t *testing.T) {
	c := New(payloadCodec(), 8, "")
	k := KeyOf("a")
	orig := &payload{Name: "a", Items: []string{"one"}}
	c.Put(k, orig)
	orig.Items[0] = "tampered-after-put"

	first, _ := c.Get(k)
	first.Items[0] = "tampered-after-get"
	first.Name = "tampered"

	second, _ := c.Get(k)
	if second.Name != "a" || second.Items[0] != "one" {
		t.Errorf("cache entry was mutated through aliases: %+v", second)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(payloadCodec(), 2, "")
	k1, k2, k3 := KeyOf("1"), KeyOf("2"), KeyOf("3")
	c.Put(k1, &payload{Name: "1"})
	c.Put(k2, &payload{Name: "2"})
	// Touch k1 so k2 becomes the LRU victim.
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.Put(k3, &payload{Name: "3"})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(k2); ok {
		t.Error("LRU entry k2 survived eviction")
	}
	if _, ok := c.Get(k1); !ok {
		t.Error("recently used k1 was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestDiskLayerSurvivesNewCache(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf("persisted")
	first := New(payloadCodec(), 8, dir)
	first.Put(k, &payload{Name: "p", Items: []string{"x", "y"}})

	if _, err := os.Stat(filepath.Join(dir, k.String()+".json")); err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}

	second := New(payloadCodec(), 8, dir)
	got, ok := second.Get(k)
	if !ok || got.Name != "p" || len(got.Items) != 2 {
		t.Fatalf("disk layer did not serve the entry: %+v ok=%v", got, ok)
	}
	st := second.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want the hit attributed to disk", st)
	}
	// Now promoted: the next Get must be a memory hit.
	if _, ok := second.Get(k); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := second.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Errorf("stats after promotion = %+v", st)
	}
}

func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf("corrupt")
	if err := os.WriteFile(filepath.Join(dir, k.String()+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(payloadCodec(), 8, dir)
	if _, ok := c.Get(k); ok {
		t.Error("corrupt disk entry served as a hit")
	}
}

// TestConcurrentAccess drives mixed Get/Put traffic from many
// goroutines; correctness here is "no race, no panic, sane values"
// under `go test -race`.
func TestConcurrentAccess(t *testing.T) {
	c := New(payloadCodec(), 16, t.TempDir())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := KeyOf(fmt.Sprintf("key-%d", i%20))
				if v, ok := c.Get(k); ok {
					if v.Name == "" {
						t.Error("hit returned empty payload")
						return
					}
					continue
				}
				c.Put(k, &payload{Name: fmt.Sprintf("v-%d", i%20)})
			}
		}(w)
	}
	wg.Wait()
}
