package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type payload struct {
	Name  string   `json:"name"`
	Items []string `json:"items"`
}

func payloadCodec() Codec[*payload] {
	return Codec[*payload]{
		Encode: func(p *payload) ([]byte, error) { return json.Marshal(p) },
		Decode: func(b []byte) (*payload, error) {
			p := &payload{}
			if err := json.Unmarshal(b, p); err != nil {
				return nil, err
			}
			return p, nil
		},
		Clone: func(p *payload) *payload {
			cp := *p
			cp.Items = append([]string(nil), p.Items...)
			return &cp
		},
	}
}

func TestKeyOfChunkBoundaries(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error("length-prefixed chunks must not collide across boundaries")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Error("KeyOf must be deterministic")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(payloadCodec(), 8, "")
	k := KeyOf("a")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k, &payload{Name: "a", Items: []string{"one"}})
	got, ok := c.Get(k)
	if !ok || got.Name != "a" || len(got.Items) != 1 {
		t.Fatalf("round trip lost data: %+v ok=%v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 store", st)
	}
}

// TestMutationIsolation: mutating either the stored value after Put or
// the returned value after Get must not leak into later Gets.
func TestMutationIsolation(t *testing.T) {
	c := New(payloadCodec(), 8, "")
	k := KeyOf("a")
	orig := &payload{Name: "a", Items: []string{"one"}}
	c.Put(k, orig)
	orig.Items[0] = "tampered-after-put"

	first, _ := c.Get(k)
	first.Items[0] = "tampered-after-get"
	first.Name = "tampered"

	second, _ := c.Get(k)
	if second.Name != "a" || second.Items[0] != "one" {
		t.Errorf("cache entry was mutated through aliases: %+v", second)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(payloadCodec(), 2, "")
	k1, k2, k3 := KeyOf("1"), KeyOf("2"), KeyOf("3")
	c.Put(k1, &payload{Name: "1"})
	c.Put(k2, &payload{Name: "2"})
	// Touch k1 so k2 becomes the LRU victim.
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.Put(k3, &payload{Name: "3"})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(k2); ok {
		t.Error("LRU entry k2 survived eviction")
	}
	if _, ok := c.Get(k1); !ok {
		t.Error("recently used k1 was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestDiskLayerSurvivesNewCache(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf("persisted")
	first := New(payloadCodec(), 8, dir)
	first.Put(k, &payload{Name: "p", Items: []string{"x", "y"}})

	if _, err := os.Stat(filepath.Join(dir, k.String()+".json")); err != nil {
		t.Fatalf("disk entry not written: %v", err)
	}

	second := New(payloadCodec(), 8, dir)
	got, ok := second.Get(k)
	if !ok || got.Name != "p" || len(got.Items) != 2 {
		t.Fatalf("disk layer did not serve the entry: %+v ok=%v", got, ok)
	}
	st := second.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want the hit attributed to disk", st)
	}
	// Now promoted: the next Get must be a memory hit.
	if _, ok := second.Get(k); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := second.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Errorf("stats after promotion = %+v", st)
	}
}

func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf("corrupt")
	if err := os.WriteFile(filepath.Join(dir, k.String()+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(payloadCodec(), 8, dir)
	if _, ok := c.Get(k); ok {
		t.Error("corrupt disk entry served as a hit")
	}
}

// TestConcurrentAccess drives mixed Get/Put traffic from many
// goroutines; correctness here is "no race, no panic, sane values"
// under `go test -race`.
func TestConcurrentAccess(t *testing.T) {
	c := New(payloadCodec(), 16, t.TempDir())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := KeyOf(fmt.Sprintf("key-%d", i%20))
				if v, ok := c.Get(k); ok {
					if v.Name == "" {
						t.Error("hit returned empty payload")
						return
					}
					continue
				}
				c.Put(k, &payload{Name: fmt.Sprintf("v-%d", i%20)})
			}
		}(w)
	}
	wg.Wait()
}

func TestAsyncDiskWritesReachDisk(t *testing.T) {
	dir := t.TempDir()
	c := New(payloadCodec(), 8, dir)
	c.StartAsyncDisk(16)

	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = KeyOf(fmt.Sprintf("k%d", i))
		c.Put(keys[i], &payload{Name: fmt.Sprintf("v%d", i)})
	}
	c.Flush()

	// A fresh synchronous cache over the same directory must see every
	// flushed entry.
	c2 := New(payloadCodec(), 8, dir)
	for i, k := range keys {
		got, ok := c2.Get(k)
		if !ok || got.Name != fmt.Sprintf("v%d", i) {
			t.Fatalf("entry %d not persisted by the async tier: %+v ok=%v", i, got, ok)
		}
	}
	if st := c.Stats(); st.DroppedWrites != 0 {
		t.Errorf("unexpected dropped writes: %+v", st)
	}
}

func TestAsyncDiskQueueOverflowDrops(t *testing.T) {
	dir := t.TempDir()
	c := New(payloadCodec(), 1024, dir)
	// Depth 1 with a burst of producers guarantees overflow; dropped
	// writes must be counted, never blocked on, and the in-memory entry
	// must survive regardless.
	c.StartAsyncDisk(1)
	const n = 64
	for i := 0; i < n; i++ {
		c.Put(KeyOf(fmt.Sprintf("burst%d", i)), &payload{Name: "x"})
	}
	c.Close()
	st := c.Stats()
	if st.Stores != n {
		t.Fatalf("stores = %d, want %d", st.Stores, n)
	}
	if st.DroppedWrites == 0 {
		t.Error("depth-1 queue under a burst should have dropped writes")
	}
	if c.Len() != n {
		t.Errorf("in-memory entries = %d, want %d (drops must not evict)", c.Len(), n)
	}
}

func TestCloseIsIdempotentAndFallsBackToSync(t *testing.T) {
	dir := t.TempDir()
	c := New(payloadCodec(), 8, dir)
	c.StartAsyncDisk(4)
	c.Put(KeyOf("pre"), &payload{Name: "pre"})
	c.Close()
	c.Close() // second close must be a no-op

	// Post-close Puts write synchronously: visible on disk immediately.
	c.Put(KeyOf("post"), &payload{Name: "post"})
	c2 := New(payloadCodec(), 8, dir)
	for _, name := range []string{"pre", "post"} {
		if got, ok := c2.Get(KeyOf(name)); !ok || got.Name != name {
			t.Fatalf("%s entry missing after close: %+v ok=%v", name, got, ok)
		}
	}
}

func TestAsyncConcurrentPutFlush(t *testing.T) {
	c := New(payloadCodec(), 256, t.TempDir())
	c.StartAsyncDisk(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				c.Put(KeyOf(fmt.Sprintf("g%d-%d", g, i)), &payload{Name: "v"})
			}
		}(g)
	}
	wg.Wait()
	c.Flush()
	c.Close()
	if st := c.Stats(); st.Stores != 8*32 {
		t.Errorf("stores = %d, want %d", st.Stores, 8*32)
	}
}

func TestStartAsyncDiskWithoutDirIsNoop(t *testing.T) {
	c := New(payloadCodec(), 8, "")
	c.StartAsyncDisk(4)
	c.Put(KeyOf("a"), &payload{Name: "a"})
	c.Flush()
	c.Close()
	if got, ok := c.Get(KeyOf("a")); !ok || got.Name != "a" {
		t.Fatalf("memory-only cache broken by async no-ops: %+v ok=%v", got, ok)
	}
}
