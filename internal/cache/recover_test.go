package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck/internal/fault"
)

// diskFiles returns the entry file names (not quarantine/, not temps)
// currently in dir.
func diskFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestDiskEntryChecksummed(t *testing.T) {
	dir := t.TempDir()
	c := New(payloadCodec(), 8, dir)
	k := KeyOf("a")
	c.Put(k, &payload{Name: "a"})
	raw, err := os.ReadFile(filepath.Join(dir, k.String()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(diskMagic+" ")) {
		t.Fatalf("disk entry does not start with the %q envelope: %q", diskMagic, raw[:32])
	}
	if _, err := decodeEntry(raw); err != nil {
		t.Fatalf("freshly written entry fails validation: %v", err)
	}
}

// TestCorruptEntryQuarantined: a corrupted entry must never be served
// or crash the reader — the read degrades to a miss and the file moves
// into quarantine/.
func TestCorruptEntryQuarantined(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":  func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"no-header": func(b []byte) []byte { return []byte(`{"name":"legacy"}`) },
		"empty":     func([]byte) []byte { return nil },
		"bad-magic": func(b []byte) []byte { return append([]byte("zzz"), b[3:]...) },
		"garbage":   func([]byte) []byte { return []byte("\x00\xff\x17 not a cache entry") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c := New(payloadCodec(), 8, dir)
			k := KeyOf(name)
			c.Put(k, &payload{Name: name})
			path := filepath.Join(dir, k.String()+".json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// A fresh cache (cold memory tier) must treat it as a miss.
			c2 := New(payloadCodec(), 8, dir)
			if _, ok := c2.Get(k); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if st := c2.Stats(); st.Quarantined != 1 {
				t.Errorf("Quarantined = %d, want 1", st.Quarantined)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still present at its original path")
			}
			qpath := filepath.Join(dir, QuarantineDir, filepath.Base(path))
			if _, err := os.Stat(qpath); err != nil {
				t.Errorf("corrupt entry not preserved in quarantine: %v", err)
			}

			// The slot is reusable: a recompute re-persists cleanly.
			c2.Put(k, &payload{Name: name})
			c3 := New(payloadCodec(), 8, dir)
			if got, ok := c3.Get(k); !ok || got.Name != name {
				t.Error("recomputed entry did not round-trip after quarantine")
			}
		})
	}
}

// TestRecoverDisk is the kill-and-restart scenario: corrupt a few
// entries and leave a stale temp file behind, then run the startup
// scan and check it quarantines exactly the bad ones.
func TestRecoverDisk(t *testing.T) {
	dir := t.TempDir()
	c := New(payloadCodec(), 32, dir)
	keys := make([]Key, 6)
	for i := range keys {
		keys[i] = KeyOf("entry", string(rune('a'+i)))
		c.Put(keys[i], &payload{Name: string(rune('a' + i))})
	}
	// Corrupt entries 0 and 1 (torn tail, bit flip), leave a writer's
	// orphaned temp file as if the process died mid-write.
	for i, mangle := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-7] },
		func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
	} {
		path := filepath.Join(dir, keys[i].String()+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mangle(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "put-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache over the same directory runs recovery.
	c2 := New(payloadCodec(), 32, dir)
	rs := c2.RecoverDisk()
	if rs.Scanned != 6 || rs.OK != 4 || rs.Quarantined != 2 || rs.TempFiles != 1 {
		t.Fatalf("RecoverDisk = %+v, want Scanned 6 / OK 4 / Quarantined 2 / TempFiles 1", rs)
	}
	if st := c2.Stats(); st.Quarantined != 2 {
		t.Errorf("stats.Quarantined = %d, want 2", st.Quarantined)
	}
	for _, name := range diskFiles(t, dir) {
		if strings.HasPrefix(name, "put-") {
			t.Error("stale temp file survived recovery")
		}
	}
	// Healthy entries still serve; corrupted ones miss (cold recompute).
	for i, k := range keys {
		_, ok := c2.Get(k)
		if want := i >= 2; ok != want {
			t.Errorf("entry %d: hit=%v, want %v", i, ok, want)
		}
	}
	// A second pass is idempotent: nothing left to quarantine.
	if rs2 := c2.RecoverDisk(); rs2.Quarantined != 0 || rs2.TempFiles != 0 {
		t.Errorf("second RecoverDisk not idempotent: %+v", rs2)
	}
}

// TestTornWriteCaughtByChecksum drives the writer through the
// fault-injected torn-write path and checks the checksum rejects every
// mangled entry on read.
func TestTornWriteCaughtByChecksum(t *testing.T) {
	restore := fault.Set(fault.New(42, fault.Rule{Point: fault.CacheTorn, Mode: fault.ModeTorn, Prob: 1}))
	defer restore()
	dir := t.TempDir()
	c := New(payloadCodec(), 8, dir)
	k := KeyOf("torn")
	c.Put(k, &payload{Name: "torn", Items: []string{"x", "y", "z"}})
	restore()

	c2 := New(payloadCodec(), 8, dir)
	if _, ok := c2.Get(k); ok {
		t.Fatal("torn write served as a valid entry")
	}
	st := c2.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestWriteFailureDisablesDiskTier: consecutive injected write failures
// count DiskErrors and, at the threshold, turn the disk tier off —
// while the in-memory tier keeps serving.
func TestWriteFailureDisablesDiskTier(t *testing.T) {
	restore := fault.Set(fault.New(1, fault.Rule{Point: fault.CacheWrite, Mode: fault.ModeError, Prob: 1}))
	defer restore()
	dir := t.TempDir()
	c := New(payloadCodec(), 64, dir)
	if got := c.DiskState(); got != "ok" {
		t.Fatalf("DiskState = %q before any failure", got)
	}
	for i := 0; i < MaxConsecutiveDiskFailures+3; i++ {
		c.Put(KeyOf("w", string(rune('a'+i))), &payload{Name: "w"})
	}
	st := c.Stats()
	if st.DiskErrors != MaxConsecutiveDiskFailures {
		t.Errorf("DiskErrors = %d, want exactly %d (writes after disable must be skipped)",
			st.DiskErrors, MaxConsecutiveDiskFailures)
	}
	if got := c.DiskState(); got != "disabled" {
		t.Errorf("DiskState = %q, want disabled", got)
	}
	// The memory tier is unaffected.
	if _, ok := c.Get(KeyOf("w", "a")); !ok {
		t.Error("memory tier lost an entry on disk failure")
	}
	// And reads stop consulting the dead disk too.
	if _, ok := c.Get(KeyOf("never-stored")); ok {
		t.Error("disabled disk tier still serving reads")
	}
}

// TestWriteFailureStreakResets: a success between failures resets the
// consecutive counter, so intermittent errors never disable the tier.
func TestWriteFailureStreakResets(t *testing.T) {
	// Fire on exactly one write, then stay quiet.
	restore := fault.Set(fault.New(1, fault.Rule{Point: fault.CacheWrite, Mode: fault.ModeError, Prob: 1, Count: 1}))
	defer restore()
	dir := t.TempDir()
	c := New(payloadCodec(), 64, dir)
	for i := 0; i < MaxConsecutiveDiskFailures*2; i++ {
		c.Put(KeyOf("s", string(rune('a'+i))), &payload{Name: "s"})
	}
	if got := c.DiskState(); got != "ok" {
		t.Errorf("DiskState = %q after intermittent failure, want ok", got)
	}
	if st := c.Stats(); st.DiskErrors != 1 {
		t.Errorf("DiskErrors = %d, want 1", st.DiskErrors)
	}
}

// TestReadErrorCountsDiskError: injected read failures count as
// DiskErrors (not quarantine — the entry on disk may be fine) and
// degrade to a miss.
func TestReadErrorCountsDiskError(t *testing.T) {
	dir := t.TempDir()
	c := New(payloadCodec(), 8, dir)
	k := KeyOf("r")
	c.Put(k, &payload{Name: "r"})

	restore := fault.Set(fault.New(1, fault.Rule{Point: fault.CacheRead, Mode: fault.ModeError, Prob: 1, Count: 1}))
	defer restore()
	c2 := New(payloadCodec(), 8, dir)
	if _, ok := c2.Get(k); ok {
		t.Fatal("read with injected I/O error served a hit")
	}
	st := c2.Stats()
	if st.DiskErrors != 1 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want DiskErrors 1 and no quarantine", st)
	}
	// The entry itself is intact: the next read serves it.
	if got, ok := c2.Get(k); !ok || got.Name != "r" {
		t.Error("transient read error permanently lost the entry")
	}
}

// TestAsyncWriteFailureAccounting: the async writer routes its write
// results through the same failure accounting as the sync path.
func TestAsyncWriteFailureAccounting(t *testing.T) {
	restore := fault.Set(fault.New(1, fault.Rule{Point: fault.CacheWrite, Mode: fault.ModeError, Prob: 1}))
	defer restore()
	dir := t.TempDir()
	c := New(payloadCodec(), 64, dir)
	c.StartAsyncDisk(16)
	for i := 0; i < MaxConsecutiveDiskFailures; i++ {
		c.Put(KeyOf("as", string(rune('a'+i))), &payload{Name: "as"})
		c.Flush()
	}
	c.Close()
	if got := c.DiskState(); got != "disabled" {
		t.Errorf("DiskState = %q after async failures, want disabled", got)
	}
}
