package pps

import (
	"context"
	"testing"
	"time"
)

// explosionSrc forks enough interleavings that the exploration runs for
// many poll intervals — the governor has to stop it, not the worklist
// draining on its own.
const explosionSrc = `proc f() {
	  var x: int = 1;
	  var a$: sync bool;
	  var b$: sync bool;
	  var c$: sync bool;
	  var d$: sync bool;
	  var e$: sync bool;
	  var f$: sync bool;
	  begin with (ref x) { x = 2; a$ = true; b$ = true; }
	  begin with (ref x) { x = 3; c$ = true; d$ = true; }
	  begin with (ref x) { x = 4; e$ = true; f$ = true; }
	  a$; b$; c$; d$; e$; f$;
	}`

func TestCancelledContextStopsExploration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, r := explore(t, explosionSrc, Options{Ctx: ctx})
	if !r.Stats.Incomplete {
		t.Error("cancelled exploration not marked Incomplete")
	}
	if r.Stats.Stop != StopCancelled {
		t.Errorf("Stats.Stop = %q, want %q", r.Stats.Stop, StopCancelled)
	}
	if r.Stats.StatesProcessed > 2*ctxCheckInterval {
		t.Errorf("cancelled exploration still processed %d states", r.Stats.StatesProcessed)
	}
}

func TestDeadlineContextStopReason(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, r := explore(t, explosionSrc, Options{Ctx: ctx})
	if r.Stats.Stop != StopDeadline {
		t.Errorf("Stats.Stop = %q, want %q", r.Stats.Stop, StopDeadline)
	}
}

func TestBudgetStopReasonAndConservativeFallback(t *testing.T) {
	g, r := explore(t, explosionSrc, Options{MaxStates: 4})
	if r.Stats.Stop != StopBudget {
		t.Errorf("Stats.Stop = %q, want %q", r.Stats.Stop, StopBudget)
	}
	// The degradation ladder must flag every tracked access that was not
	// proven safe — on such an early stop, that is all of them.
	if len(g.Accesses) == 0 {
		t.Fatal("test program tracks no accesses")
	}
	flagged := make(map[int]bool)
	conservative := 0
	for _, u := range r.Unsafe {
		if u.Conservative {
			if u.Reason != Conservative {
				t.Errorf("conservative unsafe entry has reason %v", u.Reason)
			}
			conservative++
		}
		flagged[u.Access.ID] = true
	}
	if conservative == 0 {
		t.Error("early stop produced no conservative fallback entries")
	}
	for _, a := range g.Accesses {
		if !flagged[a.ID] {
			t.Errorf("tracked access %d (%s) not flagged after early stop", a.ID, a.Sym.Name)
		}
	}
}

func TestCompleteRunHasNoStopReason(t *testing.T) {
	_, r := explore(t, explosionSrc, Options{})
	if r.Stats.Incomplete || r.Stats.Stop != StopNone {
		t.Errorf("complete run reports Incomplete=%v Stop=%q", r.Stats.Incomplete, r.Stats.Stop)
	}
	for _, u := range r.Unsafe {
		if u.Conservative {
			t.Errorf("complete run emitted a conservative warning: %+v", u)
		}
	}
}
