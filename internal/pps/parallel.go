package pps

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file schedules the compute phase of a wave across
// Options.Parallelism workers. The frontier is split into per-worker
// index ranges; a worker drains its own range and, when empty, steals
// the larger half of the fullest victim range. Which worker computes
// which state is deliberately irrelevant: every output lands in the
// outs slot of its frontier index and the commit loop consumes the
// slots in order, so scheduling noise can never reach the Result.
//
// minParallelFrontier keeps tiny waves on the inline path — below it
// the goroutine handoff costs more than the states themselves, and the
// small programs of the paper's figures never leave the fast path.
const minParallelFrontier = 8

// computeWave runs computeState for every frontier state and returns
// the per-index outputs. The second return is true when a context
// cancellation interrupted the wave — the partial outputs must then be
// discarded, never committed.
func (e *explorer) computeWave(frontier []*PPS) ([]*stepOut, bool) {
	outs := make([]*stepOut, len(frontier))
	if e.par <= 1 || len(frontier) < minParallelFrontier {
		for i, p := range frontier {
			if e.opts.Ctx != nil && i%ctxCheckInterval == 0 && e.opts.Ctx.Err() != nil {
				return nil, true
			}
			outs[i] = e.computeState(p)
		}
		return outs, false
	}

	workers := e.par
	if workers > len(frontier) {
		workers = len(frontier)
	}
	q := newWaveQueue(len(frontier), workers)
	var (
		stop       atomic.Bool
		panicMu    sync.Mutex
		panicVal   any
		panicStack []byte
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// A panic must not escape the worker goroutine: it would kill
			// the process instead of reaching the analysis layer's
			// recover-into-Degradation ladder. Capture the first one,
			// stop the siblings, and re-raise it on the exploring
			// goroutine below.
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
						panicStack = debug.Stack()
					}
					panicMu.Unlock()
					stop.Store(true)
				}
			}()
			polled := 0
			for !stop.Load() {
				i, ok := q.take(self)
				if !ok {
					return
				}
				if e.opts.Ctx != nil {
					if polled++; polled%ctxCheckInterval == 0 && e.opts.Ctx.Err() != nil {
						stop.Store(true)
						return
					}
				}
				outs[i] = e.computeState(frontier[i])
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(fmt.Sprintf("pps: wave worker panicked: %v\n%s", panicVal, panicStack))
	}
	if stop.Load() {
		return nil, true
	}
	return outs, false
}

// waveQueue is the sharded work-stealing index queue of one wave: each
// worker owns a contiguous [lo, hi) range of frontier indices.
type waveQueue struct {
	shards []waveShard
}

type waveShard struct {
	mu     sync.Mutex
	lo, hi int
}

func newWaveQueue(n, workers int) *waveQueue {
	q := &waveQueue{shards: make([]waveShard, workers)}
	per, rem := n/workers, n%workers
	lo := 0
	for i := range q.shards {
		size := per
		if i < rem {
			size++
		}
		q.shards[i].lo, q.shards[i].hi = lo, lo+size
		lo += size
	}
	return q
}

// take pops the next index for worker self: first from its own shard,
// then by stealing the upper half of the fullest other shard. Returns
// ok=false only when every shard is empty.
func (q *waveQueue) take(self int) (int, bool) {
	s := &q.shards[self]
	s.mu.Lock()
	if s.lo < s.hi {
		i := s.lo
		s.lo++
		s.mu.Unlock()
		return i, true
	}
	s.mu.Unlock()
	for {
		victim, most := -1, 0
		for v := range q.shards {
			if v == self {
				continue
			}
			vs := &q.shards[v]
			vs.mu.Lock()
			n := vs.hi - vs.lo
			vs.mu.Unlock()
			if n > most {
				victim, most = v, n
			}
		}
		if victim < 0 {
			return 0, false
		}
		vs := &q.shards[victim]
		vs.mu.Lock()
		n := vs.hi - vs.lo
		if n == 0 {
			// Lost the race for this victim; rescan.
			vs.mu.Unlock()
			continue
		}
		if n == 1 {
			i := vs.lo
			vs.lo++
			vs.mu.Unlock()
			return i, true
		}
		mid := vs.lo + n/2
		stolenLo, stolenHi := mid, vs.hi
		vs.hi = mid
		vs.mu.Unlock()
		// Refill our own shard with the stolen tail. Only the owner ever
		// refills a shard, and ours is empty, so this cannot clobber
		// pending work.
		s.mu.Lock()
		s.lo, s.hi = stolenLo+1, stolenHi
		s.mu.Unlock()
		return stolenLo, true
	}
}
