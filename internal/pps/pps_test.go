package pps

import (
	"strings"
	"testing"

	"uafcheck/internal/ccfg"
	"uafcheck/internal/ir"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func explore(t *testing.T, src string, opts Options) (*ccfg.Graph, *Result) {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	prog := ir.Lower(info, mod.Procs[len(mod.Procs)-1], diags)
	g := ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
	return g, Explore(g, opts)
}

func unsafeVars(r *Result) []string {
	var out []string
	for _, u := range r.Unsafe {
		out = append(out, u.Access.Sym.Name)
	}
	return out
}

func TestWaitChainIsSafe(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    done$ = true;
	  }
	  done$;
	}`, Options{})
	if len(r.Unsafe) != 0 {
		t.Fatalf("unsafe = %v", unsafeVars(r))
	}
	if r.Stats.Sinks == 0 {
		t.Error("no sink reached")
	}
}

func TestNoSyncIsNeverSynchronized(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) {
	    writeln(x);
	  }
	}`, Options{})
	if len(r.Unsafe) != 1 {
		t.Fatalf("unsafe = %v", unsafeVars(r))
	}
	if r.Unsafe[0].Reason != NeverSynchronized {
		t.Errorf("reason = %v", r.Unsafe[0].Reason)
	}
}

func TestTrailingAccessAfterLastSync(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;          // safe: before the signal
	    done$ = true;
	    x = 3;          // trailing: after the task's last sync event
	  }
	  done$;
	}`, Options{})
	if len(r.Unsafe) != 1 {
		t.Fatalf("unsafe = %v", unsafeVars(r))
	}
	u := r.Unsafe[0]
	if u.Reason != NeverSynchronized {
		t.Errorf("reason = %v, want never-synchronized", u.Reason)
	}
}

func TestAfterFrontierSerialization(t *testing.T) {
	// Figure 1's essence: the nested task's signal can fire after the
	// parent consumed the frontier.
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var doneA$: sync bool;
	  begin with (ref x) {
	    var doneB$: sync bool;
	    begin with (ref x) {
	      writeln(x);
	      doneB$ = true;
	    }
	    doneA$ = true;
	    doneB$;
	  }
	  doneA$;
	}`, Options{})
	if len(r.Unsafe) != 1 {
		t.Fatalf("unsafe = %v", unsafeVars(r))
	}
	if r.Unsafe[0].Reason != AfterFrontier {
		t.Errorf("reason = %v, want after-frontier", r.Unsafe[0].Reason)
	}
	if r.Unsafe[0].Access.Task.Label != "TASK B" {
		t.Errorf("task = %s", r.Unsafe[0].Access.Task.Label)
	}
}

func TestSwappedWaitsAreSafe(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var doneA$: sync bool;
	  begin with (ref x) {
	    var doneB$: sync bool;
	    begin with (ref x) {
	      writeln(x);
	      doneB$ = true;
	    }
	    doneB$;
	    doneA$ = true;
	  }
	  doneA$;
	}`, Options{})
	if len(r.Unsafe) != 0 {
		t.Fatalf("unsafe = %v, want none (wait chain B->A->parent)", unsafeVars(r))
	}
}

func TestSingleReadRule(t *testing.T) {
	// readFF retains the full state: two waiters both proceed.
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  var go$: single bool;
	  var dx$: sync bool;
	  var dy$: sync bool;
	  begin with (ref x) {
	    go$.readFF();
	    x = 2;
	    dx$ = true;
	  }
	  begin with (ref y) {
	    go$.readFF();
	    y = 2;
	    dy$ = true;
	  }
	  go$.writeEF(true);
	  dx$;
	  dy$;
	}`, Options{})
	if len(r.Unsafe) != 0 {
		t.Fatalf("unsafe = %v; single broadcast should be safe", unsafeVars(r))
	}
	if len(r.Deadlocks) != 0 {
		t.Fatalf("deadlocks = %d", len(r.Deadlocks))
	}
}

func TestInitiallyFullGate(t *testing.T) {
	// gate$ starts full (explicit initialization, §II): the task's
	// readFE succeeds without a writer. If the initial state were
	// wrongly empty, the exploration would deadlock.
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var gate$: sync bool = true;
	  var done$: sync bool;
	  begin with (ref x) {
	    gate$;
	    x = 2;
	    done$ = true;
	  }
	  done$;
	}`, Options{})
	if len(r.Unsafe) != 0 {
		t.Fatalf("unsafe = %v", unsafeVars(r))
	}
	if len(r.Deadlocks) != 0 {
		t.Fatalf("deadlocks = %d; initial full state not honored", len(r.Deadlocks))
	}
}

func TestRacyTokenReuseDeadlocks(t *testing.T) {
	// Two readers race for one initially-full token and only the task
	// refills it: if the parent wins, the task blocks forever. The
	// exploration must surface that serialization as a deadlock.
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var gate$: sync bool = true;
	  begin with (ref x) {
	    gate$;
	    x = 2;
	    gate$ = true;
	  }
	  gate$;
	}`, Options{})
	if len(r.Deadlocks) == 0 {
		t.Error("racy token reuse: deadlock serialization not found")
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var a$: sync bool;
	  begin with (ref x) {
	    a$;       // waits forever: nobody fills a$
	    x = 2;
	  }
	  a$;
	}`, Options{})
	if len(r.Deadlocks) == 0 {
		t.Fatal("deadlock not detected")
	}
	// The access behind the deadlock is never synchronized.
	if len(r.Unsafe) != 1 || r.Unsafe[0].Reason != NeverSynchronized {
		t.Errorf("unsafe = %v", r.Unsafe)
	}
	found := false
	for _, d := range r.Deadlocks {
		for _, b := range d.Blocked {
			if strings.Contains(b, "readFE(a$)") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("deadlock blocked ops = %v", r.Deadlocks)
	}
}

func TestAtomicsInvisible(t *testing.T) {
	// The atomic handshake is real synchronization dynamically, but the
	// paper's analysis does not model it: warnings expected (§IV-A).
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var flag: atomic int;
	  begin with (ref x) {
	    x = 2;
	    flag.write(1);
	  }
	  flag.waitFor(1);
	}`, Options{})
	if len(r.Unsafe) != 1 {
		t.Fatalf("unsafe = %v; atomics must be invisible to the analysis", unsafeVars(r))
	}
}

func TestBranchBothPathsExplored(t *testing.T) {
	// Safe on the if path, unsafe on the else path (no wait there).
	_, r := explore(t, `config const c = true;
	proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    done$ = true;
	  }
	  if (c) {
	    done$;
	  }
	  writeln("exit");
	}`, Options{})
	if len(r.Unsafe) != 1 {
		t.Fatalf("unsafe = %v; else path leaves x unprotected", unsafeVars(r))
	}
}

func TestMergeReducesStates(t *testing.T) {
	src := `config const c = true;
	proc f() {
	  var x: int = 1;
	  var a$: sync bool;
	  var b$: sync bool;
	  begin with (ref x) { x = 2; a$ = true; }
	  begin with (ref x) { x = 3; b$ = true; }
	  if (c) { writeln(1); } else { writeln(2); }
	  a$;
	  b$;
	}`
	_, merged := explore(t, src, Options{})
	_, unmerged := explore(t, src, Options{DisableMerge: true})
	if merged.Stats.StatesProcessed >= unmerged.Stats.StatesProcessed {
		t.Errorf("merge did not reduce states: %d vs %d",
			merged.Stats.StatesProcessed, unmerged.Stats.StatesProcessed)
	}
	// Same verdicts either way.
	if len(merged.Unsafe) != len(unmerged.Unsafe) {
		t.Errorf("merge changed verdicts: %d vs %d", len(merged.Unsafe), len(unmerged.Unsafe))
	}
}

func TestBudgetAbortsGracefully(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var a$: sync bool;
	  var b$: sync bool;
	  var c$: sync bool;
	  begin with (ref x) { x = 2; a$ = true; }
	  begin with (ref x) { x = 3; b$ = true; }
	  begin with (ref x) { x = 4; c$ = true; }
	  a$;
	  b$;
	  c$;
	}`, Options{MaxStates: 2})
	if !r.Stats.Incomplete {
		t.Error("budget exceeded but not reported incomplete")
	}
}

func TestTraceRowsWellFormed(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) { x = 2; done$ = true; }
	  done$;
	}`, Options{Trace: true})
	if len(r.Trace) == 0 {
		t.Fatal("no trace rows")
	}
	out := FormatTrace(r.Trace)
	for _, want := range []string{"ID", "ASN", "states", "initial", "sink", "done$"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTraceDOT(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) { x = 2; done$ = true; }
	  done$;
	}`, Options{Trace: true})
	dot := FormatTraceDOT(r)
	for _, want := range []string{
		"digraph pps", "PPS 0", "doubleoctagon", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, `\\n`) {
		t.Error("double-escaped newline in DOT output")
	}
	if len(r.Edges) == 0 {
		t.Error("no transition edges recorded")
	}
}

// TestOVAndSVDisjointInvariant: at every traced state OV ∩ SV = ∅ and
// every access label appears in at most one of the two sets.
func TestOVAndSVDisjointInvariant(t *testing.T) {
	_, r := explore(t, `config const c = true;
	proc f() {
	  var x: int = 1;
	  var doneA$: sync bool;
	  begin with (ref x) {
	    var doneB$: sync bool;
	    begin with (ref x) { writeln(x); doneB$ = true; }
	    if (c) { x = 5; }
	    doneA$ = true;
	    doneB$;
	  }
	  doneA$;
	}`, Options{Trace: true})
	for _, row := range r.Trace {
		seen := map[string]bool{}
		for _, l := range row.OV {
			seen[l] = true
		}
		for _, l := range row.SV {
			if seen[l] {
				t.Fatalf("PPS %d: %s in both OV and SV", row.ID, l)
			}
		}
	}
}

// TestReportedOnceAcrossPaths: an access unsafe on many serializations is
// reported exactly once ("the algorithm removes the newly identified
// dangerous access from further analysis").
func TestReportedOnceAcrossPaths(t *testing.T) {
	_, r := explore(t, `proc f() {
	  var x: int = 1;
	  var a$: sync bool;
	  var b$: sync bool;
	  begin with (ref x) {
	    var i$: sync bool;
	    begin with (ref x) { writeln(x); i$ = true; }
	    a$ = true;
	    b$ = true;
	    i$;
	  }
	  a$;
	  b$;
	}`, Options{})
	count := 0
	for _, u := range r.Unsafe {
		if u.Access.Task.Label == "TASK B" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("TASK B access reported %d times, want 1", count)
	}
}

// TestPromotionRequiresExecutableFrontier: a frontier node present in the
// ASN but blocked must not promote.
func TestPromotionRequiresExecutableFrontier(t *testing.T) {
	g, r := explore(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  var gate$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    gate$ = true;    // signal
	    done$ = true;    // then fill the frontier token
	  }
	  gate$;
	  done$;             // frontier: only executable after the fill
	}`, Options{})
	_ = g
	if len(r.Unsafe) != 0 {
		t.Fatalf("unsafe = %v; chain gate->done orders the access", unsafeVars(r))
	}
}

// TestUnsafeOrderingDeterministic: results are sorted by source position
// and stable across runs.
func TestUnsafeOrderingDeterministic(t *testing.T) {
	src := `proc f() {
	  var x: int = 1;
	  var y: int = 2;
	  begin with (ref x, ref y) {
	    writeln(y);
	    writeln(x);
	  }
	}`
	_, r1 := explore(t, src, Options{})
	_, r2 := explore(t, src, Options{})
	if len(r1.Unsafe) != 2 || len(r2.Unsafe) != 2 {
		t.Fatalf("unsafe = %d/%d", len(r1.Unsafe), len(r2.Unsafe))
	}
	for i := range r1.Unsafe {
		if r1.Unsafe[i].Access.Sym.Name != r2.Unsafe[i].Access.Sym.Name {
			t.Error("ordering not deterministic")
		}
	}
	if r1.Unsafe[0].Access.Sym.Name != "y" {
		t.Errorf("first unsafe = %s, want y (source order)", r1.Unsafe[0].Access.Sym.Name)
	}
}

func TestRuleNumbering(t *testing.T) {
	if ruleNumber(sym.OpReadFF) != 1 || ruleNumber(sym.OpReadFE) != 2 || ruleNumber(sym.OpWriteEF) != 3 {
		t.Error("paper rule numbers wrong")
	}
}

func TestReasonStrings(t *testing.T) {
	if AfterFrontier.String() != "after-frontier" || NeverSynchronized.String() != "never-synchronized" {
		t.Error("reason strings wrong")
	}
}
