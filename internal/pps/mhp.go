package pps

import (
	"uafcheck/internal/bits"
	"uafcheck/internal/ccfg"
)

// MHPOracle answers may-happen-in-parallel queries over CCFG nodes,
// derived from the same PPS exploration that powers the use-after-free
// check. Two nodes may happen in parallel iff some explored parallel
// program state has both nodes "in flight" on DIFFERENT strands — i.e.
// each is either the strand's next sync node or on the unattributed path
// leading to it.
//
// Because the exploration models point-to-point synchronization, this
// oracle is strictly more precise than the §VI tree-based analyses on
// wait-chain code: a node ordered before another by a sync-variable
// handshake is never reported parallel. (The §VI related work explicitly
// notes that none of the surveyed MHP algorithms handle point-to-point
// synchronization.)
type MHPOracle struct {
	n     int
	pairs bits.Set // symmetric matrix, row-major over node IDs
}

// MHP reports whether the two nodes may execute in parallel.
func (o *MHPOracle) MHP(a, b *ccfg.Node) bool {
	if a == nil || b == nil || a == b {
		return false
	}
	return o.pairs.Has(a.ID*o.n + b.ID)
}

// PairCount returns the number of unordered MHP pairs.
func (o *MHPOracle) PairCount() int {
	count := 0
	o.pairs.ForEach(func(i int) {
		r, c := i/o.n, i%o.n
		if r < c {
			count++
		}
	})
	return count
}

// BuildMHP explores the graph and materializes the oracle.
func BuildMHP(g *ccfg.Graph, opts Options) *MHPOracle {
	o := &MHPOracle{n: len(g.Nodes), pairs: bits.New(len(g.Nodes) * len(g.Nodes))}
	if opts.MaxStates <= 0 {
		opts.MaxStates = defaultMaxStates
	}
	if opts.MaxOutcomes <= 0 {
		opts.MaxOutcomes = defaultMaxOutcomes
	}
	e := &explorer{
		g:           g,
		opts:        opts,
		par:         resolveParallelism(opts.Parallelism),
		intern:      newInterner(),
		everVisited: bits.New(len(g.Nodes)),
		reported:    bits.New(len(g.Accesses)),
		res:         &Result{},
		varAccess:   nil,
		mhp:         o,
	}
	e.varAccess = buildVarAccess(g)
	e.run()
	return o
}

// CheckUAFViaMHP implements the §VI alternative formulation: "any outer
// variable access is potentially dangerous if the end of the variable
// scope may-happen-in-parallel with the access". It flags every tracked
// access whose node is MHP with the variable's scope-end node (or whose
// scope end is unknown).
//
// Because the oracle is derived from the same PPS exploration, its
// verdicts coincide with the direct algorithm's on the paper's examples —
// the two views differ only in HOW lateness is detected (state-set
// membership at sinks versus pairwise parallelism), which the
// equivalence test in mhp_test.go exercises.
func CheckUAFViaMHP(g *ccfg.Graph, opts Options) []*ccfg.Access {
	o := BuildMHP(g, opts)
	var out []*ccfg.Access
	for _, a := range g.Accesses {
		end := g.ScopeEnd[a.Sym]
		if end == nil || o.MHP(a.Node, end) {
			out = append(out, a)
		}
	}
	return out
}

// recordMHP marks every cross-strand node pair of the state as parallel.
// In-flight strands are the ASN entries (their pending path plus the
// sync node itself) and the trailing segments of strands that already
// passed their last synchronization event.
func (o *MHPOracle) record(p *PPS) {
	strands := make([][]*ccfg.Node, 0, len(p.Entries)+len(p.Trailing))
	for _, en := range p.Entries {
		nodes := make([]*ccfg.Node, 0, len(en.Pending)+1)
		nodes = append(nodes, en.Pending...)
		nodes = append(nodes, en.Sync)
		strands = append(strands, nodes)
	}
	strands = append(strands, p.Trailing...)
	for i := 0; i < len(strands); i++ {
		for j := i + 1; j < len(strands); j++ {
			for _, a := range strands[i] {
				for _, b := range strands[j] {
					if a == b {
						continue
					}
					o.pairs.Add(a.ID*o.n + b.ID)
					o.pairs.Add(b.ID*o.n + a.ID)
				}
			}
		}
	}
}
