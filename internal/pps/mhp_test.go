package pps

import (
	"testing"

	"uafcheck/internal/ccfg"
	"uafcheck/internal/ir"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func buildGraph(t *testing.T, src string) *ccfg.Graph {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	prog := ir.Lower(info, mod.Procs[0], diags)
	return ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
}

// nodeWithAccess returns the node containing a tracked access of the
// named variable.
func nodeWithAccess(t *testing.T, g *ccfg.Graph, name string) *ccfg.Node {
	t.Helper()
	for _, a := range g.Accesses {
		if a.Sym.Name == name {
			return a.Node
		}
	}
	t.Fatalf("no tracked access of %s", name)
	return nil
}

// TestMHPTwoIndependentTasks: nodes of two unordered tasks are parallel.
func TestMHPTwoIndependentTasks(t *testing.T) {
	g := buildGraph(t, `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  var dx$: sync bool;
	  var dy$: sync bool;
	  begin with (ref x) { x = 2; dx$ = true; }
	  begin with (ref y) { y = 2; dy$ = true; }
	  dx$;
	  dy$;
	}`)
	o := BuildMHP(g, Options{})
	nx := nodeWithAccess(t, g, "x")
	ny := nodeWithAccess(t, g, "y")
	if !o.MHP(nx, ny) {
		t.Error("independent task bodies must be MHP")
	}
	if o.MHP(nx, nx) {
		t.Error("a node is never MHP with itself")
	}
	if o.PairCount() == 0 {
		t.Error("no pairs recorded")
	}
}

// TestMHPWaitChainOrders: the point-to-point handshake orders the task
// body before the parent's post-wait region — the precision the §VI
// tree-based analyses cannot achieve.
func TestMHPWaitChainOrders(t *testing.T) {
	g := buildGraph(t, `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    done$ = true;
	  }
	  done$;
	  begin with (ref y) {
	    y = 9;
	  }
	}`)
	o := BuildMHP(g, Options{})
	nx := nodeWithAccess(t, g, "x")
	ny := nodeWithAccess(t, g, "y")
	// TASK A's body is ordered before the post-wait spawn of TASK B by
	// the done$ chain: the two bodies must NOT be parallel.
	if o.MHP(nx, ny) {
		t.Error("wait chain ignored: TASK A body parallel with post-wait TASK B body")
	}
}

// TestMHPChainedTasksSequential: B waits for A's token, so their bodies
// never overlap.
func TestMHPChainedTasksSequential(t *testing.T) {
	g := buildGraph(t, `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  var h$: sync bool;
	  var dx$: sync bool;
	  var dy$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    h$ = true;
	    dx$ = true;
	  }
	  begin with (ref y) {
	    h$;
	    y = 2;
	    dy$ = true;
	  }
	  dx$;
	  dy$;
	}`)
	o := BuildMHP(g, Options{})
	nx := nodeWithAccess(t, g, "x")
	ny := nodeWithAccess(t, g, "y")
	if o.MHP(nx, ny) {
		t.Error("handshake-ordered bodies reported parallel")
	}
}

// TestMHPMatchesUnsafeVerdict: for the Figure 1 program, the dangerous
// TASK B access is MHP with the root's final region while TASK A's
// post-promotion region is not relevant — sanity link between the two
// views.
func TestMHPFigure1(t *testing.T) {
	g := buildGraph(t, `proc f() {
	  var x: int = 1;
	  var doneA$: sync bool;
	  begin with (ref x) {
	    var doneB$: sync bool;
	    begin with (ref x) {
	      writeln(x);
	      doneB$ = true;
	    }
	    doneA$ = true;
	    doneB$;
	  }
	  doneA$;
	}`)
	o := BuildMHP(g, Options{})
	// TASK B's access node and the root's scope-end node: parallel (the
	// warning's root cause).
	var taskB *ccfg.Node
	for _, a := range g.Accesses {
		if a.Task.Label == "TASK B" {
			taskB = a.Node
		}
	}
	if taskB == nil {
		t.Fatal("TASK B access missing")
	}
	end := g.ScopeEnd[g.Accesses[0].Sym]
	if end == nil {
		t.Fatal("scope end missing")
	}
	if !o.MHP(taskB, end) {
		t.Error("dangerous access not MHP with the scope end")
	}
	// The §VI MHP-oracle formulation flags exactly the dangerous access.
	flagged := CheckUAFViaMHP(g, Options{})
	if len(flagged) != 1 || flagged[0].Task.Label != "TASK B" {
		t.Errorf("MHP-oracle check flagged %v, want only TASK B's access", flagged)
	}
}

// TestMHPCheckAgreesWithDirect: across the canonical idioms, the §VI
// MHP-oracle formulation and the paper's direct sink-set algorithm agree
// on which accesses are dangerous.
func TestMHPCheckAgreesWithDirect(t *testing.T) {
	srcs := []string{
		// safe wait chain
		`proc f() {
		  var x: int = 1;
		  var d$: sync bool;
		  begin with (ref x) { x = 2; d$ = true; }
		  d$;
		}`,
		// no sync at all
		`proc f() {
		  var x: int = 1;
		  begin with (ref x) { writeln(x); }
		}`,
		// trailing access
		`proc f() {
		  var x: int = 1;
		  var d$: sync bool;
		  begin with (ref x) { x = 2; d$ = true; x = 3; }
		  d$;
		}`,
		// two independent safe tasks
		`proc f() {
		  var x: int = 1;
		  var y: int = 1;
		  var dx$: sync bool;
		  var dy$: sync bool;
		  begin with (ref x) { x = 2; dx$ = true; }
		  begin with (ref y) { y = 2; dy$ = true; }
		  dx$;
		  dy$;
		}`,
	}
	for i, src := range srcs {
		g := buildGraph(t, src)
		direct := Explore(g, Options{})
		directSet := map[int]bool{}
		for _, u := range direct.Unsafe {
			directSet[u.Access.ID] = true
		}
		viaMHP := CheckUAFViaMHP(g, Options{})
		mhpSet := map[int]bool{}
		for _, a := range viaMHP {
			mhpSet[a.ID] = true
		}
		if len(directSet) != len(mhpSet) {
			t.Errorf("case %d: direct flags %d, MHP-oracle flags %d", i, len(directSet), len(mhpSet))
			continue
		}
		for id := range directSet {
			if !mhpSet[id] {
				t.Errorf("case %d: access %d flagged by direct but not MHP-oracle", i, id)
			}
		}
	}
}
