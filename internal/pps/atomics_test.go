package pps

// Tests for the atomics extension (paper §IV-A sketch, §VII future work):
// atomic writes model as non-blocking fill events, waitFor as
// SINGLE-READ-like waits. With the extension the atomic-handshake
// programs that dominate the paper's false positives are proven safe.

import (
	"testing"

	"uafcheck/internal/ccfg"
	"uafcheck/internal/ir"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func exploreAtomics(t *testing.T, src string, model bool) *Result {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	prog := ir.Lower(info, mod.Procs[len(mod.Procs)-1], diags)
	g := ccfg.Build(prog, diags, ccfg.BuildOptions{Prune: true, ModelAtomics: model})
	return Explore(g, Options{})
}

const atomicHandshakeSrc = `proc f() {
  var x: int = 1;
  var flag: atomic int;
  begin with (ref x) {
    x = 2;
    writeln(x);
    flag.write(1);
  }
  flag.waitFor(1);
}`

func TestAtomicHandshakeDefaultFlagged(t *testing.T) {
	r := exploreAtomics(t, atomicHandshakeSrc, false)
	if len(r.Unsafe) != 2 {
		t.Fatalf("default mode: unsafe = %d, want 2 (atomics invisible, §IV-A)", len(r.Unsafe))
	}
}

func TestAtomicHandshakeModeledSafe(t *testing.T) {
	r := exploreAtomics(t, atomicHandshakeSrc, true)
	if len(r.Unsafe) != 0 {
		t.Fatalf("extension: unsafe = %d, want 0 (fill + wait ordered)", len(r.Unsafe))
	}
	if len(r.Deadlocks) != 0 {
		t.Fatalf("extension introduced deadlocks: %d", len(r.Deadlocks))
	}
}

func TestAtomicCounterAbstractionStaysConservative(t *testing.T) {
	// Two fills, one waitFor(2): the paper's sketch abstracts the atomic
	// to full/empty, losing the counter VALUE — waitFor becomes
	// executable after the FIRST fill. Each task's access is then unsafe
	// on the serialization where the other task fills first, the parent
	// waits and exits, and this task runs late. Both accesses stay
	// flagged: the extension removes handshake false positives but is
	// deliberately conservative on counting protocols.
	src := `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  var c: atomic int;
	  begin with (ref x) {
	    x = 2;
	    c.fetchAdd(1);
	  }
	  begin with (ref y) {
	    y = 2;
	    c.fetchAdd(1);
	  }
	  c.waitFor(2);
	}`
	r := exploreAtomics(t, src, true)
	if len(r.Unsafe) != 2 {
		t.Fatalf("extension: unsafe = %d, want 2 (value-blind E/F abstraction)", len(r.Unsafe))
	}
}

func TestAtomicWaitWithoutFillDeadlocks(t *testing.T) {
	src := `proc f() {
	  var x: int = 1;
	  begin with (ref x) {
	    writeln(x);
	  }
	  var g: atomic int;
	  g.waitFor(1);
	}`
	r := exploreAtomics(t, src, true)
	if len(r.Deadlocks) == 0 {
		t.Error("waitFor with no fill should surface as a stuck state")
	}
	// The task access is still reported (never synchronized).
	if len(r.Unsafe) != 1 {
		t.Errorf("unsafe = %d, want 1", len(r.Unsafe))
	}
}

func TestAtomicFrontier(t *testing.T) {
	// The waitFor in the root strand is the parallel frontier under the
	// extension.
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", atomicHandshakeSrc, diags)
	info := sym.Resolve(mod, diags)
	prog := ir.Lower(info, mod.Procs[0], diags)
	g := ccfg.Build(prog, diags, ccfg.BuildOptions{Prune: true, ModelAtomics: true})
	if len(g.Accesses) == 0 {
		t.Fatal("no tracked accesses")
	}
	x := g.Accesses[0].Sym
	pf := g.PF[x]
	if len(pf) != 1 {
		t.Fatalf("PF = %v", pf)
	}
	if pf[0].Sync.Op != sym.OpAtomicWait {
		t.Errorf("PF op = %v, want waitFor", pf[0].Sync.Op)
	}
}
