package pps

// Tests for the counting refinement of the atomics extension: monotonic
// atomic variables modelled as saturating counters so that waitFor(n)
// counting protocols verify — one step beyond the paper's full/empty
// sketch.

import (
	"testing"

	"uafcheck/internal/ccfg"
	"uafcheck/internal/ir"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func exploreCounting(t *testing.T, src string) (*ccfg.Graph, *Result) {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	prog := ir.Lower(info, mod.Procs[len(mod.Procs)-1], diags)
	g := ccfg.Build(prog, diags, ccfg.BuildOptions{Prune: true, CountAtomics: true})
	return g, Explore(g, Options{})
}

const counterProtocolSrc = `proc f() {
  var x: int = 1;
  var y: int = 1;
  var c: atomic int;
  begin with (ref x) {
    x = 2;
    c.fetchAdd(1);
  }
  begin with (ref y) {
    y = 2;
    c.fetchAdd(1);
  }
  c.waitFor(2);
}`

func TestCountingVerifiesCounterProtocol(t *testing.T) {
	g, r := exploreCounting(t, counterProtocolSrc)
	if len(g.CounterVars) != 1 {
		t.Fatalf("counter vars = %d, want 1", len(g.CounterVars))
	}
	if len(r.Unsafe) != 0 {
		t.Fatalf("counting model: unsafe = %d, want 0 "+
			"(waitFor(2) only fires after both fetchAdds)", len(r.Unsafe))
	}
	if len(r.Deadlocks) != 0 {
		t.Fatalf("deadlocks = %d", len(r.Deadlocks))
	}
}

func TestCountingStillCatchesUnderCount(t *testing.T) {
	// The parent waits for 1 but two tasks access: the second task is not
	// ordered before the exit.
	src := `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  var c: atomic int;
	  begin with (ref x) {
	    x = 2;
	    c.fetchAdd(1);
	  }
	  begin with (ref y) {
	    y = 2;
	    c.fetchAdd(1);
	  }
	  c.waitFor(1);
	}`
	_, r := exploreCounting(t, src)
	if len(r.Unsafe) == 0 {
		t.Fatal("under-counted waitFor(1) must leave some access unsafe")
	}
	if len(r.Unsafe) > 2 {
		t.Fatalf("unsafe = %d, want 1..2", len(r.Unsafe))
	}
}

func TestCountingWriteIsMonotonicSet(t *testing.T) {
	src := `proc f() {
	  var x: int = 1;
	  var c: atomic int;
	  begin with (ref x) {
	    x = 2;
	    c.write(5);
	  }
	  c.waitFor(5);
	}`
	_, r := exploreCounting(t, src)
	if len(r.Unsafe) != 0 {
		t.Fatalf("write(5)/waitFor(5): unsafe = %d, want 0", len(r.Unsafe))
	}
}

func TestCountingInitialValue(t *testing.T) {
	src := `proc f() {
	  var x: int = 1;
	  var c: atomic int = 3;
	  begin with (ref x) {
	    c.waitFor(3);
	    x = 2;
	    c.fetchAdd(1);
	  }
	  c.waitFor(4);
	}`
	g, r := exploreCounting(t, src)
	if len(g.CounterInit) != 1 || g.CounterInit[0] != 3 {
		t.Fatalf("counter init = %v, want [3]", g.CounterInit)
	}
	if len(r.Unsafe) != 0 || len(r.Deadlocks) != 0 {
		t.Fatalf("unsafe=%d deadlocks=%d, want 0/0", len(r.Unsafe), len(r.Deadlocks))
	}
}

func TestNonMonotonicFallsBack(t *testing.T) {
	// fetchSub disqualifies the variable from counting; it falls back to
	// the full/empty model, which is value-blind: waitFor may fire after
	// the first op and the access stays (conservatively) unsafe in some
	// serialization... but with a single task and a single fill the E/F
	// model still orders things, so use two tasks to expose the blur.
	src := `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  var c: atomic int;
	  begin with (ref x) {
	    x = 2;
	    c.fetchAdd(1);
	  }
	  begin with (ref y) {
	    y = 2;
	    c.fetchSub(0); // disqualifies counting
	    c.fetchAdd(1);
	  }
	  c.waitFor(2);
	}`
	g, r := exploreCounting(t, src)
	if len(g.CounterVars) != 0 {
		t.Fatalf("non-monotonic variable entered the counter table")
	}
	if len(r.Unsafe) == 0 {
		t.Fatal("E/F fallback should keep some access conservatively unsafe")
	}
}

func TestNonConstantOperandFallsBack(t *testing.T) {
	src := `proc f() {
	  var x: int = 1;
	  var n: int = 2;
	  var c: atomic int;
	  begin with (ref x) {
	    x = 2;
	    c.fetchAdd(1);
	  }
	  c.waitFor(n); // non-constant threshold
	}`
	g, _ := exploreCounting(t, src)
	if len(g.CounterVars) != 0 {
		t.Fatalf("non-constant threshold variable entered the counter table")
	}
}

func TestCountingSaturation(t *testing.T) {
	// Large constants saturate at 255 rather than wrapping.
	src := `proc f() {
	  var x: int = 1;
	  var c: atomic int;
	  begin with (ref x) {
	    x = 2;
	    c.write(1000);
	  }
	  c.waitFor(255);
	}`
	_, r := exploreCounting(t, src)
	if len(r.Unsafe) != 0 || len(r.Deadlocks) != 0 {
		t.Fatalf("saturated write should satisfy waitFor(255): unsafe=%d deadlocks=%d",
			len(r.Unsafe), len(r.Deadlocks))
	}
}

func TestCountingSoundAgainstRuntime(t *testing.T) {
	// The counting model's safe verdict matches the dynamic oracle on the
	// counter protocol.
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", counterProtocolSrc, diags)
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	_, r := exploreCounting(t, counterProtocolSrc)
	if len(r.Unsafe) != 0 {
		t.Fatalf("static: %d unsafe", len(r.Unsafe))
	}
	_ = mod
	_ = info
}
