// Package pps implements the Parallel Program State exploration of the
// paper's §III-B/C/D: the algorithm checkForUnsafeUse / findNewPPS.
//
// A PPS is identified by
//
//  1. the Active Sync Node (ASN) set — the sync nodes next in line, one
//     per live strand position;
//  2. the state table — full/empty state of every sync variable;
//  3. the safe set SV — outer-variable accesses proven synchronized;
//  4. the OV set — accesses that must have happened before the last
//     synchronization event but are not (yet) known safe.
//
// Transitions apply the paper's rules: SINGLE-READ (rule 1, readFF on a
// full single variable, applied in a non-blocking batch), READ (rule 2,
// readFE on a full sync variable, full→empty) and WRITE (rule 3, writeEF
// on an empty variable, empty→full). Executing a sync node attributes the
// outer-variable accesses on the path since the previous sync node of its
// strand ("∀ Nk from Sprev to Si"), spawns begin strands encountered on
// the way, and forks one successor PPS per branch-arm combination.
//
// When a Parallel Frontier node of variable x is in the candidate set of
// a newly created PPS, all pending OV accesses of x move to the safe set.
// At a sink PPS (empty ASN) the remaining OV accesses are reported as
// potential use-after-free. Accesses never visited on any execution path
// (trailing accesses after a strand's last sync node, strands blocked by
// a deadlock, tasks with no synchronization at all) are reported by the
// final sweep, matching the "∀ evi !(visited)" clause of the algorithm.
//
// States with identical (ASN, state-table) pairs are merged: OV is
// unioned, SV intersected (accesses promoted on only one side fall back
// to OV so no warning is lost), mirroring the optimization of §III-C.
// Merge identity is hash-consed: every PPS carries a canonical 64-bit
// key over its (ASN, state-table, counters) triple (intern.go), so the
// merge probe is a sharded map lookup.
//
// The worklist runs in bulk-synchronous waves (parallel.go): each wave
// COMPUTES every frontier state's transitions in parallel — a pure
// phase that only reads wave-start snapshots and buffers its output per
// state — then COMMITS the buffered results sequentially in frontier
// order (interning, merging, ID assignment, warning reporting). Because
// the compute phase is side-effect-free and the commit order is fixed,
// the Result is byte-identical for every Options.Parallelism value,
// including the sequential run.
package pps

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"uafcheck/internal/bits"
	"uafcheck/internal/ccfg"
	"uafcheck/internal/obs"
	"uafcheck/internal/sym"
)

// Entry is one ASN member: a sync node plus the not-yet-attributed nodes
// on the path from the previous sync node of its strand.
type Entry struct {
	Sync    *ccfg.Node
	Pending []*ccfg.Node
}

// PPS is one explored parallel program state.
type PPS struct {
	ID      int
	TS      int
	Entries []Entry // sorted by Sync.ID
	State   bits.Set
	// Counters holds the saturating counter values of counted atomic
	// variables (counting refinement), indexed like Graph.CounterVars.
	Counters []uint8
	OV       bits.Set
	SV       bits.Set
	Visited  bits.Set
	Remark   string
	// Trailing holds finished strand segments (populated only while
	// building the MHP oracle): their nodes stay in flight until the
	// task exits, unordered with everything that still runs.
	Trailing [][]*ccfg.Node

	// hkey/ckey are the hash-consed merge identity: ckey is the canonical
	// byte encoding of (ASN, state-table, counters), hkey its 64-bit
	// FNV-1a hash (see intern.go). Both are computed in the parallel
	// compute phase so the commit loop only performs the map probe.
	hkey   uint64
	ckey   []byte
	queued bool
	// parent is the PPS this state was forked from (nil for initial
	// states); with Remark it reconstructs the provenance chain of a
	// warning. Merged states keep the first parent seen.
	parent *PPS
}

// Options configure the exploration.
type Options struct {
	// MaxStates bounds the number of processed PPSes; 0 means the
	// default (1<<20). Exceeding the budget aborts exploration and marks
	// the result incomplete.
	MaxStates int
	// MaxOutcomes bounds the branch/spawn fan-out of a single expansion.
	MaxOutcomes int
	// Trace records a row per PPS for figure regeneration.
	Trace bool
	// DisableMerge turns off the identical-(ASN,ST) merge optimization
	// (§III-C) for the ablation benchmark.
	DisableMerge bool
	// Obs receives the exploration span and state-space counters; nil
	// disables telemetry. The hot loop accumulates into plain integers
	// and flushes once at the end, so a nil recorder costs nothing.
	Obs *obs.Recorder
	// Ctx carries the run's deadline/cancellation. The wave loop checks
	// it before every wave and each worker polls it every
	// ctxCheckInterval computed states; when it fires, exploration stops
	// and the result degrades to the conservative fallback (every access
	// not yet proven anything about is flagged). nil means no deadline.
	Ctx context.Context
	// Parallelism is the number of compute workers per wave. 0 resolves
	// to GOMAXPROCS; 1 forces the inline sequential path. Results are
	// byte-identical for every value — parallelism only changes the
	// wall-clock of the compute phase, never the committed outcome.
	Parallelism int
}

const (
	defaultMaxStates   = 1 << 20
	defaultMaxOutcomes = 1 << 14
	// ctxCheckInterval is how many processed states pass between
	// cancellation polls of Options.Ctx. States are microsecond-scale, so
	// this bounds deadline overshoot to well under a millisecond while
	// keeping the poll off the per-state fast path.
	ctxCheckInterval = 64
)

// DefaultMaxStates returns the library-default MaxStates bound — the
// value a zero Options.MaxStates resolves to. The batch driver's
// retry-with-smaller-budget ladder shrinks from it.
func DefaultMaxStates() int { return defaultMaxStates }

// StopReason says why an exploration terminated early. Empty means it
// ran to completion.
type StopReason string

const (
	// StopNone: the exploration exhausted its worklist.
	StopNone StopReason = ""
	// StopBudget: MaxStates or MaxOutcomes was exceeded.
	StopBudget StopReason = "budget"
	// StopDeadline: Options.Ctx expired (context.DeadlineExceeded).
	StopDeadline StopReason = "deadline"
	// StopCancelled: Options.Ctx was cancelled.
	StopCancelled StopReason = "cancelled"
)

// stopFromCtx classifies a context error.
func stopFromCtx(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCancelled
}

// UnsafeReason classifies why an access is reported.
type UnsafeReason int

const (
	// AfterFrontier: present in the OV set of a sink PPS — there is a
	// serialization in which the access happens after the variable's
	// parallel frontier, hence possibly after the scope exits.
	AfterFrontier UnsafeReason = iota
	// NeverSynchronized: the access is never attributed to any executed
	// sync node on any path — it trails the strand's last sync event, is
	// blocked behind a deadlocked operation, or its task performs no
	// synchronization at all.
	NeverSynchronized
	// Conservative: the exploration stopped early (budget, deadline or
	// cancellation) and the access was not yet proven safe, so it is
	// flagged by over-approximation. A full run's warning set is always a
	// subset of a degraded run's.
	Conservative
)

// String implements fmt.Stringer.
func (r UnsafeReason) String() string {
	switch r {
	case AfterFrontier:
		return "after-frontier"
	case Conservative:
		return "conservative"
	}
	return "never-synchronized"
}

// Unsafe is one reported access.
type Unsafe struct {
	Access *ccfg.Access
	Reason UnsafeReason
	// Conservative marks fallback reports of a degraded (early-stopped)
	// exploration: the access was not proven dangerous, only not proven
	// safe.
	Conservative bool
	// Prov explains how the exploration reached the report.
	Prov *Provenance
}

// Provenance records why a warning was emitted: the CCFG node of the
// access, the sink (or stuck) PPS whose OV set still held it, and the
// transition chain from the initial PPS to that state.
type Provenance struct {
	// NodeID is the CCFG node performing the access.
	NodeID int `json:"node_id"`
	// Node is the node's compact rendering (accesses + bounding sync op).
	Node string `json:"node"`
	// SinkPPS is the ID of the PPS at which the access was reported, or
	// -1 for accesses reported by the final never-visited sweep.
	SinkPPS int `json:"sink_pps"`
	// Stuck marks reports from a deadlocked (stuck) state rather than a
	// sink.
	Stuck bool `json:"stuck,omitempty"`
	// Chain lists the transition remarks from the initial PPS to the
	// reporting state, oldest first ("initial", "r#3 N#2", ...). Long
	// chains are truncated at the front with a "…" marker.
	Chain []string `json:"chain,omitempty"`
	// TraceID links the warning to the request/run trace whose
	// exploration produced it. In-memory only (excluded from JSON): the
	// wire encoding must stay byte-identical between traced and
	// untraced runs of the same input. Trace-aware consumers — the
	// uafserve flight recorder, the -trace-out JSONL file — carry the
	// trace ID at their own layer.
	TraceID string `json:"-"`
}

// maxProvChain bounds the recorded transition chain per warning.
const maxProvChain = 64

// provenance builds the chain for a report at state p.
func (e *explorer) provenance(a *ccfg.Access, p *PPS, stuck bool) *Provenance {
	pr := &Provenance{NodeID: a.Node.ID, Node: a.Node.String(), SinkPPS: -1, Stuck: stuck, TraceID: e.traceID}
	if p == nil {
		return pr
	}
	pr.SinkPPS = p.ID
	var rev []string
	for q := p; q != nil; q = q.parent {
		if len(rev) == maxProvChain {
			rev = append(rev, "…")
			break
		}
		rev = append(rev, q.Remark)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	pr.Chain = rev
	return pr
}

// Deadlock describes a stuck PPS (non-empty ASN, no applicable rule).
type Deadlock struct {
	// Blocked lists the blocked operations, e.g. "readFE(done$)".
	Blocked []string
}

// TraceRow is one line of the PPS table (paper Figures 3 and 7).
type TraceRow struct {
	ID     int
	TS     int
	ASN    []int
	OV     []string
	SV     []string
	States []string
	Remark string
}

// Stats summarize an exploration.
type Stats struct {
	StatesProcessed int
	StatesCreated   int
	StatesMerged    int
	// StatesForked counts every successor handed to the worklist before
	// merge deduplication (StatesCreated + StatesMerged).
	StatesForked int
	Sinks        int
	MaxWorklist  int
	// Waves counts bulk-synchronous frontier rounds. Like every other
	// field it is independent of Options.Parallelism.
	Waves int
	// Incomplete is true when the exploration stopped before exhausting
	// the state space; Stop carries the machine-readable cause.
	Incomplete bool
	Stop       StopReason
}

// Edge is one recorded PPS transition (tracing only).
type Edge struct {
	From, To int
	Label    string
}

// Result is the exploration outcome.
type Result struct {
	Unsafe    []Unsafe
	Deadlocks []Deadlock
	Trace     []TraceRow
	Edges     []Edge
	Stats     Stats
}

// Explore runs the PPS algorithm over a built CCFG.
func Explore(g *ccfg.Graph, opts Options) *Result {
	endExplore := opts.Obs.Span(obs.PhaseExplore)
	defer endExplore()
	tctx, tsp := obs.StartSpan(opts.Ctx, obs.PhaseExplore)
	if opts.MaxStates <= 0 {
		opts.MaxStates = defaultMaxStates
	}
	if opts.MaxOutcomes <= 0 {
		opts.MaxOutcomes = defaultMaxOutcomes
	}
	e := &explorer{
		g:           g,
		opts:        opts,
		par:         resolveParallelism(opts.Parallelism),
		intern:      newInterner(),
		everVisited: bits.New(len(g.Nodes)),
		reported:    bits.New(len(g.Accesses)),
		res:         &Result{},
		varAccess:   buildVarAccess(g),
		traceCtx:    tctx,
	}
	if tr := obs.TraceFrom(tctx); tr != nil {
		e.traceID = tr.ID().String()
	}
	e.run()
	e.flushObs()
	tsp.SetAttrInt("waves", int64(e.res.Stats.Waves))
	tsp.SetAttrInt("states", int64(e.res.Stats.StatesProcessed))
	tsp.End()
	return e.res
}

// resolveParallelism maps the Options.Parallelism knob to a worker
// count: 0 (and negatives) mean "use the machine".
func resolveParallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// flushObs records the exploration's counters once, after the run: the
// hot loop accumulates into plain struct fields only.
func (e *explorer) flushObs() {
	r := e.opts.Obs
	if r == nil {
		return
	}
	st := e.res.Stats
	r.Add(obs.CtrStatesCreated, int64(st.StatesCreated))
	r.Add(obs.CtrStatesMerged, int64(st.StatesMerged))
	r.Add(obs.CtrStatesForked, int64(st.StatesForked))
	r.Add(obs.CtrStatesProcessed, int64(st.StatesProcessed))
	r.Add(obs.CtrSinkStates, int64(st.Sinks))
	r.Add(obs.CtrDeadlockStates, int64(len(e.res.Deadlocks)))
	r.Add(obs.CtrPPSWaves, int64(st.Waves))
	r.Max(obs.GaugePeakFrontier, int64(st.MaxWorklist))
	r.Add(obs.CtrTransSingleRead, e.trans[1])
	r.Add(obs.CtrTransRead, e.trans[2])
	r.Add(obs.CtrTransWrite, e.trans[3])
	r.Add(obs.CtrTransAtomicFill, e.trans[4])
	r.Add(obs.CtrTransAtomicWait, e.trans[5])
	r.ObserveHist(obs.HistWaveSize, e.waveHist)
}

// buildVarAccess indexes tracked accesses by variable.
func buildVarAccess(g *ccfg.Graph) map[*sym.Symbol]bits.Set {
	out := make(map[*sym.Symbol]bits.Set)
	for _, a := range g.Accesses {
		vs, ok := out[a.Sym]
		if !ok {
			vs = bits.New(len(g.Accesses))
		}
		vs.Add(a.ID)
		out[a.Sym] = vs
	}
	return out
}

type explorer struct {
	g    *ccfg.Graph
	opts Options
	// par is the resolved compute-worker count (>= 1).
	par int

	// next accumulates the frontier of the following wave: freshly
	// created states plus merged states whose sets changed.
	next        []*PPS
	intern      *interner
	nextID      int
	everVisited bits.Set
	reported    bits.Set
	varAccess   map[*sym.Symbol]bits.Set
	res         *Result
	budgetHit   bool
	// ctxStop records why Options.Ctx interrupted the worklist loop.
	ctxStop StopReason
	// trans counts executed sync transitions, indexed by ruleNumber
	// (1=SINGLE-READ, 2=READ, 3=WRITE, 4=ATOMIC-FILL, 5=ATOMIC-WAIT).
	trans [6]int64
	// mhp, when non-nil, accumulates may-happen-in-parallel pairs from
	// every processed state (see BuildMHP).
	mhp *MHPOracle
	// waveHist accumulates frontier sizes locally (the hot loop never
	// touches the Recorder); flushObs merges it once. Frontier sizes are
	// schedule-independent, so this histogram is deterministic.
	waveHist obs.Histogram
	// traceCtx carries the request trace (if any) under the pps-explore
	// span; wave spans parent under it. traceID caches the trace's ID
	// for warning provenance linkage.
	traceCtx context.Context
	traceID  string
}

// outcome is one way execution can proceed from a point: a set of ASN
// entries, one per strand that reached a sync node, plus (for the MHP
// oracle) the dangling paths of strands that ended without one.
type outcome struct {
	entries []Entry
	// dangling holds, per finished strand segment, the traversed nodes —
	// they stay "in flight" until the task exits, which no event marks.
	dangling [][]*ccfg.Node
}

func (e *explorer) run() {
	// Initial PPS(es): advance from the root entry. Branches before the
	// first sync events fork initial states (paper Figure 7: PPS 0 for
	// the if path, PPS 8 for the else path).
	initState := bits.New(len(e.g.SyncVars))
	for s, full := range e.g.InitiallyFull {
		if full {
			if i := e.g.SyncVarIndex(s); i >= 0 {
				initState.Add(i)
			}
		}
	}
	var hit bool
	outs := e.expand(e.g.Root().Entry, nil, &hit)
	if hit {
		e.budgetHit = true
	}
	for _, o := range outs {
		p := &PPS{
			Entries:  normalizeEntries(o.entries),
			State:    initState.Clone(),
			Counters: append([]uint8(nil), e.g.CounterInit...),
			OV:       bits.New(len(e.g.Accesses)),
			SV:       bits.New(len(e.g.Accesses)),
			Visited:  bits.New(len(e.g.Nodes)),
			Remark:   "initial",
			Trailing: o.dangling,
		}
		e.promote(p)
		e.admit(p)
	}

	// Bulk-synchronous wave loop: compute every frontier state in
	// parallel, then commit the buffered outputs in frontier order. The
	// degradation ladder gates each wave: budget by truncating the
	// frontier to the remaining allowance, deadline/cancellation by a
	// pre-wave check plus per-worker polls inside computeWave.
	for len(e.next) > 0 {
		frontier := e.next
		e.next = nil
		if len(frontier) > e.res.Stats.MaxWorklist {
			e.res.Stats.MaxWorklist = len(frontier)
		}
		avail := e.opts.MaxStates - e.res.Stats.StatesProcessed
		if avail <= 0 {
			e.budgetHit = true
			break
		}
		if len(frontier) > avail {
			frontier = frontier[:avail]
			e.budgetHit = true
		}
		if e.opts.Ctx != nil {
			if err := e.opts.Ctx.Err(); err != nil {
				e.ctxStop = stopFromCtx(err)
				break
			}
		}
		for _, p := range frontier {
			p.queued = false
		}
		e.res.Stats.Waves++
		e.waveHist.Observe(int64(len(frontier)))
		_, wsp := obs.StartSpan(e.traceCtx, "pps-wave")
		wsp.SetAttrInt("wave", int64(e.res.Stats.Waves))
		wsp.SetAttrInt("size", int64(len(frontier)))
		wave, interrupted := e.computeWave(frontier)
		if interrupted {
			// A worker saw the context fire mid-wave; the whole wave is
			// discarded uncommitted, so StatesProcessed never counts a
			// partially applied round.
			wsp.SetAttr("interrupted", "true")
			wsp.End()
			e.ctxStop = stopFromCtx(e.opts.Ctx.Err())
			break
		}
		for i, p := range frontier {
			e.commitState(p, wave[i])
		}
		wsp.End()
	}
	switch {
	case e.ctxStop != StopNone:
		e.res.Stats.Stop = e.ctxStop
	case e.budgetHit:
		e.res.Stats.Stop = StopBudget
	}
	e.res.Stats.Incomplete = e.res.Stats.Stop != StopNone

	if e.res.Stats.Incomplete {
		// Degradation ladder: the exploration stopped early, so no access
		// it has not already cleared or reported can be trusted. Flag all
		// of them conservatively — the result stays sound (a superset of
		// the full run's warnings) instead of silently partial.
		for _, a := range e.g.Accesses {
			if !e.reported.Has(a.ID) {
				e.reported.Add(a.ID)
				e.res.Unsafe = append(e.res.Unsafe,
					Unsafe{Access: a, Reason: Conservative, Conservative: true,
						Prov: e.provenance(a, nil, false)})
			}
		}
	} else {
		// Final sweep: the "∀ evi !(visited)" clause. Accesses never
		// attributed to an executed sync node on any explored path cannot
		// be ordered before the parent's exit.
		for _, a := range e.g.Accesses {
			if !e.everVisited.Has(a.Node.ID) && !e.reported.Has(a.ID) {
				e.reported.Add(a.ID)
				e.res.Unsafe = append(e.res.Unsafe,
					Unsafe{Access: a, Reason: NeverSynchronized, Prov: e.provenance(a, nil, false)})
			}
		}
	}
	sort.SliceStable(e.res.Unsafe, func(i, j int) bool {
		return e.res.Unsafe[i].Access.Sp.Start < e.res.Unsafe[j].Access.Sp.Start
	})
}

// expand computes every way execution proceeds from node n (inclusive)
// until each strand reaches a sync node or ends. prefix holds the nodes
// already traversed on this path since the previous sync event; the slice
// is never mutated (copy-on-append). hit is set when MaxOutcomes
// truncates the fan-out — a pointer, not a field, because expand runs
// inside the parallel compute phase and must not write explorer state.
func (e *explorer) expand(n *ccfg.Node, prefix []*ccfg.Node, hit *bool) []outcome {
	if n.Sync != nil {
		return []outcome{{entries: []Entry{{Sync: n, Pending: prefix}}}}
	}
	newPrefix := append(prefix[:len(prefix):len(prefix)], n)

	// Spawned strands advance independently.
	var lists [][]outcome
	for _, sp := range n.Spawns {
		if sp.Task.Pruned {
			continue
		}
		lists = append(lists, e.expand(sp, newPrefix, hit))
	}
	// Continuation of the current strand; a branch forks one expansion
	// per arm.
	var cont []outcome
	if len(n.Succs) == 0 {
		if e.mhp != nil {
			cont = []outcome{{dangling: [][]*ccfg.Node{newPrefix}}}
		} else {
			cont = []outcome{{}}
		}
	} else {
		for _, s := range n.Succs {
			cont = append(cont, e.expand(s, newPrefix, hit)...)
			if len(cont) > e.opts.MaxOutcomes {
				*hit = true
				cont = cont[:e.opts.MaxOutcomes]
				break
			}
		}
	}
	lists = append(lists, cont)
	return e.product(lists, hit)
}

// product combines one outcome from each list into merged outcomes.
func (e *explorer) product(lists [][]outcome, hit *bool) []outcome {
	acc := []outcome{{}}
	for _, list := range lists {
		var next []outcome
		for _, a := range acc {
			for _, b := range list {
				merged := outcome{entries: make([]Entry, 0, len(a.entries)+len(b.entries))}
				merged.entries = append(merged.entries, a.entries...)
				merged.entries = append(merged.entries, b.entries...)
				merged.dangling = append(merged.dangling, a.dangling...)
				merged.dangling = append(merged.dangling, b.dangling...)
				next = append(next, merged)
				if len(next) > e.opts.MaxOutcomes {
					*hit = true
					return next
				}
			}
		}
		acc = next
	}
	return acc
}

func normalizeEntries(entries []Entry) []Entry {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Sync.ID < entries[j].Sync.ID
	})
	return entries
}

// ruleNumber maps sync ops to the paper's rule numbering used in the
// Figure 3/7 remarks: 1 = SINGLE-READ, 2 = READ, 3 = WRITE. The atomics
// extension adds 4 = ATOMIC-FILL and 5 = ATOMIC-WAIT.
func ruleNumber(op sym.SyncOpKind) int {
	switch op {
	case sym.OpReadFF:
		return 1
	case sym.OpReadFE:
		return 2
	case sym.OpWriteEF:
		return 3
	case sym.OpAtomicWrite:
		return 4
	case sym.OpAtomicWait:
		return 5
	}
	return 0
}

// executable reports whether the entry's operation can fire under the
// state table st and counter vector counters.
func (e *explorer) executable(en Entry, st bits.Set, counters []uint8) bool {
	ev := en.Sync.Sync
	if ci := e.g.CounterVarIndex(ev.Sym); ci >= 0 {
		// Counting refinement.
		switch ev.Op {
		case sym.OpAtomicWrite:
			return true
		case sym.OpAtomicWait:
			if ci < len(counters) {
				return int64(counters[ci]) >= ev.Arg
			}
			return false
		}
		return false
	}
	idx := e.g.SyncVarIndex(ev.Sym)
	if idx < 0 {
		return false
	}
	full := st.Has(idx)
	switch ev.Op {
	case sym.OpReadFE, sym.OpReadFF, sym.OpAtomicWait:
		return full
	case sym.OpWriteEF:
		return !full
	case sym.OpAtomicWrite:
		// Fill events never block (§IV-A: "a non-blocking fill event").
		return true
	}
	return false
}

// reportCand is a buffered warning candidate: the compute phase cannot
// touch the shared reported set, so it emits candidates and the commit
// phase deduplicates them in deterministic order.
type reportCand struct {
	access int
	reason UnsafeReason
	stuck  bool
}

// stepOut buffers everything one state's compute produces. The commit
// phase applies it to the shared explorer state in frontier order.
type stepOut struct {
	sink      bool
	rows      []TraceRow
	reports   []reportCand
	deadlock  *Deadlock
	succs     []*PPS
	trans     [6]int64
	budgetHit bool
}

// computeState derives a state's transitions without writing any shared
// explorer state — it reads p's sets, the graph, and the wave-start
// snapshot of the reported set, and buffers all output in the returned
// stepOut. This is the function wave workers run concurrently.
func (e *explorer) computeState(p *PPS) *stepOut {
	out := &stepOut{}
	if len(p.Entries) == 0 {
		// Sink PPS: every access still pending in OV can happen after the
		// variable's parallel frontier (paper §III-B).
		out.sink = true
		p.OV.ForEach(func(id int) {
			out.reports = append(out.reports, reportCand{access: id, reason: AfterFrontier})
		})
		if e.opts.Trace {
			out.rows = append(out.rows, e.makeRow(p, "sink"))
		}
		return out
	}
	if e.opts.Trace {
		out.rows = append(out.rows, e.makeRow(p, ""))
	}

	fired := false
	// SINGLE-READ batch (rule 1): all executable readFF operations are
	// non-blocking once full and fire together (§III-C). Under the
	// atomics extension, executable waitFor events join the batch — they
	// are the "corresponding read ... equivalent to SINGLE-READ" of
	// §IV-A.
	var singles []int
	for i, en := range p.Entries {
		op := en.Sync.Sync.Op
		if (op == sym.OpReadFF || op == sym.OpAtomicWait) && e.executable(en, p.State, p.Counters) {
			singles = append(singles, i)
		}
	}
	if len(singles) > 0 {
		e.computeFire(p, singles, out)
		fired = true
	}
	// READ (rule 2), WRITE (rule 3) and ATOMIC-FILL (rule 4): explore
	// every executable choice.
	for i, en := range p.Entries {
		op := en.Sync.Sync.Op
		if op == sym.OpReadFF || op == sym.OpAtomicWait {
			continue
		}
		if e.executable(en, p.State, p.Counters) {
			e.computeFire(p, []int{i}, out)
			fired = true
		}
	}
	if !fired {
		// Stuck: non-empty ASN with no applicable rule — a potential
		// deadlock (§VII future-work hook; we report it).
		var blocked []string
		for _, en := range p.Entries {
			blocked = append(blocked, en.Sync.Sync.String())
		}
		out.deadlock = &Deadlock{Blocked: blocked}

		// Soundness at stuck states: a strand's accesses that precede its
		// blocked operation have already executed dynamically, and the
		// strand can never synchronize again — if the owner exits, they
		// are use-after-free. Report the attributed-but-unpromoted OV set
		// and every pending access behind the blocked entries.
		p.OV.ForEach(func(id int) {
			out.reports = append(out.reports, reportCand{access: id, reason: AfterFrontier, stuck: true})
		})
		for _, en := range p.Entries {
			// A region's accesses precede its bounding sync op, so the
			// blocked node's own accesses have already executed too.
			nodes := append(append([]*ccfg.Node(nil), en.Pending...), en.Sync)
			for _, n := range nodes {
				for _, a := range n.Accesses {
					if !p.SV.Has(a.ID) {
						out.reports = append(out.reports, reportCand{access: a.ID, reason: NeverSynchronized, stuck: true})
					}
				}
			}
		}
	}
	return out
}

// computeFire executes the chosen entries (a single READ/WRITE, or a
// batch of SINGLE-READs), buffering one successor PPS per branch-arm
// combination of the freed strands into out. Successors get their
// canonical key here, in the parallel phase, so the commit loop only
// probes the interner.
func (e *explorer) computeFire(p *PPS, idxs []int, out *stepOut) {
	state := p.State.Clone()
	visited := p.Visited.Clone()
	ov := p.OV.Clone()
	sv := p.SV.Clone()

	chosen := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		chosen[i] = true
	}
	var remark []string

	attribute := func(n *ccfg.Node) {
		if visited.Has(n.ID) {
			return
		}
		visited.Add(n.ID)
		for _, a := range n.Accesses {
			if !ov.Has(a.ID) && !sv.Has(a.ID) && !e.reported.Has(a.ID) {
				ov.Add(a.ID)
			}
		}
	}

	var lists [][]outcome
	counters := append([]uint8(nil), p.Counters...)
	for _, i := range idxs {
		en := p.Entries[i]
		ev := en.Sync.Sync
		op := ev.Op
		if ci := e.g.CounterVarIndex(ev.Sym); ci >= 0 {
			// Counting refinement: monotonic counter updates.
			if op == sym.OpAtomicWrite && ci < len(counters) {
				switch ev.Method {
				case "write":
					// Monotonic model: keep the maximum.
					if v := satU8(ev.Arg); v > counters[ci] {
						counters[ci] = v
					}
				default: // add / fetchAdd
					counters[ci] = satAdd(counters[ci], ev.Arg)
				}
			}
			// waitFor retains the counter.
		} else {
			vIdx := e.g.SyncVarIndex(ev.Sym)
			switch op {
			case sym.OpWriteEF, sym.OpAtomicWrite:
				state.Add(vIdx)
			case sym.OpReadFE:
				state.Remove(vIdx)
			case sym.OpReadFF, sym.OpAtomicWait:
				// retains full state
			}
		}
		out.trans[ruleNumber(op)]++
		remark = append(remark, fmt.Sprintf("r#%d N#%d", ruleNumber(op), en.Sync.ID))
		// Attribute the path since the strand's previous sync event,
		// then the executed node itself ("∀ Nk from Sprev to Si").
		for _, n := range en.Pending {
			attribute(n)
		}
		attribute(en.Sync)
		// Advance the strand.
		if len(en.Sync.Succs) == 0 {
			lists = append(lists, []outcome{{}})
		} else {
			var conts []outcome
			for _, s := range en.Sync.Succs {
				conts = append(conts, e.expand(s, nil, &out.budgetHit)...)
			}
			lists = append(lists, conts)
		}
	}

	var remaining []Entry
	for i, en := range p.Entries {
		if !chosen[i] {
			remaining = append(remaining, en)
		}
	}

	for _, combo := range e.product(lists, &out.budgetHit) {
		entries := make([]Entry, 0, len(remaining)+len(combo.entries))
		entries = append(entries, remaining...)
		entries = append(entries, combo.entries...)
		var trailing [][]*ccfg.Node
		if e.mhp != nil {
			trailing = make([][]*ccfg.Node, 0, len(p.Trailing)+len(combo.dangling))
			trailing = append(trailing, p.Trailing...)
			trailing = append(trailing, combo.dangling...)
		}
		np := &PPS{
			TS:       p.TS + 1,
			Entries:  normalizeEntries(entries),
			State:    state.Clone(),
			Counters: append([]uint8(nil), counters...),
			OV:       ov.Clone(),
			SV:       sv.Clone(),
			Visited:  visited.Clone(),
			Remark:   strings.Join(remark, " "),
			Trailing: trailing,
			parent:   p,
		}
		e.promote(np)
		if !e.opts.DisableMerge {
			np.hkey, np.ckey = canonicalKey(np)
		}
		out.succs = append(out.succs, np)
	}
}

// commitState applies one state's buffered compute output to the shared
// explorer state. It runs strictly sequentially, in frontier order —
// that single property is what makes warning order, state IDs, merge
// counts and provenance chains independent of the worker count.
func (e *explorer) commitState(p *PPS, out *stepOut) {
	if e.mhp != nil {
		e.mhp.record(p)
	}
	if out.sink {
		e.res.Stats.Sinks++
	}
	for _, rc := range out.reports {
		if e.reported.Has(rc.access) {
			continue
		}
		e.reported.Add(rc.access)
		a := e.g.Accesses[rc.access]
		e.res.Unsafe = append(e.res.Unsafe,
			Unsafe{Access: a, Reason: rc.reason, Prov: e.provenance(a, p, rc.stuck)})
	}
	if out.deadlock != nil {
		e.res.Deadlocks = append(e.res.Deadlocks, *out.deadlock)
	}
	for i, n := range out.trans {
		e.trans[i] += n
	}
	if out.budgetHit {
		e.budgetHit = true
	}
	for _, np := range out.succs {
		canon := e.admit(np)
		if e.opts.Trace {
			e.res.Edges = append(e.res.Edges, Edge{From: p.ID, To: canon.ID, Label: np.Remark})
		}
	}
	e.res.Trace = append(e.res.Trace, out.rows...)
	e.res.Stats.StatesProcessed++
}

// promote implements the Parallel Frontier rule: when a PF(x) node is in
// the candidate set of the PPS, the accesses of x currently pending in OV
// were synchronized before the frontier and move to the safe set.
func (e *explorer) promote(p *PPS) {
	for _, en := range p.Entries {
		if !e.executable(en, p.State, p.Counters) {
			continue
		}
		vars := e.g.PFVarsOf(en.Sync)
		if len(vars) == 0 {
			continue
		}
		for _, v := range vars {
			va, ok := e.varAccess[v]
			if !ok {
				continue
			}
			moved := false
			va.ForEach(func(id int) {
				if p.OV.Has(id) {
					p.OV.Remove(id)
					p.SV.Add(id)
					moved = true
				}
			})
			if moved {
				p.Remark += fmt.Sprintf(" PF(%s)", v.Name)
			}
		}
	}
}

// admit inserts a freshly computed PPS into the next frontier, merging
// with the canonical state of identical (ASN, state-table, counters)
// identity via the interner (§III-C). It returns the canonical state —
// the merge target when one exists, otherwise p itself with its newly
// assigned ID — so trace edges always point at a real state. Runs only
// on the commit path.
func (e *explorer) admit(p *PPS) *PPS {
	e.res.Stats.StatesForked++
	// The attributed nodes of a successor feed the final never-visited
	// sweep even when the state itself merges away.
	e.everVisited.UnionWith(p.Visited)
	if !e.opts.DisableMerge {
		if p.ckey == nil {
			p.hkey, p.ckey = canonicalKey(p)
		}
		if old := e.intern.lookup(p.hkey, p.ckey); old != nil {
			if e.merge(old, p) && !old.queued {
				old.queued = true
				e.next = append(e.next, old)
			}
			e.res.Stats.StatesMerged++
			return old
		}
	}
	p.ID = e.nextID
	e.nextID++
	e.res.Stats.StatesCreated++
	if !e.opts.DisableMerge {
		e.intern.insert(p)
	}
	p.queued = true
	e.next = append(e.next, p)
	return p
}

// merge folds src into dst (same ASN + state table), exactly as §III-C
// specifies: OV is the union of the original OV sets, SV the intersection
// of the original safe sets. An access promoted on one path and absent
// from the other's OV∪SV (it never happened there) simply leaves both
// sets; an access pending on one side and safe on the other stays in OV.
// Pending node lists are unioned per entry. Returns true when dst
// changed.
func (e *explorer) merge(dst, src *PPS) bool {
	changed := false

	if dst.OV.UnionWith(src.OV) {
		changed = true
	}
	svBoth := dst.SV.Clone()
	svBoth.IntersectWith(src.SV)
	if !dst.SV.Equal(svBoth) {
		dst.SV = svBoth
		changed = true
	}
	// Keep the OV ∩ SV = ∅ invariant and never resurrect reported
	// accesses.
	dst.OV.DiffWith(dst.SV)
	dst.OV.DiffWith(e.reported)

	if dst.Visited.UnionWith(src.Visited) {
		changed = true
	}
	// Union pendings entry-wise (entries are sorted by sync node ID and
	// the key guarantees identical node sets).
	for i := range dst.Entries {
		if i >= len(src.Entries) {
			break
		}
		have := make(map[int]bool, len(dst.Entries[i].Pending))
		for _, n := range dst.Entries[i].Pending {
			have[n.ID] = true
		}
		for _, n := range src.Entries[i].Pending {
			if !have[n.ID] {
				dst.Entries[i].Pending = append(dst.Entries[i].Pending, n)
				have[n.ID] = true
				changed = true
			}
		}
	}
	if src.TS < dst.TS {
		dst.TS = src.TS
	}
	return changed
}

// satU8 clamps a non-negative constant into the counter range.
func satU8(v int64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// satAdd adds with saturation at 255.
func satAdd(a uint8, v int64) uint8 {
	s := int64(a) + v
	if s < 0 {
		return 0
	}
	if s > 255 {
		return 255
	}
	return uint8(s)
}

// makeRow renders a state as a trace table row. Pure with respect to
// explorer state (the compute phase calls it from wave workers); the
// commit phase appends the buffered rows to the result.
func (e *explorer) makeRow(p *PPS, extra string) TraceRow {
	row := TraceRow{ID: p.ID, TS: p.TS, Remark: strings.TrimSpace(p.Remark)}
	if extra != "" {
		if row.Remark != "" {
			row.Remark += " "
		}
		row.Remark += extra
	}
	for _, en := range p.Entries {
		row.ASN = append(row.ASN, en.Sync.ID)
	}
	p.OV.ForEach(func(id int) {
		row.OV = append(row.OV, e.g.Accesses[id].Label())
	})
	p.SV.ForEach(func(id int) {
		row.SV = append(row.SV, e.g.Accesses[id].Label())
	})
	for i, v := range e.g.SyncVars {
		st := "E"
		if p.State.Has(i) {
			st = "F"
		}
		row.States = append(row.States, v.Name+"="+st)
	}
	for i, v := range e.g.CounterVars {
		if i < len(p.Counters) {
			row.States = append(row.States, fmt.Sprintf("%s=%d", v.Name, p.Counters[i]))
		}
	}
	return row
}

// FormatTrace renders the trace as the paper's PPS table (Figures 3, 7),
// ordered by PPS ID like the paper's listing. A state that was merged and
// re-processed appears once, with its final sets.
func FormatTrace(rows []TraceRow) string {
	last := make(map[int]int, len(rows))
	for i, r := range rows {
		last[r.ID] = i
	}
	var uniq []TraceRow
	for i, r := range rows {
		if last[r.ID] == i {
			uniq = append(uniq, r)
		}
	}
	rows = uniq
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-3s %-16s %-24s %-24s %-20s %s\n",
		"ID", "TS", "ASN", "OV", "SV", "states", "remark")
	for _, r := range rows {
		asn := make([]string, len(r.ASN))
		for i, id := range r.ASN {
			asn[i] = fmt.Sprintf("%d", id)
		}
		fmt.Fprintf(&b, "%-4d %-3d %-16s %-24s %-24s %-20s %s\n",
			r.ID, r.TS,
			"{"+strings.Join(asn, ",")+"}",
			"{"+strings.Join(r.OV, ",")+"}",
			"{"+strings.Join(r.SV, ",")+"}",
			strings.Join(r.States, " "),
			r.Remark)
	}
	return b.String()
}

// FormatTraceDOT renders the explored PPS state machine in Graphviz dot
// syntax: one node per state (ASN + state table), edges labeled with the
// applied rule. Sink states are doubly circled; states whose OV residue
// produced warnings are shaded.
func FormatTraceDOT(r *Result) string {
	last := make(map[int]TraceRow, len(r.Trace))
	for _, row := range r.Trace {
		last[row.ID] = row
	}
	var b strings.Builder
	b.WriteString("digraph pps {\n  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")
	ids := make([]int, 0, len(last))
	for id := range last {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		row := last[id]
		asn := make([]string, len(row.ASN))
		for i, n := range row.ASN {
			asn[i] = fmt.Sprintf("%d", n)
		}
		label := fmt.Sprintf("PPS %d\\nASN {%s}\\n%s",
			row.ID, strings.Join(asn, ","), strings.Join(row.States, " "))
		shape := "box"
		style := ""
		if len(row.ASN) == 0 {
			shape = "doubleoctagon"
			if len(row.OV) > 0 {
				style = ", style=filled, fillcolor=lightcoral"
				label += "\\nunsafe: " + strings.Join(row.OV, " ")
			}
		}
		fmt.Fprintf(&b, "  s%d [label=\"%s\", shape=%s%s];\n", row.ID, label, shape, style)
	}
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s\"];\n", e.From, e.To, e.Label)
	}
	b.WriteString("}\n")
	return b.String()
}
