package pps

import "sync"

// This file is the hash-consing layer of the exploration: every PPS is
// identified by a canonical byte encoding of its (ASN, state-table,
// counter-vector) triple, compressed to a 64-bit FNV-1a key. The
// interner maps that key to the canonical *PPS, so the §III-C merge rule
// ("states with identical ASN and state table are folded") is one hash
// lookup instead of a string-map probe, and the same key doubles as the
// cycle/visited identity used by the worklist.
//
// The table is sharded 64 ways with per-shard RWMutexes so concurrent
// wave workers may consult it while the committer writes. The committer
// itself is single-threaded (see parallel.go), which is what keeps state
// IDs, merge counts and warning order deterministic; the locking makes
// the structure safe for the read-side traffic and for any future
// concurrent committer.

const internShardCount = 64

// interner is the concurrent hash-consing table: 64-bit canonical key →
// canonical *PPS, with full-key comparison on hash collisions so a
// collision can never merge two genuinely different states.
type interner struct {
	shards [internShardCount]internShard
}

type internShard struct {
	mu sync.RWMutex
	m  map[uint64][]*PPS
}

func newInterner() *interner {
	it := &interner{}
	for i := range it.shards {
		it.shards[i].m = make(map[uint64][]*PPS)
	}
	return it
}

// lookup returns the canonical PPS for the key, or nil.
func (it *interner) lookup(h uint64, key []byte) *PPS {
	s := &it.shards[h%internShardCount]
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.m[h] {
		if bytesEqual(p.ckey, key) {
			return p
		}
	}
	return nil
}

// insert registers p as the canonical state for its key. The caller
// guarantees a prior lookup miss for the same key within the same
// critical section of the (single-threaded) commit loop.
func (it *interner) insert(p *PPS) {
	s := &it.shards[p.hkey%internShardCount]
	s.mu.Lock()
	s.m[p.hkey] = append(s.m[p.hkey], p)
	s.mu.Unlock()
}

// size returns the number of interned states.
func (it *interner) size() int {
	n := 0
	for i := range it.shards {
		s := &it.shards[i]
		s.mu.RLock()
		for _, b := range s.m {
			n += len(b)
		}
		s.mu.RUnlock()
	}
	return n
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FNV-1a parameters for the 64-bit canonical key.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// canonicalKey builds the canonical byte encoding of the state's
// merge identity — sync-node IDs of the ASN (entries are sorted), the
// state-table words, and the counter vector — plus its 64-bit FNV-1a
// hash. OV/SV/Visited are deliberately excluded: they are what merging
// folds, not what identifies a state.
func canonicalKey(p *PPS) (uint64, []byte) {
	buf := make([]byte, 0, len(p.Entries)*4+len(p.Counters)+18)
	for _, en := range p.Entries {
		id := en.Sync.ID
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	buf = append(buf, '|')
	buf = p.State.AppendKey(buf)
	if len(p.Counters) > 0 {
		buf = append(buf, '|')
		buf = append(buf, p.Counters...)
	}
	h := uint64(fnvOffset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h, buf
}
