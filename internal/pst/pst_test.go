package pst

import (
	"strings"
	"testing"

	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func buildTree(t *testing.T, src string) *Tree {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	return Build(info, mod.Procs[0])
}

func accessLeaf(t *testing.T, tree *Tree, varName string, i int) *Node {
	t.Helper()
	n := 0
	for _, a := range tree.Accesses {
		if a.Sym.Name == varName {
			if n == i {
				return a.Leaf
			}
			n++
		}
	}
	t.Fatalf("access %d of %s not found (have %d)", i, varName, n)
	return nil
}

func TestTreeShape(t *testing.T) {
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  sync {
	    begin with (ref x) { x = 2; }
	  }
	  writeln(x);
	}`)
	r := tree.Render()
	for _, want := range []string{"seq proc f", "finish", "async TASK A", "access x", "scope-end x"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q:\n%s", want, r)
		}
	}
	if len(tree.Accesses) != 1 {
		t.Fatalf("accesses = %d, want 1 (root reads are not outer)", len(tree.Accesses))
	}
}

func TestMHPUnfencedAsyncEscapes(t *testing.T) {
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) { x = 2; }
	  writeln(x);
	}`)
	access := accessLeaf(t, tree, "x", 0)
	end := tree.ScopeEnd[tree.Accesses[0].Sym]
	if !tree.MHP(access, end) {
		t.Error("unfenced async must be MHP with the scope end")
	}
	if tree.MHP(access, access) {
		t.Error("a leaf is never MHP with itself")
	}
}

func TestMHPFinishFences(t *testing.T) {
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  sync {
	    begin with (ref x) { x = 2; }
	  }
	  writeln(x);
	}`)
	access := accessLeaf(t, tree, "x", 0)
	end := tree.ScopeEnd[tree.Accesses[0].Sym]
	if tree.MHP(access, end) {
		t.Error("finish-fenced async must NOT be MHP with the scope end")
	}
}

func TestMHPTwoAsyncsParallel(t *testing.T) {
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  var y: int = 1;
	  begin with (ref x) { x = 2; }
	  begin with (ref y) { y = 2; }
	}`)
	ax := accessLeaf(t, tree, "x", 0)
	ay := accessLeaf(t, tree, "y", 0)
	if !tree.MHP(ax, ay) {
		t.Error("two sibling asyncs must be MHP")
	}
}

func TestMHPNestedFinishStillEscapesOuter(t *testing.T) {
	// An async containing a finish: the inner finish does not stop the
	// OUTER async from escaping.
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  begin with (ref x) {
	    sync {
	      begin with (ref x) { x = 3; }
	    }
	    x = 2;
	  }
	  writeln(x);
	}`)
	// Both accesses (inner task and outer task) are MHP with scope end:
	// the outer async is unfenced.
	for i, a := range tree.Accesses {
		end := tree.ScopeEnd[a.Sym]
		if end == nil {
			continue
		}
		if !tree.MHP(a.Leaf, end) {
			t.Errorf("access %d should be MHP with the scope end (outer async unfenced)", i)
		}
	}
}

func TestMHPIgnoresPointToPointSync(t *testing.T) {
	// THE key property §VI criticizes: PST-based MHP cannot see the
	// done$ wait chain, so it flags code the paper's analysis proves
	// safe.
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  var done$: sync bool;
	  begin with (ref x) {
	    x = 2;
	    done$ = true;
	  }
	  done$;
	}`)
	v := tree.CheckUAF()
	if len(v) != 1 {
		t.Fatalf("PST flags = %d, want 1 (wait chain invisible)", len(v))
	}
}

func TestCheckUAFSyncBlockClean(t *testing.T) {
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  sync {
	    begin with (ref x) { x = 2; }
	    begin with (ref x) { writeln(x); }
	  }
	}`)
	if v := tree.CheckUAF(); len(v) != 0 {
		t.Fatalf("PST flags = %d, want 0 for fenced tasks", len(v))
	}
}

func TestCheckUAFInnerScope(t *testing.T) {
	// Variable declared inside an async, leaked to a nested async: the
	// scope end is within the outer async; the inner async escapes it.
	tree := buildTree(t, `proc f() {
	  begin {
	    var y: int = 1;
	    begin with (ref y) { writeln(y); }
	  }
	}`)
	v := tree.CheckUAF()
	if len(v) != 1 || v[0].Access.Sym.Name != "y" {
		t.Fatalf("PST flags = %v, want the y access", v)
	}
}

func TestCheckUAFTaskLocalNotFlagged(t *testing.T) {
	tree := buildTree(t, `proc f() {
	  begin {
	    var z: int = 1;
	    z = 2;
	    writeln(z);
	  }
	}`)
	if len(tree.Accesses) != 0 {
		t.Fatalf("task-local accesses classified as outer: %d", len(tree.Accesses))
	}
}

func TestInIntentNotOuter(t *testing.T) {
	tree := buildTree(t, `proc f() {
	  var x: int = 1;
	  begin with (in x) { writeln(x); }
	}`)
	if len(tree.Accesses) != 0 {
		t.Fatalf("in-intent copy classified as outer access")
	}
}

func TestBranchArmsConservative(t *testing.T) {
	tree := buildTree(t, `config const c = true;
	proc f() {
	  var x: int = 1;
	  if (c) {
	    begin with (ref x) { x = 2; }
	  }
	  writeln(x);
	}`)
	v := tree.CheckUAF()
	if len(v) != 1 {
		t.Fatalf("conditional async should still be flagged: %d", len(v))
	}
}
